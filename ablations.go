package sanft

import (
	"fmt"
	"time"

	"sanft/internal/core"
	"sanft/internal/mapping"
	"sanft/internal/microbench"
	"sanft/internal/retrans"
	"sanft/internal/sim"
	"sanft/internal/topology"
)

// ---------------------------------------------------------------------------
// Ablation 1 — on-demand partial mapping vs conventional full mapping
// ---------------------------------------------------------------------------

// MappingAblationRow compares the two schemes for one target distance.
type MappingAblationRow struct {
	Hops           int
	OnDemandProbes int
	OnDemandTime   time.Duration
	FullProbes     int
	FullTime       time.Duration
}

// RunMappingAblation measures, on the Figure 2 testbed, the on-demand
// mapper stopping at each target versus the conventional scheme that maps
// the entire network before routing anything (§4.2's motivating
// comparison).
func RunMappingAblation(opt Options) []MappingAblationRow {
	opt = opt.defaults()
	fullProbes, fullTime := func() (int, time.Duration) {
		f := topology.NewFig2()
		c := fig2Cluster(f, opt.Seed)
		m := mapping.New(c.K, c.NIC(f.Mapper), mapping.Config{})
		var st mapping.Stats
		c.K.Spawn("full-map", func(p *sim.Proc) {
			_, st = m.FullMap(p)
			c.StopSoon()
		})
		c.RunFor(time.Minute)
		c.Stop()
		return st.Total(), st.Elapsed
	}()
	var rows []MappingAblationRow
	for hop := 0; hop < 4; hop++ {
		f := topology.NewFig2()
		c := fig2Cluster(f, opt.Seed)
		m := mapping.New(c.K, c.NIC(f.Mapper), mapping.Config{})
		var st mapping.Stats
		target := f.Targets[hop]
		c.K.Spawn("on-demand", func(p *sim.Proc) {
			_, _, st, _ = m.MapTo(p, target)
			c.StopSoon()
		})
		c.RunFor(time.Minute)
		c.Stop()
		rows = append(rows, MappingAblationRow{
			Hops:           hop + 1,
			OnDemandProbes: st.Total(),
			OnDemandTime:   st.Elapsed,
			FullProbes:     fullProbes,
			FullTime:       fullTime,
		})
	}
	return rows
}

func fig2Cluster(f *topology.Fig2, seed int64) *core.Cluster {
	return core.New(core.Config{
		Net:     f.Net,
		Hosts:   f.Net.Hosts(),
		FT:      true,
		Retrans: retrans.Config{QueueSize: 32, Interval: time.Millisecond},
		Seed:    seed,
	})
}

// MappingAblationString renders the comparison.
func MappingAblationString(rows []MappingAblationRow) string {
	header := []string{"#hops", "on-demand-probes", "on-demand-time", "full-map-probes", "full-map-time"}
	var rs [][]string
	for _, r := range rows {
		rs = append(rs, []string{fmt.Sprint(r.Hops),
			fmt.Sprint(r.OnDemandProbes), r.OnDemandTime.String(),
			fmt.Sprint(r.FullProbes), r.FullTime.String()})
	}
	return "Ablation: on-demand partial mapping vs full network map\n" + table(header, rs)
}

// ---------------------------------------------------------------------------
// Ablation 2 — piggybacked vs always-explicit acknowledgments
// ---------------------------------------------------------------------------

// AckAblationResult compares two-way-traffic cost with and without
// piggybacking.
type AckAblationResult struct {
	Size                int
	WithPiggyback       float64 // ping-pong MB/s
	WithoutPiggyback    float64
	PiggybackedAcks     uint64
	ExplicitAcksWith    uint64
	ExplicitAcksWithout uint64
}

// RunAckAblation measures ping-pong bandwidth and ack traffic with
// piggybacking on (the paper's optimization) and off.
func RunAckAblation(size int, opt Options) AckAblationResult {
	opt = opt.defaults()
	n := opt.iters(size, 0)
	res := AckAblationResult{Size: size}

	run := func(noPiggy bool) (float64, uint64, uint64) {
		nw, hosts := topology.Star(2)
		c := core.New(core.Config{
			Net: nw, Hosts: hosts, FT: true,
			Retrans: retrans.Config{QueueSize: 32, Interval: time.Millisecond, NoPiggyback: noPiggy},
			Seed:    opt.Seed,
		})
		bw := microbench.PingPong(c, size, n).MBps
		piggy := c.NICAt(0).Counters().Get("acks-piggybacked") + c.NICAt(1).Counters().Get("acks-piggybacked")
		explicit := c.NICAt(0).Counters().Get("acks-sent") + c.NICAt(1).Counters().Get("acks-sent")
		return bw, piggy, explicit
	}
	var piggy uint64
	res.WithPiggyback, piggy, res.ExplicitAcksWith = run(false)
	res.PiggybackedAcks = piggy
	res.WithoutPiggyback, _, res.ExplicitAcksWithout = run(true)
	return res
}

func (r AckAblationResult) String() string {
	return fmt.Sprintf(
		"Ablation: piggybacked acks (size %d, ping-pong)\n"+
			"  with piggyback:    %.1f MB/s (%d piggybacked, %d explicit acks)\n"+
			"  without piggyback: %.1f MB/s (%d explicit acks)\n",
		r.Size, r.WithPiggyback, r.PiggybackedAcks, r.ExplicitAcksWith,
		r.WithoutPiggyback, r.ExplicitAcksWithout)
}

// ---------------------------------------------------------------------------
// Ablation 3 — sender-based feedback vs fixed ack period
// ---------------------------------------------------------------------------

// FeedbackAblationRow compares the adaptive policy against a fixed
// ack-every-N policy at one error rate: bandwidth and acknowledgment
// traffic.
type FeedbackAblationRow struct {
	Queue        int
	ErrorRate    float64
	Adaptive     float64 // unidirectional MB/s
	AdaptiveAcks uint64  // explicit acks sent by the receiver
	FixedN       int
	Fixed        float64
	FixedAcks    uint64
}

// RunFeedbackAblation probes what sender-based feedback actually buys.
//
// Findings (recorded in EXPERIMENTS.md):
//
//  1. Under saturating one-way traffic the sender is permanently
//     buffer-starved, so BOTH policies converge to an ack per packet
//     (the out-of-buffers escape dominates); ack volume differences only
//     appear off-saturation. Either way, explicit-ack volume is not a
//     bandwidth bottleneck at these packet sizes.
//  2. Feedback is NOT what causes the Figure 8 q=128 collapse under
//     errors: after a drop the sender keeps streaming until the QUEUE
//     fills regardless of ack policy, so post-drop waste is bounded by
//     queue headroom and the policies degrade identically. The queue
//     size itself is the mechanism.
//  3. What feedback buys is safety without tuning: with a tiny queue a
//     long fixed period would deadlock the sender against its own
//     buffer pool; the starvation escape (out of buffers → immediate
//     ack) is what adaptive feedback provides built-in.
func RunFeedbackAblation(size int, queues []int, rates []float64, opt Options) []FeedbackAblationRow {
	opt = opt.defaults()
	if queues == nil {
		queues = []int{32, 128}
	}
	if rates == nil {
		rates = []float64{0, 1e-2}
	}
	var rows []FeedbackAblationRow
	for _, q := range queues {
		for _, rate := range rates {
			n := opt.iters(size, rate)
			fixedN := 32
			run := func(fixed int) (float64, uint64) {
				nw, hosts := topology.Star(2)
				c := core.New(core.Config{
					Net: nw, Hosts: hosts, FT: true,
					Retrans:   retrans.Config{QueueSize: q, Interval: time.Millisecond, FixedAckEvery: fixed},
					ErrorRate: rate,
					Seed:      opt.Seed,
				})
				bw := microbench.Unidirectional(c, size, n).MBps
				acks := c.NICAt(1).Counters().Get("acks-sent")
				return bw, acks
			}
			row := FeedbackAblationRow{Queue: q, ErrorRate: rate, FixedN: fixedN}
			row.Adaptive, row.AdaptiveAcks = run(0)
			row.Fixed, row.FixedAcks = run(fixedN)
			rows = append(rows, row)
		}
	}
	return rows
}

// FeedbackAblationString renders the comparison.
func FeedbackAblationString(rows []FeedbackAblationRow) string {
	header := []string{"queue", "err-rate", "adaptive-MB/s", "adaptive-acks", "fixed-N", "fixed-MB/s", "fixed-acks"}
	var rs [][]string
	for _, r := range rows {
		rs = append(rs, []string{fmt.Sprint(r.Queue), fmt.Sprintf("%g", r.ErrorRate),
			fmt.Sprintf("%.1f", r.Adaptive), fmt.Sprint(r.AdaptiveAcks),
			fmt.Sprint(r.FixedN), fmt.Sprintf("%.1f", r.Fixed), fmt.Sprint(r.FixedAcks)})
	}
	return "Ablation: sender-based feedback vs fixed ack period (unidirectional)\n" + table(header, rs)
}
