package sanft

import (
	"math"
	"strings"
	"time"

	"sanft/internal/core"
	"sanft/internal/report"
	"sanft/internal/retrans"
	"sanft/internal/topology"
)

// PaperSizes is the message-size axis of the paper's bandwidth figures:
// 4 B to 1 MB in powers of four.
var PaperSizes = []int{4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20}

// PaperTimers is the retransmission-interval axis of Figures 5–6.
var PaperTimers = []time.Duration{
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	time.Second,
}

// PaperQueues is the send-queue-size axis of Figures 7–8 (Table 1).
var PaperQueues = []int{2, 8, 32, 128}

// PaperErrorRates are the injected error rates of Figures 6 and 8.
var PaperErrorRates = []float64{1e-2, 1e-3, 1e-4}

// Options tunes how much work the experiment harness performs. The zero
// value gives a quick run that preserves every figure's shape; Paper-scale
// runs multiply the traffic so that even the lowest error rates see the
// paper's "at least ten drops".
type Options struct {
	// Sizes overrides the message-size axis (default: a 5-point subset
	// of PaperSizes for sweeps, the full axis for Figure 4).
	Sizes []int
	// MinDrops is the minimum injected drops a non-zero-error cell must
	// experience (default 10, like the paper).
	MinDrops int
	// MaxMessages caps per-cell message count (default 4000).
	MaxMessages int
	// MinMessages floors per-cell message count (default 20).
	MinMessages int
	// Seed drives all randomness.
	Seed int64
}

func (o Options) defaults() Options {
	if o.MinDrops == 0 {
		o.MinDrops = 10
	}
	if o.MaxMessages == 0 {
		o.MaxMessages = 4000
	}
	if o.MinMessages == 0 {
		o.MinMessages = 20
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// sweepSizes is the default size subset for the parameter sweeps
// (Figures 5–8): the paper's conclusions there concern sizes ≥4 KB, where
// bandwidth matters.
var sweepSizes = []int{1024, 4096, 65536, 1 << 20}

// iters picks the per-cell message count: enough bytes for a stable
// bandwidth estimate and enough packets for MinDrops drops at the given
// error rate.
func (o Options) iters(size int, rate float64) int {
	chunks := (size + 4095) / 4096
	if chunks < 1 {
		chunks = 1
	}
	// Bandwidth stability: ≥ 8 MB or MinMessages, whichever is more.
	n := (8 << 20) / size
	if n < o.MinMessages {
		n = o.MinMessages
	}
	if rate > 0 {
		need := int(math.Ceil(float64(o.MinDrops) / rate / float64(chunks)))
		if need > n {
			n = need
		}
	}
	if n > o.MaxMessages {
		n = o.MaxMessages
	}
	return n
}

// twoNode builds a fresh 2-host cluster for one micro-benchmark cell.
func twoNode(ft bool, q int, interval time.Duration, rate float64, seed int64) *core.Cluster {
	nw, hosts := topology.Star(2)
	return core.New(core.Config{
		Net:       nw,
		Hosts:     hosts,
		FT:        ft,
		Retrans:   retrans.Config{QueueSize: q, Interval: interval},
		ErrorRate: rate,
		Seed:      seed,
	})
}

// fourNode builds the application platform: 4 nodes on one switch.
func fourNode(q int, interval time.Duration, rate float64, seed int64) *core.Cluster {
	nw, hosts := topology.Star(4)
	return core.New(core.Config{
		Net:       nw,
		Hosts:     hosts,
		FT:        true,
		Retrans:   retrans.Config{QueueSize: q, Interval: interval},
		ErrorRate: rate,
		Seed:      seed,
	})
}

// fmtTimer renders a timer interval the way the paper labels it (10us,
// 1ms, 1s).
func fmtTimer(d time.Duration) string {
	s := d.String()
	s = strings.Replace(s, "µs", "us", 1)
	return s
}

// table renders rows of columns with aligned widths — the shared
// report.Grid formatter, kept under its historical name for the figure
// and ablation renderers.
func table(header []string, rows [][]string) string { return report.Grid(header, rows) }
