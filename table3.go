package sanft

import (
	"fmt"
	"time"

	"sanft/internal/core"
	"sanft/internal/mapping"
	"sanft/internal/retrans"
	"sanft/internal/sim"
	"sanft/internal/topology"
)

// Table3Row is one row of the paper's Table 3: the cost of on-demand
// mapping to a node at a given switch distance on the Figure 2 testbed.
type Table3Row struct {
	Hops         int
	HostProbes   int
	SwitchProbes int
	Total        int
	MapTime      time.Duration
}

// RunTable3 regenerates Table 3: for each hop count 1–4, a fresh Figure 2
// system maps on demand from the mapper host to a target that many
// switches away, counting probe messages and elapsed time.
func RunTable3(opt Options) []Table3Row {
	opt = opt.defaults()
	rows := make([]Table3Row, 0, 4)
	for hop := 0; hop < 4; hop++ {
		f := topology.NewFig2()
		c := core.New(core.Config{
			Net:     f.Net,
			Hosts:   f.Net.Hosts(),
			FT:      true,
			Retrans: retrans.Config{QueueSize: 32, Interval: time.Millisecond},
			Seed:    opt.Seed,
		})
		m := mapping.New(c.K, c.NIC(f.Mapper), mapping.Config{})
		var st mapping.Stats
		var ok bool
		target := f.Targets[hop]
		c.K.Spawn("table3", func(p *sim.Proc) {
			_, _, st, ok = m.MapTo(p, target)
			c.StopSoon()
		})
		c.RunFor(time.Minute)
		c.Stop()
		if !ok {
			panic(fmt.Sprintf("table3: mapping to %d-hop target failed", hop+1))
		}
		rows = append(rows, Table3Row{
			Hops:         hop + 1,
			HostProbes:   st.HostProbes,
			SwitchProbes: st.SwitchProbes,
			Total:        st.Total(),
			MapTime:      st.Elapsed,
		})
	}
	return rows
}

// Table3String renders the rows like the paper's table.
func Table3String(rows []Table3Row) string {
	header := []string{"#hops", "host-probes", "switch-probes", "total", "map-time"}
	var rs [][]string
	for _, r := range rows {
		rs = append(rs, []string{
			fmt.Sprint(r.Hops), fmt.Sprint(r.HostProbes), fmt.Sprint(r.SwitchProbes),
			fmt.Sprint(r.Total), r.MapTime.String(),
		})
	}
	return "Table 3: on-demand mapping cost vs switch distance (Fig. 2 testbed)\n" +
		table(header, rs)
}
