module sanft

go 1.22
