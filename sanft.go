// Package sanft is a simulation-based reproduction of "Tolerating Network
// Failures in System Area Networks" (Tang & Bilas, ICPP 2002).
//
// It provides:
//
//   - A deterministic discrete-event simulation of the paper's platform: a
//     Myrinet-like source-routed wormhole fabric with full-crossbar
//     switches, LANai-class NICs (firmware processor, SRAM send buffers,
//     PCI DMA), and the VMMC user-level communication layer — calibrated
//     to the paper's published constants (8µs 4-byte one-way latency
//     without fault tolerance, ~120 MB/s PCI-limited bandwidth).
//   - The paper's firmware-level retransmission protocol for transient
//     failures: per-destination-node queues, cumulative acks, piggyback
//     acks with sender-based feedback, one periodic timer, go-back-N.
//   - The paper's on-demand network mapping scheme for permanent
//     failures: decentralized BFS probing that discovers only the routes
//     it needs, with sequence-number generations and retransmission-based
//     deadlock recovery.
//   - The evaluation stack: micro-benchmarks (latency, ping-pong and
//     unidirectional bandwidth), a GeNIMA-style SVM substrate, and the
//     three SPLASH-2 applications (FFT, RadixLocal, WaterNSquared).
//   - Experiment harnesses that regenerate every figure and table of the
//     paper's evaluation (Fig3 … Fig9, Table3) plus ablations.
//
// The exported names below are aliases of the implementation packages, so
// the whole system is scriptable through this single import.
package sanft

import (
	"time"

	"sanft/internal/apps"
	"sanft/internal/core"
	"sanft/internal/enginestat"
	"sanft/internal/fabric"
	"sanft/internal/fault"
	"sanft/internal/mapping"
	"sanft/internal/microbench"
	"sanft/internal/nic"
	"sanft/internal/retrans"
	"sanft/internal/routing"
	"sanft/internal/sim"
	"sanft/internal/stats"
	"sanft/internal/svm"
	"sanft/internal/topology"
	"sanft/internal/trace"
	"sanft/internal/vmmc"
)

// Core system types.
type (
	// Cluster is a fully wired simulation instance: topology, fabric,
	// NICs, VMMC endpoints, optional mappers.
	Cluster = core.Cluster
	// Config describes a cluster build.
	Config = core.Config
	// RetransConfig holds the retransmission-protocol parameters
	// (Table 1: queue size, timer interval, ...).
	RetransConfig = retrans.Config
	// CostModel is the NIC hardware calibration.
	CostModel = nic.CostModel
	// FabricConfig holds wire constants (link rate, watchdog, ...).
	FabricConfig = fabric.Config

	// Network is a SAN wiring diagram; NodeID identifies its nodes.
	Network = topology.Network
	NodeID  = topology.NodeID
	// Fig2Topology is the paper's four-switch mapping testbed.
	Fig2Topology = topology.Fig2
	// Route is a source route (output port per switch).
	Route = routing.Route

	// Proc is a simulated process; Kernel the event engine beneath a
	// cluster.
	Proc   = sim.Proc
	Kernel = sim.Kernel

	// Endpoint is a VMMC endpoint; Export and Import its buffer
	// handles; Notification a message-arrival notice.
	Endpoint     = vmmc.Endpoint
	Export       = vmmc.Export
	Import       = vmmc.Import
	Notification = vmmc.Notification

	// NIC is the network interface model; Mapper the on-demand mapper.
	NIC    = nic.NIC
	Mapper = mapping.Mapper
	// MapStats counts mapping work (Table 3's columns).
	MapStats = mapping.Stats

	// Breakdown is the five-stage latency decomposition of Figure 3.
	Breakdown = stats.Breakdown

	// LatencyResult and BandwidthResult are micro-benchmark rows.
	LatencyResult   = microbench.LatencyResult
	BandwidthResult = microbench.BandwidthResult

	// SVM types for building shared-memory applications.
	SVM          = svm.System
	SVMConfig    = svm.Config
	SVMWorker    = svm.Worker
	SVMBreakdown = svm.Breakdown

	// Application parameter/result types.
	AppResult   = apps.Result
	FFTParams   = apps.FFTParams
	RadixParams = apps.RadixParams
	WaterParams = apps.WaterParams

	// Dropper injects send-side errors (the paper's methodology).
	Dropper = fault.Dropper

	// Tracer receives packet-level protocol events; TraceRing is a
	// ring-buffer implementation; TraceEvent one recorded action.
	Tracer     = trace.Tracer
	TraceRing  = trace.Ring
	TraceEvent = trace.Event
	// TraceKind discriminates trace events (send, link-block, watchdog, ...).
	TraceKind = trace.Kind
	// FlightRecorder is a tracer that freezes ring snapshots on anomalies;
	// TraceSnapshot is one frozen window.
	FlightRecorder = trace.FlightRecorder
	TraceSnapshot  = trace.Snapshot
	// TraceSpan is the reconstructed end-to-end story of one message;
	// TraceSpanKey its (src, dst, message-ID) identity.
	TraceSpan    = trace.Span
	TraceSpanKey = trace.SpanKey
	// TraceRecovery is the reconstructed event window around one anomaly.
	TraceRecovery = trace.RecoveryTimeline

	// EngineProfile is the engine self-profiler's collected result
	// (enable with WithEngineProfiling, read with Cluster.EngineProfile);
	// EngineProfileSummary its compact derived view; TelemetryServer the
	// live HTTP endpoint started by WithTelemetryServer.
	EngineProfile        = enginestat.Profile
	EngineProfileSummary = enginestat.Summary
	TelemetryServer      = enginestat.Server
)

// NewTraceRing returns a ring-buffer tracer holding up to n events; wire
// it with WithTracing (cluster-wide) or NIC.SetTracer (one NIC).
func NewTraceRing(n int) *TraceRing { return trace.NewRing(n) }

// NewFlightRecorder returns a flight-recorder tracer ringing the newest n
// events; wire it with WithFlightRecorder.
func NewFlightRecorder(n int) *FlightRecorder { return trace.NewFlightRecorder(n) }

// BuildSpans groups trace events into per-message spans (see TraceSpan).
func BuildSpans(events []TraceEvent) []*TraceSpan { return trace.BuildSpans(events) }

// DefaultParams returns the paper's best-compromise protocol parameters:
// a 32-buffer send queue and a 1 ms retransmission timer.
func DefaultParams() RetransConfig {
	return RetransConfig{QueueSize: 32, Interval: time.Millisecond}.Defaults()
}

// Sharded parallel execution types.
type (
	// EngineKind selects a cluster's execution engine; see WithEngine.
	EngineKind = core.EngineKind
	// ShardPlan partitions hosts into shards for EngineSharded; see
	// WithShardPlan.
	ShardPlan = core.ShardPlan
	// ShardedCluster is the historical name for a Cluster built with
	// EngineSharded.
	//
	// Deprecated: use Cluster — they have been one type since the
	// constructors were unified.
	ShardedCluster = core.ShardedCluster
	// Flow is one directed traffic stream of a sharded workload.
	Flow = core.Flow
	// Delivery is one accepted data frame in a sharded run's merged
	// delivery order.
	Delivery = core.Delivery
)

// Engine kinds, re-exported for WithEngine.
const (
	EngineSequential = core.EngineSequential
	EngineSharded    = core.EngineSharded
)

// NewSharded builds a sharded parallel cluster from the same options as
// New.
//
// Deprecated: use New(append(opts, WithEngine(EngineSharded))...) — one
// constructor builds both engines; WithShardPlan and WithWorkers shape
// the sharded run.
func NewSharded(opts ...Option) *ShardedCluster {
	return New(append(opts, WithEngine(EngineSharded))...)
}

// NewStar builds a cluster of n hosts on one full-crossbar switch.
//
// Deprecated: use New with options, e.g.
// New(WithStar(n), WithRetrans(rc), WithFaultTolerance(), WithErrorRate(p));
// drop WithFaultTolerance for the non-FT baseline (WithRetrans still
// applies — the queue size bounds the send-buffer pool either way).
func NewStar(n int, ft bool, rc RetransConfig, errorRate float64) *Cluster {
	opts := []Option{WithStar(n), WithRetrans(rc), WithErrorRate(errorRate)}
	if ft {
		opts = append(opts, WithFaultTolerance())
	}
	return New(opts...)
}

// Star builds the micro-benchmark topology (n hosts, one switch).
func Star(n int) (*Network, []NodeID) { return topology.Star(n) }

// DoubleStar builds two switches with doubled trunks — the smallest
// topology with full path redundancy.
func DoubleStar(n int) (*Network, []NodeID) { return topology.DoubleStar(n) }

// NewFig2 builds the paper's Figure 2 mapping testbed.
func NewFig2() *Fig2Topology { return topology.NewFig2() }

// NewMapper attaches an on-demand mapper to a NIC. An optional
// MapperConfig sets probe timeouts and BFS bounds; earlier versions
// dropped the configuration on the floor, so callers that need tuning
// should pass it here rather than mutating the mapper afterwards.
func NewMapper(k *Kernel, n *NIC, cfg ...MapperConfig) *Mapper {
	mc := MapperConfig{}
	if len(cfg) > 0 {
		mc = cfg[0]
	}
	return mapping.New(k, n, mc)
}

// ShortestRoute computes a BFS shortest source route between two hosts.
func ShortestRoute(nw *Network, a, b NodeID) (Route, error) { return routing.Shortest(nw, a, b) }

// Latency runs the one-way latency micro-benchmark on a fresh cluster.
func Latency(c *Cluster, size, iters int) LatencyResult { return microbench.Latency(c, size, iters) }

// PingPongBandwidth runs the paper's "bidirectional" bandwidth test.
func PingPongBandwidth(c *Cluster, size, iters int) BandwidthResult {
	return microbench.PingPong(c, size, iters)
}

// UnidirectionalBandwidth runs the streaming bandwidth test.
func UnidirectionalBandwidth(c *Cluster, size, iters int) BandwidthResult {
	return microbench.Unidirectional(c, size, iters)
}

// NewSVM builds a shared-virtual-memory system over a cluster's hosts.
func NewSVM(c *Cluster, cfg SVMConfig) *SVM { return svm.New(c, c.Hosts, cfg) }

// RunFFT, RunRadix and RunWater execute the SPLASH-2 kernels.
func RunFFT(c *Cluster, p FFTParams) (AppResult, error)     { return apps.RunFFT(c, p) }
func RunRadix(c *Cluster, p RadixParams) (AppResult, error) { return apps.RunRadix(c, p) }
func RunWater(c *Cluster, p WaterParams) (AppResult, error) { return apps.RunWater(c, p) }

// PaperFFTParams, PaperRadixParams, PaperWaterParams return the Table 2
// problem sizes.
func PaperFFTParams() FFTParams     { return apps.PaperFFTParams() }
func PaperRadixParams() RadixParams { return apps.PaperRadixParams() }
func PaperWaterParams() WaterParams { return apps.PaperWaterParams() }
