package sanft

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// TestTracedWorkloadBreakdown is the acceptance check for the latency
// decomposition: on the default 8-node workload, every message completes
// and its host/NIC/wire components sum to the measured one-way latency
// within 1%.
func TestTracedWorkloadBreakdown(t *testing.T) {
	res, err := RunTraced(TraceSetup{})
	if err != nil {
		t.Fatal(err)
	}
	if want := 8 * 4; len(res.Messages) != want {
		t.Fatalf("messages = %d, want %d", len(res.Messages), want)
	}
	for _, m := range res.Messages {
		if !m.Complete {
			t.Fatalf("message %d->%d msg=%d never completed", m.Src, m.Dst, m.MsgID)
		}
		if m.Latency <= 0 {
			t.Fatalf("message %d->%d msg=%d latency %v", m.Src, m.Dst, m.MsgID, m.Latency)
		}
		sum := m.Host + m.NIC + m.Wire
		diff := sum - m.Latency
		if diff < 0 {
			diff = -diff
		}
		if diff*100 > m.Latency {
			t.Fatalf("message %d->%d msg=%d: host+nic+wire = %v, latency = %v (off by %v, >1%%)",
				m.Src, m.Dst, m.MsgID, sum, m.Latency, diff)
		}
	}
	if len(res.Events) == 0 || len(res.Spans) != len(res.Messages) {
		t.Fatalf("events=%d spans=%d", len(res.Events), len(res.Spans))
	}
}

// TestTracedRunDeterministic is the acceptance check for reproducibility:
// identical seeds produce byte-identical text timelines and Perfetto JSON.
func TestTracedRunDeterministic(t *testing.T) {
	run := func() (string, string) {
		res, err := RunTraced(TraceSetup{ErrorRate: 0.2, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		var pf strings.Builder
		if err := res.WritePerfetto(&pf); err != nil {
			t.Fatal(err)
		}
		return res.TimelineText(0), pf.String()
	}
	tl1, pf1 := run()
	tl2, pf2 := run()
	if tl1 != tl2 {
		t.Fatal("text timelines differ across identical-seed runs")
	}
	if pf1 != pf2 {
		t.Fatal("Perfetto output differs across identical-seed runs")
	}
	// A different seed must actually change the trace (guards against the
	// seed being ignored).
	res3, err := RunTraced(TraceSetup{ErrorRate: 0.2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res3.TimelineText(0) == tl1 {
		t.Fatal("different seeds produced identical timelines")
	}
}

// TestTracedPerfettoParses is the acceptance check for the export format:
// the emitted JSON is well-formed and track metadata precedes data.
func TestTracedPerfettoParses(t *testing.T) {
	res, err := RunTraced(TraceSetup{Hosts: 4, Msgs: 2})
	if err != nil {
		t.Fatal(err)
	}
	var pf strings.Builder
	if err := res.WritePerfetto(&pf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(pf.String()), &doc); err != nil {
		t.Fatalf("Perfetto output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(res.Events) {
		t.Fatalf("trace has %d entries for %d events", len(doc.TraceEvents), len(res.Events))
	}
	sawMeta := false
	for _, e := range doc.TraceEvents {
		if e["ph"] == "M" {
			sawMeta = true
		}
	}
	if !sawMeta {
		t.Fatal("no track metadata emitted")
	}
}

// TestChaosTimelineGolden pins the link-flap campaign's timeline tail
// against a golden file — the same check CI runs through cmd/santrace.
// Regenerate with: go test -run TestChaosTimelineGolden -update .
func TestChaosTimelineGolden(t *testing.T) {
	res, err := RunTraced(TraceSetup{Campaign: "link-flap"})
	if err != nil {
		t.Fatal(err)
	}
	got := res.TimelineText(400)
	golden := filepath.Join("testdata", "santrace-linkflap.timeline")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Fatalf("timeline drifted from %s (regenerate with -update if intended); got %d bytes, want %d",
			golden, len(got), len(want))
	}
}

// TestTracedCampaignFlightRecorder checks that a campaign that provokes
// anomalies leaves snapshots behind and that the recovery report renders.
func TestTracedCampaignFlightRecorder(t *testing.T) {
	res, err := RunTraced(TraceSetup{Campaign: "partition-heal"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Chaos == nil {
		t.Fatal("campaign run returned no chaos report")
	}
	if res.Recorder.Triggered() == 0 {
		t.Fatal("partition-heal provoked no flight-recorder triggers")
	}
	if len(res.Recorder.Snapshots()) == 0 {
		t.Fatal("no snapshots retained")
	}
	rr := res.RecoveryReport(500*time.Microsecond, 500*time.Microsecond, 3)
	if !strings.Contains(rr, "recovery around") {
		t.Fatalf("recovery report empty:\n%s", rr)
	}
}

// TestRunTracedUnknownCampaign pins the error path.
func TestRunTracedUnknownCampaign(t *testing.T) {
	if _, err := RunTraced(TraceSetup{Campaign: "no-such"}); err == nil {
		t.Fatal("unknown campaign accepted")
	}
}
