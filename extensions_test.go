package sanft

import (
	"strings"
	"testing"
)

func TestRouteQualityExtension(t *testing.T) {
	rows := RunRouteQuality(17)
	if len(rows) == 0 {
		t.Fatal("no topologies analyzed")
	}
	for _, r := range rows {
		if r.Pairs == 0 {
			t.Fatalf("%s: no pairs", r.Topology)
		}
		if r.MeanUpDown < r.MeanShortest {
			t.Fatalf("%s: UP*/DOWN* mean %v shorter than shortest %v (impossible)",
				r.Topology, r.MeanUpDown, r.MeanShortest)
		}
	}
	// On a ring, UP*/DOWN* must inflate some routes (it cannot use the
	// link that closes the cycle in both directions).
	var ring RouteQualityRow
	for _, r := range rows {
		if r.Topology == "ring6" {
			ring = r
		}
	}
	if ring.Inflated == 0 {
		t.Fatal("ring: UP*/DOWN* inflated no routes — the quality gap should exist")
	}
	if !strings.Contains(RouteQualityString(rows), "ring6") {
		t.Fatal("render missing")
	}
}

func TestBurstErrorsExtension(t *testing.T) {
	rows := RunBurstErrors(65536, []float64{1e-2}, 8, Options{MaxMessages: 1500})
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Uniform <= 0 || r.Bursty <= 0 {
		t.Fatalf("zero bandwidth: %+v", r)
	}
	// The paper's assertion: uniform errors are the more stressful test.
	// At equal rate, bursty loss costs one recovery per burst instead of
	// one per packet, so bursty throughput should be at least as good.
	if r.Bursty < r.Uniform*0.95 {
		t.Fatalf("bursty (%v) markedly worse than uniform (%v); contradicts the burst-amortization argument",
			r.Bursty, r.Uniform)
	}
	if !strings.Contains(BurstErrorString(rows), "burst") {
		t.Fatal("render missing")
	}
}

func TestStateScalingExtension(t *testing.T) {
	rows := RunStateScaling(2, []int{64})
	r := rows[0]
	if r.PerNodeQueues != 63 || r.PerConnQueues != 63*4 {
		t.Fatalf("row = %+v", r)
	}
	if !strings.Contains(StateScalingString(rows), "per-node") {
		t.Fatal("render missing")
	}
}

func TestReliabilityLevelsExtension(t *testing.T) {
	rows := RunReliabilityLevels(Options{MaxMessages: 400})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	unrel, rd, rr := rows[0], rows[1], rows[2]
	// Latency strictly ordered: unreliable < reliable delivery ≤ reliable
	// reception (the stronger level defers acks past the host DMA, which
	// does not change one-way data latency but must not reduce it).
	if !(unrel.Latency4B < rd.Latency4B) {
		t.Fatalf("reliable delivery (%v) should cost more than unreliable (%v)",
			rd.Latency4B, unrel.Latency4B)
	}
	if rr.Latency4B < rd.Latency4B {
		t.Fatalf("reliable reception (%v) should not beat reliable delivery (%v)",
			rr.Latency4B, rd.Latency4B)
	}
	// Bandwidth: all three sustain the PCI-bound rate within a few
	// percent (acks are off the critical path at q=32).
	for _, r := range rows[1:] {
		if r.UniMBps < unrel.UniMBps*0.95 {
			t.Fatalf("%s bandwidth %.1f too far below unreliable %.1f",
				r.Level, r.UniMBps, unrel.UniMBps)
		}
	}
}

func TestScalabilityExtension(t *testing.T) {
	rows := RunScalability([]int{2, 4, 8}, 65536, 6, Options{})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Aggregate <= 0 {
			t.Fatalf("row %+v has no throughput", r)
		}
		// The paper predicts occasional FALSE retransmissions under high
		// contention (§5.1.2: a short timeout "may lead to false
		// retransmissions in cases of high network contention") — a
		// packet queued behind other senders at a hot receiver can
		// out-wait the 1 ms timer. Allow a small fraction, not a storm.
		totalPkts := uint64(r.Hosts*(r.Hosts-1)*6) * (65536 / 4096)
		if r.Retransmissions > totalPkts/50 {
			t.Fatalf("%d hosts: %d retransmissions of %d packets — more than contention noise",
				r.Hosts, r.Retransmissions, totalPkts)
		}
		if i > 0 && r.Aggregate <= rows[i-1].Aggregate {
			t.Fatalf("aggregate throughput not scaling: %d hosts %.1f ≤ %d hosts %.1f",
				r.Hosts, r.Aggregate, rows[i-1].Hosts, rows[i-1].Aggregate)
		}
	}
	// Per-host throughput is bounded by the per-port PCI limit.
	for _, r := range rows {
		if r.PerHost > 130 {
			t.Fatalf("%d hosts: per-host %.1f exceeds the PCI bound", r.Hosts, r.PerHost)
		}
	}
}
