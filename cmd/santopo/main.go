// Command santopo inspects the simulated topologies: it prints the wiring
// of the built-in testbeds, the routes a cluster would install, and the
// effect of what-if failures on reachability.
//
// Usage:
//
//	santopo -topo fig2                 # print the Figure 2 wiring
//	santopo -topo star -hosts 8        # single-switch star
//	santopo -topo fig2 -routes         # all-pairs shortest routes
//	santopo -topo fig2 -kill-switch 1  # reachability after a switch dies
package main

import (
	"flag"
	"fmt"
	"os"

	"sanft"
)

func main() {
	topo := flag.String("topo", "fig2", "topology: fig2, star, doublestar")
	hosts := flag.Int("hosts", 8, "host count for star/doublestar")
	routes := flag.Bool("routes", false, "print all-pairs shortest routes")
	killSwitch := flag.Int("kill-switch", -1, "index of a switch to fail before analysis")
	flag.Parse()

	var nw *sanft.Network
	switch *topo {
	case "fig2":
		f := sanft.NewFig2()
		nw = f.Net
		fmt.Printf("Figure 2 testbed (mapper=%d, targets=%v)\n", f.Mapper, f.Targets)
	case "star":
		nw, _ = sanft.Star(*hosts)
	case "doublestar":
		nw, _ = sanft.DoubleStar(*hosts)
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topo)
		os.Exit(2)
	}

	if *killSwitch >= 0 {
		sws := nw.Switches()
		if *killSwitch >= len(sws) {
			fmt.Fprintf(os.Stderr, "no switch %d (have %d)\n", *killSwitch, len(sws))
			os.Exit(2)
		}
		nw.KillSwitch(sws[*killSwitch])
		fmt.Printf("killed switch %d\n", *killSwitch)
	}

	fmt.Println(nw.String())

	hs := nw.Hosts()
	if *routes {
		fmt.Println("all-pairs shortest routes:")
		for _, a := range hs {
			for _, b := range hs {
				if a == b {
					continue
				}
				r, err := sanft.ShortestRoute(nw, a, b)
				if err != nil {
					fmt.Printf("  %d -> %d: UNREACHABLE\n", a, b)
					continue
				}
				fmt.Printf("  %d -> %d: %v\n", a, b, r)
			}
		}
		return
	}

	// Reachability summary.
	unreachable := 0
	for _, a := range hs {
		for _, b := range hs {
			if a == b {
				continue
			}
			if _, err := sanft.ShortestRoute(nw, a, b); err != nil {
				unreachable++
			}
		}
	}
	total := len(hs) * (len(hs) - 1)
	fmt.Printf("reachable host pairs: %d/%d\n", total-unreachable, total)
}
