// Command sanprop runs long property-based testing campaigns against the
// platform: seed-driven lockstep differential checking of the
// retransmission protocol against its reference model, and whole-simulator
// scenarios checked with the chaos invariant oracle. Failures are shrunk
// to a minimal reproducer and dumped as corpus files (plus flight-recorder
// and Perfetto traces for simulator failures) ready to commit under
// testdata/proptest/.
//
// Usage:
//
//	sanprop                                # 1000 lockstep + 1000 sim cases
//	sanprop -n 10000 -mode lockstep        # longer, one mode
//	sanprop -seed 5000                     # different seed range
//	sanprop -mutation ack-eager            # demo: run with a bug injected
//	sanprop -replay testdata/proptest/ack-before-commit.ops
//	sanprop -replay 42 -mode sim           # replay one generated seed
//
// Exit status is nonzero if any case fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"sanft/internal/proptest"
	"sanft/internal/report"
)

func main() {
	n := flag.Int("n", 1000, "cases to run per mode")
	mode := flag.String("mode", "both", "lockstep, sim, or both")
	seed := flag.Int64("seed", 1, "first seed; cases use seed..seed+n-1")
	mutName := flag.String("mutation", "none", "inject a known bug into the lockstep harness (none, ack-eager, accept-ooo)")
	artifacts := flag.String("artifacts", "sanprop-failures", "directory for shrunk failure reproducers")
	replay := flag.String("replay", "", "replay a corpus file (.ops/.sim) or a single integer seed, then exit")
	asJSON := flag.Bool("json", false, "emit the final report as JSON")
	flag.Parse()

	mut, err := parseMutationFlag(*mutName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sanprop: %v\n", err)
		os.Exit(2)
	}
	runLockstep := *mode == "lockstep" || *mode == "both"
	runSim := *mode == "sim" || *mode == "both"
	if !runLockstep && !runSim {
		fmt.Fprintf(os.Stderr, "sanprop: unknown mode %q (want lockstep, sim, or both)\n", *mode)
		os.Exit(2)
	}

	if *replay != "" {
		os.Exit(replayOne(*replay, runLockstep, runSim, mut))
	}

	var failures int
	var rows [][]string
	if runLockstep {
		rows = append(rows, lockstepCampaign(*seed, *n, mut, *artifacts, &failures))
	}
	if runSim {
		rows = append(rows, simCampaign(*seed, *n, *artifacts, &failures))
	}

	tbl := report.Table{
		Name:   "sanprop",
		Header: []string{"mode", "cases", "failures", "elapsed"},
		Cells:  rows,
	}
	if *asJSON {
		if err := tbl.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "sanprop: %v\n", err)
			os.Exit(2)
		}
	} else {
		fmt.Print(tbl.String())
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "sanprop: %d failing case(s); reproducers in %s\n", failures, *artifacts)
		os.Exit(1)
	}
}

func parseMutationFlag(s string) (proptest.Mutation, error) {
	for _, m := range []proptest.Mutation{proptest.MutNone, proptest.MutAckEager, proptest.MutAcceptOOO} {
		if s == m.String() {
			return m, nil
		}
	}
	return proptest.MutNone, fmt.Errorf("unknown mutation %q", s)
}

// lockstepCampaign runs n lockstep cases and returns a report row.
func lockstepCampaign(seed int64, n int, mut proptest.Mutation, dir string, failures *int) []string {
	start := time.Now()
	failed := 0
	for i := 0; i < n; i++ {
		s := seed + int64(i)
		sc := proptest.GenOps(s)
		div := proptest.RunLockstep(sc, mut)
		if div == nil {
			progress("lockstep", i+1, n)
			continue
		}
		failed++
		min := proptest.ShrinkOps(sc, mut)
		minDiv := proptest.RunLockstep(min, mut)
		if minDiv == nil {
			minDiv = div
		}
		path := filepath.Join(dir, fmt.Sprintf("lockstep-seed%d.ops", s))
		if err := os.MkdirAll(dir, 0o755); err == nil {
			err = os.WriteFile(path, proptest.FormatOps(min, mut), 0o644)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sanprop: write %s: %v\n", path, err)
			}
		}
		fmt.Fprintf(os.Stderr, "sanprop: lockstep seed %d FAILED: %v\n  shrunk to %d op(s): %s\n",
			s, minDiv, len(min.Ops), path)
	}
	*failures += failed
	return []string{"lockstep", strconv.Itoa(n), strconv.Itoa(failed), time.Since(start).Round(time.Millisecond).String()}
}

// simCampaign runs n whole-simulator cases and returns a report row.
func simCampaign(seed int64, n int, dir string, failures *int) []string {
	start := time.Now()
	failed := 0
	for i := 0; i < n; i++ {
		s := seed + int64(i)
		sc := proptest.GenSim(s)
		res := proptest.RunSim(sc)
		if !res.Failed() {
			progress("sim", i+1, n)
			continue
		}
		failed++
		min := proptest.ShrinkSim(sc)
		minRes := proptest.RunSim(min)
		if !minRes.Failed() {
			minRes = res // shrink result went flaky-clean; keep the original
		}
		name := fmt.Sprintf("sim-seed%d", s)
		path, err := proptest.WriteFailureArtifacts(dir, name, minRes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sanprop: write artifacts for seed %d: %v\n", s, err)
		}
		fmt.Fprintf(os.Stderr, "sanprop: sim seed %d FAILED:\n%s  repro: %s\n", s, indent(minRes.Summary()), path)
	}
	*failures += failed
	return []string{"sim", strconv.Itoa(n), strconv.Itoa(failed), time.Since(start).Round(time.Millisecond).String()}
}

// progress prints a heartbeat to stderr every 10% of a campaign.
func progress(mode string, done, total int) {
	if total >= 10 && done%(total/10) == 0 {
		fmt.Fprintf(os.Stderr, "sanprop: %s %d/%d\n", mode, done, total)
	}
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "    " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

// replayOne replays a single corpus file or generated seed and reports
// pass/fail. Corpus files are dispatched on their header line.
func replayOne(arg string, runLockstep, runSim bool, mut proptest.Mutation) int {
	if data, err := os.ReadFile(arg); err == nil {
		return replayFile(arg, data)
	}
	s, err := strconv.ParseInt(arg, 10, 64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sanprop: -replay wants a corpus file or an integer seed, got %q\n", arg)
		return 2
	}
	code := 0
	if runLockstep {
		sc := proptest.GenOps(s)
		if div := proptest.RunLockstep(sc, mut); div != nil {
			fmt.Printf("lockstep seed %d: FAIL: %v\n", s, div)
			code = 1
		} else {
			fmt.Printf("lockstep seed %d: ok (%d ops, queue %d, %d dests)\n", s, len(sc.Ops), sc.QueueSize, sc.Dests)
		}
	}
	if runSim {
		res := proptest.RunSim(proptest.GenSim(s))
		fmt.Printf("sim seed %d:\n%s", s, indent(res.Summary()))
		if res.Failed() {
			code = 1
		}
	}
	return code
}

func replayFile(path string, data []byte) int {
	header, _, _ := strings.Cut(strings.TrimSpace(string(data)), "\n")
	switch strings.TrimSpace(header) {
	case "lockstep v1":
		sc, mut, err := proptest.ParseOps(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sanprop: %s: %v\n", path, err)
			return 2
		}
		if div := proptest.RunLockstep(sc, mut); div != nil {
			fmt.Printf("%s: FAIL (mutation %s): %v\n", path, mut, div)
			return 1
		}
		fmt.Printf("%s: ok (mutation %s, %d ops)\n", path, mut, len(sc.Ops))
		return 0
	case "sim v1":
		sc, err := proptest.ParseSim(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sanprop: %s: %v\n", path, err)
			return 2
		}
		res := proptest.RunSim(sc)
		fmt.Printf("%s:\n%s", path, indent(res.Summary()))
		if res.Failed() {
			return 1
		}
		return 0
	default:
		fmt.Fprintf(os.Stderr, "sanprop: %s: unknown corpus header %q\n", path, header)
		return 2
	}
}
