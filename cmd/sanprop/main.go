// Command sanprop runs long property-based testing campaigns against the
// platform: seed-driven lockstep differential checking of the
// retransmission protocol against its reference model, and whole-simulator
// scenarios checked with the chaos invariant oracle. Failures are shrunk
// to a minimal reproducer and dumped as corpus files (plus flight-recorder
// and Perfetto traces for simulator failures) ready to commit under
// testdata/proptest/.
//
// Usage:
//
//	sanprop                                # 1000 lockstep + 1000 sim cases
//	sanprop -n 10000 -mode lockstep        # longer, one mode
//	sanprop -n 10000 -workers 8            # same campaign, 8 OS threads
//	sanprop -mode parallel -n 500          # differential: pool vs sequential
//	sanprop -seed 5000                     # different seed range
//	sanprop -mutation ack-eager            # demo: run with a bug injected
//	sanprop -replay testdata/proptest/ack-before-commit.ops
//	sanprop -replay 42 -mode sim           # replay one generated seed
//
// -workers runs the case loop through the parallel campaign pool
// (internal/parsim): each case is an independent deterministic
// simulation, results are gathered by case index, and failing seeds are
// shrunk in a sequential post-pass — so the report and every artifact
// are identical for any worker count.
//
// -mode parallel is the differential self-check: it runs the same seed
// range once sequentially and once through the pool and byte-compares
// the per-case outcome digests, reporting both wall-clock times.
//
// Exit status is nonzero if any case fails.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sanft/internal/enginestat"
	"sanft/internal/parsim"
	"sanft/internal/proptest"
	"sanft/internal/report"
)

func main() {
	n := flag.Int("n", 1000, "cases to run per mode")
	mode := flag.String("mode", "both", "lockstep, sim, both, or parallel (differential pool-vs-sequential check)")
	seed := flag.Int64("seed", 1, "first seed; cases use seed..seed+n-1")
	workers := flag.Int("workers", 1, "campaign pool workers (0 = GOMAXPROCS)")
	mutName := flag.String("mutation", "none", "inject a known bug into the lockstep harness (none, ack-eager, accept-ooo)")
	artifacts := flag.String("artifacts", "sanprop-failures", "directory for shrunk failure reproducers")
	replay := flag.String("replay", "", "replay a corpus file (.ops/.sim) or a single integer seed, then exit")
	asJSON := flag.Bool("json", false, "emit the final report as JSON")
	httpAddr := flag.String("http", "",
		"serve live campaign progress (/progress, /debug/pprof) on this address while cases run")
	httpHold := flag.Duration("http-hold", 0,
		"with -http: keep the telemetry server up this long after the campaign finishes")
	flag.Parse()

	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	mut, err := parseMutationFlag(*mutName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sanprop: %v\n", err)
		os.Exit(2)
	}
	if *mode == "parallel" {
		os.Exit(parallelDifferential(*seed, *n, *workers, mut, *asJSON))
	}
	runLockstep := *mode == "lockstep" || *mode == "both"
	runSim := *mode == "sim" || *mode == "both"
	if !runLockstep && !runSim {
		fmt.Fprintf(os.Stderr, "sanprop: unknown mode %q (want lockstep, sim, both, or parallel)\n", *mode)
		os.Exit(2)
	}

	if *replay != "" {
		os.Exit(replayOne(*replay, runLockstep, runSim, mut))
	}

	// Live telemetry (-http): both campaigns share one progress tracker,
	// armed with the whole case budget so /progress spans the full run.
	var srv *enginestat.Server
	var prog *parsim.Progress
	if *httpAddr != "" {
		var err error
		srv, err = enginestat.NewServer(*httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sanprop: telemetry listen on %s: %v\n", *httpAddr, err)
			os.Exit(2)
		}
		prog = &parsim.Progress{}
		total := 0
		if runLockstep {
			total += *n
		}
		if runSim {
			total += *n
		}
		prog.Begin(total)
		srv.SetProgress(prog.Snapshot)
		fmt.Fprintf(os.Stderr, "sanprop: telemetry on http://%s (/progress /debug/pprof)\n", srv.Addr())
	}

	var failures int
	var rows [][]string
	if runLockstep {
		rows = append(rows, lockstepCampaign(*seed, *n, mut, *artifacts, &failures, *workers, prog))
	}
	if runSim {
		rows = append(rows, simCampaign(*seed, *n, *artifacts, &failures, *workers, prog))
	}

	tbl := report.Table{
		Name:   "sanprop",
		Header: []string{"mode", "cases", "failures", "elapsed"},
		Cells:  rows,
	}
	if *asJSON {
		if err := tbl.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "sanprop: %v\n", err)
			os.Exit(2)
		}
	} else {
		fmt.Print(tbl.String())
	}
	if srv != nil {
		if *httpHold > 0 {
			fmt.Fprintf(os.Stderr, "sanprop: holding telemetry server %v for a final scrape\n", *httpHold)
			time.Sleep(*httpHold)
		}
		srv.Close()
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "sanprop: %d failing case(s); reproducers in %s\n", failures, *artifacts)
		os.Exit(1)
	}
}

func parseMutationFlag(s string) (proptest.Mutation, error) {
	for _, m := range []proptest.Mutation{proptest.MutNone, proptest.MutAckEager, proptest.MutAcceptOOO} {
		if s == m.String() {
			return m, nil
		}
	}
	return proptest.MutNone, fmt.Errorf("unknown mutation %q", s)
}

// lockstepCampaign runs n lockstep cases (through the pool when
// workers > 1) and returns a report row. The fast pass only records
// which seeds failed; shrinking and artifact writing happen in a
// sequential post-pass so output is identical for any worker count.
func lockstepCampaign(seed int64, n int, mut proptest.Mutation, dir string, failures *int, workers int, prog *parsim.Progress) []string {
	start := time.Now()
	var done atomic.Int64
	failedCase := parsim.Map(parsim.Pool{Workers: workers, Progress: prog}, n, func(i int) bool {
		div := proptest.RunLockstep(proptest.GenOps(seed+int64(i)), mut)
		progress("lockstep", int(done.Add(1)), n)
		return div != nil
	})
	failed := 0
	for i, bad := range failedCase {
		if !bad {
			continue
		}
		failed++
		s := seed + int64(i)
		sc := proptest.GenOps(s)
		div := proptest.RunLockstep(sc, mut)
		min := proptest.ShrinkOps(sc, mut)
		minDiv := proptest.RunLockstep(min, mut)
		if minDiv == nil {
			minDiv = div
		}
		path := filepath.Join(dir, fmt.Sprintf("lockstep-seed%d.ops", s))
		if err := os.MkdirAll(dir, 0o755); err == nil {
			err = os.WriteFile(path, proptest.FormatOps(min, mut), 0o644)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sanprop: write %s: %v\n", path, err)
			}
		}
		fmt.Fprintf(os.Stderr, "sanprop: lockstep seed %d FAILED: %v\n  shrunk to %d op(s): %s\n",
			s, minDiv, len(min.Ops), path)
	}
	*failures += failed
	return []string{"lockstep", strconv.Itoa(n), strconv.Itoa(failed), time.Since(start).Round(time.Millisecond).String()}
}

// simCampaign runs n whole-simulator cases (through the pool when
// workers > 1) and returns a report row. Shrinking is a sequential
// post-pass, as in lockstepCampaign.
func simCampaign(seed int64, n int, dir string, failures *int, workers int, prog *parsim.Progress) []string {
	start := time.Now()
	var done atomic.Int64
	failedCase := parsim.Map(parsim.Pool{Workers: workers, Progress: prog}, n, func(i int) bool {
		res := proptest.RunSim(proptest.GenSim(seed + int64(i)))
		progress("sim", int(done.Add(1)), n)
		return res.Failed()
	})
	failed := 0
	for i, bad := range failedCase {
		if !bad {
			continue
		}
		failed++
		s := seed + int64(i)
		sc := proptest.GenSim(s)
		res := proptest.RunSim(sc)
		min := proptest.ShrinkSim(sc)
		minRes := proptest.RunSim(min)
		if !minRes.Failed() {
			minRes = res // shrink result went flaky-clean; keep the original
		}
		name := fmt.Sprintf("sim-seed%d", s)
		path, err := proptest.WriteFailureArtifacts(dir, name, minRes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sanprop: write artifacts for seed %d: %v\n", s, err)
		}
		fmt.Fprintf(os.Stderr, "sanprop: sim seed %d FAILED:\n%s  repro: %s\n", s, indent(minRes.Summary()), path)
	}
	*failures += failed
	return []string{"sim", strconv.Itoa(n), strconv.Itoa(failed), time.Since(start).Round(time.Millisecond).String()}
}

// parallelDifferential runs the same seed range once sequentially and
// once through the campaign pool, byte-compares the per-case outcome
// digests, and reports both wall-clock times. A digest mismatch means
// the pool changed simulation results — the one thing it must never do.
func parallelDifferential(seed int64, n, workers int, mut proptest.Mutation, asJSON bool) int {
	if workers <= 1 {
		workers = runtime.GOMAXPROCS(0)
		if workers < 2 {
			workers = 2
		}
	}
	digest := func(w int) ([]byte, time.Duration) {
		start := time.Now()
		lines := parsim.Map(parsim.Pool{Workers: w}, n, func(i int) string {
			s := seed + int64(i)
			var b strings.Builder
			if div := proptest.RunLockstep(proptest.GenOps(s), mut); div != nil {
				fmt.Fprintf(&b, "seed %d lockstep FAIL: %v\n", s, div)
			} else {
				fmt.Fprintf(&b, "seed %d lockstep ok\n", s)
			}
			res := proptest.RunSim(proptest.GenSim(s))
			fmt.Fprintf(&b, "seed %d sim failed=%v delivered=%d\n", s, res.Failed(), res.Delivered)
			return b.String()
		})
		return []byte(strings.Join(lines, "")), time.Since(start)
	}
	seq, seqD := digest(1)
	par, parD := digest(workers)

	match := bytes.Equal(seq, par)
	tbl := report.Table{
		Name:   "sanprop parallel differential",
		Header: []string{"run", "workers", "cases", "elapsed", "digest"},
		Cells: [][]string{
			{"sequential", "1", strconv.Itoa(n), seqD.Round(time.Millisecond).String(), fmt.Sprintf("%d bytes", len(seq))},
			{"pool", strconv.Itoa(workers), strconv.Itoa(n), parD.Round(time.Millisecond).String(), matchWord(match)},
		},
	}
	if asJSON {
		if err := tbl.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "sanprop: %v\n", err)
			return 2
		}
	} else {
		fmt.Print(tbl.String())
	}
	if !match {
		la, lb := bytes.Split(seq, []byte("\n")), bytes.Split(par, []byte("\n"))
		for i := 0; i < len(la) && i < len(lb); i++ {
			if !bytes.Equal(la[i], lb[i]) {
				fmt.Fprintf(os.Stderr, "sanprop: digest diverges at line %d:\n  seq: %s\n  par: %s\n",
					i+1, la[i], lb[i])
				break
			}
		}
		fmt.Fprintln(os.Stderr, "sanprop: PARALLEL DIGEST MISMATCH — pool execution changed simulation results")
		return 1
	}
	return 0
}

func matchWord(ok bool) string {
	if ok {
		return "identical"
	}
	return "MISMATCH"
}

// progress prints a heartbeat to stderr every 10% of a campaign.
func progress(mode string, done, total int) {
	if total >= 10 && done%(total/10) == 0 {
		fmt.Fprintf(os.Stderr, "sanprop: %s %d/%d\n", mode, done, total)
	}
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "    " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

// replayOne replays a single corpus file or generated seed and reports
// pass/fail. Corpus files are dispatched on their header line.
func replayOne(arg string, runLockstep, runSim bool, mut proptest.Mutation) int {
	if data, err := os.ReadFile(arg); err == nil {
		return replayFile(arg, data)
	}
	s, err := strconv.ParseInt(arg, 10, 64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sanprop: -replay wants a corpus file or an integer seed, got %q\n", arg)
		return 2
	}
	code := 0
	if runLockstep {
		sc := proptest.GenOps(s)
		if div := proptest.RunLockstep(sc, mut); div != nil {
			fmt.Printf("lockstep seed %d: FAIL: %v\n", s, div)
			code = 1
		} else {
			fmt.Printf("lockstep seed %d: ok (%d ops, queue %d, %d dests)\n", s, len(sc.Ops), sc.QueueSize, sc.Dests)
		}
	}
	if runSim {
		res := proptest.RunSim(proptest.GenSim(s))
		fmt.Printf("sim seed %d:\n%s", s, indent(res.Summary()))
		if res.Failed() {
			code = 1
		}
	}
	return code
}

func replayFile(path string, data []byte) int {
	header, _, _ := strings.Cut(strings.TrimSpace(string(data)), "\n")
	switch strings.TrimSpace(header) {
	case "lockstep v1":
		sc, mut, err := proptest.ParseOps(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sanprop: %s: %v\n", path, err)
			return 2
		}
		if div := proptest.RunLockstep(sc, mut); div != nil {
			fmt.Printf("%s: FAIL (mutation %s): %v\n", path, mut, div)
			return 1
		}
		fmt.Printf("%s: ok (mutation %s, %d ops)\n", path, mut, len(sc.Ops))
		return 0
	case "sim v1":
		sc, err := proptest.ParseSim(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sanprop: %s: %v\n", path, err)
			return 2
		}
		res := proptest.RunSim(sc)
		fmt.Printf("%s:\n%s", path, indent(res.Summary()))
		if res.Failed() {
			return 1
		}
		return 0
	default:
		fmt.Fprintf(os.Stderr, "sanprop: %s: unknown corpus header %q\n", path, header)
		return 2
	}
}
