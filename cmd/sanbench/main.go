// Command sanbench regenerates the paper's micro-benchmark figures
// (Figures 3–8) and the protocol ablations as text tables.
//
// Usage:
//
//	sanbench -fig 3            # latency breakdown (Fig. 3)
//	sanbench -fig 4            # latency + bandwidth, FT vs no-FT (Fig. 4)
//	sanbench -fig 5            # timer sweep, no errors (Fig. 5)
//	sanbench -fig 6            # timer sweep under errors (Fig. 6)
//	sanbench -fig 7            # queue sweep, no errors (Fig. 7)
//	sanbench -fig 8            # queue sweep under errors (Fig. 8)
//	sanbench -fig all          # everything
//	sanbench -ablations        # piggyback + feedback-policy ablations
//	sanbench -full             # paper-scale traffic (slow)
//	sanbench -parallel         # parallel-engine scaling curve -> BENCH_parallel.json
//	sanbench -compare old.json new.json   # flag speedup regressions between two reports
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sanft"
	"sanft/internal/benchcmp"
	"sanft/internal/report"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3,4,5,6,7,8 or all")
	full := flag.Bool("full", false, "paper-scale traffic (≥10 drops even at 1e-4; slow)")
	ablations := flag.Bool("ablations", false, "run the protocol ablations instead of figures")
	extensions := flag.Bool("extensions", false, "run the extension experiments (route quality, burst errors, state scaling, VI reliability levels)")
	parallel := flag.Bool("parallel", false, "measure parallel engine + campaign pool scaling at 1/2/4/8 workers")
	parallelOut := flag.String("parallel-out", "BENCH_parallel.json", "output path for the -parallel scaling report")
	short := flag.Bool("short", false, "trim the -parallel workload for CI smoke runs (workers 1/2, fewer cases)")
	date := flag.String("date", "", "run date stamped into the -parallel report (default: now, RFC 3339 UTC)")
	asJSON := flag.Bool("json", false, "emit extension reports as JSON (with -extensions)")
	seed := flag.Int64("seed", 1, "simulation seed")
	compare := flag.Bool("compare", false, "compare two scaling reports: sanbench -compare old.json new.json")
	tolerance := flag.Float64("tolerance", benchcmp.DefaultTolerance, "relative speedup drop treated as a regression by -compare")
	warn := flag.Bool("warn", false, "with -compare: report regressions but exit 0 (CI warn-only mode)")
	httpAddr := flag.String("http", "", "with -parallel: serve live telemetry (Prometheus /metrics, /debug/pprof, /progress) on this address")
	profileOut := flag.String("profile-out", "", "with -parallel: write the full engine profiles (JSON) to this path")
	profilePerfetto := flag.String("profile-perfetto", "", "with -parallel: record one extra untimed profiled run and write its wall-clock Perfetto trace here")
	flag.Parse()

	if *compare {
		runCompare(flag.Args(), *tolerance, *warn)
		return
	}

	if *parallel {
		when := *date
		if when == "" {
			when = time.Now().UTC().Format(time.RFC3339)
		}
		runParallelBench(*seed, parallelOpts{
			out:         *parallelOut,
			date:        when,
			short:       *short,
			httpAddr:    *httpAddr,
			profileOut:  *profileOut,
			perfettoOut: *profilePerfetto,
		})
		return
	}

	opt := sanft.Options{Seed: *seed}
	if *full {
		opt.MaxMessages = 400000
		opt.Sizes = sanft.PaperSizes
	}

	if *ablations {
		runAblations(opt)
		return
	}
	if *extensions {
		runExtensions(opt, *asJSON)
		return
	}

	start := time.Now()
	switch *fig {
	case "3":
		fmt.Println(sanft.RunFig3(opt))
	case "4":
		fmt.Println(sanft.RunFig4(opt))
	case "5":
		fmt.Println("Figure 5: retransmission-interval sweep, no errors (q=32)")
		fmt.Println(sanft.RunFig5(opt))
	case "6":
		fmt.Println("Figure 6: retransmission-interval sweep under errors (q=32)")
		fmt.Println(sanft.RunFig6(opt))
	case "7":
		fmt.Println("Figure 7: send-queue-size sweep, no errors (T=1ms)")
		fmt.Println(sanft.RunFig7(opt))
	case "8":
		fmt.Println("Figure 8: send-queue-size sweep under errors (T=1ms)")
		fmt.Println(sanft.RunFig8(opt))
	case "all":
		fmt.Println(sanft.RunFig3(opt))
		fmt.Println(sanft.RunFig4(opt))
		fmt.Println("Figure 5: retransmission-interval sweep, no errors (q=32)")
		fmt.Println(sanft.RunFig5(opt))
		fmt.Println("Figure 6: retransmission-interval sweep under errors (q=32)")
		fmt.Println(sanft.RunFig6(opt))
		fmt.Println("Figure 7: send-queue-size sweep, no errors (T=1ms)")
		fmt.Println(sanft.RunFig7(opt))
		fmt.Println("Figure 8: send-queue-size sweep under errors (T=1ms)")
		fmt.Println(sanft.RunFig8(opt))
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
	fmt.Printf("(regenerated in %v wall time)\n", time.Since(start).Round(time.Millisecond))
}

// runCompare is the -compare entrypoint: load two scaling reports, print
// the per-configuration speedup deltas, and exit 1 on any regression
// beyond the tolerance (unless -warn).
func runCompare(args []string, tol float64, warn bool) {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: sanbench -compare [-tolerance 0.10] [-warn] old.json new.json")
		os.Exit(2)
	}
	old, err := benchcmp.Load(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "sanbench: %v\n", err)
		os.Exit(2)
	}
	cur, err := benchcmp.Load(args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "sanbench: %v\n", err)
		os.Exit(2)
	}
	ds := benchcmp.Compare(old, cur, tol)
	fmt.Printf("old: %s (%s)\nnew: %s (%s)\n", args[0], old.Date, args[1], cur.Date)
	if cur.Interrupted {
		fmt.Println("note: new report is partial (run was interrupted)")
	}
	fmt.Print(benchcmp.Table(ds, tol).String())
	if benchcmp.AnyRegression(ds) {
		if warn {
			fmt.Println("PERF WARNING: speedup regression beyond tolerance (warn-only mode)")
			return
		}
		fmt.Println("PERF REGRESSION: speedup dropped beyond tolerance")
		os.Exit(1)
	}
	fmt.Println("no speedup regressions")
}

func runAblations(opt sanft.Options) {
	fmt.Println(sanft.RunAckAblation(4096, opt))
	fmt.Println(sanft.FeedbackAblationString(
		sanft.RunFeedbackAblation(65536, nil, nil, opt)))
}

func runExtensions(opt sanft.Options, asJSON bool) {
	for _, rep := range sanft.ExtensionReports(opt) {
		if err := report.Write(os.Stdout, rep, asJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !asJSON {
			fmt.Println()
		}
	}
}
