// Command sanbench regenerates the paper's micro-benchmark figures
// (Figures 3–8) and the protocol ablations as text tables.
//
// Usage:
//
//	sanbench -fig 3            # latency breakdown (Fig. 3)
//	sanbench -fig 4            # latency + bandwidth, FT vs no-FT (Fig. 4)
//	sanbench -fig 5            # timer sweep, no errors (Fig. 5)
//	sanbench -fig 6            # timer sweep under errors (Fig. 6)
//	sanbench -fig 7            # queue sweep, no errors (Fig. 7)
//	sanbench -fig 8            # queue sweep under errors (Fig. 8)
//	sanbench -fig all          # everything
//	sanbench -ablations        # piggyback + feedback-policy ablations
//	sanbench -full             # paper-scale traffic (slow)
//	sanbench -parallel         # parallel-engine scaling curve -> BENCH_parallel.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sanft"
	"sanft/internal/report"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3,4,5,6,7,8 or all")
	full := flag.Bool("full", false, "paper-scale traffic (≥10 drops even at 1e-4; slow)")
	ablations := flag.Bool("ablations", false, "run the protocol ablations instead of figures")
	extensions := flag.Bool("extensions", false, "run the extension experiments (route quality, burst errors, state scaling, VI reliability levels)")
	parallel := flag.Bool("parallel", false, "measure parallel engine + campaign pool scaling at 1/2/4/8 workers")
	parallelOut := flag.String("parallel-out", "BENCH_parallel.json", "output path for the -parallel scaling report")
	short := flag.Bool("short", false, "trim the -parallel workload for CI smoke runs (workers 1/2, fewer cases)")
	date := flag.String("date", "", "run date stamped into the -parallel report (default: now, RFC 3339 UTC)")
	asJSON := flag.Bool("json", false, "emit extension reports as JSON (with -extensions)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	if *parallel {
		when := *date
		if when == "" {
			when = time.Now().UTC().Format(time.RFC3339)
		}
		runParallelBench(*seed, *parallelOut, when, *short)
		return
	}

	opt := sanft.Options{Seed: *seed}
	if *full {
		opt.MaxMessages = 400000
		opt.Sizes = sanft.PaperSizes
	}

	if *ablations {
		runAblations(opt)
		return
	}
	if *extensions {
		runExtensions(opt, *asJSON)
		return
	}

	start := time.Now()
	switch *fig {
	case "3":
		fmt.Println(sanft.RunFig3(opt))
	case "4":
		fmt.Println(sanft.RunFig4(opt))
	case "5":
		fmt.Println("Figure 5: retransmission-interval sweep, no errors (q=32)")
		fmt.Println(sanft.RunFig5(opt))
	case "6":
		fmt.Println("Figure 6: retransmission-interval sweep under errors (q=32)")
		fmt.Println(sanft.RunFig6(opt))
	case "7":
		fmt.Println("Figure 7: send-queue-size sweep, no errors (T=1ms)")
		fmt.Println(sanft.RunFig7(opt))
	case "8":
		fmt.Println("Figure 8: send-queue-size sweep under errors (T=1ms)")
		fmt.Println(sanft.RunFig8(opt))
	case "all":
		fmt.Println(sanft.RunFig3(opt))
		fmt.Println(sanft.RunFig4(opt))
		fmt.Println("Figure 5: retransmission-interval sweep, no errors (q=32)")
		fmt.Println(sanft.RunFig5(opt))
		fmt.Println("Figure 6: retransmission-interval sweep under errors (q=32)")
		fmt.Println(sanft.RunFig6(opt))
		fmt.Println("Figure 7: send-queue-size sweep, no errors (T=1ms)")
		fmt.Println(sanft.RunFig7(opt))
		fmt.Println("Figure 8: send-queue-size sweep under errors (T=1ms)")
		fmt.Println(sanft.RunFig8(opt))
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
	fmt.Printf("(regenerated in %v wall time)\n", time.Since(start).Round(time.Millisecond))
}

func runAblations(opt sanft.Options) {
	fmt.Println(sanft.RunAckAblation(4096, opt))
	fmt.Println(sanft.FeedbackAblationString(
		sanft.RunFeedbackAblation(65536, nil, nil, opt)))
}

func runExtensions(opt sanft.Options, asJSON bool) {
	for _, rep := range sanft.ExtensionReports(opt) {
		if err := report.Write(os.Stdout, rep, asJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !asJSON {
			fmt.Println()
		}
	}
}
