package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"sanft"
	"sanft/internal/chaos"
	"sanft/internal/core"
	"sanft/internal/enginestat"
	"sanft/internal/parsim"
	"sanft/internal/proptest"
	"sanft/internal/retrans"
	"sanft/internal/topology"
)

// parallelOpts carries the -parallel flag set into the benchmark.
type parallelOpts struct {
	out         string // report path (BENCH_parallel.json)
	date        string // stamp for the report's date field
	short       bool   // CI smoke workload
	httpAddr    string // live telemetry address, "" = off
	profileOut  string // full engine-profile JSON path, "" = off
	perfettoOut string // wall-clock Perfetto trace path, "" = off
}

// benchCtx is the shared run context: the SIGINT flag every sweep polls
// between runs (a run in flight always completes — partial timings are
// never reported), plus the optional live-telemetry hooks.
type benchCtx struct {
	stop atomic.Bool
	prog *parsim.Progress
	srv  *enginestat.Server
}

func (bc *benchCtx) interrupted() bool { return bc.stop.Load() }

func (bc *benchCtx) jobDone(d time.Duration) {
	if bc.prog != nil {
		bc.prog.JobDone(int64(d))
	}
}

func (bc *benchCtx) publishProfile(p *sanft.EngineProfile) {
	if bc.srv != nil && p != nil {
		bc.srv.PublishProfile(p)
	}
}

// parallelReport is the BENCH_parallel.json schema: the scaling curve of
// the parallel simulation engine and campaign pool. CPUModel, Cores,
// GoVersion and Date record the machine and toolchain the numbers came
// from — a speedup is bounded by the physical core count, so a
// single-core baseline legitimately shows ~1.0 at every worker count.
// Interrupted marks a report cut short by SIGINT: every row present was
// fully timed, but configurations that never ran are simply absent.
type parallelReport struct {
	Name        string        `json:"name"`
	Generated   string        `json:"generated_by"`
	Date        string        `json:"date"`
	CPUModel    string        `json:"cpu_model"`
	Cores       int           `json:"cores"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	GoVersion   string        `json:"go_version"`
	Short       bool          `json:"short,omitempty"`
	Interrupted bool          `json:"interrupted,omitempty"`
	Note        string        `json:"note"`
	Engine      []engineRow   `json:"engine_scaling"`
	Campaign    []campaignRow `json:"campaign_scaling"`
	Proptest    []proptestRow `json:"proptest_scaling"`
}

type engineRow struct {
	Plan         string  `json:"plan"`
	Shards       int     `json:"shards"`
	Workers      int     `json:"workers"`
	WallMS       float64 `json:"wall_ms"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Speedup is relative to workers=1 of the same shard plan;
	// SpeedupVsBase is relative to the engine baseline (finest plan,
	// workers=1), which is what coarse shards are buying against.
	Speedup       float64 `json:"speedup"`
	SpeedupVsBase float64 `json:"speedup_vs_base"`
	// Profile is the engine self-profiler's summary of the best
	// (reported) run: busy/stall/steal fractions, steal hit rate, pool
	// hit rates. Wall-clock observation only — it never affects results.
	Profile *sanft.EngineProfileSummary `json:"profile,omitempty"`
}

type campaignRow struct {
	Workers   int     `json:"workers"`
	Replicas  int     `json:"replicas"`
	WallMS    float64 `json:"wall_ms"`
	Delivered int     `json:"delivered"`
	Speedup   float64 `json:"speedup"`
}

type proptestRow struct {
	Workers int     `json:"workers"`
	Cases   int     `json:"cases"`
	WallMS  float64 `json:"wall_ms"`
	Speedup float64 `json:"speedup"`
}

// engineProfileEntry is one -profile-out row: the full (unsummarized)
// engine profile of a configuration's best run.
type engineProfileEntry struct {
	Plan    string               `json:"plan"`
	Workers int                  `json:"workers"`
	Profile *sanft.EngineProfile `json:"profile"`
}

// cpuModel reads the CPU model string from /proc/cpuinfo (Linux); other
// platforms report the architecture.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				if _, v, ok := strings.Cut(name, ":"); ok {
					if m := strings.TrimSpace(v); m != "" && m != "unknown" {
						return m
					}
				}
			}
		}
	}
	return runtime.GOARCH
}

// runParallelBench measures the three parallel paths and writes the
// scaling report to o.out. The date stamp is passed in so nothing inside
// the measurement path consults wall-clock identity; o.short trims the
// workload for CI smoke runs. SIGINT stops the sweep at the next run
// boundary and still writes the report, marked "interrupted": true, then
// exits 130 — a cancelled overnight run keeps the rows it finished.
func runParallelBench(seed int64, o parallelOpts) {
	rep := parallelReport{
		Name:       "parallel-scaling",
		Generated:  "sanbench -parallel",
		Date:       o.date,
		CPUModel:   cpuModel(),
		Cores:      runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Short:      o.short,
		Note: "engine_scaling: sharded 16-host 4-switch chain (fine 1-host and coarse by-switch 4-host shards), conservative epochs; " +
			"campaign_scaling: replicas of a 16-host link-flap chaos campaign through the worker pool; " +
			"proptest_scaling: lockstep differential cases through the pool. " +
			"All outputs are byte-identical across worker counts; speedup is bounded by 'cores'. " +
			"Engine rows run with the self-profiler enabled (uniform across configurations, so speedups are unaffected); " +
			"'profile' summarizes each configuration's best run.",
	}

	bc := &benchCtx{}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	defer signal.Stop(sig)
	go func() {
		if _, ok := <-sig; !ok {
			return
		}
		signal.Stop(sig) // second ^C kills the process the normal way
		bc.stop.Store(true)
		fmt.Fprintln(os.Stderr, "sanbench: interrupted — finishing the run in flight, then writing a partial report")
	}()

	if o.httpAddr != "" {
		srv, err := enginestat.NewServer(o.httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sanbench: telemetry listen on %s: %v\n", o.httpAddr, err)
			os.Exit(1)
		}
		defer srv.Close()
		bc.srv = srv
		bc.prog = &parsim.Progress{}
		// Total runs across the three sweeps: engine has two shard plans
		// per worker count, campaign and proptest one configuration each.
		wc := len(benchWorkerCounts(o.short))
		bc.prog.Begin(benchReps(o.short) * 4 * wc)
		srv.SetProgress(bc.prog.Snapshot)
		fmt.Printf("  telemetry: http://%s  (/metrics /progress /profile /debug/pprof)\n", srv.Addr())
	}

	fmt.Println("parallel scaling benchmark")
	fmt.Printf("  machine: %s, %d core(s), GOMAXPROCS %d, %s\n",
		rep.CPUModel, rep.Cores, rep.GoMaxProcs, rep.GoVersion)

	var profs []engineProfileEntry
	rep.Engine, profs = benchEngine(bc, seed, o.short)
	rep.Campaign = benchCampaign(bc, seed, o.short)
	rep.Proptest = benchProptest(bc, seed, o.short)
	rep.Interrupted = bc.interrupted()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "sanbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(o.out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "sanbench: write %s: %v\n", o.out, err)
		os.Exit(1)
	}
	fmt.Printf("  wrote %s\n", o.out)

	if o.profileOut != "" && len(profs) > 0 {
		pdata, err := json.MarshalIndent(profs, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "sanbench: %v\n", err)
			os.Exit(1)
		}
		pdata = append(pdata, '\n')
		if err := os.WriteFile(o.profileOut, pdata, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sanbench: write %s: %v\n", o.profileOut, err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s (full engine profiles)\n", o.profileOut)
	}

	if o.perfettoOut != "" && !rep.Interrupted {
		writePerfettoTrace(o.perfettoOut, seed, o.short)
	}

	if rep.Interrupted {
		fmt.Println("  (interrupted: partial report, marked \"interrupted\": true)")
		os.Exit(130)
	}
}

func benchWorkerCounts(short bool) []int {
	if short {
		return []int{1, 2}
	}
	return []int{1, 2, 4, 8}
}

// benchReps is how many times each configuration is timed; the best
// (minimum) wall time is reported, which discards GC pauses and
// scheduler noise — significant on small shared machines.
// Repetitions are interleaved round-robin across the configurations of
// a sweep (see minWallSweep): on shared hosts interference arrives in
// multi-second windows, so consecutive repetitions of one configuration
// can all land inside a bad window while its neighbour measures clean.
// Spacing the repetitions out gives every configuration a sample from
// every window.
func benchReps(short bool) int {
	if short {
		return 1
	}
	return 5
}

// minWallSweep times n configurations reps times each, interleaving the
// repetitions round-robin (rep 1 of every configuration, then rep 2 of
// every configuration, ...) so that slow windows on a shared host are
// sampled by all configurations rather than swallowing one of them
// whole. Returns each configuration's best wall time, the auxiliary
// result from that best run, and which configurations were measured at
// all — on SIGINT the sweep stops at the next run boundary, so a
// configuration either has a complete timing or none (round-robin order
// means rep 1 covers every configuration before rep 2 starts anywhere).
func minWallSweep[T any](bc *benchCtx, reps, n int, f func(ci int) (time.Duration, T)) ([]time.Duration, []T, []bool) {
	walls := make([]time.Duration, n)
	aux := make([]T, n)
	measured := make([]bool, n)
	for r := 0; r < reps; r++ {
		for ci := 0; ci < n; ci++ {
			if bc.interrupted() {
				return walls, aux, measured
			}
			w, a := f(ci)
			bc.jobDone(w)
			if !measured[ci] || w < walls[ci] {
				walls[ci], aux[ci], measured[ci] = w, a, true
			}
		}
	}
	return walls, aux, measured
}

// engineWorkload is the fixed traffic pattern every engine configuration
// runs: only the shard plan and worker count vary between rows.
type engineWorkload struct {
	msgs    int
	gap     time.Duration
	horizon time.Duration
}

func engineWorkloadFor(short bool) engineWorkload {
	// 20 µs inter-message gap keeps many frames in flight per lookahead
	// window; sparser traffic degenerates to ~2 events/epoch and the
	// barrier fixed cost swamps any worker-count effect.
	wl := engineWorkload{msgs: 60, gap: 20 * time.Microsecond, horizon: 120 * time.Millisecond}
	if short {
		wl.msgs, wl.horizon = 8, 20*time.Millisecond
	}
	return wl
}

type engineAux struct {
	ev     uint64
	shards int
	prof   *sanft.EngineProfile
}

// engineRunOnce builds and runs one engine-benchmark configuration: a
// 16-host 4-switch redundant chain (hosts clustered behind switches, as
// a real SAN is wired), ring plus cross-cutting flows, fixed horizon.
// Profiling is always on (uniform overhead cancels out of speedups);
// spanCap > 0 additionally records per-worker spans for Perfetto export.
func engineRunOnce(seed int64, plan sanft.ShardPlan, w int, wl engineWorkload, spanCap int) (time.Duration, engineAux) {
	const hosts = 16
	nw, hostRows := topology.Chain(4, 4, 2)
	var hlist []topology.NodeID
	for _, row := range hostRows {
		hlist = append(hlist, row...)
	}
	s := sanft.New(
		sanft.WithTopology(nw, hlist),
		sanft.WithSeed(seed),
		sanft.WithRetrans(sanft.RetransConfig{QueueSize: 16, Interval: time.Millisecond}),
		sanft.WithFaultTolerance(),
		sanft.WithShardPlan(plan),
		sanft.WithWorkers(w),
		sanft.WithEngineProfiling(),
	)
	if spanCap > 0 {
		s.ProfileSpans(spanCap)
	}
	var flows []sanft.Flow
	for i := 0; i < hosts; i++ {
		flows = append(flows,
			sanft.Flow{Src: s.Hosts[i], Dst: s.Hosts[(i+1)%hosts]},
			sanft.Flow{Src: s.Hosts[i], Dst: s.Hosts[(i+5)%hosts]},
		)
	}
	s.StartFlows(flows, wl.msgs, 1024, wl.gap)
	start := time.Now()
	s.RunFor(wl.horizon)
	wall := time.Since(start)
	ev := s.TotalExecuted()
	shards := s.Shards()
	s.Stop()
	return wall, engineAux{ev: ev, shards: shards, prof: s.EngineProfile()}
}

// benchEngine times the sharded engine itself across shard plans and
// worker counts. The coarse plan groups each switch's hosts into one
// shard: intra-switch traffic never crosses a barrier and the
// cross-shard lookahead widens to the multi-switch traversal, so epochs
// are fewer and fatter — the fixed-cost win coarse shards exist for.
// Alongside the scaling rows it returns each configuration's best-run
// engine profile for -profile-out.
func benchEngine(bc *benchCtx, seed int64, short bool) ([]engineRow, []engineProfileEntry) {
	wl := engineWorkloadFor(short)
	plans := []struct {
		name string
		plan sanft.ShardPlan
	}{
		{"1 host/shard", sanft.ShardPlan{}},
		{"4 hosts/shard", sanft.ShardPlan{HostsPerShard: 4}},
	}
	type engCfg struct {
		plan int
		w    int
	}
	var cfgs []engCfg
	for pi := range plans {
		for _, w := range benchWorkerCounts(short) {
			cfgs = append(cfgs, engCfg{plan: pi, w: w})
		}
	}
	walls, auxes, measured := minWallSweep(bc, benchReps(short), len(cfgs), func(ci int) (time.Duration, engineAux) {
		wall, aux := engineRunOnce(seed, plans[cfgs[ci].plan].plan, cfgs[ci].w, wl, 0)
		bc.publishProfile(aux.prof)
		return wall, aux
	})

	var rows []engineRow
	var profs []engineProfileEntry
	var base, globalBase time.Duration
	for ci, c := range cfgs {
		if !measured[ci] {
			continue
		}
		wall, aux := walls[ci], auxes[ci]
		if c.w == 1 {
			base = wall
			if globalBase == 0 {
				globalBase = wall
			}
		}
		p := plans[c.plan]
		row := engineRow{
			Plan:          p.name,
			Shards:        aux.shards,
			Workers:       c.w,
			WallMS:        roundMS(wall),
			Events:        aux.ev,
			EventsPerSec:  float64(aux.ev) / wall.Seconds(),
			Speedup:       speedup(base, wall),
			SpeedupVsBase: speedup(globalBase, wall),
		}
		if aux.prof != nil {
			sum := aux.prof.Summarize()
			row.Profile = &sum
			profs = append(profs, engineProfileEntry{Plan: p.name, Workers: c.w, Profile: aux.prof})
		}
		rows = append(rows, row)
		fmt.Printf("  engine   %-14s workers=%d  %8.1f ms  %9d events  %12.0f ev/s  speedup %.2f (vs base %.2f)\n",
			p.name, c.w, roundMS(wall), aux.ev, float64(aux.ev)/wall.Seconds(), speedup(base, wall), speedup(globalBase, wall))
	}
	return rows, profs
}

// writePerfettoTrace records one extra untimed run of the fine-plan
// engine configuration at full parallelism with per-worker span logging
// on, and writes the wall-clock Perfetto (Chrome trace JSON) file.
func writePerfettoTrace(path string, seed int64, short bool) {
	_, aux := engineRunOnce(seed, sanft.ShardPlan{}, runtime.GOMAXPROCS(0), engineWorkloadFor(short), 1<<16)
	if aux.prof == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sanbench: %v\n", err)
		os.Exit(1)
	}
	if err := aux.prof.WriteChromeTrace(f); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "sanbench: write %s: %v\n", path, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "sanbench: write %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("  wrote %s (engine wall-clock trace, %d spans)\n", path, len(aux.prof.Spans))
}

// benchCampaign times the campaign pool: independent replicas (seeds
// seed..seed+n-1) of a 16-host link-flap chaos campaign, executed through
// parsim.Pool at each worker count.
func benchCampaign(bc *benchCtx, seed int64, short bool) []campaignRow {
	replicas := 8
	if short {
		replicas = 4
	}
	counts := benchWorkerCounts(short)
	walls, totals, measured := minWallSweep(bc, benchReps(short), len(counts), func(ci int) (time.Duration, int) {
		start := time.Now()
		delivered := parsim.Map(parsim.Pool{Workers: counts[ci]}, replicas, func(i int) int {
			return run16HostCampaign(seed + int64(i))
		})
		wall := time.Since(start)
		total := 0
		for _, d := range delivered {
			total += d
		}
		return wall, total
	})

	var rows []campaignRow
	var base time.Duration
	for ci, w := range counts {
		if !measured[ci] {
			continue
		}
		wall, total := walls[ci], totals[ci]
		if w == 1 {
			base = wall
		}
		rows = append(rows, campaignRow{
			Workers:   w,
			Replicas:  replicas,
			WallMS:    roundMS(wall),
			Delivered: total,
			Speedup:   speedup(base, wall),
		})
		fmt.Printf("  campaign workers=%d  %8.1f ms  %6d delivered           speedup %.2f\n",
			w, roundMS(wall), total, speedup(base, wall))
	}
	return rows
}

// run16HostCampaign is one replica of the campaign benchmark: a 16-host
// redundant 4-switch chain under a trunk-flap storm with ring traffic,
// fault tolerance and on-demand mapping enabled. Returns distinct
// messages delivered (a determinism cross-check across worker counts).
func run16HostCampaign(seed int64) int {
	nw, rows := topology.Chain(4, 4, 2)
	var hosts []topology.NodeID
	for _, row := range rows {
		hosts = append(hosts, row...)
	}
	c := core.New(core.Config{
		Net: nw, Hosts: hosts, FT: true,
		Retrans: retrans.Config{
			QueueSize:         16,
			Interval:          time.Millisecond,
			PermFailThreshold: 8 * time.Millisecond,
		},
		Mapper: true,
		Seed:   seed,
	})
	e := chaos.NewEngine(c, seed)
	var pairs []chaos.Pair
	for i := range hosts {
		pairs = append(pairs,
			chaos.Pair{Src: hosts[i], Dst: hosts[(i+1)%len(hosts)]},
			chaos.Pair{Src: hosts[i], Dst: hosts[(i+7)%len(hosts)]},
		)
	}
	r := chaos.Workload{Pairs: pairs, Msgs: 12, Gap: 2 * time.Millisecond}.Start(e)
	e.Install(chaos.LinkFlap{Start: time.Millisecond, Cycles: 8})
	c.RunFor(120 * time.Millisecond)
	c.Stop()
	return r.Delivered()
}

// benchProptest times the property-testing pool: lockstep differential
// cases per worker count.
func benchProptest(bc *benchCtx, seed int64, short bool) []proptestRow {
	cases := 1000
	if short {
		cases = 200
	}
	counts := benchWorkerCounts(short)
	walls, _, measured := minWallSweep(bc, benchReps(short), len(counts), func(ci int) (time.Duration, struct{}) {
		start := time.Now()
		parsim.Map(parsim.Pool{Workers: counts[ci]}, cases, func(i int) bool {
			return proptest.RunLockstep(proptest.GenOps(seed+int64(i)), proptest.MutNone) != nil
		})
		return time.Since(start), struct{}{}
	})

	var rows []proptestRow
	var base time.Duration
	for ci, w := range counts {
		if !measured[ci] {
			continue
		}
		wall := walls[ci]
		if w == 1 {
			base = wall
		}
		rows = append(rows, proptestRow{
			Workers: w,
			Cases:   cases,
			WallMS:  roundMS(wall),
			Speedup: speedup(base, wall),
		})
		fmt.Printf("  proptest workers=%d  %8.1f ms  %6d cases               speedup %.2f\n",
			w, roundMS(wall), cases, speedup(base, wall))
	}
	return rows
}

func roundMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

func speedup(base, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(base) / float64(d)
}
