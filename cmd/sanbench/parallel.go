package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"sanft"
	"sanft/internal/chaos"
	"sanft/internal/core"
	"sanft/internal/parsim"
	"sanft/internal/proptest"
	"sanft/internal/retrans"
	"sanft/internal/topology"
)

// parallelReport is the BENCH_parallel.json schema: the scaling curve of
// the parallel simulation engine and campaign pool at 1/2/4/8 workers.
// Cores and GoMaxProcs record the machine the numbers came from — a
// speedup is bounded by the physical core count, so a single-core
// baseline legitimately shows ~1.0 at every worker count.
type parallelReport struct {
	Name       string        `json:"name"`
	Generated  string        `json:"generated_by"`
	Cores      int           `json:"cores"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Note       string        `json:"note"`
	Engine     []engineRow   `json:"engine_scaling"`
	Campaign   []campaignRow `json:"campaign_scaling"`
	Proptest   []proptestRow `json:"proptest_scaling"`
}

type engineRow struct {
	Workers      int     `json:"workers"`
	WallMS       float64 `json:"wall_ms"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Speedup      float64 `json:"speedup"`
}

type campaignRow struct {
	Workers   int     `json:"workers"`
	Replicas  int     `json:"replicas"`
	WallMS    float64 `json:"wall_ms"`
	Delivered int     `json:"delivered"`
	Speedup   float64 `json:"speedup"`
}

type proptestRow struct {
	Workers int     `json:"workers"`
	Cases   int     `json:"cases"`
	WallMS  float64 `json:"wall_ms"`
	Speedup float64 `json:"speedup"`
}

var workerCounts = []int{1, 2, 4, 8}

// runParallelBench measures the three parallel paths and writes the
// scaling report to out.
func runParallelBench(seed int64, out string) {
	rep := parallelReport{
		Name:       "parallel-scaling",
		Generated:  "sanbench -parallel",
		Cores:      runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note: "engine_scaling: sharded 16-host star, per-host shards, conservative epochs; " +
			"campaign_scaling: 8 replicas of a 16-host link-flap chaos campaign through the worker pool; " +
			"proptest_scaling: 1000 lockstep differential cases through the pool. " +
			"All outputs are byte-identical across worker counts; speedup is bounded by 'cores'.",
	}

	fmt.Println("parallel scaling benchmark")
	fmt.Printf("  machine: %d core(s), GOMAXPROCS %d\n", rep.Cores, rep.GoMaxProcs)

	rep.Engine = benchEngine(seed)
	rep.Campaign = benchCampaign(seed)
	rep.Proptest = benchProptest(seed)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "sanbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "sanbench: write %s: %v\n", out, err)
		os.Exit(1)
	}
	fmt.Printf("  wrote %s\n", out)
}

// benchEngine times the sharded engine itself: one 16-host star, ring
// plus cross-cutting flows, fixed horizon — only the worker count varies.
func benchEngine(seed int64) []engineRow {
	const hosts = 16
	run := func(w int) (time.Duration, uint64) {
		s := sanft.NewSharded(
			sanft.WithStar(hosts),
			sanft.WithSeed(seed),
			sanft.WithFaultTolerance(sanft.RetransConfig{QueueSize: 16, Interval: time.Millisecond}),
			sanft.WithShards(w),
		)
		var flows []sanft.Flow
		for i := 0; i < hosts; i++ {
			flows = append(flows,
				sanft.Flow{Src: s.Hosts[i], Dst: s.Hosts[(i+1)%hosts]},
				sanft.Flow{Src: s.Hosts[i], Dst: s.Hosts[(i+5)%hosts]},
			)
		}
		s.StartFlows(flows, 20, 1024, 100*time.Microsecond)
		start := time.Now()
		s.RunFor(60 * time.Millisecond)
		wall := time.Since(start)
		ev := s.TotalExecuted()
		s.Stop()
		return wall, ev
	}

	var rows []engineRow
	var base time.Duration
	for _, w := range workerCounts {
		wall, ev := run(w)
		if w == 1 {
			base = wall
		}
		rows = append(rows, engineRow{
			Workers:      w,
			WallMS:       roundMS(wall),
			Events:       ev,
			EventsPerSec: float64(ev) / wall.Seconds(),
			Speedup:      speedup(base, wall),
		})
		fmt.Printf("  engine   workers=%d  %8.1f ms  %9d events  %12.0f ev/s  speedup %.2f\n",
			w, roundMS(wall), ev, float64(ev)/wall.Seconds(), speedup(base, wall))
	}
	return rows
}

// benchCampaign times the campaign pool: 8 independent replicas (seeds
// seed..seed+7) of a 16-host link-flap chaos campaign, executed through
// parsim.Pool at each worker count.
func benchCampaign(seed int64) []campaignRow {
	const replicas = 8
	run := func(w int) (time.Duration, int) {
		start := time.Now()
		delivered := parsim.Map(parsim.Pool{Workers: w}, replicas, func(i int) int {
			return run16HostCampaign(seed + int64(i))
		})
		wall := time.Since(start)
		total := 0
		for _, d := range delivered {
			total += d
		}
		return wall, total
	}

	var rows []campaignRow
	var base time.Duration
	for _, w := range workerCounts {
		wall, total := run(w)
		if w == 1 {
			base = wall
		}
		rows = append(rows, campaignRow{
			Workers:   w,
			Replicas:  replicas,
			WallMS:    roundMS(wall),
			Delivered: total,
			Speedup:   speedup(base, wall),
		})
		fmt.Printf("  campaign workers=%d  %8.1f ms  %6d delivered           speedup %.2f\n",
			w, roundMS(wall), total, speedup(base, wall))
	}
	return rows
}

// run16HostCampaign is one replica of the campaign benchmark: a 16-host
// redundant 4-switch chain under a trunk-flap storm with ring traffic,
// fault tolerance and on-demand mapping enabled. Returns distinct
// messages delivered (a determinism cross-check across worker counts).
func run16HostCampaign(seed int64) int {
	nw, rows := topology.Chain(4, 4, 2)
	var hosts []topology.NodeID
	for _, row := range rows {
		hosts = append(hosts, row...)
	}
	c := core.New(core.Config{
		Net: nw, Hosts: hosts, FT: true,
		Retrans: retrans.Config{
			QueueSize:         16,
			Interval:          time.Millisecond,
			PermFailThreshold: 8 * time.Millisecond,
		},
		Mapper: true,
		Seed:   seed,
	})
	e := chaos.NewEngine(c, seed)
	var pairs []chaos.Pair
	for i := range hosts {
		pairs = append(pairs,
			chaos.Pair{Src: hosts[i], Dst: hosts[(i+1)%len(hosts)]},
			chaos.Pair{Src: hosts[i], Dst: hosts[(i+7)%len(hosts)]},
		)
	}
	r := chaos.Workload{Pairs: pairs, Msgs: 12, Gap: 2 * time.Millisecond}.Start(e)
	e.Install(chaos.LinkFlap{Start: time.Millisecond, Cycles: 8})
	c.RunFor(120 * time.Millisecond)
	c.Stop()
	return r.Delivered()
}

// benchProptest times the property-testing pool: 1000 lockstep
// differential cases per worker count.
func benchProptest(seed int64) []proptestRow {
	const cases = 1000
	run := func(w int) time.Duration {
		start := time.Now()
		parsim.Map(parsim.Pool{Workers: w}, cases, func(i int) bool {
			return proptest.RunLockstep(proptest.GenOps(seed+int64(i)), proptest.MutNone) != nil
		})
		return time.Since(start)
	}

	var rows []proptestRow
	var base time.Duration
	for _, w := range workerCounts {
		wall := run(w)
		if w == 1 {
			base = wall
		}
		rows = append(rows, proptestRow{
			Workers: w,
			Cases:   cases,
			WallMS:  roundMS(wall),
			Speedup: speedup(base, wall),
		})
		fmt.Printf("  proptest workers=%d  %8.1f ms  %6d cases               speedup %.2f\n",
			w, roundMS(wall), cases, speedup(base, wall))
	}
	return rows
}

func roundMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

func speedup(base, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(base) / float64(d)
}
