package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"sanft"
	"sanft/internal/chaos"
	"sanft/internal/core"
	"sanft/internal/parsim"
	"sanft/internal/proptest"
	"sanft/internal/retrans"
	"sanft/internal/topology"
)

// parallelReport is the BENCH_parallel.json schema: the scaling curve of
// the parallel simulation engine and campaign pool. CPUModel, Cores,
// GoVersion and Date record the machine and toolchain the numbers came
// from — a speedup is bounded by the physical core count, so a
// single-core baseline legitimately shows ~1.0 at every worker count.
type parallelReport struct {
	Name       string        `json:"name"`
	Generated  string        `json:"generated_by"`
	Date       string        `json:"date"`
	CPUModel   string        `json:"cpu_model"`
	Cores      int           `json:"cores"`
	GoMaxProcs int           `json:"gomaxprocs"`
	GoVersion  string        `json:"go_version"`
	Short      bool          `json:"short,omitempty"`
	Note       string        `json:"note"`
	Engine     []engineRow   `json:"engine_scaling"`
	Campaign   []campaignRow `json:"campaign_scaling"`
	Proptest   []proptestRow `json:"proptest_scaling"`
}

type engineRow struct {
	Plan         string  `json:"plan"`
	Shards       int     `json:"shards"`
	Workers      int     `json:"workers"`
	WallMS       float64 `json:"wall_ms"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Speedup is relative to workers=1 of the same shard plan;
	// SpeedupVsBase is relative to the engine baseline (finest plan,
	// workers=1), which is what coarse shards are buying against.
	Speedup       float64 `json:"speedup"`
	SpeedupVsBase float64 `json:"speedup_vs_base"`
}

type campaignRow struct {
	Workers   int     `json:"workers"`
	Replicas  int     `json:"replicas"`
	WallMS    float64 `json:"wall_ms"`
	Delivered int     `json:"delivered"`
	Speedup   float64 `json:"speedup"`
}

type proptestRow struct {
	Workers int     `json:"workers"`
	Cases   int     `json:"cases"`
	WallMS  float64 `json:"wall_ms"`
	Speedup float64 `json:"speedup"`
}

// cpuModel reads the CPU model string from /proc/cpuinfo (Linux); other
// platforms report the architecture.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				if _, v, ok := strings.Cut(name, ":"); ok {
					if m := strings.TrimSpace(v); m != "" && m != "unknown" {
						return m
					}
				}
			}
		}
	}
	return runtime.GOARCH
}

// runParallelBench measures the three parallel paths and writes the
// scaling report to out. The date stamp is passed in so nothing inside
// the measurement path consults wall-clock identity; short trims the
// workload for CI smoke runs.
func runParallelBench(seed int64, out, date string, short bool) {
	rep := parallelReport{
		Name:       "parallel-scaling",
		Generated:  "sanbench -parallel",
		Date:       date,
		CPUModel:   cpuModel(),
		Cores:      runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Short:      short,
		Note: "engine_scaling: sharded 16-host 4-switch chain (fine 1-host and coarse by-switch 4-host shards), conservative epochs; " +
			"campaign_scaling: replicas of a 16-host link-flap chaos campaign through the worker pool; " +
			"proptest_scaling: lockstep differential cases through the pool. " +
			"All outputs are byte-identical across worker counts; speedup is bounded by 'cores'.",
	}

	fmt.Println("parallel scaling benchmark")
	fmt.Printf("  machine: %s, %d core(s), GOMAXPROCS %d, %s\n",
		rep.CPUModel, rep.Cores, rep.GoMaxProcs, rep.GoVersion)

	rep.Engine = benchEngine(seed, short)
	rep.Campaign = benchCampaign(seed, short)
	rep.Proptest = benchProptest(seed, short)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "sanbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "sanbench: write %s: %v\n", out, err)
		os.Exit(1)
	}
	fmt.Printf("  wrote %s\n", out)
}

func benchWorkerCounts(short bool) []int {
	if short {
		return []int{1, 2}
	}
	return []int{1, 2, 4, 8}
}

// benchReps is how many times each configuration is timed; the best
// (minimum) wall time is reported, which discards GC pauses and
// scheduler noise — significant on small shared machines.
// Repetitions are interleaved round-robin across the configurations of
// a sweep (see minWallSweep): on shared hosts interference arrives in
// multi-second windows, so consecutive repetitions of one configuration
// can all land inside a bad window while its neighbour measures clean.
// Spacing the repetitions out gives every configuration a sample from
// every window.
func benchReps(short bool) int {
	if short {
		return 1
	}
	return 5
}

// minWallSweep times n configurations reps times each, interleaving the
// repetitions round-robin (rep 1 of every configuration, then rep 2 of
// every configuration, ...) so that slow windows on a shared host are
// sampled by all configurations rather than swallowing one of them
// whole. Returns each configuration's best wall time and the auxiliary
// result from that best run.
func minWallSweep[T any](reps, n int, f func(ci int) (time.Duration, T)) ([]time.Duration, []T) {
	walls := make([]time.Duration, n)
	aux := make([]T, n)
	for r := 0; r < reps; r++ {
		for ci := 0; ci < n; ci++ {
			w, a := f(ci)
			if r == 0 || w < walls[ci] {
				walls[ci], aux[ci] = w, a
			}
		}
	}
	return walls, aux
}

// benchEngine times the sharded engine itself: a 16-host 4-switch
// redundant chain (hosts clustered behind switches, as a real SAN is
// wired), ring plus cross-cutting flows, fixed horizon — only the shard
// plan and the worker count vary. The coarse plan groups each switch's
// hosts into one shard: intra-switch traffic never crosses a barrier and
// the cross-shard lookahead widens to the multi-switch traversal, so
// epochs are fewer and fatter — the fixed-cost win coarse shards exist
// for.
func benchEngine(seed int64, short bool) []engineRow {
	const hosts = 16
	// 20 µs inter-message gap keeps many frames in flight per lookahead
	// window; sparser traffic degenerates to ~2 events/epoch and the
	// barrier fixed cost swamps any worker-count effect.
	msgs, gap, horizon := 60, 20*time.Microsecond, 120*time.Millisecond
	if short {
		msgs, horizon = 8, 20*time.Millisecond
	}
	type engineAux struct {
		ev     uint64
		shards int
	}
	runOnce := func(plan sanft.ShardPlan, w int) (time.Duration, engineAux) {
		nw, hostRows := topology.Chain(4, 4, 2)
		var hlist []topology.NodeID
		for _, row := range hostRows {
			hlist = append(hlist, row...)
		}
		s := sanft.New(
			sanft.WithTopology(nw, hlist),
			sanft.WithSeed(seed),
			sanft.WithRetrans(sanft.RetransConfig{QueueSize: 16, Interval: time.Millisecond}),
			sanft.WithFaultTolerance(),
			sanft.WithShardPlan(plan),
			sanft.WithWorkers(w),
		)
		var flows []sanft.Flow
		for i := 0; i < hosts; i++ {
			flows = append(flows,
				sanft.Flow{Src: s.Hosts[i], Dst: s.Hosts[(i+1)%hosts]},
				sanft.Flow{Src: s.Hosts[i], Dst: s.Hosts[(i+5)%hosts]},
			)
		}
		s.StartFlows(flows, msgs, 1024, gap)
		start := time.Now()
		s.RunFor(horizon)
		wall := time.Since(start)
		ev := s.TotalExecuted()
		shards := s.Shards()
		s.Stop()
		return wall, engineAux{ev: ev, shards: shards}
	}
	plans := []struct {
		name string
		plan sanft.ShardPlan
	}{
		{"1 host/shard", sanft.ShardPlan{}},
		{"4 hosts/shard", sanft.ShardPlan{HostsPerShard: 4}},
	}
	type engCfg struct {
		plan int
		w    int
	}
	var cfgs []engCfg
	for pi := range plans {
		for _, w := range benchWorkerCounts(short) {
			cfgs = append(cfgs, engCfg{plan: pi, w: w})
		}
	}
	walls, auxes := minWallSweep(benchReps(short), len(cfgs), func(ci int) (time.Duration, engineAux) {
		return runOnce(plans[cfgs[ci].plan].plan, cfgs[ci].w)
	})

	var rows []engineRow
	var base, globalBase time.Duration
	for ci, c := range cfgs {
		wall, aux := walls[ci], auxes[ci]
		if c.w == 1 {
			base = wall
			if globalBase == 0 {
				globalBase = wall
			}
		}
		p := plans[c.plan]
		rows = append(rows, engineRow{
			Plan:          p.name,
			Shards:        aux.shards,
			Workers:       c.w,
			WallMS:        roundMS(wall),
			Events:        aux.ev,
			EventsPerSec:  float64(aux.ev) / wall.Seconds(),
			Speedup:       speedup(base, wall),
			SpeedupVsBase: speedup(globalBase, wall),
		})
		fmt.Printf("  engine   %-14s workers=%d  %8.1f ms  %9d events  %12.0f ev/s  speedup %.2f (vs base %.2f)\n",
			p.name, c.w, roundMS(wall), aux.ev, float64(aux.ev)/wall.Seconds(), speedup(base, wall), speedup(globalBase, wall))
	}
	return rows
}

// benchCampaign times the campaign pool: independent replicas (seeds
// seed..seed+n-1) of a 16-host link-flap chaos campaign, executed through
// parsim.Pool at each worker count.
func benchCampaign(seed int64, short bool) []campaignRow {
	replicas := 8
	if short {
		replicas = 4
	}
	counts := benchWorkerCounts(short)
	walls, totals := minWallSweep(benchReps(short), len(counts), func(ci int) (time.Duration, int) {
		start := time.Now()
		delivered := parsim.Map(parsim.Pool{Workers: counts[ci]}, replicas, func(i int) int {
			return run16HostCampaign(seed + int64(i))
		})
		wall := time.Since(start)
		total := 0
		for _, d := range delivered {
			total += d
		}
		return wall, total
	})

	var rows []campaignRow
	var base time.Duration
	for ci, w := range counts {
		wall, total := walls[ci], totals[ci]
		if w == 1 {
			base = wall
		}
		rows = append(rows, campaignRow{
			Workers:   w,
			Replicas:  replicas,
			WallMS:    roundMS(wall),
			Delivered: total,
			Speedup:   speedup(base, wall),
		})
		fmt.Printf("  campaign workers=%d  %8.1f ms  %6d delivered           speedup %.2f\n",
			w, roundMS(wall), total, speedup(base, wall))
	}
	return rows
}

// run16HostCampaign is one replica of the campaign benchmark: a 16-host
// redundant 4-switch chain under a trunk-flap storm with ring traffic,
// fault tolerance and on-demand mapping enabled. Returns distinct
// messages delivered (a determinism cross-check across worker counts).
func run16HostCampaign(seed int64) int {
	nw, rows := topology.Chain(4, 4, 2)
	var hosts []topology.NodeID
	for _, row := range rows {
		hosts = append(hosts, row...)
	}
	c := core.New(core.Config{
		Net: nw, Hosts: hosts, FT: true,
		Retrans: retrans.Config{
			QueueSize:         16,
			Interval:          time.Millisecond,
			PermFailThreshold: 8 * time.Millisecond,
		},
		Mapper: true,
		Seed:   seed,
	})
	e := chaos.NewEngine(c, seed)
	var pairs []chaos.Pair
	for i := range hosts {
		pairs = append(pairs,
			chaos.Pair{Src: hosts[i], Dst: hosts[(i+1)%len(hosts)]},
			chaos.Pair{Src: hosts[i], Dst: hosts[(i+7)%len(hosts)]},
		)
	}
	r := chaos.Workload{Pairs: pairs, Msgs: 12, Gap: 2 * time.Millisecond}.Start(e)
	e.Install(chaos.LinkFlap{Start: time.Millisecond, Cycles: 8})
	c.RunFor(120 * time.Millisecond)
	c.Stop()
	return r.Delivered()
}

// benchProptest times the property-testing pool: lockstep differential
// cases per worker count.
func benchProptest(seed int64, short bool) []proptestRow {
	cases := 1000
	if short {
		cases = 200
	}
	counts := benchWorkerCounts(short)
	walls, _ := minWallSweep(benchReps(short), len(counts), func(ci int) (time.Duration, struct{}) {
		start := time.Now()
		parsim.Map(parsim.Pool{Workers: counts[ci]}, cases, func(i int) bool {
			return proptest.RunLockstep(proptest.GenOps(seed+int64(i)), proptest.MutNone) != nil
		})
		return time.Since(start), struct{}{}
	})

	var rows []proptestRow
	var base time.Duration
	for ci, w := range counts {
		wall := walls[ci]
		if w == 1 {
			base = wall
		}
		rows = append(rows, proptestRow{
			Workers: w,
			Cases:   cases,
			WallMS:  roundMS(wall),
			Speedup: speedup(base, wall),
		})
		fmt.Printf("  proptest workers=%d  %8.1f ms  %6d cases               speedup %.2f\n",
			w, roundMS(wall), cases, speedup(base, wall))
	}
	return rows
}

func roundMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

func speedup(base, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(base) / float64(d)
}
