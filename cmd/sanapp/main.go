// Command sanapp regenerates Figure 9: execution-time breakdowns of the
// SPLASH-2 applications (FFT, RadixLocal, WaterNSquared) on a 4-node,
// 8-processor cluster, grouped by injected error rate, for the four
// protocol configurations the paper plots (r100µs-q2, r100µs-q32,
// r1ms-q2, r1ms-q32).
//
// Usage:
//
//	sanapp                     # all three applications, scaled sizes
//	sanapp -app fft            # one application
//	sanapp -paper              # Table 2 problem sizes (very slow)
//	sanapp -rates 0,1e-3       # restrict the error-rate groups
//	sanapp -json               # unified report JSON (same shape as the other CLIs)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"sanft"
	"sanft/internal/report"
)

func main() {
	app := flag.String("app", "all", "application: fft, radix, water or all")
	paper := flag.Bool("paper", false, "use the paper's Table 2 problem sizes (slow)")
	rates := flag.String("rates", "0,1e-4,1e-3,1e-2", "comma-separated error rates (the paper plots 0,1e-4,1e-3; 1e-2 added so scaled runs visibly degrade)")
	config := flag.String("config", "", "restrict to one protocol configuration, e.g. r1ms-q32 (default: all four Figure 9 bars)")
	seed := flag.Int64("seed", 1, "simulation seed")
	asJSON := flag.Bool("json", false, "emit the figure as unified report JSON instead of text")
	flag.Parse()

	var names []string
	if *app != "all" {
		names = []string{*app}
	}
	var rateList []float64
	if *rates != "" {
		for _, s := range strings.Split(*rates, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad rate %q: %v\n", s, err)
				os.Exit(2)
			}
			rateList = append(rateList, v)
		}
	}
	var configs []sanft.Fig9Config
	if *config != "" {
		spec := strings.TrimPrefix(*config, "r")
		parts := strings.SplitN(spec, "-q", 2)
		if len(parts) != 2 {
			fmt.Fprintf(os.Stderr, "bad -config %q (want e.g. r1ms-q32)\n", *config)
			os.Exit(2)
		}
		d, err1 := time.ParseDuration(parts[0])
		qq, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			fmt.Fprintf(os.Stderr, "bad -config %q: %v %v\n", *config, err1, err2)
			os.Exit(2)
		}
		configs = []sanft.Fig9Config{{Timer: d, Queue: qq}}
	}
	scale := sanft.ScaledFig9
	if *paper {
		scale = sanft.PaperFig9
	}

	start := time.Now()
	cells, err := sanft.RunFig9(names, rateList, configs, scale, sanft.Options{Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *asJSON {
		if err := report.Write(os.Stdout, sanft.Fig9Report(cells), true); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Println(sanft.Fig9String(cells))
	fmt.Printf("(regenerated in %v wall time)\n", time.Since(start).Round(time.Millisecond))
}
