// Command santrace runs a traced workload or chaos campaign and renders
// the captured causal trace three ways: a per-message latency breakdown
// (host / NIC / wire, plus blocking and retransmit-wait components), a
// deterministic text timeline, and a Chrome trace-event JSON file loadable
// in Perfetto (ui.perfetto.dev). Around faults it reconstructs recovery
// timelines, and it dumps any fault-triggered flight-recorder snapshots.
//
// Usage:
//
//	santrace                               # 8-host ring workload, breakdown table
//	santrace -errors 0.02 -recoveries 3    # inject drops, show recovery windows
//	santrace -campaign link-flap -last 400 # trace a chaos campaign's tail
//	santrace -perfetto trace.json          # write the Perfetto file
//	santrace -timeline -                   # print the text timeline
//
// Same flags + same seed → byte-identical timeline and Perfetto output.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sanft"
)

func main() {
	campaign := flag.String("campaign", "", "chaos campaign to trace (empty = ring workload)")
	hosts := flag.Int("hosts", 8, "workload: number of hosts")
	msgs := flag.Int("msgs", 4, "workload: messages per sender")
	size := flag.Int("size", 1024, "workload: message size in bytes")
	errors := flag.Float64("errors", 0, "workload: send-side drop rate (e.g. 0.02)")
	seed := flag.Int64("seed", 1, "seed for all randomness")
	last := flag.Int("last", 400, "timeline: keep only the newest N events (0 = all)")
	timeline := flag.String("timeline", "", "write text timeline to file (\"-\" = stdout)")
	perfetto := flag.String("perfetto", "", "write Chrome trace-event JSON to file")
	breakdown := flag.Bool("breakdown", true, "print the per-message latency breakdown")
	recoveries := flag.Int("recoveries", 0, "print up to N recovery timelines around anomalies")
	snapshots := flag.Bool("snapshots", false, "dump fault-triggered flight-recorder snapshots")
	liveness := flag.Bool("liveness", false,
		"enable per-path liveness sessions + adaptive retransmission (live-up/live-down in timeline)")
	flag.Parse()

	res, err := sanft.RunTraced(sanft.TraceSetup{
		Campaign:  *campaign,
		Hosts:     *hosts,
		Msgs:      *msgs,
		Size:      *size,
		ErrorRate: *errors,
		Seed:      *seed,
		Liveness:  *liveness,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "santrace:", err)
		os.Exit(2)
	}

	if res.Chaos != nil {
		fmt.Print(res.Chaos.String())
	}
	fmt.Printf("captured %d events, %d message spans, %d flight-recorder triggers\n",
		len(res.Events), len(res.Spans), res.Recorder.Triggered())

	if *breakdown {
		fmt.Println()
		fmt.Print(res.BreakdownReport())
	}
	if *recoveries > 0 {
		fmt.Println()
		fmt.Print(res.RecoveryReport(2*time.Millisecond, 10*time.Millisecond, *recoveries))
	}
	if *snapshots {
		fmt.Println()
		fmt.Print(res.Recorder.Dump())
	}
	if *timeline != "" {
		text := res.TimelineText(*last)
		if *timeline == "-" {
			fmt.Println()
			fmt.Print(text)
		} else if err := os.WriteFile(*timeline, []byte(text), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "santrace:", err)
			os.Exit(1)
		}
	}
	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			fmt.Fprintln(os.Stderr, "santrace:", err)
			os.Exit(1)
		}
		if err := res.WritePerfetto(f); err != nil {
			fmt.Fprintln(os.Stderr, "santrace:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "santrace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote Perfetto trace to %s\n", *perfetto)
	}
}
