// Command sanstat exports the simulator's metrics time series. It runs
// either a chaos campaign (instrumented through RunInstrumented) or a
// plain all-pairs workload on a star, samples the metrics registry on a
// fixed simulated-time cadence, and writes the result in one of three
// formats:
//
//	jsonl    one JSON object per sample (the deterministic dump:
//	         identical seeds produce byte-identical output)
//	prom     Prometheus text exposition of the final registry state
//	summary  human-readable digest (counters, gauges, histograms)
//
// Usage:
//
//	sanstat                               # link-flap campaign, JSONL
//	sanstat -campaign partition-heal -format summary
//	sanstat -workload -hosts 4 -rate 0.01 -format prom
//	sanstat -sample 500us -seed 42
//	sanstat -liveness -format summary    # liveness sessions on: liveness.* series
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sanft"
	"sanft/internal/chaos"
	"sanft/internal/core"
)

func main() {
	campaign := flag.String("campaign", "link-flap", "chaos campaign to instrument (see sanchaos -list)")
	workload := flag.Bool("workload", false, "run a plain all-pairs star workload instead of a campaign")
	hosts := flag.Int("hosts", 4, "star size for -workload")
	rate := flag.Float64("rate", 0.01, "injected error rate for -workload")
	msgs := flag.Int("msgs", 20, "messages per host pair for -workload")
	seed := flag.Int64("seed", 1, "simulation seed")
	sample := flag.Duration("sample", time.Millisecond, "sampling interval (simulated time)")
	format := flag.String("format", "jsonl", "output format: jsonl, prom or summary")
	liveness := flag.Bool("liveness", false,
		"enable per-path liveness sessions + adaptive retransmission (exports liveness.* series)")
	flag.Parse()

	var obs *sanft.Observer
	if *workload {
		obs = runWorkload(*hosts, *rate, *msgs, *seed, *sample, *liveness)
	} else {
		obs = runCampaign(*campaign, *seed, *sample, *liveness)
	}

	var err error
	switch *format {
	case "jsonl":
		err = obs.WriteJSONL(os.Stdout)
	case "prom":
		err = obs.WritePrometheus(os.Stdout)
	case "summary":
		_, err = fmt.Print(obs.Summary())
	default:
		fmt.Fprintf(os.Stderr, "sanstat: unknown format %q (want jsonl, prom or summary)\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runCampaign executes the named chaos campaign with periodic sampling
// attached before any traffic or faults, plus one final sample after the
// cluster quiesces.
func runCampaign(name string, seed int64, every time.Duration, liveness bool) *sanft.Observer {
	v := chaos.Baseline()
	if liveness {
		v = chaos.AdaptiveLiveness()
	}
	c, ok := chaos.FindWith(name, v)
	if !ok {
		fmt.Fprintf(os.Stderr, "sanstat: unknown campaign %q (try sanchaos -list)\n", name)
		os.Exit(2)
	}
	var clu *core.Cluster
	var obs *sanft.Observer
	c.RunInstrumented(seed, func(cl *core.Cluster) {
		clu = cl
		obs = cl.Observer()
		obs.StartSampling(cl.K, every)
	})
	obs.SampleNow(clu.Now())
	return obs
}

// runWorkload drives an all-pairs message exchange on a lossy star — the
// micro-benchmark view of the registry, no faults beyond injected drops.
func runWorkload(hosts int, rate float64, msgs int, seed int64, every time.Duration, liveness bool) *sanft.Observer {
	opts := []sanft.Option{
		sanft.WithStar(hosts),
		sanft.WithFaultTolerance(),
		sanft.WithErrorRate(rate),
		sanft.WithSeed(seed),
		sanft.WithSampling(every),
	}
	if liveness {
		opts = append(opts, sanft.WithLiveness(), sanft.WithAdaptiveRetrans())
	}
	c := sanft.New(opts...)
	for i := 0; i < hosts; i++ {
		for j := 0; j < hosts; j++ {
			if i == j {
				continue
			}
			src, dst := i, j
			name := fmt.Sprintf("in-%d", src)
			exp := c.EndpointAt(dst).Export(name, 4096)
			c.K.Spawn(fmt.Sprintf("recv-%d-%d", src, dst), func(p *sanft.Proc) {
				for m := 0; m < msgs; m++ {
					exp.WaitNotification(p)
				}
			})
			c.K.Spawn(fmt.Sprintf("send-%d-%d", src, dst), func(p *sanft.Proc) {
				imp, err := c.EndpointAt(src).Import(c.Host(dst), name)
				if err != nil {
					panic(err)
				}
				for m := 0; m < msgs; m++ {
					imp.Send(p, 0, make([]byte, 1024), true)
				}
			})
		}
	}
	c.RunFor(10 * time.Second)
	c.Stop()
	obs := c.Observer()
	obs.SampleNow(c.Now())
	return obs
}
