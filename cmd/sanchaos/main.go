// Command sanchaos runs seed-driven chaos campaigns against the simulated
// platform and prints a degradation report per campaign: faults injected,
// delivery outcome, remap pacing, delivery-stall (MTTR) statistics, and
// any violated invariants. Same seed, same campaign → byte-identical
// event log.
//
// Every campaign runs with a flight recorder attached: when an invariant
// check fails, the recorder's fault-triggered snapshots (the trace events
// leading up to each anomaly and to the violation itself) are dumped with
// the report, so a failing campaign ships its own post-mortem.
//
// Usage:
//
//	sanchaos                          # run every campaign
//	sanchaos -campaign partition-heal # run one campaign
//	sanchaos -seed 42 -events         # different schedule, print event log
//	sanchaos -reps 16 -workers 4      # 16 seeds per campaign, 4 OS threads
//	sanchaos -liveness                # baseline vs liveness variant, side by side
//	sanchaos -list                    # list campaigns
//
// Scale tier — thousand-host datacenter fabrics on the sharded engine:
//
//	sanchaos -topo fattree:8 -scenario flapstorm   # correlated flap burst, exactly-once audit
//	sanchaos -topo fattree:16 -scenario flapstorm  # same at 1024 hosts
//	sanchaos -topo dragonfly:4,4,4 -scenario gray  # lossy-but-up trunks
//	sanchaos -scenario stalemap                    # sequential stale-map divergence campaign
//
// -topo takes a topology spec (fattree:K, dragonfly:A,P,H,
// torus:HP,D1,D2,...). flapstorm and gray run on the sharded parallel
// engine — -workers then sets the engine's OS-thread count, and results
// are byte-identical for any value. stalemap needs the on-demand mapper
// and therefore runs the sequential stale-map campaign (-topo is ignored).
//
// -liveness runs every selected campaign twice — once under the paper's
// fixed-timer baseline and once with per-path liveness sessions plus
// RTT-adaptive retransmission — and reports both, so the mttr_p50/mttr_p99
// columns (also present in -json output) compare detection+recovery time
// directly.
//
// -reps runs each campaign under reps consecutive seeds (seed..seed+reps-1);
// -workers drives the (campaign, seed) grid through the parallel campaign
// pool (internal/parsim). Every replica is an independent deterministic
// simulation; reports are gathered by grid index and printed in campaign,
// then seed, order — identical output for any worker count.
//
// Exit status is nonzero if any campaign violates an invariant.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"sanft/internal/chaos"
	"sanft/internal/core"
	"sanft/internal/enginestat"
	"sanft/internal/metrics"
	"sanft/internal/parsim"
	"sanft/internal/report"
	"sanft/internal/trace"
)

func main() {
	campaign := flag.String("campaign", "all", "campaign name, or \"all\"")
	seed := flag.Int64("seed", 1, "campaign seed (drives fault schedule and traffic)")
	reps := flag.Int("reps", 1, "replicas per campaign: seeds seed..seed+reps-1")
	workers := flag.Int("workers", 1, "campaign pool workers (0 = GOMAXPROCS)")
	liveness := flag.Bool("liveness", false,
		"run each campaign under both the baseline and the liveness/adaptive variant")
	events := flag.Bool("events", false, "print the full event log per campaign")
	asJSON := flag.Bool("json", false, "emit one JSON object per campaign instead of text")
	list := flag.Bool("list", false, "list available campaigns and exit")
	topo := flag.String("topo", "fattree:8",
		"scale-run topology spec: fattree:K | dragonfly:A,P,H | torus:HP,D1,D2,...")
	scenario := flag.String("scenario", "",
		"scale scenario: flapstorm | gray (sharded, on -topo) | stalemap (sequential campaign)")
	flows := flag.Int("flows", 0, "scale-run flow count (0 = one per host)")
	httpAddr := flag.String("http", "",
		"serve live telemetry on this address during the grid: Prometheus /metrics (cumulative across finished runs), /progress, /debug/pprof")
	httpHold := flag.Duration("http-hold", 0,
		"with -http: keep the telemetry server up this long after the grid finishes (final scrape window)")
	flag.Parse()

	all := chaos.Campaigns()
	if *list {
		for _, c := range all {
			fmt.Printf("%-16s %s\n", c.Name, c.About)
		}
		return
	}
	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	if *reps < 1 {
		*reps = 1
	}
	if *scenario != "" {
		os.Exit(runScale(*scenario, *topo, *seed, *reps, *workers, *flows, *events, *asJSON))
	}

	// One campaign list per protocol variant. With -liveness the grid holds
	// the baseline and the liveness build of every selected campaign,
	// interleaved per campaign so the two reports print adjacent.
	variants := []chaos.Variant{chaos.Baseline()}
	if *liveness {
		variants = append(variants, chaos.AdaptiveLiveness())
	}
	var todo []chaos.Campaign
	if *campaign == "all" {
		for i := range all {
			for _, v := range variants {
				c, _ := chaos.FindWith(all[i].Name, v)
				todo = append(todo, c)
			}
		}
	} else {
		for _, v := range variants {
			c, ok := chaos.FindWith(*campaign, v)
			if !ok {
				fmt.Fprintf(os.Stderr, "sanchaos: unknown campaign %q (try -list)\n", *campaign)
				os.Exit(2)
			}
			todo = append(todo, c)
		}
	}

	// The (campaign, seed) grid, in output order. The pool may execute it
	// in any order; reports are gathered by index so printing below is
	// deterministic.
	type job struct {
		c    chaos.Campaign
		seed int64
	}
	var jobs []job
	for _, c := range todo {
		for r := 0; r < *reps; r++ {
			jobs = append(jobs, job{c, *seed + int64(r)})
		}
	}

	// Live telemetry (-http): campaign clusters are built and torn down per
	// job, so /metrics serves a cumulative registry — each finished run's
	// metrics merge into it (on the worker goroutine, while that cluster is
	// quiescent) and the merged Prometheus render is republished. /progress
	// tracks the grid through the pool's Progress hook.
	var srv *enginestat.Server
	var agg *metrics.Observer
	var aggMu sync.Mutex
	pool := parsim.Pool{Workers: *workers}
	if *httpAddr != "" {
		var err error
		srv, err = enginestat.NewServer(*httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sanchaos: telemetry listen on %s: %v\n", *httpAddr, err)
			os.Exit(1)
		}
		agg = metrics.NewObserver(metrics.Config{})
		prog := &parsim.Progress{}
		prog.Begin(len(jobs))
		pool.Progress = prog
		srv.SetProgress(prog.Snapshot)
		fmt.Fprintf(os.Stderr, "sanchaos: telemetry on http://%s (/metrics /progress /debug/pprof)\n", srv.Addr())
	}

	start := time.Now()
	reports := parsim.Map(pool, len(jobs), func(i int) *chaos.Report {
		var cl *core.Cluster
		rep := jobs[i].c.RunInstrumented(jobs[i].seed, func(c *core.Cluster) {
			cl = c
			c.InstallTracer(trace.NewFlightRecorder(8192))
		})
		if srv != nil && cl != nil {
			publishMerged(srv, agg, &aggMu, cl)
		}
		return rep
	})

	failed := 0
	for _, rep := range reports {
		if err := report.Write(os.Stdout, rep, *asJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *events && !*asJSON {
			fmt.Println("  event log:")
			fmt.Println(indent(rep.EventLog))
		}
		if !rep.Passed() {
			failed++
			if rep.FlightDump != "" && !*asJSON {
				fmt.Println("  flight recorder (post-mortem):")
				fmt.Println(indent(rep.FlightDump))
			}
		}
		if !*asJSON {
			fmt.Println()
		}
	}
	if !*asJSON {
		fmt.Printf("%d/%d campaign runs passed (%d workers, %v wall time)\n",
			len(jobs)-failed, len(jobs), *workers, time.Since(start).Round(time.Millisecond))
	}
	if srv != nil {
		if *httpHold > 0 {
			fmt.Fprintf(os.Stderr, "sanchaos: holding telemetry server %v for a final scrape\n", *httpHold)
			time.Sleep(*httpHold)
		}
		srv.Close()
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// runScale drives the scale tier: flapstorm and gray build a sharded
// thousand-host cluster from the -topo spec and audit exactly-once
// delivery; stalemap needs the on-demand mapper, so it dispatches to the
// sequential stale-map campaign. Returns the process exit code.
func runScale(scenario, topo string, seed int64, reps, workers, flows int, events, asJSON bool) int {
	if scenario == "stalemap" {
		c, _ := chaos.Find("stale-map")
		failed := 0
		for r := 0; r < reps; r++ {
			rep := c.RunInstrumented(seed+int64(r), func(cl *core.Cluster) {
				cl.InstallTracer(trace.NewFlightRecorder(8192))
			})
			if err := report.Write(os.Stdout, rep, asJSON); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			if events && !asJSON {
				fmt.Println("  event log:")
				fmt.Println(indent(rep.EventLog))
			}
			if !rep.Passed() {
				failed++
				if rep.FlightDump != "" && !asJSON {
					fmt.Println("  flight recorder (post-mortem):")
					fmt.Println(indent(rep.FlightDump))
				}
			}
			if !asJSON {
				fmt.Println()
			}
		}
		if failed > 0 {
			return 1
		}
		return 0
	}
	failed := 0
	for r := 0; r < reps; r++ {
		rep, err := chaos.RunScale(chaos.ScaleOpts{
			Topo: topo, Scenario: scenario, Seed: seed + int64(r),
			Workers: workers, Flows: flows,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sanchaos: %v\n", err)
			return 2
		}
		if asJSON {
			if err := json.NewEncoder(os.Stdout).Encode(rep); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		} else {
			fmt.Println(rep.String())
		}
		if !rep.Passed() {
			failed++
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// publishMerged folds one finished (quiescent) campaign cluster's metrics
// into the cumulative registry and republishes the Prometheus render. The
// mutex serializes pool workers; HTTP handlers only ever see the published
// snapshot, never the registry itself.
func publishMerged(srv *enginestat.Server, agg *metrics.Observer, mu *sync.Mutex, cl *core.Cluster) {
	mu.Lock()
	defer mu.Unlock()
	if cl.Sharded() {
		agg.Registry().MergeFrom(cl.MergedObserver().Registry())
	} else {
		agg.Registry().MergeFrom(cl.Observer().Registry())
	}
	var buf bytes.Buffer
	if err := agg.WritePrometheus(&buf); err == nil {
		srv.PublishMetrics(buf.Bytes())
	}
}

func indent(s string) string {
	out := "    "
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += "    "
		}
	}
	return out
}
