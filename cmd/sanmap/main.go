// Command sanmap regenerates Table 3 (the cost of on-demand dynamic
// mapping on the Figure 2 testbed) and, with -compare, the on-demand vs
// full-map ablation.
//
// Usage:
//
//	sanmap              # Table 3
//	sanmap -compare     # plus the full-map comparison
package main

import (
	"flag"
	"fmt"
	"time"

	"sanft"
)

func main() {
	compare := flag.Bool("compare", false, "also compare against a conventional full network map")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	start := time.Now()
	opt := sanft.Options{Seed: *seed}
	fmt.Println(sanft.Table3String(sanft.RunTable3(opt)))
	if *compare {
		fmt.Println(sanft.MappingAblationString(sanft.RunMappingAblation(opt)))
	}
	fmt.Printf("(regenerated in %v wall time)\n", time.Since(start).Round(time.Millisecond))
}
