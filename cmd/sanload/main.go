// Command sanload runs the production traffic tier: open- and
// closed-loop load generators (RPC, replicated KV, chunked streaming)
// over VMMC, across a topology × workload × fault grid, and reports the
// outcome as a per-scenario SLO table — latency quantiles, goodput,
// error rate, and SLO-minutes lost — plus a delta table restating what
// each fault cost relative to the fault-free baseline.
//
// Every replica is an independent deterministic simulation driven
// through the parsim pool: the same seed produces byte-identical tables
// for any -workers value, and each replica's run is audited by the
// chaos invariant oracle (complete delivery, exactly-once notification,
// no leaked buffers, bounded remapping).
//
// Usage:
//
//	sanload                                    # rpc+kv+stream, open+closed, none+linkflap on fattree:16
//	sanload -topos fattree:4 -dur 300ms        # quick local run
//	sanload -protos kv -modes open -reps 4     # narrow the grid, more replicas
//	sanload -faults none,linkflap,gray,drop    # full fault sweep
//	sanload -workers 4                         # pool parallelism (identical output)
//	sanload -json                              # unified report JSON (two objects: SLO + delta)
//
// Exit status is nonzero if any replica violates an invariant.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"sanft/internal/parsim"
	"sanft/internal/report"
	"sanft/internal/workload"
)

func main() {
	topos := flag.String("topos", "fattree:16",
		"comma-separated topology specs (fattree:K | dragonfly:A,P,H | torus:HP,D1,D2,...)")
	protos := flag.String("protos", "rpc,kv,stream", "comma-separated protocols")
	modes := flag.String("modes", "open,closed", "comma-separated generator modes")
	faults := flag.String("faults", "none,linkflap",
		fmt.Sprintf("comma-separated fault scenarios %v", workload.FaultNames))
	baseline := flag.String("baseline", "none", "fault the delta table compares against")
	seed := flag.Int64("seed", 1, "grid seed (replica seeds derive from it)")
	reps := flag.Int("reps", 1, "replicas per grid cell")
	workers := flag.Int("workers", 1, "pool workers (0 = GOMAXPROCS); output is identical for any value")
	dur := flag.Duration("dur", 500*time.Millisecond, "simulated span per replica")
	hosts := flag.Int("hosts", 9, "hosts driven per replica, strided across the topology")

	clients := flag.Int("clients", 8, "logical clients per replica")
	ops := flag.Int("ops", 400, "total operations per replica")
	rate := flag.Float64("rate", 20000, "open-loop aggregate offered load (ops/s)")
	think := flag.Duration("think", 2*time.Millisecond, "closed-loop mean think time")
	pipeline := flag.Int("pipeline", 1, "closed-loop per-client outstanding window")
	val := flag.Int("val", 256, "value/request size in bytes")
	chunks := flag.Int("chunks", 4, "stream transfer length in chunks")
	timeout := flag.Duration("timeout", 250*time.Millisecond, "operation deadline")

	sloLat := flag.Duration("slo-latency", time.Millisecond, "SLO per-operation latency bound")
	sloWin := flag.Duration("slo-window", 50*time.Millisecond, "SLO judgment window")

	asJSON := flag.Bool("json", false, "emit unified report JSON instead of text")
	flag.Parse()

	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	var specs []workload.Spec
	for _, ps := range splitList(*protos) {
		proto, err := workload.ParseProto(ps)
		if err != nil {
			fatal(err)
		}
		for _, ms := range splitList(*modes) {
			mode, err := workload.ParseMode(ms)
			if err != nil {
				fatal(err)
			}
			specs = append(specs, workload.Spec{
				Proto:    proto,
				Mode:     mode,
				Clients:  *clients,
				Ops:      *ops,
				Rate:     *rate,
				Think:    *think,
				Pipeline: *pipeline,
				ValBytes: *val,
				Chunks:   *chunks,
				Timeout:  *timeout,
				SLO:      report.SLO{Latency: *sloLat, Window: *sloWin},
			})
		}
	}

	start := time.Now()
	g, err := workload.RunGrid(workload.GridOpts{
		Topos:  splitList(*topos),
		Specs:  specs,
		Faults: splitList(*faults),
		Seed:   *seed,
		Reps:   *reps,
		Dur:    *dur,
		Hosts:  *hosts,
		Pool:   parsim.Pool{Workers: *workers},
	})
	if err != nil {
		fatal(err)
	}

	slo := report.NewSLOTable("Production workloads: per-scenario SLO outcomes", g.Results)
	if err := report.Write(os.Stdout, slo, *asJSON); err != nil {
		fatal(err)
	}
	if !*asJSON {
		fmt.Println()
	}
	delta := report.NewSLODeltaTable(
		"SLO deltas vs fault-free baseline (Fig. 9 restated in user terms)",
		*baseline, g.Results)
	if len(delta.Cells) > 0 {
		if err := report.Write(os.Stdout, delta, *asJSON); err != nil {
			fatal(err)
		}
		if !*asJSON {
			fmt.Println()
		}
	}

	for _, v := range g.Violations {
		fmt.Fprintf(os.Stderr, "sanload: invariant violation: %s\n", v)
	}
	if !*asJSON {
		cells := len(g.Results)
		fmt.Printf("%d cells × %d replicas, %d violations (%d workers, %v wall time)\n",
			cells, *reps, len(g.Violations), *workers, time.Since(start).Round(time.Millisecond))
	}
	if len(g.Violations) > 0 {
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sanload: %v\n", err)
	os.Exit(2)
}
