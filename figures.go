package sanft

import (
	"fmt"
	"time"

	"sanft/internal/apps"
	"sanft/internal/core"
	"sanft/internal/microbench"
	"sanft/internal/report"
	"sanft/internal/stats"
)

// ---------------------------------------------------------------------------
// Figure 3 — latency breakdown for 4-byte messages
// ---------------------------------------------------------------------------

// Fig3Result holds the five-stage one-way latency breakdown of a 4-byte
// message, with and without the retransmission protocol.
type Fig3Result struct {
	NoFT stats.Breakdown
	FT   stats.Breakdown
}

// RunFig3 regenerates Figure 3.
func RunFig3(opt Options) Fig3Result {
	opt = opt.defaults()
	iters := 30
	no := microbench.Latency(twoNode(false, 32, time.Millisecond, 0, opt.Seed), 4, iters)
	ft := microbench.Latency(twoNode(true, 32, time.Millisecond, 0, opt.Seed), 4, iters)
	return Fig3Result{NoFT: no.Breakdown, FT: ft.Breakdown}
}

func (r Fig3Result) String() string {
	rows := [][]string{
		{"host-send", r.NoFT.HostSend.String(), r.FT.HostSend.String()},
		{"nic-send", r.NoFT.NICSend.String(), r.FT.NICSend.String()},
		{"wire", r.NoFT.Wire.String(), r.FT.Wire.String()},
		{"nic-recv", r.NoFT.NICRecv.String(), r.FT.NICRecv.String()},
		{"host-recv", r.NoFT.HostRecv.String(), r.FT.HostRecv.String()},
		{"TOTAL", r.NoFT.Total().String(), r.FT.Total().String()},
	}
	return "Figure 3: 4-byte one-way latency breakdown\n" +
		table([]string{"stage", "no-FT", "with-FT"}, rows)
}

// ---------------------------------------------------------------------------
// Figure 4 — latency and bandwidth, FT vs no-FT
// ---------------------------------------------------------------------------

// Fig4LatencyRow compares one-way latency for one message size.
type Fig4LatencyRow struct {
	Size int
	NoFT time.Duration
	FT   time.Duration
}

// Fig4BandwidthRow compares bandwidth for one message size.
type Fig4BandwidthRow struct {
	Size    int
	PPNoFT  float64
	PPFT    float64
	UniNoFT float64
	UniFT   float64
}

// Fig4Result regenerates both panels of Figure 4.
type Fig4Result struct {
	Latency   []Fig4LatencyRow   // small messages, 4–64 B
	Bandwidth []Fig4BandwidthRow // 4 B – 1 MB
}

// RunFig4 regenerates Figure 4 (T=1ms, q=32, no errors).
func RunFig4(opt Options) Fig4Result {
	opt = opt.defaults()
	var res Fig4Result
	for _, size := range []int{4, 8, 16, 32, 64} {
		no := microbench.Latency(twoNode(false, 32, time.Millisecond, 0, opt.Seed), size, 20)
		ft := microbench.Latency(twoNode(true, 32, time.Millisecond, 0, opt.Seed), size, 20)
		res.Latency = append(res.Latency, Fig4LatencyRow{Size: size, NoFT: no.OneWay, FT: ft.OneWay})
	}
	sizes := opt.Sizes
	if sizes == nil {
		sizes = PaperSizes
	}
	for _, size := range sizes {
		n := opt.iters(size, 0)
		row := Fig4BandwidthRow{Size: size}
		row.PPNoFT = microbench.PingPong(twoNode(false, 32, time.Millisecond, 0, opt.Seed), size, n).MBps
		row.PPFT = microbench.PingPong(twoNode(true, 32, time.Millisecond, 0, opt.Seed), size, n).MBps
		row.UniNoFT = microbench.Unidirectional(twoNode(false, 32, time.Millisecond, 0, opt.Seed), size, n).MBps
		row.UniFT = microbench.Unidirectional(twoNode(true, 32, time.Millisecond, 0, opt.Seed), size, n).MBps
		res.Bandwidth = append(res.Bandwidth, row)
	}
	return res
}

func (r Fig4Result) String() string {
	var rows [][]string
	for _, l := range r.Latency {
		rows = append(rows, []string{fmt.Sprint(l.Size), l.NoFT.String(), l.FT.String(),
			(l.FT - l.NoFT).String()})
	}
	out := "Figure 4 (left): one-way latency, small messages\n" +
		table([]string{"size", "no-FT", "with-FT", "overhead"}, rows)
	rows = nil
	for _, b := range r.Bandwidth {
		rows = append(rows, []string{fmt.Sprint(b.Size),
			fmt.Sprintf("%.1f", b.PPNoFT), fmt.Sprintf("%.1f", b.PPFT),
			fmt.Sprintf("%.1f", b.UniNoFT), fmt.Sprintf("%.1f", b.UniFT)})
	}
	out += "\nFigure 4 (right): bandwidth MB/s (pp = ping-pong, uni = unidirectional)\n" +
		table([]string{"size", "pp-noFT", "pp-FT", "uni-noFT", "uni-FT"}, rows)
	return out
}

// ---------------------------------------------------------------------------
// Figures 5–8 — parameter sweeps
// ---------------------------------------------------------------------------

// SweepCell is one measured point of a parameter sweep: bandwidth at one
// (timer, queue, error rate, message size) combination.
type SweepCell struct {
	Timer     time.Duration
	Queue     int
	ErrorRate float64
	Size      int
	PingPong  float64 // MB/s
	Uni       float64 // MB/s
}

// SweepResult is a full sweep plus its no-FT baseline rows.
type SweepResult struct {
	Cells    []SweepCell
	Baseline []SweepCell // no-FT (q32), one per size
}

func runSweep(timers []time.Duration, queues []int, rates []float64, opt Options) SweepResult {
	opt = opt.defaults()
	sizes := opt.Sizes
	if sizes == nil {
		sizes = sweepSizes
	}
	var res SweepResult
	for _, size := range sizes {
		n := opt.iters(size, 0)
		res.Baseline = append(res.Baseline, SweepCell{
			Size:     size,
			PingPong: microbench.PingPong(twoNode(false, 32, time.Millisecond, 0, opt.Seed), size, n).MBps,
			Uni:      microbench.Unidirectional(twoNode(false, 32, time.Millisecond, 0, opt.Seed), size, n).MBps,
		})
	}
	for _, timer := range timers {
		for _, q := range queues {
			for _, rate := range rates {
				for _, size := range sizes {
					n := opt.iters(size, rate)
					cell := SweepCell{Timer: timer, Queue: q, ErrorRate: rate, Size: size}
					cell.PingPong = microbench.PingPong(twoNode(true, q, timer, rate, opt.Seed), size, n).MBps
					cell.Uni = microbench.Unidirectional(twoNode(true, q, timer, rate, opt.Seed), size, n).MBps
					res.Cells = append(res.Cells, cell)
				}
			}
		}
	}
	return res
}

// RunFig5 regenerates Figure 5: the retransmission-interval sweep with no
// errors (q=32).
func RunFig5(opt Options) SweepResult {
	return runSweep(PaperTimers, []int{32}, []float64{0}, opt)
}

// RunFig6 regenerates Figure 6: the retransmission-interval sweep under
// injected errors (q=32, rates 10⁻²…10⁻⁴).
func RunFig6(opt Options) SweepResult {
	return runSweep(PaperTimers, []int{32}, PaperErrorRates, opt)
}

// RunFig7 regenerates Figure 7: the send-queue-size sweep with no errors
// (T=1ms).
func RunFig7(opt Options) SweepResult {
	return runSweep([]time.Duration{time.Millisecond}, PaperQueues, []float64{0}, opt)
}

// RunFig8 regenerates Figure 8: the send-queue-size sweep under injected
// errors (T=1ms).
func RunFig8(opt Options) SweepResult {
	return runSweep([]time.Duration{time.Millisecond}, PaperQueues, PaperErrorRates, opt)
}

// String renders the sweep as the two bandwidth tables of the figures.
func (r SweepResult) String() string {
	header := []string{"timer", "queue", "err-rate", "size", "pp-MB/s", "uni-MB/s"}
	var rows [][]string
	for _, c := range r.Baseline {
		rows = append(rows, []string{"-", "32 (no-FT)", "0", fmt.Sprint(c.Size),
			fmt.Sprintf("%.1f", c.PingPong), fmt.Sprintf("%.1f", c.Uni)})
	}
	for _, c := range r.Cells {
		rows = append(rows, []string{fmtTimer(c.Timer), fmt.Sprint(c.Queue),
			fmt.Sprintf("%g", c.ErrorRate), fmt.Sprint(c.Size),
			fmt.Sprintf("%.1f", c.PingPong), fmt.Sprintf("%.1f", c.Uni)})
	}
	return table(header, rows)
}

// ---------------------------------------------------------------------------
// Figure 9 — application execution-time breakdowns
// ---------------------------------------------------------------------------

// Fig9Config is one of the figure's four parameter bars.
type Fig9Config struct {
	Timer time.Duration
	Queue int
}

// PaperFig9Configs returns the four bars of each Figure 9 group:
// r100µs–q2, r100µs–q32, r1ms–q2, r1ms–q32.
func PaperFig9Configs() []Fig9Config {
	return []Fig9Config{
		{100 * time.Microsecond, 2},
		{100 * time.Microsecond, 32},
		{time.Millisecond, 2},
		{time.Millisecond, 32},
	}
}

// Fig9ErrorRates are the figure's groups: 0, 10⁻⁴, 10⁻³.
var Fig9ErrorRates = []float64{0, 1e-4, 1e-3}

// Fig9Cell is one bar: an application's execution breakdown at one
// (error rate, timer, queue) configuration.
type Fig9Cell struct {
	App       string
	ErrorRate float64
	Timer     time.Duration
	Queue     int
	Elapsed   time.Duration
	Breakdown SVMBreakdown // max across workers (critical-path view)
	// Drops counts the error-injected packet losses the run actually
	// experienced. A zero here at a non-zero rate means the scaled
	// problem moved too few packets for this rate — rerun with
	// PaperFig9 sizes to exercise it (the paper lengthened runs for
	// exactly this reason).
	Drops uint64
}

// Fig9Scale selects problem sizes: scaled instances that preserve each
// application's communication character, or the paper's Table 2 sizes.
type Fig9Scale int

const (
	// ScaledFig9 uses CI-friendly problem sizes.
	ScaledFig9 Fig9Scale = iota
	// PaperFig9 uses the Table 2 sizes (much slower).
	PaperFig9
)

// RunFig9 regenerates Figure 9 for the named applications ("fft",
// "radix", "water"; nil = all three).
func RunFig9(appNames []string, rates []float64, configs []Fig9Config, scale Fig9Scale, opt Options) ([]Fig9Cell, error) {
	opt = opt.defaults()
	if appNames == nil {
		appNames = []string{"fft", "radix", "water"}
	}
	if rates == nil {
		rates = Fig9ErrorRates
	}
	if configs == nil {
		configs = PaperFig9Configs()
	}
	var out []Fig9Cell
	for _, name := range appNames {
		for _, rate := range rates {
			for _, cfg := range configs {
				c := fourNode(cfg.Queue, cfg.Timer, rate, opt.Seed)
				res, err := runApp(c, name, scale)
				if err != nil {
					return out, fmt.Errorf("fig9 %s r=%v q=%d e=%g: %w", name, cfg.Timer, cfg.Queue, rate, err)
				}
				var drops uint64
				for i := range c.Hosts {
					drops += c.NICAt(i).Counters().Get("err-injected-drops")
				}
				out = append(out, Fig9Cell{
					App:       name,
					ErrorRate: rate,
					Timer:     cfg.Timer,
					Queue:     cfg.Queue,
					Elapsed:   res.Elapsed,
					Breakdown: res.Max,
					Drops:     drops,
				})
			}
		}
	}
	return out, nil
}

func runApp(c *core.Cluster, name string, scale Fig9Scale) (AppResult, error) {
	switch name {
	case "fft":
		p := apps.FFTParams{LogN: 12, Iters: 3}
		if scale == PaperFig9 {
			p = apps.PaperFFTParams()
		}
		return apps.RunFFT(c, p)
	case "radix":
		p := apps.RadixParams{Keys: 1 << 16, Iters: 1}
		if scale == PaperFig9 {
			p = apps.PaperRadixParams()
		}
		return apps.RunRadix(c, p)
	case "water":
		p := apps.WaterParams{Molecules: 343, Steps: 2}
		if scale == PaperFig9 {
			p = apps.PaperWaterParams()
		}
		return apps.RunWater(c, p)
	default:
		return AppResult{}, fmt.Errorf("unknown application %q", name)
	}
}

// fig9Rows renders cells into the shared header/row shape used by both
// the text and report forms.
func fig9Rows(cells []Fig9Cell) ([]string, [][]string) {
	header := []string{"app", "err-rate", "config", "compute", "data", "lock", "barrier", "elapsed", "drops"}
	var rows [][]string
	for _, c := range cells {
		rows = append(rows, []string{
			c.App, fmt.Sprintf("%g", c.ErrorRate),
			fmt.Sprintf("r%s-q%d", fmtTimer(c.Timer), c.Queue),
			c.Breakdown.Compute.String(), c.Breakdown.Data.String(),
			c.Breakdown.Lock.String(), c.Breakdown.Barrier.String(),
			c.Elapsed.String(), fmt.Sprint(c.Drops),
		})
	}
	return header, rows
}

// Fig9String renders cells grouped the way the figure is.
func Fig9String(cells []Fig9Cell) string {
	header, rows := fig9Rows(cells)
	return "Figure 9: application execution-time breakdowns (max across workers)\n" +
		table(header, rows)
}

// Fig9Report renders cells as the unified report.Table, so sanapp -json
// emits the same machine-readable shape as every other CLI.
func Fig9Report(cells []Fig9Cell) *report.Table {
	header, rows := fig9Rows(cells)
	return &report.Table{
		Name:   "Figure 9: application execution-time breakdowns (max across workers)",
		Header: header,
		Cells:  rows,
	}
}
