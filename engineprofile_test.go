package sanft

import (
	"bytes"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"sanft/internal/enginestat"
)

// profiledGateRun executes the reference parallel scenario with the
// profiler on and returns the cluster's collected profile.
func profiledGateRun(t *testing.T, workers int) *EngineProfile {
	t.Helper()
	f := NewFig2()
	s := New(
		WithTopology(f.Net, nil),
		WithSeed(7),
		WithRetrans(RetransConfig{
			QueueSize:         16,
			Interval:          time.Millisecond,
			PermFailThreshold: 50 * time.Millisecond,
		}),
		WithFaultTolerance(),
		WithEngine(EngineSharded),
		WithWorkers(workers),
		WithEngineProfiling(),
	)
	s.StartFlows(gateFlows(f), 8, 512, 200*time.Microsecond)
	s.RunFor(40 * time.Millisecond)
	s.Stop()
	p := s.EngineProfile()
	if p == nil {
		t.Fatal("EngineProfile returned nil with profiling enabled")
	}
	return p
}

// TestEngineProfileOffByteIdentical is the differential gate of the
// profiler: with profiling off vs on, and across worker counts with
// profiling on, the complete observable output must stay byte-identical —
// the profiler reads wall clocks but feeds nothing back.
func TestEngineProfileOffByteIdentical(t *testing.T) {
	base := gateDump(t, 7, 1)
	for _, w := range []int{1, 2, 4} {
		if got := gateDump(t, 7, w, WithEngineProfiling()); !bytes.Equal(got, base) {
			t.Fatalf("profiled dump (workers=%d) diverged from unprofiled workers=1 baseline", w)
		}
	}
}

// TestEngineProfileAccountingInvariant pins the profiler's documented
// invariant: for every worker that woke at all, the explained buckets
// (busy + stall + steal + exchange) cover its awake wall-clock within
// enginestat.Tolerance, and the coordinator's awake time equals the
// engine's Run wall-clock. GOMAXPROCS is raised to 4 so the engine
// actually spins up helpers even on small CI machines.
func TestEngineProfileAccountingInvariant(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	p := profiledGateRun(t, 4)
	if p.Engine.Epochs == 0 || p.Engine.RunWallNS <= 0 {
		t.Fatalf("empty engine stats: %+v", p.Engine)
	}
	if p.TotalEvents() == 0 {
		t.Fatal("no kernel events recorded")
	}

	checked := 0
	for i := range p.Workers {
		w := &p.Workers[i]
		acc := w.BusyNS + w.StallNS + w.StealNS + w.ExchangeNS
		if w.AwakeNS == 0 && acc == 0 {
			continue // helper slot that never woke (GOMAXPROCS cap)
		}
		checked++
		if w.AwakeNS <= 0 {
			t.Fatalf("worker %d: accounted %dns with zero awake time", w.Worker, acc)
		}
		slack := float64(acc-w.AwakeNS) / float64(w.AwakeNS)
		if slack < 0 {
			slack = -slack
		}
		if slack > enginestat.Tolerance {
			t.Errorf("worker %d: accounted %dns vs awake %dns — off by %.1f%%, tolerance %.0f%%",
				w.Worker, acc, w.AwakeNS, slack*100, enginestat.Tolerance*100)
		}
	}
	if checked == 0 {
		t.Fatal("no worker recorded any activity")
	}

	// The coordinator is awake for exactly the time spent inside Run.
	w0 := &p.Workers[0]
	slack := float64(w0.AwakeNS-p.Engine.RunWallNS) / float64(p.Engine.RunWallNS)
	if slack < 0 {
		slack = -slack
	}
	if slack > enginestat.Tolerance {
		t.Errorf("coordinator awake %dns vs run wall %dns — off by %.1f%%",
			w0.AwakeNS, p.Engine.RunWallNS, slack*100)
	}
}

// TestEngineProfileSequential: the sequential engine has no epoch loop to
// account, but kernel counters and pool traffic still profile.
func TestEngineProfileSequential(t *testing.T) {
	s := New(WithStar(2), WithFaultTolerance(), WithEngineProfiling())
	Latency(s, 64, 8)
	s.Stop()
	p := s.EngineProfile()
	if p == nil {
		t.Fatal("nil profile")
	}
	if p.Engine.Workers != 1 || p.Engine.Shards != 1 {
		t.Fatalf("sequential shape: %+v", p.Engine)
	}
	if len(p.Kernels) != 1 || p.Kernels[0].Executed == 0 {
		t.Fatalf("kernel counters missing: %+v", p.Kernels)
	}
	if p.Kernels[0].Scheduled < p.Kernels[0].Executed {
		t.Fatalf("scheduled %d < executed %d", p.Kernels[0].Scheduled, p.Kernels[0].Executed)
	}
	var text bytes.Buffer
	if err := p.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "kernels:") {
		t.Fatalf("text report missing kernels:\n%s", text.String())
	}
}

// TestTelemetryServerLive drives a cluster with the telemetry server
// attached and scrapes it over real HTTP while the simulation owns the
// registry: /metrics serves Prometheus text, /profile the engine profile,
// /debug/pprof responds, and the published end state survives Stop.
func TestTelemetryServerLive(t *testing.T) {
	f := NewFig2()
	s := New(
		WithTopology(f.Net, nil),
		WithSeed(7),
		WithRetrans(RetransConfig{QueueSize: 16, Interval: time.Millisecond}),
		WithFaultTolerance(),
		WithEngine(EngineSharded),
		WithWorkers(2),
		WithEngineProfiling(),
		WithTelemetryServer("127.0.0.1:0"),
	)
	srv := s.Telemetry()
	if srv == nil {
		t.Fatal("Telemetry() nil with WithTelemetryServer set")
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	// The constructor publishes immediately, so a scrape before any run is
	// already a valid exposition.
	if code, _ := get("/metrics"); code != 200 {
		t.Fatalf("/metrics before run: %d", code)
	}

	s.StartFlows(gateFlows(f), 8, 512, 200*time.Microsecond)
	s.RunFor(10 * time.Millisecond)

	// Between RunFor calls the cluster republishes; the scrape must carry
	// real simulator metrics with exposition headers.
	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, "# TYPE") || !strings.Contains(body, "nic_") {
		t.Fatalf("/metrics mid-campaign: %d\n%s", code, body)
	}
	if code, body := get("/profile"); code != 200 || !strings.Contains(body, "\"epochs\"") {
		t.Fatalf("/profile: %d %s", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}

	s.RunFor(30 * time.Millisecond)
	s.Stop()

	// The server outlives Stop so a final scrape sees the end state.
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "# TYPE") {
		t.Fatalf("/metrics after Stop: %d\n%s", code, body)
	}
}

// TestTelemetryServerSequential: on the sequential engine the publish
// point is the observer's sample hook, so /metrics updates with sampling.
func TestTelemetryServerSequential(t *testing.T) {
	s := New(
		WithStar(2),
		WithFaultTolerance(),
		WithSampling(time.Millisecond),
		WithEngineProfiling(),
		WithTelemetryServer("127.0.0.1:0"),
	)
	srv := s.Telemetry()
	defer srv.Close()
	Latency(s, 64, 8)
	s.Stop()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || !strings.Contains(string(body), "# TYPE") {
		t.Fatalf("/metrics: %d\n%s", resp.StatusCode, body)
	}
}
