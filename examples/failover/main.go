// Failover: a permanent switch-trunk failure strikes mid-stream. The
// retransmission protocol keeps the data safe, the stale-path detector
// classifies the failure as permanent, and the on-demand mapper discovers
// the redundant trunk and resumes traffic over it — no application
// involvement, no central map manager, no full network remap (§4.2).
package main

import (
	"fmt"
	"time"

	"sanft"
)

func main() {
	// Two switches joined by two parallel trunks, four hosts.
	nw, hosts := sanft.DoubleStar(4)
	rc := sanft.DefaultParams()
	rc.PermFailThreshold = 10 * time.Millisecond // fast classification for the demo
	cluster := sanft.New(
		sanft.WithTopology(nw, hosts),
		sanft.WithRetrans(rc),
		sanft.WithFaultTolerance(),
		sanft.WithMapper(), // wire the on-demand mapper to the stale-path detector
		sanft.WithSeed(7),
	)

	src, dst := cluster.EndpointAt(0), cluster.EndpointAt(3) // opposite switches
	inbox := dst.Export("inbox", 4096)

	// Identify the trunk the initial route uses, so we can kill it.
	route, _ := cluster.NICAt(0).Route(dst.Node())
	fmt.Printf("initial route %v\n", route)

	const messages = 40
	cluster.K.Spawn("sender", func(p *sanft.Proc) {
		imp, err := src.Import(dst.Node(), "inbox")
		if err != nil {
			panic(err)
		}
		for i := 0; i < messages; i++ {
			imp.Send(p, 0, []byte(fmt.Sprintf("block %02d", i)), true)
			p.Sleep(200 * time.Microsecond)
		}
	})

	received := 0
	cluster.K.Spawn("receiver", func(p *sanft.Proc) {
		seen := map[string]bool{}
		for received < messages {
			n := inbox.WaitNotification(p)
			msg := string(inbox.Mem[n.Offset : n.Offset+n.Len])
			if !seen[msg] { // remaps are at-least-once; dedup for display
				seen[msg] = true
				received++
			}
		}
		fmt.Printf("[%8v] all %d blocks received\n", p.Now(), received)
	})

	// 2 ms in: sever the trunk the route crosses. The fabric flushes the
	// in-flight worm; everything queued is silently lost on the wire.
	cluster.K.After(2*time.Millisecond, func() {
		sw := nw.Switches()[0]
		trunk := nw.Node(sw).Ports[route[0]]
		cluster.Fab.KillLink(trunk)
		fmt.Printf("[%8v] !!! trunk severed (link %d)\n", cluster.Now(), trunk.ID)
	})

	cluster.RunFor(2 * time.Second)
	cluster.Stop()

	newRoute, ok := cluster.NICAt(0).Route(dst.Node())
	fmt.Printf("remaps completed: %d\n", cluster.Remaps)
	fmt.Printf("new route %v (ok=%v, changed=%v)\n", newRoute, ok, !newRoute.Equal(route))
	fmt.Printf("delivered %d/%d distinct blocks across the permanent failure\n", received, messages)
	fmt.Printf("sender NIC: %s\n", cluster.NICAt(0).Counters())
}
