// Tracer: watch the retransmission protocol work, packet by packet. A
// ring tracer on both NICs records every protocol action while errors are
// injected; the dump shows the story of a loss — send, inject, the
// swallowed packet, the receiver discarding successors (go-back-N), the
// timer's retransmission burst, and the recovery acks.
package main

import (
	"fmt"
	"time"

	"sanft"
)

func main() {
	ring := sanft.NewTraceRing(256)
	cluster := sanft.New(
		sanft.WithStar(2),
		sanft.WithFaultTolerance(),
		sanft.WithErrorRate(0.1), // heavy loss so the trace shows recovery quickly
		sanft.WithSeed(3),
	)
	for i := 0; i < 2; i++ {
		cluster.NICAt(i).SetTracer(ring)
	}

	inbox := cluster.EndpointAt(1).Export("inbox", 8192)
	const n = 12
	cluster.K.Spawn("sender", func(p *sanft.Proc) {
		imp, _ := cluster.EndpointAt(0).Import(cluster.Host(1), "inbox")
		for i := 0; i < n; i++ {
			imp.Send(p, 0, make([]byte, 1024), true)
		}
	})
	got := 0
	cluster.K.Spawn("receiver", func(p *sanft.Proc) {
		for i := 0; i < n; i++ {
			inbox.WaitNotification(p)
			got++
		}
	})
	cluster.RunFor(time.Second)
	cluster.Stop()

	fmt.Print(ring.Dump())
	fmt.Printf("\ndelivered %d/%d; event mix:\n", got, n)
	for _, kc := range ring.CountsSorted() {
		fmt.Printf("  %-12v %d\n", kc.Kind, kc.Count)
	}
}
