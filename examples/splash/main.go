// Splash: run a SPLASH-2 kernel (the paper's Figure 9 workloads) on the
// simulated 4-node, 8-processor cluster and print its execution-time
// breakdown at two error rates — the per-application view behind
// Figure 9.
package main

import (
	"flag"
	"fmt"
	"os"

	"sanft"
)

func main() {
	app := flag.String("app", "fft", "application: fft, radix or water")
	flag.Parse()

	for _, rate := range []float64{0, 1e-2} {
		cluster := sanft.New(
			sanft.WithStar(4),
			sanft.WithFaultTolerance(),
			sanft.WithErrorRate(rate),
		)
		var res sanft.AppResult
		var err error
		switch *app {
		case "fft":
			res, err = sanft.RunFFT(cluster, sanft.FFTParams{LogN: 12, Iters: 2})
		case "radix":
			res, err = sanft.RunRadix(cluster, sanft.RadixParams{Keys: 1 << 15, Iters: 1})
		case "water":
			res, err = sanft.RunWater(cluster, sanft.WaterParams{Molecules: 343, Steps: 2})
		default:
			fmt.Fprintf(os.Stderr, "unknown app %q\n", *app)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("error rate %g:\n  %v\n", rate, res)
		frac := func(n, d int64) float64 { return 100 * float64(n) / float64(d) }
		tot := int64(res.Max.Total())
		fmt.Printf("  shares: compute %.0f%%  data %.0f%%  lock %.0f%%  barrier %.0f%%\n\n",
			frac(int64(res.Max.Compute), tot), frac(int64(res.Max.Data), tot),
			frac(int64(res.Max.Lock), tot), frac(int64(res.Max.Barrier), tot))
	}
}
