// Storage: the paper motivates SAN fault tolerance with storage systems
// (VI-over-SAN databases, storage area networks). This example runs a
// storage-like workload: a client stripes fixed-size blocks across three
// storage servers and verifies every byte after an error storm — a window
// during which the network drops 5% of all packets.
//
// The client computes a checksum per block before writing; each server
// verifies its stripes after the run. With the retransmission protocol the
// storm is invisible to the storage layer: no lost, duplicated, or
// corrupted stripe.
package main

import (
	"fmt"
	"hash/crc32"
	"time"

	"sanft"
)

const (
	blockSize   = 16 * 1024
	stripeSize  = 4 * 1024 // one stripe per server chunk
	numBlocks   = 48
	numServers  = 3
	serverSpace = numBlocks * blockSize
)

func main() {
	cluster := sanft.New(
		sanft.WithStar(numServers+1),
		sanft.WithFaultTolerance(),
		sanft.WithErrorRate(0.05), // the storm: 1 in 20 packets silently dropped
		sanft.WithSeed(99),
	)

	client := cluster.EndpointAt(0)
	var volumes []*sanft.Export
	for s := 0; s < numServers; s++ {
		volumes = append(volumes, cluster.EndpointAt(s+1).Export("volume", serverSpace))
	}

	sums := make([]uint32, numBlocks)
	done := false
	var wrote time.Duration

	cluster.K.Spawn("client", func(p *sanft.Proc) {
		var imps []*sanft.Import
		for s := 0; s < numServers; s++ {
			imp, err := client.Import(cluster.Host(s+1), "volume")
			if err != nil {
				panic(err)
			}
			imps = append(imps, imp)
		}
		start := p.Now()
		for b := 0; b < numBlocks; b++ {
			block := make([]byte, blockSize)
			for i := range block {
				block[i] = byte(b*131 + i*7)
			}
			sums[b] = crc32.ChecksumIEEE(block)
			// Stripe the block round-robin across the servers.
			for off := 0; off < blockSize; off += stripeSize {
				server := (b + off/stripeSize) % numServers
				imps[server].Send(p, b*blockSize+off, block[off:off+stripeSize], true)
			}
		}
		wrote = p.Now().Sub(start)
		done = true
	})

	// Let the storm rage and the writes complete.
	cluster.RunFor(5 * time.Second)
	cluster.Stop()

	if !done {
		fmt.Println("FAILED: client never finished issuing writes")
		return
	}

	// Verify every stripe on every server.
	bad := 0
	for b := 0; b < numBlocks; b++ {
		block := make([]byte, blockSize)
		for off := 0; off < blockSize; off += stripeSize {
			server := (b + off/stripeSize) % numServers
			copy(block[off:off+stripeSize], volumes[server].Mem[b*blockSize+off:])
		}
		if crc32.ChecksumIEEE(block) != sums[b] {
			bad++
		}
	}

	totalDrops := uint64(0)
	totalRetrans := uint64(0)
	for i := 0; i <= numServers; i++ {
		totalDrops += cluster.NICAt(i).Counters().Get("err-injected-drops")
		totalRetrans += cluster.NICAt(i).Counters().Get("pkts-retransmitted")
	}

	fmt.Printf("wrote %d blocks (%d KB) striped over %d servers in %v of storm\n",
		numBlocks, numBlocks*blockSize/1024, numServers, wrote)
	fmt.Printf("packets dropped by the storm: %d; recovered by retransmission: %d\n",
		totalDrops, totalRetrans)
	if bad == 0 {
		fmt.Printf("VERIFIED: all %d block checksums intact\n", numBlocks)
	} else {
		fmt.Printf("FAILED: %d corrupted blocks\n", bad)
	}
}
