// Quickstart: build a two-node SAN, inject transient packet loss, and
// watch the firmware retransmission protocol deliver every message intact
// and in order — transparently to the application.
package main

import (
	"fmt"
	"time"

	"sanft"
)

func main() {
	// A two-host cluster with the paper's best protocol parameters
	// (32-buffer send queue, 1 ms retransmission timer) and a brutal
	// injected error rate: one packet in every fifty vanishes at the
	// sending NIC before reaching the wire.
	cluster := sanft.New(
		sanft.WithStar(2),
		sanft.WithFaultTolerance(),
		sanft.WithErrorRate(0.03),
		sanft.WithSeed(42),
	)

	sender := cluster.EndpointAt(0)
	receiver := cluster.EndpointAt(1)

	// The receiver exports a buffer; VMMC deposits arrive directly in
	// its memory, no receive() call needed.
	inbox := receiver.Export("inbox", 64*1024)

	const messages = 120
	cluster.K.Spawn("sender", func(p *sanft.Proc) {
		imp, err := sender.Import(receiver.Node(), "inbox")
		if err != nil {
			panic(err)
		}
		for i := 0; i < messages; i++ {
			payload := []byte(fmt.Sprintf("message %02d, sent at %v", i, p.Now()))
			imp.Send(p, 0, payload, true)
			p.Sleep(50 * time.Microsecond)
		}
	})

	got := 0
	cluster.K.Spawn("receiver", func(p *sanft.Proc) {
		for i := 0; i < messages; i++ {
			n := inbox.WaitNotification(p)
			if i < 4 || i >= messages-4 {
				fmt.Printf("[%8v] received %q (one-way latency %v)\n",
					p.Now(), string(inbox.Mem[n.Offset:n.Offset+n.Len]), n.Latency)
			} else if i == 4 {
				fmt.Println("   ...")
			}
			got++
		}
	})

	cluster.RunFor(time.Second)
	cluster.Stop()

	nic := cluster.NICAt(0)
	fmt.Printf("\ndelivered %d/%d messages\n", got, messages)
	fmt.Printf("sender NIC: %s\n", nic.Counters())
	fmt.Printf("(err-injected-drops is the injected loss; pkts-retransmitted is the recovery)\n")
}
