package sanft

import (
	"fmt"
	"io"
	"strings"
	"time"

	"sanft/internal/chaos"
	"sanft/internal/core"
	"sanft/internal/trace"
)

// ChaosReport is the outcome of one chaos campaign run (re-exported for
// traced campaign runs; see RunTraced).
type ChaosReport = chaos.Report

// TraceSetup configures a traced run. The zero value runs the default
// workload: 8 hosts on one switch, each sending 4 messages of 1 KB to its
// ring neighbor, fault tolerance on, seed 1.
type TraceSetup struct {
	// Hosts is the cluster size (default 8). Ignored with Campaign set.
	Hosts int
	// Msgs is the number of messages per sender (default 4).
	Msgs int
	// Size is the message size in bytes (default 1024). Keep it at or
	// below the MTU (4096) for exact latency decompositions: multi-chunk
	// messages report the first chunk's breakdown against the whole
	// message's latency.
	Size int
	// Gap paces consecutive sends of one sender (default 50µs).
	Gap time.Duration
	// ErrorRate injects send-side drops (e.g. 1e-2) so retransmission
	// activity shows up in the trace. Default 0.
	ErrorRate float64
	// Seed drives all randomness. Same setup + same seed → byte-identical
	// timelines. Default 1.
	Seed int64
	// RingSize bounds the flight recorder (default 65536 events).
	RingSize int
	// Campaign, if set, runs the named chaos campaign (see internal/chaos)
	// with the flight recorder attached, instead of the workload above.
	Campaign string
	// Liveness enables per-path liveness sessions plus adaptive
	// retransmission for the traced run (campaign or workload), so
	// live-up/live-down events appear in the timeline.
	Liveness bool
}

func (ts TraceSetup) defaults() TraceSetup {
	if ts.Hosts == 0 {
		ts.Hosts = 8
	}
	if ts.Msgs == 0 {
		ts.Msgs = 4
	}
	if ts.Size == 0 {
		ts.Size = 1024
	}
	if ts.Gap == 0 {
		ts.Gap = 50 * time.Microsecond
	}
	if ts.Seed == 0 {
		ts.Seed = 1
	}
	if ts.RingSize == 0 {
		ts.RingSize = 65536
	}
	return ts
}

// MessageTrace is the per-message analysis row santrace prints: end-to-end
// latency with its host/NIC/wire decomposition (from the VMMC notification)
// and the fault-activity components derived from the message's span.
type MessageTrace struct {
	Src, Dst NodeID
	MsgID    uint64

	// Latency is end-to-end one-way latency (zero if the message never
	// completed). Host+NIC+Wire sum to it exactly for single-chunk
	// messages; Host/NIC/Wire are zero when no notification was captured
	// (campaign mode), in which case Latency comes from the span.
	Latency time.Duration
	Host    time.Duration // host send + host receive (PIO/DMA + notify)
	NIC     time.Duration // send + receive firmware
	Wire    time.Duration // injection to tail arrival

	// Blocked sums wormhole head-of-line blocking of the message's
	// packets; RetransWait sums time spent waiting for the periodic timer
	// to recover losses.
	Blocked     time.Duration
	RetransWait time.Duration
	Retransmits int
	Drops       int
	Complete    bool
}

// TraceResult is everything a traced run captured: the raw event stream,
// the reconstructed message spans, the merged per-message analysis, and
// the flight recorder (with any fault-triggered snapshots).
type TraceResult struct {
	Setup    TraceSetup
	Recorder *FlightRecorder
	Events   []TraceEvent
	Spans    []*TraceSpan
	Messages []MessageTrace
	// Chaos is the campaign report (nil in workload mode).
	Chaos *ChaosReport
}

// RunTraced builds a cluster with a flight recorder installed, drives
// either the default ring workload or a named chaos campaign through it,
// and returns the captured trace with per-message analysis.
func RunTraced(ts TraceSetup) (*TraceResult, error) {
	ts = ts.defaults()
	fr := NewFlightRecorder(ts.RingSize)
	res := &TraceResult{Setup: ts, Recorder: fr}
	notes := make(map[TraceSpanKey]Notification)
	if ts.Campaign != "" {
		v := chaos.Baseline()
		if ts.Liveness {
			v = chaos.AdaptiveLiveness()
		}
		camp, ok := chaos.FindWith(ts.Campaign, v)
		if !ok {
			return nil, fmt.Errorf("sanft: unknown chaos campaign %q", ts.Campaign)
		}
		res.Chaos = camp.RunInstrumented(ts.Seed, func(c *core.Cluster) {
			c.InstallTracer(fr)
		})
	} else {
		opts := []Option{
			WithStar(ts.Hosts),
			WithFaultTolerance(),
			WithErrorRate(ts.ErrorRate),
			WithSeed(ts.Seed),
			WithFlightRecorder(fr),
		}
		if ts.Liveness {
			opts = append(opts, WithLiveness(), WithAdaptiveRetrans())
		}
		c := New(opts...)
		runTraceWorkload(c, ts, notes)
	}
	res.Events = fr.Ring().Events()
	res.Spans = BuildSpans(res.Events)
	for _, sp := range res.Spans {
		m := MessageTrace{
			Src: sp.Key.Src, Dst: sp.Key.Dst, MsgID: sp.Key.Msg,
			Latency:     sp.Latency(),
			Blocked:     sp.Blocked,
			RetransWait: sp.RetransWait,
			Retransmits: sp.Retransmits,
			Drops:       sp.Drops,
			Complete:    sp.Complete(),
		}
		if n, ok := notes[sp.Key]; ok {
			m.Latency = n.Latency
			m.Host = n.Breakdown.HostSend + n.Breakdown.HostRecv
			m.NIC = n.Breakdown.NICSend + n.Breakdown.NICRecv
			m.Wire = n.Breakdown.Wire
		}
		res.Messages = append(res.Messages, m)
	}
	return res, nil
}

// runTraceWorkload drives the default workload: host i sends Msgs messages
// to its ring neighbor i+1, each awaited by the receiver's notification.
func runTraceWorkload(c *Cluster, ts TraceSetup, notes map[TraceSpanKey]Notification) {
	n := ts.Hosts
	exps := make([]*Export, n)
	for i := 0; i < n; i++ {
		exps[i] = c.EndpointAt(i).Export("santrace", ts.Size*ts.Msgs)
	}
	remaining := n
	for i := 0; i < n; i++ {
		i := i
		dst := (i + 1) % n
		c.K.Spawn(fmt.Sprintf("santrace-rx-%d", dst), func(p *Proc) {
			for m := 0; m < ts.Msgs; m++ {
				nt := exps[dst].WaitNotification(p)
				notes[TraceSpanKey{Src: nt.Src, Dst: c.Host(dst), Msg: nt.MsgID}] = nt
			}
			remaining--
			if remaining == 0 {
				c.StopSoon()
			}
		})
		c.K.Spawn(fmt.Sprintf("santrace-tx-%d", i), func(p *Proc) {
			imp, err := c.EndpointAt(i).Import(c.Host(dst), "santrace")
			if err != nil {
				panic(err)
			}
			data := make([]byte, ts.Size)
			for m := 0; m < ts.Msgs; m++ {
				imp.Send(p, m*ts.Size, data, true)
				p.Sleep(ts.Gap)
			}
		})
	}
	c.RunFor(30 * time.Second)
	c.Stop()
}

// TimelineText renders the deterministic text timeline: one line per
// event, in emission order. last > 0 keeps only the newest `last` events
// (the interesting tail of long campaigns); 0 keeps everything.
func (r *TraceResult) TimelineText(last int) string {
	ev := r.Events
	if last > 0 && len(ev) > last {
		ev = ev[len(ev)-last:]
	}
	var b strings.Builder
	if len(r.Events) > len(ev) {
		fmt.Fprintf(&b, "... %d earlier events elided ...\n", len(r.Events)-len(ev))
	}
	_ = trace.WriteTimeline(&b, ev)
	return b.String()
}

// WritePerfetto writes the full captured event stream as Chrome
// trace-event JSON, loadable in ui.perfetto.dev or chrome://tracing.
func (r *TraceResult) WritePerfetto(w io.Writer) error {
	return trace.WriteChromeTrace(w, r.Events)
}

// BreakdownReport renders the per-message latency table: end-to-end
// latency, its host/NIC/wire decomposition, and the blocking/retransmit
// components derived from the span.
func (r *TraceResult) BreakdownReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-4s %-4s %-12s %-12s %-12s %-12s %-12s %-12s %-4s %-5s\n",
		"src", "dst", "msg", "latency", "host", "nic", "wire", "blocked", "rtx-wait", "rtx", "drops")
	var complete int
	var sum time.Duration
	for _, m := range r.Messages {
		lat := m.Latency.String()
		if !m.Complete {
			lat = "incomplete"
		} else {
			complete++
			sum += m.Latency
		}
		fmt.Fprintf(&b, "%-4d %-4d %-4d %-12s %-12v %-12v %-12v %-12v %-12v %-4d %-5d\n",
			m.Src, m.Dst, m.MsgID, lat, m.Host, m.NIC, m.Wire,
			m.Blocked, m.RetransWait, m.Retransmits, m.Drops)
	}
	if complete > 0 {
		fmt.Fprintf(&b, "%d messages complete, mean latency %v\n",
			complete, sum/time.Duration(complete))
	}
	if complete < len(r.Messages) {
		fmt.Fprintf(&b, "%d messages incomplete\n", len(r.Messages)-complete)
	}
	return b.String()
}

// RecoveryReport reconstructs the event window around each anomaly
// (watchdog reset, unreachable verdict, quarantine): the trigger plus
// every related event within [-before, +after]. At most max anomalies are
// rendered (0 = no bound).
func (r *TraceResult) RecoveryReport(before, after time.Duration, max int) string {
	tls := trace.RecoveryTimelines(r.Events, before, after, max)
	if len(tls) == 0 && r.Recorder != nil {
		// On long runs the anomalies may have scrolled out of the live
		// ring; reconstruct from the frozen snapshots instead.
		tls = trace.RecoveryFromSnapshots(r.Recorder.Snapshots(), before, max)
	}
	if len(tls) == 0 {
		return "no anomalies observed\n"
	}
	var b strings.Builder
	for _, t := range tls {
		b.WriteString(t.String())
	}
	return b.String()
}
