package sanft

import (
	"fmt"
	"time"

	"sanft/internal/core"
	"sanft/internal/fault"
	"sanft/internal/microbench"
	"sanft/internal/retrans"
	"sanft/internal/routing"
	"sanft/internal/sim"
	"sanft/internal/topology"
)

// This file holds the extension experiments: directions the paper names
// but leaves unexplored. §4.2: "since deadlock-free routes are not needed,
// the quality of the routes may be improved ... we do not investigate this
// any further"; §5.1.3: "we do not experiment with bursty errors".

// ---------------------------------------------------------------------------
// Extension 1 — route quality: shortest paths vs UP*/DOWN*
// ---------------------------------------------------------------------------

// RouteQualityRow summarizes route lengths on one topology.
type RouteQualityRow struct {
	Topology string
	Pairs    int
	// MeanShortest and MeanUpDown are average route lengths (switch
	// hops); Inflated counts pairs where UP*/DOWN* is strictly longer.
	MeanShortest float64
	MeanUpDown   float64
	Inflated     int
	// WorstStretch is the maximum UP*/DOWN*-to-shortest length ratio.
	WorstStretch float64
}

// RunRouteQuality quantifies the paper's §4.2 remark that dropping the
// deadlock-freedom requirement can improve route quality: it compares
// shortest-path routes (what the on-demand mapper installs) against
// UP*/DOWN* routes (what conventional full-map schemes must use) across
// several topologies.
func RunRouteQuality(seed int64) []RouteQualityRow {
	type topo struct {
		name  string
		build func() *topology.Network
	}
	topos := []topo{
		{"fig2", func() *topology.Network { return topology.NewFig2().Net }},
		{"ring6", func() *topology.Network { nw, _ := topology.Ring(6, 2); return nw }},
		{"random", func() *topology.Network {
			nw, _ := topology.Random(12, 6, 8, 3.4, seed)
			return nw
		}},
	}
	var out []RouteQualityRow
	for _, tp := range topos {
		nw := tp.build()
		ud, err := routing.NewUpDown(nw, topology.None)
		if err != nil {
			continue
		}
		row := RouteQualityRow{Topology: tp.name, WorstStretch: 1}
		var sumS, sumU int
		hosts := nw.Hosts()
		for _, a := range hosts {
			for _, b := range hosts {
				if a == b {
					continue
				}
				rs, err1 := routing.Shortest(nw, a, b)
				ru, err2 := ud.Route(a, b)
				if err1 != nil || err2 != nil {
					continue
				}
				row.Pairs++
				sumS += len(rs)
				sumU += len(ru)
				if len(ru) > len(rs) {
					row.Inflated++
					if s := float64(len(ru)) / float64(len(rs)); s > row.WorstStretch {
						row.WorstStretch = s
					}
				}
			}
		}
		if row.Pairs > 0 {
			row.MeanShortest = float64(sumS) / float64(row.Pairs)
			row.MeanUpDown = float64(sumU) / float64(row.Pairs)
		}
		out = append(out, row)
	}
	return out
}

// RouteQualityReport renders the comparison as the shared Report form.
func RouteQualityReport(rows []RouteQualityRow) *ReportTable {
	t := &ReportTable{
		Name:   "Extension: route quality — shortest (on-demand) vs UP*/DOWN* (full-map)",
		Header: []string{"topology", "pairs", "mean-shortest", "mean-up*/down*", "inflated-pairs", "worst-stretch"},
	}
	for _, r := range rows {
		t.Cells = append(t.Cells, []string{r.Topology, fmt.Sprint(r.Pairs),
			fmt.Sprintf("%.2f", r.MeanShortest), fmt.Sprintf("%.2f", r.MeanUpDown),
			fmt.Sprint(r.Inflated), fmt.Sprintf("%.2f", r.WorstStretch)})
	}
	return t
}

// RouteQualityString renders the comparison.
//
// Deprecated: use RouteQualityReport, which also serializes to JSON.
func RouteQualityString(rows []RouteQualityRow) string {
	return RouteQualityReport(rows).String()
}

// ---------------------------------------------------------------------------
// Extension 2 — bursty vs uniform errors at equal rate
// ---------------------------------------------------------------------------

// BurstErrorRow compares the protocol under uniform and bursty loss of
// the same long-run rate.
type BurstErrorRow struct {
	Rate     float64
	BurstLen int
	Uniform  float64 // unidirectional MB/s
	Bursty   float64
}

// RunBurstErrors tests the paper's §5.1.3 assertion that "high, uniform
// error rates are a more stressful test" than bursts: at equal long-run
// rate, correlated drops cost the go-back-N protocol one recovery cycle
// for a whole burst, while uniform drops pay one cycle per packet.
func RunBurstErrors(size int, rates []float64, burstLen int, opt Options) []BurstErrorRow {
	opt = opt.defaults()
	if rates == nil {
		rates = []float64{1e-3, 1e-2}
	}
	if burstLen == 0 {
		burstLen = 8
	}
	var out []BurstErrorRow
	for _, rate := range rates {
		n := opt.iters(size, rate)
		run := func(dropper func() fault.Dropper) float64 {
			nw, hosts := topology.Star(2)
			c := core.New(core.Config{
				Net: nw, Hosts: hosts, FT: true,
				Retrans: retrans.Config{QueueSize: 32, Interval: time.Millisecond},
				Seed:    opt.Seed,
			})
			// Install the custom dropper on the sender's NIC by rebuilding
			// with core's hook: core only knows rates, so wire directly.
			c.NICAt(0).SetDropper(dropper())
			return microbench.Unidirectional(c, size, n).MBps
		}
		out = append(out, BurstErrorRow{
			Rate:     rate,
			BurstLen: burstLen,
			Uniform:  run(func() fault.Dropper { return fault.NewRandom(rate, opt.Seed) }),
			Bursty:   run(func() fault.Dropper { return fault.NewBurst(rate, burstLen, opt.Seed) }),
		})
	}
	return out
}

// BurstErrorReport renders the comparison as the shared Report form.
func BurstErrorReport(rows []BurstErrorRow) *ReportTable {
	t := &ReportTable{
		Name:   "Extension: uniform vs bursty errors at equal long-run rate (unidirectional)",
		Header: []string{"rate", "burst-len", "uniform-MB/s", "bursty-MB/s"},
	}
	for _, r := range rows {
		t.Cells = append(t.Cells, []string{fmt.Sprintf("%g", r.Rate), fmt.Sprint(r.BurstLen),
			fmt.Sprintf("%.1f", r.Uniform), fmt.Sprintf("%.1f", r.Bursty)})
	}
	return t
}

// BurstErrorString renders the comparison.
//
// Deprecated: use BurstErrorReport, which also serializes to JSON.
func BurstErrorString(rows []BurstErrorRow) string {
	return BurstErrorReport(rows).String()
}

// ---------------------------------------------------------------------------
// Extension 3 — protocol state scaling: per-node vs per-connection
// ---------------------------------------------------------------------------

// StateScalingRow reports the retransmission-state footprint for one
// cluster size.
type StateScalingRow struct {
	Nodes        int
	ProcsPerNode int
	// PerNodeQueues is what this system allocates (the paper's choice):
	// one queue per remote NODE.
	PerNodeQueues int
	// PerConnQueues is what a per-connection design would need: one per
	// remote PROCESS pair.
	PerConnQueues int
}

// RunStateScaling quantifies §4.1.1's scalability argument: "using
// retransmission queues per pair of user processes would result in high
// resource requirement in the firmware."
func RunStateScaling(procsPerNode int, sizes []int) []StateScalingRow {
	if procsPerNode == 0 {
		procsPerNode = 2
	}
	if sizes == nil {
		sizes = []int{4, 8, 16, 32, 64, 128}
	}
	var out []StateScalingRow
	for _, n := range sizes {
		out = append(out, StateScalingRow{
			Nodes:         n,
			ProcsPerNode:  procsPerNode,
			PerNodeQueues: n - 1,
			PerConnQueues: (n - 1) * procsPerNode * procsPerNode,
		})
	}
	return out
}

// StateScalingReport renders the comparison as the shared Report form.
func StateScalingReport(rows []StateScalingRow) *ReportTable {
	t := &ReportTable{
		Name:   "Extension: firmware retransmission-state scaling (§4.1.1)",
		Header: []string{"nodes", "procs/node", "per-node-queues", "per-connection-queues"},
	}
	for _, r := range rows {
		t.Cells = append(t.Cells, []string{fmt.Sprint(r.Nodes), fmt.Sprint(r.ProcsPerNode),
			fmt.Sprint(r.PerNodeQueues), fmt.Sprint(r.PerConnQueues)})
	}
	return t
}

// StateScalingString renders the comparison.
//
// Deprecated: use StateScalingReport, which also serializes to JSON.
func StateScalingString(rows []StateScalingRow) string {
	return StateScalingReport(rows).String()
}

// ---------------------------------------------------------------------------
// Extension 4 — VI reliability levels
// ---------------------------------------------------------------------------

// ReliabilityLevelRow measures one of the Virtual Interface
// specification's reliability levels (discussed in the paper's related
// work: VI NICs need only implement unreliable delivery; the paper shows
// reliable delivery is cheap in firmware).
type ReliabilityLevelRow struct {
	Level     string
	Latency4B time.Duration
	UniMBps   float64
}

// RunReliabilityLevels compares the three VI levels on this platform:
// unreliable delivery (no protocol), reliable delivery (ack at NIC
// accept — the paper's scheme), and reliable reception (ack only after
// the data reaches host memory).
func RunReliabilityLevels(opt Options) []ReliabilityLevelRow {
	opt = opt.defaults()
	n := opt.iters(65536, 0)
	build := func(ft, rr bool) *core.Cluster {
		nw, hosts := topology.Star(2)
		return core.New(core.Config{
			Net: nw, Hosts: hosts, FT: ft,
			Retrans: retrans.Config{QueueSize: 32, Interval: time.Millisecond, ReliableReception: rr},
			Seed:    opt.Seed,
		})
	}
	row := func(name string, ft, rr bool) ReliabilityLevelRow {
		lat := microbench.Latency(build(ft, rr), 4, 20)
		bw := microbench.Unidirectional(build(ft, rr), 65536, n)
		return ReliabilityLevelRow{Level: name, Latency4B: lat.OneWay, UniMBps: bw.MBps}
	}
	return []ReliabilityLevelRow{
		row("unreliable-delivery", false, false),
		row("reliable-delivery", true, false),
		row("reliable-reception", true, true),
	}
}

// ReliabilityLevelsReport renders the comparison as the shared Report form.
func ReliabilityLevelsReport(rows []ReliabilityLevelRow) *ReportTable {
	t := &ReportTable{
		Name:   "Extension: VI reliability levels",
		Header: []string{"level", "4B-latency", "uni-64K-MB/s"},
	}
	for _, r := range rows {
		t.Cells = append(t.Cells, []string{r.Level, r.Latency4B.String(), fmt.Sprintf("%.1f", r.UniMBps)})
	}
	return t
}

// ReliabilityLevelsString renders the comparison.
//
// Deprecated: use ReliabilityLevelsReport, which also serializes to JSON.
func ReliabilityLevelsString(rows []ReliabilityLevelRow) string {
	return ReliabilityLevelsReport(rows).String()
}

// ---------------------------------------------------------------------------
// Extension 5 — cluster scalability: all-to-all aggregate throughput
// ---------------------------------------------------------------------------

// ScalabilityRow reports one cluster size's aggregate all-to-all
// throughput.
type ScalabilityRow struct {
	Hosts     int
	Aggregate float64 // MB/s summed over all receivers
	PerHost   float64
	// Retransmissions counts protocol retransmissions (should stay ~0
	// with no errors: contention alone must not trigger the timer).
	Retransmissions uint64
}

// RunScalability measures aggregate all-to-all bandwidth on a single
// crossbar as the cluster grows — the paper's receive-buffer argument
// (§5.1.1) asserts a receiver is never overwhelmed because each sender is
// guaranteed a buffer; here we check the protocol itself adds no
// congestion collapse: aggregate throughput should scale with host count
// until the crossbar's per-port limit binds.
func RunScalability(sizes []int, msgBytes, msgsPerPair int, opt Options) []ScalabilityRow {
	opt = opt.defaults()
	if sizes == nil {
		sizes = []int{2, 4, 8, 16}
	}
	if msgBytes == 0 {
		msgBytes = 65536
	}
	if msgsPerPair == 0 {
		msgsPerPair = 8
	}
	var out []ScalabilityRow
	for _, n := range sizes {
		nw, hosts := topology.Star(n)
		c := core.New(core.Config{
			Net: nw, Hosts: hosts, FT: true,
			Retrans: retrans.Config{QueueSize: 32, Interval: time.Millisecond},
			Seed:    opt.Seed,
		})
		var start, end sim.Time
		remaining := n * (n - 1) * msgsPerPair
		for _, src := range hosts {
			for _, dst := range hosts {
				if src == dst {
					continue
				}
				src, dst := src, dst
				name := fmt.Sprintf("in-%d", src)
				exp := c.Endpoint(dst).Export(name, msgBytes)
				c.K.Spawn(fmt.Sprintf("recv-%d-%d", src, dst), func(p *sim.Proc) {
					for i := 0; i < msgsPerPair; i++ {
						exp.WaitNotification(p)
						remaining--
						end = p.Now()
						if remaining == 0 {
							c.StopSoon()
						}
					}
				})
				c.K.Spawn(fmt.Sprintf("send-%d-%d", src, dst), func(p *sim.Proc) {
					imp, err := c.Endpoint(src).Import(dst, name)
					if err != nil {
						panic(err)
					}
					for i := 0; i < msgsPerPair; i++ {
						imp.Send(p, 0, make([]byte, msgBytes), true)
					}
				})
			}
		}
		start = 0
		c.RunFor(5 * time.Minute)
		c.Stop()
		var retrans uint64
		for i := range hosts {
			retrans += c.NICAt(i).Counters().Get("pkts-retransmitted")
		}
		elapsed := end.Sub(start)
		bytes := uint64(n) * uint64(n-1) * uint64(msgsPerPair) * uint64(msgBytes)
		row := ScalabilityRow{Hosts: n, Retransmissions: retrans}
		if elapsed > 0 {
			row.Aggregate = float64(bytes) / elapsed.Seconds() / 1e6
			row.PerHost = row.Aggregate / float64(n)
		}
		out = append(out, row)
	}
	return out
}

// ScalabilityReport renders the scaling table as the shared Report form.
func ScalabilityReport(rows []ScalabilityRow) *ReportTable {
	t := &ReportTable{
		Name:   "Extension: all-to-all scalability on one crossbar (no errors)",
		Header: []string{"hosts", "aggregate-MB/s", "per-host-MB/s", "retransmissions"},
	}
	for _, r := range rows {
		t.Cells = append(t.Cells, []string{fmt.Sprint(r.Hosts), fmt.Sprintf("%.1f", r.Aggregate),
			fmt.Sprintf("%.1f", r.PerHost), fmt.Sprint(r.Retransmissions)})
	}
	return t
}

// ScalabilityString renders the scaling table.
//
// Deprecated: use ScalabilityReport, which also serializes to JSON.
func ScalabilityString(rows []ScalabilityRow) string {
	return ScalabilityReport(rows).String()
}

// ExtensionReports runs every extension experiment with its defaults and
// returns the reports in presentation order — the single entry point
// cmd/sanbench renders (text or JSON) through report.Write.
func ExtensionReports(opt Options) []Report {
	opt = opt.defaults()
	return []Report{
		RouteQualityReport(RunRouteQuality(opt.Seed)),
		BurstErrorReport(RunBurstErrors(65536, nil, 8, opt)),
		StateScalingReport(RunStateScaling(2, nil)),
		ReliabilityLevelsReport(RunReliabilityLevels(opt)),
		ScalabilityReport(RunScalability(nil, 0, 0, opt)),
	}
}
