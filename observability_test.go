package sanft_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"sanft"
	"sanft/internal/chaos"
	"sanft/internal/core"
	"sanft/internal/proptest"
)

// workloadDump builds a lossy star with periodic sampling, drives an
// all-pairs exchange, and returns the JSONL metrics dump.
func workloadDump(t *testing.T, seed int64) []byte {
	t.Helper()
	const hosts, msgs = 3, 8
	c := sanft.New(
		sanft.WithStar(hosts),
		sanft.WithFaultTolerance(),
		sanft.WithErrorRate(0.05),
		sanft.WithSeed(seed),
		sanft.WithSampling(time.Millisecond),
	)
	for i := 0; i < hosts; i++ {
		for j := 0; j < hosts; j++ {
			if i == j {
				continue
			}
			src, dst := i, j
			name := fmt.Sprintf("in-%d", src)
			exp := c.EndpointAt(dst).Export(name, 4096)
			c.K.Spawn(fmt.Sprintf("recv-%d-%d", src, dst), func(p *sanft.Proc) {
				for m := 0; m < msgs; m++ {
					exp.WaitNotification(p)
				}
			})
			c.K.Spawn(fmt.Sprintf("send-%d-%d", src, dst), func(p *sanft.Proc) {
				imp, err := c.EndpointAt(src).Import(c.Host(dst), name)
				if err != nil {
					panic(err)
				}
				for m := 0; m < msgs; m++ {
					imp.Send(p, 0, make([]byte, 512), true)
				}
			})
		}
	}
	c.RunFor(5 * time.Second)
	c.Stop()
	obs := c.Observer()
	obs.SampleNow(c.Now())
	var b bytes.Buffer
	if err := obs.WriteJSONL(&b); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return b.Bytes()
}

// campaignDump runs a named chaos campaign with sampling attached
// through the instrumentation hook and returns the JSONL metrics dump.
func campaignDump(t *testing.T, seed int64, name string) []byte {
	t.Helper()
	camp, ok := chaos.Find(name)
	if !ok {
		t.Fatalf("%s campaign missing", name)
	}
	var clu *core.Cluster
	var obs *sanft.Observer
	camp.RunInstrumented(seed, func(c *core.Cluster) {
		clu = c
		obs = c.Observer()
		obs.StartSampling(c.K, time.Millisecond)
	})
	obs.SampleNow(clu.Now())
	var b bytes.Buffer
	if err := obs.WriteJSONL(&b); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return b.Bytes()
}

// TestMetricsDumpDeterministic is the contract of the observability
// layer: identical seeds produce byte-identical JSONL dumps, for a plain
// workload and under a chaos campaign alike. The shared proptest helper
// reports the first diverging line instead of just "they differ".
func TestMetricsDumpDeterministic(t *testing.T) {
	proptest.RequireDeterministic(t, 42, func(seed int64) []byte { return workloadDump(t, seed) })
	proptest.RequireDeterministic(t, 42, func(seed int64) []byte { return campaignDump(t, seed, "link-flap") })
}

// TestMetricsDumpCoverage asserts the dump spans every instrumented
// layer: NIC DMA busy time, link utilization, retransmission activity,
// and remap latency histograms. The link-kill campaign is the probe:
// a permanent trunk death is the one fault class guaranteed to cross
// the detection threshold and exercise the remap path (transient flaps
// ride out on retransmission and never map).
func TestMetricsDumpCoverage(t *testing.T) {
	dump := string(campaignDump(t, 1, "link-kill"))
	for _, want := range []string{
		"nic.pci.busy_ns",         // DMA engine busy time
		"nic.cpu.busy_ns",         // firmware processor busy time
		"nic.sram.free_buffers",   // SRAM pool occupancy
		"fabric.link.utilization", // per-link, per-direction load
		"nic.pkts-retransmitted",  // retransmission counts
		"retrans.ack_latency_ns",  // ack round-trip histogram
		"remap.latency_ns",        // remap latency histogram
		"mapping.host_probes",     // probe counts
		"chaos.faults",            // fault injections
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}
}

// TestWorkloadDumpSeedSensitivity guards against the dump being constant:
// different seeds must diverge somewhere in the series.
func TestWorkloadDumpSeedSensitivity(t *testing.T) {
	if bytes.Equal(workloadDump(t, 1), workloadDump(t, 2)) {
		t.Error("dumps for different seeds are identical; sampling is not observing the run")
	}
}
