package sanft

import (
	"strings"
	"testing"
	"time"
)

// quick returns harness options small enough for unit tests while still
// exercising every code path.
func quick() Options {
	return Options{Sizes: []int{65536}, MaxMessages: 1200, MinMessages: 20, Seed: 1}
}

func TestFig3Reproduction(t *testing.T) {
	r := RunFig3(Options{})
	noFT, ft := r.NoFT.Total(), r.FT.Total()
	if noFT < 7500*time.Nanosecond || noFT > 8500*time.Nanosecond {
		t.Fatalf("no-FT total = %v, want ≈8µs", noFT)
	}
	if ft < 9500*time.Nanosecond || ft > 10500*time.Nanosecond {
		t.Fatalf("FT total = %v, want ≈10µs", ft)
	}
	// Paper: the ~2µs overhead splits roughly equally between send and
	// receive firmware.
	sendOver := r.FT.NICSend - r.NoFT.NICSend
	recvOver := r.FT.NICRecv - r.NoFT.NICRecv
	if sendOver < 700*time.Nanosecond || sendOver > 1300*time.Nanosecond ||
		recvOver < 700*time.Nanosecond || recvOver > 1300*time.Nanosecond {
		t.Fatalf("overhead split send=%v recv=%v, want ≈1µs each", sendOver, recvOver)
	}
	if !strings.Contains(r.String(), "Figure 3") {
		t.Fatal("String() missing title")
	}
}

func TestFig4Reproduction(t *testing.T) {
	r := RunFig4(Options{Sizes: []int{4096, 65536, 1 << 20}})
	for _, l := range r.Latency {
		over := l.FT - l.NoFT
		if over <= 0 || over > 2100*time.Nanosecond {
			t.Fatalf("size %d: latency overhead %v outside (0, 2.1µs]", l.Size, over)
		}
	}
	for _, b := range r.Bandwidth {
		if b.Size < 4096 {
			continue
		}
		for _, pair := range [][2]float64{{b.PPNoFT, b.PPFT}, {b.UniNoFT, b.UniFT}} {
			lost := (pair[0] - pair[1]) / pair[0]
			if lost > 0.04 {
				t.Fatalf("size %d: FT bandwidth overhead %.1f%% > 4%%", b.Size, lost*100)
			}
		}
	}
	// PCI ceiling ≈120 MB/s at 1 MB.
	last := r.Bandwidth[len(r.Bandwidth)-1]
	if last.UniNoFT < 110 || last.UniNoFT > 130 {
		t.Fatalf("1MB unidirectional = %.1f, want ≈120", last.UniNoFT)
	}
}

func TestFig5Reproduction(t *testing.T) {
	r := RunFig5(quick())
	// Index cells by timer for the single 64KB size.
	uni := map[time.Duration]float64{}
	for _, c := range r.Cells {
		uni[c.Timer] = c.Uni
	}
	// Paper: ≤100µs timers hurt clearly even with no errors; 1ms is
	// close to the no-FT baseline.
	if uni[10*time.Microsecond] >= uni[time.Millisecond]*0.83 {
		t.Fatalf("10µs timer (%.1f) should trail 1ms (%.1f) by >17%%",
			uni[10*time.Microsecond], uni[time.Millisecond])
	}
	base := r.Baseline[0].Uni
	if uni[time.Millisecond] < base*0.95 {
		t.Fatalf("1ms timer (%.1f) should be within 5%% of no-FT (%.1f)", uni[time.Millisecond], base)
	}
}

func TestFig6Reproduction(t *testing.T) {
	opt := quick()
	opt.MaxMessages = 2500
	r := RunFig6(opt)
	type key struct {
		timer time.Duration
		rate  float64
	}
	uni := map[key]float64{}
	for _, c := range r.Cells {
		uni[key{c.Timer, c.ErrorRate}] = c.Uni
	}
	// Paper: at 1e-4 and T=1ms, within ~10% of error-free.
	base := r.Baseline[0].Uni
	if v := uni[key{time.Millisecond, 1e-4}]; v < base*0.90 {
		t.Fatalf("1ms @ 1e-4 = %.1f, want within 10%% of %.1f", v, base)
	}
	// Paper: a 1s timer collapses under errors (>72% drop).
	if v := uni[key{time.Second, 1e-3}]; v > base*0.5 {
		t.Fatalf("1s @ 1e-3 = %.1f, should collapse vs %.1f", v, base)
	}
	// Robustness ordering at 1e-2: 1ms comfortably beats 1s.
	if uni[key{time.Millisecond, 1e-2}] <= uni[key{time.Second, 1e-2}] {
		t.Fatal("1ms should beat 1s at 1e-2")
	}
}

func TestFig7Reproduction(t *testing.T) {
	r := RunFig7(quick())
	uni := map[int]float64{}
	for _, c := range r.Cells {
		uni[c.Queue] = c.Uni
	}
	// Paper: q≥8 reaches close-to-maximum bandwidth; q=2 clearly lower.
	if uni[2] >= uni[8]*0.95 {
		t.Fatalf("q=2 (%.1f) should clearly trail q=8 (%.1f)", uni[2], uni[8])
	}
	for _, q := range []int{8, 32, 128} {
		if uni[q] < uni[32]*0.9 {
			t.Fatalf("q=%d (%.1f) should be near q=32 (%.1f) with no errors", q, uni[q], uni[32])
		}
	}
}

func TestFig8Reproduction(t *testing.T) {
	opt := quick()
	opt.MaxMessages = 2500
	r := RunFig8(opt)
	type key struct {
		q    int
		rate float64
	}
	uni := map[key]float64{}
	for _, c := range r.Cells {
		uni[key{c.Queue, c.ErrorRate}] = c.Uni
	}
	base := r.Baseline[0].Uni
	// Paper: at 1e-4 or less, any q≥8 stays close to best.
	if v := uni[key{32, 1e-4}]; v < base*0.85 {
		t.Fatalf("q32 @ 1e-4 = %.1f, want near %.1f", v, base)
	}
	// Paper's headline: q=128 at 1e-2 unidirectional loses >30%, and
	// does clearly worse than q=32 at the same rate (sender-based
	// feedback delays acks; go-back-N resends huge bursts).
	if v := uni[key{128, 1e-2}]; v > base*0.70 {
		t.Fatalf("q128 @ 1e-2 = %.1f, want >30%% below %.1f", v, base)
	}
	if uni[key{128, 1e-2}] >= uni[key{32, 1e-2}] {
		t.Fatalf("q128 (%.1f) should trail q32 (%.1f) at 1e-2",
			uni[key{128, 1e-2}], uni[key{32, 1e-2}])
	}
}

func TestFig9Reproduction(t *testing.T) {
	// 1e-2 rather than the figure's 1e-3: the scaled problem size moves
	// too few packets for ten drops at 1e-3 (the paper lengthened runs
	// precisely to avoid this); the bench harness covers 1e-3 at scale.
	cells, err := RunFig9([]string{"radix"}, []float64{0, 1e-2},
		[]Fig9Config{{time.Millisecond, 2}, {time.Millisecond, 32}}, ScaledFig9, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cells", len(cells))
	}
	byKey := func(rate float64, q int) Fig9Cell {
		for _, c := range cells {
			if c.ErrorRate == rate && c.Queue == q {
				return c
			}
		}
		t.Fatalf("missing cell %g/%d", rate, q)
		return Fig9Cell{}
	}
	clean, noisy := byKey(0, 32), byKey(1e-2, 32)
	if noisy.Elapsed <= clean.Elapsed {
		t.Fatalf("1e-2 errors should lengthen execution: %v vs %v", noisy.Elapsed, clean.Elapsed)
	}
	for _, c := range cells {
		if c.Breakdown.Data == 0 || c.Breakdown.Barrier == 0 {
			t.Fatalf("cell %+v missing breakdown buckets", c)
		}
	}
	if !strings.Contains(Fig9String(cells), "radix") {
		t.Fatal("Fig9String missing app name")
	}
}

func TestTable3Reproduction(t *testing.T) {
	rows := RunTable3(Options{})
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, r := range rows {
		if r.Hops != i+1 {
			t.Fatalf("row %d hops = %d", i, r.Hops)
		}
		if r.Total != r.HostProbes+r.SwitchProbes {
			t.Fatal("total mismatch")
		}
		if i > 0 {
			prev := rows[i-1]
			if r.Total <= prev.Total || r.MapTime <= prev.MapTime {
				t.Fatalf("probe count/time not increasing with distance: %+v then %+v", prev, r)
			}
		}
	}
	// Paper's magnitudes: a few tens of probes per hop level, mapping
	// times from a few ms to ~100ms; ours should be the same order.
	if rows[0].MapTime < time.Millisecond || rows[3].MapTime > 500*time.Millisecond {
		t.Fatalf("map times out of plausible range: %v .. %v", rows[0].MapTime, rows[3].MapTime)
	}
	if !strings.Contains(Table3String(rows), "Table 3") {
		t.Fatal("missing title")
	}
}

func TestMappingAblation(t *testing.T) {
	rows := RunMappingAblation(Options{})
	for _, r := range rows {
		if r.OnDemandProbes >= r.FullProbes {
			t.Fatalf("on-demand (%d probes) not cheaper than full map (%d) at %d hops",
				r.OnDemandProbes, r.FullProbes, r.Hops)
		}
		if r.OnDemandTime >= r.FullTime {
			t.Fatalf("on-demand not faster at %d hops", r.Hops)
		}
	}
	if !strings.Contains(MappingAblationString(rows), "on-demand") {
		t.Fatal("missing render")
	}
}

func TestAckAblation(t *testing.T) {
	r := RunAckAblation(4096, Options{MaxMessages: 600})
	if r.PiggybackedAcks == 0 {
		t.Fatal("no piggybacked acks with the optimization on")
	}
	if r.ExplicitAcksWithout <= r.ExplicitAcksWith {
		t.Fatalf("disabling piggyback should raise explicit acks: %d vs %d",
			r.ExplicitAcksWithout, r.ExplicitAcksWith)
	}
	if r.WithPiggyback < r.WithoutPiggyback*0.98 {
		t.Fatalf("piggybacking should not hurt bandwidth: %.1f vs %.1f",
			r.WithPiggyback, r.WithoutPiggyback)
	}
}

func TestFeedbackAblation(t *testing.T) {
	rows := RunFeedbackAblation(65536, []int{128}, []float64{0, 1e-2}, Options{MaxMessages: 1500})
	var clean, noisy FeedbackAblationRow
	for _, r := range rows {
		if r.ErrorRate == 0 {
			clean = r
		} else {
			noisy = r
		}
	}
	// Finding 1: under a saturating one-way stream the starvation escape
	// dominates both policies (near ack-per-packet), and bandwidth is
	// identical — explicit-ack volume is not a bandwidth bottleneck.
	if clean.AdaptiveAcks == 0 || clean.FixedAcks == 0 {
		t.Fatal("no acks recorded")
	}
	if ratio := clean.Fixed / clean.Adaptive; ratio < 0.97 || ratio > 1.03 {
		t.Fatalf("error-free bandwidth should match: adaptive %.1f vs fixed %.1f",
			clean.Adaptive, clean.Fixed)
	}
	// And the finding: under errors the policies degrade the same —
	// post-drop waste is bounded by queue headroom, not ack frequency
	// (see EXPERIMENTS.md). Guard the finding within 10%.
	ratio := noisy.Fixed / noisy.Adaptive
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("under errors the policies should degrade alike; got %.1f vs %.1f",
			noisy.Adaptive, noisy.Fixed)
	}
}

func TestPublicAPISmoke(t *testing.T) {
	// The facade exposes enough to build a custom scenario end to end.
	c := NewStar(2, true, DefaultParams(), 0)
	a, b := c.EndpointAt(0), c.EndpointAt(1)
	exp := b.Export("inbox", 128)
	got := false
	c.K.Spawn("app", func(p *Proc) {
		imp, err := a.Import(b.Node(), "inbox")
		if err != nil {
			t.Error(err)
			return
		}
		imp.Send(p, 0, []byte("ping"), true)
	})
	c.K.Spawn("recv", func(p *Proc) {
		exp.WaitNotification(p)
		got = true
	})
	c.RunFor(time.Millisecond)
	c.Stop()
	if !got {
		t.Fatal("message not delivered through the public API")
	}
}
