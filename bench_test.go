package sanft

import (
	"testing"
	"time"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation section. Run them with:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// Each benchmark reports the headline quantities of its figure via
// b.ReportMetric, so the bench output doubles as a summary of the
// reproduction (EXPERIMENTS.md records a full run).

// benchOpt keeps per-iteration work bounded while preserving shapes.
func benchOpt() Options {
	return Options{Sizes: []int{4096, 65536, 1 << 20}, MaxMessages: 2000, Seed: 1}
}

// BenchmarkFig3LatencyBreakdown regenerates Figure 3 and reports the
// 4-byte one-way latency with and without fault tolerance (paper: 8µs and
// 10µs).
func BenchmarkFig3LatencyBreakdown(b *testing.B) {
	var r Fig3Result
	for i := 0; i < b.N; i++ {
		r = RunFig3(Options{Seed: int64(i + 1)})
	}
	b.ReportMetric(float64(r.NoFT.Total().Nanoseconds())/1000, "noFT-µs")
	b.ReportMetric(float64(r.FT.Total().Nanoseconds())/1000, "FT-µs")
}

// BenchmarkFig4LatencyAndBandwidth regenerates Figure 4 and reports the
// FT latency overhead at 64 B (paper: ≤2.1µs) and the FT bandwidth
// penalty at 1 MB (paper: <4%).
func BenchmarkFig4LatencyAndBandwidth(b *testing.B) {
	var r Fig4Result
	for i := 0; i < b.N; i++ {
		r = RunFig4(benchOpt())
	}
	last := r.Latency[len(r.Latency)-1]
	b.ReportMetric(float64((last.FT-last.NoFT).Nanoseconds())/1000, "lat-overhead-µs")
	bw := r.Bandwidth[len(r.Bandwidth)-1]
	b.ReportMetric(bw.UniNoFT, "uni-noFT-MB/s")
	b.ReportMetric(bw.UniFT, "uni-FT-MB/s")
}

// BenchmarkFig5TimerSweep regenerates Figure 5 and reports 64 KB
// unidirectional bandwidth at the extreme and best timer settings.
func BenchmarkFig5TimerSweep(b *testing.B) {
	var r SweepResult
	for i := 0; i < b.N; i++ {
		r = RunFig5(Options{Sizes: []int{65536}, Seed: int64(i + 1)})
	}
	for _, c := range r.Cells {
		switch c.Timer {
		case 10 * time.Microsecond:
			b.ReportMetric(c.Uni, "uni-10µs-MB/s")
		case time.Millisecond:
			b.ReportMetric(c.Uni, "uni-1ms-MB/s")
		}
	}
}

// BenchmarkFig6TimerErrors regenerates Figure 6 and reports the 1ms and
// 1s timers at error rate 1e-3 (paper: 1ms robust, 1s collapses).
func BenchmarkFig6TimerErrors(b *testing.B) {
	var r SweepResult
	for i := 0; i < b.N; i++ {
		r = RunFig6(Options{Sizes: []int{65536}, MaxMessages: 2500, Seed: int64(i + 1)})
	}
	for _, c := range r.Cells {
		if c.ErrorRate == 1e-3 {
			switch c.Timer {
			case time.Millisecond:
				b.ReportMetric(c.Uni, "uni-1ms@1e-3-MB/s")
			case time.Second:
				b.ReportMetric(c.Uni, "uni-1s@1e-3-MB/s")
			}
		}
	}
}

// BenchmarkFig7QueueSweep regenerates Figure 7 and reports q=2 vs q=32.
func BenchmarkFig7QueueSweep(b *testing.B) {
	var r SweepResult
	for i := 0; i < b.N; i++ {
		r = RunFig7(Options{Sizes: []int{65536}, Seed: int64(i + 1)})
	}
	for _, c := range r.Cells {
		switch c.Queue {
		case 2:
			b.ReportMetric(c.Uni, "uni-q2-MB/s")
		case 32:
			b.ReportMetric(c.Uni, "uni-q32-MB/s")
		}
	}
}

// BenchmarkFig8QueueErrors regenerates Figure 8 and reports the q=32 vs
// q=128 contrast at 1e-2 (paper: q=128 loses >30%).
func BenchmarkFig8QueueErrors(b *testing.B) {
	var r SweepResult
	for i := 0; i < b.N; i++ {
		r = RunFig8(Options{Sizes: []int{65536}, MaxMessages: 2500, Seed: int64(i + 1)})
	}
	for _, c := range r.Cells {
		if c.ErrorRate == 1e-2 {
			switch c.Queue {
			case 32:
				b.ReportMetric(c.Uni, "uni-q32@1e-2-MB/s")
			case 128:
				b.ReportMetric(c.Uni, "uni-q128@1e-2-MB/s")
			}
		}
	}
}

// BenchmarkFig9Apps regenerates Figure 9 (scaled problem sizes, the full
// app × rate × config grid) and reports total execution times at the
// extremes.
func BenchmarkFig9Apps(b *testing.B) {
	var cells []Fig9Cell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = RunFig9(nil, nil, nil, ScaledFig9, Options{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range cells {
		if c.Queue == 32 && c.Timer == time.Millisecond {
			switch {
			case c.ErrorRate == 0:
				b.ReportMetric(c.Elapsed.Seconds()*1000, c.App+"-clean-ms")
			case c.ErrorRate == 1e-3:
				b.ReportMetric(c.Elapsed.Seconds()*1000, c.App+"-1e-3-ms")
			}
		}
	}
}

// BenchmarkTable3Mapping regenerates Table 3 and reports the probe count
// and mapping time for the 4-hop target.
func BenchmarkTable3Mapping(b *testing.B) {
	var rows []Table3Row
	for i := 0; i < b.N; i++ {
		rows = RunTable3(Options{Seed: int64(i + 1)})
	}
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.Total), "probes-4hop")
	b.ReportMetric(last.MapTime.Seconds()*1000, "maptime-4hop-ms")
	b.ReportMetric(float64(rows[0].Total), "probes-1hop")
	b.ReportMetric(rows[0].MapTime.Seconds()*1000, "maptime-1hop-ms")
}

// BenchmarkAblationMapping compares on-demand against full-map discovery.
func BenchmarkAblationMapping(b *testing.B) {
	var rows []MappingAblationRow
	for i := 0; i < b.N; i++ {
		rows = RunMappingAblation(Options{Seed: int64(i + 1)})
	}
	b.ReportMetric(float64(rows[0].OnDemandProbes), "ondemand-1hop-probes")
	b.ReportMetric(float64(rows[0].FullProbes), "fullmap-probes")
}

// BenchmarkAblationAcks compares piggybacked against always-explicit
// acknowledgments.
func BenchmarkAblationAcks(b *testing.B) {
	var r AckAblationResult
	for i := 0; i < b.N; i++ {
		r = RunAckAblation(4096, Options{MaxMessages: 800, Seed: int64(i + 1)})
	}
	b.ReportMetric(r.WithPiggyback, "piggyback-MB/s")
	b.ReportMetric(r.WithoutPiggyback, "explicit-MB/s")
	b.ReportMetric(float64(r.PiggybackedAcks), "piggybacked-acks")
}

// BenchmarkAblationFeedback compares adaptive sender-based feedback with
// a fixed ack period.
func BenchmarkAblationFeedback(b *testing.B) {
	var rows []FeedbackAblationRow
	for i := 0; i < b.N; i++ {
		rows = RunFeedbackAblation(65536, []int{128}, []float64{0, 1e-2}, Options{MaxMessages: 1500, Seed: int64(i + 1)})
	}
	for _, r := range rows {
		if r.ErrorRate == 1e-2 {
			b.ReportMetric(r.Adaptive, "adaptive@1e-2-MB/s")
			b.ReportMetric(r.Fixed, "fixed32@1e-2-MB/s")
		}
	}
}

// BenchmarkRawSimulatorThroughput measures the simulator's own speed:
// simulated packets per wall second for a saturating 4 KB stream. Not a
// paper figure — an engineering health metric.
func BenchmarkRawSimulatorThroughput(b *testing.B) {
	msgs := 0
	start := time.Now()
	for i := 0; i < b.N; i++ {
		c := twoNode(true, 32, time.Millisecond, 0, int64(i+1))
		r := UnidirectionalBandwidth(c, 4096, 2000)
		msgs += r.Messages
	}
	wall := time.Since(start).Seconds()
	if wall > 0 {
		b.ReportMetric(float64(msgs)/wall, "sim-pkts/s")
	}
}

// BenchmarkExtensionBurstErrors compares uniform and bursty loss at equal
// long-run rate (extension of §5.1.3).
func BenchmarkExtensionBurstErrors(b *testing.B) {
	var rows []BurstErrorRow
	for i := 0; i < b.N; i++ {
		rows = RunBurstErrors(65536, []float64{1e-2}, 8, Options{MaxMessages: 1500, Seed: int64(i + 1)})
	}
	b.ReportMetric(rows[0].Uniform, "uniform@1e-2-MB/s")
	b.ReportMetric(rows[0].Bursty, "bursty@1e-2-MB/s")
}

// BenchmarkExtensionReliabilityLevels compares the three VI reliability
// levels (extension of the related-work discussion).
func BenchmarkExtensionReliabilityLevels(b *testing.B) {
	var rows []ReliabilityLevelRow
	for i := 0; i < b.N; i++ {
		rows = RunReliabilityLevels(Options{MaxMessages: 400, Seed: int64(i + 1)})
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Latency4B.Nanoseconds())/1000, r.Level+"-µs")
	}
}

// BenchmarkExtensionRouteQuality measures the route-length inflation of
// deadlock-free UP*/DOWN* routing (extension of §4.2's route-quality
// remark).
func BenchmarkExtensionRouteQuality(b *testing.B) {
	var rows []RouteQualityRow
	for i := 0; i < b.N; i++ {
		rows = RunRouteQuality(int64(i + 17))
	}
	for _, r := range rows {
		if r.Topology == "ring6" {
			b.ReportMetric(r.MeanUpDown/r.MeanShortest, "ring6-stretch")
		}
	}
}
