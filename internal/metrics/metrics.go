// Package metrics is the simulator's deterministic observability layer:
// counters, gauges, and HDR-style histograms keyed by (name, labels), with
// periodic time-series sampling driven by the simulation kernel.
//
// Design constraints, in order:
//
//   - Determinism. Identical seeds must produce byte-identical metric
//     dumps. All iteration is in sorted key order, all timestamps are
//     simulated time, and no wall-clock or map-order nondeterminism can
//     reach an export.
//   - Zero configuration. Every producer (NIC, fabric, mapper, remap
//     manager, chaos engine) instruments unconditionally against a
//     Registry; a component built standalone gets a private registry, a
//     component built by core.New shares the cluster-wide one. No nil
//     checks on hot paths.
//   - Cheap hot paths. Producers hold a Scope, which caches metric
//     handles per name so steady-state recording is one map lookup and an
//     integer add.
//
// The taxonomy (see DESIGN.md) uses dotted metric names prefixed by
// subsystem — nic.*, fabric.*, retrans.*, mapping.*, remap.*, chaos.* —
// and labels for the identity dimensions (host, link, dir, reason).
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Label is one identity dimension of a metric (e.g. host=3).
type Label struct {
	Key, Value string
}

// Labels is a set of identity dimensions. Order does not matter; the
// registry canonicalizes by sorting on key.
type Labels []Label

// L builds a Labels from alternating key, value strings:
// L("host", "3", "dir", "0").
func L(kv ...string) Labels {
	if len(kv)%2 != 0 {
		panic("metrics: L takes alternating key, value pairs")
	}
	ls := make(Labels, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ls = append(ls, Label{Key: kv[i], Value: kv[i+1]})
	}
	return ls
}

// canonical returns the sorted "k=v,k=v" form of the label set.
func (ls Labels) canonical() string {
	if len(ls) == 0 {
		return ""
	}
	sorted := append(Labels(nil), ls...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// ident builds the full metric identity: name{k=v,...}, or bare name when
// unlabeled. Idents are the keys of every export, so they sort text-wise.
func ident(name string, ls Labels) string {
	c := ls.canonical()
	if c == "" {
		return name
	}
	return name + "{" + c + "}"
}

// Counter is a monotonically increasing event count.
type Counter struct {
	r *Registry
	v uint64
}

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	c.v += n
	c.r.epoch++
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is an instantaneous value set by its producer.
type Gauge struct {
	r *Registry
	v float64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	g.v = v
	g.r.epoch++
}

// Add shifts the gauge's value by d.
func (g *Gauge) Add(d float64) { g.Set(g.v + d) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Registry holds every metric of one system instance. It is not safe for
// concurrent use: like the simulation kernel it serves, all access happens
// on one logical thread.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() float64
	hists    map[string]*Histogram

	// epoch increments on every recorded observation (not on gauge-func
	// reads); the sampler uses it to suppress samples of an idle system.
	epoch uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
	}
}

// Epoch returns the activity epoch: it changes iff an observation was
// recorded since the last change.
func (r *Registry) Epoch() uint64 { return r.epoch }

// Counter returns (creating if needed) the counter name{labels}.
func (r *Registry) Counter(name string, ls Labels) *Counter {
	id := ident(name, ls)
	c := r.counters[id]
	if c == nil {
		c = &Counter{r: r}
		r.counters[id] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge name{labels}.
func (r *Registry) Gauge(name string, ls Labels) *Gauge {
	id := ident(name, ls)
	g := r.gauges[id]
	if g == nil {
		g = &Gauge{r: r}
		r.gauges[id] = g
	}
	return g
}

// GaugeFunc registers a derived gauge evaluated at sample/export time.
// Re-registering an ident replaces the previous function.
func (r *Registry) GaugeFunc(name string, ls Labels, fn func() float64) {
	r.gaugeFns[ident(name, ls)] = fn
}

// Histogram returns (creating if needed) the histogram name{labels}.
func (r *Registry) Histogram(name string, ls Labels) *Histogram {
	id := ident(name, ls)
	h := r.hists[id]
	if h == nil {
		h = &Histogram{r: r}
		r.hists[id] = h
	}
	return h
}

// CounterTotal sums every counter whose name matches, across all label
// sets — e.g. CounterTotal("remap.attempts") over all hosts.
func (r *Registry) CounterTotal(name string) uint64 {
	var t uint64
	prefix := name + "{"
	for id, c := range r.counters {
		if id == name || strings.HasPrefix(id, prefix) {
			t += c.v
		}
	}
	return t
}

// Scope is a producer's cached view of a registry under a fixed label set.
// It turns steady-state recording into a single map lookup, so hot paths
// (the NIC firmware loop) can record unconditionally.
type Scope struct {
	r        *Registry
	labels   Labels
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// Scope returns a cached handle with the given labels attached to every
// metric recorded through it.
func (r *Registry) Scope(ls Labels) *Scope {
	return &Scope{
		r:        r,
		labels:   ls,
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Registry returns the underlying registry.
func (s *Scope) Registry() *Registry { return s.r }

// Labels returns the scope's label set.
func (s *Scope) Labels() Labels { return s.labels }

// Counter returns the scope-labeled counter, cached by name.
func (s *Scope) Counter(name string) *Counter {
	c := s.counters[name]
	if c == nil {
		c = s.r.Counter(name, s.labels)
		s.counters[name] = c
	}
	return c
}

// Add increases the scope-labeled counter name by n.
func (s *Scope) Add(name string, n uint64) { s.Counter(name).Add(n) }

// Histogram returns the scope-labeled histogram, cached by name.
func (s *Scope) Histogram(name string) *Histogram {
	h := s.hists[name]
	if h == nil {
		h = s.r.Histogram(name, s.labels)
		s.hists[name] = h
	}
	return h
}

// Observe records one duration in the scope-labeled histogram name.
func (s *Scope) Observe(name string, d time.Duration) { s.Histogram(name).Observe(d) }

// Gauge returns the scope-labeled gauge.
func (s *Scope) Gauge(name string) *Gauge { return s.r.Gauge(name, s.labels) }

// GaugeFunc registers a scope-labeled derived gauge.
func (s *Scope) GaugeFunc(name string, fn func() float64) {
	s.r.GaugeFunc(name, s.labels, fn)
}

// HostLabels is the conventional label set for per-host subsystems.
func HostLabels(host int) Labels { return L("host", fmt.Sprint(host)) }
