package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"sanft/internal/sim"
)

// Config tunes the observability layer. The zero value means "registry
// only, no periodic sampling" — producers still record, and a caller can
// take explicit samples or read totals at any time.
type Config struct {
	// SampleEvery, if positive, is the simulated-time interval between
	// time-series samples once sampling is started.
	SampleEvery time.Duration
	// MaxSamples, if positive, caps the retained time series (oldest kept;
	// sampling stops at the cap). Guards against unbounded memory on very
	// long runs.
	MaxSamples int
}

// Sample is one point of the time series: the full registry state at one
// simulated instant. Map keys are metric idents; encoding/json writes map
// keys in sorted order, which the determinism guarantee relies on.
type Sample struct {
	TNS        int64                        `json:"t_ns"`
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Observer owns a registry and a kernel-driven periodic sampler, and
// renders the collected telemetry as JSONL, Prometheus text, or a summary
// table. One Observer serves one Cluster.
type Observer struct {
	reg     *Registry
	cfg     Config
	samples []Sample

	timer     sim.Timer
	lastEpoch uint64
	sampled   bool // at least one sample taken (epoch baseline valid)
}

// NewObserver returns an observer with a fresh registry.
func NewObserver(cfg Config) *Observer {
	return &Observer{reg: NewRegistry(), cfg: cfg}
}

// Registry returns the observer's registry, the handle producers
// instrument against.
func (o *Observer) Registry() *Registry { return o.reg }

// Config returns the observer's configuration.
func (o *Observer) Config() Config { return o.cfg }

// snapshot captures the current registry state.
func (o *Observer) snapshot(now sim.Time) Sample {
	s := Sample{TNS: int64(now)}
	if len(o.reg.counters) > 0 {
		s.Counters = make(map[string]uint64, len(o.reg.counters))
		for id, c := range o.reg.counters {
			s.Counters[id] = c.v
		}
	}
	if len(o.reg.gauges) > 0 || len(o.reg.gaugeFns) > 0 {
		s.Gauges = make(map[string]float64, len(o.reg.gauges)+len(o.reg.gaugeFns))
		for id, g := range o.reg.gauges {
			s.Gauges[id] = g.v
		}
		for id, fn := range o.reg.gaugeFns {
			s.Gauges[id] = fn()
		}
	}
	if len(o.reg.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(o.reg.hists))
		for id, h := range o.reg.hists {
			s.Histograms[id] = h.Snapshot()
		}
	}
	return s
}

// SampleNow unconditionally appends a sample at the given instant. Use it
// for a final capture after the workload drains.
func (o *Observer) SampleNow(now sim.Time) {
	o.samples = append(o.samples, o.snapshot(now))
	o.lastEpoch = o.reg.epoch
	o.sampled = true
}

// sampleIfActive appends a sample only if any observation was recorded
// since the previous sample. Campaigns run tens of virtual seconds with
// activity concentrated in bursts; suppressing idle samples keeps the
// series proportional to activity, not to wall time.
func (o *Observer) sampleIfActive(now sim.Time) {
	if o.sampled && o.reg.epoch == o.lastEpoch {
		return
	}
	o.SampleNow(now)
}

// StartSampling arms the periodic sampler on kernel k, every `every` of
// simulated time (falling back to cfg.SampleEvery, then 1 ms). Idle
// intervals — no observation recorded — are suppressed. The sampler
// reschedules itself, so it keeps the event heap non-empty: drive the
// kernel with RunFor/RunUntil, not Run, while sampling is active.
func (o *Observer) StartSampling(k *sim.Kernel, every time.Duration) {
	if every <= 0 {
		every = o.cfg.SampleEvery
	}
	if every <= 0 {
		every = time.Millisecond
	}
	o.StopSampling()
	var tick func()
	tick = func() {
		if o.cfg.MaxSamples > 0 && len(o.samples) >= o.cfg.MaxSamples {
			o.timer = sim.Timer{}
			return
		}
		o.sampleIfActive(k.Now())
		o.timer = k.After(every, tick)
	}
	o.timer = k.After(every, tick)
}

// StopSampling cancels the periodic sampler, if armed.
func (o *Observer) StopSampling() {
	o.timer.Cancel()
	o.timer = sim.Timer{}
}

// Samples returns the collected time series.
func (o *Observer) Samples() []Sample { return o.samples }

// WriteJSONL writes the time series as one JSON object per line. Output
// is byte-deterministic for a given registry state: map keys sort, and
// all values are integers or exactly-reproducible floats.
func (o *Observer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range o.samples {
		if err := enc.Encode(&o.samples[i]); err != nil {
			return err
		}
	}
	return nil
}

// promName mangles a metric ident into a Prometheus-legal name: dots and
// dashes become underscores; the label block passes through.
func promName(id string) string {
	name, labels := id, ""
	if i := strings.IndexByte(id, '{'); i >= 0 {
		name, labels = id[:i], id[i:]
	}
	name = strings.NewReplacer(".", "_", "-", "_").Replace(name)
	if labels != "" {
		// k=v,k=v → k="v",k="v"
		parts := strings.Split(strings.Trim(labels, "{}"), ",")
		for j, p := range parts {
			if eq := strings.IndexByte(p, '='); eq >= 0 {
				parts[j] = p[:eq] + `="` + p[eq+1:] + `"`
			}
		}
		labels = "{" + strings.Join(parts, ",") + "}"
	}
	return name + labels
}

// sortedKeys returns the sorted keys of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// WritePrometheus writes the current registry state (not the time series)
// in Prometheus text exposition style. Deterministic: sorted by ident.
func (o *Observer) WritePrometheus(w io.Writer) error {
	for _, id := range sortedKeys(o.reg.counters) {
		if _, err := fmt.Fprintf(w, "%s %d\n", promName(id), o.reg.counters[id].v); err != nil {
			return err
		}
	}
	gauges := make(map[string]float64, len(o.reg.gauges)+len(o.reg.gaugeFns))
	for id, g := range o.reg.gauges {
		gauges[id] = g.v
	}
	for id, fn := range o.reg.gaugeFns {
		gauges[id] = fn()
	}
	for _, id := range sortedKeys(gauges) {
		if _, err := fmt.Fprintf(w, "%s %g\n", promName(id), gauges[id]); err != nil {
			return err
		}
	}
	for _, id := range sortedKeys(o.reg.hists) {
		h := o.reg.hists[id]
		base, labels := promName(id), ""
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base, labels = base[:i], base[i:]
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n%s_sum_ns%s %d\n%s_p50_ns%s %d\n%s_p99_ns%s %d\n",
			base, labels, h.count,
			base, labels, h.sum,
			base, labels, int64(h.Quantile(0.50)),
			base, labels, int64(h.Quantile(0.99))); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders the current registry state as a human-readable table:
// counters, then gauges, then histogram digests, each sorted by ident.
func (o *Observer) Summary() string {
	var b strings.Builder
	if len(o.reg.counters) > 0 {
		b.WriteString("counters:\n")
		for _, id := range sortedKeys(o.reg.counters) {
			fmt.Fprintf(&b, "  %-56s %d\n", id, o.reg.counters[id].v)
		}
	}
	gauges := make(map[string]float64, len(o.reg.gauges)+len(o.reg.gaugeFns))
	for id, g := range o.reg.gauges {
		gauges[id] = g.v
	}
	for id, fn := range o.reg.gaugeFns {
		gauges[id] = fn()
	}
	if len(gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, id := range sortedKeys(gauges) {
			fmt.Fprintf(&b, "  %-56s %g\n", id, gauges[id])
		}
	}
	if len(o.reg.hists) > 0 {
		b.WriteString("histograms:\n")
		for _, id := range sortedKeys(o.reg.hists) {
			h := o.reg.hists[id]
			fmt.Fprintf(&b, "  %-56s n=%d mean=%v p50=%v p99=%v max=%v\n",
				id, h.count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Max())
		}
	}
	if b.Len() == 0 {
		return "no metrics recorded\n"
	}
	return b.String()
}
