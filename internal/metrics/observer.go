package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"sanft/internal/sim"
)

// Config tunes the observability layer. The zero value means "registry
// only, no periodic sampling" — producers still record, and a caller can
// take explicit samples or read totals at any time.
type Config struct {
	// SampleEvery, if positive, is the simulated-time interval between
	// time-series samples once sampling is started.
	SampleEvery time.Duration
	// MaxSamples, if positive, caps the retained time series (oldest kept;
	// sampling stops at the cap). Guards against unbounded memory on very
	// long runs.
	MaxSamples int
}

// Sample is one point of the time series: the full registry state at one
// simulated instant. Map keys are metric idents; encoding/json writes map
// keys in sorted order, which the determinism guarantee relies on.
type Sample struct {
	TNS        int64                        `json:"t_ns"`
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Observer owns a registry and a kernel-driven periodic sampler, and
// renders the collected telemetry as JSONL, Prometheus text, or a summary
// table. One Observer serves one Cluster.
type Observer struct {
	reg     *Registry
	cfg     Config
	samples []Sample

	timer     sim.Timer
	lastEpoch uint64
	sampled   bool // at least one sample taken (epoch baseline valid)

	// onSample, when set, fires after every sample (periodic or explicit)
	// on the simulation thread — the safe point where live telemetry
	// renders and publishes a registry snapshot. Purely an observer: it
	// must not mutate simulation state.
	onSample func(now sim.Time)
}

// NewObserver returns an observer with a fresh registry.
func NewObserver(cfg Config) *Observer {
	return &Observer{reg: NewRegistry(), cfg: cfg}
}

// Registry returns the observer's registry, the handle producers
// instrument against.
func (o *Observer) Registry() *Registry { return o.reg }

// Config returns the observer's configuration.
func (o *Observer) Config() Config { return o.cfg }

// snapshot captures the current registry state.
func (o *Observer) snapshot(now sim.Time) Sample {
	s := Sample{TNS: int64(now)}
	if len(o.reg.counters) > 0 {
		s.Counters = make(map[string]uint64, len(o.reg.counters))
		for id, c := range o.reg.counters {
			s.Counters[id] = c.v
		}
	}
	if len(o.reg.gauges) > 0 || len(o.reg.gaugeFns) > 0 {
		s.Gauges = make(map[string]float64, len(o.reg.gauges)+len(o.reg.gaugeFns))
		for id, g := range o.reg.gauges {
			s.Gauges[id] = g.v
		}
		for id, fn := range o.reg.gaugeFns {
			s.Gauges[id] = fn()
		}
	}
	if len(o.reg.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(o.reg.hists))
		for id, h := range o.reg.hists {
			s.Histograms[id] = h.Snapshot()
		}
	}
	return s
}

// SampleNow unconditionally appends a sample at the given instant. Use it
// for a final capture after the workload drains.
func (o *Observer) SampleNow(now sim.Time) {
	o.samples = append(o.samples, o.snapshot(now))
	o.lastEpoch = o.reg.epoch
	o.sampled = true
	if o.onSample != nil {
		o.onSample(now)
	}
}

// OnSample installs fn to run after every sample taken on this observer.
// The hook runs on the simulation thread and must treat the registry as
// read-only.
func (o *Observer) OnSample(fn func(now sim.Time)) { o.onSample = fn }

// sampleIfActive appends a sample only if any observation was recorded
// since the previous sample. Campaigns run tens of virtual seconds with
// activity concentrated in bursts; suppressing idle samples keeps the
// series proportional to activity, not to wall time.
func (o *Observer) sampleIfActive(now sim.Time) {
	if o.sampled && o.reg.epoch == o.lastEpoch {
		return
	}
	o.SampleNow(now)
}

// StartSampling arms the periodic sampler on kernel k, every `every` of
// simulated time (falling back to cfg.SampleEvery, then 1 ms). Idle
// intervals — no observation recorded — are suppressed. The sampler
// reschedules itself, so it keeps the event heap non-empty: drive the
// kernel with RunFor/RunUntil, not Run, while sampling is active.
func (o *Observer) StartSampling(k *sim.Kernel, every time.Duration) {
	if every <= 0 {
		every = o.cfg.SampleEvery
	}
	if every <= 0 {
		every = time.Millisecond
	}
	o.StopSampling()
	var tick func()
	tick = func() {
		if o.cfg.MaxSamples > 0 && len(o.samples) >= o.cfg.MaxSamples {
			o.timer = sim.Timer{}
			return
		}
		o.sampleIfActive(k.Now())
		o.timer = k.After(every, tick)
	}
	o.timer = k.After(every, tick)
}

// StopSampling cancels the periodic sampler, if armed.
func (o *Observer) StopSampling() {
	o.timer.Cancel()
	o.timer = sim.Timer{}
}

// Samples returns the collected time series.
func (o *Observer) Samples() []Sample { return o.samples }

// WriteJSONL writes the time series as one JSON object per line. Output
// is byte-deterministic for a given registry state: map keys sort, and
// all values are integers or exactly-reproducible floats.
func (o *Observer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range o.samples {
		if err := enc.Encode(&o.samples[i]); err != nil {
			return err
		}
	}
	return nil
}

// promName mangles a metric ident into a Prometheus-legal name: dots and
// dashes become underscores; the label block passes through.
func promName(id string) string {
	name, labels := id, ""
	if i := strings.IndexByte(id, '{'); i >= 0 {
		name, labels = id[:i], id[i:]
	}
	name = strings.NewReplacer(".", "_", "-", "_").Replace(name)
	if labels != "" {
		// k=v,k=v → k="v",k="v"
		parts := strings.Split(strings.Trim(labels, "{}"), ",")
		for j, p := range parts {
			if eq := strings.IndexByte(p, '='); eq >= 0 {
				parts[j] = p[:eq] + `="` + p[eq+1:] + `"`
			}
		}
		labels = "{" + strings.Join(parts, ",") + "}"
	}
	return name + labels
}

// sortedKeys returns the sorted keys of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// splitProm splits an already-mangled Prometheus series name into its
// base name and label block ("" when unlabelled).
func splitProm(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// promFamily is one metric family: every ident sharing a mangled base
// name, which Prometheus requires to be announced once under a single
// # HELP/# TYPE header pair.
type promFamily struct {
	base string
	ids  []string // original registry idents, sorted by mangled series name
}

// promFamilies groups idents into families sorted by base name. Grouping
// goes through a map keyed on the base — NOT consecutive runs of the
// sorted ident list: '_' sorts before '{' in ASCII, so the series of one
// base can interleave with a longer base's series in sorted order.
func promFamilies(ids []string) []promFamily {
	m := map[string][]string{}
	for _, id := range ids {
		base, _ := splitProm(promName(id))
		m[base] = append(m[base], id)
	}
	fams := make([]promFamily, 0, len(m))
	for base, ids := range m {
		sort.Slice(ids, func(i, j int) bool { return promName(ids[i]) < promName(ids[j]) })
		fams = append(fams, promFamily{base: base, ids: ids})
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].base < fams[j].base })
	return fams
}

// WritePrometheus writes the current registry state (not the time series)
// in the Prometheus text exposition format (version 0.0.4): families
// announced with # HELP/# TYPE headers, histograms rendered as cumulative
// _bucket/_sum/_count series over the HDR buckets, with le= upper bounds
// in nanoseconds (matching the _ns-suffixed metric names). Deterministic:
// families sort by name, series within a family by full series name.
func (o *Observer) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	header := func(base, kind string) {
		fmt.Fprintf(&b, "# HELP %s sanft simulator metric %s\n# TYPE %s %s\n", base, base, base, kind)
	}

	for _, f := range promFamilies(sortedKeys(o.reg.counters)) {
		header(f.base, "counter")
		for _, id := range f.ids {
			fmt.Fprintf(&b, "%s %d\n", promName(id), o.reg.counters[id].v)
		}
	}

	gauges := make(map[string]float64, len(o.reg.gauges)+len(o.reg.gaugeFns))
	for id, g := range o.reg.gauges {
		gauges[id] = g.v
	}
	for id, fn := range o.reg.gaugeFns {
		gauges[id] = fn()
	}
	for _, f := range promFamilies(sortedKeys(gauges)) {
		header(f.base, "gauge")
		for _, id := range f.ids {
			fmt.Fprintf(&b, "%s %g\n", promName(id), gauges[id])
		}
	}

	for _, f := range promFamilies(sortedKeys(o.reg.hists)) {
		header(f.base, "histogram")
		for _, id := range f.ids {
			h := o.reg.hists[id]
			_, labels := splitProm(promName(id))
			inner := strings.Trim(labels, "{}")
			le := func(v string) string {
				if inner == "" {
					return `{le="` + v + `"}`
				}
				return "{" + inner + `,le="` + v + `"}`
			}
			var cum uint64
			for idx, c := range h.buckets {
				if c == 0 {
					continue
				}
				cum += c
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.base, le(fmt.Sprint(bucketUpper(idx))), cum)
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", f.base, le("+Inf"), h.count)
			fmt.Fprintf(&b, "%s_sum%s %d\n", f.base, labels, h.sum)
			fmt.Fprintf(&b, "%s_count%s %d\n", f.base, labels, h.count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Summary renders the current registry state as a human-readable table:
// counters, then gauges, then histogram digests, each sorted by ident.
func (o *Observer) Summary() string {
	var b strings.Builder
	if len(o.reg.counters) > 0 {
		b.WriteString("counters:\n")
		for _, id := range sortedKeys(o.reg.counters) {
			fmt.Fprintf(&b, "  %-56s %d\n", id, o.reg.counters[id].v)
		}
	}
	gauges := make(map[string]float64, len(o.reg.gauges)+len(o.reg.gaugeFns))
	for id, g := range o.reg.gauges {
		gauges[id] = g.v
	}
	for id, fn := range o.reg.gaugeFns {
		gauges[id] = fn()
	}
	if len(gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, id := range sortedKeys(gauges) {
			fmt.Fprintf(&b, "  %-56s %g\n", id, gauges[id])
		}
	}
	if len(o.reg.hists) > 0 {
		b.WriteString("histograms:\n")
		for _, id := range sortedKeys(o.reg.hists) {
			h := o.reg.hists[id]
			fmt.Fprintf(&b, "  %-56s n=%d mean=%v p50=%v p99=%v p999=%v p9999=%v max=%v\n",
				id, h.count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99),
				h.Quantile(0.999), h.Quantile(0.9999), h.Max())
		}
	}
	if b.Len() == 0 {
		return "no metrics recorded\n"
	}
	return b.String()
}
