package metrics

import (
	"strings"
	"testing"
	"time"
)

func shardRegistry(host int, extra time.Duration) *Registry {
	r := NewRegistry()
	r.Counter("nic.pkts-sent", HostLabels(host)).Add(uint64(10 + host))
	r.Counter("fabric.pkts_injected", nil).Add(3)
	r.Gauge("nic.sram.free_buffers", HostLabels(host)).Set(float64(16 - host))
	r.GaugeFunc("nic.cpu.busy_ns", HostLabels(host), func() float64 { return float64(100 * (host + 1)) })
	h := r.Histogram("retrans.ack_latency", nil)
	h.Observe(time.Millisecond + extra)
	h.Observe(3*time.Millisecond + extra)
	return r
}

// TestMergeOrderIndependent: merging shard registries in any order must
// produce identical exports — the property the parallel engine's
// deterministic dump rests on.
func TestMergeOrderIndependent(t *testing.T) {
	build := func(order []int) string {
		shards := map[int]*Registry{
			0: shardRegistry(0, 0),
			1: shardRegistry(1, time.Microsecond),
			2: shardRegistry(2, 5*time.Microsecond),
		}
		merged := NewRegistry()
		for _, i := range order {
			merged.MergeFrom(shards[i])
		}
		obs := &Observer{reg: merged}
		return obs.Summary()
	}
	a := build([]int{0, 1, 2})
	b := build([]int{2, 0, 1})
	c := build([]int{1, 2, 0})
	if a != b || b != c {
		t.Fatalf("merge order changed the export:\n%s\nvs\n%s\nvs\n%s", a, b, c)
	}
	if !strings.Contains(a, "fabric.pkts_injected") {
		t.Fatalf("merged summary missing expected metric:\n%s", a)
	}
}

func TestMergeSemantics(t *testing.T) {
	dst := NewRegistry()
	dst.MergeFrom(shardRegistry(0, 0))
	dst.MergeFrom(shardRegistry(1, 0))

	// Shared-ident counters add.
	if got := dst.Counter("fabric.pkts_injected", nil).Value(); got != 6 {
		t.Fatalf("shared counter = %d, want 6", got)
	}
	// Host-labeled counters stay distinct.
	if got := dst.Counter("nic.pkts-sent", HostLabels(0)).Value(); got != 10 {
		t.Fatalf("host0 counter = %d, want 10", got)
	}
	if got := dst.Counter("nic.pkts-sent", HostLabels(1)).Value(); got != 11 {
		t.Fatalf("host1 counter = %d, want 11", got)
	}
	// Derived gauges materialize as plain gauges.
	if got := dst.Gauge("nic.cpu.busy_ns", HostLabels(1)).Value(); got != 200 {
		t.Fatalf("materialized gauge = %g, want 200", got)
	}
	// Histograms merge bucket-wise.
	h := dst.Histogram("retrans.ack_latency", nil)
	if h.Count() != 4 {
		t.Fatalf("merged histogram count = %d, want 4", h.Count())
	}
	if h.Min() != time.Millisecond || h.Max() != 3*time.Millisecond {
		t.Fatalf("merged min/max = %v/%v", h.Min(), h.Max())
	}
	if h.Sum() != 8*time.Millisecond {
		t.Fatalf("merged sum = %v, want 8ms", h.Sum())
	}
}

func TestMergeEmptySources(t *testing.T) {
	dst := NewRegistry()
	dst.Counter("x", nil).Add(1)
	dst.MergeFrom(NewRegistry())
	if got := dst.Counter("x", nil).Value(); got != 1 {
		t.Fatalf("merge of empty registry disturbed dst: %d", got)
	}
	// Merging into empty reproduces the source exactly for counters.
	src := shardRegistry(3, 0)
	fresh := NewRegistry()
	fresh.MergeFrom(src)
	if fresh.Counter("nic.pkts-sent", HostLabels(3)).Value() != src.Counter("nic.pkts-sent", HostLabels(3)).Value() {
		t.Fatal("merge into empty lost counter value")
	}
}
