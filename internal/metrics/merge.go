package metrics

// MergeFrom folds every metric of src into r, keyed by full ident
// (name{labels}):
//
//   - counters add;
//   - gauges add (shard-disjoint label sets — the common case, since
//     producers label by host/link — simply union);
//   - derived gauges (GaugeFunc) are evaluated now and added as plain
//     gauges, materializing the source's instantaneous state;
//   - histograms merge bucket-wise, with count/sum added and min/max
//     combined.
//
// Every operation is commutative and per-ident independent, so the merged
// registry's state — and therefore every sorted-ident export built from
// it — is the same whatever order shards are merged in. The parallel
// engine merges its per-shard registries through this after a run.
func (r *Registry) MergeFrom(src *Registry) {
	for id, c := range src.counters {
		if c.v != 0 {
			r.counterByIdent(id).Add(c.v)
		}
	}
	for id, g := range src.gauges {
		r.gaugeByIdent(id).Add(g.v)
	}
	for id, fn := range src.gaugeFns {
		r.gaugeByIdent(id).Add(fn())
	}
	for id, h := range src.hists {
		r.histByIdent(id).mergeFrom(h)
	}
}

func (r *Registry) counterByIdent(id string) *Counter {
	c := r.counters[id]
	if c == nil {
		c = &Counter{r: r}
		r.counters[id] = c
	}
	return c
}

func (r *Registry) gaugeByIdent(id string) *Gauge {
	g := r.gauges[id]
	if g == nil {
		g = &Gauge{r: r}
		r.gauges[id] = g
	}
	return g
}

func (r *Registry) histByIdent(id string) *Histogram {
	h := r.hists[id]
	if h == nil {
		h = &Histogram{r: r}
		r.hists[id] = h
	}
	return h
}

// mergeFrom adds src's distribution into h bucket-wise.
func (h *Histogram) mergeFrom(src *Histogram) {
	if src.count == 0 {
		return
	}
	if len(src.buckets) > len(h.buckets) {
		grown := make([]uint64, len(src.buckets))
		copy(grown, h.buckets)
		h.buckets = grown
	}
	for i, c := range src.buckets {
		h.buckets[i] += c
	}
	if h.count == 0 || src.min < h.min {
		h.min = src.min
	}
	if src.max > h.max {
		h.max = src.max
	}
	h.count += src.count
	h.sum += src.sum
	h.r.epoch++
}
