package metrics

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"sanft/internal/sim"
)

func TestBucketMapping(t *testing.T) {
	// Every value maps into a bucket whose decoded upper bound is ≥ the
	// value, and bucket indexes are monotone in the value.
	prev := -1
	for _, v := range []int64{0, 1, 2, 15, 31, 32, 33, 47, 63, 64, 65, 127, 128,
		1000, 1 << 20, 1<<40 + 12345, 1 << 62} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucket index not monotone at v=%d: %d < %d", v, idx, prev)
		}
		prev = idx
		if u := bucketUpper(idx); u < v {
			t.Errorf("bucketUpper(%d)=%d < v=%d", idx, u, v)
		}
	}
	// Exhaustive check over the exact range: below 2^subBits buckets are
	// unit-wide, so decode must be exact.
	for v := int64(0); v < 1<<histSubBits; v++ {
		if got := bucketUpper(bucketIndex(v)); got != v {
			t.Fatalf("exact range: decode(%d) = %d", v, got)
		}
	}
}

func TestBucketRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		v := rng.Int63n(1 << 50)
		u := bucketUpper(bucketIndex(v))
		if u < v {
			t.Fatalf("upper bound %d below value %d", u, v)
		}
		if v >= 1<<histSubBits && float64(u-v) > 0.07*float64(v) {
			t.Fatalf("relative error too large: v=%d upper=%d", v, u)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", nil)
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Min() != time.Microsecond || h.Max() != 1000*time.Microsecond {
		t.Fatalf("min/max %v/%v", h.Min(), h.Max())
	}
	p50 := h.Quantile(0.5)
	if p50 < 450*time.Microsecond || p50 > 550*time.Microsecond {
		t.Errorf("p50 %v outside 450–550µs", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 950*time.Microsecond || p99 > 1050*time.Microsecond {
		t.Errorf("p99 %v outside 950–1050µs", p99)
	}
	if got := h.Mean(); got < 480*time.Microsecond || got > 520*time.Microsecond {
		t.Errorf("mean %v", got)
	}
}

func TestLabelsCanonical(t *testing.T) {
	a := ident("m", L("b", "2", "a", "1"))
	b := ident("m", L("a", "1", "b", "2"))
	if a != b || a != "m{a=1,b=2}" {
		t.Fatalf("canonicalization: %q vs %q", a, b)
	}
	if ident("m", nil) != "m" {
		t.Fatal("bare ident")
	}
}

func TestCounterTotalAcrossLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("remap.attempts", L("host", "0")).Add(3)
	r.Counter("remap.attempts", L("host", "1")).Add(4)
	r.Counter("remap.attempts.other", nil).Add(100) // must not match
	if got := r.CounterTotal("remap.attempts"); got != 7 {
		t.Fatalf("CounterTotal = %d, want 7", got)
	}
}

func TestScopeCachesHandles(t *testing.T) {
	r := NewRegistry()
	s := r.Scope(L("host", "3"))
	c1 := s.Counter("nic.pkts-sent")
	c1.Add(5)
	if c2 := s.Counter("nic.pkts-sent"); c2 != c1 {
		t.Fatal("scope returned a different handle for the same name")
	}
	if got := r.Counter("nic.pkts-sent", L("host", "3")).Value(); got != 5 {
		t.Fatalf("registry sees %d", got)
	}
}

func TestEpochSuppression(t *testing.T) {
	k := sim.New(1)
	o := NewObserver(Config{})
	c := o.Registry().Counter("x", nil)
	o.Registry().GaugeFunc("derived", nil, func() float64 { return 42 })

	// Activity in the first two intervals only.
	k.After(500*time.Microsecond, func() { c.Inc() })
	k.After(1500*time.Microsecond, func() { c.Inc() })
	o.StartSampling(k, time.Millisecond)
	k.RunFor(10 * time.Millisecond)

	// Two active intervals → two samples; the remaining eight idle ticks
	// are suppressed (gauge funcs do not count as activity).
	if n := len(o.Samples()); n != 2 {
		t.Fatalf("got %d samples, want 2: %+v", n, o.Samples())
	}
	if o.Samples()[1].Gauges["derived"] != 42 {
		t.Fatal("gauge func not evaluated in sample")
	}
}

func TestMaxSamplesCap(t *testing.T) {
	k := sim.New(1)
	o := NewObserver(Config{MaxSamples: 3})
	c := o.Registry().Counter("x", nil)
	o.StartSampling(k, time.Millisecond)
	tick := func() {}
	tick = func() { c.Inc(); k.After(time.Millisecond, tick) }
	k.After(0, tick)
	k.RunFor(20 * time.Millisecond)
	if n := len(o.Samples()); n != 3 {
		t.Fatalf("cap ignored: %d samples", n)
	}
}

func TestJSONLDeterminism(t *testing.T) {
	run := func() string {
		o := NewObserver(Config{})
		r := o.Registry()
		// Insert in two different orders via shuffled names.
		names := []string{"b.two", "a.one", "c.three", "nic.pkts"}
		for _, n := range names {
			r.Counter(n, L("host", "1")).Add(7)
		}
		r.Gauge("g", nil).Set(1.5)
		h := r.Histogram("lat", L("host", "1"))
		for i := 0; i < 100; i++ {
			h.Observe(time.Duration(i) * time.Microsecond)
		}
		o.SampleNow(12345)
		var buf bytes.Buffer
		if err := o.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("JSONL not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestPrometheusExportSortedAndMangled(t *testing.T) {
	o := NewObserver(Config{})
	r := o.Registry()
	r.Counter("nic.pkts-sent", L("host", "0")).Add(2)
	r.Counter("fabric.watchdog_resets", nil).Add(1)
	r.Histogram("remap.latency_ns", L("host", "0")).Observe(time.Millisecond)
	var buf bytes.Buffer
	if err := o.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`nic_pkts_sent{host="0"} 2`,
		"fabric_watchdog_resets 1",
		`remap_latency_ns_count{host="0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Lines must be sorted per section.
	var counterLines []string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "fabric_") || strings.HasPrefix(l, "nic_") {
			counterLines = append(counterLines, l)
		}
	}
	if !sort.StringsAreSorted(counterLines) {
		t.Errorf("counter lines not sorted: %v", counterLines)
	}
}

func TestSnapshotSparseBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", nil)
	h.Observe(3)
	h.Observe(3)
	h.Observe(1 << 30)
	s := h.Snapshot()
	if len(s.Bkts) != 2 {
		t.Fatalf("want 2 sparse buckets, got %v", s.Bkts)
	}
	if s.Bkts[0][0] != 3 || s.Bkts[0][1] != 2 {
		t.Fatalf("first bucket %v", s.Bkts[0])
	}
	if s.Count != 3 || s.MaxNS != 1<<30 {
		t.Fatalf("snapshot %+v", s)
	}
}

// TestPrometheusFamilies pins the exposition-format contract: exactly one
// # HELP/# TYPE pair per metric family, with every series of the family
// directly under its header — including the ASCII trap where '_' sorts
// before '{', so a family's labelled series ("nic_pkts{...}") interleave
// with a longer base ("nic_pkts_extra") in plain sorted order.
func TestPrometheusFamilies(t *testing.T) {
	o := NewObserver(Config{})
	r := o.Registry()
	r.Counter("nic.pkts", L("host", "0")).Add(1)
	r.Counter("nic.pkts", L("host", "1")).Add(2)
	r.Counter("nic.pkts_extra", nil).Add(3)
	var buf bytes.Buffer
	if err := o.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, base := range []string{"nic_pkts", "nic_pkts_extra"} {
		for _, h := range []string{"# HELP " + base + " ", "# TYPE " + base + " counter\n"} {
			if strings.Count(out, h) != 1 {
				t.Errorf("want exactly one %q:\n%s", h, out)
			}
		}
	}
	// Series must sit in their family's block: after "# TYPE nic_pkts
	// counter" and before the next comment line come exactly the two
	// labelled nic_pkts series.
	lines := strings.Split(out, "\n")
	for i, l := range lines {
		if l != "# TYPE nic_pkts counter" {
			continue
		}
		var series []string
		for _, s := range lines[i+1:] {
			if strings.HasPrefix(s, "#") || s == "" {
				break
			}
			series = append(series, s)
		}
		want := []string{`nic_pkts{host="0"} 1`, `nic_pkts{host="1"} 2`}
		if len(series) != 2 || series[0] != want[0] || series[1] != want[1] {
			t.Errorf("nic_pkts family block = %v, want %v", series, want)
		}
	}
}

// TestPrometheusHistogramBuckets pins the histogram rendering: cumulative
// _bucket series over the HDR buckets with le= upper bounds in
// nanoseconds, a +Inf bucket equal to _count, and an exact _sum — and no
// leftovers of the old derived-gauge rendering (_p50_ns and friends).
func TestPrometheusHistogramBuckets(t *testing.T) {
	o := NewObserver(Config{})
	h := o.Registry().Histogram("lat_ns", L("host", "0"))
	h.Observe(3) // twice in bucket le=3
	h.Observe(3)
	h.Observe(1 << 30)
	var buf bytes.Buffer
	if err := o.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	hi := bucketUpper(bucketIndex(1 << 30))
	sum := int64(3 + 3 + 1<<30)
	for _, want := range []string{
		"# TYPE lat_ns histogram\n",
		"lat_ns_bucket{host=\"0\",le=\"3\"} 2\n",
		fmt.Sprintf("lat_ns_bucket{host=\"0\",le=\"%d\"} 3\n", hi),
		"lat_ns_bucket{host=\"0\",le=\"+Inf\"} 3\n",
		fmt.Sprintf("lat_ns_sum{host=\"0\"} %d\n", sum),
		"lat_ns_count{host=\"0\"} 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus histogram missing %q:\n%s", want, out)
		}
	}
	for _, gone := range []string{"_p50_ns", "_p99_ns", "_sum_ns"} {
		if strings.Contains(out, gone) {
			t.Errorf("old derived-gauge rendering %q still present:\n%s", gone, out)
		}
	}
}

// TestObserverOnSample: the sample hook fires after each sample with the
// sampled timestamp — the publish point live telemetry hangs off.
func TestObserverOnSample(t *testing.T) {
	o := NewObserver(Config{})
	var got []sim.Time
	o.OnSample(func(now sim.Time) { got = append(got, now) })
	o.SampleNow(100)
	o.SampleNow(200)
	if len(got) != 2 || got[0] != 100 || got[1] != 200 {
		t.Fatalf("OnSample calls = %v, want [100 200]", got)
	}
}

// TestTailQuantilesPinned pins the p999/p9999 surfacing end to end: the
// snapshot JSON (and hence JSONL exports) and the Summary digest line.
// The distribution is chosen so every value lands in a unit-wide bucket
// (< 2^histSubBits) and the quantiles are exact, making the expected
// bytes hand-computable.
func TestTailQuantilesPinned(t *testing.T) {
	o := NewObserver(Config{})
	h := o.Registry().Histogram("lat", nil)
	for i := 0; i < 989; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	h.Observe(20)

	wantSummary := "histograms:\n" +
		"  lat                                                      " +
		"n=1000 mean=1ns p50=1ns p99=5ns p999=20ns p9999=20ns max=20ns\n"
	if got := o.Summary(); got != wantSummary {
		t.Errorf("Summary() = %q, want %q", got, wantSummary)
	}

	o.SampleNow(7)
	var buf bytes.Buffer
	if err := o.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	wantJSON := `{"t_ns":7,"histograms":{"lat":{"count":1000,"sum_ns":1059,` +
		`"min_ns":1,"max_ns":20,"p50_ns":1,"p99_ns":5,"p999_ns":20,"p9999_ns":20,` +
		`"buckets":[[1,989],[5,10],[20,1]]}}}` + "\n"
	if got := buf.String(); got != wantJSON {
		t.Errorf("JSONL = %q, want %q", got, wantJSON)
	}
}

// TestSnapshotQuantileMerge: snapshots answer arbitrary quantiles after
// the fact, and merging two snapshots equals snapshotting one histogram
// holding both observation sets — the property replica folds rely on.
func TestSnapshotQuantileMerge(t *testing.T) {
	r := NewRegistry()
	a, b, both := r.Histogram("a", nil), r.Histogram("b", nil), r.Histogram("ab", nil)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Intn(1 << 22))
		a.Observe(d)
		both.Observe(d)
	}
	for i := 0; i < 300; i++ {
		d := time.Duration(1<<24 + rng.Intn(1<<26))
		b.Observe(d)
		both.Observe(d)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	want := both.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 0.9999, 1} {
		if got, w := sa.Quantile(q), both.Quantile(q); got != w {
			t.Errorf("merged Quantile(%g) = %v, live histogram %v", q, got, w)
		}
		if got, w := want.Quantile(q), both.Quantile(q); got != w {
			t.Errorf("snapshot Quantile(%g) = %v, live histogram %v", q, got, w)
		}
	}
	if sa.Count != want.Count || sa.SumNS != want.SumNS ||
		sa.MinNS != want.MinNS || sa.MaxNS != want.MaxNS ||
		sa.P999NS != want.P999NS || sa.P9999NS != want.P9999NS {
		t.Errorf("merged snapshot %+v != combined snapshot %+v", sa, want)
	}
}
