package metrics

import (
	"math/bits"
	"time"
)

// Histogram buckets are HDR-style log-linear: values below 2^subBits land
// in unit-wide buckets; above that, each power-of-two range is split into
// 2^(subBits-1) equal sub-buckets, bounding relative error at ~2^-(subBits-1)
// (≈3% here) while covering the full int64 nanosecond range in under a
// thousand buckets.
const (
	histSubBits = 5
	histHalf    = 1 << (histSubBits - 1) // sub-buckets per power-of-two range
	histBuckets = 64 * histHalf          // upper bound on bucket index space
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < 1<<histSubBits {
		return int(v)
	}
	n := bits.Len64(uint64(v)) // highest set bit position + 1, ≥ subBits+1
	shift := n - histSubBits
	return shift*histHalf + int(v>>uint(shift))
}

// bucketUpper returns the largest value mapping to bucket idx, the
// canonical representative used when reconstructing quantiles.
func bucketUpper(idx int) int64 {
	if idx < 1<<histSubBits {
		return int64(idx)
	}
	shift := idx/histHalf - 1
	top := idx - shift*histHalf
	return (int64(top)+1)<<uint(shift) - 1
}

// Histogram records a distribution of durations (nanosecond resolution)
// in log-linear buckets. Quantiles are reconstructed from bucket upper
// bounds, so they are deterministic and within ~3% of the true value.
type Histogram struct {
	r       *Registry
	buckets []uint64 // sparse-ish; grown to the highest index seen
	count   uint64
	sum     int64
	min     int64
	max     int64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	idx := bucketIndex(v)
	if idx >= len(h.buckets) {
		grown := make([]uint64, idx+1)
		copy(grown, h.buckets)
		h.buckets = grown
	}
	h.buckets[idx]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.r.epoch++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum) }

// Min returns the smallest observation (0 if empty).
func (h *Histogram) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the largest observation (0 if empty).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Mean returns the average observation (0 if empty).
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.count))
}

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1) accurate
// to the bucket resolution. Exact min/max are substituted at the extremes
// so Quantile(0) and Quantile(1) are true bounds.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(h.min)
	}
	if q >= 1 {
		return time.Duration(h.max)
	}
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen uint64
	for idx, c := range h.buckets {
		seen += c
		if seen > rank {
			u := bucketUpper(idx)
			if u > h.max {
				u = h.max
			}
			return time.Duration(u)
		}
	}
	return time.Duration(h.max)
}

// HistogramSnapshot is the exportable state of a histogram. Buckets are a
// sparse [index, count] list in ascending index order, so empty ranges
// cost nothing and exports are deterministic. The tail quantiles (p999,
// p9999) ride along with p50/p99: SLO reporting ranks fault windows by
// exactly the latencies the median hides.
type HistogramSnapshot struct {
	Count   uint64     `json:"count"`
	SumNS   int64      `json:"sum_ns"`
	MinNS   int64      `json:"min_ns"`
	MaxNS   int64      `json:"max_ns"`
	P50NS   int64      `json:"p50_ns"`
	P99NS   int64      `json:"p99_ns"`
	P999NS  int64      `json:"p999_ns"`
	P9999NS int64      `json:"p9999_ns"`
	Bkts    [][2]int64 `json:"buckets,omitempty"`
}

// Snapshot captures the histogram for export.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count,
		SumNS:   h.sum,
		MinNS:   int64(h.Min()),
		MaxNS:   h.max,
		P50NS:   int64(h.Quantile(0.50)),
		P99NS:   int64(h.Quantile(0.99)),
		P999NS:  int64(h.Quantile(0.999)),
		P9999NS: int64(h.Quantile(0.9999)),
	}
	for idx, c := range h.buckets {
		if c != 0 {
			s.Bkts = append(s.Bkts, [2]int64{int64(idx), int64(c)})
		}
	}
	return s
}

// Quantile reconstructs the q-quantile from the snapshot's sparse buckets,
// with the same bucket-resolution accuracy and min/max substitution as
// Histogram.Quantile. Snapshots survive the simulation they came from, so
// post-run consumers (SLO tables, replica merges) can derive any quantile
// without the live histogram.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(s.MinNS)
	}
	if q >= 1 {
		return time.Duration(s.MaxNS)
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen uint64
	for _, b := range s.Bkts {
		seen += uint64(b[1])
		if seen > rank {
			u := bucketUpper(int(b[0]))
			if u > s.MaxNS {
				u = s.MaxNS
			}
			return time.Duration(u)
		}
	}
	return time.Duration(s.MaxNS)
}

// Merge folds another snapshot into s: counts and sums add, min/max widen,
// sparse buckets union in ascending index order, and the derived quantiles
// are recomputed. Merging is commutative and associative up to the derived
// fields, so replica results folded in a fixed order are deterministic for
// any worker count.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	if o.Count == 0 {
		return
	}
	if s.Count == 0 || o.MinNS < s.MinNS {
		s.MinNS = o.MinNS
	}
	if o.MaxNS > s.MaxNS {
		s.MaxNS = o.MaxNS
	}
	s.Count += o.Count
	s.SumNS += o.SumNS
	merged := make([][2]int64, 0, len(s.Bkts)+len(o.Bkts))
	i, j := 0, 0
	for i < len(s.Bkts) || j < len(o.Bkts) {
		switch {
		case j >= len(o.Bkts) || (i < len(s.Bkts) && s.Bkts[i][0] < o.Bkts[j][0]):
			merged = append(merged, s.Bkts[i])
			i++
		case i >= len(s.Bkts) || o.Bkts[j][0] < s.Bkts[i][0]:
			merged = append(merged, o.Bkts[j])
			j++
		default:
			merged = append(merged, [2]int64{s.Bkts[i][0], s.Bkts[i][1] + o.Bkts[j][1]})
			i, j = i+1, j+1
		}
	}
	s.Bkts = merged
	s.P50NS = int64(s.Quantile(0.50))
	s.P99NS = int64(s.Quantile(0.99))
	s.P999NS = int64(s.Quantile(0.999))
	s.P9999NS = int64(s.Quantile(0.9999))
}

// BucketUpperBound exposes the decode side of the bucket mapping for
// exporters and tests: the largest nanosecond value in bucket idx.
func BucketUpperBound(idx int) int64 { return bucketUpper(idx) }
