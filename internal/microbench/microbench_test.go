package microbench

import (
	"testing"
	"time"

	"sanft/internal/core"
	"sanft/internal/retrans"
)

func cluster(ft bool, q int, interval time.Duration, errRate float64) *core.Cluster {
	return core.New(core.Config{
		NumHosts:  2,
		FT:        ft,
		Retrans:   retrans.Config{QueueSize: q, Interval: interval},
		ErrorRate: errRate,
		Seed:      1,
	})
}

func TestLatency4ByteNoFT(t *testing.T) {
	res := Latency(cluster(false, 32, time.Millisecond, 0), 4, 20)
	if res.OneWay < 7500*time.Nanosecond || res.OneWay > 8500*time.Nanosecond {
		t.Fatalf("no-FT 4B latency = %v, want ≈8µs (paper)", res.OneWay)
	}
	if res.Breakdown.Total() != res.OneWay {
		t.Fatalf("breakdown %v does not sum to latency %v", res.Breakdown, res.OneWay)
	}
}

func TestLatency4ByteFT(t *testing.T) {
	res := Latency(cluster(true, 32, time.Millisecond, 0), 4, 20)
	if res.OneWay < 9500*time.Nanosecond || res.OneWay > 10500*time.Nanosecond {
		t.Fatalf("FT 4B latency = %v, want ≈10µs (paper)", res.OneWay)
	}
}

func TestLatencyOverheadSmallMessages(t *testing.T) {
	// Paper: FT adds at most 2.1µs for messages up to 64 bytes.
	for _, size := range []int{4, 8, 16, 32, 64} {
		noFT := Latency(cluster(false, 32, time.Millisecond, 0), size, 20)
		ft := Latency(cluster(true, 32, time.Millisecond, 0), size, 20)
		over := ft.OneWay - noFT.OneWay
		if over <= 0 || over > 2100*time.Nanosecond {
			t.Fatalf("size %d: FT latency overhead = %v, want (0, 2.1µs]", size, over)
		}
	}
}

func TestBandwidthCeiling(t *testing.T) {
	// Large messages saturate the PCI-limited ~120 MB/s.
	res := Unidirectional(cluster(false, 32, time.Millisecond, 0), 1<<20, 30)
	if res.MBps < 110 || res.MBps > 130 {
		t.Fatalf("no-FT 1MB unidirectional = %.1f MB/s, want ≈120", res.MBps)
	}
}

func TestBandwidthFTOverheadUnder4Percent(t *testing.T) {
	// Paper: < 4% bandwidth overhead for all sizes ≥ 4 KB.
	for _, size := range []int{4096, 65536, 1 << 20} {
		noFT := Unidirectional(cluster(false, 32, time.Millisecond, 0), size, 50)
		ft := Unidirectional(cluster(true, 32, time.Millisecond, 0), size, 50)
		if ft.MBps <= 0 || noFT.MBps <= 0 {
			t.Fatalf("size %d: zero bandwidth (ft %.1f, noft %.1f)", size, ft.MBps, noFT.MBps)
		}
		lost := (noFT.MBps - ft.MBps) / noFT.MBps
		if lost > 0.04 {
			t.Fatalf("size %d: FT bandwidth overhead %.1f%% (no-FT %.1f, FT %.1f), want <4%%",
				size, lost*100, noFT.MBps, ft.MBps)
		}
	}
}

func TestPingPongBandwidth(t *testing.T) {
	res := PingPong(cluster(true, 32, time.Millisecond, 0), 1<<20, 20)
	if res.MBps < 100 {
		t.Fatalf("FT 1MB ping-pong = %.1f MB/s, want ≥100", res.MBps)
	}
	small := PingPong(cluster(true, 32, time.Millisecond, 0), 4, 20)
	if small.MBps <= 0 || small.MBps > 5 {
		t.Fatalf("4B ping-pong = %.3f MB/s, want small positive", small.MBps)
	}
}

func TestBandwidthRobustToModerateErrors(t *testing.T) {
	// Paper Fig. 6: with T=1ms and q=32, bandwidth at error rate 1e-4
	// stays within ~10% of error-free for ≥4KB messages. As in the
	// paper's methodology, run enough packets for at least ten drops
	// (64KB messages = 16 packets each; 2000 messages = 32k packets ≈ 3
	// drops... use 1e-3-scale traffic: 7000 messages ≈ 11 drops at 1e-4).
	const iters = 7000
	clean := Unidirectional(cluster(true, 32, time.Millisecond, 0), 65536, iters)
	dirty := Unidirectional(cluster(true, 32, time.Millisecond, 1e-4), 65536, iters)
	lost := (clean.MBps - dirty.MBps) / clean.MBps
	if lost > 0.10 {
		t.Fatalf("bandwidth lost %.1f%% at 1e-4 errors (%.1f → %.1f), want ≤10%%",
			lost*100, clean.MBps, dirty.MBps)
	}
}

func TestShortTimerHurtsEvenWithoutErrors(t *testing.T) {
	// Paper Fig. 5: a 10µs timer degrades bandwidth by much more than a
	// 1ms timer even with no errors (spurious go-back-N retransmission).
	good := Unidirectional(cluster(true, 32, time.Millisecond, 0), 65536, 40)
	bad := Unidirectional(cluster(true, 32, 10*time.Microsecond, 0), 65536, 40)
	if bad.MBps >= good.MBps*0.95 {
		t.Fatalf("10µs timer (%.1f MB/s) should clearly underperform 1ms (%.1f MB/s)",
			bad.MBps, good.MBps)
	}
}

func TestLongTimerHurtsUnderErrors(t *testing.T) {
	// Paper Fig. 6: a 1s timer collapses under errors (recovery takes a
	// full second per drop). 1250 messages × 16 packets ≈ 20 drops at
	// 1e-3.
	good := Unidirectional(cluster(true, 32, time.Millisecond, 1e-3), 65536, 1250)
	bad := Unidirectional(cluster(true, 32, time.Second, 1e-3), 65536, 1250)
	if bad.MBps >= good.MBps/2 {
		t.Fatalf("1s timer at 1e-3 errors (%.1f MB/s) should collapse vs 1ms (%.1f MB/s)",
			bad.MBps, good.MBps)
	}
}

func TestTinyQueueLimitsBandwidth(t *testing.T) {
	// Paper Fig. 7: q=2 clearly underperforms q≥8.
	q2 := Unidirectional(cluster(true, 2, time.Millisecond, 0), 65536, 40)
	q8 := Unidirectional(cluster(true, 8, time.Millisecond, 0), 65536, 40)
	if q2.MBps >= q8.MBps*0.95 {
		t.Fatalf("q=2 (%.1f MB/s) should clearly underperform q=8 (%.1f MB/s)", q2.MBps, q8.MBps)
	}
}
