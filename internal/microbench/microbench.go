// Package microbench implements the paper's three micro-benchmarks
// (§5.1.4): a one-way latency test, a ping-pong ("bidirectional")
// bandwidth test, and a unidirectional bandwidth test in which the sender
// never waits for the receiver — measuring how fast data can be put onto
// the network.
package microbench

import (
	"fmt"
	"time"

	"sanft/internal/core"
	"sanft/internal/sim"
	"sanft/internal/stats"
)

// LatencyResult is one row of the latency micro-benchmark.
type LatencyResult struct {
	Size      int
	OneWay    time.Duration
	Breakdown stats.Breakdown
}

// Latency measures average one-way latency for messages of the given size
// between the cluster's first two hosts, over iters ping-pong rounds
// (the first round is discarded as warm-up).
func Latency(c *core.Cluster, size, iters int) LatencyResult {
	a, b := c.EndpointAt(0), c.EndpointAt(1)
	expB := b.Export(fmt.Sprintf("lat-b-%d", size), maxInt(size, 1))
	expA := a.Export(fmt.Sprintf("lat-a-%d", size), maxInt(size, 1))

	var agg stats.BreakdownAvg
	var sum time.Duration
	count := 0
	done := false

	c.K.Spawn("lat-a", func(p *sim.Proc) {
		imp, err := a.Import(b.Node(), fmt.Sprintf("lat-b-%d", size))
		if err != nil {
			panic(err)
		}
		for i := 0; i < iters; i++ {
			imp.Send(p, 0, make([]byte, size), true)
			expA.WaitNotification(p)
		}
		done = true
		c.StopSoon()
	})
	c.K.Spawn("lat-b", func(p *sim.Proc) {
		imp, err := b.Import(a.Node(), fmt.Sprintf("lat-a-%d", size))
		if err != nil {
			panic(err)
		}
		for i := 0; i < iters; i++ {
			n := expB.WaitNotification(p)
			if i > 0 { // discard warm-up round
				agg.Add(n.Breakdown)
				sum += n.Latency
				count++
			}
			imp.Send(p, 0, make([]byte, size), true)
		}
	})
	c.RunFor(time.Duration(iters+10) * 10 * time.Millisecond)
	c.Stop()
	if !done || count == 0 {
		panic(fmt.Sprintf("microbench: latency test did not complete (size %d)", size))
	}
	return LatencyResult{
		Size:      size,
		OneWay:    sum / time.Duration(count),
		Breakdown: agg.Mean(),
	}
}

// BandwidthResult is one row of a bandwidth micro-benchmark.
type BandwidthResult struct {
	Size int
	MBps float64
	// Messages is how many messages were measured.
	Messages int
}

// PingPong measures the paper's "bidirectional bandwidth": two processes
// bounce a message of the given size back and forth; bandwidth counts the
// bytes moved in both directions.
func PingPong(c *core.Cluster, size, iters int) BandwidthResult {
	a, b := c.EndpointAt(0), c.EndpointAt(1)
	name := fmt.Sprintf("pp-%d", size)
	expB := b.Export(name+"-b", size)
	expA := a.Export(name+"-a", size)

	var start, end sim.Time
	count := 0
	c.K.Spawn("pp-a", func(p *sim.Proc) {
		imp, err := a.Import(b.Node(), name+"-b")
		if err != nil {
			panic(err)
		}
		start = p.Now()
		for i := 0; i < iters; i++ {
			imp.Send(p, 0, make([]byte, size), true)
			expA.WaitNotification(p)
			count++
			end = p.Now()
		}
		c.StopSoon()
	})
	c.K.Spawn("pp-b", func(p *sim.Proc) {
		imp, err := b.Import(a.Node(), name+"-a")
		if err != nil {
			panic(err)
		}
		for i := 0; i < iters; i++ {
			expB.WaitNotification(p)
			imp.Send(p, 0, make([]byte, size), true)
		}
	})
	// Generous bound: even at 1 MB/s the largest runs fit.
	c.RunFor(time.Duration(iters)*time.Second/10 + 10*time.Second)
	c.Stop()
	if count == 0 {
		return BandwidthResult{Size: size}
	}
	bytes := uint64(2) * uint64(size) * uint64(count)
	return BandwidthResult{Size: size, MBps: stats.Bandwidth(bytes, end.Sub(start)), Messages: count}
}

// Unidirectional measures one-way streaming bandwidth: the sender issues
// messages back to back without waiting for the receiver (it is throttled
// only by NIC send-buffer availability). Bandwidth is measured at the
// receiver between the first and last completed message.
func Unidirectional(c *core.Cluster, size, iters int) BandwidthResult {
	a, b := c.EndpointAt(0), c.EndpointAt(1)
	name := fmt.Sprintf("uni-%d", size)
	expB := b.Export(name, size)

	var first, last sim.Time
	count := 0
	c.K.Spawn("uni-send", func(p *sim.Proc) {
		imp, err := a.Import(b.Node(), name)
		if err != nil {
			panic(err)
		}
		for i := 0; i < iters; i++ {
			imp.Send(p, 0, make([]byte, size), true)
		}
	})
	c.K.Spawn("uni-recv", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			expB.WaitNotification(p)
			if count == 0 {
				first = p.Now()
			}
			count++
			last = p.Now()
		}
		c.StopSoon()
	})
	c.RunFor(time.Duration(iters)*time.Second/10 + 10*time.Second)
	c.Stop()
	if count < 2 {
		return BandwidthResult{Size: size, Messages: count}
	}
	// The first message's completion marks steady-state start.
	bytes := uint64(size) * uint64(count-1)
	return BandwidthResult{Size: size, MBps: stats.Bandwidth(bytes, last.Sub(first)), Messages: count}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
