package fault

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNoneNeverDrops(t *testing.T) {
	var n None
	for i := 0; i < 1000; i++ {
		if n.ShouldDrop() {
			t.Fatal("None dropped")
		}
	}
}

func TestIntervalDropperRate(t *testing.T) {
	for _, rate := range []float64{1e-1, 1e-2, 1e-3} {
		d := NewRate(rate)
		const n = 200000
		drops := 0
		for i := 0; i < n; i++ {
			if d.ShouldDrop() {
				drops++
			}
		}
		got := float64(drops) / n
		if math.Abs(got-rate)/rate > 0.05 {
			t.Fatalf("rate %g: measured %g (drops=%d)", rate, got, drops)
		}
		if d.Seen() != n || d.Dropped() != uint64(drops) {
			t.Fatal("counters wrong")
		}
	}
}

func TestIntervalDropperStrictPeriodicity(t *testing.T) {
	d := &IntervalDropper{Interval: 10} // no jitter
	var positions []int
	for i := 1; i <= 50; i++ {
		if d.ShouldDrop() {
			positions = append(positions, i)
		}
	}
	want := []int{10, 20, 30, 40, 50}
	if len(positions) != len(want) {
		t.Fatalf("positions %v, want %v", positions, want)
	}
	for i := range want {
		if positions[i] != want[i] {
			t.Fatalf("positions %v, want %v", positions, want)
		}
	}
}

func TestIntervalDropperJitterBounds(t *testing.T) {
	d := &IntervalDropper{Interval: 100, JitterFrac: 0.25}
	prev := 0
	count := 0
	for i := 1; i <= 100000; i++ {
		if d.ShouldDrop() {
			gap := i - prev
			if gap < 75 || gap > 125 {
				t.Fatalf("gap %d outside [75,125]", gap)
			}
			prev = i
			count++
		}
	}
	if count < 900 || count > 1100 {
		t.Fatalf("drops = %d, want ≈1000", count)
	}
}

func TestIntervalDropperDeterministic(t *testing.T) {
	run := func() []int {
		d := NewRate(0.01)
		var out []int
		for i := 0; i < 10000; i++ {
			if d.ShouldDrop() {
				out = append(out, i)
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("non-deterministic drop count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic drop positions")
		}
	}
}

func TestNewRateValidation(t *testing.T) {
	if NewRate(0) != nil {
		t.Fatal("rate 0 should return nil")
	}
	for _, bad := range []float64{-0.1, 0.6, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("rate %g should panic", bad)
				}
			}()
			NewRate(bad)
		}()
	}
}

func TestRandomDropperRate(t *testing.T) {
	d := NewRandom(0.1, 7)
	const n = 100000
	drops := 0
	for i := 0; i < n; i++ {
		if d.ShouldDrop() {
			drops++
		}
	}
	got := float64(drops) / n
	if got < 0.09 || got > 0.11 {
		t.Fatalf("rate = %g, want ≈0.1", got)
	}
	if d.Dropped() != uint64(drops) {
		t.Fatal("counter wrong")
	}
}

func TestBurstDropperRateAndBurstiness(t *testing.T) {
	d := NewBurst(0.1, 5, 3)
	const n = 200000
	drops := 0
	maxRun, run := 0, 0
	for i := 0; i < n; i++ {
		if d.ShouldDrop() {
			drops++
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	got := float64(drops) / n
	if got < 0.08 || got > 0.12 {
		t.Fatalf("rate = %g, want ≈0.1", got)
	}
	if maxRun < 5 {
		t.Fatalf("max run = %d, want ≥ burst length 5", maxRun)
	}
}

func TestBurstDropperValidation(t *testing.T) {
	for _, bad := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("burst length %d should panic", bad)
				}
			}()
			NewBurst(0.1, bad, 1)
		}()
	}
	for _, bad := range []float64{-0.01, 1.01} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("burst rate %g should panic", bad)
				}
			}()
			NewBurst(bad, 3, 1)
		}()
	}
}

func TestBurstDropperExtremes(t *testing.T) {
	// Rate 0 never starts a burst; rate 1 with burst length 1 drops
	// everything.
	never := NewBurst(0, 4, 5)
	always := NewBurst(1, 1, 5)
	for i := 0; i < 1000; i++ {
		if never.ShouldDrop() {
			t.Fatal("rate-0 burst dropper dropped")
		}
		if !always.ShouldDrop() {
			t.Fatal("rate-1 length-1 burst dropper passed a packet")
		}
	}
}

func TestCorruptorRate(t *testing.T) {
	c := NewCorruptor(0.05, 11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if c.Corrupt() {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.04 || got > 0.06 {
		t.Fatalf("rate = %g, want ≈0.05", got)
	}
	if c.Corrupted() != uint64(hits) {
		t.Fatal("counter wrong")
	}
}

func TestCorruptorBounds(t *testing.T) {
	// Rate 0 never corrupts, rate 1 always does; out-of-range rates panic.
	clean := NewCorruptor(0, 3)
	dirty := NewCorruptor(1, 3)
	for i := 0; i < 1000; i++ {
		if clean.Corrupt() {
			t.Fatal("rate-0 corruptor corrupted")
		}
		if !dirty.Corrupt() {
			t.Fatal("rate-1 corruptor passed a packet")
		}
	}
	if clean.Corrupted() != 0 || dirty.Corrupted() != 1000 {
		t.Fatalf("counters: clean %d dirty %d", clean.Corrupted(), dirty.Corrupted())
	}
	for _, bad := range []float64{-0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("corruption rate %g should panic", bad)
				}
			}()
			NewCorruptor(bad, 1)
		}()
	}
}

// schedule records the drop positions of the first n offers.
func schedule(d Dropper, n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		if d.ShouldDrop() {
			out = append(out, i)
		}
	}
	return out
}

func TestSeededDropperIndependence(t *testing.T) {
	// Same rate, same seed: identical schedules. Same rate, different
	// seeds: schedules diverge — this is what keeps a cluster of NICs at
	// one error rate from dropping in lockstep.
	equal := func(a, b []int) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	const n = 20000
	a := schedule(NewRateSeeded(0.01, 42), n)
	b := schedule(NewRateSeeded(0.01, 42), n)
	c := schedule(NewRateSeeded(0.01, 43), n)
	if !equal(a, b) {
		t.Fatal("same seed produced different drop schedules")
	}
	if equal(a, c) {
		t.Fatal("different seeds produced identical drop schedules")
	}
}

func TestNewRateKeepsJitterAgainstPhaseLock(t *testing.T) {
	// Regression guard for the retransmit-lockstep livelock: a strictly
	// periodic dropper whose period divides the go-back-N batch size kills
	// the head of every retransmission burst forever. NewRate must
	// therefore always hand out jittered droppers.
	d := NewRate(0.01)
	if d.JitterFrac == 0 {
		t.Fatal("NewRate returned an unjittered dropper")
	}
	gaps := make(map[int]bool)
	prev := 0
	for _, p := range schedule(d, 50000) {
		gaps[p-prev] = true
		prev = p
	}
	if len(gaps) < 2 {
		t.Fatal("drop gaps are constant: dropper can phase-lock with the retransmit batch")
	}
}

func TestPropertyIntervalDropperLongRunRate(t *testing.T) {
	f := func(intervalSeed uint16) bool {
		interval := uint64(intervalSeed%500) + 2
		d := &IntervalDropper{Interval: interval, JitterFrac: 0.25}
		n := int(interval) * 200
		drops := 0
		for i := 0; i < n; i++ {
			if d.ShouldDrop() {
				drops++
			}
		}
		// Expect ≈200 drops; allow ±15%.
		return drops > 170 && drops < 230
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
