// Package fault implements the error-injection mechanisms of the paper's
// evaluation methodology (§5.1.3) plus extensions.
//
// The paper's primary mechanism: "we model network errors by dropping
// packets on the send side NIC, right before they are injected to the
// network. At predefined packet counts, the dropping mechanism on the NIC
// inserts the next packet in the retransmission queue without actually
// transmitting it." IntervalDropper reproduces exactly that: one drop every
// N packets, deterministic.
//
// Extensions (not used by any paper figure, but useful for robustness
// testing): uniform random drops, burst drops, and a transit corruptor that
// flips the CRC-failure flag on in-flight packets.
package fault

import (
	"fmt"
	"math"
	"math/rand"
)

// Dropper decides, per send-side packet, whether to swallow it before it
// reaches the wire.
type Dropper interface {
	// ShouldDrop is called once per data packet about to be transmitted
	// and reports whether to drop it. Implementations may be stateful;
	// calls are made in transmission order.
	ShouldDrop() bool
}

// None is a Dropper that never drops.
type None struct{}

// ShouldDrop always reports false.
func (None) ShouldDrop() bool { return false }

// IntervalDropper drops one packet every Interval packets (on average) —
// the paper's controlled error-rate mechanism. An error rate of 10⁻³ is an
// IntervalDropper with Interval 1000.
//
// JitterFrac spreads each drop point uniformly within
// ±JitterFrac·Interval of its nominal position, preserving the long-run
// rate. With JitterFrac 0 the dropper is strictly periodic; note that a
// strictly periodic dropper whose period divides the go-back-N batch size
// can phase-lock with the retransmission engine so that the head of the
// queue is dropped on every burst — a livelock that real hardware escapes
// only through timing asynchrony. NewRate therefore defaults to 25%
// jitter, which keeps the experiment's error rate exact while breaking the
// pathological alignment.
type IntervalDropper struct {
	Interval   uint64
	JitterFrac float64
	// Seed, when nonzero, seeds the jitter RNG. Zero falls back to a
	// seed derived from the interval alone — reproducible, but identical
	// for every dropper with the same rate. Wire a real seed (NewRateSeeded)
	// when multiple clusters or NICs must see independent drop schedules.
	Seed int64

	rng     *rand.Rand
	next    uint64
	count   uint64
	dropped uint64
}

// NewRate returns an IntervalDropper approximating the given error rate
// (drops-per-packet) with default jitter. Rate 0 returns nil (no dropper).
// Rates above 0.5 are rejected: the protocol's own traffic could never
// make progress.
func NewRate(rate float64) *IntervalDropper {
	return NewRateSeeded(rate, 0)
}

// NewRateSeeded is NewRate with an explicit jitter seed, so distinct
// clusters (and distinct NICs within one cluster) get independent drop
// schedules for the same error rate.
func NewRateSeeded(rate float64, seed int64) *IntervalDropper {
	if rate == 0 {
		return nil
	}
	if rate < 0 || rate > 0.5 {
		panic(fmt.Sprintf("fault: unreasonable error rate %v", rate))
	}
	return &IntervalDropper{Interval: uint64(math.Round(1 / rate)), JitterFrac: 0.25, Seed: seed}
}

func (d *IntervalDropper) advance() {
	step := int64(d.Interval)
	if d.JitterFrac > 0 {
		if d.rng == nil {
			seed := d.Seed
			if seed == 0 {
				// Seed from the interval so runs are reproducible per
				// configuration without external wiring.
				seed = int64(d.Interval) * 7919
			}
			d.rng = rand.New(rand.NewSource(seed))
		}
		j := int64(d.JitterFrac * float64(d.Interval))
		if j > 0 {
			step += d.rng.Int63n(2*j+1) - j
		}
	}
	if step < 1 {
		step = 1
	}
	d.next = d.count + uint64(step)
}

// ShouldDrop reports true roughly once every Interval calls.
func (d *IntervalDropper) ShouldDrop() bool {
	if d.next == 0 {
		d.advance()
	}
	d.count++
	if d.count >= d.next {
		d.dropped++
		d.advance()
		return true
	}
	return false
}

// Seen returns how many packets have been offered.
func (d *IntervalDropper) Seen() uint64 { return d.count }

// Dropped returns how many packets were dropped.
func (d *IntervalDropper) Dropped() uint64 { return d.dropped }

// RandomDropper drops each packet independently with probability Rate.
type RandomDropper struct {
	Rate    float64
	rng     *rand.Rand
	dropped uint64
}

// NewRandom returns a RandomDropper with its own deterministic RNG.
func NewRandom(rate float64, seed int64) *RandomDropper {
	if rate < 0 || rate > 1 {
		panic(fmt.Sprintf("fault: bad drop rate %v", rate))
	}
	return &RandomDropper{Rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// ShouldDrop samples the drop decision.
func (d *RandomDropper) ShouldDrop() bool {
	if d.rng.Float64() < d.Rate {
		d.dropped++
		return true
	}
	return false
}

// Dropped returns how many packets were dropped.
func (d *RandomDropper) Dropped() uint64 { return d.dropped }

// BurstDropper drops runs of BurstLen consecutive packets, a burst
// beginning (on average) every 1/Rate packets. Models correlated loss such
// as a path reset discarding everything queued (extension beyond the
// paper's uniform model, which it argues is the more stressful test).
type BurstDropper struct {
	Rate     float64
	BurstLen int
	rng      *rand.Rand
	left     int
	dropped  uint64
}

// NewBurst returns a BurstDropper.
func NewBurst(rate float64, burstLen int, seed int64) *BurstDropper {
	if burstLen < 1 {
		panic("fault: burst length must be ≥ 1")
	}
	if rate < 0 || rate > 1 {
		panic(fmt.Sprintf("fault: bad burst rate %v", rate))
	}
	return &BurstDropper{Rate: rate, BurstLen: burstLen, rng: rand.New(rand.NewSource(seed))}
}

// ShouldDrop continues an active burst or starts a new one.
func (d *BurstDropper) ShouldDrop() bool {
	if d.left > 0 {
		d.left--
		d.dropped++
		return true
	}
	if d.rng.Float64() < d.Rate/float64(d.BurstLen) {
		d.left = d.BurstLen - 1
		d.dropped++
		return true
	}
	return false
}

// Dropped returns how many packets were dropped.
func (d *BurstDropper) Dropped() uint64 { return d.dropped }

// Corruptor marks each in-flight packet corrupted with probability Rate;
// the receiving NIC's CRC check then discards it. Install via the fabric
// transit hook. The detection cost equals the loss cost (the paper notes
// dropping subsumes corruption on the receive side).
type Corruptor struct {
	Rate      float64
	rng       *rand.Rand
	corrupted uint64
}

// NewCorruptor returns a Corruptor with a deterministic RNG.
func NewCorruptor(rate float64, seed int64) *Corruptor {
	if rate < 0 || rate > 1 {
		panic(fmt.Sprintf("fault: bad corruption rate %v", rate))
	}
	return &Corruptor{Rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Corrupt samples the corruption decision and counts hits.
func (c *Corruptor) Corrupt() bool {
	if c.rng.Float64() < c.Rate {
		c.corrupted++
		return true
	}
	return false
}

// Corrupted returns how many packets were corrupted.
func (c *Corruptor) Corrupted() uint64 { return c.corrupted }
