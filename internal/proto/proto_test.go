package proto

import (
	"testing"

	"sanft/internal/routing"
)

func TestFrameTypeStrings(t *testing.T) {
	cases := map[FrameType]string{
		FrameData:           "data",
		FrameAck:            "ack",
		FrameHostProbe:      "host-probe",
		FrameHostProbeReply: "host-probe-reply",
		FrameEchoProbe:      "echo-probe",
		FrameRouteUpdate:    "route-update",
		FrameType(99):       "unknown",
	}
	for ft, want := range cases {
		if got := ft.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", ft, got, want)
		}
	}
}

func TestAckLevelStrings(t *testing.T) {
	cases := map[AckLevel]string{
		AckNone:      "none",
		AckDelayed:   "delayed",
		AckImmediate: "immediate",
		AckLevel(9):  "unknown",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", l, got, want)
		}
	}
}

func TestWireSize(t *testing.T) {
	f := &Frame{Type: FrameAck}
	if f.WireSize() != HeaderBytes {
		t.Fatalf("ack size = %d, want header %d", f.WireSize(), HeaderBytes)
	}
	f = &Frame{Type: FrameData, Data: &DataPayload{Data: make([]byte, 100)}}
	if f.WireSize() != HeaderBytes+100 {
		t.Fatalf("data size = %d, want %d", f.WireSize(), HeaderBytes+100)
	}
	f = &Frame{Type: FrameHostProbe, Probe: &ProbePayload{ReturnRoute: routing.Route{1, 2, 3}}}
	if f.WireSize() != HeaderBytes+8+3 {
		t.Fatalf("probe size = %d, want %d", f.WireSize(), HeaderBytes+11)
	}
}
