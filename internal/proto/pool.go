package proto

import (
	"sync"
	"sync/atomic"
)

// poolProf gathers frame-pool traffic for the engine profiler
// (internal/enginestat). Off by default: the pooled clone path pays one
// predictable atomic load per clone, and the counters are process-wide —
// concurrent profiled clusters in one process see combined traffic, so
// consumers report deltas from a construction-time baseline.
var poolProf struct {
	enabled atomic.Bool
	gets    atomic.Uint64 // pooled clones served
	news    atomic.Uint64 // pool refills (fresh allocations)
}

// SetPoolProfiling toggles frame-pool traffic counting.
func SetPoolProfiling(on bool) { poolProf.enabled.Store(on) }

// PoolStats returns the cumulative pooled-clone count and the number of
// those served by a fresh allocation (pool miss).
func PoolStats() (gets, misses uint64) {
	return poolProf.gets.Load(), poolProf.news.Load()
}

// frameBlock is one unit of pooled frame storage: the frame itself plus
// inline payload structs and reusable byte/route buffers, allocated as a
// single block so a shard-boundary clone touches the allocator zero
// times in steady state.
type frameBlock struct {
	f    Frame
	data DataPayload
	live LivenessPayload
	buf  []byte // backing for data.Data, capacity kept across reuse
	rbuf []int  // backing for ControlRoute, likewise
}

var framePool = sync.Pool{New: func() any {
	if poolProf.enabled.Load() {
		poolProf.news.Add(1)
	}
	return new(frameBlock)
}}

// ClonePooled returns a deep copy of the frame equivalent to Clone, but
// drawing storage from a package pool when the frame's receive-side
// lifetime is bounded — data, ack, and liveness frames, which the
// receiving NIC fully consumes and then releases. Probe-family and
// route-update frames hand interior references onward (a probe's
// ReturnRoute becomes the reply's ControlRoute; a route update's route
// is installed into the routing table), so they fall back to a plain
// Clone and Release is a no-op on them.
//
// The caller owns the copy until it calls Release; the original is
// untouched either way.
func (f *Frame) ClonePooled() *Frame {
	switch f.Type {
	case FrameData, FrameAck, FrameLiveness:
	default:
		return f.Clone()
	}
	if poolProf.enabled.Load() {
		poolProf.gets.Add(1)
	}
	b := framePool.Get().(*frameBlock)
	c := &b.f
	*c = *f
	c.blk = b
	if f.Data != nil {
		b.data = *f.Data
		b.buf = append(b.buf[:0], f.Data.Data...)
		b.data.Data = b.buf
		c.Data = &b.data
	}
	if f.Live != nil {
		b.live = *f.Live
		c.Live = &b.live
	}
	if f.Probe != nil {
		// Not reachable for the pooled types today; deep-copy defensively
		// so a future frame shape cannot alias through the pool.
		p := *f.Probe
		p.ReturnRoute = f.Probe.ReturnRoute.Clone()
		c.Probe = &p
	}
	if f.ControlRoute != nil {
		b.rbuf = append(b.rbuf[:0], f.ControlRoute...)
		c.ControlRoute = b.rbuf
	}
	return c
}

// Release returns a ClonePooled frame's storage to the pool. Only the
// exact pooled frame releases its block: ordinary frames (blk nil) and
// value copies of a pooled frame (whose address differs from the block's
// interior frame) are no-ops, so a stray Release can never free storage
// that is still owned. The frame must not be used after Release.
func (f *Frame) Release() {
	b := f.blk
	if b == nil || &b.f != f {
		return
	}
	buf, rbuf := b.buf, b.rbuf
	*b = frameBlock{buf: buf[:0], rbuf: rbuf[:0]}
	framePool.Put(b)
}
