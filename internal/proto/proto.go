// Package proto defines the wire frame formats shared by the NIC firmware,
// the retransmission protocol, and the mapping protocol. A Frame rides as
// the payload of a fabric.Packet; the fabric itself never looks inside.
package proto

import (
	"sanft/internal/routing"
	"sanft/internal/sim"
	"sanft/internal/topology"
)

// FrameType discriminates protocol frames.
type FrameType uint8

const (
	// FrameData carries a VMMC message chunk, sequenced by the
	// retransmission protocol when fault tolerance is on.
	FrameData FrameType = iota
	// FrameAck is an explicit cumulative acknowledgment. Acks are not
	// themselves acknowledged and may be dropped freely.
	FrameAck
	// FrameHostProbe asks whatever host sits at the end of the probe's
	// route to reply with its identity along the enclosed return route.
	FrameHostProbe
	// FrameHostProbeReply is that reply.
	FrameHostProbeReply
	// FrameEchoProbe is a probe whose route loops back to the sender;
	// its arrival tells the mapper the route is traversable (used to
	// detect switches and discover their entry ports).
	FrameEchoProbe
	// FrameRouteUpdate tells the receiving NIC to install the enclosed
	// route (Probe.ReturnRoute) as its route back to the frame's source.
	// Sent by a mapper after a successful remap, so that the remote
	// node's acknowledgments (and data) can reach it over the new path.
	FrameRouteUpdate
	// FrameLiveness is a BFD-style liveness control packet exchanged
	// between NIC firmwares (internal/liveness). Like acks, liveness
	// packets are fire-and-forget: losing one only delays detection.
	FrameLiveness
)

var frameNames = [...]string{"data", "ack", "host-probe", "host-probe-reply", "echo-probe", "route-update", "liveness"}

func (t FrameType) String() string {
	if int(t) < len(frameNames) {
		return frameNames[t]
	}
	return "unknown"
}

// AckLevel is the sender-based feedback carried in each data frame: how
// urgently the sender needs its buffers acknowledged (§4.1.2).
type AckLevel uint8

const (
	// AckNone: no acknowledgment requested (sender has plenty of
	// buffers; it asks only every K-th packet).
	AckNone AckLevel = iota
	// AckDelayed: acknowledge opportunistically — piggyback on reverse
	// data, or send an explicit ack if none flows for a short while.
	AckDelayed
	// AckImmediate: send an explicit acknowledgment right away (sender
	// is nearly out of buffers).
	AckImmediate
)

var ackNames = [...]string{"none", "delayed", "immediate"}

func (l AckLevel) String() string {
	if int(l) < len(ackNames) {
		return ackNames[l]
	}
	return "unknown"
}

// HeaderBytes is the on-wire overhead per frame: route bytes, type, node
// IDs, generation, sequence, piggyback ack fields, and the 32-bit CRC.
const HeaderBytes = 24

// AckFrameBytes is the wire size of an explicit ack frame.
const AckFrameBytes = HeaderBytes

// Stamps records the five stage-transition times used for the Figure 3
// latency breakdown. Zero values mean "stage not yet reached".
type Stamps struct {
	HostStart    sim.Time // application handed the message to VMMC
	HostDone     sim.Time // data left the host (PIO done / descriptor+DMA queued)
	Injected     sim.Time // NIC firmware finished; first byte on the wire
	Delivered    sim.Time // tail arrived at the receiving NIC
	NICRecvDone  sim.Time // receive firmware (CRC, sequence check) finished
	HostRecvDone sim.Time // data deposited in host memory, notification posted
}

// DataPayload is a VMMC message chunk.
type DataPayload struct {
	// BufID names the receiver's exported buffer.
	BufID int
	// MsgID identifies the message this chunk belongs to (per sender).
	MsgID uint64
	// MsgLen is the total message length in bytes.
	MsgLen int
	// BufOffset is where this chunk lands in the exported buffer.
	BufOffset int
	// MsgOffset is this chunk's offset within the message.
	MsgOffset int
	// Data is the chunk contents. The simulator moves real bytes so that
	// end-to-end integrity is checkable in tests.
	Data []byte
	// Notify requests a receive notification once the whole message has
	// arrived.
	Notify bool
}

// ProbePayload carries mapping-protocol fields.
type ProbePayload struct {
	// ProbeID matches replies/echoes to outstanding probes.
	ProbeID uint64
	// ReturnRoute is the route a host-probe reply should travel.
	ReturnRoute routing.Route
	// Mapper is the node that originated the probe.
	Mapper topology.NodeID
	// ReplierID is filled in by the probed host in its reply.
	ReplierID topology.NodeID
}

// LivenessPayload is the BFD-style control packet body (internal/liveness).
// Field names follow RFC 5880 where the mapping is direct; the RTT echo
// fields (YourSeq/HoldNs) are the NTP-style addition that lets each side
// sample path round-trip time from the periodic control traffic alone.
type LivenessPayload struct {
	// State is the sender's session state (liveness.State as uint8).
	State uint8
	// MyDisc and YourDisc are the session discriminators: the sender's
	// own, and the last one it heard from the receiver (0 = unknown).
	MyDisc, YourDisc uint32
	// DesiredMinTxNs and RequiredMinRxNs are the sender's timer terms,
	// in nanoseconds; DetectMult is its detection multiplier. The
	// receiver derives the negotiated transmit interval and detection
	// time from these (RFC 5880 §6.8.2/§6.8.4).
	DesiredMinTxNs  int64
	RequiredMinRxNs int64
	DetectMult      uint8
	// Seq numbers this sender's control packets; YourSeq echoes the
	// newest Seq received from the peer (0 = none yet), and HoldNs is
	// how long the sender sat on that packet before replying. The peer
	// computes RTT = now - sendTime(YourSeq) - HoldNs.
	Seq     uint64
	YourSeq uint64
	HoldNs  int64
}

// LivenessWireBytes is the on-wire size of a liveness control packet body.
const LivenessWireBytes = 40

// Frame is the protocol-level packet contents.
type Frame struct {
	Type FrameType
	// Src and Dst are protocol-level node IDs. (Real source routing does
	// not carry a destination; receivers learn the source from this
	// field exactly as VMMC packets carry a sender tag.)
	Src, Dst topology.NodeID

	// Gen and Seq sequence data frames per (src,dst) NODE pair — not per
	// connection — when fault tolerance is enabled (§4.1.1).
	Gen uint32
	Seq uint64

	// Cumulative acknowledgment, piggybacked on data frames and carried
	// by explicit ack frames: acknowledges every sequence number up to
	// and including AckSeq of generation AckGen.
	HasAck bool
	AckGen uint32
	AckSeq uint64

	// AckReq is the sender-based feedback level for this data frame.
	AckReq AckLevel

	// Retransmitted marks frames sent again by the go-back-N engine
	// (diagnostics only; the wire format would not need it).
	Retransmitted bool

	Data   *DataPayload
	Probe  *ProbePayload
	Live   *LivenessPayload
	Stamps Stamps

	// ControlRoute, when non-nil, overrides the NIC routing table for
	// this frame (mapping probes explore routes that are not — and must
	// not be — in any table). It is NIC-local state, not a wire field.
	ControlRoute routing.Route

	// blk points back to this frame's pooled storage when it came from
	// ClonePooled; nil for ordinary frames. See Release.
	blk *frameBlock
}

// Clone returns a deep copy of the frame: payload bytes, probe fields,
// and control route are all fresh. The parallel engine clones frames at
// shard boundaries — wire transit is a serialization point, so receiver
// and sender must not share mutable frame state once kernels run on
// different workers (the receive path stamps Stamps.Delivered on its
// copy; the sender's retransmission queue keeps the original).
func (f *Frame) Clone() *Frame {
	c := *f
	c.blk = nil // the copy owns no pooled storage
	if f.Data != nil {
		d := *f.Data
		d.Data = append([]byte(nil), f.Data.Data...)
		c.Data = &d
	}
	if f.Probe != nil {
		p := *f.Probe
		p.ReturnRoute = f.Probe.ReturnRoute.Clone()
		c.Probe = &p
	}
	if f.Live != nil {
		l := *f.Live
		c.Live = &l
	}
	if f.ControlRoute != nil {
		c.ControlRoute = f.ControlRoute.Clone()
	}
	return &c
}

// WireSize returns the frame's size on the wire.
func (f *Frame) WireSize() int {
	n := HeaderBytes
	if f.Data != nil {
		n += len(f.Data.Data)
	}
	if f.Probe != nil {
		n += 8 + len(f.Probe.ReturnRoute)
	}
	if f.Live != nil {
		n += LivenessWireBytes
	}
	return n
}
