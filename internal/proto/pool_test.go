package proto

import (
	"bytes"
	"testing"

	"sanft/internal/routing"
)

func poolTestFrame(payload int) *Frame {
	return &Frame{
		Type: FrameData,
		Src:  1, Dst: 2,
		Gen: 3, Seq: 7,
		HasAck: true, AckGen: 3, AckSeq: 6,
		Data: &DataPayload{
			MsgID:  9,
			MsgLen: payload,
			Data:   bytes.Repeat([]byte{0xAB}, payload),
			Notify: true,
		},
	}
}

// TestClonePooledMatchesClone: the pooled clone must be observably
// identical to a plain deep clone, and independent of the original.
func TestClonePooledMatchesClone(t *testing.T) {
	f := poolTestFrame(512)
	f.ControlRoute = routing.Route{1, 2, 3}
	c := f.ClonePooled()
	if c.Type != f.Type || c.Src != f.Src || c.Dst != f.Dst || c.Gen != f.Gen || c.Seq != f.Seq {
		t.Fatal("pooled clone header differs from original")
	}
	if c.Data == f.Data || !bytes.Equal(c.Data.Data, f.Data.Data) {
		t.Fatal("pooled clone must deep-copy payload bytes")
	}
	if &c.ControlRoute[0] == &f.ControlRoute[0] {
		t.Fatal("pooled clone must not alias the control route")
	}
	f.Data.Data[0] = 0xCD
	if c.Data.Data[0] != 0xAB {
		t.Fatal("mutating the original leaked into the pooled clone")
	}
	c.Release()
}

// TestClonePooledProbeFallback: probe-family frames hand interior
// references onward, so ClonePooled must fall back to a plain clone on
// which Release is a no-op.
func TestClonePooledProbeFallback(t *testing.T) {
	f := &Frame{Type: FrameHostProbe, Probe: &ProbePayload{ProbeID: 4, ReturnRoute: routing.Route{1}}}
	c := f.ClonePooled()
	if c.blk != nil {
		t.Fatal("probe frame must not draw pooled storage")
	}
	c.Release() // must be a no-op
	if c.Probe.ProbeID != 4 {
		t.Fatal("probe payload lost")
	}
}

// TestReleaseOwnershipGuard: releasing a value copy of a pooled frame, or
// an ordinary frame, must never return storage to the pool.
func TestReleaseOwnershipGuard(t *testing.T) {
	c := poolTestFrame(16).ClonePooled()
	cp := *c // value copy: blk points at the block, but &blk.f != &cp
	cp.Release()
	if c.Data == nil || c.Data.Data[0] != 0xAB {
		t.Fatal("releasing a value copy freed the owner's storage")
	}
	c.Release()
	plain := poolTestFrame(16)
	plain.Release() // blk nil: no-op
	if plain.Data.Data[0] != 0xAB {
		t.Fatal("releasing an ordinary frame corrupted it")
	}
}

// TestBoundaryCloneAllocs pins the shard-boundary hot path: after pool
// warmup, ClonePooled+Release of a data frame must not allocate. This is
// the allocation the parallel engine pays per cross-shard packet, and it
// was the profile's top site before pooling.
func TestBoundaryCloneAllocs(t *testing.T) {
	f := poolTestFrame(1024)
	f.ClonePooled().Release() // warm the pool (and its byte buffer)
	avg := testing.AllocsPerRun(10000, func() {
		f.ClonePooled().Release()
	})
	if avg != 0 {
		t.Fatalf("boundary clone allocates %.2f allocs/op in steady state, want 0", avg)
	}
}

// BenchmarkBoundaryClonePooled vs BenchmarkBoundaryClonePlain: the
// before/after of the shard-boundary clone (1 KB data frame).
func BenchmarkBoundaryClonePooled(b *testing.B) {
	f := poolTestFrame(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ClonePooled().Release()
	}
}

func BenchmarkBoundaryClonePlain(b *testing.B) {
	f := poolTestFrame(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Clone()
	}
}
