package stats

import (
	"fmt"
	"time"
)

// Recovery aggregates fault-recovery durations — the time traffic to a
// destination was stalled by a failure before deliveries resumed (MTTR).
// The chaos engine feeds it one observation per outage a flow experienced.
type Recovery struct {
	h Histogram
}

// Observe records one recovery duration.
func (r *Recovery) Observe(d time.Duration) { r.h.Add(d) }

// Count returns the number of recoveries observed.
func (r *Recovery) Count() uint64 { return r.h.Count() }

// Mean returns the mean recovery time.
func (r *Recovery) Mean() time.Duration { return r.h.Mean() }

// Max returns the worst recovery time.
func (r *Recovery) Max() time.Duration { return r.h.Max() }

// Quantile returns an upper bound for the q-quantile recovery time.
func (r *Recovery) Quantile(q float64) time.Duration { return r.h.Quantile(q) }

func (r *Recovery) String() string {
	if r.Count() == 0 {
		return "no recoveries observed"
	}
	return fmt.Sprintf("n=%d mean=%v p99≤%v max=%v",
		r.Count(), r.Mean(), r.Quantile(0.99), r.Max())
}
