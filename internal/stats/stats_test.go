package stats

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestBreakdownTotalAndString(t *testing.T) {
	b := Breakdown{
		HostSend: 1 * time.Microsecond,
		NICSend:  2 * time.Microsecond,
		Wire:     3 * time.Microsecond,
		NICRecv:  4 * time.Microsecond,
		HostRecv: 5 * time.Microsecond,
	}
	if b.Total() != 15*time.Microsecond {
		t.Fatalf("total = %v", b.Total())
	}
	s := b.String()
	for _, want := range []string{"host-send", "wire", "total=15µs"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestBreakdownAvg(t *testing.T) {
	var a BreakdownAvg
	if a.Mean() != (Breakdown{}) {
		t.Fatal("empty mean should be zero")
	}
	a.Add(Breakdown{HostSend: 2 * time.Microsecond})
	a.Add(Breakdown{HostSend: 4 * time.Microsecond})
	if a.Count() != 2 {
		t.Fatalf("count = %d", a.Count())
	}
	if got := a.Mean().HostSend; got != 3*time.Microsecond {
		t.Fatalf("mean host-send = %v, want 3µs", got)
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc("a", 1)
	c.Inc("b", 2)
	c.Inc("a", 3)
	if c.Get("a") != 4 || c.Get("b") != 2 || c.Get("missing") != 0 {
		t.Fatalf("counters: %v", c)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if s := c.String(); !strings.Contains(s, "a=4") || !strings.Contains(s, "b=2") {
		t.Fatalf("String() = %q", s)
	}
}

func TestBandwidth(t *testing.T) {
	// 100 MB over 1 second = 100 MB/s.
	if got := Bandwidth(100e6, time.Second); got != 100 {
		t.Fatalf("bandwidth = %v", got)
	}
	if got := Bandwidth(1000, 0); got != 0 {
		t.Fatalf("zero-duration bandwidth = %v, want 0", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
	for _, d := range []time.Duration{time.Microsecond, 2 * time.Microsecond, 3 * time.Microsecond} {
		h.Add(d)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 2*time.Microsecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != time.Microsecond || h.Max() != 3*time.Microsecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Add(time.Duration(i) * time.Microsecond)
	}
	// Bucketed upper bound: the median is ≈500µs; its bucket bound is
	// 2^19ns ≈ 524µs.
	q50 := h.Quantile(0.5)
	if q50 < 256*time.Microsecond || q50 > 1100*time.Microsecond {
		t.Fatalf("p50 = %v, want near 512µs bucket", q50)
	}
	if h.Quantile(0) > h.Quantile(0.99) {
		t.Fatal("quantiles not monotone")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Add(-time.Second)
	if h.Min() != 0 {
		t.Fatalf("negative sample not clamped: %v", h.Min())
	}
}

func TestPropertyHistogramMeanWithinRange(t *testing.T) {
	f := func(samples []uint32) bool {
		if len(samples) == 0 {
			return true
		}
		var h Histogram
		for _, s := range samples {
			h.Add(time.Duration(s))
		}
		return h.Mean() >= h.Min() && h.Mean() <= h.Max() && h.Count() == uint64(len(samples))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
