// Package stats provides the instrumentation used by the evaluation: the
// five-stage latency breakdown of Figure 3, bandwidth meters, counters, and
// simple log-scale histograms.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Breakdown is the paper's five-stage one-way latency decomposition
// (Figure 3): host send, NIC send firmware, wire, NIC receive firmware,
// host receive (DMA into host memory + notification).
type Breakdown struct {
	HostSend time.Duration
	NICSend  time.Duration
	Wire     time.Duration
	NICRecv  time.Duration
	HostRecv time.Duration
}

// Total returns the end-to-end one-way latency.
func (b Breakdown) Total() time.Duration {
	return b.HostSend + b.NICSend + b.Wire + b.NICRecv + b.HostRecv
}

func (b Breakdown) String() string {
	return fmt.Sprintf("host-send=%v nic-send=%v wire=%v nic-recv=%v host-recv=%v total=%v",
		b.HostSend, b.NICSend, b.Wire, b.NICRecv, b.HostRecv, b.Total())
}

// BreakdownAvg accumulates breakdowns and reports their mean.
type BreakdownAvg struct {
	sum   Breakdown
	count int
}

// Add accumulates one observation.
func (a *BreakdownAvg) Add(b Breakdown) {
	a.sum.HostSend += b.HostSend
	a.sum.NICSend += b.NICSend
	a.sum.Wire += b.Wire
	a.sum.NICRecv += b.NICRecv
	a.sum.HostRecv += b.HostRecv
	a.count++
}

// Count returns the number of observations.
func (a *BreakdownAvg) Count() int { return a.count }

// Mean returns the component-wise average breakdown.
func (a *BreakdownAvg) Mean() Breakdown {
	if a.count == 0 {
		return Breakdown{}
	}
	n := time.Duration(a.count)
	return Breakdown{
		HostSend: a.sum.HostSend / n,
		NICSend:  a.sum.NICSend / n,
		Wire:     a.sum.Wire / n,
		NICRecv:  a.sum.NICRecv / n,
		HostRecv: a.sum.HostRecv / n,
	}
}

// Counters is a named event-count registry.
type Counters struct {
	m map[string]uint64
}

// NewCounters returns an empty registry.
func NewCounters() *Counters { return &Counters{m: make(map[string]uint64)} }

// Inc adds n to counter name.
func (c *Counters) Inc(name string, n uint64) { c.m[name] += n }

// Get returns counter name's value.
func (c *Counters) Get(name string) uint64 { return c.m[name] }

// Names returns all counter names, sorted.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for n := range c.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (c *Counters) String() string {
	var b strings.Builder
	for _, n := range c.Names() {
		fmt.Fprintf(&b, "%s=%d ", n, c.m[n])
	}
	return strings.TrimSpace(b.String())
}

// Bandwidth converts bytes over a duration to MB/s (decimal megabytes, as
// the paper reports).
func Bandwidth(bytes uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds() / 1e6
}

// Histogram is a power-of-two bucketed latency histogram.
type Histogram struct {
	buckets [64]uint64
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// Add records one duration.
func (h *Histogram) Add(d time.Duration) {
	if d < 0 {
		d = 0
	}
	b := 0
	for v := int64(d); v > 1 && b < 63; v >>= 1 {
		b++
	}
	h.buckets[b]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the average of all samples.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest sample.
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) based on
// bucket boundaries.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen > target {
			return time.Duration(int64(1) << uint(i))
		}
	}
	return h.max
}
