package vmmc

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"sanft/internal/fabric"
	"sanft/internal/fault"
	"sanft/internal/nic"
	"sanft/internal/proto"
	"sanft/internal/retrans"
	"sanft/internal/routing"
	"sanft/internal/sim"
	"sanft/internal/topology"
)

type rig struct {
	k     *sim.Kernel
	fab   *fabric.Fabric
	hosts []topology.NodeID
	eps   map[topology.NodeID]*Endpoint
	dir   *Directory
}

func newRig(t *testing.T, nHosts int, ft bool, dropRate float64) *rig {
	t.Helper()
	k := sim.New(1)
	nw, hosts := topology.Star(nHosts)
	fab := fabric.New(k, nw, fabric.DefaultConfig())
	dir := NewDirectory()
	r := &rig{k: k, fab: fab, hosts: hosts, eps: make(map[topology.NodeID]*Endpoint), dir: dir}
	for i, h := range hosts {
		var dropper fault.Dropper
		if i == 0 && dropRate > 0 {
			dropper = fault.NewRate(dropRate)
		}
		n := nic.New(k, fab, h, nic.Options{
			FT:      ft,
			Retrans: retrans.Config{QueueSize: 32, Interval: time.Millisecond},
			Dropper: dropper,
		})
		r.eps[h] = NewEndpoint(k, n, dir)
	}
	for _, a := range hosts {
		for _, b := range hosts {
			if a != b {
				rt, _ := routing.Shortest(nw, a, b)
				r.eps[a].NIC().SetRoute(b, rt)
			}
		}
	}
	return r
}

func (r *rig) runFor(d time.Duration) {
	r.k.RunFor(d)
	r.k.Stop()
}

func TestExportImportSend(t *testing.T) {
	r := newRig(t, 2, true, 0)
	a, b := r.hosts[0], r.hosts[1]
	exp := r.eps[b].Export("inbox", 4096)
	var note Notification
	got := false
	r.k.Spawn("sender", func(p *sim.Proc) {
		imp, err := r.eps[a].Import(b, "inbox")
		if err != nil {
			t.Error(err)
			return
		}
		imp.Send(p, 100, []byte("hello vmmc"), true)
	})
	r.k.Spawn("receiver", func(p *sim.Proc) {
		note = exp.WaitNotification(p)
		got = true
	})
	r.runFor(10 * time.Millisecond)
	if !got {
		t.Fatal("no notification")
	}
	if note.Len != 10 || note.Offset != 100 || note.Src != a {
		t.Fatalf("notification = %+v", note)
	}
	if string(exp.Mem[100:110]) != "hello vmmc" {
		t.Fatalf("memory = %q", exp.Mem[100:110])
	}
}

func TestImportPermissionDenied(t *testing.T) {
	r := newRig(t, 3, true, 0)
	a, b, c := r.hosts[0], r.hosts[1], r.hosts[2]
	r.eps[b].Export("private", 1024, a) // only a may import
	if _, err := r.eps[a].Import(b, "private"); err != nil {
		t.Fatalf("allowed importer rejected: %v", err)
	}
	if _, err := r.eps[c].Import(b, "private"); err == nil {
		t.Fatal("disallowed importer accepted")
	}
	if _, err := r.eps[a].Import(b, "nonexistent"); err == nil {
		t.Fatal("import of missing buffer accepted")
	}
}

func TestSegmentationAndReassembly(t *testing.T) {
	// 20 KB message → 5 chunks; must reassemble exactly.
	r := newRig(t, 2, true, 0)
	a, b := r.hosts[0], r.hosts[1]
	exp := r.eps[b].Export("big", 32*1024)
	msg := make([]byte, 20*1024)
	for i := range msg {
		msg[i] = byte(i * 31)
	}
	notes := 0
	r.k.Spawn("sender", func(p *sim.Proc) {
		imp, _ := r.eps[a].Import(b, "big")
		imp.Send(p, 1000, msg, true)
	})
	r.k.Spawn("receiver", func(p *sim.Proc) {
		n := exp.WaitNotification(p)
		notes++
		if n.Len != len(msg) || n.Offset != 1000 {
			t.Errorf("notification = %+v", n)
		}
	})
	r.runFor(50 * time.Millisecond)
	if notes != 1 {
		t.Fatalf("notifications = %d, want 1", notes)
	}
	if !bytes.Equal(exp.Mem[1000:1000+len(msg)], msg) {
		t.Fatal("reassembled message differs")
	}
}

func TestMessageCompletionUnderDrops(t *testing.T) {
	// 10% send-side drops; every message must still complete exactly
	// once, in order.
	r := newRig(t, 2, true, 0.1)
	a, b := r.hosts[0], r.hosts[1]
	exp := r.eps[b].Export("inbox", 64*1024)
	const n = 40
	var order []uint64
	r.k.Spawn("sender", func(p *sim.Proc) {
		imp, _ := r.eps[a].Import(b, "inbox")
		for i := 0; i < n; i++ {
			msg := bytes.Repeat([]byte{byte(i)}, 6000) // 2 chunks
			imp.Send(p, 0, msg, true)
		}
	})
	r.k.Spawn("receiver", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			note := exp.WaitNotification(p)
			order = append(order, note.MsgID)
		}
	})
	r.runFor(2 * time.Second)
	if len(order) != n {
		t.Fatalf("completed %d of %d messages", len(order), n)
	}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("completions out of order: %v", order)
		}
	}
}

func TestZeroLengthMessageNotifies(t *testing.T) {
	r := newRig(t, 2, true, 0)
	a, b := r.hosts[0], r.hosts[1]
	exp := r.eps[b].Export("sig", 64)
	got := false
	r.k.Spawn("sender", func(p *sim.Proc) {
		imp, _ := r.eps[a].Import(b, "sig")
		imp.Send(p, 0, nil, true)
	})
	r.k.Spawn("receiver", func(p *sim.Proc) {
		n := exp.WaitNotification(p)
		got = n.Len == 0
	})
	r.runFor(10 * time.Millisecond)
	if !got {
		t.Fatal("zero-length message did not notify")
	}
}

func TestDepositOutsideBufferPanics(t *testing.T) {
	r := newRig(t, 2, true, 0)
	a, b := r.hosts[0], r.hosts[1]
	r.eps[b].Export("small", 16)
	panicked := false
	r.k.Spawn("sender", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		imp, _ := r.eps[a].Import(b, "small")
		imp.Send(p, 8, make([]byte, 16), false)
	})
	r.runFor(time.Millisecond)
	if !panicked {
		t.Fatal("overflow deposit did not panic at the send side")
	}
}

func TestDepositPermissionEnforcedAtReceiver(t *testing.T) {
	// A forged frame naming a protected buffer must be rejected at the
	// receiving endpoint even if it arrives.
	r := newRig(t, 3, true, 0)
	a, b, c := r.hosts[0], r.hosts[1], r.hosts[2]
	exp := r.eps[b].Export("private", 64, a) // only a
	// c forges a deposit by sending a raw data frame naming the buffer.
	r.k.Spawn("forger", func(p *sim.Proc) {
		r.eps[c].NIC().Send(p, &proto.Frame{
			Type: proto.FrameData,
			Dst:  b,
			Data: &proto.DataPayload{BufID: exp.ID, MsgID: 1, MsgLen: 8, Data: bytes.Repeat([]byte{0xff}, 8)},
		})
	})
	r.runFor(10 * time.Millisecond)
	if r.eps[b].RejectedDeposits != 1 {
		t.Fatalf("rejected deposits = %d, want 1", r.eps[b].RejectedDeposits)
	}
	for _, bb := range exp.Mem {
		if bb != 0 {
			t.Fatal("protected memory was written")
		}
	}
}

func TestNotificationLatencyBreakdown(t *testing.T) {
	r := newRig(t, 2, true, 0)
	a, b := r.hosts[0], r.hosts[1]
	exp := r.eps[b].Export("inbox", 64)
	var note Notification
	r.k.Spawn("sender", func(p *sim.Proc) {
		imp, _ := r.eps[a].Import(b, "inbox")
		imp.Send(p, 0, make([]byte, 4), true)
	})
	r.k.Spawn("receiver", func(p *sim.Proc) {
		note = exp.WaitNotification(p)
	})
	r.runFor(10 * time.Millisecond)
	bd := note.Breakdown
	if bd.Total() != note.Latency {
		t.Fatalf("breakdown total %v != latency %v for single-chunk message", bd.Total(), note.Latency)
	}
	for name, d := range map[string]time.Duration{
		"host-send": bd.HostSend, "nic-send": bd.NICSend, "wire": bd.Wire,
		"nic-recv": bd.NICRecv, "host-recv": bd.HostRecv,
	} {
		if d <= 0 {
			t.Fatalf("stage %s = %v, want positive", name, d)
		}
	}
	// FT 4-byte message: ~10µs per the paper.
	if note.Latency < 9*time.Microsecond || note.Latency > 11*time.Microsecond {
		t.Fatalf("latency = %v, want ≈10µs", note.Latency)
	}
}

func TestCompletionWindowProperty(t *testing.T) {
	// Marking IDs in any order: done() is true exactly for marked IDs,
	// and memory stays bounded by the largest gap.
	f := func(perm []uint8) bool {
		cw := &completionWindow{sparse: make(map[uint64]bool)}
		marked := make(map[uint64]bool)
		for _, p := range perm {
			id := uint64(p%64) + 1
			cw.mark(id)
			marked[id] = true
		}
		for id := uint64(1); id <= 64; id++ {
			if cw.done(id) != marked[id] {
				return false
			}
		}
		return len(cw.sparse) <= 64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompletionWindowFoldsDense(t *testing.T) {
	cw := &completionWindow{sparse: make(map[uint64]bool)}
	// Mark 2..1000, then 1: everything folds into upTo, sparse empties.
	for id := uint64(2); id <= 1000; id++ {
		cw.mark(id)
	}
	if len(cw.sparse) != 999 {
		t.Fatalf("sparse = %d before fold", len(cw.sparse))
	}
	cw.mark(1)
	if cw.upTo != 1000 || len(cw.sparse) != 0 {
		t.Fatalf("after fold: upTo=%d sparse=%d", cw.upTo, len(cw.sparse))
	}
}
