// Package vmmc implements Virtual Memory-Mapped Communication, the
// user-level communication layer of the paper's platform (§3.2).
//
// The model follows the original semantics: a receiving process EXPORTS
// regions of its address space (with permissions restricting who may
// import them); a sender IMPORTS a remote buffer and then deposits data
// directly into the remote memory — no receiver CPU involvement, no
// receive() call, optional completion notifications. Messages of at most
// 32 bytes go to the NIC by programmed I/O, larger ones by DMA, and
// messages above 4 KB are segmented into chunks by the firmware.
//
// Reliability interaction: with the retransmission protocol enabled the
// layer sees exactly-once, in-order chunks per sending PROCESS in steady
// state, and at-least-once chunks across a permanent-failure remap (a
// generation reset renumbers delivered-but-unacknowledged packets).
// Deposits are idempotent writes into exported memory, so redelivery is
// harmless at the data level. Completion notifications are deduplicated
// exactly: message IDs are assigned per destination node, and the receiver
// tracks a gap-filling completion window per source (messages from
// different processes sharing one NIC can complete out of ID order — a
// small PIO send overtakes a large DMA send still crossing the PCI bus).
package vmmc

import (
	"fmt"
	"time"

	"sanft/internal/nic"
	"sanft/internal/proto"
	"sanft/internal/sim"
	"sanft/internal/stats"
	"sanft/internal/topology"
	"sanft/internal/trace"
)

// Notification reports a completed message arrival to the exporting
// process.
type Notification struct {
	Src    topology.NodeID
	MsgID  uint64
	BufID  int
	Offset int // where in the exported buffer the message starts
	Len    int
	// Latency is end-to-end: first chunk's host start to last chunk's
	// host deposit.
	Latency time.Duration
	// Breakdown is the five-stage decomposition of the first chunk.
	Breakdown stats.Breakdown
}

// Export is a region of host memory opened for remote deposits.
type Export struct {
	ID   int
	Name string
	Mem  []byte
	// allowed restricts importers; nil means any node may import.
	allowed map[topology.NodeID]bool
	// Notify receives a Notification per completed message that asked
	// for one.
	Notify sim.Mailbox
}

// Import is a sender-side handle to a remote exported buffer.
type Import struct {
	ep     *Endpoint
	Remote topology.NodeID
	BufID  int
	Size   int
}

// Directory is the name service mapping (node, buffer name) to exports —
// the connection-setup plumbing, outside the measured data path.
type Directory struct {
	eps map[topology.NodeID]*Endpoint
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{eps: make(map[topology.NodeID]*Endpoint)}
}

type msgKey struct {
	src topology.NodeID
	id  uint64
}

type partialMsg struct {
	received int
	first    proto.Stamps
}

// Endpoint is one process's VMMC instance, bound to its host's NIC.
type Endpoint struct {
	k    *sim.Kernel
	n    *nic.NIC
	dir  *Directory
	node topology.NodeID

	exports   map[int]*Export
	byName    map[string]*Export
	nextBufID int
	// nextMsgID numbers messages per destination node, so receivers see
	// (eventually) dense ID sequences per source.
	nextMsgID map[topology.NodeID]uint64

	partial   map[msgKey]*partialMsg
	completed map[topology.NodeID]*completionWindow

	// Counters.
	RejectedDeposits uint64
	DupNotifications uint64
}

// NewEndpoint creates the endpoint for a host and wires it to the NIC's
// delivery upcall.
func NewEndpoint(k *sim.Kernel, n *nic.NIC, dir *Directory) *Endpoint {
	ep := &Endpoint{
		k:         k,
		n:         n,
		dir:       dir,
		node:      n.Node(),
		exports:   make(map[int]*Export),
		byName:    make(map[string]*Export),
		nextMsgID: make(map[topology.NodeID]uint64),
		partial:   make(map[msgKey]*partialMsg),
		completed: make(map[topology.NodeID]*completionWindow),
	}
	n.SetOnDeliver(ep.onDeliver)
	dir.eps[ep.node] = ep
	return ep
}

// Node returns the host this endpoint runs on.
func (ep *Endpoint) Node() topology.NodeID { return ep.node }

// NIC returns the underlying NIC.
func (ep *Endpoint) NIC() *nic.NIC { return ep.n }

// Export opens a buffer of the given size for remote deposits. If allowed
// is non-empty, only those nodes may import it.
func (ep *Endpoint) Export(name string, size int, allowed ...topology.NodeID) *Export {
	if _, dup := ep.byName[name]; dup {
		panic(fmt.Sprintf("vmmc: duplicate export %q", name))
	}
	e := &Export{ID: ep.nextBufID, Name: name, Mem: make([]byte, size)}
	ep.nextBufID++
	if len(allowed) > 0 {
		e.allowed = make(map[topology.NodeID]bool, len(allowed))
		for _, a := range allowed {
			e.allowed[a] = true
		}
	}
	ep.exports[e.ID] = e
	ep.byName[name] = e
	return e
}

// Import obtains a send handle for a buffer exported by a remote node.
// Connection setup is modeled as a directory lookup (it is outside the
// data path the paper measures); permissions are enforced here and again
// at deposit time.
func (ep *Endpoint) Import(remote topology.NodeID, name string) (*Import, error) {
	rep, ok := ep.dir.eps[remote]
	if !ok {
		return nil, fmt.Errorf("vmmc: no endpoint on node %d", remote)
	}
	e, ok := rep.byName[name]
	if !ok {
		return nil, fmt.Errorf("vmmc: node %d exports no buffer %q", remote, name)
	}
	if e.allowed != nil && !e.allowed[ep.node] {
		return nil, fmt.Errorf("vmmc: node %d may not import %q from node %d", ep.node, name, remote)
	}
	return &Import{ep: ep, Remote: remote, BufID: e.ID, Size: len(e.Mem)}, nil
}

// Send deposits data into the imported remote buffer at the given offset,
// segmenting into MTU-sized chunks. It blocks (in virtual time) only for
// send-buffer availability and the host-side per-chunk cost; delivery is
// asynchronous. If notify is true the remote endpoint posts a Notification
// when the whole message has arrived. Returns the message ID.
func (imp *Import) Send(p *sim.Proc, offset int, data []byte, notify bool) uint64 {
	ep := imp.ep
	if offset < 0 || offset+len(data) > imp.Size {
		panic(fmt.Sprintf("vmmc: deposit [%d,%d) outside buffer of %d bytes", offset, offset+len(data), imp.Size))
	}
	ep.nextMsgID[imp.Remote]++
	msgID := ep.nextMsgID[imp.Remote]
	ep.n.EmitMsgEvent(trace.EvHostSend, imp.Remote, msgID)
	mtu := ep.n.Cost().MTU
	start := p.Now()
	if len(data) == 0 {
		// Zero-length messages still notify (used as pure signals).
		data = nil
	}
	sent := 0
	for {
		chunkLen := len(data) - sent
		if chunkLen > mtu {
			chunkLen = mtu
		}
		chunk := data[sent : sent+chunkLen]
		frame := &proto.Frame{
			Type: proto.FrameData,
			Dst:  imp.Remote,
			Data: &proto.DataPayload{
				BufID:     imp.BufID,
				MsgID:     msgID,
				MsgLen:    len(data),
				BufOffset: offset + sent,
				MsgOffset: sent,
				Data:      chunk,
				Notify:    notify,
			},
		}
		frame.Stamps.HostStart = start
		ep.n.Send(p, frame)
		sent += chunkLen
		if sent >= len(data) {
			break
		}
	}
	return msgID
}

// onDeliver handles an accepted data frame from the NIC: deposit the chunk
// into the exported buffer and track message completion.
func (ep *Endpoint) onDeliver(f *proto.Frame) {
	d := f.Data
	e, ok := ep.exports[d.BufID]
	if !ok {
		ep.RejectedDeposits++
		return
	}
	if e.allowed != nil && !e.allowed[f.Src] {
		ep.RejectedDeposits++
		return
	}
	if d.BufOffset < 0 || d.BufOffset+len(d.Data) > len(e.Mem) {
		ep.RejectedDeposits++
		return
	}
	copy(e.Mem[d.BufOffset:], d.Data)

	cw := ep.completed[f.Src]
	if cw == nil {
		cw = &completionWindow{sparse: make(map[uint64]bool)}
		ep.completed[f.Src] = cw
	}
	if debugVMMC {
		fmt.Printf("[vmmcdbg node=%d] chunk src=%d msg=%d buf=%d len=%d msgoff=%d upTo=%d\n",
			ep.node, f.Src, d.MsgID, d.BufID, len(d.Data), d.MsgOffset, cw.upTo)
	}
	if cw.done(d.MsgID) {
		// Redelivered chunk of an already-completed message (possible
		// across a generation reset): the write above is idempotent;
		// suppress tracking and notification.
		ep.DupNotifications++
		return
	}
	key := msgKey{f.Src, d.MsgID}
	pm := ep.partial[key]
	if pm == nil {
		pm = &partialMsg{}
		ep.partial[key] = pm
	}
	if d.MsgOffset == 0 {
		pm.first = f.Stamps
	}
	pm.received += len(d.Data)
	if pm.received < d.MsgLen {
		return
	}
	// Message complete.
	delete(ep.partial, key)
	cw.mark(d.MsgID)
	ep.n.EmitMsgEvent(trace.EvMsgComplete, f.Src, d.MsgID)
	if !d.Notify {
		return
	}
	first := pm.first
	if d.MsgLen == 0 || first.HostStart == 0 {
		first = f.Stamps
	}
	e.Notify.Put(Notification{
		Src:     f.Src,
		MsgID:   d.MsgID,
		BufID:   d.BufID,
		Offset:  d.BufOffset - d.MsgOffset,
		Len:     d.MsgLen,
		Latency: f.Stamps.HostRecvDone.Sub(first.HostStart),
		Breakdown: stats.Breakdown{
			HostSend: first.HostDone.Sub(first.HostStart),
			NICSend:  first.Injected.Sub(first.HostDone),
			Wire:     first.Delivered.Sub(first.Injected),
			NICRecv:  first.NICRecvDone.Sub(first.Delivered),
			HostRecv: first.HostRecvDone.Sub(first.NICRecvDone),
		},
	})
}

// debugVMMC enables tracing of chunk arrivals (tests only).
var debugVMMC = false

// completionWindow tracks which message IDs from one source have
// completed: everything ≤ upTo, plus a sparse set above it that is folded
// down as gaps fill. With reliable transport every ID eventually
// completes, so the sparse set stays bounded by the in-flight window.
type completionWindow struct {
	upTo   uint64
	sparse map[uint64]bool
}

func (c *completionWindow) done(id uint64) bool {
	return id <= c.upTo || c.sparse[id]
}

func (c *completionWindow) mark(id uint64) {
	if id <= c.upTo {
		return
	}
	c.sparse[id] = true
	for c.sparse[c.upTo+1] {
		delete(c.sparse, c.upTo+1)
		c.upTo++
	}
}

// WaitNotification blocks the calling process until a notification arrives
// on the export.
func (e *Export) WaitNotification(p *sim.Proc) Notification {
	return e.Notify.Get(p).(Notification)
}

// WaitNotificationTimeout is WaitNotification with a timeout.
func (e *Export) WaitNotificationTimeout(p *sim.Proc, d time.Duration) (Notification, bool) {
	v, ok := e.Notify.GetTimeout(p, d)
	if !ok {
		return Notification{}, false
	}
	return v.(Notification), true
}

// SetDebug toggles chunk tracing.
func SetDebug(v bool) { debugVMMC = v }
