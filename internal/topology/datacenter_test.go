package topology_test

import (
	"fmt"
	"testing"

	"sanft/internal/routing"
	"sanft/internal/topology"
)

// The scale-tier structural suite: every builder size is checked against
// closed-form host/switch/link counts, radix bounds, trunk-set purity,
// construction determinism, and — via an exact max-flow bound — the
// fabric's edge-disjoint path diversity between host pairs.

type builtCase struct {
	name     string
	build    func() *topology.Built
	hosts    int
	switches int
	links    int
	radix    int // expected switch radix (0 = skip exact check)
	// disjoint is the expected max-flow (edge-disjoint fabric paths)
	// between the first and last host, which the builders place as far
	// apart as the fabric allows.
	disjoint int
}

func viaSpec(spec string) func() *topology.Built {
	return func() *topology.Built {
		b, err := topology.ParseSpec(spec)
		if err != nil {
			panic(err)
		}
		return b
	}
}

func builderCases() []builtCase {
	var cases []builtCase
	// Fat-tree k: k³/4 hosts, 5k²/4 switches of radix k (all ports
	// wired), k³/4 NIC + k³/2 trunk links, k/2 edge-disjoint fabric paths.
	for _, k := range []int{2, 4, 8, 16} {
		cases = append(cases, builtCase{
			name:     fmt.Sprintf("fattree:%d", k),
			build:    viaSpec(fmt.Sprintf("fattree:%d", k)),
			hosts:    k * k * k / 4,
			switches: 5 * k * k / 4,
			links:    3 * k * k * k / 4,
			radix:    k,
			disjoint: k / 2,
		})
	}
	// Dragonfly a,p,h: g = a·h+1 groups, g·a routers of radix p+(a-1)+h
	// (all ports wired), g·a·p hosts, full local meshes plus one global
	// link per group pair; fabric diversity equals the router's fabric
	// degree (a-1)+h.
	for _, c := range [][3]int{{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {8, 4, 4}} {
		a, p, h := c[0], c[1], c[2]
		g := a*h + 1
		cases = append(cases, builtCase{
			name:     fmt.Sprintf("dragonfly:%d,%d,%d", a, p, h),
			build:    viaSpec(fmt.Sprintf("dragonfly:%d,%d,%d", a, p, h)),
			hosts:    g * a * p,
			switches: g * a,
			links:    g*a*p + g*a*(a-1)/2 + g*(g-1)/2,
			radix:    p + (a - 1) + h,
			disjoint: (a - 1) + h,
		})
	}
	// Torus hp,dims: ∏dims switches of radix hp+2n, one +1-direction link
	// per switch per dimension (wraparound closes each ring; size-2 dims
	// double up), 2n edge-disjoint fabric paths between distinct switches.
	for _, c := range [][]int{{1, 2, 2}, {2, 4, 3}, {1, 2, 3, 4}, {4, 16, 16}} {
		hp, dims := c[0], c[1:]
		n := 1
		spec := fmt.Sprintf("torus:%d", hp)
		for _, d := range dims {
			n *= d
			spec += fmt.Sprintf(",%d", d)
		}
		cases = append(cases, builtCase{
			name:     spec,
			build:    viaSpec(spec),
			hosts:    hp * n,
			switches: n,
			links:    hp*n + n*len(dims),
			radix:    hp + 2*len(dims),
			disjoint: 2 * len(dims),
		})
	}
	return cases
}

func TestBuilderStructure(t *testing.T) {
	for _, tc := range builderCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			b := tc.build()
			nw := b.Net
			if err := nw.Validate(); err != nil {
				t.Fatalf("invalid network: %v", err)
			}
			if got := len(b.Hosts); got != tc.hosts {
				t.Errorf("hosts = %d, want %d", got, tc.hosts)
			}
			if got := len(nw.Hosts()); got != tc.hosts {
				t.Errorf("network hosts = %d, want %d", got, tc.hosts)
			}
			if got := len(nw.Switches()); got != tc.switches {
				t.Errorf("switches = %d, want %d", got, tc.switches)
			}
			if got := len(nw.Links); got != tc.links {
				t.Errorf("links = %d, want %d", got, tc.links)
			}
			// Trunks must be exactly the switch-to-switch links, each once.
			wantTrunks := tc.links - tc.hosts
			if got := len(b.Trunks); got != wantTrunks {
				t.Errorf("trunks = %d, want %d", got, wantTrunks)
			}
			seen := make(map[int]bool)
			for _, l := range b.Trunks {
				if seen[l.ID] {
					t.Errorf("trunk link %d listed twice", l.ID)
				}
				seen[l.ID] = true
				if nw.Node(l.A.Node).Kind != topology.Switch ||
					nw.Node(l.B.Node).Kind != topology.Switch {
					t.Errorf("trunk link %d touches a host", l.ID)
				}
			}
			// Radix bounds: every switch has the advertised radix and every
			// port of these regular fabrics is wired.
			for _, sw := range nw.Switches() {
				n := nw.Node(sw)
				if tc.radix != 0 && n.Radix() != tc.radix {
					t.Fatalf("switch %s radix = %d, want %d", n.Name, n.Radix(), tc.radix)
				}
				if used := len(n.UsedPorts()); used != n.Radix() {
					t.Fatalf("switch %s wires %d of %d ports", n.Name, used, n.Radix())
				}
			}
		})
	}
}

// TestBuilderPathDiversity asserts the fabric's edge-disjoint path count
// between far-apart host pairs via an exact max-flow (Edmonds-Karp) check,
// and that the greedy DisjointRoutes enumeration actually realizes that
// many routes on these regular fabrics.
func TestBuilderPathDiversity(t *testing.T) {
	for _, tc := range builderCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			b := tc.build()
			if len(b.Hosts) < 2 {
				t.Skip("single-host fabric")
			}
			a, z := b.Hosts[0], b.Hosts[len(b.Hosts)-1]
			if got := routing.MaxEdgeDisjoint(b.Net, a, z); got != tc.disjoint {
				t.Errorf("max-flow %s..%s = %d, want %d",
					b.Net.Node(a).Name, b.Net.Node(z).Name, got, tc.disjoint)
			}
			routes := routing.DisjointRoutes(b.Net, a, z, tc.disjoint)
			if len(routes) != tc.disjoint {
				t.Errorf("greedy disjoint routes = %d, want %d", len(routes), tc.disjoint)
			}
			for i, r := range routes {
				res, err := routing.Walk(b.Net, a, r)
				if err != nil || res.Dst != z {
					t.Errorf("route %d does not reach %s: %v", i, b.Net.Node(z).Name, err)
				}
			}
		})
	}
}

// TestBuilderDeterminism: same parameters, byte-identical wiring.
func TestBuilderDeterminism(t *testing.T) {
	for _, tc := range builderCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			a, b := tc.build(), tc.build()
			if a.Net.String() != b.Net.String() {
				t.Fatal("two builds of the same spec differ")
			}
			if a.Desc != b.Desc {
				t.Fatalf("descriptions differ: %q vs %q", a.Desc, b.Desc)
			}
		})
	}
}

// TestFatTreeHandle spot-checks the structural handle's link classes.
func TestFatTreeHandle(t *testing.T) {
	f := topology.FatTree(4)
	if len(f.PodHosts) != 4 || len(f.PodHosts[0]) != 4 {
		t.Fatalf("pod hosts = %dx%d, want 4x4", len(f.PodHosts), len(f.PodHosts[0]))
	}
	if got := len(f.PodUplinks(3)); got != 4 {
		t.Errorf("pod 3 uplinks = %d, want 4 (k/2 aggs × k/2 cores)", got)
	}
	if got := len(f.EdgeUplinks(0)); got != 4 {
		t.Errorf("pod 0 edge uplinks = %d, want 4", got)
	}
	// Cutting all of pod 0's agg→core uplinks must disconnect pod 0's
	// hosts from pod 1's at the fabric level, and only then.
	a, z := f.PodHosts[0][0], f.PodHosts[1][0]
	if routing.MaxEdgeDisjoint(f.Net, a, z) == 0 {
		t.Fatal("pods disconnected before the cut")
	}
	for _, l := range f.PodUplinks(0) {
		f.Net.KillLink(l)
	}
	if got := routing.MaxEdgeDisjoint(f.Net, a, z); got != 0 {
		t.Errorf("pod 0 still reaches pod 1 over %d paths after losing every uplink", got)
	}
	if got := routing.MaxEdgeDisjoint(f.Net, f.PodHosts[0][0], f.PodHosts[0][3]); got == 0 {
		t.Error("intra-pod connectivity lost by cutting inter-pod uplinks")
	}
}

// TestDragonflyHandle spot-checks group indexing and the global link map.
func TestDragonflyHandle(t *testing.T) {
	d := topology.Dragonfly(4, 2, 2)
	if d.Groups != 9 {
		t.Fatalf("groups = %d, want a·h+1 = 9", d.Groups)
	}
	for i := 0; i < d.Groups; i++ {
		for j := i + 1; j < d.Groups; j++ {
			if d.GlobalLink(i, j) == nil {
				t.Fatalf("groups %d,%d share no global link", i, j)
			}
			if d.GlobalLink(i, j) != d.GlobalLink(j, i) {
				t.Fatalf("GlobalLink not symmetric for %d,%d", i, j)
			}
		}
	}
	if got := len(d.GlobalLinks(0)); got != d.Groups-1 {
		t.Errorf("group 0 global links = %d, want %d", got, d.Groups-1)
	}
	if got := len(d.LocalLinks(0)); got != 6 {
		t.Errorf("group 0 local links = %d, want a(a-1)/2 = 6", got)
	}
	// Per-router global port budget must balance at h.
	counts := make(map[topology.NodeID]int)
	for i := 0; i < d.Groups; i++ {
		for j := i + 1; j < d.Groups; j++ {
			l := d.GlobalLink(i, j)
			counts[l.A.Node]++
			counts[l.B.Node]++
		}
	}
	for r, n := range counts {
		if n != d.H {
			t.Errorf("router %s carries %d global links, want h = %d", d.Net.Node(r).Name, n, d.H)
		}
	}
}

// TestTorusHandle spot-checks coordinate indexing and dimension links.
func TestTorusHandle(t *testing.T) {
	tr := topology.Torus(2, 3, 4)
	if got := len(tr.Switches); got != 12 {
		t.Fatalf("switches = %d, want 12", got)
	}
	if tr.At(2, 3) != tr.Switches[11] {
		t.Error("At(2,3) is not the row-major last switch")
	}
	if got := len(tr.HostsAt(1, 2)); got != 2 {
		t.Errorf("hosts at (1,2) = %d, want 2", got)
	}
	for d, want := range []int{12, 12} {
		if got := len(tr.DimLinks(d)); got != want {
			t.Errorf("dim %d links = %d, want %d", d, got, want)
		}
	}
	// A size-2 dimension doubles its links: each wrap pair is joined twice.
	tr2 := topology.Torus(1, 2, 2)
	if got := len(tr2.TrunkLinks()); got != 8 {
		t.Errorf("2x2 torus trunks = %d, want 8 (doubled rings)", got)
	}
}

// TestParseSpecErrors: unusable specs must be readable errors, not panics.
func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"", "fattree", "fattree:", "fattree:3", "fattree:0", "fattree:4,4",
		"dragonfly:4", "dragonfly:0,1,1", "dragonfly:1,1,x",
		"torus:4", "torus:4,1,4", "torus:0,2,2",
		"clos:8", "mesh",
	} {
		if _, err := topology.ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted a bad spec", spec)
		}
	}
	b, err := topology.ParseSpec("fattree:4")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Handle.(*topology.FatTreeNet); !ok {
		t.Errorf("fattree handle is %T", b.Handle)
	}
}
