package topology

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"sanft/internal/parsim"
)

func TestStar(t *testing.T) {
	nw, hosts := Star(4)
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 4 {
		t.Fatalf("got %d hosts, want 4", len(hosts))
	}
	if got := len(nw.Switches()); got != 1 {
		t.Fatalf("got %d switches, want 1", got)
	}
	sw := nw.Switches()[0]
	for _, h := range hosts {
		n, _ := nw.Neighbor(h, 0)
		if n != sw {
			t.Fatalf("host %d not attached to switch", h)
		}
	}
}

func TestConnectErrors(t *testing.T) {
	nw := New()
	a := nw.AddHost("a")
	b := nw.AddHost("b")
	nw.Connect(a, 0, b, 0)
	for _, fn := range []func(){
		func() { nw.Connect(a, 0, b, 0) }, // already wired
		func() { nw.Connect(a, 5, b, 0) }, // out of range
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDisconnectAndReconnect(t *testing.T) {
	nw := New()
	h := nw.AddHost("h")
	sw := nw.AddSwitch("sw", 4)
	l := nw.Connect(h, 0, sw, 2)
	nw.Disconnect(h, 0)
	if l.Up {
		t.Fatal("disconnected link still up")
	}
	if nw.Node(h).Ports[0] != nil || nw.Node(sw).Ports[2] != nil {
		t.Fatal("ports still wired after disconnect")
	}
	nw.Connect(h, 0, sw, 3)
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKillAndRestoreLink(t *testing.T) {
	nw, hosts := Star(2)
	l := nw.Node(hosts[0]).Ports[0]
	if !nw.LinkUsable(l) {
		t.Fatal("fresh link should be usable")
	}
	nw.KillLink(l)
	if nw.LinkUsable(l) {
		t.Fatal("killed link should be unusable")
	}
	if n, _ := nw.Neighbor(hosts[0], 0); n != None {
		t.Fatal("neighbor across killed link should be None")
	}
	nw.RestoreLink(l)
	if !nw.LinkUsable(l) {
		t.Fatal("restored link should be usable")
	}
}

func TestKillSwitchDisablesLinks(t *testing.T) {
	nw, hosts := Star(2)
	sw := nw.Switches()[0]
	nw.KillSwitch(sw)
	if nw.LinkUsable(nw.Node(hosts[0]).Ports[0]) {
		t.Fatal("link into a dead switch should be unusable")
	}
	nw.RestoreSwitch(sw)
	if !nw.LinkUsable(nw.Node(hosts[0]).Ports[0]) {
		t.Fatal("link should be usable after switch restore")
	}
}

func TestKillSwitchKeepsKilledLinksDown(t *testing.T) {
	// RestoreSwitch revives the switch, not its independently killed
	// links: a dead cable stays dead through a switch power cycle.
	nw, hosts := Star(3)
	sw := nw.Switches()[0]
	l := nw.Node(hosts[0]).Ports[0]
	nw.KillLink(l)
	nw.KillSwitch(sw)
	nw.RestoreSwitch(sw)
	if nw.LinkUsable(l) {
		t.Fatal("killed link usable after switch restore")
	}
	if !nw.LinkUsable(nw.Node(hosts[1]).Ports[0]) {
		t.Fatal("healthy link unusable after switch restore")
	}
	nw.RestoreLink(l)
	if !nw.LinkUsable(l) {
		t.Fatal("link unusable after both restores")
	}
}

func TestKillSwitchOnHostPanics(t *testing.T) {
	nw, hosts := Star(2)
	defer func() {
		if recover() == nil {
			t.Fatal("KillSwitch on a host should panic")
		}
	}()
	nw.KillSwitch(hosts[0])
}

func TestMoveHost(t *testing.T) {
	nw, hosts := DoubleStar(4)
	sws := nw.Switches()
	// host0 starts on sw0; move it to sw1.
	n, _ := nw.Neighbor(hosts[0], 0)
	if n != sws[0] {
		t.Fatalf("host0 initially on %v, want sw0", n)
	}
	p := nw.Node(sws[1]).FreePort()
	nw.MoveHost(hosts[0], sws[1], p)
	n, _ = nw.Neighbor(hosts[0], 0)
	if n != sws[1] {
		t.Fatalf("host0 on %v after move, want sw1", n)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveHostRoundTrip(t *testing.T) {
	// Moving a host away and back leaves a structurally valid network,
	// and the vacated port is reusable in between.
	nw, hosts := DoubleStar(4)
	sws := nw.Switches()
	origPort := nw.Node(hosts[0]).Ports[0].Other(hosts[0]).Port
	nw.MoveHost(hosts[0], sws[1], nw.Node(sws[1]).FreePort())
	if nw.Node(sws[0]).Ports[origPort] != nil {
		t.Fatal("vacated port still wired")
	}
	nw.MoveHost(hosts[0], sws[0], origPort)
	if n, _ := nw.Neighbor(hosts[0], 0); n != sws[0] {
		t.Fatalf("host on %v after round trip, want sw0", n)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveHostOnSwitchPanics(t *testing.T) {
	nw, _ := DoubleStar(4)
	sws := nw.Switches()
	defer func() {
		if recover() == nil {
			t.Fatal("MoveHost on a switch should panic")
		}
	}()
	nw.MoveHost(sws[0], sws[1], 0)
}

func TestChain(t *testing.T) {
	nw, hosts := Chain(4, 2, 2)
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(nw.Switches()) != 4 {
		t.Fatalf("switches = %d, want 4", len(nw.Switches()))
	}
	total := 0
	for _, hs := range hosts {
		total += len(hs)
	}
	if total != 8 {
		t.Fatalf("hosts = %d, want 8", total)
	}
	// Adjacent switches have 2 parallel links: 3 gaps * 2 + 8 host links.
	if len(nw.Links) != 14 {
		t.Fatalf("links = %d, want 14", len(nw.Links))
	}
}

func TestRing(t *testing.T) {
	nw, _ := Ring(4, 1)
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	// 4 ring links + 4 host links.
	if len(nw.Links) != 8 {
		t.Fatalf("links = %d, want 8", len(nw.Links))
	}
}

func TestFig2Structure(t *testing.T) {
	f := NewFig2()
	if err := f.Net.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := f.Net.Node(f.Switches[0]).Radix(); got != 16 {
		t.Fatalf("S0 radix = %d, want 16", got)
	}
	if got := f.Net.Node(f.Switches[2]).Radix(); got != 8 {
		t.Fatalf("S2 radix = %d, want 8", got)
	}
	// Backbone redundancy: two links between each adjacent switch pair.
	count := func(a, b NodeID) int {
		c := 0
		for _, l := range f.Net.Links {
			if (l.A.Node == a && l.B.Node == b) || (l.A.Node == b && l.B.Node == a) {
				c++
			}
		}
		return c
	}
	for i := 0; i < 3; i++ {
		if c := count(f.Switches[i], f.Switches[i+1]); c != 2 {
			t.Fatalf("S%d-S%d has %d links, want 2", i, i+1, c)
		}
	}
	if f.Mapper == f.Targets[0] {
		t.Fatal("mapper and 1-hop target must differ")
	}
}

func TestRandomConnectedAndDeterministic(t *testing.T) {
	build := func() string {
		nw, _ := Random(10, 5, 8, 3.0, 77)
		return nw.String()
	}
	if build() != build() {
		t.Fatal("Random topology not deterministic for fixed seed")
	}
	nw, hosts := Random(10, 5, 8, 3.0, 77)
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(hosts) == 0 {
		t.Fatal("no hosts placed")
	}
	// Connectivity: BFS from first host must reach all nodes that are up.
	seen := map[NodeID]bool{hosts[0]: true}
	queue := []NodeID{hosts[0]}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		n := nw.Node(cur)
		for p := 0; p < n.Radix(); p++ {
			if nb, _ := nw.Neighbor(cur, p); nb != None && !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	if len(seen) != len(nw.Nodes) {
		t.Fatalf("reached %d of %d nodes", len(seen), len(nw.Nodes))
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	nw, hosts := Star(2)
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corrupt: unplug one side without retiring the link.
	nw.Node(hosts[0]).Ports[0] = nil
	if err := nw.Validate(); err == nil {
		t.Fatal("Validate missed a dangling link")
	}
}

func TestStringRendering(t *testing.T) {
	nw, _ := Star(2)
	s := nw.String()
	for _, want := range []string{"sw0", "host0", "host1", "switch"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestPropertyStarAlwaysValid(t *testing.T) {
	f := func(n uint8) bool {
		size := int(n%30) + 1
		nw, hosts := Star(size)
		return nw.Validate() == nil && len(hosts) == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyChainValid(t *testing.T) {
	f := func(k, h, w uint8) bool {
		nw, _ := Chain(int(k%5)+1, int(h%4), int(w%3)+1)
		return nw.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRandomShardSeedDiscipline is the regression gate for Random's RNG
// derivation: the builder must draw from rand seeded with
// parsim.ShardSeed(seed, 0) — the same per-shard discipline the parallel
// engine applies to its kernels — so a randomized topology replays
// identically no matter which engine or worker count hosts it. The test
// replays the spanning-tree draws from the disciplined stream and checks
// the wiring matches; a revert to plain rand.NewSource(seed) changes the
// choices and fails both assertions.
func TestRandomShardSeedDiscipline(t *testing.T) {
	const seed = 77
	nw, _ := Random(0, 8, 8, 2.0, seed)
	sws := nw.Switches()
	peers := func(rng *rand.Rand) []NodeID {
		out := make([]NodeID, len(sws))
		for i := 1; i < len(sws); i++ {
			out[i] = sws[rng.Intn(i)]
		}
		return out
	}
	want := peers(rand.New(rand.NewSource(parsim.ShardSeed(seed, 0))))
	for i := 1; i < len(sws); i++ {
		// Switch i's spanning-tree link is its first wired port: nothing
		// touches switch i before its own tree step, and extra links come
		// only after the tree is complete.
		l := nw.Node(sws[i]).Ports[0]
		if l == nil {
			t.Fatalf("switch %d has no tree link", i)
		}
		if got := l.Other(sws[i]).Node; got != want[i] {
			t.Fatalf("switch %d tree peer = %d, want %d (ShardSeed discipline broken)",
				i, got, want[i])
		}
	}
	// And the disciplined stream must actually differ from the raw seed —
	// otherwise this test could not detect the revert it exists to catch.
	raw := peers(rand.New(rand.NewSource(seed)))
	same := true
	for i := range raw {
		if raw[i] != want[i] {
			same = false
		}
	}
	if same {
		t.Fatal("ShardSeed(seed, 0) stream indistinguishable from raw seed stream")
	}
}
