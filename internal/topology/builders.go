package topology

import (
	"fmt"
	"math/rand"

	"sanft/internal/parsim"
)

// Star builds the micro-benchmark topology: n hosts on a single full
// crossbar switch (radix is rounded up to at least n). Returns the network
// and the host IDs.
func Star(n int) (*Network, []NodeID) {
	if n < 1 {
		panic("topology: star needs at least one host")
	}
	radix := n
	if radix < 8 {
		radix = 8
	}
	nw := New()
	sw := nw.AddSwitch("sw0", radix)
	hosts := make([]NodeID, n)
	for i := range hosts {
		h := nw.AddHost(fmt.Sprintf("host%d", i))
		nw.Connect(h, 0, sw, i)
		hosts[i] = h
	}
	return nw, hosts
}

// Chain builds k switches in a line, each pair joined by `width` parallel
// links, with hostsPer hosts on each switch. Parallel links provide the
// redundancy that permanent-failure experiments exercise.
func Chain(k, hostsPer, width int) (*Network, [][]NodeID) {
	if k < 1 || hostsPer < 0 || width < 1 {
		panic("topology: bad chain parameters")
	}
	radix := hostsPer + 2*width
	if radix < 4 {
		radix = 4
	}
	nw := New()
	sws := make([]NodeID, k)
	for i := range sws {
		sws[i] = nw.AddSwitch(fmt.Sprintf("sw%d", i), radix)
	}
	for i := 0; i+1 < k; i++ {
		for w := 0; w < width; w++ {
			nw.ConnectAny(sws[i], sws[i+1])
		}
	}
	hosts := make([][]NodeID, k)
	for i, sw := range sws {
		for j := 0; j < hostsPer; j++ {
			h := nw.AddHost(fmt.Sprintf("h%d_%d", i, j))
			nw.ConnectAny(h, sw)
			hosts[i] = append(hosts[i], h)
		}
	}
	return nw, hosts
}

// Ring builds k switches in a cycle (one link per adjacent pair) with
// hostsPer hosts each. Rings admit cyclic channel dependencies, so routes
// chosen without regard to deadlock freedom can genuinely deadlock — used
// by the deadlock-recovery tests.
func Ring(k, hostsPer int) (*Network, [][]NodeID) {
	if k < 3 {
		panic("topology: ring needs at least 3 switches")
	}
	radix := hostsPer + 2
	if radix < 4 {
		radix = 4
	}
	nw := New()
	sws := make([]NodeID, k)
	for i := range sws {
		sws[i] = nw.AddSwitch(fmt.Sprintf("sw%d", i), radix)
	}
	for i := 0; i < k; i++ {
		nw.ConnectAny(sws[i], sws[(i+1)%k])
	}
	hosts := make([][]NodeID, k)
	for i, sw := range sws {
		for j := 0; j < hostsPer; j++ {
			h := nw.AddHost(fmt.Sprintf("h%d_%d", i, j))
			nw.ConnectAny(h, sw)
			hosts[i] = append(hosts[i], h)
		}
	}
	return nw, hosts
}

// Fig2 describes the paper's Figure 2 mapping testbed.
type Fig2 struct {
	Net *Network
	// Switches: two 16-port (S0, S1) and two 8-port (S2, S3) full
	// crossbars, joined in a chain with doubled (redundant) links:
	// S0==S1==S2==S3.
	Switches [4]NodeID
	// Mapper is the host that initiates on-demand mapping, attached to S0.
	Mapper NodeID
	// Targets[h] is a host whose shortest path from Mapper crosses h+1
	// switches (the paper's "# Hops (i.e. Links)" column, 1..4).
	Targets [4]NodeID
	// HostsAt[i] lists all hosts attached to switch i (including Mapper
	// and Targets).
	HostsAt [4][]NodeID
}

// NewFig2 builds the four-switch redundant tree used for the Table 3
// dynamic-mapping experiments: two 16-port and two 8-port full-crossbar
// switches with doubled inter-switch links (no single point of failure on
// the switch backbone), and hosts spread across all four switches. The
// mapper host sits on S0; target hosts sit at switch distances 1–4.
func NewFig2() *Fig2 {
	nw := New()
	f := &Fig2{Net: nw}
	f.Switches[0] = nw.AddSwitch("S0", 16)
	f.Switches[1] = nw.AddSwitch("S1", 16)
	f.Switches[2] = nw.AddSwitch("S2", 8)
	f.Switches[3] = nw.AddSwitch("S3", 8)
	// Redundant backbone: two parallel links between each adjacent pair.
	for i := 0; i < 3; i++ {
		nw.ConnectAny(f.Switches[i], f.Switches[i+1])
		nw.ConnectAny(f.Switches[i], f.Switches[i+1])
	}
	hostsPer := [4]int{8, 8, 4, 4}
	for i, sw := range f.Switches {
		for j := 0; j < hostsPer[i]; j++ {
			h := nw.AddHost(fmt.Sprintf("n%d_%d", i, j))
			nw.ConnectAny(h, sw)
			f.HostsAt[i] = append(f.HostsAt[i], h)
		}
	}
	f.Mapper = f.HostsAt[0][0]
	f.Targets[0] = f.HostsAt[0][1] // same switch: 1 switch on path
	f.Targets[1] = f.HostsAt[1][0]
	f.Targets[2] = f.HostsAt[2][0]
	f.Targets[3] = f.HostsAt[3][0]
	return f
}

// DoubleStar builds two switches joined by two parallel links with half the
// hosts on each — the smallest topology with full path redundancy, used by
// the failover example.
func DoubleStar(nHosts int) (*Network, []NodeID) {
	if nHosts < 2 {
		panic("topology: double star needs at least 2 hosts")
	}
	per := (nHosts + 1) / 2
	radix := per + 2
	if radix < 8 {
		radix = 8
	}
	nw := New()
	s0 := nw.AddSwitch("sw0", radix)
	s1 := nw.AddSwitch("sw1", radix)
	nw.ConnectAny(s0, s1)
	nw.ConnectAny(s0, s1)
	hosts := make([]NodeID, nHosts)
	for i := range hosts {
		h := nw.AddHost(fmt.Sprintf("host%d", i))
		sw := s0
		if i >= per {
			sw = s1
		}
		nw.ConnectAny(h, sw)
		hosts[i] = h
	}
	return nw, hosts
}

// Random builds a connected random topology with nSwitches switches of the
// given radix and nHosts hosts attached to random switches. Extra random
// switch-to-switch links are added until avgDegree is reached (or ports run
// out). Deterministic for a given seed.
//
// The seed is finalized through parsim.ShardSeed — the same per-shard RNG
// discipline every engine component uses — rather than fed to math/rand
// raw, so adjacent seeds (the common "replica i uses seed base+i" pattern
// under the sharded engine and campaign grids) draw from uncorrelated
// streams and a topology built inside any shard is reproducible from
// (seed) alone.
func Random(nHosts, nSwitches, radix int, avgDegree float64, seed int64) (*Network, []NodeID) {
	if nSwitches < 1 || nHosts < 0 {
		panic("topology: bad random parameters")
	}
	rng := rand.New(rand.NewSource(parsim.ShardSeed(seed, 0)))
	nw := New()
	sws := make([]NodeID, nSwitches)
	for i := range sws {
		sws[i] = nw.AddSwitch(fmt.Sprintf("sw%d", i), radix)
	}
	// Random spanning tree first, to guarantee connectivity.
	for i := 1; i < nSwitches; i++ {
		j := rng.Intn(i)
		nw.ConnectAny(sws[i], sws[j])
	}
	// Extra links up to the requested average switch degree.
	target := int(avgDegree*float64(nSwitches)/2) - (nSwitches - 1)
	for e := 0; e < target; e++ {
		a, b := rng.Intn(nSwitches), rng.Intn(nSwitches)
		if a == b {
			continue
		}
		if nw.Node(sws[a]).FreePort() < 0 || nw.Node(sws[b]).FreePort() < 0 {
			continue
		}
		nw.ConnectAny(sws[a], sws[b])
	}
	hosts := make([]NodeID, 0, nHosts)
	for i := 0; i < nHosts; i++ {
		sw := sws[rng.Intn(nSwitches)]
		if nw.Node(sw).FreePort() < 0 {
			// Find any switch with a free port.
			found := false
			for _, s := range sws {
				if nw.Node(s).FreePort() >= 0 {
					sw, found = s, true
					break
				}
			}
			if !found {
				break
			}
		}
		h := nw.AddHost(fmt.Sprintf("host%d", i))
		nw.ConnectAny(h, sw)
		hosts = append(hosts, h)
	}
	return nw, hosts
}
