package topology

import (
	"fmt"
	"sort"
)

// This file holds the datacenter-scale builders: three-tier Clos (fat-tree),
// dragonfly, and k-ary n-dimensional torus fabrics. Unlike the paper-scale
// builders (Star, Chain, Fig2) these return a structured handle alongside
// the network, so failure scenarios can target structural link classes —
// "all uplinks of pod 3", "one global link per group", "every +x link of
// dimension 1" — instead of raw link IDs.
//
// All builders wire with ConnectAny in a fixed construction order, so node
// IDs, link IDs, and port assignments are fully determined by the
// parameters: two calls with equal arguments produce identical networks.

// ---------------------------------------------------------------------------
// Fat-tree (3-tier folded Clos)
// ---------------------------------------------------------------------------

// FatTreeNet is the structural handle for a k-ary fat-tree: k pods of k/2
// edge and k/2 aggregation switches each, (k/2)² core switches, k³/4 hosts.
type FatTreeNet struct {
	Net *Network
	K   int

	// Hosts lists every host in pod-major order: pod 0's hosts first
	// (edge switch by edge switch), then pod 1's, and so on. Contiguous
	// ranges of this slice are physically local, which keeps the sharded
	// engine's cross-shard lookahead large.
	Hosts []NodeID
	// PodHosts[p] lists pod p's hosts (edge-switch major).
	PodHosts [][]NodeID
	// Edge[p] and Agg[p] list pod p's edge and aggregation switches.
	Edge [][]NodeID
	Agg  [][]NodeID
	// Core lists the (k/2)² core switches; core j*(k/2)+i belongs to core
	// group j and connects to aggregation switch j of every pod.
	Core []NodeID

	edgeUp [][]*Link // [pod] edge→agg links
	aggUp  [][]*Link // [pod] agg→core links
}

// FatTree builds a k-ary three-tier fat-tree (k even, k ≥ 2):
// k³/4 hosts, 5k²/4 switches of radix k, 3k³/4 links.
// FatTree(8) is 128 hosts; FatTree(16) is 1024 hosts.
func FatTree(k int) *FatTreeNet {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topology: fat-tree arity %d must be even and >= 2", k))
	}
	half := k / 2
	nw := New()
	f := &FatTreeNet{Net: nw, K: k}

	// Core layer first: (k/2)² switches, one port per pod.
	f.Core = make([]NodeID, half*half)
	for c := range f.Core {
		f.Core[c] = nw.AddSwitch(fmt.Sprintf("core%d", c), k)
	}

	f.Edge = make([][]NodeID, k)
	f.Agg = make([][]NodeID, k)
	f.PodHosts = make([][]NodeID, k)
	f.edgeUp = make([][]*Link, k)
	f.aggUp = make([][]*Link, k)
	for p := 0; p < k; p++ {
		for a := 0; a < half; a++ {
			f.Agg[p] = append(f.Agg[p], nw.AddSwitch(fmt.Sprintf("agg%d_%d", p, a), k))
		}
		for e := 0; e < half; e++ {
			f.Edge[p] = append(f.Edge[p], nw.AddSwitch(fmt.Sprintf("edge%d_%d", p, e), k))
		}
		// Hosts before uplinks, so every edge switch carries its hosts on
		// ports 0..k/2-1 and its aggregation uplinks on ports k/2..k-1.
		for e := 0; e < half; e++ {
			for h := 0; h < half; h++ {
				id := nw.AddHost(fmt.Sprintf("h%d_%d_%d", p, e, h))
				nw.ConnectAny(id, f.Edge[p][e])
				f.PodHosts[p] = append(f.PodHosts[p], id)
				f.Hosts = append(f.Hosts, id)
			}
		}
		// Full bipartite edge↔agg mesh inside the pod.
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				f.edgeUp[p] = append(f.edgeUp[p], nw.ConnectAny(f.Edge[p][e], f.Agg[p][a]))
			}
		}
		// Aggregation switch a serves core group a: cores a*k/2..a*k/2+k/2-1.
		for a := 0; a < half; a++ {
			for i := 0; i < half; i++ {
				f.aggUp[p] = append(f.aggUp[p], nw.ConnectAny(f.Agg[p][a], f.Core[a*half+i]))
			}
		}
	}
	return f
}

// PodUplinks returns pod p's aggregation→core links — cutting all of them
// isolates the pod from inter-pod traffic.
func (f *FatTreeNet) PodUplinks(p int) []*Link { return f.aggUp[p] }

// EdgeUplinks returns pod p's edge→aggregation links.
func (f *FatTreeNet) EdgeUplinks(p int) []*Link { return f.edgeUp[p] }

// TrunkLinks returns every switch-to-switch link (edge→agg and agg→core for
// all pods) in link-ID order — the natural target set for fabric-wide flap
// storms that must never touch host NIC links.
func (f *FatTreeNet) TrunkLinks() []*Link {
	var ls []*Link
	for p := 0; p < f.K; p++ {
		ls = append(ls, f.edgeUp[p]...)
		ls = append(ls, f.aggUp[p]...)
	}
	sortLinksByID(ls)
	return ls
}

// ---------------------------------------------------------------------------
// Dragonfly
// ---------------------------------------------------------------------------

// DragonflyNet is the structural handle for a dragonfly(a, p, h) fabric:
// groups of a routers, p hosts per router, h global ports per router, and
// the canonical maximum group count g = a·h + 1 so every pair of groups is
// joined by exactly one global link.
type DragonflyNet struct {
	Net     *Network
	A, P, H int
	Groups  int

	Hosts []NodeID
	// GroupHosts[g] lists group g's hosts (router-major).
	GroupHosts [][]NodeID
	// Routers[g] lists group g's a routers.
	Routers [][]NodeID

	local  [][]*Link // [group] intra-group mesh links
	global [][]*Link // [group] global links touching the group, peer-group order
	pair   map[[2]int]*Link
}

// Dragonfly builds a dragonfly fabric with a routers per group, p hosts per
// router, h global links per router, and g = a·h+1 groups (the balanced
// all-to-all arrangement). Router radix is p + (a-1) + h.
// Dragonfly(4, 2, 2) is 72 hosts; Dragonfly(8, 4, 4) is 1056 hosts.
func Dragonfly(a, p, h int) *DragonflyNet {
	if a < 1 || p < 1 || h < 1 {
		panic(fmt.Sprintf("topology: bad dragonfly parameters a=%d p=%d h=%d", a, p, h))
	}
	g := a*h + 1
	nw := New()
	d := &DragonflyNet{
		Net: nw, A: a, P: p, H: h, Groups: g,
		GroupHosts: make([][]NodeID, g),
		Routers:    make([][]NodeID, g),
		local:      make([][]*Link, g),
		global:     make([][]*Link, g),
		pair:       make(map[[2]int]*Link),
	}
	radix := p + (a - 1) + h
	if radix < 2 {
		radix = 2
	}
	for gi := 0; gi < g; gi++ {
		for r := 0; r < a; r++ {
			d.Routers[gi] = append(d.Routers[gi], nw.AddSwitch(fmt.Sprintf("r%d_%d", gi, r), radix))
		}
		for r := 0; r < a; r++ {
			for i := 0; i < p; i++ {
				id := nw.AddHost(fmt.Sprintf("h%d_%d_%d", gi, r, i))
				nw.ConnectAny(id, d.Routers[gi][r])
				d.GroupHosts[gi] = append(d.GroupHosts[gi], id)
				d.Hosts = append(d.Hosts, id)
			}
		}
		// Intra-group full mesh.
		for s := 0; s < a; s++ {
			for t := s + 1; t < a; t++ {
				d.local[gi] = append(d.local[gi], nw.ConnectAny(d.Routers[gi][s], d.Routers[gi][t]))
			}
		}
	}
	// Global all-to-all: groups i<j joined once. Group i reaches group j
	// through its global slot j-i-1; a slot s lives on router s/h. Each
	// group's a·h slots are used exactly once, so per-router global port
	// budgets balance at h.
	for i := 0; i < g; i++ {
		for j := i + 1; j < g; j++ {
			si := j - i - 1
			sj := g - (j - i) - 1
			l := nw.ConnectAny(d.Routers[i][si/h], d.Routers[j][sj/h])
			d.pair[[2]int{i, j}] = l
			d.global[i] = append(d.global[i], l)
			d.global[j] = append(d.global[j], l)
		}
	}
	for gi := range d.global {
		sortLinksByID(d.global[gi])
	}
	return d
}

// GlobalLinks returns every global link touching group g, in link-ID order.
// GlobalLinks(g)[0] is the deterministic "one global link per group" pick.
func (d *DragonflyNet) GlobalLinks(g int) []*Link { return d.global[g] }

// GlobalLink returns the unique global link joining groups i and j.
func (d *DragonflyNet) GlobalLink(i, j int) *Link {
	if i > j {
		i, j = j, i
	}
	return d.pair[[2]int{i, j}]
}

// LocalLinks returns group g's intra-group mesh links.
func (d *DragonflyNet) LocalLinks(g int) []*Link { return d.local[g] }

// TrunkLinks returns every switch-to-switch link (local meshes then the
// global all-to-all) in link-ID order.
func (d *DragonflyNet) TrunkLinks() []*Link {
	var ls []*Link
	for gi := 0; gi < d.Groups; gi++ {
		ls = append(ls, d.local[gi]...)
	}
	for _, l := range d.pair {
		ls = append(ls, l)
	}
	sortLinksByID(ls)
	return ls
}

// ---------------------------------------------------------------------------
// Torus
// ---------------------------------------------------------------------------

// TorusNet is the structural handle for a k-ary n-dimensional torus of
// switches with hostsPer hosts on each switch.
type TorusNet struct {
	Net      *Network
	Dims     []int
	HostsPer int

	Hosts []NodeID
	// Switches is coordinate-indexed in row-major order (last dimension
	// fastest); use At to translate coordinates.
	Switches []NodeID
	// SwitchHosts[i] lists the hosts on Switches[i].
	SwitchHosts [][]NodeID

	dimLinks [][]*Link // [dim] all +1-direction links along that dimension
	stride   []int
}

// Torus builds an n-dimensional torus: one switch per coordinate of the
// dims box, wrapped in every dimension, with hostsPer hosts on each switch.
// Every dimension must be ≥ 2; dimensions of size 2 get doubled (redundant)
// links, one from each side of the wrap. Switch radix is
// hostsPer + 2·len(dims). Torus(4, 16, 16) is 1024 hosts.
func Torus(hostsPer int, dims ...int) *TorusNet {
	if hostsPer < 0 || len(dims) == 0 {
		panic("topology: torus needs hostsPer >= 0 and at least one dimension")
	}
	n := 1
	for _, d := range dims {
		if d < 2 {
			panic(fmt.Sprintf("topology: torus dimension %d < 2", d))
		}
		n *= d
	}
	nw := New()
	t := &TorusNet{
		Net: nw, Dims: append([]int(nil), dims...), HostsPer: hostsPer,
		SwitchHosts: make([][]NodeID, n),
		dimLinks:    make([][]*Link, len(dims)),
		stride:      make([]int, len(dims)),
	}
	s := 1
	for d := len(dims) - 1; d >= 0; d-- {
		t.stride[d] = s
		s *= dims[d]
	}
	radix := hostsPer + 2*len(dims)
	if radix < 2 {
		radix = 2
	}
	for i := 0; i < n; i++ {
		t.Switches = append(t.Switches, nw.AddSwitch(fmt.Sprintf("sw%s", coordName(t.coord(i))), radix))
	}
	for i, sw := range t.Switches {
		for h := 0; h < hostsPer; h++ {
			id := nw.AddHost(fmt.Sprintf("h%s_%d", coordName(t.coord(i)), h))
			nw.ConnectAny(id, sw)
			t.SwitchHosts[i] = append(t.SwitchHosts[i], id)
			t.Hosts = append(t.Hosts, id)
		}
	}
	// Each switch wires its +1 neighbor in every dimension; the wraparound
	// closes each ring. Size-2 dimensions produce two parallel links per
	// pair (one initiated from each side), i.e. built-in redundancy.
	for i := range t.Switches {
		c := t.coord(i)
		for d := range dims {
			nc := append([]int(nil), c...)
			nc[d] = (nc[d] + 1) % dims[d]
			l := nw.ConnectAny(t.Switches[i], t.At(nc...))
			t.dimLinks[d] = append(t.dimLinks[d], l)
		}
	}
	return t
}

// At returns the switch at the given coordinate.
func (t *TorusNet) At(coord ...int) NodeID {
	if len(coord) != len(t.Dims) {
		panic(fmt.Sprintf("topology: torus coordinate %v needs %d dimensions", coord, len(t.Dims)))
	}
	i := 0
	for d, c := range coord {
		if c < 0 || c >= t.Dims[d] {
			panic(fmt.Sprintf("topology: torus coordinate %v out of range %v", coord, t.Dims))
		}
		i += c * t.stride[d]
	}
	return t.Switches[i]
}

// HostsAt returns the hosts attached to the switch at the given coordinate.
func (t *TorusNet) HostsAt(coord ...int) []NodeID {
	i := 0
	for d, c := range coord {
		i += c * t.stride[d]
	}
	_ = t.At(coord...) // bounds check
	return t.SwitchHosts[i]
}

// DimLinks returns every switch-to-switch link running along dimension d —
// the target set for "cut one whole dimension" scenarios.
func (t *TorusNet) DimLinks(d int) []*Link {
	ls := append([]*Link(nil), t.dimLinks[d]...)
	sortLinksByID(ls)
	return ls
}

// TrunkLinks returns every switch-to-switch link across all dimensions in
// link-ID order.
func (t *TorusNet) TrunkLinks() []*Link {
	var ls []*Link
	for d := range t.dimLinks {
		ls = append(ls, t.dimLinks[d]...)
	}
	sortLinksByID(ls)
	return ls
}

func (t *TorusNet) coord(i int) []int {
	c := make([]int, len(t.Dims))
	for d := range t.Dims {
		c[d] = (i / t.stride[d]) % t.Dims[d]
	}
	return c
}

func coordName(c []int) string {
	s := ""
	for d, v := range c {
		if d > 0 {
			s += "_"
		}
		s += fmt.Sprint(v)
	}
	return s
}

func sortLinksByID(ls []*Link) {
	sort.Slice(ls, func(i, j int) bool { return ls[i].ID < ls[j].ID })
}
