// Package topology models the physical structure of a system area network:
// hosts with single-port NICs, full-crossbar switches, and full-duplex
// point-to-point links, in arbitrary topologies (SANs, unlike LANs or
// parallel-machine interconnects, support arbitrary wiring).
//
// The package also provides builders for the topologies used in the paper's
// evaluation — in particular the four-switch redundant tree of Figure 2
// (two 16-port and two 8-port full-crossbar switches) used for the dynamic
// mapping experiments of Table 3 — and mutation operations (permanent link
// and switch failures, moving a host to a different port) that drive the
// permanent-failure experiments.
package topology

import (
	"fmt"
	"strings"
)

// NodeID identifies a node (host or switch) within a Network.
type NodeID int

// None is the invalid NodeID.
const None NodeID = -1

// Kind distinguishes hosts from switches.
type Kind int

const (
	// Host is an end node: a PC with a NIC. Hosts have exactly one port.
	Host Kind = iota
	// Switch is a full-crossbar switching element. Switches have no
	// network-visible identity (as in Myrinet); mapping protocols must
	// fingerprint them by what is reachable through their ports.
	Switch
)

func (k Kind) String() string {
	switch k {
	case Host:
		return "host"
	case Switch:
		return "switch"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node is a host or switch. Ports are numbered 0..len(Ports)-1; a nil entry
// means the port is unwired.
type Node struct {
	ID    NodeID
	Kind  Kind
	Name  string
	Ports []*Link

	// Up is false when the node has suffered a permanent failure
	// (switches only; host failures are out of scope, per the paper).
	Up bool
}

// Radix returns the number of ports on the node.
func (n *Node) Radix() int { return len(n.Ports) }

// UsedPorts returns the indices of wired ports.
func (n *Node) UsedPorts() []int {
	var ps []int
	for i, l := range n.Ports {
		if l != nil {
			ps = append(ps, i)
		}
	}
	return ps
}

// FreePort returns the lowest unwired port index, or -1 if none.
func (n *Node) FreePort() int {
	for i, l := range n.Ports {
		if l == nil {
			return i
		}
	}
	return -1
}

// Link is a full-duplex cable between two node ports.
type Link struct {
	ID   int
	A, B Endpoint
	// Up is false when the link has suffered a permanent failure.
	Up bool
}

// Endpoint is one end of a link: a node and the port it plugs into.
type Endpoint struct {
	Node NodeID
	Port int
}

// Other returns the endpoint at the far side of the link from node id.
func (l *Link) Other(id NodeID) Endpoint {
	if l.A.Node == id {
		return l.B
	}
	return l.A
}

// Network is a SAN wiring diagram. The zero value is an empty network; use
// AddHost/AddSwitch/Connect to populate it.
type Network struct {
	Nodes []*Node
	Links []*Link
}

// New returns an empty network.
func New() *Network { return &Network{} }

// AddHost adds a host with a single NIC port and returns its ID.
func (nw *Network) AddHost(name string) NodeID {
	id := NodeID(len(nw.Nodes))
	if name == "" {
		name = fmt.Sprintf("host%d", id)
	}
	nw.Nodes = append(nw.Nodes, &Node{ID: id, Kind: Host, Name: name, Ports: make([]*Link, 1), Up: true})
	return id
}

// AddSwitch adds a full-crossbar switch with the given radix and returns
// its ID.
func (nw *Network) AddSwitch(name string, radix int) NodeID {
	if radix < 2 {
		panic(fmt.Sprintf("topology: switch radix %d < 2", radix))
	}
	id := NodeID(len(nw.Nodes))
	if name == "" {
		name = fmt.Sprintf("sw%d", id)
	}
	nw.Nodes = append(nw.Nodes, &Node{ID: id, Kind: Switch, Name: name, Ports: make([]*Link, radix), Up: true})
	return id
}

// Node returns the node with the given ID.
func (nw *Network) Node(id NodeID) *Node {
	if id < 0 || int(id) >= len(nw.Nodes) {
		panic(fmt.Sprintf("topology: no node %d", id))
	}
	return nw.Nodes[id]
}

// Hosts returns the IDs of all hosts, in ID order.
func (nw *Network) Hosts() []NodeID {
	var hs []NodeID
	for _, n := range nw.Nodes {
		if n.Kind == Host {
			hs = append(hs, n.ID)
		}
	}
	return hs
}

// Switches returns the IDs of all switches, in ID order.
func (nw *Network) Switches() []NodeID {
	var ss []NodeID
	for _, n := range nw.Nodes {
		if n.Kind == Switch {
			ss = append(ss, n.ID)
		}
	}
	return ss
}

// Connect wires port pa of node a to port pb of node b and returns the new
// link. It panics if either port is out of range or already wired.
func (nw *Network) Connect(a NodeID, pa int, b NodeID, pb int) *Link {
	na, nb := nw.Node(a), nw.Node(b)
	if pa < 0 || pa >= na.Radix() {
		panic(fmt.Sprintf("topology: %s has no port %d", na.Name, pa))
	}
	if pb < 0 || pb >= nb.Radix() {
		panic(fmt.Sprintf("topology: %s has no port %d", nb.Name, pb))
	}
	if na.Ports[pa] != nil {
		panic(fmt.Sprintf("topology: %s port %d already wired", na.Name, pa))
	}
	if nb.Ports[pb] != nil {
		panic(fmt.Sprintf("topology: %s port %d already wired", nb.Name, pb))
	}
	l := &Link{ID: len(nw.Links), A: Endpoint{a, pa}, B: Endpoint{b, pb}, Up: true}
	nw.Links = append(nw.Links, l)
	na.Ports[pa] = l
	nb.Ports[pb] = l
	return l
}

// ConnectAny wires the lowest free ports of a and b together.
func (nw *Network) ConnectAny(a, b NodeID) *Link {
	pa, pb := nw.Node(a).FreePort(), nw.Node(b).FreePort()
	if pa < 0 || pb < 0 {
		panic(fmt.Sprintf("topology: no free ports connecting %d and %d", a, b))
	}
	return nw.Connect(a, pa, b, pb)
}

// Disconnect removes the link at node a's port pa (from both ends). The
// link object is retired (marked down and unwired) but keeps its ID.
func (nw *Network) Disconnect(a NodeID, pa int) *Link {
	na := nw.Node(a)
	l := na.Ports[pa]
	if l == nil {
		panic(fmt.Sprintf("topology: %s port %d not wired", na.Name, pa))
	}
	nw.Node(l.A.Node).Ports[l.A.Port] = nil
	nw.Node(l.B.Node).Ports[l.B.Port] = nil
	l.Up = false
	return l
}

// Clone returns a deep copy of the network: fresh Node and Link objects
// with identical IDs, names, wiring, and up/down state. The parallel
// engine gives each shard its own replica, so fault mutations (KillLink,
// KillSwitch, restores) on one shard's view never race with another
// shard's route walks. Link IDs index Links on both original and clone,
// so a fault schedule expressed as link IDs applies to any replica.
func (nw *Network) Clone() *Network {
	c := &Network{
		Nodes: make([]*Node, len(nw.Nodes)),
		Links: make([]*Link, len(nw.Links)),
	}
	for i, l := range nw.Links {
		cl := *l
		c.Links[i] = &cl
	}
	for i, n := range nw.Nodes {
		cn := &Node{ID: n.ID, Kind: n.Kind, Name: n.Name, Ports: make([]*Link, len(n.Ports)), Up: n.Up}
		for p, l := range n.Ports {
			if l != nil {
				cn.Ports[p] = c.Links[l.ID]
			}
		}
		c.Nodes[i] = cn
	}
	return c
}

// KillLink marks a link permanently failed. Traffic attempting to cross it
// is dropped by the fabric.
func (nw *Network) KillLink(l *Link) { l.Up = false }

// RestoreLink brings a failed (but still wired) link back up.
func (nw *Network) RestoreLink(l *Link) {
	if nw.Node(l.A.Node).Ports[l.A.Port] != l {
		panic("topology: cannot restore a disconnected link")
	}
	l.Up = true
}

// KillSwitch marks a switch permanently failed; all its links are
// effectively dead while it is down.
func (nw *Network) KillSwitch(id NodeID) {
	n := nw.Node(id)
	if n.Kind != Switch {
		panic(fmt.Sprintf("topology: %s is not a switch", n.Name))
	}
	n.Up = false
}

// RestoreSwitch brings a failed switch back up.
func (nw *Network) RestoreSwitch(id NodeID) { nw.Node(id).Up = true }

// LinkUsable reports whether a link can carry traffic: it must be up and
// both endpoint nodes up.
func (nw *Network) LinkUsable(l *Link) bool {
	return l != nil && l.Up && nw.Node(l.A.Node).Up && nw.Node(l.B.Node).Up
}

// MoveHost unplugs host h and rewires it to port newPort of switch sw,
// modeling the paper's dynamic-reconfiguration scenario ("a node is
// re-connected to a different location of the system").
func (nw *Network) MoveHost(h NodeID, sw NodeID, newPort int) *Link {
	n := nw.Node(h)
	if n.Kind != Host {
		panic(fmt.Sprintf("topology: %s is not a host", n.Name))
	}
	if n.Ports[0] != nil {
		nw.Disconnect(h, 0)
	}
	return nw.Connect(h, 0, sw, newPort)
}

// Neighbor returns the node and entry port reached by leaving node id
// through port p, or (None, -1) if the port is unwired or unusable.
func (nw *Network) Neighbor(id NodeID, p int) (NodeID, int) {
	n := nw.Node(id)
	if p < 0 || p >= n.Radix() {
		return None, -1
	}
	l := n.Ports[p]
	if !nw.LinkUsable(l) {
		return None, -1
	}
	e := l.Other(id)
	return e.Node, e.Port
}

// Validate checks structural invariants: link endpoints reference existing
// ports, port back-references match, hosts have radix 1.
func (nw *Network) Validate() error {
	for _, n := range nw.Nodes {
		if n.Kind == Host && n.Radix() != 1 {
			return fmt.Errorf("host %s has %d ports, want 1", n.Name, n.Radix())
		}
		for p, l := range n.Ports {
			if l == nil {
				continue
			}
			if l.A != (Endpoint{n.ID, p}) && l.B != (Endpoint{n.ID, p}) {
				return fmt.Errorf("%s port %d references link %d which does not reference it back", n.Name, p, l.ID)
			}
		}
	}
	for _, l := range nw.Links {
		for _, e := range []Endpoint{l.A, l.B} {
			if e.Node < 0 || int(e.Node) >= len(nw.Nodes) {
				return fmt.Errorf("link %d references missing node %d", l.ID, e.Node)
			}
			n := nw.Nodes[e.Node]
			if e.Port < 0 || e.Port >= n.Radix() {
				return fmt.Errorf("link %d references %s port %d out of range", l.ID, n.Name, e.Port)
			}
			if n.Ports[e.Port] != l && l.Up {
				return fmt.Errorf("link %d up but unplugged from %s port %d", l.ID, n.Name, e.Port)
			}
		}
	}
	return nil
}

// String renders a compact wiring summary, one node per line.
func (nw *Network) String() string {
	var b strings.Builder
	for _, n := range nw.Nodes {
		fmt.Fprintf(&b, "%-8s %-6s", n.Name, n.Kind)
		if !n.Up {
			b.WriteString(" DOWN")
		}
		for p, l := range n.Ports {
			if l == nil {
				continue
			}
			e := l.Other(n.ID)
			status := ""
			if !l.Up {
				status = "!"
			}
			fmt.Fprintf(&b, "  p%d->%s%s", p, nw.Nodes[e.Node].Name, status)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
