package topology

import (
	"fmt"
	"strconv"
	"strings"
)

// Built is the engine-facing view of a parsed topology spec: the network,
// its hosts in construction order, and the trunk (switch-to-switch) link
// set that fabric-wide failure scenarios target. Handle holds the builder's
// structured handle (*FatTreeNet, *DragonflyNet, or *TorusNet) for callers
// that need pod/group/coordinate indexing.
type Built struct {
	Net    *Network
	Hosts  []NodeID
	Trunks []*Link
	Kind   string
	Desc   string
	Handle any
}

// ParseSpec builds a datacenter topology from a CLI spec string:
//
//	fattree:K            k-ary 3-tier Clos        (fattree:8 = 128 hosts)
//	dragonfly:A,P,H      dragonfly, g = A·H+1     (dragonfly:8,4,4 = 1056 hosts)
//	torus:HP,D1,D2,...   torus, HP hosts/switch   (torus:4,16,16 = 1024 hosts)
//
// Parameters are validated here (with readable errors) rather than left to
// the builders' panics.
func ParseSpec(spec string) (*Built, error) {
	kind, rest, _ := strings.Cut(spec, ":")
	args, err := specInts(rest)
	if err != nil {
		return nil, fmt.Errorf("topology spec %q: %v", spec, err)
	}
	switch kind {
	case "fattree":
		if len(args) != 1 {
			return nil, fmt.Errorf("topology spec %q: want fattree:K", spec)
		}
		k := args[0]
		if k < 2 || k%2 != 0 {
			return nil, fmt.Errorf("topology spec %q: arity must be even and >= 2", spec)
		}
		f := FatTree(k)
		return &Built{
			Net: f.Net, Hosts: f.Hosts, Trunks: f.TrunkLinks(), Kind: kind,
			Desc:   fmt.Sprintf("fat-tree k=%d (%d hosts, %d switches)", k, len(f.Hosts), len(f.Core)+k*k),
			Handle: f,
		}, nil
	case "dragonfly":
		if len(args) != 3 {
			return nil, fmt.Errorf("topology spec %q: want dragonfly:A,P,H", spec)
		}
		a, p, h := args[0], args[1], args[2]
		if a < 1 || p < 1 || h < 1 {
			return nil, fmt.Errorf("topology spec %q: all parameters must be >= 1", spec)
		}
		d := Dragonfly(a, p, h)
		return &Built{
			Net: d.Net, Hosts: d.Hosts, Trunks: d.TrunkLinks(), Kind: kind,
			Desc:   fmt.Sprintf("dragonfly a=%d p=%d h=%d (%d groups, %d hosts)", a, p, h, d.Groups, len(d.Hosts)),
			Handle: d,
		}, nil
	case "torus":
		if len(args) < 3 {
			return nil, fmt.Errorf("topology spec %q: want torus:HOSTSPER,D1,D2[,...]", spec)
		}
		hp, dims := args[0], args[1:]
		if hp < 1 {
			return nil, fmt.Errorf("topology spec %q: hosts per switch must be >= 1", spec)
		}
		for _, d := range dims {
			if d < 2 {
				return nil, fmt.Errorf("topology spec %q: every dimension must be >= 2", spec)
			}
		}
		t := Torus(hp, dims...)
		return &Built{
			Net: t.Net, Hosts: t.Hosts, Trunks: t.TrunkLinks(), Kind: kind,
			Desc:   fmt.Sprintf("torus %v ×%d hosts/switch (%d hosts)", dims, hp, len(t.Hosts)),
			Handle: t,
		}, nil
	default:
		return nil, fmt.Errorf("topology spec %q: unknown kind (want fattree, dragonfly, or torus)", spec)
	}
}

func specInts(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("missing parameters")
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad parameter %q", p)
		}
		out[i] = v
	}
	return out, nil
}
