package mapping

import (
	"testing"
	"time"

	"sanft/internal/fabric"
	"sanft/internal/nic"
	"sanft/internal/retrans"
	"sanft/internal/sim"
	"sanft/internal/topology"
)

// The mapper's scale tier: probe-count budgets and a 1k-host benchmark on
// the datacenter builders. The interesting regression here is quadratic
// blow-up — a rescan that revisits known switches per new host, or a
// dedup miss (the hostless-switch case) that re-explores whole subtrees.

// scaleRig wires NICs (FT on) on every host without a *testing.T, so
// benchmarks can share it.
type scaleRig struct {
	k    *sim.Kernel
	nics map[topology.NodeID]*nic.NIC
}

func newScaleRig(nw *topology.Network, hosts []topology.NodeID) *scaleRig {
	k := sim.New(1)
	fab := fabric.New(k, nw, fabric.DefaultConfig())
	r := &scaleRig{k: k, nics: make(map[topology.NodeID]*nic.NIC)}
	for _, h := range hosts {
		r.nics[h] = nic.New(k, fab, h, nic.Options{
			FT:      true,
			Retrans: retrans.Config{QueueSize: 16, Interval: time.Millisecond},
		})
	}
	return r
}

// fullMapProbes maps the whole fabric from the first host and returns the
// probe stats. cfg.MaxRadix should be the fabric's true switch radix —
// what a caller that knows its hardware would configure.
func fullMapProbes(nw *topology.Network, hosts []topology.NodeID, cfg Config) (*Map, Stats, int) {
	r := newScaleRig(nw, hosts)
	m := New(r.k, r.nics[hosts[0]], cfg)
	var mp *Map
	var st Stats
	done := false
	r.k.Spawn("mapper", func(p *sim.Proc) {
		mp, st = m.FullMap(p)
		done = true
	})
	// Run in one-second virtual chunks and stop as soon as the mapper
	// finishes: with hundreds of NICs the idle retransmission timers alone
	// would otherwise burn tens of millions of kernel events.
	for i := 0; i < 600 && !done; i++ {
		r.k.RunFor(time.Second)
	}
	r.k.Stop()
	found := 0
	for _, h := range hosts {
		if h == hosts[0] {
			continue
		}
		if _, _, ok := mp.RouteTo(h); ok {
			found++
		}
	}
	return mp, st, found
}

// TestFullMapProbeBudget gates the mapper's probe complexity: growing a
// torus from 32 to 128 hosts (4×) must grow Stats.Total() clearly slower
// than quadratically (16×), and the absolute cost must stay under a
// generous linear budget of 40 probes per host.
func TestFullMapProbeBudget(t *testing.T) {
	small := topology.Torus(2, 4, 4) // 32 hosts, 16 switches
	big := topology.Torus(2, 8, 8)   // 128 hosts, 64 switches
	_, sSt, sFound := fullMapProbes(small.Net, small.Hosts, Config{MaxRadix: 6})
	_, bSt, bFound := fullMapProbes(big.Net, big.Hosts, Config{MaxRadix: 6})
	if sFound != len(small.Hosts)-1 || bFound != len(big.Hosts)-1 {
		t.Fatalf("incomplete maps: %d/%d and %d/%d hosts",
			sFound, len(small.Hosts)-1, bFound, len(big.Hosts)-1)
	}
	t.Logf("32 hosts: %d probes (%+v)", sSt.Total(), sSt)
	t.Logf("128 hosts: %d probes (%+v)", bSt.Total(), bSt)
	ratio := float64(bSt.Total()) / float64(sSt.Total())
	if ratio > 8 {
		t.Fatalf("4x hosts cost %.1fx probes — quadratic would be 16x, budget is 8x", ratio)
	}
	if budget := 40 * len(big.Hosts); bSt.Total() > budget {
		t.Fatalf("mapping 128 hosts took %d probes, budget %d (40/host)", bSt.Total(), budget)
	}
}

// TestFullMapHostlessTiers runs the same budget check on a Clos fabric,
// whose aggregation and core tiers carry no hosts: without echo-identity
// dedup every hostless switch is rediscovered once per path to it and the
// BFS explodes combinatorially.
func TestFullMapHostlessTiers(t *testing.T) {
	small := topology.FatTree(4) // 16 hosts, 20 switches
	big := topology.FatTree(8)   // 128 hosts, 80 switches
	_, sSt, sFound := fullMapProbes(small.Net, small.Hosts, Config{MaxRadix: 4})
	_, bSt, bFound := fullMapProbes(big.Net, big.Hosts, Config{MaxRadix: 8})
	if sFound != len(small.Hosts)-1 || bFound != len(big.Hosts)-1 {
		t.Fatalf("incomplete maps: %d/%d and %d/%d hosts",
			sFound, len(small.Hosts)-1, bFound, len(big.Hosts)-1)
	}
	t.Logf("fattree:4: %d probes (%+v)", sSt.Total(), sSt)
	t.Logf("fattree:8: %d probes (%+v)", bSt.Total(), bSt)
	// 8x hosts; quadratic would be 64x. The fabric also doubles in radix,
	// so allow an extra factor beyond the host ratio. The per-host constant
	// is higher than the torus budget because hostless-tier dedup is paid
	// in failed echo probes: each genuinely new aggregation/core switch is
	// echo-tested against every shallower hostless known before admission.
	if ratio := float64(bSt.Total()) / float64(sSt.Total()); ratio > 40 {
		t.Fatalf("8x hosts cost %.1fx probes — quadratic would be 64x, budget is 40x", ratio)
	}
	if budget := 160 * len(big.Hosts); bSt.Total() > budget {
		t.Fatalf("mapping 128 hosts took %d probes, budget %d (160/host)", bSt.Total(), budget)
	}
}

// BenchmarkFullMap1k maps a 1024-host torus (256 switches) end to end per
// iteration — the wall-clock cost of the mapper's data structures at
// datacenter scale.
func BenchmarkFullMap1k(b *testing.B) {
	tr := topology.Torus(4, 16, 16) // 1024 hosts, 256 switches
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, found := fullMapProbes(tr.Net, tr.Hosts, Config{MaxRadix: 8, MaxDepth: 33})
		if found != len(tr.Hosts)-1 {
			b.Fatalf("incomplete map: %d/%d hosts", found, len(tr.Hosts)-1)
		}
		b.ReportMetric(float64(st.Total()), "probes/op")
	}
}
