package mapping

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"sanft/internal/routing"
	"sanft/internal/sim"
	"sanft/internal/topology"
)

// mapOnce runs one fresh MapTo against a chain topology and returns a
// printable digest of everything the run produced.
func mapOnce(t *testing.T) string {
	t.Helper()
	nw, rows := topology.Chain(3, 3, 1)
	hosts := nw.Hosts()
	r := newRig(t, nw, hosts, false)
	mapper := rows[0][0]
	target := rows[2][2]
	m := New(r.k, r.nics[mapper], Config{})
	var fwd, rev routing.Route
	var st Stats
	var ok bool
	var mp *Map
	r.k.Spawn("mapper", func(p *sim.Proc) {
		mp, st = m.run(p, target)
		fwd, rev, ok = mp.RouteTo(target)
	})
	r.k.RunFor(5 * time.Second)
	r.k.Stop()
	if !ok {
		t.Fatalf("target not found; stats %+v", st)
	}
	var locs []string
	for h, loc := range mp.Hosts {
		locs = append(locs, fmt.Sprintf("host %d @ sw%d port%d", h, loc.sw, loc.port))
	}
	sort.Strings(locs)
	return fmt.Sprintf("fwd=%v rev=%v stats=%+v hosts=%v", fwd, rev, st, locs)
}

func TestMapToDeterministic(t *testing.T) {
	// Regression: adopting a discovered switch's fingerprint hosts used to
	// range over the port map directly, and the early return on finding the
	// target made HostsFound — and which hosts entered the map at all —
	// depend on Go's randomized map iteration order.
	want := mapOnce(t)
	for i := 1; i < 4; i++ {
		if got := mapOnce(t); got != want {
			t.Fatalf("run %d diverged:\n  first: %s\n  now:   %s", i, want, got)
		}
	}
}
