package mapping

import (
	"sort"

	"sanft/internal/proto"
	"sanft/internal/routing"
	"sanft/internal/sim"
	"sanft/internal/topology"
)

// ECMP-style multi-route extraction. A mapping run records every alternate
// adjacency it discovers (redundant links dedup to portSwitch entries
// instead of re-expanding the BFS), so the partial map is a graph over
// discovered switches, not just a tree. RoutesTo walks that graph to hand
// out up to k candidate routes per destination; the remap manager caches
// the alternates and, on the next failure, validates one with a single
// host probe instead of launching a full mapping run — the incremental
// per-destination remap that keeps a 1k-host failure storm from costing a
// thousand BFS floods.

// Candidate is one route to a destination plus the matching return route
// (destination → mapper) a route-update frame must carry.
type Candidate struct {
	Fwd routing.Route
	Rev routing.Route
}

// RoutesTo returns up to k candidate routes to host from the map's
// discovered-switch graph: the primary (BFS-prefix) route first, then
// alternates chosen shortest-first and greedily disjoint on discovered
// switch-to-switch adjacencies. Deterministic: ports scan in ascending
// order. Returns nil if the map does not contain host.
func (mp *Map) RoutesTo(host topology.NodeID, k int) []Candidate {
	loc, ok := mp.Hosts[host]
	if !ok || k < 1 {
		return nil
	}
	dst := mp.Switches[loc.sw]
	rev := dst.rev.Clone()
	out := []Candidate{{Fwd: append(dst.prefix.Clone(), loc.port), Rev: rev}}

	type edge struct {
		sw   int
		port int
	}
	used := make(map[edge]bool)
	// The primary route's adjacencies: walk its prefix through the graph.
	cur := 0
	for _, port := range dst.prefix {
		c, ok := mp.Switches[cur].ports[port]
		if !ok || c.kind != portSwitch {
			break // prefix edge outside the recorded graph (shouldn't happen)
		}
		used[edge{cur, port}] = true
		cur = c.sw
	}

	for len(out) < k {
		// BFS from the mapper's own switch (index 0) to loc.sw over unused
		// recorded adjacencies.
		type pred struct {
			sw   int
			port int
		}
		preds := make(map[int]pred)
		visited := map[int]bool{0: true}
		queue := []int{0}
		found := false
		for len(queue) > 0 && !found {
			si := queue[0]
			queue = queue[1:]
			s := mp.Switches[si]
			ports := make([]int, 0, len(s.ports))
			for q := range s.ports {
				ports = append(ports, q)
			}
			sort.Ints(ports)
			for _, q := range ports {
				c := s.ports[q]
				if c.kind != portSwitch || used[edge{si, q}] || visited[c.sw] {
					continue
				}
				visited[c.sw] = true
				preds[c.sw] = pred{si, q}
				if c.sw == loc.sw {
					found = true
					break
				}
				queue = append(queue, c.sw)
			}
		}
		if !found {
			break
		}
		// Reconstruct the port sequence and consume its edges.
		var rports []int
		for si := loc.sw; si != 0; {
			pr := preds[si]
			rports = append(rports, pr.port)
			used[edge{pr.sw, pr.port}] = true
			si = pr.sw
		}
		fwd := make(routing.Route, 0, len(rports)+1)
		for i := len(rports) - 1; i >= 0; i-- {
			fwd = append(fwd, rports[i])
		}
		fwd = append(fwd, loc.port)
		out = append(out, Candidate{Fwd: fwd, Rev: rev})
	}
	return out
}

// MapToK performs on-demand mapping toward target and extracts up to k
// candidate routes from the resulting partial map. MapToK(p, t, 1) costs
// exactly what MapTo costs — alternates are pure computation over the map,
// no extra probes.
func (m *Mapper) MapToK(p *sim.Proc, target topology.NodeID, k int) ([]Candidate, Stats, bool) {
	mp, st := m.run(p, target)
	cands := mp.RoutesTo(target, k)
	return cands, st, len(cands) > 0
}

// ProbeRoute validates a cached candidate with a single host probe: true
// iff a host answers at the end of cand.Fwd and it is dst. One probe
// (plus, on silence, one probe timeout) against a full mapping run — the
// cheap path of storm recovery.
func (m *Mapper) ProbeRoute(p *sim.Proc, dst topology.NodeID, cand Candidate) bool {
	var st Stats
	host, ok := m.probeHost(p, &st, cand.Fwd, cand.Rev)
	m.totals = m.totals.add(st)
	return ok && host == dst
}

// InstallCandidate makes cand the active route to dst: the route-update
// control frame (carrying the return route) goes out over the new path
// first, then the local path resets with a generation bump — the same
// install sequence Remap performs after a successful mapping run.
func (m *Mapper) InstallCandidate(dst topology.NodeID, cand Candidate) {
	upd := &proto.Frame{
		Type:  proto.FrameRouteUpdate,
		Dst:   dst,
		Probe: &proto.ProbePayload{Mapper: m.n.Node(), ReturnRoute: cand.Rev},
	}
	m.n.SendControl(upd, cand.Fwd)
	m.n.ResetPath(dst, cand.Fwd)
}

// RemapK is Remap with multi-route extraction: on success it additionally
// returns up to k candidates (primary first) for the caller to cache as
// failover alternates. RemapK(p, dst, 1) is exactly Remap.
func (m *Mapper) RemapK(p *sim.Proc, dst topology.NodeID, k int) ([]Candidate, Stats, bool) {
	cands, st, ok := m.MapToK(p, dst, k)
	if !ok {
		m.n.MarkUnreachable(dst)
		return nil, st, false
	}
	m.InstallCandidate(dst, cands[0])
	return cands, st, true
}
