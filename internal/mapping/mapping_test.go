package mapping

import (
	"testing"
	"time"

	"sanft/internal/fabric"
	"sanft/internal/nic"
	"sanft/internal/proto"
	"sanft/internal/retrans"
	"sanft/internal/routing"
	"sanft/internal/sim"
	"sanft/internal/topology"
)

// rig builds a network with NICs on every host (FT on) and a mapper on the
// first host. No routes are pre-installed unless install is true.
type rig struct {
	k     *sim.Kernel
	fab   *fabric.Fabric
	nw    *topology.Network
	hosts []topology.NodeID
	nics  map[topology.NodeID]*nic.NIC
	rx    map[topology.NodeID][]*proto.Frame
}

func newRig(t *testing.T, nw *topology.Network, hosts []topology.NodeID, install bool) *rig {
	t.Helper()
	k := sim.New(1)
	fab := fabric.New(k, nw, fabric.DefaultConfig())
	r := &rig{k: k, fab: fab, nw: nw, hosts: hosts,
		nics: make(map[topology.NodeID]*nic.NIC),
		rx:   make(map[topology.NodeID][]*proto.Frame)}
	for _, h := range hosts {
		h := h
		r.nics[h] = nic.New(k, fab, h, nic.Options{
			FT:      true,
			Retrans: retrans.Config{QueueSize: 16, Interval: time.Millisecond},
			OnDeliver: func(f *proto.Frame) {
				r.rx[h] = append(r.rx[h], f)
			},
		})
	}
	if install {
		for _, a := range hosts {
			for _, b := range hosts {
				if a == b {
					continue
				}
				rt, err := routing.Shortest(nw, a, b)
				if err != nil {
					t.Fatal(err)
				}
				r.nics[a].SetRoute(b, rt)
			}
		}
	}
	return r
}

func TestMapToSameSwitch(t *testing.T) {
	nw, hosts := topology.Star(4)
	r := newRig(t, nw, hosts, false)
	m := New(r.k, r.nics[hosts[0]], Config{MaxRadix: 8})
	var fwd routing.Route
	var st Stats
	var ok bool
	r.k.Spawn("mapper", func(p *sim.Proc) {
		fwd, _, st, ok = m.MapTo(p, hosts[2])
	})
	r.k.RunFor(5 * time.Second)
	r.k.Stop()
	if !ok {
		t.Fatalf("target not found; stats %+v", st)
	}
	res, err := routing.Walk(nw, hosts[0], fwd)
	if err != nil || res.Dst != hosts[2] {
		t.Fatalf("mapped route %v invalid: %v -> %d", fwd, err, res.Dst)
	}
	if st.SwitchProbes == 0 {
		t.Fatal("self-scan should cost switch probes")
	}
	if st.HostProbes == 0 {
		t.Fatal("no host probes recorded")
	}
	if st.SwitchesFound != 1 {
		t.Fatalf("switches found = %d, want 1", st.SwitchesFound)
	}
}

func TestMapToAcrossSwitches(t *testing.T) {
	f := topology.NewFig2()
	hosts := f.Net.Hosts()
	r := newRig(t, f.Net, hosts, false)
	m := New(r.k, r.nics[f.Mapper], Config{})
	for hop := 0; hop < 4; hop++ {
		hop := hop
		var fwd, rev routing.Route
		var ok bool
		r.k.Spawn("mapper", func(p *sim.Proc) {
			fwd, rev, _, ok = m.MapTo(p, f.Targets[hop])
		})
		r.k.RunFor(5 * time.Second)
		if !ok {
			t.Fatalf("hop %d: target not found", hop+1)
		}
		if len(fwd) != hop+1 {
			t.Fatalf("hop %d: route length %d, want %d (shortest)", hop+1, len(fwd), hop+1)
		}
		res, err := routing.Walk(f.Net, f.Mapper, fwd)
		if err != nil || res.Dst != f.Targets[hop] {
			t.Fatalf("hop %d: route invalid: %v", hop+1, err)
		}
		// The reverse route must walk from the target back to the mapper.
		rres, err := routing.Walk(f.Net, f.Targets[hop], rev)
		if err != nil || rres.Dst != f.Mapper {
			t.Fatalf("hop %d: reverse route invalid: %v -> %d", hop+1, err, rres.Dst)
		}
	}
}

func TestMappingCostGrowsWithDistance(t *testing.T) {
	f := topology.NewFig2()
	hosts := f.Net.Hosts()
	var prev Stats
	for hop := 0; hop < 4; hop++ {
		r := newRig(t, f.Net, hosts, false)
		m := New(r.k, r.nics[f.Mapper], Config{})
		var st Stats
		var ok bool
		r.k.Spawn("mapper", func(p *sim.Proc) {
			_, _, st, ok = m.MapTo(p, f.Targets[hop])
		})
		r.k.RunFor(5 * time.Second)
		if !ok {
			t.Fatalf("hop %d failed", hop+1)
		}
		if hop > 0 {
			if st.Total() <= prev.Total() {
				t.Fatalf("hop %d total probes %d not > hop %d's %d",
					hop+1, st.Total(), hop, prev.Total())
			}
			if st.Elapsed <= prev.Elapsed {
				t.Fatalf("hop %d time %v not > hop %d's %v", hop+1, st.Elapsed, hop, prev.Elapsed)
			}
		}
		if hop == 0 && st.SwitchesFound != 1 {
			t.Fatalf("1-hop mapping explored %d switches, want 1", st.SwitchesFound)
		}
		prev = st
	}
}

func TestFullMapDiscoversEverything(t *testing.T) {
	f := topology.NewFig2()
	hosts := f.Net.Hosts()
	r := newRig(t, f.Net, hosts, false)
	m := New(r.k, r.nics[f.Mapper], Config{})
	var mp *Map
	var st Stats
	r.k.Spawn("mapper", func(p *sim.Proc) {
		mp, st = m.FullMap(p)
	})
	r.k.RunFor(5 * time.Second)
	r.k.Stop()
	if st.SwitchesFound != 4 {
		t.Fatalf("found %d switches, want 4 (dedup across redundant links)", st.SwitchesFound)
	}
	// All hosts except the mapper itself are in the map (the mapper's own
	// port answers as portSelf, not a host). Every host should be found.
	for _, h := range hosts {
		if h == f.Mapper {
			continue
		}
		if _, _, ok := mp.RouteTo(h); !ok {
			t.Fatalf("host %d missing from full map", h)
		}
	}
}

func TestOnDemandCheaperThanFullMap(t *testing.T) {
	f := topology.NewFig2()
	hosts := f.Net.Hosts()

	r1 := newRig(t, f.Net, hosts, false)
	m1 := New(r1.k, r1.nics[f.Mapper], Config{})
	var onDemand Stats
	r1.k.Spawn("mapper", func(p *sim.Proc) {
		_, _, onDemand, _ = m1.MapTo(p, f.Targets[0])
	})
	r1.k.RunFor(5 * time.Second)
	r1.k.Stop()

	r2 := newRig(t, f.Net, hosts, false)
	m2 := New(r2.k, r2.nics[f.Mapper], Config{})
	var full Stats
	r2.k.Spawn("mapper", func(p *sim.Proc) {
		_, full = m2.FullMap(p)
	})
	r2.k.RunFor(5 * time.Second)
	r2.k.Stop()

	if onDemand.Total() >= full.Total() {
		t.Fatalf("on-demand (%d probes) not cheaper than full map (%d)", onDemand.Total(), full.Total())
	}
	if onDemand.Elapsed >= full.Elapsed {
		t.Fatalf("on-demand (%v) not faster than full map (%v)", onDemand.Elapsed, full.Elapsed)
	}
}

func TestMapAroundDeadLink(t *testing.T) {
	// Kill one of the two parallel S0-S1 trunks; mapping must still find
	// a route over the surviving one.
	f := topology.NewFig2()
	hosts := f.Net.Hosts()
	// Find one S0-S1 link and kill it.
	for _, l := range f.Net.Links {
		if (l.A.Node == f.Switches[0] && l.B.Node == f.Switches[1]) ||
			(l.A.Node == f.Switches[1] && l.B.Node == f.Switches[0]) {
			f.Net.KillLink(l)
			break
		}
	}
	r := newRig(t, f.Net, hosts, false)
	m := New(r.k, r.nics[f.Mapper], Config{})
	var fwd routing.Route
	var ok bool
	r.k.Spawn("mapper", func(p *sim.Proc) {
		fwd, _, _, ok = m.MapTo(p, f.Targets[1])
	})
	r.k.RunFor(5 * time.Second)
	r.k.Stop()
	if !ok {
		t.Fatal("no route found despite surviving redundant trunk")
	}
	res, err := routing.Walk(f.Net, f.Mapper, fwd)
	if err != nil || res.Dst != f.Targets[1] {
		t.Fatalf("route invalid: %v", err)
	}
}

func TestMapToUnreachable(t *testing.T) {
	nw, hosts := topology.Star(3)
	nw.KillLink(nw.Node(hosts[2]).Ports[0])
	r := newRig(t, nw, hosts, false)
	m := New(r.k, r.nics[hosts[0]], Config{MaxRadix: 8})
	var ok bool
	r.k.Spawn("mapper", func(p *sim.Proc) {
		_, _, _, ok = m.MapTo(p, hosts[2])
	})
	r.k.RunFor(5 * time.Second)
	r.k.Stop()
	if ok {
		t.Fatal("found a route to a host with a dead link")
	}
}

func TestMapperOwnLinkDead(t *testing.T) {
	nw, hosts := topology.Star(3)
	nw.KillLink(nw.Node(hosts[0]).Ports[0])
	r := newRig(t, nw, hosts, false)
	m := New(r.k, r.nics[hosts[0]], Config{MaxRadix: 8})
	var st Stats
	var ok bool
	r.k.Spawn("mapper", func(p *sim.Proc) {
		_, _, st, ok = m.MapTo(p, hosts[1])
	})
	r.k.RunFor(5 * time.Second)
	r.k.Stop()
	if ok {
		t.Fatal("mapping succeeded with a dead NIC link")
	}
	if st.SwitchesFound != 0 {
		t.Fatal("discovered switches through a dead link")
	}
}

func TestRemapEndToEndAfterPermanentFailure(t *testing.T) {
	// Full system test of §4.2: traffic flows over a trunk, the trunk
	// dies permanently, the stale-path detector fires, the mapper
	// discovers the redundant trunk, resets the generation, and delivery
	// resumes — transparently to the sending process.
	nw, hosts := topology.DoubleStar(4)
	k := sim.New(1)
	fab := fabric.New(k, nw, fabric.DefaultConfig())
	rx := make(map[topology.NodeID][]*proto.Frame)
	nics := make(map[topology.NodeID]*nic.NIC)
	for _, h := range hosts {
		h := h
		nics[h] = nic.New(k, fab, h, nic.Options{
			FT: true,
			Retrans: retrans.Config{
				QueueSize:         16,
				Interval:          time.Millisecond,
				PermFailThreshold: 10 * time.Millisecond,
			},
			OnDeliver: func(f *proto.Frame) { rx[h] = append(rx[h], f) },
		})
	}
	for _, a := range hosts {
		for _, b := range hosts {
			if a != b {
				rt, _ := routing.Shortest(nw, a, b)
				nics[a].SetRoute(b, rt)
			}
		}
	}
	src, dst := hosts[0], hosts[3] // opposite switches
	mapper := New(k, nics[src], Config{MaxRadix: 8})
	remaps := 0
	nics[src].SetOnPathStale(func(d topology.NodeID) {
		k.Spawn("remap", func(p *sim.Proc) {
			if _, ok := mapper.Remap(p, d); ok {
				remaps++
			}
		})
	})

	// Identify the trunk the current route uses and kill it mid-stream.
	route, _ := nics[src].Route(dst)
	res, _ := routing.Walk(nw, src, route)
	trunk := nw.Node(res.Switches[0]).Ports[route[0]]

	const n = 20
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			nics[src].Send(p, &proto.Frame{
				Type: proto.FrameData,
				Dst:  dst,
				Data: &proto.DataPayload{MsgID: uint64(i), MsgLen: 64, Data: make([]byte, 64), Notify: true},
			})
			p.Sleep(100 * time.Microsecond)
		}
	})
	k.After(500*time.Microsecond, func() { fab.KillLink(trunk) })
	k.RunFor(2 * time.Second)
	k.Stop()

	if remaps != 1 {
		t.Fatalf("remaps = %d, want 1", remaps)
	}
	// Across a generation reset the protocol is at-least-once: packets
	// delivered but not yet acknowledged when the path died are renumbered
	// and redelivered (VMMC deposits are idempotent; the VMMC layer dedups
	// notifications by message ID). Assert complete coverage, bounded
	// duplication, and that first deliveries happen in order.
	if len(rx[dst]) < n || len(rx[dst]) > n+16 {
		t.Fatalf("delivered %d, want %d..%d", len(rx[dst]), n, n+16)
	}
	seen := make(map[uint64]bool)
	var firsts []uint64
	for _, f := range rx[dst] {
		if !seen[f.Data.MsgID] {
			seen[f.Data.MsgID] = true
			firsts = append(firsts, f.Data.MsgID)
		}
	}
	if len(seen) != n {
		t.Fatalf("covered %d distinct messages, want %d", len(seen), n)
	}
	for i, id := range firsts {
		if id != uint64(i) {
			t.Fatalf("first deliveries out of order at %d: msg %d", i, id)
		}
	}
	if nics[src].ProtoSender().TotalUnacked() != 0 {
		t.Fatal("buffers leaked across remap")
	}
	// The new route must avoid the dead trunk.
	newRoute, ok := nics[src].Route(dst)
	if !ok {
		t.Fatal("no route installed after remap")
	}
	if newRoute.Equal(route) {
		t.Fatal("route unchanged after remap")
	}
}

func TestRemapUnreachableDropsPending(t *testing.T) {
	nw, hosts := topology.Star(3)
	r := newRig(t, nw, hosts, true)
	src, dst := hosts[0], hosts[1]
	m := New(r.k, r.nics[src], Config{MaxRadix: 8})
	// Kill the destination's own link: no alternate route can exist.
	r.fab.KillLink(nw.Node(dst).Ports[0])
	sent := 0
	r.k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			r.nics[src].Send(p, &proto.Frame{
				Type: proto.FrameData, Dst: dst,
				Data: &proto.DataPayload{MsgID: uint64(i), MsgLen: 8, Data: make([]byte, 8)},
			})
			sent++
		}
	})
	var ok bool
	done := false
	r.k.Spawn("remapper", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		_, ok = m.Remap(p, dst)
		done = true
	})
	r.k.RunFor(time.Second)
	r.k.Stop()
	if !done {
		t.Fatal("remap never completed")
	}
	if ok {
		t.Fatal("remap claimed success to an unreachable node")
	}
	if r.nics[src].ProtoSender().TotalUnacked() != 0 {
		t.Fatal("pending packets not dropped for unreachable node")
	}
	if r.nics[src].FreeBuffers() != 16 {
		t.Fatalf("free buffers = %d, want 16", r.nics[src].FreeBuffers())
	}
}
