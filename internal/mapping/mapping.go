// Package mapping implements the paper's second contribution (§4.2): an
// on-demand, decentralized network mapping scheme for tolerating permanent
// failures.
//
// Unlike conventional schemes that stop all traffic and compute a full
// network map plus deadlock-free UP*/DOWN* routes, this mapper:
//
//   - discovers only the part of the network needed to reach one
//     destination, breadth-first, stopping as soon as the target answers;
//   - runs on any NIC, concurrently with other traffic, with no central
//     map manager;
//   - installs plain shortest routes over its partial map — NOT
//     deadlock-free; the retransmission protocol doubles as the deadlock
//     recovery mechanism (the fabric's watchdog resets a blocked path and
//     the sender's timer retransmits);
//   - bumps the sequence-number generation when a path is remapped, so
//     packets of previous generations are discarded cleanly.
//
// Discovery uses only the probe mechanisms a real source-routed SAN offers
// (switches have no network-visible identity):
//
//   - Host probe: a packet sent along a candidate route carrying a return
//     route; if a host sits at the end, its NIC answers with its identity.
//   - Echo probe: a packet routed out a port and (by a guessed port) back
//     the way it came; its return proves a switch is present and reveals
//     the probe's entry port into it — the key to constructing return
//     routes deeper into the network. Each wrong guess costs a probe
//     timeout, which is why switch discovery dominates mapping time
//     (Table 3).
//   - Switch identity is established by fingerprinting: the (port → host)
//     signature of a newly found switch is compared against known
//     switches, so redundant links to an already-known switch do not
//     re-expand the BFS (they are recorded as alternate paths).
package mapping

import (
	"fmt"
	"sort"
	"time"

	"sanft/internal/metrics"
	"sanft/internal/nic"
	"sanft/internal/proto"
	"sanft/internal/routing"
	"sanft/internal/sim"
	"sanft/internal/topology"
)

// Config holds mapper tunables.
type Config struct {
	// ProbeTimeout is how long the mapper waits for a probe's reply or
	// echo before concluding nothing (or no host / no switch) is there.
	// Default 500µs: well above the ~16µs no-error round trip, with
	// headroom for probes queued behind bulk traffic — and it lands the
	// Table 3 mapping times in the paper's measured range.
	ProbeTimeout time.Duration
	// MaxRadix bounds the port-scan range (the largest switch the mapper
	// expects to meet). Default 16, as in the paper's testbed.
	MaxRadix int
	// MaxDepth bounds BFS depth (hop count) as a safety net. Default 16.
	MaxDepth int
}

// Defaults fills zero fields.
func (c Config) Defaults() Config {
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = 500 * time.Microsecond
	}
	if c.MaxRadix == 0 {
		c.MaxRadix = 16
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 16
	}
	return c
}

// Stats counts the work done by one mapping run — the quantities Table 3
// reports.
type Stats struct {
	// HostProbes and SwitchProbes count probe messages by purpose
	// (locating hosts vs locating/identifying switches).
	HostProbes   int
	SwitchProbes int
	// Elapsed is the wall time (virtual) of the mapping run.
	Elapsed time.Duration
	// SwitchesFound and HostsFound size the discovered partial map.
	SwitchesFound int
	HostsFound    int
}

// Total returns the total probe message count.
func (s Stats) Total() int { return s.HostProbes + s.SwitchProbes }

func (s Stats) add(o Stats) Stats {
	s.HostProbes += o.HostProbes
	s.SwitchProbes += o.SwitchProbes
	s.Elapsed += o.Elapsed
	s.SwitchesFound += o.SwitchesFound
	s.HostsFound += o.HostsFound
	return s
}

// portContent describes what a probed switch port leads to.
type portContent struct {
	kind portKind
	host topology.NodeID // for portHost
	sw   int             // discovered-switch index, for portSwitch
}

type portKind int

const (
	portUnknown portKind = iota
	portEmpty
	portHost
	portSwitch
	portSelf // the port leading back toward the mapper (entry port)
)

// discSwitch is one switch in the mapper's partial map.
type discSwitch struct {
	prefix routing.Route // route bytes from the mapper's host to enter this switch
	rev    routing.Route // return route from this switch to the mapper ([e_d, ..., e_0])
	entry  int           // the port by which `prefix` enters this switch
	ports  map[int]portContent
	depth  int

	sig   string // memoized signature (valid when sigOK)
	sigOK bool
}

// signature builds the (port → host) fingerprint used for dedup. The dedup
// scan compares every new switch against every known one, so the string is
// memoized — rebuilt only after a host entry lands on this switch — which
// keeps the scan a cheap string comparison at thousand-host scale.
func (d *discSwitch) signature() string {
	if d.sigOK {
		return d.sig
	}
	var ps []int
	for p, c := range d.ports {
		if c.kind == portHost {
			ps = append(ps, p)
		}
	}
	sort.Ints(ps)
	sig := ""
	for _, p := range ps {
		sig += fmt.Sprintf("%d:%d;", p, d.ports[p].host)
	}
	d.sig, d.sigOK = sig, true
	return sig
}

// Map is the partial network map a run produces.
type Map struct {
	Switches []*discSwitch
	Hosts    map[topology.NodeID]hostLoc
}

type hostLoc struct {
	sw   int // discovered-switch index
	port int
}

// Mapper performs on-demand (and, as a baseline, full) network mapping
// from one NIC.
type Mapper struct {
	k   *sim.Kernel
	n   *nic.NIC
	cfg Config

	nextProbeID uint64
	pending     map[uint64]*sim.Mailbox

	runs   int
	totals Stats
	mx     *metrics.Scope
}

// New attaches a mapper to a NIC (it takes over the NIC's probe upcall).
// The mapper records into the NIC's metrics scope, so its probe counts and
// run durations carry the same host label as the NIC's own telemetry.
func New(k *sim.Kernel, n *nic.NIC, cfg Config) *Mapper {
	m := &Mapper{
		k: k, n: n, cfg: cfg.Defaults(),
		pending: make(map[uint64]*sim.Mailbox),
		mx:      n.MetricsScope(),
	}
	n.SetOnProbe(m.onProbe)
	return m
}

// NIC returns the NIC the mapper drives.
func (m *Mapper) NIC() *nic.NIC { return m.n }

// Runs returns how many mapping runs (on-demand or full) this mapper has
// executed.
func (m *Mapper) Runs() int { return m.runs }

// Totals returns per-run statistics accumulated across every mapping run —
// the probe-count and mapping-time cost of all recovery activity so far,
// for degradation reports.
func (m *Mapper) Totals() Stats { return m.totals }

func (m *Mapper) onProbe(f *proto.Frame) {
	if f.Probe == nil {
		return
	}
	if mb, ok := m.pending[f.Probe.ProbeID]; ok {
		mb.Put(f)
	}
}

// sendProbeAndWait transmits one probe along an explicit route and waits
// for its reply/echo or the probe timeout. Must run in Proc context.
func (m *Mapper) sendProbeAndWait(p *sim.Proc, typ proto.FrameType, route, ret routing.Route) (*proto.Frame, bool) {
	m.nextProbeID++
	id := m.nextProbeID
	mb := &sim.Mailbox{}
	m.pending[id] = mb
	defer delete(m.pending, id)
	f := &proto.Frame{
		Type: typ,
		Dst:  topology.None,
		Probe: &proto.ProbePayload{
			ProbeID:     id,
			Mapper:      m.n.Node(),
			ReturnRoute: ret,
		},
	}
	m.n.SendControl(f, route)
	v, ok := mb.GetTimeout(p, m.cfg.ProbeTimeout)
	if !ok {
		return nil, false
	}
	return v.(*proto.Frame), true
}

// probeHost checks whether a host answers at the end of `route`; ret is the
// return route for the reply.
func (m *Mapper) probeHost(p *sim.Proc, st *Stats, route, ret routing.Route) (topology.NodeID, bool) {
	st.HostProbes++
	m.mx.Add("mapping.host_probes", 1)
	f, ok := m.sendProbeAndWait(p, proto.FrameHostProbe, route, ret)
	if !ok || f.Type != proto.FrameHostProbeReply {
		return topology.None, false
	}
	return f.Probe.ReplierID, true
}

// probeEcho checks whether an echo probe sent along `route` comes back.
func (m *Mapper) probeEcho(p *sim.Proc, st *Stats, route routing.Route) bool {
	st.SwitchProbes++
	m.mx.Add("mapping.switch_probes", 1)
	f, ok := m.sendProbeAndWait(p, proto.FrameEchoProbe, route, nil)
	return ok && f.Type == proto.FrameEchoProbe
}

// findEntryPort discovers by which port a probe following `prefix+[via]`
// enters the next switch: it tries echo routes prefix+[via, x]+retPrefix
// until one returns. Returns (port, true) on success. The scan cost is the
// heart of switch-probe overhead: each wrong guess burns a full probe
// timeout.
func (m *Mapper) findEntryPort(p *sim.Proc, st *Stats, prefix routing.Route, via int, retPrefix routing.Route) (int, bool) {
	for x := 0; x < m.cfg.MaxRadix; x++ {
		route := append(append(prefix.Clone(), via, x), retPrefix...)
		if m.probeEcho(p, st, route) {
			return x, true
		}
	}
	return -1, false
}

// selfScan discovers the mapper's entry port on its first switch: route [x]
// returns to the mapper iff x is the port its own link attaches to.
func (m *Mapper) selfScan(p *sim.Proc, st *Stats) (int, bool) {
	for x := 0; x < m.cfg.MaxRadix; x++ {
		if m.probeEcho(p, st, routing.Route{x}) {
			return x, true
		}
	}
	return -1, false
}

// run executes the BFS. If target is a valid host ID the run stops as soon
// as that host is found (on-demand mode); with target == topology.None it
// explores everything reachable (full-map baseline mode).
func (m *Mapper) run(p *sim.Proc, target topology.NodeID) (mp *Map, st Stats) {
	start := p.Now()
	defer func() {
		st.Elapsed = p.Now().Sub(start)
		m.runs++
		m.totals = m.totals.add(st)
		m.mx.Add("mapping.runs", 1)
		m.mx.Observe("mapping.run_ns", st.Elapsed)
	}()

	mp = &Map{Hosts: make(map[topology.NodeID]hostLoc)}

	// Find the entry port on our own switch.
	e0, ok := m.selfScan(p, &st)
	if !ok {
		return mp, st // our own link or first switch is dead
	}
	// The mapper's own port is recorded as a host (ourselves) so that the
	// switch's fingerprint matches if this switch is ever re-discovered
	// from deeper in the network (where our NIC answers host probes like
	// any other).
	s0 := &discSwitch{
		prefix: routing.Route{},
		rev:    routing.Route{e0},
		entry:  e0,
		ports:  map[int]portContent{e0: {kind: portHost, host: m.n.Node()}},
		depth:  0,
	}
	mp.Switches = append(mp.Switches, s0)
	st.SwitchesFound++

	queue := []int{0} // indices into mp.Switches
	for len(queue) > 0 {
		si := queue[0]
		queue = queue[1:]
		sw := mp.Switches[si]

		// Phase 1: host-probe every unknown port of this switch.
		var candidates []int // ports that answered nothing: maybe switches
		for q := 0; q < m.cfg.MaxRadix; q++ {
			if _, seen := sw.ports[q]; seen {
				continue
			}
			route := append(sw.prefix.Clone(), q)
			if host, ok := m.probeHost(p, &st, route, sw.rev); ok {
				sw.ports[q] = portContent{kind: portHost, host: host}
				sw.sigOK = false
				if _, dup := mp.Hosts[host]; !dup {
					mp.Hosts[host] = hostLoc{sw: si, port: q}
					st.HostsFound++
				}
				if host == target {
					return mp, st // on-demand: stop as soon as found
				}
				continue
			}
			sw.ports[q] = portContent{kind: portUnknown}
			candidates = append(candidates, q)
		}

		// Phase 2: echo-scan the silent ports for switches.
		if sw.depth+1 >= m.cfg.MaxDepth {
			continue
		}
		for _, q := range candidates {
			entry, ok := m.findEntryPort(p, &st, sw.prefix, q, sw.rev)
			if !ok {
				sw.ports[q] = portContent{kind: portEmpty}
				continue
			}
			next := &discSwitch{
				prefix: append(sw.prefix.Clone(), q),
				rev:    append(routing.Route{entry}, sw.rev...),
				entry:  entry,
				ports:  map[int]portContent{entry: {kind: portSelf}},
				depth:  sw.depth + 1,
			}
			// Fingerprint the new switch's hosts for dedup.
			for hq := 0; hq < m.cfg.MaxRadix; hq++ {
				if hq == entry {
					continue
				}
				route := append(next.prefix.Clone(), hq)
				if host, ok := m.probeHost(p, &st, route, next.rev); ok {
					next.ports[hq] = portContent{kind: portHost, host: host}
				}
			}
			// Compare against known switches.
			dupOf := -1
			sig := next.signature()
			if sig != "" {
				for j, known := range mp.Switches {
					if known.signature() == sig {
						dupOf = j
						break
					}
				}
			} else {
				// Hostless switch (Clos aggregation/core tier): no
				// (port → host) fingerprint exists, and without any dedup
				// the BFS oscillates — every path back toward the mapper
				// rediscovers shallower switches at depth+2, re-expands
				// them, and the frontier grows combinatorially up to
				// MaxDepth. Identify true revisits by return-route
				// behavior: an echo sent into the candidate and out along
				// a known shallower switch's return route physically loops
				// back to this NIC iff the candidate IS that switch (a
				// foreign NIC drops the unknown probe, so a symmetric twin
				// times out on the host-bearing tail of the return route).
				// Only strictly shallower switches are compared: same-depth
				// twins reached through a shared parent route home
				// identically and would wrongly merge — costing whole
				// subtrees on symmetric fabrics — so they stay as separate
				// entries. That duplication is bounded (one entry per
				// parallel parent, no recursion: their children dedup here
				// against the shallower originals).
				for j, known := range mp.Switches {
					if known.depth >= next.depth || known.signature() != "" {
						continue
					}
					route := append(append(sw.prefix.Clone(), q), known.rev...)
					if m.probeEcho(p, &st, route) {
						dupOf = j
						break
					}
				}
			}
			if dupOf >= 0 {
				sw.ports[q] = portContent{kind: portSwitch, sw: dupOf}
				continue
			}
			ni := len(mp.Switches)
			sw.ports[q] = portContent{kind: portSwitch, sw: ni}
			// Adopt the fingerprint hosts into the map. Iterate ports in
			// ascending order: the early return on finding the target makes
			// HostsFound (and which hosts get adopted) depend on visit
			// order, and map range order would vary run to run.
			hqs := make([]int, 0, len(next.ports))
			for hq := range next.ports {
				hqs = append(hqs, hq)
			}
			sort.Ints(hqs)
			for _, hq := range hqs {
				c := next.ports[hq]
				if c.kind != portHost {
					continue
				}
				if _, dup := mp.Hosts[c.host]; !dup {
					mp.Hosts[c.host] = hostLoc{sw: ni, port: hq}
					st.HostsFound++
				}
				if c.host == target {
					mp.Switches = append(mp.Switches, next)
					st.SwitchesFound++
					return mp, st
				}
			}
			mp.Switches = append(mp.Switches, next)
			st.SwitchesFound++
			queue = append(queue, ni)
		}
	}
	return mp, st
}

// RouteTo extracts the forward route and its reverse from a map, for a host
// it contains.
func (mp *Map) RouteTo(host topology.NodeID) (fwd, rev routing.Route, ok bool) {
	loc, ok := mp.Hosts[host]
	if !ok {
		return nil, nil, false
	}
	sw := mp.Switches[loc.sw]
	fwd = append(sw.prefix.Clone(), loc.port)
	rev = sw.rev.Clone()
	return fwd, rev, true
}

// MapTo performs on-demand mapping toward target. On success it returns
// the new forward route, the matching return route (target → mapper), and
// run statistics. Must run in Proc context.
func (m *Mapper) MapTo(p *sim.Proc, target topology.NodeID) (fwd, rev routing.Route, st Stats, ok bool) {
	mp, st := m.run(p, target)
	fwd, rev, ok = mp.RouteTo(target)
	return fwd, rev, st, ok
}

// FullMap explores everything reachable — what a conventional central
// mapper computes — and returns the map plus statistics, for the
// on-demand-vs-full ablation.
func (m *Mapper) FullMap(p *sim.Proc) (*Map, Stats) {
	return m.run(p, topology.None)
}

// Remap is the full permanent-failure recovery action: map toward dst; on
// success install the route with a generation reset and tell dst (via a
// route-update control frame over the new path) how to reach us; on
// failure mark dst unreachable and drop its pending packets. Returns the
// stats and whether dst was reachable.
func (m *Mapper) Remap(p *sim.Proc, dst topology.NodeID) (Stats, bool) {
	_, st, ok := m.RemapK(p, dst, 1)
	return st, ok
}
