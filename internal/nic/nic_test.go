package nic

import (
	"strings"
	"testing"
	"time"

	"sanft/internal/fabric"
	"sanft/internal/fault"
	"sanft/internal/proto"
	"sanft/internal/retrans"
	"sanft/internal/routing"
	"sanft/internal/sim"
	"sanft/internal/topology"
	"sanft/internal/trace"
)

// rig is a small test cluster: n hosts on one switch, all routes installed.
type rig struct {
	k     *sim.Kernel
	fab   *fabric.Fabric
	hosts []topology.NodeID
	nics  map[topology.NodeID]*NIC
	rx    map[topology.NodeID][]*proto.Frame
}

func newRig(t *testing.T, nHosts int, mkOpts func(i int) Options) *rig {
	t.Helper()
	k := sim.New(1)
	nw, hosts := topology.Star(nHosts)
	fab := fabric.New(k, nw, fabric.DefaultConfig())
	r := &rig{k: k, fab: fab, hosts: hosts,
		nics: make(map[topology.NodeID]*NIC),
		rx:   make(map[topology.NodeID][]*proto.Frame)}
	for i, h := range hosts {
		h := h
		opts := mkOpts(i)
		userDeliver := opts.OnDeliver
		opts.OnDeliver = func(f *proto.Frame) {
			r.rx[h] = append(r.rx[h], f)
			if userDeliver != nil {
				userDeliver(f)
			}
		}
		r.nics[h] = New(k, fab, h, opts)
	}
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			rt, err := routing.Shortest(nw, a, b)
			if err != nil {
				t.Fatal(err)
			}
			r.nics[a].SetRoute(b, rt)
		}
	}
	return r
}

func dataFrame(dst topology.NodeID, msgID uint64, payload []byte) *proto.Frame {
	return &proto.Frame{
		Type: proto.FrameData,
		Dst:  dst,
		Data: &proto.DataPayload{MsgID: msgID, MsgLen: len(payload), Data: payload, Notify: true},
	}
}

func ftOpts(q int, interval time.Duration) Options {
	return Options{FT: true, Retrans: retrans.Config{QueueSize: q, Interval: interval}}
}

// runFor runs the kernel for d then stops it (killing parked procs).
func (r *rig) runFor(d time.Duration) {
	r.k.RunFor(d)
	r.k.Stop()
}

func TestBasicDeliveryNoFT(t *testing.T) {
	r := newRig(t, 2, func(int) Options { return Options{FT: false, Retrans: retrans.Config{QueueSize: 32}} })
	src, dst := r.hosts[0], r.hosts[1]
	payload := []byte{1, 2, 3, 4}
	r.k.Spawn("sender", func(p *sim.Proc) {
		r.nics[src].Send(p, dataFrame(dst, 1, payload))
	})
	r.runFor(time.Millisecond)
	if len(r.rx[dst]) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(r.rx[dst]))
	}
	got := r.rx[dst][0].Data.Data
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatal("payload corrupted in transit")
		}
	}
}

func TestLatencyCalibrationNoFT(t *testing.T) {
	// The paper's baseline: ~8µs one-way for a 4-byte message.
	r := newRig(t, 2, func(int) Options { return Options{Retrans: retrans.Config{QueueSize: 32}} })
	src, dst := r.hosts[0], r.hosts[1]
	r.k.Spawn("sender", func(p *sim.Proc) {
		r.nics[src].Send(p, dataFrame(dst, 1, make([]byte, 4)))
	})
	r.runFor(time.Millisecond)
	f := r.rx[dst][0]
	lat := f.Stamps.HostRecvDone.Sub(f.Stamps.HostStart)
	if lat < 7500*time.Nanosecond || lat > 8500*time.Nanosecond {
		t.Fatalf("4-byte no-FT latency = %v, want ≈8µs", lat)
	}
}

func TestLatencyCalibrationFT(t *testing.T) {
	// With the retransmission protocol: ~10µs (+~1µs each side).
	r := newRig(t, 2, func(int) Options { return ftOpts(32, time.Millisecond) })
	src, dst := r.hosts[0], r.hosts[1]
	r.k.Spawn("sender", func(p *sim.Proc) {
		r.nics[src].Send(p, dataFrame(dst, 1, make([]byte, 4)))
	})
	r.runFor(time.Millisecond * 5)
	f := r.rx[dst][0]
	lat := f.Stamps.HostRecvDone.Sub(f.Stamps.HostStart)
	if lat < 9500*time.Nanosecond || lat > 10500*time.Nanosecond {
		t.Fatalf("4-byte FT latency = %v, want ≈10µs", lat)
	}
}

func TestInOrderDeliveryFT(t *testing.T) {
	r := newRig(t, 2, func(int) Options { return ftOpts(8, time.Millisecond) })
	src, dst := r.hosts[0], r.hosts[1]
	const n = 50
	r.k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			r.nics[src].Send(p, dataFrame(dst, uint64(i), make([]byte, 512)))
		}
	})
	r.runFor(100 * time.Millisecond)
	if len(r.rx[dst]) != n {
		t.Fatalf("delivered %d, want %d", len(r.rx[dst]), n)
	}
	for i, f := range r.rx[dst] {
		if f.Data.MsgID != uint64(i) {
			t.Fatalf("out of order at %d: msg %d", i, f.Data.MsgID)
		}
	}
}

func TestRecoveryFromInjectedDrops(t *testing.T) {
	// Every 10th packet is swallowed before the wire; the protocol must
	// still deliver everything exactly once, in order.
	drop := fault.NewRate(0.1)
	r := newRig(t, 2, func(i int) Options {
		o := ftOpts(32, time.Millisecond)
		if i == 0 {
			o.Dropper = drop
		}
		return o
	})
	src, dst := r.hosts[0], r.hosts[1]
	const n = 100
	r.k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			r.nics[src].Send(p, dataFrame(dst, uint64(i), make([]byte, 1024)))
		}
	})
	r.runFor(time.Second)
	if len(r.rx[dst]) != n {
		t.Fatalf("delivered %d, want %d (drops=%d)", len(r.rx[dst]), n, drop.Dropped())
	}
	for i, f := range r.rx[dst] {
		if f.Data.MsgID != uint64(i) {
			t.Fatalf("out of order at %d: msg %d", i, f.Data.MsgID)
		}
	}
	if drop.Dropped() == 0 {
		t.Fatal("dropper never fired; test proves nothing")
	}
	nic := r.nics[src]
	if nic.Counters().Get("pkts-retransmitted") == 0 {
		t.Fatal("no retransmissions recorded despite drops")
	}
	if nic.ProtoSender().TotalUnacked() != 0 {
		t.Fatalf("%d buffers leaked", nic.ProtoSender().TotalUnacked())
	}
}

func TestRecoveryFromCorruption(t *testing.T) {
	// Corrupt ~5% of packets in transit; CRC drops them at the receiver
	// and retransmission recovers.
	corr := fault.NewCorruptor(0.05, 99)
	r := newRig(t, 2, func(int) Options { return ftOpts(16, time.Millisecond) })
	r.fab.SetTransitHook(func(p *fabric.Packet) bool {
		if corr.Corrupt() {
			p.Corrupted = true
		}
		return true
	})
	src, dst := r.hosts[0], r.hosts[1]
	const n = 100
	r.k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			r.nics[src].Send(p, dataFrame(dst, uint64(i), make([]byte, 256)))
		}
	})
	r.runFor(time.Second)
	if len(r.rx[dst]) != n {
		t.Fatalf("delivered %d, want %d", len(r.rx[dst]), n)
	}
	if corr.Corrupted() == 0 {
		t.Fatal("corruptor never fired")
	}
	if r.nics[dst].Counters().Get("crc-drops") == 0 {
		t.Fatal("no CRC drops recorded")
	}
}

func TestBufferBlockingThrottlesSender(t *testing.T) {
	// With q=2 and acks disabled by severing the reverse route, the
	// sender must stall after 2 packets.
	r := newRig(t, 2, func(int) Options { return ftOpts(2, 100*time.Millisecond) })
	src, dst := r.hosts[0], r.hosts[1]
	r.nics[dst].RemoveRoute(src) // acks cannot return
	sent := 0
	r.k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			r.nics[src].Send(p, dataFrame(dst, uint64(i), make([]byte, 64)))
			sent++
		}
	})
	r.k.RunFor(50 * time.Millisecond)
	if sent > 3 {
		t.Fatalf("sender pushed %d packets with q=2 and no acks", sent)
	}
	if r.nics[src].Counters().Get("send-buffer-stall") == 0 {
		t.Fatal("no buffer stalls recorded")
	}
	r.k.Stop()
}

func TestPiggybackAcksOnTwoWayTraffic(t *testing.T) {
	r := newRig(t, 2, func(int) Options { return ftOpts(32, time.Millisecond) })
	a, b := r.hosts[0], r.hosts[1]
	const rounds = 30
	// Ping-pong: piggybacking should carry almost all acks.
	done := 0
	var mbA, mbB sim.Mailbox
	r.nics[a].opts.OnDeliver = func(f *proto.Frame) { mbA.Put(f) }
	r.nics[b].opts.OnDeliver = func(f *proto.Frame) { mbB.Put(f) }
	r.k.Spawn("a", func(p *sim.Proc) {
		for i := 0; i < rounds; i++ {
			r.nics[a].Send(p, dataFrame(b, uint64(i), make([]byte, 64)))
			mbA.Get(p)
			done++
		}
	})
	r.k.Spawn("b", func(p *sim.Proc) {
		for i := 0; i < rounds; i++ {
			mbB.Get(p)
			r.nics[b].Send(p, dataFrame(a, uint64(i), make([]byte, 64)))
		}
	})
	r.runFor(100 * time.Millisecond)
	if done != rounds {
		t.Fatalf("completed %d rounds, want %d", done, rounds)
	}
	piggy := r.nics[a].Counters().Get("acks-piggybacked") + r.nics[b].Counters().Get("acks-piggybacked")
	explicit := r.nics[a].Counters().Get("acks-sent") + r.nics[b].Counters().Get("acks-sent")
	if piggy == 0 {
		t.Fatal("no piggybacked acks on two-way traffic")
	}
	if explicit > piggy {
		t.Fatalf("explicit acks (%d) dominate piggybacked (%d) on two-way traffic", explicit, piggy)
	}
}

func TestDelayedAckOnOneWayTraffic(t *testing.T) {
	// One-way traffic: acks must still flow (delayed/explicit), freeing
	// buffers without reverse data.
	r := newRig(t, 2, func(int) Options { return ftOpts(8, time.Millisecond) })
	src, dst := r.hosts[0], r.hosts[1]
	const n = 40
	r.k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			r.nics[src].Send(p, dataFrame(dst, uint64(i), make([]byte, 1024)))
		}
	})
	r.runFor(time.Second)
	if len(r.rx[dst]) != n {
		t.Fatalf("delivered %d, want %d", len(r.rx[dst]), n)
	}
	if r.nics[dst].Counters().Get("acks-sent") == 0 {
		t.Fatal("no explicit acks on one-way traffic")
	}
	if r.nics[src].ProtoSender().TotalUnacked() != 0 {
		t.Fatal("buffers not all freed")
	}
}

func TestGenerationResetEndToEnd(t *testing.T) {
	r := newRig(t, 2, func(int) Options { return ftOpts(8, time.Millisecond) })
	src, dst := r.hosts[0], r.hosts[1]
	route, _ := r.nics[src].Route(dst)
	r.k.Spawn("sender", func(p *sim.Proc) {
		r.nics[src].Send(p, dataFrame(dst, 0, make([]byte, 64)))
		p.Sleep(5 * time.Millisecond)
		// Remap: reset the path (same route; the reset itself is under test).
		r.nics[src].ResetPath(dst, route)
		r.nics[src].Send(p, dataFrame(dst, 1, make([]byte, 64)))
	})
	r.runFor(50 * time.Millisecond)
	if len(r.rx[dst]) != 2 {
		t.Fatalf("delivered %d, want 2", len(r.rx[dst]))
	}
	if g := r.rx[dst][1].Gen; g != 1 {
		t.Fatalf("second message generation = %d, want 1", g)
	}
	if r.nics[src].ProtoSender().TotalUnacked() != 0 {
		t.Fatal("buffers leaked across generation reset")
	}
}

func TestMarkUnreachableFreesBuffers(t *testing.T) {
	r := newRig(t, 2, func(int) Options { return ftOpts(4, time.Millisecond) })
	src, dst := r.hosts[0], r.hosts[1]
	// Kill the destination link so nothing is ever delivered or acked.
	r.fab.KillLink(r.fab.Network().Node(dst).Ports[0])
	r.k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			r.nics[src].Send(p, dataFrame(dst, uint64(i), make([]byte, 64)))
		}
	})
	r.k.RunFor(10 * time.Millisecond)
	if r.nics[src].FreeBuffers() != 0 {
		t.Fatalf("free buffers = %d before unreachable, want 0", r.nics[src].FreeBuffers())
	}
	r.nics[src].MarkUnreachable(dst)
	r.k.RunFor(time.Millisecond)
	if r.nics[src].FreeBuffers() != 4 {
		t.Fatalf("free buffers = %d after unreachable, want 4", r.nics[src].FreeBuffers())
	}
	r.k.Stop()
}

func TestPathStaleDetectionFires(t *testing.T) {
	var stale []topology.NodeID
	r := newRig(t, 2, func(i int) Options {
		o := ftOpts(4, time.Millisecond)
		o.Retrans.PermFailThreshold = 20 * time.Millisecond
		o.OnPathStale = func(d topology.NodeID) { stale = append(stale, d) }
		return o
	})
	src, dst := r.hosts[0], r.hosts[1]
	r.fab.KillLink(r.fab.Network().Node(dst).Ports[0])
	r.k.Spawn("sender", func(p *sim.Proc) {
		r.nics[src].Send(p, dataFrame(dst, 0, make([]byte, 64)))
	})
	r.k.RunFor(100 * time.Millisecond)
	if len(stale) != 1 || stale[0] != dst {
		t.Fatalf("stale notifications = %v, want [%d] exactly once", stale, dst)
	}
	r.k.Stop()
}

func TestHostProbeAnsweredInFirmware(t *testing.T) {
	var replies []*proto.Frame
	r := newRig(t, 2, func(i int) Options {
		o := ftOpts(8, time.Millisecond)
		o.OnProbe = func(f *proto.Frame) { replies = append(replies, f) }
		return o
	})
	src, dst := r.hosts[0], r.hosts[1]
	nw := r.fab.Network()
	fwd, _ := routing.Shortest(nw, src, dst)
	ret, _ := routing.Reverse(nw, src, fwd)
	probe := &proto.Frame{
		Type:  proto.FrameHostProbe,
		Probe: &proto.ProbePayload{ProbeID: 42, Mapper: src, ReturnRoute: ret},
	}
	r.nics[src].SendControl(probe, fwd)
	r.runFor(time.Millisecond)
	if len(replies) != 1 {
		t.Fatalf("got %d probe replies, want 1", len(replies))
	}
	rep := replies[0]
	if rep.Probe.ProbeID != 42 || rep.Probe.ReplierID != dst {
		t.Fatalf("reply = %+v", rep.Probe)
	}
}

func TestNoRouteTriggersCallback(t *testing.T) {
	var noRoute []topology.NodeID
	r := newRig(t, 2, func(i int) Options {
		o := ftOpts(8, time.Millisecond)
		o.OnNoRoute = func(d topology.NodeID) { noRoute = append(noRoute, d) }
		return o
	})
	src, dst := r.hosts[0], r.hosts[1]
	r.nics[src].RemoveRoute(dst)
	r.k.Spawn("sender", func(p *sim.Proc) {
		r.nics[src].Send(p, dataFrame(dst, 0, make([]byte, 64)))
	})
	r.k.RunFor(5 * time.Millisecond)
	if len(noRoute) != 1 || noRoute[0] != dst {
		t.Fatalf("no-route callbacks = %v, want [%d] once", noRoute, dst)
	}
	// Installing a route lets the queued packet through via the timer.
	rt, _ := routing.Shortest(r.fab.Network(), src, dst)
	r.nics[src].SetRoute(dst, rt)
	r.k.RunFor(20 * time.Millisecond)
	if len(r.rx[dst]) != 1 {
		t.Fatalf("delivered %d after route install, want 1", len(r.rx[dst]))
	}
	r.k.Stop()
}

func TestMultiDestinationIndependence(t *testing.T) {
	// Failure of one destination must not block traffic to another
	// (per-node retransmission queues, shared buffer pool).
	r := newRig(t, 3, func(i int) Options { return ftOpts(16, time.Millisecond) })
	src, d1, d2 := r.hosts[0], r.hosts[1], r.hosts[2]
	r.fab.KillLink(r.fab.Network().Node(d1).Ports[0]) // d1 dead
	r.k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			r.nics[src].Send(p, dataFrame(d1, uint64(i), make([]byte, 64)))
		}
		for i := 0; i < 20; i++ {
			r.nics[src].Send(p, dataFrame(d2, uint64(i), make([]byte, 64)))
		}
	})
	r.runFor(200 * time.Millisecond)
	if len(r.rx[d2]) != 20 {
		t.Fatalf("live destination got %d of 20 messages", len(r.rx[d2]))
	}
	if len(r.rx[d1]) != 0 {
		t.Fatal("dead destination received data")
	}
}

func TestSegmentPayloadIntegrity(t *testing.T) {
	// Multi-kilobyte payloads survive drops intact (the simulator moves
	// real bytes).
	drop := fault.NewRate(1.0 / 7)
	r := newRig(t, 2, func(i int) Options {
		o := ftOpts(16, time.Millisecond)
		if i == 0 {
			o.Dropper = drop
		}
		return o
	})
	src, dst := r.hosts[0], r.hosts[1]
	const n = 30
	r.k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			buf := make([]byte, 2048)
			for j := range buf {
				buf[j] = byte(i + j)
			}
			r.nics[src].Send(p, dataFrame(dst, uint64(i), buf))
		}
	})
	r.runFor(time.Second)
	if len(r.rx[dst]) != n {
		t.Fatalf("delivered %d, want %d", len(r.rx[dst]), n)
	}
	for i, f := range r.rx[dst] {
		for j, b := range f.Data.Data {
			if b != byte(i+j) {
				t.Fatalf("msg %d corrupted at byte %d", i, j)
			}
		}
	}
}

func TestReliableReceptionRecoversFromDrops(t *testing.T) {
	// Reliable-reception semantics (ack only after host deposit) must be
	// just as loss-tolerant as reliable delivery.
	drop := fault.NewRate(0.1)
	r := newRig(t, 2, func(i int) Options {
		o := Options{FT: true, Retrans: retrans.Config{
			QueueSize: 16, Interval: time.Millisecond, ReliableReception: true,
		}}
		if i == 0 {
			o.Dropper = drop
		}
		return o
	})
	src, dst := r.hosts[0], r.hosts[1]
	const n = 60
	r.k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			r.nics[src].Send(p, dataFrame(dst, uint64(i), make([]byte, 1024)))
		}
	})
	r.runFor(time.Second)
	if len(r.rx[dst]) != n {
		t.Fatalf("delivered %d of %d (drops=%d)", len(r.rx[dst]), n, drop.Dropped())
	}
	for i, f := range r.rx[dst] {
		if f.Data.MsgID != uint64(i) {
			t.Fatalf("out of order at %d", i)
		}
	}
	if drop.Dropped() == 0 {
		t.Fatal("no drops; test proves nothing")
	}
	if r.nics[src].ProtoSender().TotalUnacked() != 0 {
		t.Fatal("buffers leaked under reliable reception")
	}
}

func TestReliableReceptionAckAfterDeposit(t *testing.T) {
	// Under reliable reception the sender's buffer must not be freed
	// before the receiver's host DMA completed. Compare buffer-free time
	// against reliable delivery for a single large packet.
	freeTime := func(rr bool) sim.Time {
		r := newRig(t, 2, func(int) Options {
			return Options{FT: true, Retrans: retrans.Config{
				QueueSize: 4, Interval: 50 * time.Millisecond, ReliableReception: rr,
				AckEveryDiv: 1, // request acks aggressively
			}}
		})
		src, dst := r.hosts[0], r.hosts[1]
		var freed sim.Time
		r.k.Spawn("sender", func(p *sim.Proc) {
			// Fill the queue so the ack request becomes immediate, then
			// watch when buffers return.
			for i := 0; i < 4; i++ {
				r.nics[src].Send(p, dataFrame(dst, uint64(i), make([]byte, 4096)))
			}
			for r.nics[src].FreeBuffers() < 4 {
				p.Sleep(time.Microsecond)
			}
			freed = p.Now()
		})
		r.runFor(200 * time.Millisecond)
		if freed == 0 {
			t.Fatal("buffers never freed")
		}
		return freed
	}
	rd := freeTime(false)
	rr := freeTime(true)
	if rr <= rd {
		t.Fatalf("reliable reception freed buffers at %v, not later than reliable delivery's %v", rr, rd)
	}
}

func TestTracerRecordsProtocolStory(t *testing.T) {
	// Wire a ring tracer on both NICs; inject a drop; the trace must
	// contain the full story: send, inject, err-drop, retransmit,
	// ooo-drop (receiver discarding successors), accepts and acks.
	drop := fault.NewRate(0.2)
	ring := trace.NewRing(4096)
	r := newRig(t, 2, func(i int) Options {
		o := ftOpts(16, time.Millisecond)
		o.Tracer = ring
		if i == 0 {
			o.Dropper = drop
		}
		return o
	})
	src, dst := r.hosts[0], r.hosts[1]
	const n = 30
	r.k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			r.nics[src].Send(p, dataFrame(dst, uint64(i), make([]byte, 512)))
		}
	})
	r.runFor(time.Second)
	if len(r.rx[dst]) != n {
		t.Fatalf("delivered %d/%d", len(r.rx[dst]), n)
	}
	counts := ring.Counts()
	for _, k := range []trace.Kind{trace.EvSend, trace.EvInject, trace.EvErrDrop,
		trace.EvRetransmit, trace.EvAccept, trace.EvAckTx, trace.EvAckRx} {
		if counts[k] == 0 {
			t.Fatalf("trace missing %v events; counts=%v", k, counts)
		}
	}
	if counts[trace.EvAccept] != n {
		t.Fatalf("accepts = %d, want %d", counts[trace.EvAccept], n)
	}
	if !strings.Contains(ring.Dump(), "retransmit") {
		t.Fatal("dump missing retransmit line")
	}
}
