package nic

import (
	"fmt"
	"sort"
	"time"

	"sanft/internal/fabric"
	"sanft/internal/fault"
	"sanft/internal/liveness"
	"sanft/internal/metrics"
	"sanft/internal/proto"
	"sanft/internal/retrans"
	"sanft/internal/routing"
	"sanft/internal/sim"
	"sanft/internal/stats"
	"sanft/internal/topology"
	"sanft/internal/trace"
)

// Options configures a NIC.
type Options struct {
	// Cost is the hardware cost model; zero value means defaults.
	Cost CostModel
	// FT enables the firmware retransmission protocol. Off, the NIC is
	// the unreliable baseline ("No Fault Tolerance" in the figures).
	FT bool
	// Retrans holds the protocol parameters (queue size, timer, ...).
	// The queue size also bounds the send-buffer pool in non-FT mode.
	Retrans retrans.Config
	// Dropper, if non-nil, injects send-side packet drops (the paper's
	// controlled error-rate mechanism). Applies to data frames only.
	Dropper fault.Dropper

	// OnDeliver receives accepted data frames after the receive path
	// completes (data deposited in host memory, notification posted).
	OnDeliver func(*proto.Frame)
	// OnProbe receives host-probe replies and echo probes (the mapping
	// layer's upcall). Host probes themselves are answered in firmware.
	OnProbe func(*proto.Frame)
	// OnPathStale fires (at most once per remap cycle) when a
	// destination exceeds the permanent-failure threshold with no
	// acknowledgment progress.
	OnPathStale func(dst topology.NodeID)
	// OnNoRoute fires when a packet must be transmitted but no route to
	// its destination is installed.
	OnNoRoute func(dst topology.NodeID)
	// OnSessionDown fires (at most once per remap cycle, sharing the
	// stale/no-route guard) when a liveness session to a destination
	// drops — the adaptive counterpart of OnPathStale, typically an
	// order of magnitude earlier.
	OnSessionDown func(dst topology.NodeID)
	// Liveness, if non-nil, runs a BFD-style liveness session per routed
	// destination in this NIC's firmware (internal/liveness): periodic
	// jittered control packets, detect-multiplier timeouts, and RTT
	// samples feeding the adaptive retransmission timer when
	// Retrans.Adaptive is set. Nil (the default) is the paper's
	// fixed-timer firmware, bit for bit.
	Liveness *liveness.Config
	// Tracer, if non-nil, receives a packet-level event per protocol
	// action (see internal/trace). Debugging aid; zero cost when nil.
	Tracer trace.Tracer
	// Metrics is the cluster-wide registry this NIC records into. Nil
	// gives the NIC a private registry, so instrumentation never needs a
	// nil check.
	Metrics *metrics.Registry
}

// txItem is one frame queued for transmission.
type txItem struct {
	frame *proto.Frame
	entry *retrans.Entry // nil for control frames and non-FT mode
}

// depositMark is the reliable-reception ack horizon for one source.
type depositMark struct {
	gen   uint32
	seq   uint64
	valid bool
}

// Wire is the NIC's view of the network: the real wormhole fabric
// (*fabric.Fabric) in sequential runs, a shard-local *fabric.Pipe under
// the parallel engine. The NIC touches the wire only through these two
// calls — attach a receive callback, and fire-and-forget injection.
type Wire interface {
	AttachHost(h topology.NodeID, fn func(*fabric.Packet))
	Inject(src topology.NodeID, pkt *fabric.Packet)
}

// NIC is one simulated network interface.
type NIC struct {
	k    *sim.Kernel
	fab  Wire
	node topology.NodeID
	cost CostModel
	ft   bool

	// cpu is the firmware processor (LANai); pci the host-DMA engine.
	cpu *sim.Resource
	pci *sim.Resource

	routes map[topology.NodeID]routing.Route

	freeBuffers int
	bufGate     sim.Gate

	txQueue []txItem
	txBusy  bool

	snd        *retrans.Sender
	rcv        *retrans.Receiver
	delayedAck map[topology.NodeID]sim.Timer
	inRemap    map[topology.NodeID]bool
	live       map[topology.NodeID]*liveSession
	// deposited tracks, per source, the newest (gen, seq) whose data has
	// completed its DMA into host memory — the acknowledgment horizon
	// under reliable-reception semantics (deposits are FIFO through the
	// PCI engine, so this is cumulative).
	deposited map[topology.NodeID]depositMark

	dropper fault.Dropper
	opts    Options

	ctr *stats.Counters
	mx  *metrics.Scope
}

// inc bumps both the legacy per-NIC counter and the metrics-layer counter
// (namespaced nic.*, labeled with this host).
func (n *NIC) inc(name string, k uint64) {
	n.ctr.Inc(name, k)
	n.mx.Add("nic."+name, k)
}

// emit records a trace event if a tracer is wired.
func (n *NIC) emit(kind trace.Kind, peer topology.NodeID, gen uint32, seq uint64, msg uint64) {
	if n.opts.Tracer == nil {
		return
	}
	n.opts.Tracer.Trace(trace.Event{
		At: n.k.Now(), Node: n.node, Kind: kind, Peer: peer, Gen: gen, Seq: seq, Msg: msg,
	})
}

// msgOf returns the VMMC message ID a data frame belongs to (0 for
// control frames), so trace events can be grouped into message spans.
func msgOf(frame *proto.Frame) uint64 {
	if frame.Data != nil {
		return frame.Data.MsgID
	}
	return 0
}

// New creates a NIC for host `node`, attaches it to the fabric, and (in FT
// mode) starts the retransmission timer.
func New(k *sim.Kernel, fab Wire, node topology.NodeID, opts Options) *NIC {
	if opts.Cost == (CostModel{}) {
		opts.Cost = DefaultCostModel()
	}
	opts.Retrans = opts.Retrans.Defaults()
	n := &NIC{
		k:           k,
		fab:         fab,
		node:        node,
		cost:        opts.Cost,
		ft:          opts.FT,
		cpu:         sim.NewResource(k, fmt.Sprintf("nic%d-cpu", node)),
		pci:         sim.NewResource(k, fmt.Sprintf("nic%d-pci", node)),
		routes:      make(map[topology.NodeID]routing.Route),
		freeBuffers: opts.Retrans.QueueSize,
		delayedAck:  make(map[topology.NodeID]sim.Timer),
		inRemap:     make(map[topology.NodeID]bool),
		live:        make(map[topology.NodeID]*liveSession),
		deposited:   make(map[topology.NodeID]depositMark),
		dropper:     opts.Dropper,
		opts:        opts,
		ctr:         stats.NewCounters(),
	}
	if n.dropper == nil {
		n.dropper = fault.None{}
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	n.mx = reg.Scope(metrics.HostLabels(int(node)))
	if opts.FT {
		n.snd = retrans.NewSender(opts.Retrans)
		n.rcv = retrans.NewReceiver(opts.Retrans)
		n.scheduleTimer()
	}
	n.registerGauges()
	fab.AttachHost(node, n.onWire)
	return n
}

// registerGauges publishes the NIC's instantaneous state as derived
// gauges: DMA/firmware occupancy, SRAM pool, and protocol queue depth.
func (n *NIC) registerGauges() {
	n.mx.GaugeFunc("nic.cpu.busy_ns", func() float64 { return float64(n.cpu.BusyTime()) })
	n.mx.GaugeFunc("nic.cpu.dispatches", func() float64 { return float64(n.cpu.Served()) })
	n.mx.GaugeFunc("nic.pci.busy_ns", func() float64 { return float64(n.pci.BusyTime()) })
	n.mx.GaugeFunc("nic.pci.dispatches", func() float64 { return float64(n.pci.Served()) })
	n.mx.GaugeFunc("nic.sram.free_buffers", func() float64 { return float64(n.freeBuffers) })
	n.mx.GaugeFunc("nic.sram.in_use", func() float64 {
		return float64(n.opts.Retrans.QueueSize - n.freeBuffers)
	})
	n.mx.GaugeFunc("nic.tx.queue_depth", func() float64 { return float64(len(n.txQueue)) })
	if n.snd != nil {
		n.mx.GaugeFunc("retrans.queue_depth", func() float64 { return float64(n.snd.TotalUnacked()) })
	}
	if n.opts.Liveness != nil {
		n.mx.GaugeFunc("liveness.sessions_up", func() float64 {
			c := 0
			for _, ls := range n.live {
				if ls.s.State() == liveness.Up {
					c++
				}
			}
			return float64(c)
		})
	}
}

// MetricsScope returns the NIC's host-labeled metrics scope, shared with
// the layers stacked on this NIC (mapper, remap manager).
func (n *NIC) MetricsScope() *metrics.Scope { return n.mx }

// Node returns the host this NIC belongs to.
func (n *NIC) Node() topology.NodeID { return n.node }

// SetOnDeliver replaces the accepted-data upcall (used by the VMMC layer,
// which is constructed after the NIC).
func (n *NIC) SetOnDeliver(fn func(*proto.Frame)) { n.opts.OnDeliver = fn }

// SetOnProbe replaces the probe-reply upcall (used by the mapping layer).
func (n *NIC) SetOnProbe(fn func(*proto.Frame)) { n.opts.OnProbe = fn }

// SetOnPathStale replaces the permanent-failure-suspected upcall.
func (n *NIC) SetOnPathStale(fn func(dst topology.NodeID)) { n.opts.OnPathStale = fn }

// SetOnNoRoute replaces the missing-route upcall.
func (n *NIC) SetOnNoRoute(fn func(dst topology.NodeID)) { n.opts.OnNoRoute = fn }

// SetOnSessionDown replaces the liveness session-down upcall.
func (n *NIC) SetOnSessionDown(fn func(dst topology.NodeID)) { n.opts.OnSessionDown = fn }

// SetTracer wires (or removes, with nil) a packet-event tracer.
func (n *NIC) SetTracer(tr trace.Tracer) { n.opts.Tracer = tr }

// EmitEvent records a trace event on behalf of a layer above the NIC (the
// remap manager uses it for remap-lifecycle events). No-op without a tracer.
func (n *NIC) EmitEvent(kind trace.Kind, peer topology.NodeID) { n.emit(kind, peer, 0, 0, 0) }

// EmitMsgEvent records a message-level trace event on behalf of the VMMC
// layer (host send, message completion). No-op without a tracer.
func (n *NIC) EmitMsgEvent(kind trace.Kind, peer topology.NodeID, msg uint64) {
	n.emit(kind, peer, 0, 0, msg)
}

// Tracer returns the tracer wired into this NIC (nil if none).
func (n *NIC) Tracer() trace.Tracer { return n.opts.Tracer }

// InRemap reports whether the NIC is holding stale-path/no-route upcalls
// for dst because a remap is (believed to be) in progress. At quiesce this
// should be false for every destination with pending traffic — true there
// means the recovery path wedged.
func (n *NIC) InRemap(dst topology.NodeID) bool { return n.inRemap[dst] }

// PendingDelayedAcks returns the number of armed delayed-ack timers — a
// quiesce invariant: after traffic drains, every requested ack must have
// been emitted (piggybacked or explicit) and no timer left armed.
func (n *NIC) PendingDelayedAcks() int {
	c := 0
	for _, t := range n.delayedAck {
		if t.Pending() {
			c++
		}
	}
	return c
}

// SetDropper replaces the send-side error injector (nil disables
// injection). Used by experiments that need non-default loss models.
func (n *NIC) SetDropper(d fault.Dropper) {
	if d == nil {
		d = fault.None{}
	}
	n.dropper = d
}

// Counters returns the NIC's event counters.
func (n *NIC) Counters() *stats.Counters { return n.ctr }

// CPU returns the firmware processor resource (for utilization reporting).
func (n *NIC) CPU() *sim.Resource { return n.cpu }

// PCI returns the host-DMA engine resource.
func (n *NIC) PCI() *sim.Resource { return n.pci }

// ProtoSender exposes retransmission-protocol sender state (nil without FT).
func (n *NIC) ProtoSender() *retrans.Sender { return n.snd }

// ProtoReceiver exposes protocol receiver state (nil without FT).
func (n *NIC) ProtoReceiver() *retrans.Receiver { return n.rcv }

// FreeBuffers returns the number of free send buffers.
func (n *NIC) FreeBuffers() int { return n.freeBuffers }

// Cost returns the NIC's cost model.
func (n *NIC) Cost() CostModel { return n.cost }

// FT reports whether the retransmission protocol is enabled.
func (n *NIC) FT() bool { return n.ft }

// SetRoute installs (or replaces) the source route used for frames to dst.
func (n *NIC) SetRoute(dst topology.NodeID, r routing.Route) {
	n.routes[dst] = r
	delete(n.inRemap, dst)
	n.ensureSession(dst)
}

// Route returns the installed route to dst.
func (n *NIC) Route(dst topology.NodeID) (routing.Route, bool) {
	r, ok := n.routes[dst]
	return r, ok
}

// RemoveRoute invalidates the route to dst (e.g. after a permanent failure
// is detected).
func (n *NIC) RemoveRoute(dst topology.NodeID) { delete(n.routes, dst) }

// Destinations returns the destinations with installed routes, sorted.
func (n *NIC) Destinations() []topology.NodeID {
	out := make([]topology.NodeID, 0, len(n.routes))
	for d := range n.routes {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ---------------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------------

// Send transmits a data frame to frame.Dst from host-process context. It
// blocks (in virtual time) while no send buffer is free, pays the host-side
// cost (PIO or descriptor post), and returns once the host's part is done —
// the asynchronous VMMC send semantics. Delivery is reported to the remote
// host via its OnDeliver.
func (n *NIC) Send(p *sim.Proc, frame *proto.Frame) {
	if frame.Type != proto.FrameData || frame.Data == nil {
		panic("nic: Send is for data frames; use SendControl")
	}
	frame.Src = n.node
	if frame.Stamps.HostStart == 0 {
		frame.Stamps.HostStart = n.k.Now()
	}
	// Reserve a send buffer; block while the pool is exhausted. This is
	// where a small NIC send queue throttles the sender.
	for n.freeBuffers == 0 {
		n.inc("send-buffer-stall", 1)
		n.bufGate.Wait(p)
	}
	n.freeBuffers--

	size := len(frame.Data.Data)
	if size <= n.cost.PIOThreshold {
		// Programmed I/O: the host CPU moves the bytes itself.
		p.Sleep(n.cost.HostPIOSend)
		frame.Stamps.HostDone = n.k.Now()
		n.firmwareSend(frame)
		return
	}
	// DMA: the host posts a descriptor and returns; the PCI engine pulls
	// the data into NIC SRAM and then hands it to the firmware.
	p.Sleep(n.cost.HostDescPost)
	frame.Stamps.HostDone = n.k.Now()
	n.pci.SubmitBytes(size, n.cost.PCIRate, n.cost.PCISetup, func() {
		n.firmwareSend(frame)
	})
}

// firmwareSend is the firmware's per-packet send processing.
func (n *NIC) firmwareSend(frame *proto.Frame) {
	c := n.cost.SendFirmware
	if n.ft {
		c += n.cost.FTSendOverhead
	}
	n.cpu.Submit(c, func() {
		var entry *retrans.Entry
		if n.ft {
			entry = n.snd.Prepare(frame.Dst, n.k.Now(), n.freeBuffers, frame, frame.WireSize())
			frame.Gen = entry.Gen
			frame.Seq = entry.Seq
			frame.AckReq = n.snd.AckRequestFor(entry, n.freeBuffers)
			n.attachPiggyback(frame)
			entry.InFlight++
		}
		n.emit(trace.EvSend, frame.Dst, frame.Gen, frame.Seq, msgOf(frame))
		n.enqueueTX(txItem{frame: frame, entry: entry}, false)
	})
}

// attachPiggyback adds the current cumulative ack for frame.Dst to an
// outgoing data frame, if the receiver side owes that node one (§4.1.2:
// piggy-backed acknowledgments on two-way traffic).
func (n *NIC) attachPiggyback(frame *proto.Frame) {
	if n.snd.Config().NoPiggyback {
		return
	}
	if !n.rcv.PendingAck(frame.Dst) {
		return
	}
	gen, seq, ok := n.ackValue(frame.Dst)
	if !ok {
		return
	}
	frame.HasAck = true
	frame.AckGen = gen
	frame.AckSeq = seq
	n.rcv.AckEmitted(frame.Dst)
	n.cancelDelayedAck(frame.Dst)
	n.inc("acks-piggybacked", 1)
}

// SendControl queues a control frame (ack or probe) for transmission. If
// route is nil the installed route for frame.Dst is used. Control frames
// bypass the buffer pool and the retransmission protocol entirely: they
// are fire-and-forget, as acknowledgments must be (§4.1.1: "acknowledgments
// are not critical... they can be dropped").
func (n *NIC) SendControl(frame *proto.Frame, route routing.Route) {
	frame.Src = n.node
	if route == nil {
		r, ok := n.routes[frame.Dst]
		if !ok {
			n.inc("control-no-route", 1)
			return
		}
		route = r
	}
	frame.Probe = cloneProbe(frame.Probe)
	frame.ControlRoute = route
	n.enqueueTX(txItem{frame: frame}, false)
}

func cloneProbe(p *proto.ProbePayload) *proto.ProbePayload {
	if p == nil {
		return nil
	}
	c := *p
	c.ReturnRoute = p.ReturnRoute.Clone()
	return &c
}

// enqueueTX appends (or, for retransmissions, prepends) a packet to the
// transmit queue and starts the transmitter if idle.
func (n *NIC) enqueueTX(it txItem, front bool) {
	if front {
		n.txQueue = append([]txItem{it}, n.txQueue...)
	} else {
		n.txQueue = append(n.txQueue, it)
	}
	n.kickTX()
}

// kickTX pushes the next queued packet onto the wire. The NIC has one
// network-send DMA: one packet streams at a time, and the next starts when
// the previous packet's tail has left the SRAM (OnInjectDone).
func (n *NIC) kickTX() {
	for !n.txBusy && len(n.txQueue) > 0 {
		it := n.txQueue[0]
		n.txQueue = n.txQueue[1:]
		frame := it.frame

		// Send-side error injection (§5.1.3): the packet goes to the
		// retransmission queue as if transmitted, but never touches the
		// wire.
		if frame.Type == proto.FrameData && n.dropper.ShouldDrop() {
			n.inc("err-injected-drops", 1)
			n.emit(trace.EvErrDrop, frame.Dst, frame.Gen, frame.Seq, msgOf(frame))
			if n.ft && it.entry != nil {
				n.snd.OnTransmitted(it.entry, n.k.Now())
				it.entry.InFlight--
			} else {
				n.releaseBuffer()
			}
			continue
		}

		route := frame.ControlRoute
		if route == nil {
			r, ok := n.routes[frame.Dst]
			if !ok {
				n.inc("tx-no-route", 1)
				if n.ft && it.entry != nil {
					// Keep the entry queued; the timer will retry once a
					// route exists. Mark transmitted so the timer owns it.
					n.snd.OnTransmitted(it.entry, n.k.Now())
					it.entry.InFlight--
					n.noRoute(frame.Dst)
				} else {
					n.releaseBuffer()
				}
				continue
			}
			route = r
		}

		frame.Stamps.Injected = n.k.Now()
		if n.ft && it.entry != nil {
			n.snd.OnTransmitted(it.entry, n.k.Now())
		}
		isData := frame.Type == proto.FrameData
		entry := it.entry
		pkt := &fabric.Packet{
			Route:   route.Clone(),
			Dst:     frame.Dst,
			Size:    frame.WireSize(),
			Payload: frame,
			Gen:     frame.Gen,
			Seq:     frame.Seq,
			Msg:     msgOf(frame),
			OnInjectDone: func() {
				n.txBusy = false
				if entry != nil {
					entry.InFlight--
				}
				if !n.ft && isData {
					n.releaseBuffer()
				}
				n.kickTX()
			},
		}
		n.txBusy = true
		n.inc("pkts-sent", 1)
		if frame.Type == proto.FrameData {
			n.emit(trace.EvInject, frame.Dst, frame.Gen, frame.Seq, msgOf(frame))
		}
		n.fab.Inject(n.node, pkt)
		return
	}
}

// releaseBuffer returns one send buffer to the pool and wakes a blocked
// sender.
func (n *NIC) releaseBuffer() {
	n.freeBuffers++
	n.bufGate.Signal()
}

func (n *NIC) releaseBuffers(k int) {
	if k == 0 {
		return
	}
	n.freeBuffers += k
	n.bufGate.Broadcast()
}

func (n *NIC) noRoute(dst topology.NodeID) {
	if n.opts.OnNoRoute != nil && !n.inRemap[dst] {
		n.inRemap[dst] = true
		n.emit(trace.EvNoRoute, dst, 0, 0, 0)
		n.opts.OnNoRoute(dst)
	}
}

// ---------------------------------------------------------------------------
// Retransmission timer
// ---------------------------------------------------------------------------

func (n *NIC) scheduleTimer() {
	interval := n.snd.Config().Interval
	// Desynchronize timer phases across NICs (real NICs boot at
	// arbitrary instants). Without this, symmetric workloads can
	// retransmit in lockstep after a synchronized watchdog reset and
	// re-deadlock forever — a livelock only possible because the
	// simulation starts every NIC at t=0.
	phase := time.Duration(int64(n.node)%16) * (interval / 16)
	if n.snd.Config().Adaptive {
		n.k.After(interval+phase, n.adaptiveTimerFire)
		return
	}
	var tick func()
	tick = func() {
		n.timerFire()
		n.k.After(interval, tick)
	}
	n.k.After(interval+phase, tick)
}

// timerFire is the single periodic retransmission timer: one firmware scan
// over the per-destination queues.
func (n *NIC) timerFire() {
	active := len(n.routes)
	cost := n.cost.TimerScanCost + time.Duration(active)*n.cost.TimerPerDestCost
	n.cpu.Submit(cost, n.timerScan)
}

// timerScan is the scan body, run in firmware (cpu) context.
func (n *NIC) timerScan() {
	now := n.k.Now()
	batches := n.snd.Tick(now)
	for _, b := range batches {
		n.retransmitBatch(b)
	}
	if n.opts.OnPathStale != nil {
		for _, dst := range n.snd.StalePaths(now) {
			if !n.inRemap[dst] {
				n.inRemap[dst] = true
				n.emit(trace.EvPathStale, dst, 0, 0, 0)
				n.opts.OnPathStale(dst)
			}
		}
	}
}

// adaptiveTimerFire is the deadline-driven variant of the scan used with
// Retrans.Adaptive: after each scan the next one is scheduled at the
// earliest per-destination timeout deadline (clamped between RTOMin/2 and
// the fixed Interval) instead of a free-running period, so a timeout is
// detected within half an RTO-floor of expiring rather than up to a full
// period late.
func (n *NIC) adaptiveTimerFire() {
	active := len(n.routes)
	cost := n.cost.TimerScanCost + time.Duration(active)*n.cost.TimerPerDestCost
	n.cpu.Submit(cost, func() {
		n.timerScan()
		cfg := n.snd.Config()
		delay := cfg.Interval
		if dl, ok := n.snd.NextDeadline(); ok {
			if d := dl.Sub(n.k.Now()); d < delay {
				delay = d
			}
		}
		floor := cfg.RTOMin / 2
		if floor <= 0 {
			floor = 50 * time.Microsecond
		}
		if delay < floor {
			delay = floor
		}
		n.k.After(delay, n.adaptiveTimerFire)
	})
}

// noteAcked records the acknowledgment latency of freed entries: how long
// each sat in the retransmission queue since its last (re)transmission.
func (n *NIC) noteAcked(freed []*retrans.Entry) {
	if len(freed) == 0 {
		return
	}
	now := n.k.Now()
	h := n.mx.Histogram("retrans.ack_latency_ns")
	for _, e := range freed {
		h.Observe(now.Sub(e.LastSent))
	}
}

// retransmitBatch re-enqueues a go-back-N batch at the front of the TX
// queue, in order, cloning each frame (an original may still be in flight).
// The final frame requests an immediate ack so the sender resynchronizes
// in one round trip.
func (n *NIC) retransmitBatch(b retrans.Batch) {
	n.inc("retransmit-bursts", 1)
	// detect_ns is the honest timeout-detection latency: the timeout in
	// force plus the scan-quantization wait; scan_wait_ns isolates that
	// second component (up to a full period for the fixed free-running
	// timer, at most RTOMin/2 + scan cost for the adaptive one).
	n.mx.Observe("retrans.detect_ns", b.Oldest)
	n.mx.Observe("retrans.scan_wait_ns", b.Waited)
	cost := time.Duration(len(b.Entries)) * n.cost.RetransPktCost
	n.cpu.Submit(cost, func() {
		items := make([]txItem, 0, len(b.Entries))
		for i, e := range b.Entries {
			orig, ok := e.Payload.(*proto.Frame)
			if !ok {
				continue
			}
			f := *orig
			f.Retransmitted = true
			f.HasAck = false
			f.Gen = e.Gen
			f.Seq = e.Seq
			if i == len(b.Entries)-1 {
				f.AckReq = proto.AckImmediate
			}
			n.attachPiggybackIfAny(&f)
			n.inc("pkts-retransmitted", 1)
			n.emit(trace.EvRetransmit, f.Dst, f.Gen, f.Seq, msgOf(&f))
			e.InFlight++
			items = append(items, txItem{frame: &f, entry: e})
		}
		// Prepend preserving batch order.
		n.txQueue = append(items, n.txQueue...)
		n.kickTX()
	})
}

func (n *NIC) attachPiggybackIfAny(frame *proto.Frame) {
	if n.rcv != nil && n.rcv.PendingAck(frame.Dst) {
		n.attachPiggyback(frame)
	}
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

// onWire is the fabric delivery callback: a packet's tail has arrived in
// NIC SRAM.
func (n *NIC) onWire(pkt *fabric.Packet) {
	frame, ok := pkt.Payload.(*proto.Frame)
	if !ok {
		panic("nic: non-frame payload on the wire")
	}
	frame.Stamps.Delivered = pkt.Delivered
	var cost time.Duration
	switch frame.Type {
	case proto.FrameAck:
		cost = n.cost.AckRecvCost
	case proto.FrameData:
		cost = n.cost.RecvFirmware
		if n.ft {
			cost += n.cost.FTRecvOverhead
		}
	default:
		cost = n.cost.ProbeCost
	}
	n.cpu.Submit(cost, func() {
		n.processFrame(frame, pkt)
		// The packet shell is dead once receive firmware returns; recycle
		// pooled (shard-boundary) storage. No-op for ordinary packets.
		pkt.Release()
	})
}

func (n *NIC) processFrame(frame *proto.Frame, pkt *fabric.Packet) {
	// The CRC check covers every frame type; corrupted packets are
	// dropped after the check cost is paid.
	if pkt.Corrupted {
		n.inc("crc-drops", 1)
		n.emit(trace.EvCrcDrop, frame.Src, frame.Gen, frame.Seq, msgOf(frame))
		frame.Release()
		return
	}
	// Frames the receive path fully consumes are released at their last
	// use: acks and liveness here, data frames at the end of their deposit
	// path (processData owns them from here). Probe-family and
	// route-update frames are never pooled — interior references outlive
	// the receive path — so they need no release. In sequential mode every
	// frame is the sender's original (Release no-ops on it).
	switch frame.Type {
	case proto.FrameAck:
		n.processAck(frame.Src, frame.AckGen, frame.AckSeq)
		frame.Release()
	case proto.FrameData:
		n.processData(frame)
	case proto.FrameHostProbe:
		n.answerHostProbe(frame)
	case proto.FrameHostProbeReply, proto.FrameEchoProbe:
		if n.opts.OnProbe != nil {
			n.opts.OnProbe(frame)
		}
	case proto.FrameRouteUpdate:
		if frame.Probe != nil {
			n.SetRoute(frame.Src, frame.Probe.ReturnRoute)
			n.inc("route-updates", 1)
		}
	case proto.FrameLiveness:
		n.onLiveness(frame)
		frame.Release()
	}
}

func (n *NIC) processAck(from topology.NodeID, gen uint32, seq uint64) {
	if !n.ft {
		return
	}
	n.inc("acks-received", 1)
	n.emit(trace.EvAckRx, from, gen, seq, 0)
	freed := n.snd.OnAck(from, gen, seq, n.k.Now())
	n.noteAcked(freed)
	n.releaseBuffers(len(freed))
}

func (n *NIC) processData(frame *proto.Frame) {
	// Piggybacked ack first: it frees buffers regardless of the data
	// verdict.
	if n.ft && frame.HasAck {
		freed := n.snd.OnAck(frame.Src, frame.AckGen, frame.AckSeq, n.k.Now())
		n.noteAcked(freed)
		n.releaseBuffers(len(freed))
	}
	rr := n.ft && n.snd.Config().ReliableReception
	var verdict retrans.Verdict
	if n.ft {
		verdict = n.rcv.OnData(frame.Src, frame.Gen, frame.Seq, frame.AckReq)
		if !rr {
			if verdict.AckNow {
				n.sendAck(frame.Src)
			} else if verdict.ArmDelayed {
				n.armDelayedAck(frame.Src)
			}
		} else if !verdict.Accept && verdict.AckNow {
			// Duplicate under reliable reception: re-ack up to the
			// deposit horizon.
			n.sendAck(frame.Src)
		}
		if !verdict.Accept {
			n.inc("rx-dropped", 1)
			if n.rcv.Expected(frame.Src) > frame.Seq {
				n.inc("rx-dup-drops", 1)
				n.emit(trace.EvDupDrop, frame.Src, frame.Gen, frame.Seq, msgOf(frame))
			} else {
				n.inc("rx-ooo-drops", 1)
				n.emit(trace.EvOooDrop, frame.Src, frame.Gen, frame.Seq, msgOf(frame))
			}
			frame.Release()
			return
		}
	}
	frame.Stamps.NICRecvDone = n.k.Now()
	n.inc("pkts-accepted", 1)
	n.emit(trace.EvAccept, frame.Src, frame.Gen, frame.Seq, msgOf(frame))
	// Deposit into host memory through the PCI engine, then notify.
	size := len(frame.Data.Data)
	n.pci.SubmitBytes(size, n.cost.PCIRate, n.cost.PCISetup, func() {
		if rr {
			// The data is now in host memory: advance the ack horizon
			// and perform the deferred acknowledgment actions.
			n.deposited[frame.Src] = depositMark{gen: frame.Gen, seq: frame.Seq, valid: true}
			if verdict.AckNow {
				n.sendAck(frame.Src)
			} else if verdict.ArmDelayed {
				n.armDelayedAck(frame.Src)
			}
		}
		n.k.After(n.cost.HostNotify, func() {
			frame.Stamps.HostRecvDone = n.k.Now()
			if n.opts.OnDeliver != nil {
				n.opts.OnDeliver(frame)
			}
			// Host consumption is the end of a received data frame's life;
			// recycle pooled storage (no-op on a sender's original).
			frame.Release()
		})
	})
}

// ackValue returns the cumulative ack to advertise to `to`: the NIC-accept
// horizon under reliable delivery, or the host-deposit horizon under
// reliable reception.
func (n *NIC) ackValue(to topology.NodeID) (uint32, uint64, bool) {
	if n.snd.Config().ReliableReception {
		m := n.deposited[to]
		return m.gen, m.seq, m.valid
	}
	return n.rcv.CumAck(to)
}

// sendAck emits an explicit cumulative acknowledgment to `to`.
func (n *NIC) sendAck(to topology.NodeID) {
	gen, seq, ok := n.ackValue(to)
	if !ok {
		return
	}
	n.cancelDelayedAck(to)
	n.rcv.AckEmitted(to)
	n.cpu.Submit(n.cost.AckSendCost, func() {
		n.inc("acks-sent", 1)
		n.emit(trace.EvAckTx, to, gen, seq, 0)
		ack := &proto.Frame{
			Type:   proto.FrameAck,
			Dst:    to,
			HasAck: true,
			AckGen: gen,
			AckSeq: seq,
		}
		n.SendControl(ack, nil)
	})
}

// armDelayedAck starts the piggyback-or-explicit delayed ack timer for src
// if it is not already running.
func (n *NIC) armDelayedAck(src topology.NodeID) {
	if t, ok := n.delayedAck[src]; ok && t.Pending() {
		return
	}
	n.delayedAck[src] = n.k.After(n.snd.Config().DelayedAck, func() {
		delete(n.delayedAck, src)
		if n.rcv.PendingAck(src) {
			n.sendAck(src)
		}
	})
}

func (n *NIC) cancelDelayedAck(src topology.NodeID) {
	if t, ok := n.delayedAck[src]; ok {
		t.Cancel()
		delete(n.delayedAck, src)
	}
}

// answerHostProbe replies to a mapping probe with this host's identity,
// along the probe's return route. Pure firmware behavior: the host never
// sees probes.
func (n *NIC) answerHostProbe(frame *proto.Frame) {
	if frame.Probe == nil {
		return
	}
	n.inc("probes-answered", 1)
	reply := &proto.Frame{
		Type: proto.FrameHostProbeReply,
		Dst:  frame.Probe.Mapper,
		Probe: &proto.ProbePayload{
			ProbeID:   frame.Probe.ProbeID,
			Mapper:    frame.Probe.Mapper,
			ReplierID: n.node,
		},
	}
	n.SendControl(reply, frame.Probe.ReturnRoute)
}

// ---------------------------------------------------------------------------
// Remapping support (used by the mapping layer)
// ---------------------------------------------------------------------------

// ResetPath installs a new route for dst, starts a new sequence generation,
// and re-enqueues every pending packet under the new numbering (§4.2).
func (n *NIC) ResetPath(dst topology.NodeID, route routing.Route) {
	if !n.ft {
		n.SetRoute(dst, route)
		return
	}
	n.SetRoute(dst, route)
	entries := n.snd.ResetGeneration(dst, n.k.Now())
	for _, e := range entries {
		orig, ok := e.Payload.(*proto.Frame)
		if !ok {
			continue
		}
		f := *orig
		f.Gen = e.Gen
		f.Seq = e.Seq
		f.HasAck = false
		f.Retransmitted = true
		e.Payload = &f
		e.InFlight++
		n.enqueueTX(txItem{frame: &f, entry: e}, false)
	}
	n.inc("path-resets", 1)
	n.emit(trace.EvGenReset, dst, n.snd.Generation(dst), 0, 0)
}

// MarkUnreachable drops all pending packets for dst and frees their
// buffers; further traffic to dst is discarded until a route is installed.
func (n *NIC) MarkUnreachable(dst topology.NodeID) {
	delete(n.inRemap, dst)
	n.RemoveRoute(dst)
	if n.ft {
		dropped := n.snd.MarkUnreachable(dst)
		n.releaseBuffers(len(dropped))
		n.inc("pkts-dropped-unreachable", uint64(len(dropped)))
		n.emit(trace.EvUnreachable, dst, 0, uint64(len(dropped)), 0)
	}
}
