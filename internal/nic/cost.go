// Package nic models the network interface controller: a LANai-class
// firmware processor with SRAM send buffers, a PCI DMA engine, and a
// transmit path into the fabric. The retransmission protocol
// (internal/retrans) runs inside the firmware, exactly as the paper's
// scheme runs inside the Myrinet control program.
//
// The model is calibrated (CostModel) so that the no-fault-tolerance
// baseline matches the paper's platform: ~8µs one-way latency for a 4-byte
// message through one switch, ~120 MB/s PCI-limited bandwidth for large
// messages, and a ~16µs minimum round trip. Fault tolerance adds ~1µs of
// firmware occupancy on each side, reproducing the 8→10µs shift of
// Figure 3.
package nic

import "time"

// CostModel holds the per-operation costs of the simulated hardware.
type CostModel struct {
	// HostPIOSend is the host CPU cost to write a small (≤PIOThreshold)
	// message into NIC SRAM with programmed I/O.
	HostPIOSend time.Duration
	// HostDescPost is the host CPU cost to post a DMA descriptor for a
	// larger message.
	HostDescPost time.Duration

	// PCIRate is the effective host↔NIC DMA bandwidth in bytes/sec
	// (32-bit PCI: ~125 MB/s effective of the 132 MB/s theoretical).
	PCIRate float64
	// PCISetup is the fixed per-transfer DMA setup cost.
	PCISetup time.Duration

	// SendFirmware is the firmware occupancy to process one outgoing
	// packet (descriptor fetch, header build, route lookup, TX setup).
	SendFirmware time.Duration
	// RecvFirmware is the firmware occupancy to process one incoming
	// packet (CRC check, demux, receive-DMA setup).
	RecvFirmware time.Duration

	// FTSendOverhead and FTRecvOverhead are the extra firmware occupancy
	// per data packet when the retransmission protocol is enabled:
	// sequence assignment and retransmission-queue management on the
	// send side, sequence checking and ack bookkeeping on the receive
	// side. Figure 3 measures ≈1.0µs each.
	FTSendOverhead time.Duration
	FTRecvOverhead time.Duration

	// AckSendCost is the firmware cost to build and queue an explicit
	// acknowledgment frame.
	AckSendCost time.Duration
	// AckRecvCost is the firmware cost to process an arriving explicit
	// acknowledgment (frees retransmission-queue entries).
	AckRecvCost time.Duration
	// RetransPktCost is the firmware cost per packet re-enqueued by the
	// go-back-N engine (queue manipulation only — no copies).
	RetransPktCost time.Duration

	// TimerScanCost and TimerPerDestCost model the periodic
	// retransmission timer: one scan plus a per-active-destination
	// check. The paper maintains a single timer per NIC, so this runs
	// once per interval regardless of traffic.
	TimerScanCost    time.Duration
	TimerPerDestCost time.Duration

	// ProbeCost is the firmware cost to process or answer a mapping
	// probe.
	ProbeCost time.Duration

	// HostNotify is the cost to post a receive notification to the host
	// after depositing data (no interrupt: VMMC writes a status flag).
	HostNotify time.Duration

	// PIOThreshold: messages of at most this many bytes go by programmed
	// I/O; larger ones by DMA. VMMC uses 32 bytes.
	PIOThreshold int
	// MTU is the maximum data payload per packet; VMMC segments larger
	// messages into 4-KByte chunks.
	MTU int
}

// DefaultCostModel returns constants calibrated to the paper's testbed
// (450 MHz PII hosts, 66 MHz LANai 7, 32-bit PCI).
func DefaultCostModel() CostModel {
	return CostModel{
		HostPIOSend:      700 * time.Nanosecond,
		HostDescPost:     500 * time.Nanosecond,
		PCIRate:          125e6,
		PCISetup:         800 * time.Nanosecond,
		SendFirmware:     3000 * time.Nanosecond,
		RecvFirmware:     2400 * time.Nanosecond,
		FTSendOverhead:   1000 * time.Nanosecond,
		FTRecvOverhead:   1000 * time.Nanosecond,
		AckSendCost:      700 * time.Nanosecond,
		AckRecvCost:      600 * time.Nanosecond,
		RetransPktCost:   500 * time.Nanosecond,
		TimerScanCost:    500 * time.Nanosecond,
		TimerPerDestCost: 100 * time.Nanosecond,
		ProbeCost:        1000 * time.Nanosecond,
		HostNotify:       600 * time.Nanosecond,
		PIOThreshold:     32,
		MTU:              4096,
	}
}
