package nic

import (
	"sanft/internal/liveness"
	"sanft/internal/proto"
	"sanft/internal/sim"
	"sanft/internal/topology"
	"sanft/internal/trace"
)

// liveSession binds one liveness.Session to this NIC's hardware: the
// session is pure protocol state; the NIC owns its transmit loop and the
// detection timer.
type liveSession struct {
	s      *liveness.Session
	detect sim.Timer
}

// ensureSession creates (once) the liveness session toward dst and starts
// its transmit loop. Called from SetRoute, so every routed destination is
// monitored — including fresh routes installed by a remap.
func (n *NIC) ensureSession(dst topology.NodeID) {
	if n.opts.Liveness == nil || dst == n.node {
		return
	}
	if _, ok := n.live[dst]; ok {
		return
	}
	cfg := *n.opts.Liveness
	// Mix the endpoints into the seed so every session jitters on its own
	// stream; the base seed comes from the cluster configuration.
	cfg.Seed = cfg.Seed*1000193 + int64(n.node)*8191 + int64(dst)*127 + 5
	ls := &liveSession{s: liveness.NewSession(cfg, n.node, dst)}
	n.live[dst] = ls
	// The first transmission takes a full jittered interval, like a NIC
	// booting at an arbitrary instant — sessions never start in lockstep.
	n.k.After(ls.s.NextTxDelay(), func() { n.liveTx(dst) })
}

// Session returns the liveness session toward dst (nil when liveness is
// off or no route was ever installed).
func (n *NIC) Session(dst topology.NodeID) *liveness.Session {
	if ls := n.live[dst]; ls != nil {
		return ls.s
	}
	return nil
}

// liveTx builds and sends one control packet for dst's session, then
// re-arms itself after the session's jittered (and, while down, backed
// off) transmit interval. Control packets share the ack-send firmware
// cost and ride SendControl: fire-and-forget, dropped freely.
func (n *NIC) liveTx(dst topology.NodeID) {
	ls := n.live[dst]
	if ls == nil {
		return
	}
	n.cpu.Submit(n.cost.AckSendCost, func() {
		p := ls.s.BuildTx(n.k.Now())
		n.mx.Add("liveness.tx", 1)
		n.SendControl(&proto.Frame{Type: proto.FrameLiveness, Dst: dst, Live: p}, nil)
		n.k.After(ls.s.NextTxDelay(), func() { n.liveTx(dst) })
	})
}

// onLiveness processes a received liveness control packet: session state
// machine, RTT sampling into the adaptive retransmission timer, and
// detection-timer re-arm. Session transitions emit trace events; a drop
// to Down raises the session-down recovery upcall.
func (n *NIC) onLiveness(frame *proto.Frame) {
	if n.opts.Liveness == nil || frame.Live == nil {
		return
	}
	src := frame.Src
	// A control packet can arrive before any route to its sender exists
	// (asymmetric mapping states); answer with a session anyway so the
	// peer can complete its handshake once connectivity returns.
	n.ensureSession(src)
	ls := n.live[src]
	if ls == nil {
		return
	}
	now := n.k.Now()
	n.mx.Add("liveness.rx", 1)
	r := ls.s.OnRx(frame.Live, now)
	if r.HasRTT {
		n.mx.Observe("liveness.rtt_ns", r.RTT)
		if n.snd != nil {
			n.snd.ObserveRTT(src, r.RTT)
		}
	}
	// Every received packet re-arms detection with the (possibly renegotiated)
	// detection time.
	ls.detect.Cancel()
	ls.detect = n.k.After(ls.s.DetectionTime(), func() { n.liveDetect(src) })
	if r.StateChanged {
		switch r.New {
		case liveness.Up:
			n.mx.Add("liveness.session_up", 1)
			n.emit(trace.EvLiveUp, src, 0, 0, 0)
		case liveness.Down:
			// Peer advertised Down (its detector fired or it restarted).
			n.mx.Add("liveness.session_down", 1)
			n.emit(trace.EvLiveDown, src, 0, 0, 0)
			n.sessionDown(src)
		}
	}
}

// liveDetect fires when a session's detection time elapses with no
// control packet: the path is declared dead long before the fixed
// permanent-failure threshold or watchdog would notice.
func (n *NIC) liveDetect(dst topology.NodeID) {
	ls := n.live[dst]
	if ls == nil || !ls.s.OnDetectTimeout() {
		return
	}
	lat := ls.s.SilenceFor(n.k.Now())
	n.mx.Add("liveness.session_down", 1)
	n.mx.Observe("liveness.detect_ns", lat)
	n.emit(trace.EvLiveDown, dst, 0, uint64(lat), 0)
	n.sessionDown(dst)
}

// sessionDown raises the recovery upcall, sharing the at-most-once-per-
// remap-cycle guard with the stale-path and no-route detectors so one
// fault never triggers a second remap for the same destination.
func (n *NIC) sessionDown(dst topology.NodeID) {
	if n.opts.OnSessionDown != nil && !n.inRemap[dst] {
		n.inRemap[dst] = true
		n.opts.OnSessionDown(dst)
	}
}
