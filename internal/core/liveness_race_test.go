package core_test

// Session-down vs the fixed detectors: a liveness session, the
// permanent-failure (path-stale) detector, and the fabric watchdog all
// watch the same dead trunk, and each may fire first depending on when
// the link heals. The sweep below moves the heal instant across that
// window (mirroring TestRemapRacesWatchdogReset) and asserts that every
// interleaving keeps the protocol contract: the shared at-most-once
// guard must prevent a double remap for one fault, and no interleaving
// may lose an inject-done notification (which the buffer-conservation
// invariant would expose as a leaked NIC buffer).

import (
	"fmt"
	"testing"
	"time"

	"sanft/internal/chaos"
	"sanft/internal/core"
	"sanft/internal/fabric"
	"sanft/internal/liveness"
	"sanft/internal/retrans"
	"sanft/internal/topology"
)

// TestSessionDownRacesWatchdogReset: trunk dies at 1ms on a single-trunk
// two-switch chain; the liveness session detects at ~2.5ms (500µs
// interval × multiplier 3), the path-stale detector at ~5ms, and the
// (shortened) fabric watchdog flushes wedged worms at 3ms. The heal
// instant sweeps across all of those. Every point must satisfy the full
// oracle — complete delivery, no duplicate notifications, all NIC
// buffers reclaimed, no remap left running — with the cluster-wide
// mapping-run count bounded (a double-remap per fault would break it).
func TestSessionDownRacesWatchdogReset(t *testing.T) {
	for _, healMS := range []int64{2, 3, 4, 5, 6, 8} {
		t.Run(fmt.Sprintf("heal@%dms", healMS), func(t *testing.T) {
			nw, rows := topology.Chain(2, 1, 1)
			var hosts []topology.NodeID
			for _, row := range rows {
				hosts = append(hosts, row...)
			}
			fc := fabric.DefaultConfig()
			fc.Watchdog = 3 * time.Millisecond
			c := core.New(core.Config{
				Net: nw, Hosts: hosts, FT: true,
				Retrans: retrans.Config{
					QueueSize:         16,
					Interval:          time.Millisecond,
					PermFailThreshold: 4 * time.Millisecond,
					Adaptive:          true,
				},
				Liveness: &liveness.Config{DesiredMinTx: 500 * time.Microsecond},
				Mapper:   true,
				Remap: core.RemapPolicy{
					Backoff:         time.Millisecond,
					BackoffMax:      4 * time.Millisecond,
					JitterFrac:      -1,
					QuarantineAfter: 8,
				},
				Fabric: fc,
				Seed:   900 + healMS,
			})
			e := chaos.NewEngine(c, 900+healMS)
			r := chaos.Workload{
				Pairs: chaos.AllPairs(hosts),
				Msgs:  8, Bytes: 256, Gap: 200 * time.Microsecond,
			}.Start(e)

			trunk := chaos.TrunkLinks(nw)[0]
			c.K.After(time.Millisecond, func() { c.Fab.KillLink(trunk) })
			c.K.After(time.Duration(healMS)*time.Millisecond, func() {
				nw.RestoreLink(trunk)
			})

			c.RunFor(3 * time.Second)
			c.Stop()

			if vs := chaos.CheckInvariants(e, r, chaos.CheckOpts{MaxRemapAttempts: 6}); len(vs) != 0 {
				t.Fatalf("heal at %dms violated invariants: %v", healMS, vs)
			}
			reg := c.Metrics()
			if healMS >= 4 {
				// The heal lands after the session detection time: the
				// session must have dropped and fed the recovery path.
				if reg.CounterTotal("liveness.session_down") == 0 {
					t.Fatal("no session-down despite outage outlasting the detection time")
				}
				if c.RemapStats.Attempts == 0 {
					t.Fatal("no remap attempted despite a detected outage")
				}
			}
			// Recovery must always bring every session back up.
			for _, h := range hosts {
				for _, d := range hosts {
					if h == d {
						continue
					}
					if s := c.NIC(h).Session(d); s == nil || s.State() != liveness.Up {
						t.Fatalf("session %d->%d not up after heal (state %v)", h, d, s.State())
					}
				}
			}
		})
	}
}
