package core_test

// Quarantine and backoff edge cases, driven through the proptest topology
// generators and (for the race case) the full simulator harness with its
// invariant oracle. These cover the corners the steady-state remap tests
// miss: what happens when a destination fails again while already paced,
// when the failing route is the last one the fabric has, and when a remap
// run overlaps a fabric-watchdog reset of the same path.

import (
	"fmt"
	"testing"
	"time"

	"sanft/internal/chaos"
	"sanft/internal/core"
	"sanft/internal/proptest"
	"sanft/internal/retrans"
	"sanft/internal/sim"
	"sanft/internal/topology"
)

// edgePolicy paces fast enough that a 5 s run covers many backoff and
// quarantine-release cycles. Jitter is disabled so cycle counts are exact.
func edgePolicy() core.RemapPolicy {
	return core.RemapPolicy{
		Backoff:         time.Millisecond,
		BackoffMax:      4 * time.Millisecond,
		JitterFrac:      -1,
		QuarantineAfter: 3,
		Quarantine:      20 * time.Millisecond,
		QuarantineMax:   80 * time.Millisecond,
	}
}

func edgeRetrans() retrans.Config {
	return retrans.Config{
		QueueSize:         16,
		Interval:          time.Millisecond,
		PermFailThreshold: 4 * time.Millisecond,
	}
}

// TestRequarantineDuringBackoff kills the destination's only link through
// two full outage/heal rounds. Round one: demand arriving during backoff
// must be deferred (not spawn runs), the destination must quarantine
// exactly once no matter how many release probes fail afterwards, and the
// heal must clear it. Round two: a destination that recovered and then
// fails again must walk the whole backoff ladder again and re-enter
// quarantine — the first quarantine is not sticky state.
func TestRequarantineDuringBackoff(t *testing.T) {
	nw, hosts := proptest.TopoSpec{Kind: proptest.TopoStar, Hosts: 2}.Build()
	c := core.New(core.Config{
		Net: nw, Hosts: hosts, FT: true,
		Retrans: edgeRetrans(),
		Mapper:  true,
		Remap:   edgePolicy(),
		Seed:    11,
	})
	src, dst := hosts[0], hosts[1]
	exp := c.Endpoint(dst).Export("in", 4096)
	link := nw.Node(dst).Ports[0]

	delivered := 0
	c.K.Spawn("recv", func(p *sim.Proc) {
		for {
			exp.WaitNotification(p)
			delivered++
		}
	})
	// Steady demand: every send against a dead destination eventually
	// raises an upcall, so the manager sees requests in every state —
	// running, backoff, quarantined.
	c.K.Spawn("send", func(p *sim.Proc) {
		imp, _ := c.Endpoint(src).Import(dst, "in")
		for i := 0; i < 500; i++ {
			imp.Send(p, 0, make([]byte, 64), true)
			p.Sleep(4 * time.Millisecond)
		}
	})

	type snap struct {
		quarantined bool
		stats       core.RemapStats
	}
	var midOutage, afterHeal, secondOutage snap
	take := func(s *snap) func() {
		return func() { *s = snap{c.Quarantined(src, dst), c.RemapStats} }
	}
	// Round one: dead from the start, heal at 500 ms (≈ many release
	// probes past the 3 initial failures), sample just before the heal.
	c.Fab.KillLink(link)
	c.K.After(490*time.Millisecond, take(&midOutage))
	c.K.After(500*time.Millisecond, func() { nw.RestoreLink(link) })
	// Round two: sample after recovery, kill again, sample at the end.
	c.K.After(990*time.Millisecond, take(&afterHeal))
	c.K.After(time.Second, func() { c.Fab.KillLink(link) })
	c.K.After(1900*time.Millisecond, take(&secondOutage))

	c.RunFor(2 * time.Second)
	c.Stop()

	if !midOutage.quarantined {
		t.Fatalf("not quarantined 490ms into a permanent outage: %+v", midOutage.stats)
	}
	if q := midOutage.stats.Quarantines; q != 1 {
		t.Fatalf("quarantine entered %d times during one continuous outage, want exactly 1: %+v",
			q, midOutage.stats)
	}
	if midOutage.stats.Deferred == 0 {
		t.Fatalf("no demand was deferred to a backoff/release timer: %+v", midOutage.stats)
	}
	if afterHeal.quarantined {
		t.Fatalf("quarantine survived the heal and a successful remap: %+v", afterHeal.stats)
	}
	if delivered == 0 {
		t.Fatal("nothing delivered in the healed window between the outages")
	}
	if q := secondOutage.stats.Quarantines; q != 2 {
		t.Fatalf("second outage should re-quarantine (total 2 entries), have %d: %+v",
			q, secondOutage.stats)
	}
	if !secondOutage.quarantined {
		t.Fatalf("not quarantined again by the end of the second outage: %+v", secondOutage.stats)
	}
}

// TestQuarantineLastUsableRoute uses the double-star (the smallest
// redundant fabric, via the proptest generator): losing one trunk must be
// absorbed by a successful remap onto the surviving trunk with no
// quarantine, and only losing that last usable route may quarantine the
// destination and raise the Unreachable upcall.
func TestQuarantineLastUsableRoute(t *testing.T) {
	nw, hosts := proptest.TopoSpec{Kind: proptest.TopoDoubleStar, Hosts: 2}.Build()
	var upcalls []topology.NodeID
	c := core.New(core.Config{
		Net: nw, Hosts: hosts, FT: true,
		Retrans: edgeRetrans(),
		Mapper:  true,
		Remap:   edgePolicy(),
		OnUnreachable: func(src, dst topology.NodeID) {
			upcalls = append(upcalls, dst)
		},
		Seed: 12,
	})
	src, dst := hosts[0], hosts[1]
	exp := c.Endpoint(dst).Export("in", 4096)
	trunks := chaos.TrunkLinks(nw)
	if len(trunks) != 2 {
		t.Fatalf("double star should have 2 trunks, have %d", len(trunks))
	}

	delivered := map[uint64]bool{}
	c.K.Spawn("recv", func(p *sim.Proc) {
		for {
			n := exp.WaitNotification(p)
			delivered[n.MsgID] = true
		}
	})
	// Traffic stops at 500 ms — well before the run ends, so the final
	// quarantine-release probes have quiet time to reclaim the queue.
	c.K.Spawn("send", func(p *sim.Proc) {
		imp, _ := c.Endpoint(src).Import(dst, "in")
		for i := 0; i < 100; i++ {
			imp.Send(p, 0, make([]byte, 64), true)
			p.Sleep(5 * time.Millisecond)
		}
	})

	var afterFirst struct {
		quarantined bool
		remaps      int
		quarantines int
	}
	// First trunk dies at 10 ms; by 300 ms the remap onto the survivor
	// must have happened. The last trunk dies at 310 ms.
	c.K.After(10*time.Millisecond, func() { c.Fab.KillLink(trunks[0]) })
	c.K.After(300*time.Millisecond, func() {
		afterFirst.quarantined = c.Quarantined(src, dst)
		afterFirst.remaps = c.Remaps
		afterFirst.quarantines = c.RemapStats.Quarantines
	})
	c.K.After(310*time.Millisecond, func() { c.Fab.KillLink(trunks[1]) })

	c.RunFor(2 * time.Second)
	c.Stop()

	if afterFirst.remaps == 0 {
		t.Fatal("losing one of two trunks never produced a successful remap")
	}
	if afterFirst.quarantined || afterFirst.quarantines != 0 {
		t.Fatalf("quarantined while an alternate route existed: %+v", afterFirst)
	}
	if len(delivered) == 0 {
		t.Fatal("nothing delivered over the surviving trunk")
	}
	if !c.Quarantined(src, dst) {
		t.Fatal("losing the last usable route did not quarantine the destination")
	}
	if len(upcalls) == 0 || upcalls[0] != dst {
		t.Fatalf("OnUnreachable upcalls = %v, want first for %d", upcalls, dst)
	}
	if c.NIC(src).ProtoSender().TotalUnacked() != 0 {
		t.Fatal("pending packets to the unreachable destination not reclaimed")
	}
}

// trunkRace kills the single trunk of the scenario's fabric while traffic
// is in flight and restores it at a configurable offset around the moment
// the permanent-failure detector starts a remap — so the remap run races
// the fabric watchdog flushing the stuck worms and the link coming back.
type trunkRace struct {
	kill, restore time.Duration
}

func (trunkRace) ScenarioName() string { return "trunk-race" }

func (s trunkRace) Install(e *chaos.Engine) {
	trunks := chaos.TrunkLinks(e.C.Net)
	if len(trunks) == 0 {
		return
	}
	l := trunks[0]
	e.C.K.After(s.kill, func() {
		e.RecordFault("race kill %s", chaos.LinkName(e.C.Net, l))
		e.C.Fab.KillLink(l)
	})
	e.C.K.After(s.restore, func() {
		e.Record("race heal %s", chaos.LinkName(e.C.Net, l))
		e.C.Net.RestoreLink(l)
	})
}

// TestRemapRacesWatchdogReset sweeps the heal instant across the window
// where the fabric watchdog (3 ms in the proptest harness) flushes wedged
// worms and the permanent-failure detector (6 ms) launches a remap. Every
// interleaving — heal before the remap, mid-run, after it failed once —
// must still satisfy the full simulator oracle: complete per-pair
// delivery, no duplicates, FIFO order, buffers drained.
func TestRemapRacesWatchdogReset(t *testing.T) {
	for _, healMS := range []int64{4, 6, 7, 9, 14} {
		t.Run(fmt.Sprintf("heal@%dms", healMS), func(t *testing.T) {
			sc := proptest.SimScenario{
				Seed:  900 + healMS,
				Topo:  proptest.TopoSpec{Kind: proptest.TopoChain, Hosts: 1, Switches: 2, Width: 1},
				Pairs: 2,
				Msgs:  6,
				Bytes: 256,
				Gap:   200 * time.Microsecond,
			}
			res := proptest.RunSimWith(sc, func(e *chaos.Engine) {
				e.Install(trunkRace{
					kill:    time.Millisecond,
					restore: time.Duration(healMS) * time.Millisecond,
				})
			})
			if res.Failed() {
				min := proptest.ShrinkSim(sc)
				t.Fatalf("oracle violated with heal at %d ms:\n%s\nshrunk repro:\n%s",
					healMS, res.Summary(), proptest.FormatSim(min))
			}
		})
	}
}
