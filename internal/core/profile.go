package core

import (
	"bytes"
	"fmt"

	"sanft/internal/enginestat"
	"sanft/internal/fabric"
	"sanft/internal/metrics"
	"sanft/internal/proto"
	"sanft/internal/sim"
)

// Engine self-observability wiring: Config.Profile turns on the
// wall-clock profiler (parsim worker accounting + kernel counters + pool
// traffic), Config.Telemetry starts the live HTTP endpoint. Both are
// pure observers — neither feeds anything back into simulation state, so
// enabling them never changes results.

// enableProfiling arms every collection point. Pool counters are
// process-wide (the sync.Pools are shared), so the cluster remembers a
// construction-time baseline and EngineProfile reports deltas; profiled
// clusters running concurrently in one process see combined pool traffic.
func (c *Cluster) enableProfiling() {
	c.profiled = true
	proto.SetPoolProfiling(true)
	fabric.SetPoolProfiling(true)
	c.poolBase = readPools()
	if c.eng != nil {
		c.prof = c.eng.EnableProfiling()
	}
}

func readPools() enginestat.PoolStat {
	fg, fm := proto.PoolStats()
	pg, pm := fabric.PoolStats()
	return enginestat.PoolStat{FrameGets: fg, FrameMisses: fm, PacketGets: pg, PacketMisses: pm}
}

// ProfileSpans additionally records bounded per-worker wall-clock spans
// (shard windows, solo batches, barrier stalls, exchanges) for the
// Perfetto export, capped at capPerWorker spans per worker. Call before
// the run being recorded; sharded engine with profiling on, no-op
// otherwise.
func (c *Cluster) ProfileSpans(capPerWorker int) {
	if c.prof != nil {
		c.prof.EnableSpans(capPerWorker)
	}
}

// EngineProfile returns the profiler's collected state, or nil when the
// cluster was built without profiling. Sharded engine: engine totals,
// per-worker wall-clock accounts, per-shard kernel counters, and pool
// traffic since construction. Sequential engine: kernel counters only
// (there is no epoch loop to account). Call while the cluster is
// quiescent — between RunFor calls or after Stop.
func (c *Cluster) EngineProfile() *enginestat.Profile {
	if !c.profiled {
		return nil
	}
	var p *enginestat.Profile
	if c.prof != nil {
		p = c.prof.Snapshot()
	} else {
		p = &enginestat.Profile{}
		p.Engine.Workers = 1
		p.Engine.Shards = 1
	}
	if c.eng != nil {
		for i, cl := range c.cells {
			p.Kernels = append(p.Kernels, kernelStat(i, cl.k))
		}
	} else {
		p.Kernels = append(p.Kernels, kernelStat(0, c.K))
	}
	cur := readPools()
	p.Pools = enginestat.PoolStat{
		FrameGets:    cur.FrameGets - c.poolBase.FrameGets,
		FrameMisses:  cur.FrameMisses - c.poolBase.FrameMisses,
		PacketGets:   cur.PacketGets - c.poolBase.PacketGets,
		PacketMisses: cur.PacketMisses - c.poolBase.PacketMisses,
	}
	return p
}

func kernelStat(shard int, k *sim.Kernel) enginestat.KernelStat {
	ks := k.Stats()
	return enginestat.KernelStat{
		Shard:          shard,
		Scheduled:      ks.Scheduled,
		Cancelled:      ks.Cancelled,
		Executed:       ks.Executed,
		Pending:        ks.Pending,
		ArenaHighWater: ks.ArenaHighWater,
	}
}

// Telemetry returns the cluster's live telemetry server, nil when off.
func (c *Cluster) Telemetry() *enginestat.Server { return c.telemetry }

// startTelemetry launches the HTTP endpoint and wires the publish points:
// immediately (so the endpoint is never empty), on every observer sample
// (sequential engine — the sampler runs on the simulation thread), and at
// RunFor/Stop boundaries on both engines.
func (c *Cluster) startTelemetry(addr string) {
	srv, err := enginestat.NewServer(addr)
	if err != nil {
		panic(fmt.Sprintf("core: telemetry listen on %s: %v", addr, err))
	}
	c.telemetry = srv
	if c.eng == nil {
		c.obs.OnSample(func(sim.Time) { c.publishTelemetry() })
	}
	c.publishTelemetry()
}

// publishTelemetry renders the current metrics and engine profile and
// swaps them into the server. Must run on the simulation thread while
// the engine is quiescent — the HTTP handlers only ever see the published
// copies, never the live registry.
func (c *Cluster) publishTelemetry() {
	if c.telemetry == nil {
		return
	}
	var obs *metrics.Observer
	if c.eng != nil {
		obs = c.MergedObserver()
	} else {
		obs = c.obs
	}
	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf); err == nil {
		c.telemetry.PublishMetrics(buf.Bytes())
	}
	if p := c.EngineProfile(); p != nil {
		c.telemetry.PublishProfile(p)
	}
}
