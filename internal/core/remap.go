package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"sanft/internal/mapping"
	"sanft/internal/metrics"
	"sanft/internal/sim"
	"sanft/internal/topology"
	"sanft/internal/trace"
)

// RemapPolicy tunes how the cluster reacts to remap failures. The paper's
// recovery loop — stale path or missing route → on-demand remap — assumes
// failures are rare and isolated; under a remap storm (a flapping link, a
// destination that is simply gone) naive per-upcall remapping retries
// forever and floods the network with probes. The policy bounds that:
// concurrent requests for one destination coalesce into a single run,
// failed runs back off exponentially (with jitter, so a cluster of NICs
// does not probe in lockstep), and a destination that keeps failing is
// quarantined — further demand is answered with an explicit Unreachable
// upcall and remapping resumes only at exponentially spaced release times.
type RemapPolicy struct {
	// Backoff is the delay before retrying after the first failed remap;
	// it doubles per consecutive failure up to BackoffMax. Default 2ms.
	Backoff    time.Duration
	BackoffMax time.Duration // default 64ms
	// JitterFrac spreads each backoff uniformly within ±JitterFrac of its
	// nominal value. Default 0.25; negative disables jitter.
	JitterFrac float64
	// QuarantineAfter is the number of consecutive failures before the
	// destination is quarantined. Default 3; negative disables quarantine
	// (failed remaps keep retrying at BackoffMax pace forever).
	QuarantineAfter int
	// Quarantine is the first quarantine release delay; it doubles per
	// further failure up to QuarantineMax. Defaults 250ms / 2s.
	Quarantine    time.Duration
	QuarantineMax time.Duration

	// AltRoutes, when > 0, asks each successful mapping run for this many
	// extra fabric-disjoint candidate routes and caches them. The next
	// failure signal for that destination first validates a cached
	// alternate with a single host probe and installs it on success —
	// incremental per-destination remap — falling back to a full mapping
	// run only when every alternate is dead too. 0 disables (every failure
	// costs a full run, the paper's behavior).
	AltRoutes int
	// MaxConcurrent, when > 0, caps the number of mapping runs in flight
	// across the whole cluster. Excess triggers defer to their backoff
	// release time instead of starting, so a correlated failure storm
	// (1k+ destinations at once) drains as a paced queue rather than a
	// probe flood. 0 = unbounded.
	MaxConcurrent int
}

// Defaults fills zero fields.
func (p RemapPolicy) Defaults() RemapPolicy {
	if p.Backoff == 0 {
		p.Backoff = 2 * time.Millisecond
	}
	if p.BackoffMax == 0 {
		p.BackoffMax = 64 * time.Millisecond
	}
	if p.JitterFrac == 0 {
		p.JitterFrac = 0.25
	}
	if p.JitterFrac < 0 {
		p.JitterFrac = 0
	}
	if p.QuarantineAfter == 0 {
		p.QuarantineAfter = 3
	}
	if p.Quarantine == 0 {
		p.Quarantine = 250 * time.Millisecond
	}
	if p.QuarantineMax == 0 {
		p.QuarantineMax = 2 * time.Second
	}
	return p
}

// RemapStats counts remap-manager activity across the cluster.
type RemapStats struct {
	// Attempts is the number of mapping runs started.
	Attempts int
	// Coalesced counts upcalls absorbed by an already running or already
	// scheduled remap for the same destination.
	Coalesced int
	// Deferred counts remap requests pushed to a backoff or quarantine
	// release time instead of starting immediately.
	Deferred int
	// Quarantines counts entries into the quarantined state.
	Quarantines int
}

// remapState is the manager's view of one destination.
type remapState struct {
	running  bool // a mapping run is in progress
	pending  bool // an upcall arrived while running
	armed    bool // a retry timer is set for notBefore
	failures int  // consecutive failed runs
	backoff  time.Duration
	release  time.Duration
	// notBefore is the earliest instant the next run may start.
	notBefore   sim.Time
	quarantined bool
	seq         int // attempt counter, for proc names
	// cands caches the fabric-disjoint alternates (beyond the installed
	// primary) from the last successful run, under RemapPolicy.AltRoutes.
	cands []mapping.Candidate
}

// remapManager serializes and paces remap activity for one host. All
// OnPathStale/OnNoRoute upcalls funnel through trigger; at most one mapping
// run per destination is ever in flight.
type remapManager struct {
	c   *Cluster
	h   topology.NodeID
	m   *mapping.Mapper
	pol RemapPolicy
	rng *rand.Rand
	dst map[topology.NodeID]*remapState
	mx  *metrics.Scope

	// suspended freezes recovery: triggers are held (not dropped) and
	// replayed in destination order on resume. Stale-map scenarios use
	// this to keep a host routing on its pre-failure map.
	suspended bool
	held      map[topology.NodeID]bool
}

func newRemapManager(c *Cluster, h topology.NodeID, m *mapping.Mapper, pol RemapPolicy, seed int64) *remapManager {
	return &remapManager{
		c:    c,
		h:    h,
		m:    m,
		pol:  pol,
		rng:  rand.New(rand.NewSource(seed)),
		dst:  make(map[topology.NodeID]*remapState),
		mx:   c.nics[h].MetricsScope(),
		held: make(map[topology.NodeID]bool),
	}
}

// suspend holds all future triggers. resume replays held destinations in
// sorted order (deterministic) and re-enables normal operation.
func (rm *remapManager) suspend() { rm.suspended = true }

func (rm *remapManager) resume() {
	rm.suspended = false
	dsts := make([]topology.NodeID, 0, len(rm.held))
	for d := range rm.held {
		dsts = append(dsts, d)
	}
	rm.held = make(map[topology.NodeID]bool)
	sortNodeIDs(dsts)
	for _, d := range dsts {
		rm.trigger(d)
	}
}

func (rm *remapManager) state(dst topology.NodeID) *remapState {
	st := rm.dst[dst]
	if st == nil {
		st = &remapState{backoff: rm.pol.Backoff, release: rm.pol.Quarantine}
		rm.dst[dst] = st
	}
	return st
}

// quarantinedNow reports whether dst is currently quarantined (cleared only
// by a later successful remap).
func (rm *remapManager) quarantinedNow(dst topology.NodeID) bool {
	st := rm.dst[dst]
	return st != nil && st.quarantined
}

// trigger handles one remap request for dst — from a NIC upcall or from an
// internal retry timer. Requests while a run is active coalesce; requests
// before the backoff/quarantine release time arm (at most) one timer.
func (rm *remapManager) trigger(dst topology.NodeID) {
	if rm.suspended {
		rm.held[dst] = true
		rm.mx.Add("remap.held", 1)
		return
	}
	st := rm.state(dst)
	if st.running {
		st.pending = true
		rm.c.RemapStats.Coalesced++
		rm.mx.Add("remap.coalesced", 1)
		return
	}
	now := rm.c.K.Now()
	if now.Before(st.notBefore) {
		if st.armed {
			rm.c.RemapStats.Coalesced++
			rm.mx.Add("remap.coalesced", 1)
			return
		}
		st.armed = true
		rm.c.RemapStats.Deferred++
		rm.mx.Add("remap.deferred", 1)
		rm.c.nics[rm.h].EmitEvent(trace.EvRemapDefer, dst)
		rm.c.K.At(st.notBefore, func() {
			st.armed = false
			rm.trigger(dst)
		})
		return
	}
	rm.attempt(dst, st)
}

func (rm *remapManager) attempt(dst topology.NodeID, st *remapState) {
	if rm.pol.MaxConcurrent > 0 && rm.c.remapRunning >= rm.pol.MaxConcurrent {
		// The cluster-wide run budget is exhausted: defer to the backoff
		// release time, exactly like a too-early retry. Storm-safe — 1k
		// simultaneous failures become a paced queue, not a probe flood.
		now := rm.c.K.Now()
		st.notBefore = now.Add(rm.jitter(st.backoff))
		if st.armed {
			rm.c.RemapStats.Coalesced++
			rm.mx.Add("remap.coalesced", 1)
			return
		}
		st.armed = true
		rm.c.RemapStats.Deferred++
		rm.mx.Add("remap.deferred", 1)
		rm.c.nics[rm.h].EmitEvent(trace.EvRemapDefer, dst)
		rm.c.K.At(st.notBefore, func() {
			st.armed = false
			rm.trigger(dst)
		})
		return
	}
	st.running = true
	st.seq++
	rm.c.remapRunning++
	rm.c.RemapStats.Attempts++
	rm.mx.Add("remap.attempts", 1)
	n := rm.c.nics[rm.h]
	n.EmitEvent(trace.EvRemapStart, dst)
	succeed := func(elapsed time.Duration) {
		rm.c.Remaps++
		rm.mx.Add("remap.successes", 1)
		rm.mx.Observe("remap.latency_ns", elapsed)
		n.EmitEvent(trace.EvRemapDone, dst)
		st.failures = 0
		st.backoff = rm.pol.Backoff
		st.release = rm.pol.Quarantine
		st.quarantined = false
		st.notBefore = 0
		// A pending request is dropped: the route is fresh, and the
		// NIC re-raises the upcall if the path is still broken.
		st.pending = false
	}
	rm.c.K.Spawn(fmt.Sprintf("remap-%d-%d.%d", rm.h, dst, st.seq), func(p *sim.Proc) {
		// Fast path: validate a cached disjoint alternate with one host
		// probe before paying for a full mapping run.
		if rm.pol.AltRoutes > 0 && len(st.cands) > 0 {
			cands := st.cands
			st.cands = nil
			start := p.Now()
			for _, cand := range cands {
				rm.mx.Add("remap.alt_probes", 1)
				if rm.m.ProbeRoute(p, dst, cand) {
					rm.m.InstallCandidate(dst, cand)
					st.running = false
					rm.c.remapRunning--
					rm.mx.Add("remap.alt_hits", 1)
					succeed(p.Now().Sub(start))
					return
				}
			}
		}
		cands, mst, ok := rm.m.RemapK(p, dst, rm.pol.AltRoutes+1)
		st.running = false
		rm.c.remapRunning--
		if ok {
			if len(cands) > 1 {
				st.cands = cands[1:]
			}
			succeed(mst.Elapsed)
			return
		}
		rm.c.Unreachables++
		rm.mx.Add("remap.failures", 1)
		st.failures++
		now := p.Now()
		if rm.pol.QuarantineAfter > 0 && st.failures >= rm.pol.QuarantineAfter {
			if !st.quarantined {
				st.quarantined = true
				rm.c.RemapStats.Quarantines++
				rm.mx.Add("remap.quarantines", 1)
				n.EmitEvent(trace.EvQuarantine, dst)
				if rm.c.onUnreachable != nil {
					rm.c.onUnreachable(rm.h, dst)
				}
			}
			st.notBefore = now.Add(st.release)
			st.release *= 2
			if st.release > rm.pol.QuarantineMax {
				st.release = rm.pol.QuarantineMax
			}
		} else {
			st.notBefore = now.Add(rm.jitter(st.backoff))
			st.backoff *= 2
			if st.backoff > rm.pol.BackoffMax {
				st.backoff = rm.pol.BackoffMax
			}
		}
		if st.pending {
			st.pending = false
			rm.trigger(dst) // defers to notBefore via the retry timer
		}
	})
}

// busy returns the number of destinations with an active mapping run and
// the number with an armed retry timer.
func (rm *remapManager) busy() (running, armed int) {
	for _, st := range rm.dst {
		if st.running {
			running++
		}
		if st.armed {
			armed++
		}
	}
	return
}

func sortNodeIDs(ids []topology.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// jitter spreads d uniformly within ±JitterFrac·d.
func (rm *remapManager) jitter(d time.Duration) time.Duration {
	if rm.pol.JitterFrac <= 0 || d <= 0 {
		return d
	}
	j := int64(rm.pol.JitterFrac * float64(d))
	if j <= 0 {
		return d
	}
	out := d + time.Duration(rm.rng.Int63n(2*j+1)-j)
	if out < time.Microsecond {
		out = time.Microsecond
	}
	return out
}
