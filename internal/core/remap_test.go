package core

import (
	"testing"
	"time"

	"sanft/internal/retrans"
	"sanft/internal/sim"
	"sanft/internal/topology"
)

// TestFlappingLinkRemapsCoalesced flaps the only trunk of a two-switch
// chain a hundred times while both hosts keep demanding each other.
// Without the remap manager every stale-path upcall would start its own
// mapping run — and a peer's route-update frame clears the NIC-level
// in-remap guard mid-run, re-opening the door for duplicates. With the
// manager, concurrent upcalls coalesce and the number of mapping runs
// stays sublinear in the flap count.
func TestFlappingLinkRemapsCoalesced(t *testing.T) {
	nw, rows := topology.Chain(2, 1, 1)
	hosts := []topology.NodeID{rows[0][0], rows[1][0]}
	c := New(Config{
		Net: nw, Hosts: hosts, FT: true,
		Retrans: retrans.Config{
			QueueSize:         16,
			Interval:          time.Millisecond,
			PermFailThreshold: 4 * time.Millisecond,
		},
		Mapper: true,
		Seed:   7,
	})
	trunks := trunkLinks(nw)
	if len(trunks) != 1 {
		t.Fatalf("expected a single trunk, have %d", len(trunks))
	}
	trunk := trunks[0]

	got := map[topology.NodeID]map[uint64]bool{}
	for i := range hosts {
		src, dst := hosts[i], hosts[1-i]
		name := "in-" + string(rune('a'+i))
		exp := c.Endpoint(dst).Export(name, 4096)
		got[dst] = map[uint64]bool{}
		c.K.Spawn("recv", func(p *sim.Proc) {
			for {
				n := exp.WaitNotification(p)
				got[dst][n.MsgID] = true
			}
		})
		c.K.Spawn("send", func(p *sim.Proc) {
			imp, err := c.Endpoint(src).Import(dst, name)
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 300; j++ {
				imp.Send(p, 0, make([]byte, 64), true)
				p.Sleep(2 * time.Millisecond)
			}
		})
	}

	// 100 flap cycles: 4 ms down, 2 ms up. Each cycle also fires a
	// duplicate upcall per host mid-outage — modelling the reentrancy
	// hole where a peer's route-update frame clears the NIC in-remap
	// guard while a mapping run is still active, letting a second upcall
	// through. The manager must absorb these, not multiply runs.
	const flaps = 100
	cycle := 0
	var flap func()
	flap = func() {
		c.Fab.KillLink(trunk)
		c.K.After(time.Millisecond, func() {
			for i, h := range hosts {
				c.remaps[h].trigger(hosts[1-i])
			}
		})
		c.K.After(4*time.Millisecond, func() {
			nw.RestoreLink(trunk)
			cycle++
			if cycle < flaps {
				c.K.After(2*time.Millisecond, flap)
			}
		})
	}
	c.K.After(time.Millisecond, flap)

	c.RunFor(5 * time.Second)
	c.Stop()

	st := c.RemapStats
	if st.Attempts == 0 {
		t.Fatal("no mapping runs at all — flapping never triggered remaps")
	}
	// Two hosts, 100 flaps: the unhardened path starts a run per upcall.
	if st.Attempts > 2*flaps/3 {
		t.Fatalf("attempts = %d for %d flaps; want sublinear (≤ %d). stats: %+v",
			st.Attempts, flaps, 2*flaps/3, st)
	}
	if st.Coalesced == 0 {
		t.Fatalf("no upcalls coalesced during the storm: %+v", st)
	}
	// Once the link settles up, traffic must flow again.
	for dst, msgs := range got {
		if len(msgs) == 0 {
			t.Fatalf("nothing delivered to %d after the flapping stopped", dst)
		}
	}
	for _, h := range hosts {
		if u := c.NIC(h).ProtoSender().TotalUnacked(); u != 0 {
			t.Fatalf("host %d leaked %d buffers", h, u)
		}
	}
}

// TestDeadDestinationQuarantined drives persistent demand at a destination
// whose only link is dead. The manager must not retry forever: after the
// configured number of consecutive failures the destination is
// quarantined, the OnUnreachable upcall fires, and further attempts are
// paced by exponentially growing release times.
func TestDeadDestinationQuarantined(t *testing.T) {
	nw, hosts := topology.Star(2)
	type upcall struct{ src, dst topology.NodeID }
	var upcalls []upcall
	c := New(Config{
		Net: nw, Hosts: hosts, FT: true,
		Retrans: retrans.Config{
			// Wide queue: all demand fits without blocking the sender, so
			// every pending packet predates the last quarantine-release
			// probe and must have been reclaimed by the end of the run.
			QueueSize:         64,
			Interval:          time.Millisecond,
			PermFailThreshold: 4 * time.Millisecond,
		},
		Mapper: true,
		OnUnreachable: func(src, dst topology.NodeID) {
			upcalls = append(upcalls, upcall{src, dst})
		},
		Seed: 5,
	})
	src, dst := hosts[0], hosts[1]
	c.Endpoint(dst).Export("in", 4096)
	c.Fab.KillLink(nw.Node(dst).Ports[0])

	c.K.Spawn("send", func(p *sim.Proc) {
		imp, _ := c.Endpoint(src).Import(dst, "in")
		for i := 0; i < 20; i++ {
			imp.Send(p, 0, make([]byte, 64), false)
			p.Sleep(30 * time.Millisecond)
		}
	})
	c.RunFor(5 * time.Second)
	c.Stop()

	if len(upcalls) == 0 {
		t.Fatal("OnUnreachable never fired")
	}
	if upcalls[0] != (upcall{src, dst}) {
		t.Fatalf("upcall = %+v, want {%d %d}", upcalls[0], src, dst)
	}
	if !c.Quarantined(src, dst) {
		t.Fatal("destination not quarantined despite permanent failure")
	}
	if c.RemapStats.Quarantines == 0 {
		t.Fatal("quarantine counter not incremented")
	}
	// 5 s against a dead destination: the old behaviour was one mapping
	// run per upcall; the paced one is a handful of initial retries plus
	// quarantine releases at 250 ms, 500 ms, 1 s, 2 s.
	if c.RemapStats.Attempts > 10 {
		t.Fatalf("attempts = %d against a dead destination; want ≤ 10. stats: %+v",
			c.RemapStats.Attempts, c.RemapStats)
	}
	if c.NIC(src).ProtoSender().TotalUnacked() != 0 {
		t.Fatal("pending packets not reclaimed")
	}
}

// TestQuarantineRecoversAfterHeal checks that quarantine is not a death
// sentence: once the link is repaired, the next quarantine release probes
// again, succeeds, clears the quarantine, and delivery resumes.
func TestQuarantineRecoversAfterHeal(t *testing.T) {
	nw, hosts := topology.Star(2)
	c := New(Config{
		Net: nw, Hosts: hosts, FT: true,
		Retrans: retrans.Config{
			QueueSize:         8,
			Interval:          time.Millisecond,
			PermFailThreshold: 4 * time.Millisecond,
		},
		Mapper: true,
		Seed:   6,
	})
	src, dst := hosts[0], hosts[1]
	exp := c.Endpoint(dst).Export("in", 4096)
	link := nw.Node(dst).Ports[0]
	c.Fab.KillLink(link)

	got := map[uint64]bool{}
	c.K.Spawn("recv", func(p *sim.Proc) {
		for {
			n := exp.WaitNotification(p)
			got[n.MsgID] = true
		}
	})
	c.K.Spawn("send", func(p *sim.Proc) {
		imp, _ := c.Endpoint(src).Import(dst, "in")
		for i := 0; i < 300; i++ {
			imp.Send(p, 0, make([]byte, 64), true)
			p.Sleep(10 * time.Millisecond)
		}
	})
	// Heal well after quarantine entry (3 failed runs plus backoffs), so
	// recovery happens via a quarantine-release probe, not an early retry.
	c.K.After(time.Second, func() { nw.RestoreLink(link) })

	c.RunFor(5 * time.Second)
	c.Stop()

	if c.RemapStats.Quarantines == 0 {
		t.Fatal("destination was never quarantined before the heal")
	}
	if c.Remaps == 0 {
		t.Fatal("no successful remap after the heal")
	}
	if c.Quarantined(src, dst) {
		t.Fatal("quarantine not cleared by the successful remap")
	}
	if len(got) == 0 {
		t.Fatal("no messages delivered after recovery")
	}
}

// TestDuplicateUpcallsWhileRunningCoalesce is the direct regression test
// for the remap reentrancy bug: the NIC's in-remap guard is cleared by any
// route update (including one arriving from a peer's remap), after which a
// second stale-path upcall could start a concurrent mapping run to the
// same destination. The manager must coalesce such duplicates into the
// run already in flight.
func TestDuplicateUpcallsWhileRunningCoalesce(t *testing.T) {
	nw, hosts := topology.Star(2)
	c := New(Config{
		Net: nw, Hosts: hosts, FT: true,
		Retrans: retrans.Config{
			QueueSize:         8,
			Interval:          time.Millisecond,
			PermFailThreshold: 4 * time.Millisecond,
		},
		Mapper: true,
		Seed:   2,
	})
	src, dst := hosts[0], hosts[1]
	c.Endpoint(dst).Export("in", 4096)
	c.Fab.KillLink(nw.Node(dst).Ports[0])

	c.K.Spawn("send", func(p *sim.Proc) {
		imp, _ := c.Endpoint(src).Import(dst, "in")
		imp.Send(p, 0, make([]byte, 64), false)
	})
	checked := false
	c.K.Spawn("dup", func(p *sim.Proc) {
		// Wait for the stale-path upcall to start a mapping run, then
		// fire the duplicate upcalls the cleared NIC guard would let in.
		for {
			st := c.remaps[src].dst[dst]
			if st != nil && st.running {
				break
			}
			p.Sleep(100 * time.Microsecond)
		}
		before := c.RemapStats.Attempts
		c.remaps[src].trigger(dst)
		c.remaps[src].trigger(dst)
		if c.RemapStats.Attempts != before {
			t.Errorf("duplicate upcalls spawned concurrent runs: %d -> %d",
				before, c.RemapStats.Attempts)
		}
		if c.RemapStats.Coalesced < 2 {
			t.Errorf("coalesced = %d, want ≥ 2", c.RemapStats.Coalesced)
		}
		checked = true
	})
	c.RunFor(100 * time.Millisecond)
	c.Stop()
	if !checked {
		t.Fatal("no mapping run ever started")
	}
}
