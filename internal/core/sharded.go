package core

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"sanft/internal/fabric"
	"sanft/internal/fault"
	"sanft/internal/metrics"
	"sanft/internal/nic"
	"sanft/internal/parsim"
	"sanft/internal/proto"
	"sanft/internal/routing"
	"sanft/internal/sim"
	"sanft/internal/topology"
	"sanft/internal/trace"
)

// shardTraceCap bounds each shard's trace ring. Rings are per shard, so
// overflow (oldest-event eviction) is a per-shard property, identical for
// every worker count.
const shardTraceCap = 8192

// cell is one shard of a sharded cluster: a group of hosts with their
// NICs, a private kernel, and private replicas of everything the group's
// protocol stacks touch — topology, fabric (pipe mode), metrics registry,
// trace ring. Nothing in a cell is reachable from another cell except
// through the engine's epoch-barrier exchange; traffic between hosts of
// the same cell delivers directly through the cell's pipe, exactly as the
// sequential engine would, with no clone and no barrier.
type cell struct {
	hosts []topology.NodeID
	k     *sim.Kernel
	nw    *topology.Network
	pipe  *fabric.Pipe
	nics  map[topology.NodeID]*nic.NIC
	obs   *metrics.Observer
	ring  *trace.Ring

	deliveries []Delivery
}

func (c *cell) Kernel() *sim.Kernel { return c.k }

// Delivery is one accepted data frame, as observed by the destination
// shard — the sharded cluster's delivery-order oracle record.
type Delivery struct {
	At       sim.Time
	Src, Dst topology.NodeID
	Msg      uint64
	Gen      uint32
	Seq      uint64
}

func (d Delivery) String() string {
	return fmt.Sprintf("t=%d deliver %d->%d msg=%d gen=%d seq=%d", d.At, d.Src, d.Dst, d.Msg, d.Gen, d.Seq)
}

// Flow is one directed traffic stream of a sharded workload.
type Flow struct {
	Src, Dst topology.NodeID
}

// ShardedCluster is the historical name for a Cluster built with
// EngineSharded; the two have been one type since the constructors were
// unified.
//
// Deprecated: use Cluster (New with Config.Engine = EngineSharded, or the
// root package's WithEngine/WithShardPlan options).
type ShardedCluster = Cluster

// NewSharded builds a sharded cluster from the same Config as New.
//
// Deprecated: set cfg.Engine = EngineSharded and call New.
func NewSharded(cfg Config) *Cluster {
	cfg.Engine = EngineSharded
	return New(cfg)
}

// planGroups resolves a ShardPlan against the host list: explicit groups
// are validated (every host exactly once, no strangers), HostsPerShard
// chunks the hosts in order, and the zero plan is one host per shard.
func planGroups(plan ShardPlan, hosts []topology.NodeID) [][]topology.NodeID {
	if len(plan.Groups) > 0 {
		seen := make(map[topology.NodeID]bool)
		for _, g := range plan.Groups {
			if len(g) == 0 {
				panic("core: shard plan contains an empty group")
			}
			for _, h := range g {
				if seen[h] {
					panic(fmt.Sprintf("core: shard plan lists host %d twice", h))
				}
				seen[h] = true
			}
		}
		for _, h := range hosts {
			if !seen[h] {
				panic(fmt.Sprintf("core: shard plan does not cover host %d", h))
			}
		}
		if len(seen) != len(hosts) {
			panic("core: shard plan names nodes outside the cluster's host list")
		}
		return plan.Groups
	}
	k := plan.HostsPerShard
	if k <= 0 {
		k = 1
	}
	var groups [][]topology.NodeID
	for i := 0; i < len(hosts); i += k {
		j := i + k
		if j > len(hosts) {
			j = len(hosts)
		}
		groups = append(groups, hosts[i:j])
	}
	return groups
}

// newSharded builds the sharded half of New: per-shard kernels under the
// conservative parallel engine. Each shard's kernel is seeded
// parsim.ShardSeed(cfg.Seed, shardIndex); per-NIC droppers use the same
// per-host derivation as the sequential engine, so shard membership never
// changes a host's drop schedule.
func newSharded(cfg Config) *Cluster {
	if cfg.Mapper {
		panic("core: sharded execution does not support on-demand mapping yet")
	}
	if cfg.Net == nil {
		n := cfg.NumHosts
		if n == 0 {
			n = 2
		}
		cfg.Net, cfg.Hosts = topology.Star(n)
	}
	if len(cfg.Hosts) == 0 {
		cfg.Hosts = cfg.Net.Hosts()
	}
	if len(cfg.Hosts) < 2 {
		panic("core: sharded execution needs at least two hosts")
	}
	if cfg.Fabric == (fabric.Config{}) {
		cfg.Fabric = fabric.DefaultConfig()
	}
	if cfg.Liveness != nil {
		// Same seed folding as the sequential engine: the derived base
		// depends only on the cluster seed, never the shard, so results
		// stay byte-identical across worker counts.
		lc := *cfg.Liveness
		lc.Seed = lc.Seed*1000003 + cfg.Seed
		cfg.Liveness = &lc
	}
	groups := planGroups(cfg.Plan, cfg.Hosts)
	if len(groups) < 2 {
		panic("core: shard plan must create at least two shards")
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = cfg.Shards
	}

	s := &Cluster{
		Net:       cfg.Net,
		Hosts:     cfg.Hosts,
		Lookahead: cfg.Fabric.MinCrossLatency(minCrossHops(cfg.Net, groups)),
		cfg:       cfg,
		byHost:    make(map[topology.NodeID]int, len(cfg.Hosts)),
	}
	shards := make([]parsim.Shard, len(groups))
	for i, g := range groups {
		k := sim.New(parsim.ShardSeed(cfg.Seed, i))
		obs := metrics.NewObserver(cfg.Metrics)
		nw := cfg.Net.Clone()
		pipe := fabric.NewPipe(k, nw, cfg.Fabric)
		pipe.BindMetrics(obs.Registry())
		ring := trace.NewRing(shardTraceCap)
		pipe.SetTracer(ring)
		c := &cell{
			hosts: g, k: k, nw: nw, pipe: pipe, obs: obs, ring: ring,
			nics: make(map[topology.NodeID]*nic.NIC, len(g)),
		}
		for _, h := range g {
			var dropper fault.Dropper
			if cfg.ErrorRate > 0 {
				dropper = fault.NewRateSeeded(cfg.ErrorRate, cfg.Seed*1000003+int64(h)*7919+12289)
			}
			host := h
			n := nic.New(k, pipe, h, nic.Options{
				FT:       cfg.FT,
				Retrans:  cfg.Retrans,
				Cost:     cfg.Cost,
				Dropper:  dropper,
				Tracer:   ring,
				Metrics:  obs.Registry(),
				Liveness: cfg.Liveness,
			})
			n.SetOnDeliver(func(f *proto.Frame) {
				c.deliveries = append(c.deliveries, Delivery{
					At: k.Now(), Src: f.Src, Dst: host, Msg: msgID(f), Gen: f.Gen, Seq: f.Seq,
				})
			})
			c.nics[h] = n
			s.byHost[h] = i
		}
		s.cells = append(s.cells, c)
		shards[i] = c
	}
	// Pre-install shortest routes, as the sequential engine does — each
	// NIC only needs routes from its own host. One BFS per source host
	// (ShortestFrom matches per-pair Shortest byte for byte) keeps
	// thousand-host construction O(H·E) instead of O(H²·E).
	hostSet := make(map[topology.NodeID]bool, len(cfg.Hosts))
	for _, h := range cfg.Hosts {
		hostSet[h] = true
	}
	for _, c := range s.cells {
		for _, a := range c.hosts {
			for b, r := range routing.ShortestFrom(cfg.Net, a) {
				if b != a && hostSet[b] {
					c.nics[a].SetRoute(b, r)
				}
			}
		}
	}
	s.eng = parsim.NewEngine(shards, s.Lookahead, workers)
	// Shard boundary: a packet terminating at a host of another cell
	// crosses via the engine, deep-copied from pooled storage — wire
	// transit is the serialization point. Intra-cell packets never get
	// here: their hosts are locally attached to the cell's pipe.
	for i := range s.cells {
		src := s.cells[i]
		port := s.eng.Port(i)
		src.pipe.SetEgress(func(dst topology.NodeID, at sim.Time, pkt *fabric.Packet) {
			j, ok := s.byHost[dst]
			if !ok {
				return // terminal node is not a workload host: silently lost
			}
			cp := clonePacket(pkt)
			dstCell := s.cells[j]
			port.Send(at, j, func() { dstCell.pipe.Arrive(dst, cp) })
		})
	}
	if cfg.Profile {
		s.enableProfiling()
	}
	if cfg.Telemetry != "" {
		s.startTelemetry(cfg.Telemetry)
	}
	return s
}

// msgID extracts the VMMC message ID of a data frame (0 otherwise).
func msgID(f *proto.Frame) uint64 {
	if f.Data != nil {
		return f.Data.MsgID
	}
	return 0
}

// clonePacket deep-copies a packet crossing a shard boundary, drawing
// packet and frame storage from the fabric/proto pools: the destination
// NIC's receive path releases both at end of life, so steady-state
// cross-shard traffic allocates nothing. Callbacks are stripped by
// ClonePooled: OnInjectDone already fired on the source shard, and the
// wire gives no cross-host drop feedback (which is why the
// retransmission protocol exists).
func clonePacket(pkt *fabric.Packet) *fabric.Packet {
	cp := pkt.ClonePooled()
	if f, ok := pkt.Payload.(*proto.Frame); ok {
		cp.Payload = f.ClonePooled()
	}
	return cp
}

// minCrossHops returns the smallest switch count on any shortest route
// between hosts of different shards — the hop floor for the lookahead
// derivation. Routes inside one shard don't constrain the lookahead
// (intra-cell delivery never crosses a barrier), which is exactly why
// coarse shards widen the window on clustered topologies.
func minCrossHops(nw *topology.Network, groups [][]topology.NodeID) int {
	cellOf := make(map[topology.NodeID]int)
	for i, g := range groups {
		for _, h := range g {
			cellOf[h] = i
		}
	}
	best := 0
	// One BFS per host instead of one per ordered pair: at 1k hosts the
	// difference is construction completing in milliseconds vs minutes.
	for a, ca := range cellOf {
		for b, r := range routing.ShortestFrom(nw, a) {
			cb, ok := cellOf[b]
			if !ok || ca == cb {
				continue
			}
			if best == 0 || len(r) < best {
				best = len(r)
			}
		}
	}
	if best == 0 {
		best = 1
	}
	return best
}

// trunkLinks returns the switch-to-switch links of nw in link-ID order —
// the same deterministic candidate set on every shard's replica.
func trunkLinks(nw *topology.Network) []*topology.Link {
	var out []*topology.Link
	for _, l := range nw.Links {
		if nw.Node(l.A.Node).Kind == topology.Switch &&
			nw.Node(l.B.Node).Kind == topology.Switch {
			out = append(out, l)
		}
	}
	return out
}

// FlapTrunk schedules trunk link index ti (modulo the trunk count, in
// link-ID order) to fail at `at` and heal at `at+dur`. The fault is
// replicated onto every shard's topology view at the same simulated
// instant — fault events are global state changes, not cross-shard
// messages, so they need no lookahead and are identical for any worker
// count. Call before Run. Sharded engine only.
func (s *Cluster) FlapTrunk(ti int, at, dur time.Duration) {
	s.mustSharded("FlapTrunk")
	for _, c := range s.cells {
		trunks := trunkLinks(c.nw)
		if len(trunks) == 0 {
			return
		}
		l := trunks[ti%len(trunks)]
		nw := c.nw
		c.k.After(at, func() { nw.KillLink(l) })
		c.k.After(at+dur, func() { nw.RestoreLink(l) })
	}
}

// LinkFlapEvent is one scheduled fault: topology link Link goes down at At
// and heals Dur later (Dur == 0 leaves it down permanently).
type LinkFlapEvent struct {
	Link int
	At   time.Duration
	Dur  time.Duration
}

// ScheduleLinkFlaps replicates a precomputed link-fault schedule onto
// every shard's topology view — the general form of FlapTrunk that flap
// storms feed with hundreds of seeded events. Fault events are global
// state changes applied identically on every replica at the same
// simulated instant, so they need no lookahead and are byte-identical for
// any worker count. Call before Run. Sharded engine only.
func (s *Cluster) ScheduleLinkFlaps(events []LinkFlapEvent) {
	s.mustSharded("ScheduleLinkFlaps")
	for _, c := range s.cells {
		nw := c.nw
		for _, ev := range events {
			if ev.Link < 0 || ev.Link >= len(nw.Links) {
				panic(fmt.Sprintf("core: ScheduleLinkFlaps link %d out of range (%d links)", ev.Link, len(nw.Links)))
			}
			l := nw.Links[ev.Link]
			c.k.After(ev.At, func() { nw.KillLink(l) })
			if ev.Dur > 0 {
				c.k.After(ev.At+ev.Dur, func() { nw.RestoreLink(l) })
			}
		}
	}
}

// StartFlows spawns the frame-level workload: for each flow, a sender
// process on the source shard pushes msgs data frames of size bytes with
// gap pacing (plus the chaos workload's per-flow stagger), and the
// destination shard's delivery log records every accepted frame. Sharded
// engine only.
func (s *Cluster) StartFlows(flows []Flow, msgs, bytes int, gap time.Duration) {
	s.mustSharded("StartFlows")
	if msgs == 0 {
		msgs = 6
	}
	if bytes == 0 {
		bytes = 512
	}
	if gap == 0 {
		gap = 200 * time.Microsecond
	}
	for i, f := range flows {
		c := s.cells[s.byHost[f.Src]]
		n := c.nics[f.Src]
		dst := f.Dst
		stagger := time.Duration(i%7) * 37 * time.Microsecond
		mcount := msgs
		size := bytes
		pace := gap
		c.k.Spawn(fmt.Sprintf("flow-%d-%d", f.Src, f.Dst), func(p *sim.Proc) {
			p.Sleep(stagger)
			for m := 1; m <= mcount; m++ {
				frame := &proto.Frame{
					Type: proto.FrameData,
					Dst:  dst,
					Data: &proto.DataPayload{
						MsgID:  uint64(m),
						MsgLen: size,
						Data:   make([]byte, size),
						Notify: true,
					},
				}
				n.Send(p, frame)
				p.Sleep(pace)
			}
		})
	}
}

// Workers returns the engine's worker count. Sharded engine only.
func (s *Cluster) Workers() int {
	s.mustSharded("Workers")
	return s.eng.Workers()
}

// Epochs returns how many epoch windows the engine has executed. Sharded
// engine only.
func (s *Cluster) Epochs() uint64 {
	s.mustSharded("Epochs")
	return s.eng.Epochs()
}

// Exchanged returns how many packets crossed shard boundaries. Sharded
// engine only.
func (s *Cluster) Exchanged() uint64 {
	s.mustSharded("Exchanged")
	return s.eng.Exchanged()
}

// TotalExecuted sums executed events across all shard kernels. Sharded
// engine only.
func (s *Cluster) TotalExecuted() uint64 {
	s.mustSharded("TotalExecuted")
	var t uint64
	for _, c := range s.cells {
		t += c.k.Executed()
	}
	return t
}

// Shards returns the shard count of the partition (≥ 2 in sharded mode).
func (s *Cluster) Shards() int {
	s.mustSharded("Shards")
	return len(s.cells)
}

// CellKernel returns shard i's kernel (for RNG-discipline checks).
// Sharded engine only.
func (s *Cluster) CellKernel(i int) *sim.Kernel {
	s.mustSharded("CellKernel")
	return s.cells[i].k
}

// MergedObserver merges every shard's registry (in shard order — though
// any order gives the same result, see metrics.MergeFrom) into one fresh
// observer, materializing derived gauges at the current frontier. Sharded
// engine only; the sequential engine's Observer is already cluster-wide.
func (s *Cluster) MergedObserver() *metrics.Observer {
	s.mustSharded("MergedObserver")
	obs := metrics.NewObserver(s.cfg.Metrics)
	for _, c := range s.cells {
		obs.Registry().MergeFrom(c.obs.Registry())
	}
	return obs
}

// TraceEvents returns the deterministic cluster-wide timeline: per-shard
// rings merged by (time, shard index, emission order). Sharded engine
// only.
func (s *Cluster) TraceEvents() []trace.Event {
	s.mustSharded("TraceEvents")
	streams := make([][]trace.Event, len(s.cells))
	for i, c := range s.cells {
		streams[i] = c.ring.Events()
	}
	return trace.MergeStreams(streams...)
}

// Deliveries returns the merged delivery order: per-shard logs (each in
// local time order) merged by (time, shard index, log position). Sharded
// engine only.
func (s *Cluster) Deliveries() []Delivery {
	s.mustSharded("Deliveries")
	// Reuse the stable-sort merge rule via concatenation in shard order.
	var out []Delivery
	for _, c := range s.cells {
		out = append(out, c.deliveries...)
	}
	stableSortDeliveries(out)
	return out
}

// DeliveredCount returns the total number of accepted data frames.
// Sharded engine only.
func (s *Cluster) DeliveredCount() int {
	s.mustSharded("DeliveredCount")
	n := 0
	for _, c := range s.cells {
		n += len(c.deliveries)
	}
	return n
}

// DumpObservables renders every observable of the run as one byte
// stream — delivery order, merged metrics summary, and the merged
// Perfetto trace export — the payload of the differential determinism
// gate: byte-identical for every worker count. Sharded engine only.
func (s *Cluster) DumpObservables() []byte {
	s.mustSharded("DumpObservables")
	var b bytes.Buffer
	fmt.Fprintf(&b, "sharded run: hosts=%d lookahead=%v frontier=%d exchanged=%d\n",
		len(s.Hosts), s.Lookahead, s.Now(), s.Exchanged())
	b.WriteString("--- deliveries ---\n")
	for _, d := range s.Deliveries() {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	b.WriteString("--- metrics ---\n")
	obs := s.MergedObserver()
	obs.SampleNow(s.Now())
	b.WriteString(obs.Summary())
	if err := obs.WriteJSONL(&b); err != nil {
		fmt.Fprintf(&b, "jsonl error: %v\n", err)
	}
	b.WriteString("--- perfetto ---\n")
	if err := trace.WriteChromeTrace(&b, s.TraceEvents()); err != nil {
		fmt.Fprintf(&b, "perfetto error: %v\n", err)
	}
	b.WriteByte('\n')
	return b.Bytes()
}

// stableSortDeliveries orders by time, keeping concatenation (shard,
// position) order for ties.
func stableSortDeliveries(ds []Delivery) {
	sort.SliceStable(ds, func(i, j int) bool { return ds[i].At < ds[j].At })
}
