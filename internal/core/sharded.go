package core

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"sanft/internal/fabric"
	"sanft/internal/fault"
	"sanft/internal/metrics"
	"sanft/internal/nic"
	"sanft/internal/parsim"
	"sanft/internal/proto"
	"sanft/internal/routing"
	"sanft/internal/sim"
	"sanft/internal/topology"
	"sanft/internal/trace"
)

// shardTraceCap bounds each shard's trace ring. Rings are per shard, so
// overflow (oldest-event eviction) is a per-shard property, identical for
// every worker count.
const shardTraceCap = 8192

// cell is one shard of a sharded cluster: a host, its NIC, a private
// kernel, and private replicas of everything the host's protocol stack
// touches — topology, fabric (pipe mode), metrics registry, trace ring.
// Nothing in a cell is reachable from another cell except through the
// engine's epoch-barrier exchange.
type cell struct {
	host topology.NodeID
	k    *sim.Kernel
	nw   *topology.Network
	pipe *fabric.Pipe
	nic  *nic.NIC
	obs  *metrics.Observer
	ring *trace.Ring

	deliveries []Delivery
}

func (c *cell) Kernel() *sim.Kernel { return c.k }

// Delivery is one accepted data frame, as observed by the destination
// shard — the sharded cluster's delivery-order oracle record.
type Delivery struct {
	At       sim.Time
	Src, Dst topology.NodeID
	Msg      uint64
	Gen      uint32
	Seq      uint64
}

func (d Delivery) String() string {
	return fmt.Sprintf("t=%d deliver %d->%d msg=%d gen=%d seq=%d", d.At, d.Src, d.Dst, d.Msg, d.Gen, d.Seq)
}

// Flow is one directed traffic stream of a sharded workload.
type Flow struct {
	Src, Dst topology.NodeID
}

// ShardedCluster runs one simulation partitioned into per-host shards
// under the conservative parallel engine (internal/parsim). The partition
// is fixed — one shard per host — and only cfg.Shards (the worker count)
// varies, so every observable output is byte-identical across worker
// counts by construction.
//
// Sharded mode swaps the wormhole fabric for the contention-decoupled
// fabric.Pipe (see its doc comment for the model and why wormhole
// backpressure cannot be sharded conservatively) and drives traffic at
// the NIC frame level. VMMC endpoints and on-demand mapping read remote
// state synchronously and are not yet supported here.
type ShardedCluster struct {
	Hosts     []topology.NodeID
	Lookahead time.Duration

	cfg    Config
	cells  []*cell
	byHost map[topology.NodeID]int
	eng    *parsim.Engine
}

// NewSharded builds a sharded cluster from the same Config as New.
// cfg.Shards sets the worker count (0 = GOMAXPROCS). Each shard's kernel
// is seeded parsim.ShardSeed(cfg.Seed, shardIndex); per-NIC droppers use
// the same per-host derivation as New.
func NewSharded(cfg Config) *ShardedCluster {
	if cfg.Mapper {
		panic("core: sharded execution does not support on-demand mapping yet")
	}
	if cfg.Net == nil {
		n := cfg.NumHosts
		if n == 0 {
			n = 2
		}
		cfg.Net, cfg.Hosts = topology.Star(n)
	}
	if len(cfg.Hosts) == 0 {
		cfg.Hosts = cfg.Net.Hosts()
	}
	if len(cfg.Hosts) < 2 {
		panic("core: sharded execution needs at least two hosts")
	}
	if cfg.Fabric == (fabric.Config{}) {
		cfg.Fabric = fabric.DefaultConfig()
	}
	if cfg.Liveness != nil {
		// Same seed folding as New: the derived base depends only on the
		// cluster seed, never the shard, so results stay byte-identical
		// across worker counts.
		lc := *cfg.Liveness
		lc.Seed = lc.Seed*1000003 + cfg.Seed
		cfg.Liveness = &lc
	}

	s := &ShardedCluster{
		Hosts:     cfg.Hosts,
		Lookahead: cfg.Fabric.MinCrossLatency(minHostHops(cfg.Net, cfg.Hosts)),
		cfg:       cfg,
		byHost:    make(map[topology.NodeID]int, len(cfg.Hosts)),
	}
	shards := make([]parsim.Shard, len(cfg.Hosts))
	for i, h := range cfg.Hosts {
		k := sim.New(parsim.ShardSeed(cfg.Seed, i))
		obs := metrics.NewObserver(cfg.Metrics)
		nw := cfg.Net.Clone()
		pipe := fabric.NewPipe(k, nw, cfg.Fabric)
		pipe.BindMetrics(obs.Registry())
		ring := trace.NewRing(shardTraceCap)
		pipe.SetTracer(ring)
		var dropper fault.Dropper
		if cfg.ErrorRate > 0 {
			dropper = fault.NewRateSeeded(cfg.ErrorRate, cfg.Seed*1000003+int64(h)*7919+12289)
		}
		c := &cell{host: h, k: k, nw: nw, pipe: pipe, obs: obs, ring: ring}
		c.nic = nic.New(k, pipe, h, nic.Options{
			FT:       cfg.FT,
			Retrans:  cfg.Retrans,
			Cost:     cfg.Cost,
			Dropper:  dropper,
			Tracer:   ring,
			Metrics:  obs.Registry(),
			Liveness: cfg.Liveness,
		})
		c.nic.SetOnDeliver(func(f *proto.Frame) {
			c.deliveries = append(c.deliveries, Delivery{
				At: k.Now(), Src: f.Src, Dst: h, Msg: msgID(f), Gen: f.Gen, Seq: f.Seq,
			})
		})
		s.cells = append(s.cells, c)
		s.byHost[h] = i
		shards[i] = c
	}
	// Pre-install shortest routes, as New does — each NIC only needs
	// routes from its own host.
	for i, a := range cfg.Hosts {
		for _, b := range cfg.Hosts {
			if a == b {
				continue
			}
			if r, err := routing.Shortest(cfg.Net, a, b); err == nil {
				s.cells[i].nic.SetRoute(b, r)
			}
		}
	}
	s.eng = parsim.NewEngine(shards, s.Lookahead, cfg.Shards)
	// Shard boundary: a packet terminating at a remote host crosses via
	// the engine, deep-copied — wire transit is the serialization point.
	for i := range s.cells {
		src := s.cells[i]
		port := s.eng.Port(i)
		src.pipe.SetEgress(func(dst topology.NodeID, at sim.Time, pkt *fabric.Packet) {
			j, ok := s.byHost[dst]
			if !ok {
				return // terminal node is not a workload host: silently lost
			}
			cp := clonePacket(pkt)
			dstCell := s.cells[j]
			port.Send(at, j, func() { dstCell.pipe.Arrive(dst, cp) })
		})
	}
	return s
}

// msgID extracts the VMMC message ID of a data frame (0 otherwise).
func msgID(f *proto.Frame) uint64 {
	if f.Data != nil {
		return f.Data.MsgID
	}
	return 0
}

// clonePacket deep-copies a packet crossing a shard boundary. Callbacks
// are stripped: OnInjectDone already fired on the source shard, and the
// wire gives no cross-host drop feedback (which is why the retransmission
// protocol exists).
func clonePacket(pkt *fabric.Packet) *fabric.Packet {
	cp := *pkt
	cp.Route = pkt.Route.Clone()
	cp.OnInjectDone = nil
	cp.OnDropped = nil
	if f, ok := pkt.Payload.(*proto.Frame); ok {
		cp.Payload = f.Clone()
	}
	return &cp
}

// minHostHops returns the smallest switch count on any shortest route
// between distinct hosts — the hop floor for the lookahead derivation.
func minHostHops(nw *topology.Network, hosts []topology.NodeID) int {
	best := 0
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			r, err := routing.Shortest(nw, a, b)
			if err != nil {
				continue
			}
			if best == 0 || len(r) < best {
				best = len(r)
			}
		}
	}
	if best == 0 {
		best = 1
	}
	return best
}

// trunkLinks returns the switch-to-switch links of nw in link-ID order —
// the same deterministic candidate set on every shard's replica.
func trunkLinks(nw *topology.Network) []*topology.Link {
	var out []*topology.Link
	for _, l := range nw.Links {
		if nw.Node(l.A.Node).Kind == topology.Switch &&
			nw.Node(l.B.Node).Kind == topology.Switch {
			out = append(out, l)
		}
	}
	return out
}

// FlapTrunk schedules trunk link index ti (modulo the trunk count, in
// link-ID order) to fail at `at` and heal at `at+dur`. The fault is
// replicated onto every shard's topology view at the same simulated
// instant — fault events are global state changes, not cross-shard
// messages, so they need no lookahead and are identical for any worker
// count. Call before Run.
func (s *ShardedCluster) FlapTrunk(ti int, at, dur time.Duration) {
	for _, c := range s.cells {
		trunks := trunkLinks(c.nw)
		if len(trunks) == 0 {
			return
		}
		l := trunks[ti%len(trunks)]
		nw := c.nw
		c.k.After(at, func() { nw.KillLink(l) })
		c.k.After(at+dur, func() { nw.RestoreLink(l) })
	}
}

// StartFlows spawns the frame-level workload: for each flow, a sender
// process on the source shard pushes msgs data frames of size bytes with
// gap pacing (plus the chaos workload's per-flow stagger), and the
// destination shard's delivery log records every accepted frame.
func (s *ShardedCluster) StartFlows(flows []Flow, msgs, bytes int, gap time.Duration) {
	if msgs == 0 {
		msgs = 6
	}
	if bytes == 0 {
		bytes = 512
	}
	if gap == 0 {
		gap = 200 * time.Microsecond
	}
	for i, f := range flows {
		c := s.cells[s.byHost[f.Src]]
		dst := f.Dst
		stagger := time.Duration(i%7) * 37 * time.Microsecond
		mcount := msgs
		size := bytes
		pace := gap
		c.k.Spawn(fmt.Sprintf("flow-%d-%d", f.Src, f.Dst), func(p *sim.Proc) {
			p.Sleep(stagger)
			for m := 1; m <= mcount; m++ {
				frame := &proto.Frame{
					Type: proto.FrameData,
					Dst:  dst,
					Data: &proto.DataPayload{
						MsgID:  uint64(m),
						MsgLen: size,
						Data:   make([]byte, size),
						Notify: true,
					},
				}
				c.nic.Send(p, frame)
				p.Sleep(pace)
			}
		})
	}
}

// RunFor advances the whole sharded simulation by d.
func (s *ShardedCluster) RunFor(d time.Duration) { s.eng.RunFor(d) }

// Stop terminates every shard kernel and its processes.
func (s *ShardedCluster) Stop() {
	for _, c := range s.cells {
		c.k.Stop()
	}
}

// Now returns the time frontier all shards have reached.
func (s *ShardedCluster) Now() sim.Time { return s.eng.Now() }

// Workers returns the engine's worker count.
func (s *ShardedCluster) Workers() int { return s.eng.Workers() }

// Epochs returns how many epoch windows the engine has executed.
func (s *ShardedCluster) Epochs() uint64 { return s.eng.Epochs() }

// Exchanged returns how many packets crossed shard boundaries.
func (s *ShardedCluster) Exchanged() uint64 { return s.eng.Exchanged() }

// TotalExecuted sums executed events across all shard kernels.
func (s *ShardedCluster) TotalExecuted() uint64 {
	var t uint64
	for _, c := range s.cells {
		t += c.k.Executed()
	}
	return t
}

// NIC returns the NIC of host h.
func (s *ShardedCluster) NIC(h topology.NodeID) *nic.NIC {
	return s.cells[s.byHost[h]].nic
}

// CellKernel returns shard i's kernel (for RNG-discipline checks).
func (s *ShardedCluster) CellKernel(i int) *sim.Kernel { return s.cells[i].k }

// MergedObserver merges every shard's registry (in shard order — though
// any order gives the same result, see metrics.MergeFrom) into one fresh
// observer, materializing derived gauges at the current frontier.
func (s *ShardedCluster) MergedObserver() *metrics.Observer {
	obs := metrics.NewObserver(s.cfg.Metrics)
	for _, c := range s.cells {
		obs.Registry().MergeFrom(c.obs.Registry())
	}
	return obs
}

// TraceEvents returns the deterministic cluster-wide timeline: per-shard
// rings merged by (time, shard index, emission order).
func (s *ShardedCluster) TraceEvents() []trace.Event {
	streams := make([][]trace.Event, len(s.cells))
	for i, c := range s.cells {
		streams[i] = c.ring.Events()
	}
	return trace.MergeStreams(streams...)
}

// Deliveries returns the merged delivery order: per-shard logs (each in
// local time order) merged by (time, shard index, log position).
func (s *ShardedCluster) Deliveries() []Delivery {
	// Reuse the stable-sort merge rule via concatenation in shard order.
	var out []Delivery
	for _, c := range s.cells {
		out = append(out, c.deliveries...)
	}
	stableSortDeliveries(out)
	return out
}

// DeliveredCount returns the total number of accepted data frames.
func (s *ShardedCluster) DeliveredCount() int {
	n := 0
	for _, c := range s.cells {
		n += len(c.deliveries)
	}
	return n
}

// DumpObservables renders every observable of the run as one byte
// stream — delivery order, merged metrics summary, and the merged
// Perfetto trace export — the payload of the differential determinism
// gate: byte-identical for every worker count.
func (s *ShardedCluster) DumpObservables() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "sharded run: hosts=%d lookahead=%v frontier=%d exchanged=%d\n",
		len(s.Hosts), s.Lookahead, s.Now(), s.Exchanged())
	b.WriteString("--- deliveries ---\n")
	for _, d := range s.Deliveries() {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	b.WriteString("--- metrics ---\n")
	obs := s.MergedObserver()
	obs.SampleNow(s.Now())
	b.WriteString(obs.Summary())
	if err := obs.WriteJSONL(&b); err != nil {
		fmt.Fprintf(&b, "jsonl error: %v\n", err)
	}
	b.WriteString("--- perfetto ---\n")
	if err := trace.WriteChromeTrace(&b, s.TraceEvents()); err != nil {
		fmt.Fprintf(&b, "perfetto error: %v\n", err)
	}
	b.WriteByte('\n')
	return b.Bytes()
}

// stableSortDeliveries orders by time, keeping concatenation (shard,
// position) order for ties.
func stableSortDeliveries(ds []Delivery) {
	sort.SliceStable(ds, func(i, j int) bool { return ds[i].At < ds[j].At })
}
