package core

import (
	"testing"
	"time"

	"sanft/internal/proto"
	"sanft/internal/retrans"
	"sanft/internal/sim"
	"sanft/internal/topology"
)

func TestDefaultStarBuild(t *testing.T) {
	c := New(Config{NumHosts: 4, FT: true, Seed: 1})
	if len(c.Hosts) != 4 {
		t.Fatalf("hosts = %d", len(c.Hosts))
	}
	for i := range c.Hosts {
		if c.NICAt(i) == nil || c.EndpointAt(i) == nil {
			t.Fatalf("host %d missing NIC or endpoint", i)
		}
		if !c.NICAt(i).FT() {
			t.Fatal("FT not enabled")
		}
		// Routes to every other host pre-installed.
		if got := len(c.NICAt(i).Destinations()); got != 3 {
			t.Fatalf("host %d has %d routes, want 3", i, got)
		}
	}
	if c.Mapper(c.Host(0)) != nil {
		t.Fatal("mapper should be nil when disabled")
	}
}

func TestZeroConfigDefaultsToTwoHosts(t *testing.T) {
	c := New(Config{})
	if len(c.Hosts) != 2 {
		t.Fatalf("hosts = %d, want 2", len(c.Hosts))
	}
}

func TestMapperRequiresFT(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mapper without FT should panic")
		}
	}()
	New(Config{NumHosts: 2, Mapper: true})
}

func TestEndToEndTransfer(t *testing.T) {
	c := New(Config{NumHosts: 2, FT: true, Seed: 1})
	exp := c.EndpointAt(1).Export("x", 64)
	ok := false
	c.K.Spawn("send", func(p *sim.Proc) {
		imp, err := c.EndpointAt(0).Import(c.Host(1), "x")
		if err != nil {
			t.Error(err)
			return
		}
		imp.Send(p, 0, []byte{1, 2, 3}, true)
	})
	c.K.Spawn("recv", func(p *sim.Proc) {
		exp.WaitNotification(p)
		ok = true
	})
	c.RunFor(time.Millisecond)
	c.Stop()
	if !ok {
		t.Fatal("transfer failed")
	}
}

func TestErrorRateWiresDroppers(t *testing.T) {
	c := New(Config{NumHosts: 2, FT: true, ErrorRate: 0.05, Seed: 1})
	exp := c.EndpointAt(1).Export("x", 4096)
	got := 0
	c.K.Spawn("send", func(p *sim.Proc) {
		imp, _ := c.EndpointAt(0).Import(c.Host(1), "x")
		for i := 0; i < 100; i++ {
			imp.Send(p, 0, make([]byte, 512), true)
		}
	})
	c.K.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			exp.WaitNotification(p)
			got++
		}
		c.StopSoon()
	})
	c.RunFor(time.Second)
	c.Stop()
	if got != 100 {
		t.Fatalf("delivered %d/100", got)
	}
	if c.NICAt(0).Counters().Get("err-injected-drops") == 0 {
		t.Fatal("dropper never fired")
	}
}

func TestOnDemandRemapWiring(t *testing.T) {
	// Full-stack: with Mapper enabled, a permanent trunk failure is
	// detected and remapped without any manual wiring.
	nw, hosts := topology.DoubleStar(4)
	c := New(Config{
		Net: nw, Hosts: hosts, FT: true,
		Retrans: retrans.Config{QueueSize: 16, Interval: time.Millisecond, PermFailThreshold: 10 * time.Millisecond},
		Mapper:  true,
		Seed:    3,
	})
	src, dst := c.Host(0), c.Host(3)
	exp := c.Endpoint(dst).Export("x", 4096)
	delivered := map[uint64]bool{}
	c.K.Spawn("recv", func(p *sim.Proc) {
		for len(delivered) < 10 {
			n := exp.WaitNotification(p)
			delivered[n.MsgID] = true
		}
	})
	c.K.Spawn("send", func(p *sim.Proc) {
		imp, _ := c.Endpoint(src).Import(dst, "x")
		for i := 0; i < 10; i++ {
			imp.Send(p, 0, make([]byte, 128), true)
			p.Sleep(300 * time.Microsecond)
		}
	})
	route, _ := c.NIC(src).Route(dst)
	c.K.After(500*time.Microsecond, func() {
		sw := nw.Switches()[0]
		c.Fab.KillLink(nw.Node(sw).Ports[route[0]])
	})
	c.RunFor(3 * time.Second)
	c.Stop()
	if c.Remaps != 1 {
		t.Fatalf("remaps = %d, want 1", c.Remaps)
	}
	if len(delivered) != 10 {
		t.Fatalf("delivered %d/10 distinct messages", len(delivered))
	}
}

func TestUnreachableCountsAndDropsPending(t *testing.T) {
	nw, hosts := topology.Star(2)
	c := New(Config{
		Net: nw, Hosts: hosts, FT: true,
		Retrans: retrans.Config{QueueSize: 8, Interval: time.Millisecond, PermFailThreshold: 10 * time.Millisecond},
		Mapper:  true,
		Seed:    1,
	})
	src, dst := c.Host(0), c.Host(1)
	// Kill the destination's own link: no alternate route exists.
	c.Fab.KillLink(nw.Node(dst).Ports[0])
	c.K.Spawn("send", func(p *sim.Proc) {
		imp, _ := c.Endpoint(src).Import(dst, mustExport(c, dst))
		imp.Send(p, 0, make([]byte, 64), false)
	})
	c.RunFor(3 * time.Second)
	c.Stop()
	if c.Unreachables != 1 {
		t.Fatalf("unreachables = %d, want 1", c.Unreachables)
	}
	if c.NIC(src).ProtoSender().TotalUnacked() != 0 {
		t.Fatal("pending packets not dropped")
	}
}

// mustExport creates an export on dst and returns its name.
func mustExport(c *Cluster, dst topology.NodeID) string {
	c.Endpoint(dst).Export("sink", 4096)
	return "sink"
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (sim.Time, uint64) {
		c := New(Config{NumHosts: 3, FT: true, ErrorRate: 0.02, Seed: 9})
		exp := c.EndpointAt(2).Export("x", 4096)
		c.K.Spawn("send", func(p *sim.Proc) {
			imp, _ := c.EndpointAt(0).Import(c.Host(2), "x")
			for i := 0; i < 50; i++ {
				imp.Send(p, 0, make([]byte, 700), true)
			}
		})
		var last sim.Time
		c.K.Spawn("recv", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				exp.WaitNotification(p)
				last = p.Now()
			}
			c.StopSoon()
		})
		c.RunFor(time.Second)
		c.Stop()
		return last, c.NICAt(0).Counters().Get("pkts-retransmitted")
	}
	t1, r1 := run()
	t2, r2 := run()
	if t1 != t2 || r1 != r2 {
		t.Fatalf("runs diverged: (%v,%d) vs (%v,%d)", t1, r1, t2, r2)
	}
}

func TestFrameTypesOnWireAreCounted(t *testing.T) {
	c := New(Config{NumHosts: 2, FT: true, Seed: 1})
	exp := c.EndpointAt(1).Export("x", 64)
	c.K.Spawn("send", func(p *sim.Proc) {
		imp, _ := c.EndpointAt(0).Import(c.Host(1), "x")
		imp.Send(p, 0, []byte{1}, true)
	})
	c.K.Spawn("recv", func(p *sim.Proc) {
		exp.WaitNotification(p)
	})
	c.RunFor(10 * time.Millisecond)
	c.Stop()
	st := c.Fab.Stats()
	if st.Injected < 2 { // data + at least one ack eventually
		t.Fatalf("injected = %d", st.Injected)
	}
	if st.Delivered != st.Injected {
		t.Fatalf("loss without injection: %+v", st)
	}
	_ = proto.FrameData
}
