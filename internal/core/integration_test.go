package core

import (
	"fmt"
	"testing"
	"time"

	"sanft/internal/fabric"
	"sanft/internal/retrans"
	"sanft/internal/routing"
	"sanft/internal/sim"
	"sanft/internal/topology"
)

// TestDeadlockRecoveryEndToEnd exercises the paper's §4.2 claim at full
// protocol depth: the on-demand mapper installs routes with NO
// deadlock-freedom guarantee, so concurrent traffic can genuinely
// deadlock in the wormhole fabric; the Myrinet watchdog resets blocked
// paths (dropping packets) and the retransmission protocol redelivers —
// "instead of computing deadlock-free routes to avoid deadlocks, we rely
// on deadlock detection and recovery."
func TestDeadlockRecoveryEndToEnd(t *testing.T) {
	nw, hostRows := topology.Ring(4, 1)
	hosts := make([]topology.NodeID, 4)
	for i := range hosts {
		hosts[i] = hostRows[i][0]
	}
	fcfg := fabric.DefaultConfig()
	fcfg.Watchdog = time.Millisecond // fast recovery for the test
	c := New(Config{
		Net:    nw,
		Hosts:  hosts,
		FT:     true,
		Fabric: fcfg,
		Retrans: retrans.Config{
			QueueSize: 8,
			Interval:  2 * time.Millisecond,
		},
		Seed: 5,
	})
	// Replace the (deadlock-free-ish) shortest routes with deliberately
	// cyclic ones: every host routes to its 3-hop neighbour all the way
	// around the ring in the same direction.
	for i, src := range hosts {
		dst := hosts[(i+3)%4]
		route := clockwiseRoute(t, nw, src, dst, 3)
		c.NIC(src).SetRoute(dst, route)
		// The reverse direction (for acks) is the 1-hop route.
		back, err := routing.Shortest(nw, dst, src)
		if err != nil {
			t.Fatal(err)
		}
		c.NIC(dst).SetRoute(src, back)
	}

	const msgs = 6
	const msgSize = 12 * 1024 // 3 chunks each: long worms, heavy contention
	got := make(map[topology.NodeID]int)
	for i, src := range hosts {
		dst := hosts[(i+3)%4]
		src, dst := src, dst
		exp := c.Endpoint(dst).Export(fmt.Sprintf("in-%d", src), msgSize)
		c.K.Spawn(fmt.Sprintf("recv-%d", dst), func(p *sim.Proc) {
			for j := 0; j < msgs; j++ {
				exp.WaitNotification(p)
				got[dst]++
			}
		})
		c.K.Spawn(fmt.Sprintf("send-%d", src), func(p *sim.Proc) {
			imp, err := c.Endpoint(src).Import(dst, fmt.Sprintf("in-%d", src))
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < msgs; j++ {
				imp.Send(p, 0, make([]byte, msgSize), true)
			}
		})
	}
	c.RunFor(5 * time.Second)
	c.Stop()

	st := c.Fab.Stats()
	if st.WatchdogResets == 0 {
		t.Fatal("no watchdog resets: the route set did not deadlock, test proves nothing")
	}
	for _, h := range hosts {
		if got[h] != msgs && got[h] != 0 { // senders target 3-hop neighbours; every host is a receiver
			t.Fatalf("host %d received %d of %d messages", h, got[h], msgs)
		}
	}
	total := 0
	for _, v := range got {
		total += v
	}
	if total != 4*msgs {
		t.Fatalf("delivered %d of %d messages across deadlock recovery (resets=%d)",
			total, 4*msgs, st.WatchdogResets)
	}
}

// clockwiseRoute builds a route crossing `hops` ring switches in
// ascending-ID order, then exiting to dst.
func clockwiseRoute(t *testing.T, nw *topology.Network, src, dst topology.NodeID, hops int) routing.Route {
	t.Helper()
	var r routing.Route
	cur, _ := nw.Neighbor(src, 0)
	for i := 0; i < hops; i++ {
		n := nw.Node(cur)
		advanced := false
		for p := 0; p < n.Radix(); p++ {
			nb, _ := nw.Neighbor(cur, p)
			if nb == topology.None || nw.Node(nb).Kind != topology.Switch {
				continue
			}
			if nb == cur+1 || (int(cur) == 3 && nb == 0) {
				r = append(r, p)
				cur = nb
				advanced = true
				break
			}
		}
		if !advanced {
			t.Fatalf("no clockwise hop from switch %d", cur)
		}
	}
	n := nw.Node(cur)
	for p := 0; p < n.Radix(); p++ {
		if nb, _ := nw.Neighbor(cur, p); nb == dst {
			return append(r, p)
		}
	}
	t.Fatalf("dst not on final switch")
	return nil
}

// TestDynamicReconfigurationMovedHost reproduces the paper's dynamic
// reconfiguration scenario (§4.2, and the trigger for Table 3): "a node
// is re-connected to a different location of the system and the first
// packet exchange triggers the mapping process." Traffic must resume at
// the host's new location without any application involvement.
func TestDynamicReconfigurationMovedHost(t *testing.T) {
	nw, hostRows := topology.Chain(3, 2, 2)
	var hosts []topology.NodeID
	for _, row := range hostRows {
		hosts = append(hosts, row...)
	}
	c := New(Config{
		Net: nw, Hosts: hosts, FT: true,
		Retrans: retrans.Config{
			QueueSize:         16,
			Interval:          time.Millisecond,
			PermFailThreshold: 10 * time.Millisecond,
		},
		Mapper: true,
		Seed:   2,
	})
	src := hostRows[0][0] // on switch 0
	dst := hostRows[0][1] // starts on switch 0, will move to switch 2
	exp := c.Endpoint(dst).Export("inbox", 4096)

	delivered := map[uint64]bool{}
	c.K.Spawn("recv", func(p *sim.Proc) {
		for len(delivered) < 12 {
			n := exp.WaitNotification(p)
			delivered[n.MsgID] = true
		}
	})
	c.K.Spawn("send", func(p *sim.Proc) {
		imp, _ := c.Endpoint(src).Import(dst, "inbox")
		for i := 0; i < 12; i++ {
			imp.Send(p, 0, make([]byte, 256), true)
			p.Sleep(400 * time.Microsecond)
		}
	})

	// Mid-run: unplug dst and re-plug it into the far switch.
	c.K.After(1*time.Millisecond, func() {
		oldLink := nw.Node(dst).Ports[0]
		c.Fab.KillLink(oldLink) // flush in-flight traffic on the cable
		sw2 := nw.Switches()[2]
		port := nw.Node(sw2).FreePort()
		nw.MoveHost(dst, sw2, port)
	})

	c.RunFor(5 * time.Second)
	c.Stop()

	if len(delivered) != 12 {
		t.Fatalf("delivered %d/12 distinct messages across the move (remaps=%d, unreachable=%d)",
			len(delivered), c.Remaps, c.Unreachables)
	}
	if c.Remaps == 0 {
		t.Fatal("no remap recorded despite the move")
	}
	// The new route must lead to switch 2.
	route, ok := c.NIC(src).Route(dst)
	if !ok {
		t.Fatal("no route after move")
	}
	res, err := routing.Walk(nw, src, route)
	if err != nil || res.Dst != dst {
		t.Fatalf("post-move route invalid: %v", err)
	}
	if len(res.Switches) != 3 {
		t.Fatalf("post-move route crosses %d switches, want 3 (src sw0 → dst sw2)", len(res.Switches))
	}
}

// TestConcurrentBidirectionalRemap kills the trunk both directions of a
// conversation depend on; both endpoints' mappers recover independently
// (no central map manager — any node can map).
func TestConcurrentBidirectionalRemap(t *testing.T) {
	nw, hosts := topology.DoubleStar(4)
	c := New(Config{
		Net: nw, Hosts: hosts, FT: true,
		Retrans: retrans.Config{
			QueueSize:         16,
			Interval:          time.Millisecond,
			PermFailThreshold: 8 * time.Millisecond,
		},
		Mapper: true,
		Seed:   4,
	})
	a, b := c.Host(0), c.Host(3) // opposite switches
	expA := c.Endpoint(a).Export("in", 4096)
	expB := c.Endpoint(b).Export("in", 4096)

	gotA, gotB := map[uint64]bool{}, map[uint64]bool{}
	const n = 15
	c.K.Spawn("a", func(p *sim.Proc) {
		imp, _ := c.Endpoint(a).Import(b, "in")
		for i := 0; i < n; i++ {
			imp.Send(p, 0, make([]byte, 256), true)
			p.Sleep(300 * time.Microsecond)
		}
	})
	c.K.Spawn("b", func(p *sim.Proc) {
		imp, _ := c.Endpoint(b).Import(a, "in")
		for i := 0; i < n; i++ {
			imp.Send(p, 0, make([]byte, 256), true)
			p.Sleep(300 * time.Microsecond)
		}
	})
	c.K.Spawn("ra", func(p *sim.Proc) {
		for len(gotA) < n {
			nt := expA.WaitNotification(p)
			gotA[nt.MsgID] = true
		}
	})
	c.K.Spawn("rb", func(p *sim.Proc) {
		for len(gotB) < n {
			nt := expB.WaitNotification(p)
			gotB[nt.MsgID] = true
		}
	})

	// Kill the trunk both initial routes use (shortest ties resolve the
	// same way for both directions: the first trunk).
	routeAB, _ := c.NIC(a).Route(b)
	c.K.After(800*time.Microsecond, func() {
		sw := nw.Switches()[0]
		c.Fab.KillLink(nw.Node(sw).Ports[routeAB[0]])
	})

	c.RunFor(5 * time.Second)
	c.Stop()

	if len(gotA) != n || len(gotB) != n {
		t.Fatalf("delivered a=%d b=%d of %d each (remaps=%d)", len(gotA), len(gotB), n, c.Remaps)
	}
	if c.Remaps == 0 {
		t.Fatal("no remaps despite trunk failure")
	}
}
