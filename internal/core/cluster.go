// Package core assembles the full simulated platform: topology, fabric,
// NICs (with or without the firmware retransmission protocol), VMMC
// endpoints, error injection, and — when enabled — per-NIC on-demand
// mappers wired to the permanent-failure detector. One Cluster is one
// reproducible experiment instance.
package core

import (
	"time"

	"sanft/internal/enginestat"
	"sanft/internal/fabric"
	"sanft/internal/fault"
	"sanft/internal/liveness"
	"sanft/internal/mapping"
	"sanft/internal/metrics"
	"sanft/internal/nic"
	"sanft/internal/parsim"
	"sanft/internal/retrans"
	"sanft/internal/routing"
	"sanft/internal/sim"
	"sanft/internal/topology"
	"sanft/internal/trace"
	"sanft/internal/vmmc"
)

// EngineKind selects the execution engine a Cluster runs on.
type EngineKind int

const (
	// EngineSequential is the default: one kernel drives every host, with
	// full observability (endpoints, mappers, cluster-wide tracer).
	EngineSequential EngineKind = iota
	// EngineSharded partitions the hosts into shard cells driven by the
	// conservative parallel engine. The partition — not the worker
	// count — defines the semantics: results are byte-identical for any
	// number of workers.
	EngineSharded
)

func (k EngineKind) String() string {
	switch k {
	case EngineSequential:
		return "sequential"
	case EngineSharded:
		return "sharded"
	}
	return "unknown"
}

// ShardPlan describes how EngineSharded partitions hosts into shards
// (cells). The plan is part of the experiment's identity: changing it
// changes which traffic crosses epoch barriers, so differential gates
// must pin it. The zero plan is one host per shard — the finest
// partition, and the one that matches the sequential engine host-for-host.
type ShardPlan struct {
	// HostsPerShard, when > 0, chunks the host list in order into groups
	// of this size (last group may be smaller). Coarser shards shorten
	// the per-epoch fixed cost and keep intra-group traffic off the
	// barrier path at the price of less available parallelism.
	HostsPerShard int
	// Groups, when non-empty, is an explicit partition and overrides
	// HostsPerShard. Every host must appear in exactly one group.
	Groups [][]topology.NodeID
}

// zero reports whether the plan is the default one-host-per-shard plan.
func (p ShardPlan) zero() bool { return p.HostsPerShard == 0 && len(p.Groups) == 0 }

// Config describes a cluster build.
type Config struct {
	// Net and Hosts define the wiring; if Net is nil, a single-switch
	// star of NumHosts hosts is built.
	Net      *topology.Network
	Hosts    []topology.NodeID
	NumHosts int

	// FT enables the firmware retransmission protocol on every NIC.
	FT bool
	// Retrans holds protocol parameters (queue size q, timer interval T,
	// permanent-failure threshold, ...). Zero fields take the paper's
	// best-compromise defaults. The queue size also bounds the send
	// buffer pool when FT is off — provisioning is independent of
	// whether the protocol consumes acknowledgments.
	Retrans retrans.Config
	// ErrorRate is the paper's send-side injected drop rate (e.g. 1e-3);
	// each NIC gets its own deterministic dropper. Zero means no errors.
	ErrorRate float64

	// Liveness, when non-nil, runs a BFD-style session on every routed
	// path: sessions detect dead paths after DetectMult negotiated
	// intervals of control silence — typically well before the fixed
	// permanent-failure threshold — and feed the same remap/quarantine
	// recovery path. Requires FT. The Seed field is a base; each session
	// derives its own jitter stream from it.
	Liveness *liveness.Config

	// Cost overrides the NIC hardware cost model (zero = calibrated
	// defaults); Fabric overrides wire constants (zero = defaults).
	Cost   nic.CostModel
	Fabric fabric.Config

	// Mapper enables on-demand mapping: stale paths and missing routes
	// trigger a background remap exactly as §4.2 describes. Requires FT,
	// and the sequential engine.
	Mapper    bool
	MapperCfg mapping.Config

	// Remap paces the recovery path: remaps to one destination coalesce,
	// failures back off exponentially with jitter, and persistent failures
	// quarantine the destination. Zero fields take defaults.
	Remap RemapPolicy
	// OnUnreachable fires when src quarantines dst after repeated failed
	// remaps — the explicit graceful-degradation upcall, instead of
	// silently retrying forever.
	OnUnreachable func(src, dst topology.NodeID)

	// Metrics tunes the observability layer. The zero value still builds
	// a full registry (all subsystems record unconditionally); set
	// SampleEvery to also collect a periodic time series.
	Metrics metrics.Config

	// Tracer, if non-nil, receives every trace event from every layer:
	// NIC protocol actions, fabric hop events, VMMC message lifecycle,
	// and remap lifecycle. Typically a *trace.Ring or *trace.FlightRecorder.
	// Sequential engine only; the sharded engine traces into per-shard
	// rings (see TraceEvents).
	Tracer trace.Tracer

	// Seed drives all deterministic randomness.
	Seed int64

	// Profile enables the engine wall-clock profiler: per-worker epoch
	// accounting in the parallel engine, kernel event counters, and
	// frame/packet pool traffic, collected worker-locally and read back
	// through EngineProfile after the run. Off by default; profiling
	// never changes simulation results (it reads clocks, feeds nothing
	// back), so profiled dumps stay byte-identical to unprofiled ones.
	Profile bool

	// Telemetry, when non-empty, starts a live telemetry HTTP server on
	// this address (host:port; port 0 picks one — see Telemetry().Addr()):
	// Prometheus /metrics, /debug/pprof, expvar, engine /profile.
	// Metrics snapshots publish on every observer sample and at
	// RunFor/Stop boundaries. The server outlives Stop so a final scrape
	// can read the end state; the owner closes it via Telemetry().Close().
	Telemetry string

	// Engine selects the execution engine; a non-zero Plan implies
	// EngineSharded.
	Engine EngineKind
	// Plan partitions hosts into shards under EngineSharded (zero = one
	// host per shard).
	Plan ShardPlan
	// Workers is the OS-thread count driving the shard kernels under
	// EngineSharded. Results are byte-identical for any value — the
	// partition defines the semantics — so Workers (default 0 =
	// GOMAXPROCS) only changes wall-clock time. Ignored by the
	// sequential engine.
	Workers int

	// Shards is the historical name for Workers.
	//
	// Deprecated: set Workers (and Engine/Plan). Read only when Workers
	// is zero.
	Shards int
}

// Cluster is a fully wired simulation instance, on either engine.
//
// Sequential engine: K, Fab and Dir are live; every per-host accessor
// (Endpoint, Mapper, Observer, ...) works.
//
// Sharded engine: K, Fab and Dir are nil — hosts live in per-shard cells
// with private kernels and fabric replicas, and the cross-engine subset
// of the API (NIC, RunFor, Stop, Now) plus the sharded-only methods
// (StartFlows, Deliveries, MergedObserver, DumpObservables, ...) apply.
// Methods that would need a single cluster-wide kernel panic with a
// pointer to the replacement.
type Cluster struct {
	K     *sim.Kernel
	Net   *topology.Network
	Fab   *fabric.Fabric
	Hosts []topology.NodeID
	Dir   *vmmc.Directory

	// Lookahead is the conservative epoch window of the sharded engine:
	// the minimum cross-shard fabric traversal time. Zero on the
	// sequential engine.
	Lookahead time.Duration

	nics    map[topology.NodeID]*nic.NIC
	eps     map[topology.NodeID]*vmmc.Endpoint
	mappers map[topology.NodeID]*mapping.Mapper
	remaps  map[topology.NodeID]*remapManager

	onUnreachable func(src, dst topology.NodeID)
	obs           *metrics.Observer
	tracer        trace.Tracer

	// remapRunning counts mapping runs in flight cluster-wide, for
	// RemapPolicy.MaxConcurrent pacing.
	remapRunning int

	// Sharded-engine state (nil/empty on the sequential engine).
	cfg    Config
	cells  []*cell
	byHost map[topology.NodeID]int
	eng    *parsim.Engine

	// Engine-profiling state (nil/zero when Config.Profile is off).
	prof      *enginestat.EngineProf // sharded engine's recording area
	profiled  bool
	poolBase  enginestat.PoolStat // pool counters at construction time
	telemetry *enginestat.Server

	// Remaps counts completed on-demand remap operations.
	Remaps int
	// Unreachables counts remaps that ended in an unreachable verdict.
	Unreachables int
	// RemapStats counts remap-manager pacing activity (coalesced upcalls,
	// deferred retries, quarantines).
	RemapStats RemapStats
}

// New builds a cluster on the engine cfg selects: the sequential
// single-kernel engine by default, or the conservative parallel engine
// when cfg.Engine is EngineSharded or cfg.Plan is non-zero. All routes
// between host pairs are pre-installed (shortest paths), as a freshly
// mapped system would have them.
func New(cfg Config) *Cluster {
	if cfg.Engine == EngineSharded || !cfg.Plan.zero() {
		cfg.Engine = EngineSharded
		return newSharded(cfg)
	}
	return newSequential(cfg)
}

func newSequential(cfg Config) *Cluster {
	if cfg.Net == nil {
		n := cfg.NumHosts
		if n == 0 {
			n = 2
		}
		cfg.Net, cfg.Hosts = topology.Star(n)
	}
	if len(cfg.Hosts) == 0 {
		cfg.Hosts = cfg.Net.Hosts()
	}
	if cfg.Fabric == (fabric.Config{}) {
		cfg.Fabric = fabric.DefaultConfig()
	}
	if cfg.Liveness != nil {
		if !cfg.FT {
			panic("core: liveness sessions require the retransmission protocol")
		}
		// Fold the cluster seed into the session-jitter base so different
		// cluster seeds give independent control-packet phasing (each NIC
		// then derives per-session streams from this base).
		lc := *cfg.Liveness
		lc.Seed = lc.Seed*1000003 + cfg.Seed
		cfg.Liveness = &lc
	}
	k := sim.New(cfg.Seed)
	obs := metrics.NewObserver(cfg.Metrics)
	reg := obs.Registry()
	c := &Cluster{
		cfg:           cfg,
		K:             k,
		Net:           cfg.Net,
		Fab:           fabric.New(k, cfg.Net, cfg.Fabric),
		Hosts:         cfg.Hosts,
		Dir:           vmmc.NewDirectory(),
		nics:          make(map[topology.NodeID]*nic.NIC),
		eps:           make(map[topology.NodeID]*vmmc.Endpoint),
		mappers:       make(map[topology.NodeID]*mapping.Mapper),
		remaps:        make(map[topology.NodeID]*remapManager),
		onUnreachable: cfg.OnUnreachable,
		obs:           obs,
	}
	// Rebind before any traffic so every fabric event lands in the
	// cluster-wide registry rather than the fabric's private one.
	c.Fab.BindMetrics(reg)
	if cfg.Tracer != nil {
		c.InstallTracer(cfg.Tracer)
	}
	for _, h := range cfg.Hosts {
		var dropper fault.Dropper
		if cfg.ErrorRate > 0 {
			// Seed per (cluster, host): different cluster seeds — and
			// different NICs within one cluster — get independent drop
			// schedules at the same rate.
			dropper = fault.NewRateSeeded(cfg.ErrorRate, cfg.Seed*1000003+int64(h)*7919+12289)
		}
		n := nic.New(k, c.Fab, h, nic.Options{
			FT:       cfg.FT,
			Retrans:  cfg.Retrans,
			Cost:     cfg.Cost,
			Dropper:  dropper,
			Tracer:   cfg.Tracer,
			Metrics:  reg,
			Liveness: cfg.Liveness,
		})
		c.nics[h] = n
		c.eps[h] = vmmc.NewEndpoint(k, n, c.Dir)
	}
	// Pre-install all-pairs shortest routes with one BFS per source host
	// (O(H·E) total). ShortestFrom's visit order and tie-breaks are
	// identical to per-pair Shortest, so installed routes are byte-for-byte
	// the same as the historical O(H²·E) rescan produced.
	for _, a := range cfg.Hosts {
		routes := routing.ShortestFrom(cfg.Net, a)
		for _, b := range cfg.Hosts {
			if a == b {
				continue
			}
			if r, ok := routes[b]; ok {
				c.nics[a].SetRoute(b, r)
			}
		}
	}
	if cfg.Mapper {
		if !cfg.FT {
			panic("core: on-demand mapping requires the retransmission protocol")
		}
		pol := cfg.Remap.Defaults()
		for _, h := range cfg.Hosts {
			m := mapping.New(k, c.nics[h], cfg.MapperCfg)
			c.mappers[h] = m
			rm := newRemapManager(c, h, m, pol, cfg.Seed*9176+int64(h)*104729+31)
			c.remaps[h] = rm
			c.nics[h].SetOnPathStale(rm.trigger)
			c.nics[h].SetOnNoRoute(rm.trigger)
			if cfg.Liveness != nil {
				c.nics[h].SetOnSessionDown(rm.trigger)
			}
		}
	}
	if cfg.Metrics.SampleEvery > 0 {
		obs.StartSampling(k, cfg.Metrics.SampleEvery)
	}
	if cfg.Profile {
		c.enableProfiling()
	}
	if cfg.Telemetry != "" {
		c.startTelemetry(cfg.Telemetry)
	}
	return c
}

// Sharded reports whether the cluster runs on the sharded engine.
func (c *Cluster) Sharded() bool { return c.eng != nil }

func (c *Cluster) mustSequential(method string) {
	if c.eng != nil {
		panic("core: " + method + " is sequential-engine only; this cluster runs EngineSharded")
	}
}

func (c *Cluster) mustSharded(method string) {
	if c.eng == nil {
		panic("core: " + method + " requires EngineSharded (build with Config.Engine or WithEngine/WithShardPlan)")
	}
}

// Observer returns the cluster's observability handle: its registry is
// the single place every subsystem (NIC, fabric, retransmission protocol,
// mapper, remap manager) records into, and its exporters render the
// collected telemetry. Sequential engine only — shard registries are
// per-cell; use MergedObserver.
func (c *Cluster) Observer() *metrics.Observer {
	c.mustSequential("Observer (use MergedObserver)")
	return c.obs
}

// Metrics returns the cluster-wide metrics registry (shorthand for
// Observer().Registry()). Sequential engine only.
func (c *Cluster) Metrics() *metrics.Registry {
	c.mustSequential("Metrics (use MergedObserver)")
	return c.obs.Registry()
}

// InstallTracer wires tr into every layer of an already-built cluster —
// each NIC and the fabric — and remembers it for Tracer()/FlightRecorder().
// Chaos campaigns use this to attach a tracer between cluster construction
// and traffic start; nil removes the current tracer everywhere.
// Sequential engine only — shard cells trace into private rings (see
// TraceEvents).
func (c *Cluster) InstallTracer(tr trace.Tracer) {
	c.mustSequential("InstallTracer (sharded clusters trace into per-shard rings)")
	c.tracer = tr
	c.Fab.SetTracer(tr)
	for _, n := range c.nics {
		n.SetTracer(tr)
	}
}

// Tracer returns the cluster-wide tracer (nil if tracing is off, and
// always nil on the sharded engine).
func (c *Cluster) Tracer() trace.Tracer { return c.tracer }

// FlightRecorder returns the cluster tracer as a flight recorder, or nil
// if the tracer is absent or of another kind.
func (c *Cluster) FlightRecorder() *trace.FlightRecorder {
	fr, _ := c.tracer.(*trace.FlightRecorder)
	return fr
}

// NIC returns the NIC of host h (works on both engines).
func (c *Cluster) NIC(h topology.NodeID) *nic.NIC {
	if c.eng != nil {
		i, ok := c.byHost[h]
		if !ok {
			return nil
		}
		return c.cells[i].nics[h]
	}
	return c.nics[h]
}

// Endpoint returns the VMMC endpoint of host h. Sequential engine only.
func (c *Cluster) Endpoint(h topology.NodeID) *vmmc.Endpoint {
	c.mustSequential("Endpoint")
	return c.eps[h]
}

// Mapper returns the on-demand mapper of host h (nil if mapping disabled).
func (c *Cluster) Mapper(h topology.NodeID) *mapping.Mapper { return c.mappers[h] }

// Quarantined reports whether host src currently holds dst in quarantine
// (repeated remap failures; cleared by the next successful remap).
func (c *Cluster) Quarantined(src, dst topology.NodeID) bool {
	rm := c.remaps[src]
	return rm != nil && rm.quarantinedNow(dst)
}

// RemapInFlight returns, across all hosts, how many destinations have a
// mapping run currently active and how many hold an armed retry timer.
// At quiesce both should be zero (a run still active there means a remap
// wedged without completing).
func (c *Cluster) RemapInFlight() (running, armed int) {
	for _, rm := range c.remaps {
		r, a := rm.busy()
		running += r
		armed += a
	}
	return
}

// SuspendRemap freezes host h's failure recovery: stale-path / no-route /
// session-down triggers are held instead of starting mapping runs, so h
// keeps routing on its pre-failure map. Stale-map divergence scenarios use
// this to open a blind window; ResumeRemap replays the held triggers.
// Sequential engine with mapping enabled only.
func (c *Cluster) SuspendRemap(h topology.NodeID) {
	c.mustSequential("SuspendRemap")
	rm := c.remaps[h]
	if rm == nil {
		panic("core: SuspendRemap on a cluster without Config.Mapper")
	}
	rm.suspend()
}

// ResumeRemap re-enables host h's failure recovery and replays every
// trigger held while suspended, in destination order.
func (c *Cluster) ResumeRemap(h topology.NodeID) {
	c.mustSequential("ResumeRemap")
	rm := c.remaps[h]
	if rm == nil {
		panic("core: ResumeRemap on a cluster without Config.Mapper")
	}
	rm.resume()
}

// SetLinkLoss makes topology link id gray: packets crossing it drop with
// probability rate from a deterministic per-(seed, link) stream. Works on
// both engines (on the sharded engine every shard replica gets the same
// stream parameters; each samples only the packets it carries). rate 0
// clears the loss.
func (c *Cluster) SetLinkLoss(link int, rate float64) {
	if c.eng != nil {
		for _, cl := range c.cells {
			cl.pipe.SetLinkLoss(link, rate, c.cfg.Seed)
		}
		return
	}
	c.Fab.SetLinkLoss(link, rate, c.cfg.Seed)
}

// Host returns the i-th host's node ID.
func (c *Cluster) Host(i int) topology.NodeID { return c.Hosts[i] }

// EndpointAt returns the i-th host's endpoint. Sequential engine only.
func (c *Cluster) EndpointAt(i int) *vmmc.Endpoint {
	c.mustSequential("EndpointAt")
	return c.eps[c.Hosts[i]]
}

// NICAt returns the i-th host's NIC (works on both engines).
func (c *Cluster) NICAt(i int) *nic.NIC { return c.NIC(c.Hosts[i]) }

// RunFor advances the whole simulation by d, then stops the kernel(s)
// (terminating any still-parked processes). Use for bounded experiments.
func (c *Cluster) RunFor(d time.Duration) {
	if c.eng != nil {
		c.eng.RunFor(d)
	} else {
		c.K.RunFor(d)
	}
	c.publishTelemetry()
}

// Stop terminates the simulation and all its processes. On the sharded
// engine this also shuts the worker pool down; the cluster can still be
// inspected (Deliveries, DumpObservables, ...) but not resumed.
func (c *Cluster) Stop() {
	if c.eng != nil {
		for _, cl := range c.cells {
			cl.k.Stop()
		}
		c.eng.Shutdown()
	} else {
		c.K.Stop()
	}
	// Final publish so a live scrape can read the end state; the server
	// itself stays up until its owner closes it.
	c.publishTelemetry()
}

// StopSoon schedules a stop at the current instant; safe to call from
// process context (the stop executes once control returns to the kernel).
// Benchmarks call it when their workload completes so the run does not
// idle through periodic timer events until its time bound. Sequential
// engine only.
func (c *Cluster) StopSoon() {
	c.mustSequential("StopSoon")
	c.K.Immediately(func() { c.K.Stop() })
}

// Now returns the current simulated time: the kernel clock, or the time
// frontier all shards have reached.
func (c *Cluster) Now() sim.Time {
	if c.eng != nil {
		return c.eng.Now()
	}
	return c.K.Now()
}
