package core

import (
	"fmt"
	"testing"
	"time"

	"sanft/internal/retrans"
	"sanft/internal/sim"
	"sanft/internal/topology"
)

// TestChaosLinkFailures subjects a redundant topology to a storm of
// permanent-then-repaired link failures while every host streams to every
// other host. The retransmission protocol plus on-demand remapping must
// deliver every message (at-least-once; dedup by message ID) with no
// stuck senders and no leaked buffers.
func TestChaosLinkFailures(t *testing.T) {
	nw, hostRows := topology.Chain(3, 2, 2) // doubled trunks: always an alternate path
	var hosts []topology.NodeID
	for _, row := range hostRows {
		hosts = append(hosts, row...)
	}
	c := New(Config{
		Net: nw, Hosts: hosts, FT: true,
		Retrans: retrans.Config{
			QueueSize:         16,
			Interval:          time.Millisecond,
			PermFailThreshold: 8 * time.Millisecond,
		},
		Mapper: true,
		Seed:   11,
	})

	const msgsPerPair = 6
	type pair struct{ a, b topology.NodeID }
	received := make(map[pair]map[uint64]bool)

	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			src, dst := src, dst
			name := fmt.Sprintf("in-%d", src)
			exp := c.Endpoint(dst).Export(name, 1024)
			pr := pair{src, dst}
			received[pr] = make(map[uint64]bool)
			c.K.Spawn(fmt.Sprintf("recv-%d-%d", src, dst), func(p *sim.Proc) {
				for len(received[pr]) < msgsPerPair {
					n := exp.WaitNotification(p)
					received[pr][n.MsgID] = true
				}
			})
			c.K.Spawn(fmt.Sprintf("send-%d-%d", src, dst), func(p *sim.Proc) {
				imp, err := c.Endpoint(src).Import(dst, name)
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < msgsPerPair; i++ {
					imp.Send(p, 0, make([]byte, 512), true)
					p.Sleep(time.Duration(200+50*int(src)) * time.Microsecond)
				}
			})
		}
	}

	// The chaos agent: every 3 ms kill a random trunk link (never a host
	// link — host failures are out of scope per the paper) and restore
	// the previously killed one.
	var killed *topology.Link
	trunks := func() []*topology.Link {
		var out []*topology.Link
		for _, l := range nw.Links {
			if nw.Node(l.A.Node).Kind == topology.Switch && nw.Node(l.B.Node).Kind == topology.Switch {
				out = append(out, l)
			}
		}
		return out
	}()
	if len(trunks) != 4 {
		t.Fatalf("expected 4 trunk links, have %d", len(trunks))
	}
	rng := c.K.Rand()
	var chaos func()
	rounds := 0
	chaos = func() {
		if killed != nil {
			nw.RestoreLink(killed)
			killed = nil
		}
		if rounds < 8 {
			killed = trunks[rng.Intn(len(trunks))]
			c.Fab.KillLink(killed)
			rounds++
			c.K.After(3*time.Millisecond, chaos)
		}
	}
	c.K.After(time.Millisecond, chaos)

	c.RunFor(20 * time.Second)
	c.Stop()

	for pr, got := range received {
		if len(got) != msgsPerPair {
			t.Fatalf("pair %d->%d delivered %d of %d (remaps=%d unreachable=%d)",
				pr.a, pr.b, len(got), msgsPerPair, c.Remaps, c.Unreachables)
		}
	}
	for _, h := range hosts {
		if u := c.NIC(h).ProtoSender().TotalUnacked(); u != 0 {
			t.Fatalf("host %d leaked %d buffers", h, u)
		}
	}
}

// TestChaosSwitchFailure kills a middle switch outright: pairs with
// redundant paths recover; pairs that lose all connectivity are reported
// unreachable and their buffers are reclaimed. After the switch is
// restored, traffic to previously unreachable destinations resumes once
// a new send triggers remapping.
func TestChaosSwitchFailure(t *testing.T) {
	f := topology.NewFig2()
	hosts := []topology.NodeID{f.Mapper, f.Targets[0], f.Targets[1], f.Targets[2]}
	c := New(Config{
		Net: f.Net, Hosts: hosts, FT: true,
		Retrans: retrans.Config{
			QueueSize:         16,
			Interval:          time.Millisecond,
			PermFailThreshold: 8 * time.Millisecond,
		},
		Mapper: true,
		Seed:   13,
	})
	src := f.Mapper
	farDst := f.Targets[2]  // behind S1 and S2: cut off when S1 dies
	nearDst := f.Targets[0] // same switch as the mapper: unaffected

	expFar := c.Endpoint(farDst).Export("in", 1024)
	expNear := c.Endpoint(nearDst).Export("in", 1024)
	gotFar := map[uint64]bool{}
	gotNear := map[uint64]bool{}
	c.K.Spawn("recv-far", func(p *sim.Proc) {
		for {
			n := expFar.WaitNotification(p)
			gotFar[n.MsgID] = true
		}
	})
	c.K.Spawn("recv-near", func(p *sim.Proc) {
		for {
			n := expNear.WaitNotification(p)
			gotNear[n.MsgID] = true
		}
	})

	const phase1, phase2 = 12, 8
	c.K.Spawn("send", func(p *sim.Proc) {
		impFar, _ := c.Endpoint(src).Import(farDst, "in")
		impNear, _ := c.Endpoint(src).Import(nearDst, "in")
		for i := 0; i < phase1; i++ {
			impFar.Send(p, 0, make([]byte, 256), true)
			impNear.Send(p, 0, make([]byte, 256), true)
			p.Sleep(500 * time.Microsecond)
		}
		// S1 dies here (timer below); wait out the failure, then keep
		// sending: far traffic must fail over to unreachable, near
		// traffic must be untouched.
		p.Sleep(100 * time.Millisecond)
		for i := 0; i < phase2; i++ {
			impNear.Send(p, 0, make([]byte, 256), true)
			p.Sleep(500 * time.Microsecond)
		}
		// Restore the switch, send to the far node again: the first
		// transmission finds no route (it was dropped to unreachable),
		// the no-route hook remaps, and delivery resumes.
		f.Net.RestoreSwitch(f.Switches[1])
		for i := 0; i < phase2; i++ {
			impFar.Send(p, 0, make([]byte, 256), true)
			p.Sleep(500 * time.Microsecond)
		}
	})
	// Kill S1 in the middle of phase 1, so far-bound messages are caught
	// in flight and the stale-path detector has queued packets to judge.
	c.K.After(2*time.Millisecond, func() { c.Fab.KillSwitch(f.Switches[1]) })

	c.RunFor(30 * time.Second)
	c.Stop()

	if len(gotNear) != phase1+phase2 {
		t.Fatalf("near destination got %d of %d", len(gotNear), phase1+phase2)
	}
	_ = phase1
	if c.Unreachables == 0 {
		t.Fatal("far destination was never declared unreachable")
	}
	// All phase-3 far messages arrive after restoration; phase-1 far
	// messages may be partially lost to the unreachable drop (that is the
	// documented semantics: pending packets are dropped).
	if len(gotFar) < phase2 {
		t.Fatalf("far destination got %d messages; want ≥ %d after restoration", len(gotFar), phase2)
	}
	if u := c.NIC(src).ProtoSender().TotalUnacked(); u != 0 {
		t.Fatalf("sender leaked %d buffers", u)
	}
}
