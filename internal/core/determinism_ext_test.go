package core_test

// Wires the shared proptest determinism contract into the core layer: a
// cluster on a generated topology, running lossy bidirectional traffic
// through a trunk flap, must produce a byte-identical metrics JSONL dump
// across same-seed runs.

import (
	"bytes"
	"testing"
	"time"

	"sanft/internal/chaos"
	"sanft/internal/core"
	"sanft/internal/proptest"
	"sanft/internal/retrans"
	"sanft/internal/sim"
)

func clusterDump(seed int64) []byte {
	nw, hosts := proptest.TopoSpec{Kind: proptest.TopoChain, Hosts: 2, Switches: 2, Width: 1}.Build()
	c := core.New(core.Config{
		Net: nw, Hosts: hosts, FT: true,
		Retrans: retrans.Config{
			QueueSize:         16,
			Interval:          time.Millisecond,
			PermFailThreshold: 4 * time.Millisecond,
		},
		Mapper:    true,
		ErrorRate: 0.02,
		Seed:      seed,
	})
	c.Observer().StartSampling(c.K, time.Millisecond)

	src, dst := hosts[0], hosts[len(hosts)-1]
	exp := c.Endpoint(dst).Export("in", 4096)
	c.K.Spawn("recv", func(p *sim.Proc) {
		for {
			exp.WaitNotification(p)
		}
	})
	c.K.Spawn("send", func(p *sim.Proc) {
		imp, _ := c.Endpoint(src).Import(dst, "in")
		for i := 0; i < 40; i++ {
			imp.Send(p, 0, make([]byte, 256), true)
			p.Sleep(time.Millisecond)
		}
	})
	// One trunk flap mid-run so the dump covers the remap path too.
	if trunks := chaos.TrunkLinks(nw); len(trunks) > 0 {
		c.K.After(10*time.Millisecond, func() { c.Fab.KillLink(trunks[0]) })
		c.K.After(25*time.Millisecond, func() { nw.RestoreLink(trunks[0]) })
	}

	c.RunFor(100 * time.Millisecond)
	c.Stop()
	c.Observer().SampleNow(c.Now())
	var b bytes.Buffer
	if err := c.Observer().WriteJSONL(&b); err != nil {
		b.WriteString("jsonl error: " + err.Error() + "\n")
	}
	return b.Bytes()
}

func TestClusterMetricsDeterministic(t *testing.T) {
	seeds := []int64{5, 17}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		proptest.RequireDeterministic(t, seed, clusterDump)
	}
}
