package liveness

import (
	"testing"
	"time"

	"sanft/internal/sim"
)

func at(ms int64) sim.Time { return sim.Time(0).Add(time.Duration(ms) * time.Millisecond) }

// deliver carries one side's BuildTx output into the other side's OnRx.
func deliver(from, to *Session, now sim.Time) RxResult {
	return to.OnRx(from.BuildTx(now), now)
}

// TestThreeWayHandshake walks both sessions Down → Init → Up with the
// exact RFC 5880 transition sequence.
func TestThreeWayHandshake(t *testing.T) {
	a := NewSession(Config{Seed: 1}, 0, 1)
	b := NewSession(Config{Seed: 1}, 1, 0)

	// A's Down packet moves B to Init.
	r := deliver(a, b, at(1))
	if !r.StateChanged || b.State() != Init {
		t.Fatalf("B after Down packet: %v (changed=%v), want init", b.State(), r.StateChanged)
	}
	// B's Init packet moves A straight to Up.
	r = deliver(b, a, at(2))
	if a.State() != Up {
		t.Fatalf("A after Init packet: %v, want up", a.State())
	}
	// A's Up packet completes B's handshake.
	r = deliver(a, b, at(3))
	if b.State() != Up {
		t.Fatalf("B after Up packet: %v, want up", b.State())
	}
	if !r.StateChanged {
		t.Fatal("B's transition to Up not reported")
	}
}

// TestUpIgnoredWhileDown: a stale Up packet must not bypass the
// handshake — only Down or Init packets move a Down session.
func TestUpIgnoredWhileDown(t *testing.T) {
	a := NewSession(Config{Seed: 1}, 0, 1)
	b := NewSession(Config{Seed: 1}, 1, 0)
	// Force B up, then reset A (models A restarting).
	deliver(a, b, at(1))
	deliver(b, a, at(2))
	deliver(a, b, at(3))
	a = NewSession(Config{Seed: 2}, 0, 1)
	// B still believes Up; its packet must leave the fresh A Down.
	if r := deliver(b, a, at(4)); r.StateChanged || a.State() != Down {
		t.Fatalf("A accepted Up while Down: %v", a.State())
	}
	// And A's Down packet must drop B.
	if deliver(a, b, at(5)); b.State() != Down {
		t.Fatalf("B ignored peer Down: %v", b.State())
	}
}

// TestDetectTimeout: silence drops an Up session, exactly once.
func TestDetectTimeout(t *testing.T) {
	s := NewSession(Config{Seed: 3}, 0, 1)
	p := NewSession(Config{Seed: 3}, 1, 0)
	deliver(s, p, at(1))
	deliver(p, s, at(2))
	if s.State() != Up {
		t.Fatal("setup failed")
	}
	if !s.OnDetectTimeout() {
		t.Fatal("detect timeout on Up session reported no transition")
	}
	if s.State() != Down {
		t.Fatalf("state after timeout: %v", s.State())
	}
	if s.OnDetectTimeout() {
		t.Fatal("second timeout reported a transition")
	}
}

// TestNegotiation: asymmetric timer terms resolve per RFC 5880 — tx
// interval is max(local DesiredMinTx, remote RequiredMinRx); detection
// time is DetectMult × max(local RequiredMinRx, remote DesiredMinTx).
func TestNegotiation(t *testing.T) {
	fast := NewSession(Config{DesiredMinTx: time.Millisecond, DetectMult: 3, Seed: 1}, 0, 1)
	slow := NewSession(Config{DesiredMinTx: 4 * time.Millisecond, DetectMult: 5, Seed: 1}, 1, 0)
	deliver(slow, fast, at(1))
	deliver(fast, slow, at(2))

	// The fast side must slow to the slow side's 4ms RequiredMinRx.
	if got := fast.TxInterval(); got != 4*time.Millisecond {
		t.Fatalf("fast tx interval = %v, want 4ms", got)
	}
	// The slow side keeps its own 4ms floor.
	if got := slow.TxInterval(); got != 4*time.Millisecond {
		t.Fatalf("slow tx interval = %v, want 4ms", got)
	}
	// Fast expects packets no slower than the slow side's 4ms DesiredMinTx:
	// detection = 3 × 4ms.
	if got := fast.DetectionTime(); got != 12*time.Millisecond {
		t.Fatalf("fast detection time = %v, want 12ms", got)
	}
	// Slow's detection = 5 × max(4ms, 1ms) = 20ms.
	if got := slow.DetectionTime(); got != 20*time.Millisecond {
		t.Fatalf("slow detection time = %v, want 20ms", got)
	}
}

// TestJitterBounds: every transmit delay falls in [75%, 100%] of the
// negotiated interval (RFC 5880 §6.8.7), and the stream is deterministic
// per seed.
func TestJitterBounds(t *testing.T) {
	mk := func(seed int64) *Session { return NewSession(Config{Seed: seed}, 0, 1) }
	a, b := mk(7), mk(7)
	iv := a.TxInterval()
	var prev time.Duration
	varied := false
	for i := 0; i < 200; i++ {
		// Hold the session Up so backoff stays out of the picture.
		a.state, b.state = Up, Up
		da, db := a.NextTxDelay(), b.NextTxDelay()
		if da != db {
			t.Fatalf("draw %d: same seed diverged (%v vs %v)", i, da, db)
		}
		if da < time.Duration(float64(iv)*0.7499) || da > iv {
			t.Fatalf("draw %d: delay %v outside [0.75, 1] × %v", i, da, iv)
		}
		if i > 0 && da != prev {
			varied = true
		}
		prev = da
	}
	if !varied {
		t.Fatal("jitter produced a constant delay")
	}
	if c := mk(8).NextTxDelay(); c == prev {
		t.Fatal("different seeds produced identical first draws")
	}
}

// TestDownBackoff: while a session is down, successive transmissions
// stretch the interval geometrically up to DownBackoffMax; recovery
// snaps it back to the base interval.
func TestDownBackoff(t *testing.T) {
	cfg := Config{DesiredMinTx: time.Millisecond, DownBackoffMax: 8 * time.Millisecond, JitterFrac: 1e-9, Seed: 1}
	s := NewSession(cfg, 0, 1)
	var delays []time.Duration
	for i := 0; i < 6; i++ {
		s.BuildTx(at(int64(i)))
		delays = append(delays, s.NextTxDelay())
	}
	// downStreak is 1..6 → 2ms, 4ms, 8ms, capped thereafter.
	approx := func(d, want time.Duration) bool {
		return d > want-want/100 && d <= want
	}
	if !approx(delays[0], 2*time.Millisecond) || !approx(delays[1], 4*time.Millisecond) ||
		!approx(delays[2], 8*time.Millisecond) || !approx(delays[5], 8*time.Millisecond) {
		t.Fatalf("backoff sequence wrong: %v", delays)
	}
	// Handshake back up: delay returns to the base interval.
	p := NewSession(cfg, 1, 0)
	deliver(s, p, at(10)) // p: Down → Init
	deliver(p, s, at(11)) // s: Down + Init → Up
	if s.State() != Up {
		t.Fatalf("state after recovery: %v", s.State())
	}
	if d := s.NextTxDelay(); !approx(d, time.Millisecond) {
		t.Fatalf("post-recovery delay %v, want ~1ms", d)
	}
}

// TestRTTSampling: the echo fields yield RTT = now − sendTime − hold.
func TestRTTSampling(t *testing.T) {
	a := NewSession(Config{Seed: 1}, 0, 1)
	b := NewSession(Config{Seed: 1}, 1, 0)

	// A sends at t=1ms; B receives it at t=1ms (wire time folded into
	// hold here) and replies at t=3ms having held 2ms.
	pa := a.BuildTx(at(1))
	b.OnRx(pa, at(1))
	pb := b.BuildTx(at(3))
	r := a.OnRx(pb, at(3))
	if !r.HasRTT {
		t.Fatal("no RTT sample from echoed packet")
	}
	// now(3ms) − sent(1ms) − hold(2ms) = 0.
	if r.RTT != 0 {
		t.Fatalf("RTT = %v, want 0", r.RTT)
	}

	// With 100µs of wire each way: A sends t=5ms, B hears t=5.1ms,
	// replies t=5.2ms (hold 100µs), A hears t=5.3ms → RTT 200µs.
	pa = a.BuildTx(at5(5000))
	b.OnRx(pa, at5(5100))
	pb = b.BuildTx(at5(5200))
	r = a.OnRx(pb, at5(5300))
	if !r.HasRTT || r.RTT != 200*time.Microsecond {
		t.Fatalf("RTT = %v (has=%v), want 200µs", r.RTT, r.HasRTT)
	}
}

func at5(us int64) sim.Time { return sim.Time(0).Add(time.Duration(us) * time.Microsecond) }

// TestDiscriminatorMismatch: a packet addressed to a stale discriminator
// (pre-restart session) must be ignored entirely.
func TestDiscriminatorMismatch(t *testing.T) {
	a := NewSession(Config{Seed: 1}, 0, 1)
	b := NewSession(Config{Seed: 1}, 1, 0)
	deliver(a, b, at(1))
	p := b.BuildTx(at(2))
	p.YourDisc = 12345 // not A's discriminator
	if r := a.OnRx(p, at(2)); r.StateChanged || a.State() != Down {
		t.Fatalf("mismatched discriminator accepted: %v", a.State())
	}
}
