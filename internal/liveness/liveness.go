// Package liveness implements BFD-style per-path liveness sessions for
// the simulated NIC firmware (RFC 5880 semantics): a three-way handshake
// (Down/Init/Up), negotiated transmit/receive intervals with a detection
// multiplier, adaptive interval backoff while a session is down, and
// deterministic seeded jitter on control-packet scheduling so sessions
// never synchronize into control storms.
//
// The paper detects failures with two fixed timers — the 62.5 ms deadlock
// watchdog and the retransmission timer's permanent-failure threshold —
// so detection latency is a constant, not a function of the network. A
// liveness session turns detection into a per-path property: a dead path
// is declared Down after detect-multiplier × negotiated-interval of
// control silence, typically an order of magnitude before the fixed
// thresholds fire, and the session-down event feeds the same remap /
// quarantine recovery path.
//
// As a side effect of the periodic exchange, each side measures path
// round-trip time NTP-style: every control packet echoes the newest
// sequence number heard from the peer plus the local hold time, so
// RTT = now − sendTime(echoed seq) − hold, with no clock exchange. Those
// samples drive the SRTT/RTTVAR adaptive retransmission timeout in
// internal/retrans when enabled.
//
// Like internal/retrans, this package is pure protocol state: it takes
// the current time as an argument and returns decisions; the NIC model
// (internal/nic) binds sessions to timers, the wire, and the recovery
// upcalls. Every random draw comes from a session-local seeded generator,
// so enabling liveness never perturbs any other subsystem's stream.
package liveness

import (
	"fmt"
	"math/rand"
	"time"

	"sanft/internal/proto"
	"sanft/internal/sim"
	"sanft/internal/topology"
)

// State is the BFD session state (RFC 5880 §6.2; AdminDown is not
// modeled — a simulated NIC is never administratively disabled).
type State uint8

const (
	// Down: no recent control packet from the peer (or detection fired).
	Down State = iota
	// Init: we hear the peer, but it does not yet hear us.
	Init
	// Up: both directions confirmed — the three-way handshake completed.
	Up
)

var stateNames = [...]string{"down", "init", "up"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "unknown"
}

// Config holds per-session timer terms. The zero value takes defaults.
type Config struct {
	// DesiredMinTx is the interval this side would like to transmit
	// control packets at (RFC 5880 DesiredMinTxInterval). Default 1ms.
	DesiredMinTx time.Duration
	// RequiredMinRx is the slowest incoming rate this side can support
	// (RFC 5880 RequiredMinRxInterval). The peer transmits no faster
	// than this. Default = DesiredMinTx.
	RequiredMinRx time.Duration
	// DetectMult is the detection multiplier: the session drops to Down
	// after DetectMult negotiated intervals of control silence. Default 3.
	DetectMult int
	// DownBackoffMax caps the adaptive transmit backoff while a session
	// is down: each unanswered transmission doubles the interval up to
	// this bound (RFC 5880 §6.8.3 slow-tx, made geometric). Default
	// 8 × DesiredMinTx.
	DownBackoffMax time.Duration
	// JitterFrac scatters each transmit interval uniformly over
	// [1−JitterFrac, 1] × interval (RFC 5880 §6.8.7 mandates 75–100%
	// for DetectMult > 1). Default 0.25.
	JitterFrac float64
	// Seed drives the per-session jitter stream.
	Seed int64
}

// Defaults fills zero fields.
func (c Config) Defaults() Config {
	if c.DesiredMinTx == 0 {
		c.DesiredMinTx = time.Millisecond
	}
	if c.RequiredMinRx == 0 {
		c.RequiredMinRx = c.DesiredMinTx
	}
	if c.DetectMult == 0 {
		c.DetectMult = 3
	}
	if c.DownBackoffMax == 0 {
		c.DownBackoffMax = 8 * c.DesiredMinTx
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = 0.25
	}
	return c
}

// sentRing remembers the send times of the last few control packets so an
// echoed sequence number can be matched to its transmission instant.
const sentRing = 8

// RxResult reports what one received control packet did to the session.
type RxResult struct {
	// Old and New are the states before and after the packet;
	// StateChanged is New != Old.
	Old, New     State
	StateChanged bool
	// RTT is a fresh path round-trip sample (valid only with HasRTT):
	// now − sendTime(echoed seq) − peer hold time.
	RTT    time.Duration
	HasRTT bool
}

// Session is one directed liveness session toward a peer. All methods
// take the current simulated time; the caller owns scheduling.
type Session struct {
	cfg  Config
	self topology.NodeID
	peer topology.NodeID
	rng  *rand.Rand

	state State
	disc  uint32 // our discriminator
	rdisc uint32 // peer's discriminator (0 until heard)

	// Peer timer terms, from its latest control packet.
	remoteMinTx  time.Duration
	remoteMinRx  time.Duration
	remoteDetect int

	seq       uint64             // our control-packet sequence counter
	sentAt    [sentRing]sim.Time // send times, indexed by seq % sentRing
	lastRxSeq uint64             // newest peer seq heard (echo source)
	lastRxAt  sim.Time           // when we heard it (hold-time base)
	haveRx    bool

	downStreak int // consecutive transmissions while not Up (backoff)

	// Transitions counts state changes (diagnostics).
	Transitions int
}

// NewSession creates a session from self toward peer. The discriminator
// is derived deterministically from the endpoints — unique per ordered
// pair, stable across runs.
func NewSession(cfg Config, self, peer topology.NodeID) *Session {
	cfg = cfg.Defaults()
	if cfg.DetectMult < 1 {
		panic(fmt.Sprintf("liveness: detect multiplier %d < 1", cfg.DetectMult))
	}
	return &Session{
		cfg:   cfg,
		self:  self,
		peer:  peer,
		rng:   rand.New(rand.NewSource(cfg.Seed ^ (int64(self)<<20 | int64(peer)<<2 | 1))),
		state: Down,
		disc:  uint32(self)<<16 | uint32(peer) + 1,
	}
}

// State returns the current session state.
func (s *Session) State() State { return s.state }

// Peer returns the remote endpoint.
func (s *Session) Peer() topology.NodeID { return s.peer }

// Config returns the session's (defaulted) configuration.
func (s *Session) Config() Config { return s.cfg }

// TxInterval returns the negotiated steady-state transmit interval: we
// must not send faster than the peer can receive (RFC 5880 §6.8.2:
// max(local DesiredMinTx, remote RequiredMinRx)).
func (s *Session) TxInterval() time.Duration {
	iv := s.cfg.DesiredMinTx
	if s.remoteMinRx > iv {
		iv = s.remoteMinRx
	}
	return iv
}

// DetectionTime returns how much control silence drops the session: the
// peer's detect multiplier... as seen from our side it is our multiplier
// applied to the slower of what we require and what the peer can offer
// (RFC 5880 §6.8.4: DetectMult × max(RequiredMinRx, remote DesiredMinTx)).
func (s *Session) DetectionTime() time.Duration {
	iv := s.cfg.RequiredMinRx
	if s.remoteMinTx > iv {
		iv = s.remoteMinTx
	}
	return time.Duration(s.cfg.DetectMult) * iv
}

// NextTxDelay returns the jittered delay until the next control packet
// should be sent: the negotiated interval, doubled per unanswered
// transmission while the session is not Up (capped at DownBackoffMax),
// scattered over [1−JitterFrac, 1].
func (s *Session) NextTxDelay() time.Duration {
	iv := s.TxInterval()
	if s.state != Up {
		for i := 0; i < s.downStreak && iv < s.cfg.DownBackoffMax; i++ {
			iv *= 2
		}
		if iv > s.cfg.DownBackoffMax {
			iv = s.cfg.DownBackoffMax
		}
	}
	f := 1 - s.cfg.JitterFrac*s.rng.Float64()
	return time.Duration(float64(iv) * f)
}

// BuildTx assembles the control packet to transmit now and records its
// send time for RTT echoing.
func (s *Session) BuildTx(now sim.Time) *proto.LivenessPayload {
	s.seq++
	s.sentAt[s.seq%sentRing] = now
	if s.state != Up {
		s.downStreak++
	}
	p := &proto.LivenessPayload{
		State:           uint8(s.state),
		MyDisc:          s.disc,
		YourDisc:        s.rdisc,
		DesiredMinTxNs:  int64(s.cfg.DesiredMinTx),
		RequiredMinRxNs: int64(s.cfg.RequiredMinRx),
		DetectMult:      uint8(s.cfg.DetectMult),
		Seq:             s.seq,
	}
	if s.haveRx {
		p.YourSeq = s.lastRxSeq
		p.HoldNs = int64(now.Sub(s.lastRxAt))
	}
	return p
}

// OnRx processes one control packet from the peer and applies the RFC
// 5880 §6.8.6 state transitions. The caller must re-arm its detection
// timer for DetectionTime() afterwards (the terms may have changed).
func (s *Session) OnRx(p *proto.LivenessPayload, now sim.Time) RxResult {
	r := RxResult{Old: s.state, New: s.state}
	// Discriminator check: a packet claiming to know us must know us.
	if p.YourDisc != 0 && p.YourDisc != s.disc {
		return r
	}
	s.rdisc = p.MyDisc
	s.remoteMinTx = time.Duration(p.DesiredMinTxNs)
	s.remoteMinRx = time.Duration(p.RequiredMinRxNs)
	s.remoteDetect = int(p.DetectMult)

	// RTT sample from the echo fields, clamped at zero (a stale echo
	// from before our restart could otherwise go negative).
	if p.YourSeq != 0 && p.YourSeq <= s.seq && s.seq-p.YourSeq < sentRing {
		rtt := now.Sub(s.sentAt[p.YourSeq%sentRing]) - time.Duration(p.HoldNs)
		if rtt >= 0 {
			r.RTT, r.HasRTT = rtt, true
		}
	}

	s.lastRxSeq = p.Seq
	s.lastRxAt = now
	s.haveRx = true

	switch s.state {
	case Down:
		switch State(p.State) {
		case Down:
			s.to(Init, &r)
		case Init:
			s.to(Up, &r)
		}
		// Peer says Up while we are Down: ignore; it will see our Down
		// and fall back, restarting the handshake.
	case Init:
		switch State(p.State) {
		case Init, Up:
			s.to(Up, &r)
		}
	case Up:
		if State(p.State) == Down {
			s.to(Down, &r)
		}
	}
	return r
}

// SilenceFor returns how long the peer has been silent: the elapsed time
// since the last control packet was received (zero before any packet).
// When the detection timer fires this is the true detection latency —
// at least DetectionTime(), plus any timer re-arm lag.
func (s *Session) SilenceFor(now sim.Time) time.Duration {
	if !s.haveRx {
		return 0
	}
	return now.Sub(s.lastRxAt)
}

// OnDetectTimeout drops the session to Down after DetectionTime() of
// silence. Returns false if the session was already Down (no transition).
func (s *Session) OnDetectTimeout() bool {
	if s.state == Down {
		return false
	}
	s.state = Down
	s.downStreak = 0
	s.Transitions++
	return true
}

func (s *Session) to(next State, r *RxResult) {
	if s.state == next {
		return
	}
	s.state = next
	s.downStreak = 0
	s.Transitions++
	r.New = next
	r.StateChanged = true
}
