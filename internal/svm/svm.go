// Package svm implements a home-based shared-virtual-memory protocol in
// the style of GeNIMA/HLRC — the substrate the paper's SPLASH-2
// applications run on (§5.1.4, Figure 9).
//
// Model:
//
//   - One shared address space of 4 KB pages, homed round-robin across the
//     cluster's nodes. Each node caches pages; two worker processes per
//     node (SMP) share the cache.
//   - Reads fetch missing pages from their home over VMMC (a page-request
//     control message answered with a page deposit).
//   - Writes go to the local cache and are tracked as dirty byte spans
//     (diffs), so false sharing merges correctly at the home.
//   - Release (unlock, barrier entry) flushes dirty spans to the homes;
//     acquire (lock, barrier exit) invalidates all cached non-home pages.
//     This is a conservative eager-release-consistency variant: correct
//     for data-race-free programs, simple enough for firmware-adjacent
//     layers, and it reproduces the communication structure the paper's
//     execution-time breakdowns measure.
//   - Locks live on home nodes (lock i homes on node i mod N) with FIFO
//     queues; barriers use a centralized manager on node 0.
//
// Each worker accumulates the paper's four execution-time buckets:
// Compute+Handler, Data (page fetches and diff flushes), Lock, Barrier.
package svm

import (
	"fmt"
	"time"

	"sanft/internal/core"
	"sanft/internal/sim"
	"sanft/internal/topology"
	"sanft/internal/vmmc"
)

// PageSize is the SVM page granularity (matches the NIC MTU).
const PageSize = 4096

// Config sizes an SVM system.
type Config struct {
	// HeapBytes is the shared address space size (rounded up to pages).
	HeapBytes int
	// ProcsPerNode is the number of worker processes per node (the
	// paper's nodes are 2-way SMPs).
	ProcsPerNode int
	// NumLocks is the number of lock variables.
	NumLocks int
}

// Breakdown is the Figure 9 execution-time decomposition for one worker.
type Breakdown struct {
	Compute time.Duration // includes handler time, as in the paper
	Data    time.Duration
	Lock    time.Duration
	Barrier time.Duration
}

// Total returns the sum of all buckets.
func (b Breakdown) Total() time.Duration {
	return b.Compute + b.Data + b.Lock + b.Barrier
}

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.Compute += o.Compute
	b.Data += o.Data
	b.Lock += o.Lock
	b.Barrier += o.Barrier
}

// System is one SVM instance spanning a cluster.
type System struct {
	c     *core.Cluster
	cfg   Config
	hosts []topology.NodeID
	nodes []*node
	P     int // total workers

	numPages int
	epoch    int
}

// node is the per-host SVM state: the page cache shared by the node's
// workers, plus its daemon-side home storage.
type node struct {
	sys  *System
	idx  int
	host topology.NodeID
	ep   *vmmc.Endpoint

	cache    []byte // full address-space image; valid[] gates non-home use
	valid    []bool
	dirty    []spanSet // per page
	anyDirty []int     // page indices with dirty spans
	// homeTouched records writes to pages homed on this node: they need
	// no diff message (the cache is the home storage), but they must
	// still appear in release write notices so remote acquirers
	// invalidate their cached copies.
	homeTouched map[int]bool

	// fetching gates concurrent fetches of the same page by node-mates:
	// the first worker fetches, the others wait on the page's gate.
	fetching map[int]*sim.Gate

	daemon *daemon
}

// New builds an SVM system across the given hosts of a cluster. Call
// Start before spawning workers.
func New(c *core.Cluster, hosts []topology.NodeID, cfg Config) *System {
	if cfg.ProcsPerNode < 1 {
		cfg.ProcsPerNode = 1
	}
	if cfg.NumLocks < 1 {
		cfg.NumLocks = 1
	}
	numPages := (cfg.HeapBytes + PageSize - 1) / PageSize
	if numPages < 1 {
		numPages = 1
	}
	s := &System{
		c:        c,
		cfg:      cfg,
		hosts:    hosts,
		P:        len(hosts) * cfg.ProcsPerNode,
		numPages: numPages,
	}
	for i, h := range hosts {
		n := &node{
			sys:         s,
			idx:         i,
			host:        h,
			ep:          c.Endpoint(h),
			cache:       make([]byte, numPages*PageSize),
			valid:       make([]bool, numPages),
			dirty:       make([]spanSet, numPages),
			fetching:    make(map[int]*sim.Gate),
			homeTouched: make(map[int]bool),
		}
		// Home pages are always valid locally.
		for pg := 0; pg < numPages; pg++ {
			if s.homeOf(pg) == i {
				n.valid[pg] = true
			}
		}
		s.nodes = append(s.nodes, n)
	}
	for _, n := range s.nodes {
		n.daemon = newDaemon(n)
	}
	return s
}

// NumPages returns the page count of the shared space.
func (s *System) NumPages() int { return s.numPages }

// Size returns the usable shared space in bytes.
func (s *System) Size() int { return s.numPages * PageSize }

// Workers returns the total worker count P.
func (s *System) Workers() int { return s.P }

// Nodes returns the node count.
func (s *System) Nodes() int { return len(s.hosts) }

// homeOf returns the node index homing page pg (round-robin).
func (s *System) homeOf(pg int) int { return pg % len(s.hosts) }

// Start launches the per-node daemons. Must be called once, before
// workers run.
func (s *System) Start() {
	for _, n := range s.nodes {
		n.daemon.start()
	}
}

// SpawnWorkers starts P worker processes running body. Returns a slice
// that is filled with each worker's breakdown as it finishes; the caller
// should run the cluster until Done reports true.
func (s *System) SpawnWorkers(body func(w *Worker)) *Run {
	run := &Run{sys: s, Breakdowns: make([]Breakdown, s.P)}
	for id := 0; id < s.P; id++ {
		id := id
		n := s.nodes[id/s.cfg.ProcsPerNode]
		s.c.K.Spawn(fmt.Sprintf("svm-w%d", id), func(p *sim.Proc) {
			w := &Worker{p: p, sys: s, node: n, ID: id}
			run.Started = s.c.Now()
			body(w)
			run.Breakdowns[id] = w.Times
			run.finished++
			if run.finished == s.P {
				run.Finished = s.c.Now()
				run.done = true
			}
		})
	}
	return run
}

// Run tracks a worker fleet.
type Run struct {
	sys        *System
	Breakdowns []Breakdown
	Started    sim.Time
	Finished   sim.Time
	finished   int
	done       bool
}

// Done reports whether every worker has returned.
func (r *Run) Done() bool { return r.done }

// Elapsed returns the parallel execution time (first start to last
// finish).
func (r *Run) Elapsed() time.Duration { return r.Finished.Sub(r.Started) }

// MaxBreakdown returns the per-bucket maximum across workers — the
// "critical path" view used for Figure 9-style bars.
func (r *Run) MaxBreakdown() Breakdown {
	var out Breakdown
	for _, b := range r.Breakdowns {
		if b.Compute > out.Compute {
			out.Compute = b.Compute
		}
		if b.Data > out.Data {
			out.Data = b.Data
		}
		if b.Lock > out.Lock {
			out.Lock = b.Lock
		}
		if b.Barrier > out.Barrier {
			out.Barrier = b.Barrier
		}
	}
	return out
}

// MeanBreakdown returns the per-bucket mean across workers.
func (r *Run) MeanBreakdown() Breakdown {
	var sum Breakdown
	for _, b := range r.Breakdowns {
		sum.Add(b)
	}
	n := time.Duration(len(r.Breakdowns))
	if n == 0 {
		return Breakdown{}
	}
	return Breakdown{Compute: sum.Compute / n, Data: sum.Data / n, Lock: sum.Lock / n, Barrier: sum.Barrier / n}
}
