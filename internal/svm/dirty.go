package svm

import "sort"

// span is a half-open dirty byte range within one page.
type span struct {
	off, end int
}

// spanSet tracks dirty byte ranges of one page, coalescing overlaps. The
// zero value is an empty set.
type spanSet struct {
	spans []span
}

// add marks [off, off+n) dirty.
func (s *spanSet) add(off, n int) {
	if n <= 0 {
		return
	}
	ns := span{off, off + n}
	// Insert keeping sorted order, then coalesce.
	i := sort.Search(len(s.spans), func(i int) bool { return s.spans[i].off >= ns.off })
	s.spans = append(s.spans, span{})
	copy(s.spans[i+1:], s.spans[i:])
	s.spans[i] = ns
	s.coalesce()
}

func (s *spanSet) coalesce() {
	out := s.spans[:0]
	for _, sp := range s.spans {
		if len(out) > 0 && sp.off <= out[len(out)-1].end {
			if sp.end > out[len(out)-1].end {
				out[len(out)-1].end = sp.end
			}
			continue
		}
		out = append(out, sp)
	}
	s.spans = out
}

// empty reports whether no bytes are dirty.
func (s *spanSet) empty() bool { return len(s.spans) == 0 }

// bytes returns the total dirty byte count.
func (s *spanSet) bytes() int {
	t := 0
	for _, sp := range s.spans {
		t += sp.end - sp.off
	}
	return t
}

// reset clears the set.
func (s *spanSet) reset() { s.spans = s.spans[:0] }
