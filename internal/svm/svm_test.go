package svm

import (
	"testing"
	"time"

	"sanft/internal/core"
	"sanft/internal/retrans"
	"sanft/internal/topology"
)

func testSystem(t *testing.T, nNodes, ppn int, errRate float64, heap int) (*core.Cluster, *System) {
	t.Helper()
	nw, hosts := topology.Star(nNodes)
	c := core.New(core.Config{
		Net:       nw,
		Hosts:     hosts,
		FT:        true,
		Retrans:   retrans.Config{QueueSize: 32, Interval: time.Millisecond},
		ErrorRate: errRate,
		Seed:      1,
	})
	s := New(c, hosts, Config{HeapBytes: heap, ProcsPerNode: ppn, NumLocks: 16})
	s.Start()
	return c, s
}

func runWorkers(t *testing.T, c *core.Cluster, s *System, bound time.Duration, body func(w *Worker)) *Run {
	t.Helper()
	run := s.SpawnWorkers(body)
	c.RunFor(bound)
	c.Stop()
	if !run.Done() {
		t.Fatal("workers did not finish within the time bound")
	}
	return run
}

func TestSpanSet(t *testing.T) {
	var s spanSet
	s.add(10, 5)
	s.add(20, 5)
	if len(s.spans) != 2 || s.bytes() != 10 {
		t.Fatalf("spans = %+v", s.spans)
	}
	s.add(12, 10) // bridges the two
	if len(s.spans) != 1 || s.spans[0] != (span{10, 25}) {
		t.Fatalf("coalesce failed: %+v", s.spans)
	}
	s.add(0, 5)
	if len(s.spans) != 2 {
		t.Fatalf("disjoint prefix: %+v", s.spans)
	}
	s.reset()
	if !s.empty() {
		t.Fatal("reset not empty")
	}
}

func TestBarrierSharing(t *testing.T) {
	// Worker i writes a value; after a barrier, worker (i+1) mod P reads
	// its neighbour's value.
	c, s := testSystem(t, 4, 2, 0, 1<<20)
	P := s.Workers()
	errs := make([]string, P)
	runWorkers(t, c, s, 10*time.Second, func(w *Worker) {
		off := w.ID * PageSize // one page each, distinct homes
		w.SetFloat64(off, float64(100+w.ID))
		w.Barrier()
		nb := (w.ID + 1) % P
		got := w.Float64(nb * PageSize)
		if got != float64(100+nb) {
			errs[w.ID] = "stale read"
		}
		w.Barrier()
	})
	for i, e := range errs {
		if e != "" {
			t.Fatalf("worker %d: %s", i, e)
		}
	}
}

func TestFalseSharingMergesAtHome(t *testing.T) {
	// All workers write disjoint slices of the SAME page; after the
	// barrier everyone sees every write (diff spans, not whole pages).
	c, s := testSystem(t, 4, 2, 0, 1<<20)
	P := s.Workers()
	var bad bool
	runWorkers(t, c, s, 10*time.Second, func(w *Worker) {
		w.SetUint32(w.ID*4, uint32(w.ID+1))
		w.Barrier()
		for j := 0; j < P; j++ {
			if w.Uint32(j*4) != uint32(j+1) {
				bad = true
			}
		}
		w.Barrier()
	})
	if bad {
		t.Fatal("false-sharing writes lost (diffs not merged)")
	}
}

func TestLockMutualExclusionAndVisibility(t *testing.T) {
	// Classic lock-protected counter: P workers × K increments each.
	c, s := testSystem(t, 4, 2, 0, 1<<20)
	P := s.Workers()
	const K = 20
	runWorkers(t, c, s, 30*time.Second, func(w *Worker) {
		for i := 0; i < K; i++ {
			w.Lock(3)
			v := w.Uint32(0)
			w.SetUint32(0, v+1)
			w.Unlock(3)
		}
		w.Barrier()
		if got := w.Uint32(0); got != uint32(P*K) {
			panic("lost update")
		}
		w.Barrier()
	})
}

func TestLockContentionFIFOProgress(t *testing.T) {
	// Heavy contention on one remote lock still makes progress and
	// accumulates Lock time.
	c, s := testSystem(t, 2, 2, 0, 1<<18)
	run := runWorkers(t, c, s, 30*time.Second, func(w *Worker) {
		for i := 0; i < 10; i++ {
			w.Lock(1) // homed on node 1
			w.Compute(50 * time.Microsecond)
			w.Unlock(1)
		}
	})
	lockTime := time.Duration(0)
	for _, b := range run.Breakdowns {
		lockTime += b.Lock
	}
	if lockTime == 0 {
		t.Fatal("no lock time recorded under contention")
	}
}

func TestBreakdownAccounting(t *testing.T) {
	c, s := testSystem(t, 2, 1, 0, 1<<20)
	run := runWorkers(t, c, s, 10*time.Second, func(w *Worker) {
		w.Compute(time.Millisecond)
		if w.ID == 0 {
			// Touch a remote-homed page: page 1 homes on node 1.
			w.SetFloat64(1*PageSize, 42)
		}
		w.Barrier()
		if w.ID == 1 {
			_ = w.Float64(0) // page 0 homes on node 0: remote for w1
		}
		w.Barrier()
	})
	b0 := run.Breakdowns[0]
	if b0.Compute < time.Millisecond {
		t.Fatalf("compute %v < 1ms", b0.Compute)
	}
	if b0.Data == 0 {
		t.Fatal("worker 0 should have Data time (diff flush of remote page)")
	}
	if run.Breakdowns[1].Data == 0 {
		t.Fatal("worker 1 should have Data time (remote page fetch)")
	}
	if b0.Barrier == 0 {
		t.Fatal("no barrier time recorded")
	}
	if run.Elapsed() <= 0 {
		t.Fatal("elapsed not positive")
	}
}

func TestSVMSurvivesTransientErrors(t *testing.T) {
	// The whole SVM protocol stack must be oblivious to a 1e-2 error
	// rate (every ~100th packet silently dropped at the send side).
	c, s := testSystem(t, 4, 2, 1e-2, 1<<20)
	P := s.Workers()
	var bad bool
	runWorkers(t, c, s, 2*time.Minute, func(w *Worker) {
		for round := 0; round < 5; round++ {
			w.SetUint32((w.ID*16+round)*4, uint32(w.ID*100+round))
			w.Barrier()
			for j := 0; j < P; j++ {
				if w.Uint32((j*16+round)*4) != uint32(j*100+round) {
					bad = true
				}
			}
			w.Barrier()
		}
	})
	if bad {
		t.Fatal("data corruption under transient errors")
	}
}

func TestWorkerPanicsOnOutOfRange(t *testing.T) {
	c, s := testSystem(t, 2, 1, 0, PageSize)
	panicked := false
	run := s.SpawnWorkers(func(w *Worker) {
		if w.ID == 0 {
			defer func() {
				if recover() != nil {
					panicked = true
				}
			}()
			w.Read(s.Size(), 8)
		}
	})
	c.RunFor(time.Second)
	c.Stop()
	_ = run
	if !panicked {
		t.Fatal("out-of-range access did not panic")
	}
}

func TestSharedCacheWithinNode(t *testing.T) {
	// Two workers on the same node share the cache: a fetch by one
	// makes the page valid for the other without extra traffic.
	c, s := testSystem(t, 2, 2, 0, 1<<18)
	var fetches [4]time.Duration
	runWorkers(t, c, s, 10*time.Second, func(w *Worker) {
		w.Barrier()
		if w.node.idx == 0 {
			if w.ID == 1 {
				// Access strictly after the node-mate's fetch finished.
				w.p.Sleep(time.Millisecond)
			}
			t0 := w.p.Now()
			_ = w.Float64(1 * PageSize) // page 1 homes on node 1
			fetches[w.ID] = w.p.Now().Sub(t0)
		}
		w.Barrier()
	})
	if fetches[0] == 0 {
		t.Fatal("worker 0 did not pay a fetch")
	}
	if fetches[1] != 0 {
		t.Fatalf("worker 1 paid %v despite the node-shared cache", fetches[1])
	}
}

func TestConcurrentFetchCoalesced(t *testing.T) {
	// Node-mates touching the same missing page at the same instant issue
	// exactly one page request; the second rides the first's fetch.
	c, s := testSystem(t, 2, 2, 0, 1<<18)
	runWorkers(t, c, s, 10*time.Second, func(w *Worker) {
		w.Barrier()
		if w.node.idx == 0 {
			_ = w.Float64(1 * PageSize)
		}
		w.Barrier()
	})
	// Data frames node0→node1: 4 barrier-release replies (2 barriers ×
	// 2 remote workers) + exactly 1 page request. A duplicate fetch
	// would make it 6.
	accepted := c.NICAt(1).Counters().Get("pkts-accepted")
	if accepted != 5 {
		t.Fatalf("node1 accepted %d data frames, want 5 (4 barrier replies + 1 coalesced page request)", accepted)
	}
}

func TestNoticeOverflowFallsBackToWildcard(t *testing.T) {
	// A critical section that dirties more pages than a notice message
	// can carry must degrade to wildcard invalidation — correct, just
	// conservative. maxNotices = (512-16)/4 = 124 pages.
	c, s := testSystem(t, 2, 1, 0, (maxNotices+40)*PageSize)
	var bad bool
	runWorkers(t, c, s, 2*time.Minute, func(w *Worker) {
		if w.ID == 0 {
			w.Lock(0)
			// Dirty more pages than a notice list can carry.
			for pg := 0; pg < maxNotices+20; pg++ {
				w.SetUint32(pg*PageSize, uint32(pg+1))
			}
			w.Unlock(0)
		}
		w.Barrier()
		if w.ID == 1 {
			w.Lock(0)
			for pg := 0; pg < maxNotices+20; pg++ {
				if w.Uint32(pg*PageSize) != uint32(pg+1) {
					bad = true
					break
				}
			}
			w.Unlock(0)
		}
		w.Barrier()
	})
	if bad {
		t.Fatal("writes lost across a notice-overflow critical section")
	}
}
