package svm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"sanft/internal/sim"
	"sanft/internal/vmmc"
)

func bitsToF(u uint64) float64 { return math.Float64frombits(u) }
func fToBits(f float64) uint64 { return math.Float64bits(f) }

// Worker is one application process's view of the shared space. Workers
// on the same node share its page cache; each worker tracks its own time
// breakdown. A Worker is bound to its sim.Proc and must only be used from
// that process.
type Worker struct {
	p    *sim.Proc
	sys  *System
	node *node
	ID   int

	Times Breakdown

	replyExp *vmmc.Export
	pageExp  *vmmc.Export
	ctlImps  map[int]*vmmc.Import // per home-node control imports
	diffImps map[int]*vmmc.Import

	localGate sim.Gate // for locally granted locks/barriers
	granted   bool
}

// Proc returns the worker's simulated process.
func (w *Worker) Proc() *sim.Proc { return w.p }

func (w *Worker) lazyInit() {
	if w.replyExp != nil {
		return
	}
	w.replyExp = w.node.ep.Export(fmt.Sprintf("svm-reply-%d", w.ID), ctlSlot)
	w.pageExp = w.node.ep.Export(fmt.Sprintf("svm-page-%d", w.ID), PageSize)
	w.ctlImps = make(map[int]*vmmc.Import)
	w.diffImps = make(map[int]*vmmc.Import)
}

func (w *Worker) ctlImp(home int) *vmmc.Import {
	imp := w.ctlImps[home]
	if imp == nil {
		var err error
		imp, err = w.node.ep.Import(w.sys.nodes[home].host, "svm-ctl")
		if err != nil {
			panic(err)
		}
		w.ctlImps[home] = imp
	}
	return imp
}

func (w *Worker) diffImp(home int) *vmmc.Import {
	imp := w.diffImps[home]
	if imp == nil {
		var err error
		imp, err = w.node.ep.Import(w.sys.nodes[home].host, "svm-diff")
		if err != nil {
			panic(err)
		}
		w.diffImps[home] = imp
	}
	return imp
}

// request sends a control request to a remote home daemon and waits for
// the reply, returning any page-notice list the reply carries (lock
// grants). extra, when non-nil, is a page-ID list attached to the request
// (unlock write notices).
func (w *Worker) request(home int, op byte, arg int, extra []uint32) []uint32 {
	w.lazyInit()
	buf := make([]byte, 16+len(extra)*4)
	buf[0] = op
	binary.LittleEndian.PutUint32(buf[4:], uint32(arg))
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(extra)))
	for i, pg := range extra {
		binary.LittleEndian.PutUint32(buf[16+i*4:], pg)
	}
	w.ctlImp(home).Send(w.p, w.ID*ctlSlot, buf, true)
	w.replyExp.WaitNotification(w.p)
	rep := w.replyExp.Mem
	nn := int(binary.LittleEndian.Uint32(rep[8:]))
	if nn == 0 {
		return nil
	}
	out := make([]uint32, nn)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(rep[16+i*4:])
	}
	return out
}

// waitLocal blocks until a locally queued grant fires.
func (w *Worker) waitLocal() {
	for !w.granted {
		w.localGate.Wait(w.p)
	}
	w.granted = false
}

func (w *Worker) grantLocal() {
	w.granted = true
	w.localGate.Signal()
}

// Compute models computation: it advances the worker's virtual time by d
// and charges the Compute bucket. Real data manipulation by the caller is
// free (host CPUs are not the simulated bottleneck; their cost is what d
// encodes).
func (w *Worker) Compute(d time.Duration) {
	w.p.Sleep(d)
	w.Times.Compute += d
}

// ---------------------------------------------------------------------------
// Shared-memory access
// ---------------------------------------------------------------------------

// ensureValid fetches any invalid pages covering [off, off+n).
func (w *Worker) ensureValid(off, n int) {
	if n <= 0 {
		return
	}
	if off < 0 || off+n > w.sys.Size() {
		panic(fmt.Sprintf("svm: access [%d,%d) outside %d-byte space", off, off+n, w.sys.Size()))
	}
	first, last := off/PageSize, (off+n-1)/PageSize
	for pg := first; pg <= last; pg++ {
		if w.node.valid[pg] {
			continue
		}
		t0 := w.p.Now()
		w.fetchPage(pg)
		w.Times.Data += w.p.Now().Sub(t0)
	}
}

// fetchPage pulls page pg from its home into the node cache. Node-mates
// requesting the same page wait for the first fetch instead of issuing
// their own.
func (w *Worker) fetchPage(pg int) {
	w.lazyInit()
	home := w.sys.homeOf(pg)
	if home == w.node.idx {
		w.node.valid[pg] = true
		return
	}
	for {
		g, inProgress := w.node.fetching[pg]
		if !inProgress {
			break
		}
		g.Wait(w.p)
		if w.node.valid[pg] {
			return
		}
	}
	// Another worker on this node may have fetched it while we slept.
	if w.node.valid[pg] {
		return
	}
	gate := &sim.Gate{}
	w.node.fetching[pg] = gate
	defer func() {
		delete(w.node.fetching, pg)
		gate.Broadcast()
	}()
	buf := make([]byte, 8)
	buf[0] = opPageReq
	binary.LittleEndian.PutUint32(buf[4:], uint32(pg))
	w.ctlImp(home).Send(w.p, w.ID*ctlSlot, buf, true)
	w.pageExp.WaitNotification(w.p)
	// Deposit arrived into our page buffer; install it unless a dirty
	// local span must survive (merge: keep dirty bytes, take remote for
	// the rest).
	base := pg * PageSize
	if w.node.dirty[pg].empty() {
		copy(w.node.cache[base:base+PageSize], w.pageExp.Mem)
	} else {
		tmp := make([]byte, PageSize)
		copy(tmp, w.pageExp.Mem)
		for _, sp := range w.node.dirty[pg].spans {
			copy(tmp[sp.off:sp.end], w.node.cache[base+sp.off:base+sp.end])
		}
		copy(w.node.cache[base:base+PageSize], tmp)
	}
	w.node.valid[pg] = true
}

// Read returns a copy of n shared bytes at off, fetching pages as needed.
func (w *Worker) Read(off, n int) []byte {
	w.ensureValid(off, n)
	out := make([]byte, n)
	copy(out, w.node.cache[off:off+n])
	return out
}

// View returns a read-only view of the shared bytes (no copy). The view
// is invalidated by the next synchronization operation.
func (w *Worker) View(off, n int) []byte {
	w.ensureValid(off, n)
	return w.node.cache[off : off+n]
}

// Write stores data at off and records the dirty spans for the next
// release.
func (w *Worker) Write(off int, data []byte) {
	n := len(data)
	if n == 0 {
		return
	}
	w.ensureValid(off, n)
	copy(w.node.cache[off:off+n], data)
	for pg := off / PageSize; pg <= (off+n-1)/PageSize; pg++ {
		base := pg * PageSize
		s := maxi(off, base)
		e := mini(off+n, base+PageSize)
		if w.sys.homeOf(pg) == w.node.idx {
			// Home writes are immediately authoritative (no diff), but
			// must still be advertised in release write notices.
			w.node.homeTouched[pg] = true
			continue
		}
		if w.node.dirty[pg].empty() {
			w.node.anyDirty = append(w.node.anyDirty, pg)
		}
		w.node.dirty[pg].add(s-base, e-s)
	}
}

// Float64 reads one shared float64.
func (w *Worker) Float64(off int) float64 {
	b := w.View(off, 8)
	return bitsToF(binary.LittleEndian.Uint64(b))
}

// SetFloat64 writes one shared float64.
func (w *Worker) SetFloat64(off int, v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], fToBits(v))
	w.Write(off, b[:])
}

// Uint32 reads one shared uint32.
func (w *Worker) Uint32(off int) uint32 {
	return binary.LittleEndian.Uint32(w.View(off, 4))
}

// SetUint32 writes one shared uint32.
func (w *Worker) SetUint32(off int, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(off, b[:])
}

// ReadFloat64s decodes n shared float64s starting at off.
func (w *Worker) ReadFloat64s(off, n int) []float64 {
	b := w.View(off, n*8)
	out := make([]float64, n)
	for i := range out {
		out[i] = bitsToF(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// WriteFloat64s encodes vs into shared memory at off.
func (w *Worker) WriteFloat64s(off int, vs []float64) {
	b := make([]byte, len(vs)*8)
	for i, v := range vs {
		binary.LittleEndian.PutUint64(b[i*8:], fToBits(v))
	}
	w.Write(off, b)
}

// ---------------------------------------------------------------------------
// Synchronization
// ---------------------------------------------------------------------------

// flushDiffs pushes every dirty span to its home (release action) and
// clears dirty state. Charged to the Data bucket. Returns the flushed
// page IDs — the write notices a release publishes.
func (w *Worker) flushDiffs() []uint32 {
	var flushed []uint32
	if len(w.node.homeTouched) > 0 {
		for pg := range w.node.homeTouched {
			flushed = append(flushed, uint32(pg))
		}
		sort.Slice(flushed, func(i, j int) bool { return flushed[i] < flushed[j] })
		w.node.homeTouched = make(map[int]bool)
	}
	if len(w.node.anyDirty) == 0 {
		return flushed
	}
	w.lazyInit()
	t0 := w.p.Now()
	pages := w.node.anyDirty
	w.node.anyDirty = nil
	for _, pg := range pages {
		ds := &w.node.dirty[pg]
		if ds.empty() {
			continue
		}
		home := w.sys.homeOf(pg)
		base := pg * PageSize
		flushed = append(flushed, uint32(pg))
		if home == w.node.idx {
			ds.reset()
			continue
		}
		msg := encodeDiff(pg, ds, w.node.cache[base:base+PageSize])
		ds.reset()
		w.diffImp(home).Send(w.p, w.ID*diffSlot, msg, true)
		w.replyExp.WaitNotification(w.p) // diff ack
	}
	w.Times.Data += w.p.Now().Sub(t0)
	return flushed
}

// encodeDiff serializes a page's dirty spans (whole page if too many).
func encodeDiff(pg int, ds *spanSet, page []byte) []byte {
	if len(ds.spans) > maxSpans {
		msg := make([]byte, 8+PageSize)
		binary.LittleEndian.PutUint32(msg[0:], uint32(pg))
		binary.LittleEndian.PutUint32(msg[4:], 0)
		copy(msg[8:], page)
		return msg
	}
	total := ds.bytes()
	msg := make([]byte, 8+len(ds.spans)*4+total)
	binary.LittleEndian.PutUint32(msg[0:], uint32(pg))
	binary.LittleEndian.PutUint32(msg[4:], uint32(len(ds.spans)))
	off := 8
	dataOff := 8 + len(ds.spans)*4
	for _, sp := range ds.spans {
		binary.LittleEndian.PutUint16(msg[off:], uint16(sp.off))
		binary.LittleEndian.PutUint16(msg[off+2:], uint16(sp.end-sp.off))
		copy(msg[dataOff:], page[sp.off:sp.end])
		off += 4
		dataOff += sp.end - sp.off
	}
	return msg
}

// invalidate drops every cached non-home page (barrier acquire).
func (w *Worker) invalidate() {
	for pg := 0; pg < w.sys.numPages; pg++ {
		if w.sys.homeOf(pg) != w.node.idx {
			w.node.valid[pg] = false
		}
	}
}

// invalidateNotices drops only the pages named by a lock grant's write
// notices (wildcard falls back to a full invalidation).
func (w *Worker) invalidateNotices(pages []uint32) {
	for _, pg := range pages {
		if pg == noticeWildcard {
			w.invalidate()
			return
		}
		if int(pg) < w.sys.numPages && w.sys.homeOf(int(pg)) != w.node.idx {
			w.node.valid[pg] = false
		}
	}
}

// Lock acquires global lock id (FIFO at its home node). Entering the
// critical section invalidates the pages named by the lock's accumulated
// write notices (GeNIMA-style), so the holder sees the previous holders'
// writes without discarding its whole cache.
func (w *Worker) Lock(id int) {
	home := id % w.sys.Nodes()
	w.flushDiffs()
	t0 := w.p.Now()
	var notices []uint32
	if home == w.node.idx {
		w.node.daemon.lockRequest(id, w.grantLocal)
		w.waitLocal()
		notices = w.node.daemon.noticesFor(id)
	} else {
		notices = w.request(home, opLock, id, nil)
	}
	w.Times.Lock += w.p.Now().Sub(t0)
	w.invalidateNotices(notices)
}

// Unlock releases global lock id after flushing the critical section's
// writes to their homes; the flushed page list becomes the lock's write
// notices for subsequent acquirers.
func (w *Worker) Unlock(id int) {
	home := id % w.sys.Nodes()
	flushed := w.flushDiffs()
	if len(flushed) > maxNotices {
		flushed = []uint32{noticeWildcard}
	}
	t0 := w.p.Now()
	if home == w.node.idx {
		w.node.daemon.addNotices(id, flushed)
		w.node.daemon.unlockRequest(id)
	} else {
		w.request(home, opUnlock, id, flushed)
	}
	w.Times.Lock += w.p.Now().Sub(t0)
}

// Barrier synchronizes all P workers: flush, arrive at the manager,
// wait for release, invalidate.
func (w *Worker) Barrier() {
	w.flushDiffs()
	t0 := w.p.Now()
	mgr := w.sys.nodes[0].daemon
	if w.node.idx == 0 {
		mgr.barrierArrive(w.grantLocal)
		w.waitLocal()
	} else {
		w.request(0, opBarrier, w.sys.epoch, nil)
	}
	w.Times.Barrier += w.p.Now().Sub(t0)
	w.invalidate()
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}
