package svm

import (
	"encoding/binary"
	"fmt"
	"sort"

	"sanft/internal/sim"
	"sanft/internal/vmmc"
)

// Control-message opcodes (64-byte request slots, one per worker, in each
// node's exported control buffer).
const (
	opPageReq = iota + 1
	opLock
	opUnlock
	opBarrier
)

const (
	ctlSlot  = 512
	diffSlot = PageSize + 1088 // header + up to 256 spans + full page
	maxSpans = 256
	// maxNotices bounds the page-ID lists carried in unlock requests and
	// lock-grant replies; larger sets degrade to a wildcard (invalidate
	// everything), keeping correctness.
	maxNotices = (ctlSlot - 16) / 4
	// noticeWildcard marks an overflowing notice set.
	noticeWildcard = 0xffffffff
)

// daemon is the per-node protocol engine. Local workers call its methods
// directly (SMP shared memory); remote workers reach it through VMMC
// messages serviced by two service processes (control and diff channels).
type daemon struct {
	n   *node
	sys *System

	ctlExp  *vmmc.Export
	diffExp *vmmc.Export

	// Lock state for locks homed here.
	lockHeld  map[int]bool
	lockQueue map[int][]func()
	// lockNotices accumulates, per lock, the pages flushed by releases of
	// that lock (GeNIMA-style write notices): an acquirer invalidates
	// only these pages instead of its whole cache. nil means wildcard
	// (overflowed).
	lockNotices map[int]map[uint32]bool

	// Barrier state (only used on node 0).
	barrierCount int
	barrierWait  []func()

	// Lazily created imports of worker reply/page buffers.
	replyImp map[int]*vmmc.Import
	pageImp  map[int]*vmmc.Import
}

func newDaemon(n *node) *daemon {
	d := &daemon{
		n:           n,
		sys:         n.sys,
		lockHeld:    make(map[int]bool),
		lockQueue:   make(map[int][]func()),
		lockNotices: make(map[int]map[uint32]bool),
		replyImp:    make(map[int]*vmmc.Import),
		pageImp:     make(map[int]*vmmc.Import),
	}
	d.ctlExp = n.ep.Export("svm-ctl", n.sys.P*ctlSlot)
	d.diffExp = n.ep.Export("svm-diff", n.sys.P*diffSlot)
	return d
}

// start launches the two service processes.
func (d *daemon) start() {
	d.sys.c.K.Spawn(fmt.Sprintf("svm-ctl-%d", d.n.idx), d.ctlLoop)
	d.sys.c.K.Spawn(fmt.Sprintf("svm-diff-%d", d.n.idx), d.diffLoop)
}

// replyTo sends a control reply to worker wid; notices, when non-nil,
// carries the page IDs the acquirer must invalidate (lock grants).
func (d *daemon) replyTo(p *sim.Proc, wid int, op byte, arg uint32, notices []uint32) {
	imp := d.replyImp[wid]
	if imp == nil {
		node := d.sys.nodes[wid/d.sys.cfg.ProcsPerNode]
		var err error
		imp, err = d.n.ep.Import(node.host, fmt.Sprintf("svm-reply-%d", wid))
		if err != nil {
			panic(err)
		}
		d.replyImp[wid] = imp
	}
	buf := make([]byte, 16+len(notices)*4)
	buf[0] = op
	binary.LittleEndian.PutUint32(buf[4:], arg)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(notices)))
	for i, pg := range notices {
		binary.LittleEndian.PutUint32(buf[16+i*4:], pg)
	}
	imp.Send(p, 0, buf, true)
}

// noticesFor renders the accumulated write-notice set of a lock for a
// grant reply: a sorted page list, or the wildcard when overflowed.
func (d *daemon) noticesFor(lock int) []uint32 {
	set, tracked := d.lockNotices[lock]
	if tracked && set == nil {
		return []uint32{noticeWildcard}
	}
	out := make([]uint32, 0, len(set))
	for pg := range set {
		out = append(out, pg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// addNotices folds an unlock's flushed-page list into the lock's set.
func (d *daemon) addNotices(lock int, pages []uint32) {
	set, tracked := d.lockNotices[lock]
	if tracked && set == nil {
		return // already wildcard
	}
	if !tracked {
		set = make(map[uint32]bool)
		d.lockNotices[lock] = set
	}
	for _, pg := range pages {
		if pg == noticeWildcard {
			d.lockNotices[lock] = nil
			return
		}
		set[pg] = true
	}
	if len(set) > maxNotices {
		d.lockNotices[lock] = nil
	}
}

// sendPage ships the current home copy of page pg to worker wid's page
// buffer.
func (d *daemon) sendPage(p *sim.Proc, wid, pg int) {
	imp := d.pageImp[wid]
	if imp == nil {
		node := d.sys.nodes[wid/d.sys.cfg.ProcsPerNode]
		var err error
		imp, err = d.n.ep.Import(node.host, fmt.Sprintf("svm-page-%d", wid))
		if err != nil {
			panic(err)
		}
		d.pageImp[wid] = imp
	}
	data := make([]byte, PageSize)
	copy(data, d.n.cache[pg*PageSize:(pg+1)*PageSize])
	imp.Send(p, 0, data, true)
}

// ctlLoop services control requests from remote workers.
func (d *daemon) ctlLoop(p *sim.Proc) {
	for {
		v := d.ctlExp.Notify.Get(p)
		note := v.(vmmc.Notification)
		wid := note.Offset / ctlSlot
		slot := d.ctlExp.Mem[wid*ctlSlot : (wid+1)*ctlSlot]
		op := slot[0]
		arg := int(binary.LittleEndian.Uint32(slot[4:]))
		switch op {
		case opPageReq:
			d.sendPage(p, wid, arg)
		case opLock:
			d.lockRequest(arg, func() {
				notices := d.noticesFor(arg)
				d.sys.c.K.Spawn(fmt.Sprintf("svm-grant-%d-%d", d.n.idx, wid), func(gp *sim.Proc) {
					d.replyTo(gp, wid, opLock, uint32(arg), notices)
				})
			})
		case opUnlock:
			nn := int(binary.LittleEndian.Uint32(slot[8:]))
			pages := make([]uint32, nn)
			for i := 0; i < nn; i++ {
				pages[i] = binary.LittleEndian.Uint32(slot[16+i*4:])
			}
			d.addNotices(arg, pages)
			d.unlockRequest(arg)
			d.replyTo(p, wid, opUnlock, uint32(arg), nil)
		case opBarrier:
			d.barrierArrive(func() {
				d.sys.c.K.Spawn(fmt.Sprintf("svm-release-%d-%d", d.n.idx, wid), func(gp *sim.Proc) {
					d.replyTo(gp, wid, opBarrier, uint32(arg), nil)
				})
			})
		}
	}
}

// diffLoop services diff-flush messages from remote workers.
func (d *daemon) diffLoop(p *sim.Proc) {
	for {
		v := d.diffExp.Notify.Get(p)
		note := v.(vmmc.Notification)
		wid := note.Offset / diffSlot
		slot := d.diffExp.Mem[wid*diffSlot : (wid+1)*diffSlot]
		d.applyDiff(slot)
		d.replyTo(p, wid, opPageReq, 0, nil) // diff ack
	}
}

// applyDiff merges a diff message into the home copy.
func (d *daemon) applyDiff(msg []byte) {
	pg := int(binary.LittleEndian.Uint32(msg[0:]))
	count := int(binary.LittleEndian.Uint32(msg[4:]))
	base := pg * PageSize
	if count == 0 {
		// Whole-page fallback.
		copy(d.n.cache[base:base+PageSize], msg[8:8+PageSize])
		return
	}
	off := 8
	dataOff := 8 + count*4
	for i := 0; i < count; i++ {
		so := int(binary.LittleEndian.Uint16(msg[off:]))
		sl := int(binary.LittleEndian.Uint16(msg[off+2:]))
		copy(d.n.cache[base+so:base+so+sl], msg[dataOff:dataOff+sl])
		off += 4
		dataOff += sl
	}
}

// lockRequest grants the lock now or queues the grant (FIFO). Callable
// locally and from the control loop.
func (d *daemon) lockRequest(lock int, grant func()) {
	if !d.lockHeld[lock] {
		d.lockHeld[lock] = true
		grant()
		return
	}
	d.lockQueue[lock] = append(d.lockQueue[lock], grant)
}

// unlockRequest releases the lock and grants the next waiter.
func (d *daemon) unlockRequest(lock int) {
	q := d.lockQueue[lock]
	if len(q) > 0 {
		next := q[0]
		d.lockQueue[lock] = q[1:]
		next() // lock stays held, ownership transfers
		return
	}
	d.lockHeld[lock] = false
}

// barrierArrive counts arrivals (node 0 only); the P-th arrival releases
// everyone.
func (d *daemon) barrierArrive(release func()) {
	d.barrierWait = append(d.barrierWait, release)
	d.barrierCount++
	if d.barrierCount == d.sys.P {
		waiters := d.barrierWait
		d.barrierWait = nil
		d.barrierCount = 0
		d.sys.epoch++
		for _, r := range waiters {
			r()
		}
	}
}
