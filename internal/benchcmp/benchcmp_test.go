package benchcmp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func baseReport() *Report {
	return &Report{
		Name: "parallel-scaling", Date: "2026-01-01T00:00:00Z",
		Engine: []EngineRow{
			{Plan: "1 host/shard", Workers: 1, WallMS: 100, Events: 5000, Speedup: 1.0},
			{Plan: "1 host/shard", Workers: 4, WallMS: 30, Events: 5000, Speedup: 3.3},
		},
		Campaign: []CampaignRow{
			{Workers: 1, Replicas: 8, WallMS: 400, Speedup: 1.0},
			{Workers: 4, Replicas: 8, WallMS: 110, Speedup: 3.6},
		},
		Proptest: []ProptestRow{
			{Workers: 1, Cases: 1000, WallMS: 900, Speedup: 1.0},
		},
	}
}

func find(t *testing.T, ds []Delta, key string) Delta {
	t.Helper()
	for _, d := range ds {
		if d.Key == key {
			return d
		}
	}
	t.Fatalf("no delta with key %q in %+v", key, ds)
	return Delta{}
}

// TestCompareDetectsRegression: an injected >tolerance speedup drop is
// flagged, and AnyRegression makes the gate trip.
func TestCompareDetectsRegression(t *testing.T) {
	old, cur := baseReport(), baseReport()
	cur.Engine[1].Speedup = 2.0 // 3.3 -> 2.0 is a 39% drop
	ds := Compare(old, cur, DefaultTolerance)
	d := find(t, ds, "engine|1 host/shard|workers=4")
	if d.Status != StatusRegressed {
		t.Fatalf("status = %s, want regressed (delta %+v)", d.Status, d)
	}
	if !AnyRegression(ds) {
		t.Fatal("AnyRegression = false with a regressed config")
	}
	// Everything else stayed put.
	if d := find(t, ds, "campaign|workers=4"); d.Status != StatusOK {
		t.Fatalf("untouched config regressed: %+v", d)
	}
}

// TestCompareToleranceBoundary: drops inside the tolerance band are ok,
// gains beyond it are improvements — neither trips the gate.
func TestCompareToleranceBoundary(t *testing.T) {
	old, cur := baseReport(), baseReport()
	cur.Engine[1].Speedup = 3.3 * 0.95 // 5% drop, inside 10%
	cur.Campaign[1].Speedup = 3.6 * 1.5
	ds := Compare(old, cur, 0.10)
	if d := find(t, ds, "engine|1 host/shard|workers=4"); d.Status != StatusOK {
		t.Fatalf("5%% drop at 10%% tolerance: %s", d.Status)
	}
	if d := find(t, ds, "campaign|workers=4"); d.Status != StatusImproved {
		t.Fatalf("50%% gain: %s, want improved", d.Status)
	}
	if AnyRegression(ds) {
		t.Fatal("gate tripped with no regression")
	}
}

// TestCompareAddedRemoved: configurations present in only one report are
// reported but never fail the comparison.
func TestCompareAddedRemoved(t *testing.T) {
	old, cur := baseReport(), baseReport()
	cur.Proptest = append(cur.Proptest, ProptestRow{Workers: 4, Cases: 1000, Speedup: 3.1})
	cur.Campaign = cur.Campaign[:1] // drop workers=4
	ds := Compare(old, cur, 0)
	if d := find(t, ds, "proptest|workers=4"); d.Status != StatusAdded {
		t.Fatalf("added config: %s", d.Status)
	}
	if d := find(t, ds, "campaign|workers=4"); d.Status != StatusRemoved {
		t.Fatalf("removed config: %s", d.Status)
	}
	if AnyRegression(ds) {
		t.Fatal("added/removed configurations must never fail the gate")
	}
}

// TestCompareWorkloadNote: differing workload sizes (full vs -short) are
// noted per row so a cross-size comparison is visibly loose.
func TestCompareWorkloadNote(t *testing.T) {
	old, cur := baseReport(), baseReport()
	cur.Proptest[0].Cases = 200
	ds := Compare(old, cur, 0)
	d := find(t, ds, "proptest|workers=1")
	if !strings.Contains(d.Note, "workload differs") {
		t.Fatalf("no workload note: %+v", d)
	}
}

// TestCompareDeterministicOrder: new-report row order, removed appended.
func TestCompareDeterministicOrder(t *testing.T) {
	old, cur := baseReport(), baseReport()
	cur.Engine = cur.Engine[:1]
	ds := Compare(old, cur, 0)
	if ds[len(ds)-1].Status != StatusRemoved {
		t.Fatalf("removed config not appended last: %+v", ds)
	}
	ds2 := Compare(old, cur, 0)
	for i := range ds {
		if ds[i] != ds2[i] {
			t.Fatal("Compare order not deterministic")
		}
	}
}

// TestLoadRoundTrip: Load decodes the sanbench schema subset, ignoring
// fields it does not model (profile summaries, note, machine info).
func TestLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	blob := `{
  "name": "parallel-scaling",
  "date": "2026-08-08T00:00:00Z",
  "cpu_model": "test",
  "short": true,
  "interrupted": true,
  "note": "ignored",
  "engine_scaling": [
    {"plan": "1 host/shard", "workers": 2, "wall_ms": 5.5, "events": 123,
     "speedup": 1.7, "profile": {"epochs": 9, "busy_frac": 0.5}}
  ],
  "campaign_scaling": [],
  "proptest_scaling": null
}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !r.Short || !r.Interrupted || len(r.Engine) != 1 || r.Engine[0].Speedup != 1.7 {
		t.Fatalf("decoded report wrong: %+v", r)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("Load of missing file succeeded")
	}
}

// TestTable renders one row per delta with the tolerance in the title.
func TestTable(t *testing.T) {
	old, cur := baseReport(), baseReport()
	cur.Engine[1].Speedup = 1.0
	ds := Compare(old, cur, 0.10)
	s := Table(ds, 0.10).String()
	if !strings.Contains(s, "tolerance 10%") || !strings.Contains(s, "regressed") {
		t.Fatalf("table render:\n%s", s)
	}
}
