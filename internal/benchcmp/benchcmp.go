// Package benchcmp compares two BENCH_parallel.json scaling reports and
// flags perf regressions: per-configuration speedup deltas against a
// tolerance threshold. Speedup (not wall-clock) is the compared metric —
// it is the machine-portable one, so a committed report from one host can
// gate a CI run on another; configurations present in only one report are
// reported but never fail the comparison, and differing workload sizes
// (full vs -short runs) are noted per row.
package benchcmp

import (
	"encoding/json"
	"fmt"
	"os"

	"sanft/internal/report"
)

// DefaultTolerance is the relative speedup drop treated as a regression
// when the caller does not set one: new/old below 1-tolerance fails.
// Speedups on small shared hosts jitter by a few percent per run even
// with best-of-N timing; 10% keeps the gate meaningful without tripping
// on scheduler noise.
const DefaultTolerance = 0.10

// Report is the decoded subset of the BENCH_parallel.json schema the
// comparison needs. Unknown fields are ignored, so the schema can grow
// without breaking old comparisons.
type Report struct {
	Name        string        `json:"name"`
	Date        string        `json:"date"`
	CPUModel    string        `json:"cpu_model"`
	Short       bool          `json:"short,omitempty"`
	Interrupted bool          `json:"interrupted,omitempty"`
	Engine      []EngineRow   `json:"engine_scaling"`
	Campaign    []CampaignRow `json:"campaign_scaling"`
	Proptest    []ProptestRow `json:"proptest_scaling"`
}

// EngineRow, CampaignRow and ProptestRow mirror the sanbench row schemas.
type EngineRow struct {
	Plan    string  `json:"plan"`
	Workers int     `json:"workers"`
	WallMS  float64 `json:"wall_ms"`
	Events  uint64  `json:"events"`
	Speedup float64 `json:"speedup"`
}

type CampaignRow struct {
	Workers  int     `json:"workers"`
	Replicas int     `json:"replicas"`
	WallMS   float64 `json:"wall_ms"`
	Speedup  float64 `json:"speedup"`
}

type ProptestRow struct {
	Workers int     `json:"workers"`
	Cases   int     `json:"cases"`
	WallMS  float64 `json:"wall_ms"`
	Speedup float64 `json:"speedup"`
}

// Load reads and decodes one report file.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// Status classifies one configuration's comparison outcome.
type Status string

const (
	StatusOK        Status = "ok"
	StatusRegressed Status = "regressed"
	StatusImproved  Status = "improved"
	StatusAdded     Status = "added"   // only in the new report
	StatusRemoved   Status = "removed" // only in the old report
)

// Delta is one configuration's speedup comparison.
type Delta struct {
	Key        string  `json:"key"`
	OldSpeedup float64 `json:"old_speedup"`
	NewSpeedup float64 `json:"new_speedup"`
	Ratio      float64 `json:"ratio"` // new/old; 0 for added/removed
	Status     Status  `json:"status"`
	Note       string  `json:"note,omitempty"`
}

// entry is one comparable configuration: a stable key, its speedup, and a
// workload fingerprint (noted when it differs — full vs -short runs time
// different work, so their speedups are only loosely comparable).
type entry struct {
	key     string
	speedup float64
	work    string
}

func flatten(r *Report) []entry {
	var es []entry
	for _, row := range r.Engine {
		es = append(es, entry{
			key:     fmt.Sprintf("engine|%s|workers=%d", row.Plan, row.Workers),
			speedup: row.Speedup,
			work:    fmt.Sprintf("events=%d", row.Events),
		})
	}
	for _, row := range r.Campaign {
		es = append(es, entry{
			key:     fmt.Sprintf("campaign|workers=%d", row.Workers),
			speedup: row.Speedup,
			work:    fmt.Sprintf("replicas=%d", row.Replicas),
		})
	}
	for _, row := range r.Proptest {
		es = append(es, entry{
			key:     fmt.Sprintf("proptest|workers=%d", row.Workers),
			speedup: row.Speedup,
			work:    fmt.Sprintf("cases=%d", row.Cases),
		})
	}
	return es
}

// Compare evaluates cur against old with the given relative tolerance
// (≤ 0 takes DefaultTolerance). Order is deterministic: the new report's
// row order, with removed configurations appended in the old report's
// order. Only configurations present in both reports can regress.
func Compare(old, cur *Report, tol float64) []Delta {
	if tol <= 0 {
		tol = DefaultTolerance
	}
	oldes := flatten(old)
	byKey := make(map[string]entry, len(oldes))
	for _, e := range oldes {
		byKey[e.key] = e
	}
	matched := make(map[string]bool)
	var ds []Delta
	for _, ne := range flatten(cur) {
		oe, ok := byKey[ne.key]
		if !ok {
			ds = append(ds, Delta{Key: ne.key, NewSpeedup: ne.speedup, Status: StatusAdded})
			continue
		}
		matched[ne.key] = true
		d := Delta{Key: ne.key, OldSpeedup: oe.speedup, NewSpeedup: ne.speedup}
		if oe.speedup > 0 {
			d.Ratio = ne.speedup / oe.speedup
		}
		switch {
		case d.Ratio < 1-tol:
			d.Status = StatusRegressed
		case d.Ratio > 1+tol:
			d.Status = StatusImproved
		default:
			d.Status = StatusOK
		}
		if oe.work != ne.work {
			d.Note = fmt.Sprintf("workload differs (%s vs %s)", oe.work, ne.work)
		}
		ds = append(ds, d)
	}
	for _, oe := range oldes {
		if !matched[oe.key] {
			ds = append(ds, Delta{Key: oe.key, OldSpeedup: oe.speedup, Status: StatusRemoved})
		}
	}
	return ds
}

// AnyRegression reports whether any configuration regressed.
func AnyRegression(ds []Delta) bool {
	for _, d := range ds {
		if d.Status == StatusRegressed {
			return true
		}
	}
	return false
}

// Table renders the deltas through the shared report contract.
func Table(ds []Delta, tol float64) *report.Table {
	if tol <= 0 {
		tol = DefaultTolerance
	}
	t := &report.Table{
		Name:   fmt.Sprintf("speedup comparison (tolerance %.0f%%)", tol*100),
		Header: []string{"config", "old", "new", "ratio", "status", "note"},
	}
	f := func(v float64) string {
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f", v)
	}
	for _, d := range ds {
		t.Cells = append(t.Cells, []string{
			d.Key, f(d.OldSpeedup), f(d.NewSpeedup), f(d.Ratio), string(d.Status), d.Note,
		})
	}
	return t
}
