// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock (nanosecond resolution) by executing
// events in (time, insertion-order) order. On top of the raw event loop it
// offers three higher-level facilities used throughout the simulator:
//
//   - Proc: coroutine-style simulated processes (goroutines that run one at
//     a time, handing control back to the kernel when they sleep or block),
//     used for host-level application processes.
//   - Resource: a FIFO server with a service time per request, used to model
//     serialized hardware units (the NIC firmware processor, DMA engines).
//   - Gate / Mailbox: blocking synchronization and message passing between
//     Procs in virtual time.
//
// All randomness flows through the kernel's seeded RNG, so a simulation run
// is a pure function of its configuration and seed.
package sim

import (
	"fmt"
	"time"
)

// Time is an instant in simulated time, in nanoseconds since the start of
// the simulation.
type Time int64

// Common durations re-exported for brevity at call sites.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier instant o.
func (t Time) Sub(o Time) time.Duration { return time.Duration(t - o) }

// Before reports whether t precedes o.
func (t Time) Before(o Time) bool { return t < o }

// After reports whether t follows o.
func (t Time) After(o Time) bool { return t > o }

// Duration converts t to the duration elapsed since the simulation epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String formats t using time.Duration notation (e.g. "1.5ms").
func (t Time) String() string { return fmt.Sprint(time.Duration(t)) }
