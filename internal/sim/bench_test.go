package sim

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures raw event dispatch rate.
func BenchmarkEventThroughput(b *testing.B) {
	k := New(1)
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			k.After(time.Microsecond, fn)
		}
	}
	k.After(time.Microsecond, fn)
	b.ResetTimer()
	k.Run()
}

// BenchmarkHeapChurn measures scheduling with many pending events.
func BenchmarkHeapChurn(b *testing.B) {
	k := New(1)
	for i := 0; i < 1000; i++ {
		k.After(time.Duration(i+1)*time.Second, func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := k.After(time.Millisecond, func() {})
		t.Cancel()
	}
}

// BenchmarkProcHandoff measures the coroutine context-switch cost.
func BenchmarkProcHandoff(b *testing.B) {
	k := New(1)
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkResource measures the FIFO-server fast path.
func BenchmarkResource(b *testing.B) {
	k := New(1)
	r := NewResource(k, "cpu")
	n := 0
	var submit func()
	submit = func() {
		n++
		if n < b.N {
			r.Submit(time.Microsecond, submit)
		}
	}
	r.Submit(time.Microsecond, submit)
	b.ResetTimer()
	k.Run()
}
