package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// event is one scheduled callback, stored flat in the kernel's arena and
// addressed by its arena index. Events with equal times execute in
// scheduling order (seq breaks ties), which keeps runs deterministic.
//
// The arena slot is recycled through a free list once the event fires or
// is cancelled; gen is bumped on every recycle so stale Timer handles
// can never cancel a later occupant of the same slot.
type event struct {
	at  Time
	seq uint64
	gen uint32
	pos int32 // index in the kernel's heap, -1 when not queued
	fn  func()
}

// Timer is a value handle to a scheduled event that can be cancelled.
// The zero Timer is valid and permanently non-pending. Timers are small
// and copyable; scheduling an event allocates nothing beyond the
// caller's closure.
type Timer struct {
	k   *Kernel
	id  int32
	gen uint32
}

// Cancel prevents the timer's callback from running. Cancelling an already
// fired or already cancelled timer is a no-op. Reports whether the timer was
// still pending.
func (t Timer) Cancel() bool {
	if t.k == nil {
		return false
	}
	e := &t.k.arena[t.id]
	if e.gen != t.gen || e.pos < 0 {
		return false
	}
	t.k.heapRemove(int(e.pos))
	t.k.release(t.id)
	t.k.cancelled++
	return true
}

// Pending reports whether the timer has neither fired nor been cancelled.
func (t Timer) Pending() bool {
	if t.k == nil {
		return false
	}
	e := &t.k.arena[t.id]
	return e.gen == t.gen && e.pos >= 0
}

// Kernel is a discrete-event simulation engine. It is not safe for
// concurrent use: all simulation code runs on a single logical thread
// (the caller of Run, plus Procs which execute one at a time by handoff).
//
// The event queue is an index-based binary heap over a flat struct arena:
// no per-event heap allocation, no interface boxing, and cancellation
// removes the event eagerly instead of leaving a tombstone to skip later.
// In steady state scheduling and firing events allocates nothing.
type Kernel struct {
	now     Time
	seq     uint64
	rng     *rand.Rand
	stopped bool

	arena []event // flat event records, indexed by event id
	free  []int32 // recycled arena slots
	heap  []int32 // binary heap of event ids, ordered by (at, seq)

	procs     map[*Proc]struct{} // live procs, for shutdown
	executed  uint64             // events executed, for diagnostics
	cancelled uint64             // events cancelled before firing
}

// New returns a kernel with its clock at zero and an RNG seeded with seed.
func New(seed int64) *Kernel {
	return &Kernel{
		rng:   rand.New(rand.NewSource(seed)),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Executed returns the number of events executed so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending returns the number of events currently scheduled. Cancelled
// events are removed eagerly, so the count is exact.
func (k *Kernel) Pending() int { return len(k.heap) }

// KernelStats is a snapshot of the kernel's event-machinery counters, for
// the engine profiler. Scheduled counts every schedule call (it equals
// Cancelled + Executed + Pending once the run has quiesced);
// ArenaHighWater is the peak number of distinct event slots ever live at
// once, i.e. the arena's memory footprint in records.
type KernelStats struct {
	Scheduled      uint64
	Cancelled      uint64
	Executed       uint64
	Pending        int
	ArenaHighWater int
}

// Stats returns the kernel's counter snapshot. Always available — the
// counters are plain increments on paths that already mutate kernel
// state, cheap enough to keep unconditionally.
func (k *Kernel) Stats() KernelStats {
	return KernelStats{
		Scheduled:      k.seq,
		Cancelled:      k.cancelled,
		Executed:       k.executed,
		Pending:        len(k.heap),
		ArenaHighWater: len(k.arena),
	}
}

// less orders heap entries by (time, scheduling sequence).
func (k *Kernel) less(a, b int32) bool {
	ea, eb := &k.arena[a], &k.arena[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

func (k *Kernel) siftUp(i int) {
	id := k.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !k.less(id, k.heap[parent]) {
			break
		}
		k.heap[i] = k.heap[parent]
		k.arena[k.heap[i]].pos = int32(i)
		i = parent
	}
	k.heap[i] = id
	k.arena[id].pos = int32(i)
}

func (k *Kernel) siftDown(i int) {
	id := k.heap[i]
	n := len(k.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && k.less(k.heap[right], k.heap[left]) {
			child = right
		}
		if !k.less(k.heap[child], id) {
			break
		}
		k.heap[i] = k.heap[child]
		k.arena[k.heap[i]].pos = int32(i)
		i = child
	}
	k.heap[i] = id
	k.arena[id].pos = int32(i)
}

// heapRemove deletes the entry at heap position i, preserving heap order.
func (k *Kernel) heapRemove(i int) {
	n := len(k.heap) - 1
	last := k.heap[n]
	k.heap = k.heap[:n]
	if i == n {
		return
	}
	k.heap[i] = last
	k.arena[last].pos = int32(i)
	k.siftDown(i)
	k.siftUp(i)
}

// release returns an arena slot to the free list, dropping the closure
// reference and invalidating outstanding Timer handles.
func (k *Kernel) release(id int32) {
	e := &k.arena[id]
	e.fn = nil
	e.gen++
	e.pos = -1
	k.free = append(k.free, id)
}

// schedule inserts a new event and returns its handle.
func (k *Kernel) schedule(t Time, fn func()) Timer {
	k.seq++
	var id int32
	if n := len(k.free); n > 0 {
		id = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		k.arena = append(k.arena, event{})
		id = int32(len(k.arena) - 1)
	}
	e := &k.arena[id]
	e.at = t
	e.seq = k.seq
	e.fn = fn
	e.pos = int32(len(k.heap))
	k.heap = append(k.heap, id)
	k.siftUp(int(e.pos))
	return Timer{k: k, id: id, gen: e.gen}
}

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error in simulation logic and panics.
func (k *Kernel) At(t Time, fn func()) Timer {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	return k.schedule(t, fn)
}

// After schedules fn to run d after the current time. Negative d panics.
func (k *Kernel) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.schedule(k.now.Add(d), fn)
}

// Immediately schedules fn to run at the current time, after all events
// already scheduled for this instant.
func (k *Kernel) Immediately(fn func()) Timer { return k.schedule(k.now, fn) }

// Step executes the next pending event. It reports false when no events
// remain or the kernel has been stopped.
func (k *Kernel) Step() bool {
	if k.stopped || len(k.heap) == 0 {
		return false
	}
	id := k.heap[0]
	e := &k.arena[id]
	k.now = e.at
	fn := e.fn
	k.heapRemove(0)
	k.release(id)
	k.executed++
	fn()
	return true
}

// Run executes events until none remain (or Stop is called). It returns the
// final simulated time.
func (k *Kernel) Run() Time {
	for k.Step() {
	}
	return k.now
}

// RunUntil executes events with time ≤ t, then sets the clock to t.
// Events scheduled exactly at t do execute.
func (k *Kernel) RunUntil(t Time) {
	for !k.stopped && len(k.heap) > 0 && k.arena[k.heap[0]].at <= t {
		k.Step()
	}
	if !k.stopped && k.now < t {
		k.now = t
	}
}

// RunFor advances the simulation by duration d.
func (k *Kernel) RunFor(d time.Duration) { k.RunUntil(k.now.Add(d)) }

// RunBefore executes events with time strictly < t, then sets the clock
// to t. Events scheduled exactly at t do not execute — they belong to the
// next window. This is the epoch primitive of the conservative parallel
// engine (internal/parsim): each shard kernel runs its window [now, t),
// parks at t, and waits for the barrier to deliver cross-shard arrivals,
// all of which carry times ≥ t.
func (k *Kernel) RunBefore(t Time) {
	for !k.stopped && len(k.heap) > 0 && k.arena[k.heap[0]].at < t {
		k.Step()
	}
	if !k.stopped && k.now < t {
		k.now = t
	}
}

// NextEvent returns the time of the earliest pending event, if any. The
// parallel engine uses it to skip idle stretches: an epoch window starts
// at the earliest work across all shards.
func (k *Kernel) NextEvent() (Time, bool) {
	if len(k.heap) == 0 {
		return 0, false
	}
	return k.arena[k.heap[0]].at, true
}

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// Stop halts the simulation: no further events execute, and every parked
// Proc is terminated (its goroutine unwinds via panic recovered by the
// kernel). Call Stop when abandoning a kernel that has live Procs, so their
// goroutines do not leak.
func (k *Kernel) Stop() {
	if k.stopped {
		return
	}
	k.stopped = true
	for p := range k.procs {
		if p.parked {
			p.kill()
		}
	}
}
