package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// event is a scheduled callback. Events with equal times execute in
// scheduling order (seq breaks ties), which keeps runs deterministic.
type event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 when popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct{ ev *event }

// Cancel prevents the timer's callback from running. Cancelling an already
// fired or already cancelled timer is a no-op. Reports whether the timer was
// still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.index == -1 {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Pending reports whether the timer has neither fired nor been cancelled.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && !t.ev.cancelled && t.ev.index != -1
}

// Kernel is a discrete-event simulation engine. It is not safe for
// concurrent use: all simulation code runs on a single logical thread
// (the caller of Run, plus Procs which execute one at a time by handoff).
type Kernel struct {
	now     Time
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool

	procs     map[*Proc]struct{} // live procs, for shutdown
	executed  uint64             // events executed, for diagnostics
	inProcRun bool
}

// New returns a kernel with its clock at zero and an RNG seeded with seed.
func New(seed int64) *Kernel {
	return &Kernel{
		rng:   rand.New(rand.NewSource(seed)),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Executed returns the number of events executed so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending returns the number of events currently scheduled (including
// cancelled events not yet reaped).
func (k *Kernel) Pending() int { return len(k.events) }

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error in simulation logic and panics.
func (k *Kernel) At(t Time, fn func()) *Timer {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	ev := &event{at: t, seq: k.seq, fn: fn}
	heap.Push(&k.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d after the current time. Negative d panics.
func (k *Kernel) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now.Add(d), fn)
}

// Immediately schedules fn to run at the current time, after all events
// already scheduled for this instant.
func (k *Kernel) Immediately(fn func()) *Timer { return k.At(k.now, fn) }

// Step executes the next pending event. It reports false when no events
// remain or the kernel has been stopped.
func (k *Kernel) Step() bool {
	for len(k.events) > 0 && !k.stopped {
		ev := heap.Pop(&k.events).(*event)
		if ev.cancelled {
			continue
		}
		k.now = ev.at
		k.executed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until none remain (or Stop is called). It returns the
// final simulated time.
func (k *Kernel) Run() Time {
	for k.Step() {
	}
	return k.now
}

// RunUntil executes events with time ≤ t, then sets the clock to t.
// Events scheduled exactly at t do execute.
func (k *Kernel) RunUntil(t Time) {
	for !k.stopped && len(k.events) > 0 {
		next := k.peek()
		if next == nil {
			break
		}
		if next.at > t {
			break
		}
		k.Step()
	}
	if !k.stopped && k.now < t {
		k.now = t
	}
}

// RunFor advances the simulation by duration d.
func (k *Kernel) RunFor(d time.Duration) { k.RunUntil(k.now.Add(d)) }

// RunBefore executes events with time strictly < t, then sets the clock
// to t. Events scheduled exactly at t do not execute — they belong to the
// next window. This is the epoch primitive of the conservative parallel
// engine (internal/parsim): each shard kernel runs its window [now, t),
// parks at t, and waits for the barrier to deliver cross-shard arrivals,
// all of which carry times ≥ t.
func (k *Kernel) RunBefore(t Time) {
	for !k.stopped {
		next := k.peek()
		if next == nil || next.at >= t {
			break
		}
		k.Step()
	}
	if !k.stopped && k.now < t {
		k.now = t
	}
}

// NextEvent returns the time of the earliest pending (non-cancelled)
// event, if any. The parallel engine uses it to skip idle stretches:
// an epoch window starts at the earliest work across all shards.
func (k *Kernel) NextEvent() (Time, bool) {
	ev := k.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

func (k *Kernel) peek() *event {
	for len(k.events) > 0 {
		if k.events[0].cancelled {
			heap.Pop(&k.events)
			continue
		}
		return k.events[0]
	}
	return nil
}

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// Stop halts the simulation: no further events execute, and every parked
// Proc is terminated (its goroutine unwinds via panic recovered by the
// kernel). Call Stop when abandoning a kernel that has live Procs, so their
// goroutines do not leak.
func (k *Kernel) Stop() {
	if k.stopped {
		return
	}
	k.stopped = true
	for p := range k.procs {
		if p.parked {
			p.kill()
		}
	}
}
