package sim

import (
	"container/heap"
	"testing"
	"time"
)

// TestScheduleStepAllocs pins the flat kernel's hot-path budget: once
// the arena is warm, scheduling an event and firing it must not allocate
// at all (the previous pointer-heap kernel paid one event box plus one
// Timer box per event). Guards the engine-overhaul win against
// regression.
func TestScheduleStepAllocs(t *testing.T) {
	k := New(1)
	fn := func() {}
	for i := 0; i < 64; i++ {
		k.After(time.Duration(i)*time.Microsecond, fn)
	}
	k.Run()
	avg := testing.AllocsPerRun(10000, func() {
		k.After(time.Microsecond, fn)
		k.Step()
	})
	if avg != 0 {
		t.Fatalf("schedule+step allocates %.2f allocs/op in steady state, want 0", avg)
	}
}

// TestScheduleCancelAllocs pins the arm/cancel cycle (the retransmission
// and liveness layers re-arm timers constantly): zero allocations in
// steady state.
func TestScheduleCancelAllocs(t *testing.T) {
	k := New(1)
	fn := func() {}
	for i := 0; i < 64; i++ {
		k.After(time.Duration(i)*time.Microsecond, fn)
	}
	k.Run()
	avg := testing.AllocsPerRun(10000, func() {
		tm := k.After(time.Millisecond, fn)
		tm.Cancel()
	})
	if avg != 0 {
		t.Fatalf("schedule+cancel allocates %.2f allocs/op in steady state, want 0", avg)
	}
}

// oldEvent/oldHeap/oldKernel replicate the pre-overhaul event queue — a
// container/heap of per-event pointer boxes with tombstone cancellation —
// so the flat-kernel benchmarks below have a faithful baseline to beat.
// Bench-local only; nothing outside this file uses them.
type oldEvent struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int
}

type oldHeap []*oldEvent

func (h oldHeap) Len() int { return len(h) }
func (h oldHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h oldHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *oldHeap) Push(x any) {
	e := x.(*oldEvent)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *oldHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

type oldKernel struct {
	now    Time
	seq    uint64
	events oldHeap
}

type oldTimer struct{ ev *oldEvent }

func (k *oldKernel) at(t Time, fn func()) *oldTimer {
	k.seq++
	ev := &oldEvent{at: t, seq: k.seq, fn: fn}
	heap.Push(&k.events, ev)
	return &oldTimer{ev: ev}
}

func (k *oldKernel) step() bool {
	for len(k.events) > 0 {
		e := heap.Pop(&k.events).(*oldEvent)
		if e.cancelled {
			continue
		}
		k.now = e.at
		e.fn()
		return true
	}
	return false
}

// benchDepth keeps a realistic standing population in the queue: NIC
// timers, liveness sessions and retransmission timers mean the heap is
// never near-empty in real runs.
const benchDepth = 256

// BenchmarkKernelSchedulePop measures the flat int-indexed kernel:
// steady-state schedule+fire against a standing event population.
func BenchmarkKernelSchedulePop(b *testing.B) {
	k := New(1)
	fn := func() {}
	for i := 0; i < benchDepth; i++ {
		k.After(time.Duration(i)*time.Microsecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(time.Millisecond, fn)
		k.Step()
	}
}

// BenchmarkOldKernelSchedulePop measures the legacy pointer-heap queue
// on the identical workload.
func BenchmarkOldKernelSchedulePop(b *testing.B) {
	k := &oldKernel{}
	fn := func() {}
	for i := 0; i < benchDepth; i++ {
		k.at(Time(i)*Time(time.Microsecond), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.at(k.now.Add(time.Millisecond), fn)
		k.step()
	}
}

// BenchmarkKernelArmCancel measures the flat kernel's timer re-arm
// cycle (eager heap removal, slot recycled through the free list).
func BenchmarkKernelArmCancel(b *testing.B) {
	k := New(1)
	fn := func() {}
	for i := 0; i < benchDepth; i++ {
		k.After(time.Duration(i)*time.Microsecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := k.After(time.Millisecond, fn)
		tm.Cancel()
	}
}

// BenchmarkOldKernelArmCancel measures the legacy queue's re-arm cycle:
// tombstone cancellation leaves the dead box in the heap for the pop
// path to reap, and every cycle allocates the box and the Timer.
func BenchmarkOldKernelArmCancel(b *testing.B) {
	k := &oldKernel{}
	fn := func() {}
	for i := 0; i < benchDepth; i++ {
		k.at(Time(i)*Time(time.Microsecond), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := k.at(k.now.Add(time.Millisecond), fn)
		tm.ev.cancelled = true
		if len(k.events) > 4*benchDepth {
			// Tombstones accumulate; reap as the old Step would.
			b.StopTimer()
			for len(k.events) > benchDepth {
				heap.Pop(&k.events)
			}
			b.StartTimer()
		}
	}
}
