package sim

import (
	"testing"
	"time"
)

// TestKernelStats pins the profiler-facing counter snapshot: scheduled
// splits exactly into cancelled + executed + pending, and the arena
// high-water mark reflects peak concurrent live events.
func TestKernelStats(t *testing.T) {
	k := New(1)
	fired := 0
	for i := 0; i < 8; i++ {
		k.After(time.Duration(i+1)*time.Microsecond, func() { fired++ })
	}
	tm := k.After(20*time.Microsecond, func() { fired++ })
	if !tm.Cancel() {
		t.Fatal("Cancel of pending timer failed")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel succeeded")
	}
	k.After(50*time.Microsecond, func() { fired++ })

	k.RunUntil(Time(0).Add(10 * time.Microsecond))
	s := k.Stats()
	if s.Scheduled != 10 {
		t.Fatalf("Scheduled = %d, want 10", s.Scheduled)
	}
	if s.Cancelled != 1 {
		t.Fatalf("Cancelled = %d, want 1", s.Cancelled)
	}
	if s.Executed != 8 || fired != 8 {
		t.Fatalf("Executed = %d (fired %d), want 8", s.Executed, fired)
	}
	if s.Pending != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending)
	}
	if got := s.Cancelled + s.Executed + uint64(s.Pending); got != s.Scheduled {
		t.Fatalf("cancelled+executed+pending = %d, want scheduled = %d", got, s.Scheduled)
	}
	// 9 events were live at once (the cancelled slot was freed and reused
	// by the last schedule), so the arena never grew past 9 records.
	if s.ArenaHighWater != 9 {
		t.Fatalf("ArenaHighWater = %d, want 9", s.ArenaHighWater)
	}

	k.Run()
	s = k.Stats()
	if s.Pending != 0 || s.Executed != 9 {
		t.Fatalf("after drain: %+v", s)
	}
}
