package sim

import (
	"fmt"
	"time"
)

// Resource models a serialized hardware unit — a processor, a DMA engine, a
// bus — as a FIFO single-server queue. Work items are submitted with a
// service time; the resource executes them one at a time in submission
// order and invokes each item's completion callback when its service time
// has elapsed.
//
// Resource accumulates busy time, so utilization can be reported after a
// run.
type Resource struct {
	k    *Kernel
	name string

	busy      bool
	queue     []resWork
	busyNS    time.Duration
	served    uint64
	lastStart Time
}

type resWork struct {
	service time.Duration
	done    func()
}

// NewResource returns an idle resource attached to kernel k.
func NewResource(k *Kernel, name string) *Resource {
	return &Resource{k: k, name: name}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Submit enqueues a work item requiring the given service time. done runs
// (in event context) when the item completes. done may be nil.
func (r *Resource) Submit(service time.Duration, done func()) {
	if service < 0 {
		panic(fmt.Sprintf("sim: resource %s: negative service time %v", r.name, service))
	}
	r.queue = append(r.queue, resWork{service: service, done: done})
	if !r.busy {
		r.startNext()
	}
}

// SubmitBytes enqueues a transfer of n bytes at rate bytes/sec plus a fixed
// setup time; a convenience for modeling DMA engines and buses.
func (r *Resource) SubmitBytes(n int, rate float64, setup time.Duration, done func()) {
	if rate <= 0 {
		panic(fmt.Sprintf("sim: resource %s: non-positive rate %v", r.name, rate))
	}
	xfer := time.Duration(float64(n) / rate * 1e9)
	r.Submit(setup+xfer, done)
}

func (r *Resource) startNext() {
	if len(r.queue) == 0 {
		r.busy = false
		return
	}
	w := r.queue[0]
	r.queue = r.queue[1:]
	r.busy = true
	r.lastStart = r.k.Now()
	r.k.After(w.service, func() {
		r.busyNS += w.service
		r.served++
		if w.done != nil {
			w.done()
		}
		r.startNext()
	})
}

// Busy reports whether the resource is currently serving an item.
func (r *Resource) Busy() bool { return r.busy }

// QueueLen returns the number of items waiting (not including the one in
// service).
func (r *Resource) QueueLen() int { return len(r.queue) }

// Served returns the number of completed work items.
func (r *Resource) Served() uint64 { return r.served }

// BusyTime returns the total time the resource has spent serving items.
func (r *Resource) BusyTime() time.Duration { return r.busyNS }

// Utilization returns the fraction of simulated time the resource was busy,
// over the window from simulation start to now.
func (r *Resource) Utilization() float64 {
	now := r.k.Now()
	if now == 0 {
		return 0
	}
	return float64(r.busyNS) / float64(now)
}
