package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKernelOrdering(t *testing.T) {
	k := New(1)
	var order []int
	k.After(30*Microsecond, func() { order = append(order, 3) })
	k.After(10*Microsecond, func() { order = append(order, 1) })
	k.After(20*Microsecond, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events executed out of order: %v", order)
	}
	if k.Now() != Time(30*Microsecond) {
		t.Fatalf("final time = %v, want 30µs", k.Now())
	}
}

func TestKernelSameTimeFIFO(t *testing.T) {
	k := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.After(5*Microsecond, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := New(1)
	var hits []string
	k.After(time.Microsecond, func() {
		hits = append(hits, "a")
		k.After(time.Microsecond, func() { hits = append(hits, "c") })
		k.Immediately(func() { hits = append(hits, "b") })
	})
	k.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if i >= len(hits) || hits[i] != want[i] {
			t.Fatalf("hits = %v, want %v", hits, want)
		}
	}
}

func TestKernelPastSchedulingPanics(t *testing.T) {
	k := New(1)
	k.After(time.Millisecond, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.At(Time(time.Microsecond), func() {})
}

func TestTimerCancel(t *testing.T) {
	k := New(1)
	fired := false
	tm := k.After(time.Millisecond, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Cancel() {
		t.Fatal("first cancel should succeed")
	}
	if tm.Cancel() {
		t.Fatal("second cancel should fail")
	}
	k.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerCancelAfterFire(t *testing.T) {
	k := New(1)
	tm := k.After(time.Microsecond, func() {})
	k.Run()
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
	if tm.Cancel() {
		t.Fatal("cancel after fire should report false")
	}
}

func TestRunUntil(t *testing.T) {
	k := New(1)
	var fired []int
	k.After(10*Microsecond, func() { fired = append(fired, 1) })
	k.After(20*Microsecond, func() { fired = append(fired, 2) })
	k.After(30*Microsecond, func() { fired = append(fired, 3) })
	k.RunUntil(Time(20 * Microsecond))
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want events at 10µs and 20µs", fired)
	}
	if k.Now() != Time(20*Microsecond) {
		t.Fatalf("now = %v, want 20µs", k.Now())
	}
	k.RunFor(10 * Microsecond)
	if len(fired) != 3 {
		t.Fatalf("fired = %v after RunFor, want 3 events", fired)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	k := New(1)
	k.RunUntil(Time(time.Second))
	if k.Now() != Time(time.Second) {
		t.Fatalf("now = %v, want 1s", k.Now())
	}
}

func TestProcSleep(t *testing.T) {
	k := New(1)
	var wake Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(15 * Microsecond)
		wake = p.Now()
	})
	k.Run()
	if wake != Time(15*Microsecond) {
		t.Fatalf("woke at %v, want 15µs", wake)
	}
}

func TestProcInterleaving(t *testing.T) {
	k := New(1)
	var trace []string
	k.Spawn("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(10 * Microsecond)
		trace = append(trace, "a1")
		p.Sleep(20 * Microsecond)
		trace = append(trace, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(15 * Microsecond)
		trace = append(trace, "b1")
	})
	k.Run()
	want := []string{"a0", "b0", "a1", "b1", "a2"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestGateSignalBroadcast(t *testing.T) {
	k := New(1)
	var g Gate
	woken := make(map[string]Time)
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			g.Wait(p)
			woken[name] = p.Now()
		})
	}
	k.Spawn("signaler", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		g.Signal() // wakes w1 only
		p.Sleep(10 * Microsecond)
		g.Broadcast() // wakes w2, w3
	})
	k.Run()
	if woken["w1"] != Time(10*Microsecond) {
		t.Fatalf("w1 woke at %v, want 10µs", woken["w1"])
	}
	if woken["w2"] != Time(20*Microsecond) || woken["w3"] != Time(20*Microsecond) {
		t.Fatalf("w2/w3 woke at %v/%v, want 20µs", woken["w2"], woken["w3"])
	}
}

func TestGateWaitTimeout(t *testing.T) {
	k := New(1)
	var g Gate
	var gotSignal, gotTimeout bool
	k.Spawn("timeouter", func(p *Proc) {
		gotTimeout = !g.WaitTimeout(p, 5*Microsecond)
	})
	k.Spawn("signaled", func(p *Proc) {
		p.Sleep(6 * Microsecond) // waits after the first proc timed out
		gotSignal = g.WaitTimeout(p, time.Second)
	})
	k.Spawn("signaler", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		g.Signal()
	})
	k.Run()
	if !gotTimeout {
		t.Fatal("first waiter should have timed out")
	}
	if !gotSignal {
		t.Fatal("second waiter should have been signaled")
	}
}

func TestGateSignalTimeoutRace(t *testing.T) {
	// Signal scheduled at exactly the timeout instant must not double-wake.
	k := New(1)
	var g Gate
	wokenCount := 0
	k.Spawn("racer", func(p *Proc) {
		g.WaitTimeout(p, 10*Microsecond)
		wokenCount++
		p.Sleep(time.Millisecond)
	})
	k.After(10*Microsecond, func() { g.Signal() })
	k.Run()
	if wokenCount != 1 {
		t.Fatalf("woken %d times, want exactly 1", wokenCount)
	}
}

func TestMailbox(t *testing.T) {
	k := New(1)
	var mb Mailbox
	var got []int
	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Get(p).(int))
		}
	})
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * Microsecond)
			mb.Put(i)
		}
	})
	k.Run()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("got %v, want [0 1 2]", got)
	}
}

func TestMailboxGetTimeout(t *testing.T) {
	k := New(1)
	var mb Mailbox
	var ok1, ok2 bool
	k.Spawn("consumer", func(p *Proc) {
		_, ok1 = mb.GetTimeout(p, 5*Microsecond)
		_, ok2 = mb.GetTimeout(p, 20*Microsecond)
	})
	k.After(10*Microsecond, func() { mb.Put("late") })
	k.Run()
	if ok1 {
		t.Fatal("first receive should time out (message arrives at 10µs)")
	}
	if !ok2 {
		t.Fatal("second receive should get the message")
	}
}

func TestKernelStopKillsParkedProcs(t *testing.T) {
	k := New(1)
	var g Gate
	reached := false
	k.Spawn("stuck", func(p *Proc) {
		g.Wait(p) // never signaled
		reached = true
	})
	k.RunFor(time.Millisecond)
	k.Stop()
	if reached {
		t.Fatal("proc body continued past a never-signaled gate")
	}
	if k.Step() {
		t.Fatal("stopped kernel executed an event")
	}
}

func TestResourceFIFOAndTiming(t *testing.T) {
	k := New(1)
	r := NewResource(k, "cpu")
	var done []Time
	record := func() { done = append(done, k.Now()) }
	r.Submit(10*Microsecond, record)
	r.Submit(5*Microsecond, record)
	r.Submit(1*Microsecond, record)
	k.Run()
	want := []Time{Time(10 * Microsecond), Time(15 * Microsecond), Time(16 * Microsecond)}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completion times %v, want %v", done, want)
		}
	}
	if r.Served() != 3 {
		t.Fatalf("served = %d, want 3", r.Served())
	}
	if r.BusyTime() != 16*Microsecond {
		t.Fatalf("busy time = %v, want 16µs", r.BusyTime())
	}
}

func TestResourceSubmitBytes(t *testing.T) {
	k := New(1)
	r := NewResource(k, "dma")
	var at Time
	// 1000 bytes at 1e9 B/s = 1µs, plus 1µs setup.
	r.SubmitBytes(1000, 1e9, time.Microsecond, func() { at = k.Now() })
	k.Run()
	if at != Time(2*Microsecond) {
		t.Fatalf("completed at %v, want 2µs", at)
	}
}

func TestResourceUtilization(t *testing.T) {
	k := New(1)
	r := NewResource(k, "cpu")
	r.Submit(25*Microsecond, nil)
	k.RunUntil(Time(100 * Microsecond))
	if u := r.Utilization(); u < 0.24 || u > 0.26 {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		k := New(42)
		var samples []int64
		for i := 0; i < 5; i++ {
			d := time.Duration(k.Rand().Intn(1000)) * Microsecond
			k.After(d, func() { samples = append(samples, int64(k.Now())) })
		}
		k.Run()
		return samples
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged: %v vs %v", a, b)
		}
	}
}

func TestTimePropertyAddSub(t *testing.T) {
	f := func(base int32, delta int32) bool {
		tm := Time(int64(base) * 1000)
		d := time.Duration(delta)
		if d < 0 {
			d = -d
		}
		return tm.Add(d).Sub(tm) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
