package sim

import (
	"fmt"
	"time"
)

// procKilled is the panic payload used to unwind a Proc goroutine when the
// kernel shuts down. It is recovered by the spawn wrapper.
type procKilled struct{}

// Proc is a simulated process: a goroutine whose execution is interleaved
// with the event loop so that exactly one piece of simulation code runs at a
// time. A Proc advances virtual time only by calling Sleep, or by blocking
// on a Gate/Mailbox until another event wakes it.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	yield  chan struct{}
	parked bool
	done   bool
	killed bool
}

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.k.Now() }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }

// Spawn starts a simulated process running fn. The process begins executing
// at the current simulated time (via an immediate event). fn runs in its own
// goroutine but is strictly serialized with all other simulation code.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	k.procs[p] = struct{}{}
	k.Immediately(func() {
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(procKilled); !ok {
						panic(r) // real bug: propagate
					}
				}
				p.done = true
				delete(k.procs, p)
				p.yield <- struct{}{}
			}()
			<-p.resume
			fn(p)
		}()
		p.dispatch()
	})
	return p
}

// dispatch transfers control from the kernel to the proc goroutine and
// waits until it parks or finishes. Must be called from kernel context.
func (p *Proc) dispatch() {
	if p.done {
		return
	}
	p.parked = false
	p.resume <- struct{}{}
	<-p.yield
}

// park transfers control from the proc goroutine back to the kernel and
// blocks until some event dispatches the proc again. Must be called from
// the proc's own goroutine.
func (p *Proc) park() {
	p.parked = true
	p.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(procKilled{})
	}
}

// kill marks the proc for termination and runs it one final time so the
// goroutine unwinds. Called by Kernel.Stop for parked procs.
func (p *Proc) kill() {
	p.killed = true
	p.dispatch()
}

// Sleep suspends the process for duration d of simulated time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v", d))
	}
	p.k.After(d, func() { p.dispatch() })
	p.park()
}

// Yield suspends the process and reschedules it at the current instant,
// after already pending events.
func (p *Proc) Yield() { p.Sleep(0) }

// Gate is a wait queue for Procs: a condition-variable analogue in virtual
// time. The zero value is ready to use.
type Gate struct {
	waiters []*Proc
}

// Wait parks the calling process until Signal or Broadcast wakes it.
func (g *Gate) Wait(p *Proc) {
	g.waiters = append(g.waiters, p)
	p.park()
}

// WaitTimeout parks the calling process until woken or until d elapses.
// It reports true if the process was woken by Signal/Broadcast and false on
// timeout.
func (g *Gate) WaitTimeout(p *Proc, d time.Duration) bool {
	g.waiters = append(g.waiters, p)
	timedOut := false
	timer := p.k.After(d, func() {
		// Wake p only if it is still queued; if a Signal raced with the
		// timeout at this same instant, p has already been dispatched.
		for i, w := range g.waiters {
			if w == p {
				g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
				timedOut = true
				p.dispatch()
				return
			}
		}
	})
	p.park()
	timer.Cancel()
	return !timedOut
}

// Signal wakes the longest-waiting process, if any. The wakeup is scheduled
// as an immediate event, so it is safe to call from any simulation context.
func (g *Gate) Signal() {
	if len(g.waiters) == 0 {
		return
	}
	p := g.waiters[0]
	g.waiters = g.waiters[1:]
	p.k.Immediately(func() { p.dispatch() })
}

// Broadcast wakes every waiting process in FIFO order.
func (g *Gate) Broadcast() {
	ws := g.waiters
	g.waiters = nil
	for _, p := range ws {
		w := p
		w.k.Immediately(func() { w.dispatch() })
	}
}

// Waiting returns the number of processes parked on the gate.
func (g *Gate) Waiting() int { return len(g.waiters) }

// Mailbox is an unbounded FIFO message queue with blocking receive, for
// communication between Procs (and from event context into Procs).
type Mailbox struct {
	queue []any
	gate  Gate
}

// Put appends v to the mailbox and wakes one waiting receiver. Safe to call
// from event context.
func (m *Mailbox) Put(v any) {
	m.queue = append(m.queue, v)
	m.gate.Signal()
}

// Get blocks the calling process until a message is available and returns
// the oldest one.
func (m *Mailbox) Get(p *Proc) any {
	for len(m.queue) == 0 {
		m.gate.Wait(p)
	}
	v := m.queue[0]
	m.queue = m.queue[1:]
	return v
}

// GetTimeout is like Get but gives up after d. The second result reports
// whether a message was received.
func (m *Mailbox) GetTimeout(p *Proc, d time.Duration) (any, bool) {
	deadline := p.Now().Add(d)
	for len(m.queue) == 0 {
		remain := deadline.Sub(p.Now())
		if remain <= 0 {
			return nil, false
		}
		if !m.gate.WaitTimeout(p, remain) && len(m.queue) == 0 {
			return nil, false
		}
	}
	v := m.queue[0]
	m.queue = m.queue[1:]
	return v, true
}

// Len returns the number of queued messages.
func (m *Mailbox) Len() int { return len(m.queue) }
