// Package routing implements source routing for system area networks.
//
// A route is the list of output ports a packet names at each switch it
// crosses (Myrinet-style: the entire route travels in the packet header and
// each switch consumes one byte). The package provides:
//
//   - Walk/Reverse: deterministic traversal of a route over a topology,
//     and computation of the return route from the entry ports observed —
//     exactly what mapping probes rely on.
//   - Shortest: plain BFS shortest-path routes, used by the on-demand
//     mapper (which does NOT need deadlock-free routes, because the
//     retransmission protocol recovers from deadlock).
//   - UpDown: the UP*/DOWN* deadlock-free routing baseline used by
//     conventional full-map schemes (Autonet, Myrinet mapper).
//   - DeadlockFree: a channel-dependency-graph cycle check, used to verify
//     that UP*/DOWN* route sets are deadlock-free and that unconstrained
//     shortest-path route sets on cyclic topologies are not.
package routing

import (
	"errors"
	"fmt"
	"sort"

	"sanft/internal/topology"
)

// Route is a source route: the output port taken at each successive switch.
// The sending host's own injection (its single NIC port) is implicit, as is
// final delivery into the destination host.
type Route []int

// Clone returns a copy of the route.
func (r Route) Clone() Route {
	c := make(Route, len(r))
	copy(c, r)
	return c
}

// Equal reports whether two routes are identical.
func (r Route) Equal(o Route) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if r[i] != o[i] {
			return false
		}
	}
	return true
}

func (r Route) String() string {
	return fmt.Sprint([]int(r))
}

// ErrNoPath reports that a walk or search failed.
var ErrNoPath = errors.New("routing: no path")

// WalkResult describes the outcome of tracing a route across a topology.
type WalkResult struct {
	// Dst is the node where the packet ends up.
	Dst topology.NodeID
	// EntryPorts[i] is the port by which the packet entered the i-th
	// switch on the path; the final element is the port by which it
	// entered Dst. Reversing a route uses these.
	EntryPorts []int
	// Switches lists the switches crossed, in order.
	Switches []topology.NodeID
}

// Walk traces route r from host src. It fails if the route runs off an
// unwired/down link, dead-ends inside a switch (route exhausted before
// reaching a host), or has leftover hops after reaching a host.
func Walk(nw *topology.Network, src topology.NodeID, r Route) (WalkResult, error) {
	var res WalkResult
	n := nw.Node(src)
	if n.Kind != topology.Host {
		return res, fmt.Errorf("routing: walk source %s is not a host", n.Name)
	}
	cur, entry := nw.Neighbor(src, 0)
	if cur == topology.None {
		return res, fmt.Errorf("%w: %s NIC link down", ErrNoPath, n.Name)
	}
	for i := 0; ; i++ {
		node := nw.Node(cur)
		if !node.Up {
			return res, fmt.Errorf("%w: %s is down", ErrNoPath, node.Name)
		}
		res.EntryPorts = append(res.EntryPorts, entry)
		if node.Kind == topology.Host {
			if i < len(r) {
				return res, fmt.Errorf("%w: route has %d leftover hops at host %s", ErrNoPath, len(r)-i, node.Name)
			}
			res.Dst = cur
			return res, nil
		}
		res.Switches = append(res.Switches, cur)
		if i >= len(r) {
			return res, fmt.Errorf("%w: route exhausted at switch %s", ErrNoPath, node.Name)
		}
		next, nextEntry := nw.Neighbor(cur, r[i])
		if next == topology.None {
			return res, fmt.Errorf("%w: %s port %d unusable", ErrNoPath, node.Name, r[i])
		}
		cur, entry = next, nextEntry
	}
}

// Reverse computes the route from the destination of (src, r) back to src,
// using the entry ports recorded by a successful walk. Probe replies travel
// on reversed routes.
func Reverse(nw *topology.Network, src topology.NodeID, r Route) (Route, error) {
	res, err := Walk(nw, src, r)
	if err != nil {
		return nil, err
	}
	// Entry ports at switches, reversed, form the return route.
	nSw := len(res.Switches)
	rev := make(Route, nSw)
	for i := 0; i < nSw; i++ {
		rev[i] = res.EntryPorts[nSw-1-i]
	}
	return rev, nil
}

// Shortest returns a BFS shortest route from host a to host b over usable
// links, or ErrNoPath. Ties break toward lower port numbers, so the result
// is deterministic. The returned route is not necessarily deadlock-free in
// combination with other routes.
func Shortest(nw *topology.Network, a, b topology.NodeID) (Route, error) {
	if a == b {
		return nil, fmt.Errorf("routing: route to self")
	}
	preds := make(map[topology.NodeID]pred)
	visited := map[topology.NodeID]bool{a: true}
	queue := []topology.NodeID{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		n := nw.Node(cur)
		if n.Kind == topology.Host && cur != a {
			continue // routes do not pass through hosts
		}
		for p := 0; p < n.Radix(); p++ {
			next, _ := nw.Neighbor(cur, p)
			if next == topology.None || visited[next] {
				continue
			}
			if !nw.Node(next).Up {
				continue
			}
			visited[next] = true
			preds[next] = pred{cur, p}
			if next == b {
				return reconstruct(nw, a, b, preds), nil
			}
			queue = append(queue, next)
		}
	}
	return nil, fmt.Errorf("%w: %s -> %s", ErrNoPath, nw.Node(a).Name, nw.Node(b).Name)
}

// ShortestFrom returns BFS shortest routes from host a to every other
// reachable host in one traversal — the same routes Shortest(nw, a, b)
// would return pair by pair (identical visit order and tie-breaks), at
// O(nodes+links) total instead of O(hosts) separate searches. Route
// pre-installation across H hosts costs O(H·E) with this instead of the
// O(H²·E) per-pair rescan, which is what makes thousand-host fabrics
// buildable.
func ShortestFrom(nw *topology.Network, a topology.NodeID) map[topology.NodeID]Route {
	preds := make(map[topology.NodeID]pred)
	visited := map[topology.NodeID]bool{a: true}
	queue := []topology.NodeID{a}
	var hosts []topology.NodeID
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		n := nw.Node(cur)
		if n.Kind == topology.Host && cur != a {
			continue // routes do not pass through hosts
		}
		for p := 0; p < n.Radix(); p++ {
			next, _ := nw.Neighbor(cur, p)
			if next == topology.None || visited[next] {
				continue
			}
			if !nw.Node(next).Up {
				continue
			}
			visited[next] = true
			preds[next] = pred{cur, p}
			if nw.Node(next).Kind == topology.Host {
				hosts = append(hosts, next)
			}
			queue = append(queue, next)
		}
	}
	routes := make(map[topology.NodeID]Route, len(hosts))
	for _, h := range hosts {
		routes[h] = reconstruct(nw, a, h, preds)
	}
	return routes
}

func reconstruct(nw *topology.Network, a, b topology.NodeID, preds map[topology.NodeID]pred) Route {
	// Collect output ports from b back to a; the port at host a (its only
	// port) is implicit and excluded.
	var ports []int
	cur := b
	for cur != a {
		pr := preds[cur]
		if nw.Node(pr.node).Kind == topology.Switch {
			ports = append(ports, pr.port)
		}
		cur = pr.node
	}
	// ports are reversed (b-side first).
	r := make(Route, len(ports))
	for i := range ports {
		r[i] = ports[len(ports)-1-i]
	}
	return r
}

type pred struct {
	node topology.NodeID
	port int
}

// HopCount returns the number of switches on the shortest path between two
// hosts, or -1 if unreachable.
func HopCount(nw *topology.Network, a, b topology.NodeID) int {
	r, err := Shortest(nw, a, b)
	if err != nil {
		return -1
	}
	return len(r)
}

// hostsOf returns sorted host IDs for deterministic iteration.
func hostsOf(nw *topology.Network) []topology.NodeID {
	hs := nw.Hosts()
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	return hs
}
