package routing

import (
	"fmt"
	"sort"

	"sanft/internal/topology"
)

// UpDown implements the UP*/DOWN* deadlock-free routing algorithm
// (Autonet; used by the stock Myrinet mapper). A breadth-first spanning
// tree is built from a root switch; every link is oriented so that its
// "up" end is the endpoint closer to the root (ties break toward the lower
// node ID). A legal route consists of zero or more up-direction hops
// followed by zero or more down-direction hops; such route sets cannot
// create cyclic channel dependencies, so they are deadlock-free — at the
// cost of generally not being shortest paths and concentrating traffic
// near the root.
type UpDown struct {
	nw    *topology.Network
	root  topology.NodeID
	level map[topology.NodeID]int
}

// NewUpDown builds UP*/DOWN* orientation over the usable part of the
// network. If root is topology.None, the lowest-ID up switch is used (or
// the lowest-ID host in a switchless network).
func NewUpDown(nw *topology.Network, root topology.NodeID) (*UpDown, error) {
	if root == topology.None {
		for _, n := range nw.Nodes {
			if n.Kind == topology.Switch && n.Up {
				root = n.ID
				break
			}
		}
		if root == topology.None && len(nw.Nodes) > 0 {
			root = nw.Nodes[0].ID
		}
	}
	if root == topology.None {
		return nil, fmt.Errorf("routing: empty network")
	}
	ud := &UpDown{nw: nw, root: root, level: make(map[topology.NodeID]int)}
	// BFS levels over usable links.
	ud.level[root] = 0
	queue := []topology.NodeID{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		n := nw.Node(cur)
		if n.Kind == topology.Host && cur != root {
			continue
		}
		for p := 0; p < n.Radix(); p++ {
			next, _ := nw.Neighbor(cur, p)
			if next == topology.None {
				continue
			}
			if _, seen := ud.level[next]; seen {
				continue
			}
			ud.level[next] = ud.level[cur] + 1
			queue = append(queue, next)
		}
	}
	return ud, nil
}

// Root returns the spanning-tree root.
func (ud *UpDown) Root() topology.NodeID { return ud.root }

// Level returns the BFS level of a node (distance from root), or -1 if the
// node is unreachable from the root.
func (ud *UpDown) Level(n topology.NodeID) int {
	l, ok := ud.level[n]
	if !ok {
		return -1
	}
	return l
}

// isUp reports whether traversing from node a to node b is an up-direction
// hop: b is strictly closer to the root, or equally close with a lower ID.
func (ud *UpDown) isUp(a, b topology.NodeID) bool {
	la, oka := ud.level[a]
	lb, okb := ud.level[b]
	if !oka || !okb {
		return false
	}
	if la != lb {
		return lb < la
	}
	return b < a
}

// Route returns an UP*/DOWN*-legal route from host a to host b: a shortest
// route among legal ones (BFS over the (node, descended) state space), or
// ErrNoPath. Host→switch hops count as up; switch→host hops as down.
func (ud *UpDown) Route(a, b topology.NodeID) (Route, error) {
	if a == b {
		return nil, fmt.Errorf("routing: route to self")
	}
	type state struct {
		node      topology.NodeID
		descended bool
	}
	type stPred struct {
		st   state
		port int
	}
	start := state{a, false}
	preds := make(map[state]stPred)
	visited := map[state]bool{start: true}
	queue := []state{start}
	var goal state
	found := false
	for len(queue) > 0 && !found {
		cur := queue[0]
		queue = queue[1:]
		n := ud.nw.Node(cur.node)
		if n.Kind == topology.Host && cur.node != a {
			continue
		}
		for p := 0; p < n.Radix(); p++ {
			next, _ := ud.nw.Neighbor(cur.node, p)
			if next == topology.None || !ud.nw.Node(next).Up {
				continue
			}
			up := ud.isUp(cur.node, next)
			// Hops into a host are always "down" legs (hosts are leaves).
			if ud.nw.Node(next).Kind == topology.Host {
				up = false
			}
			// Hops out of the source host are always "up" legs.
			if cur.node == a {
				up = true
			}
			if cur.descended && up {
				continue // up after down is illegal
			}
			ns := state{next, cur.descended || !up}
			if visited[ns] {
				continue
			}
			visited[ns] = true
			preds[ns] = stPred{cur, p}
			if next == b {
				goal, found = ns, true
				break
			}
			queue = append(queue, ns)
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: %s -> %s (up*/down*)", ErrNoPath, ud.nw.Node(a).Name, ud.nw.Node(b).Name)
	}
	// Reconstruct output ports at switches.
	var ports []int
	cur := goal
	for cur != (state{a, false}) {
		pr, ok := preds[cur]
		if !ok {
			break
		}
		if ud.nw.Node(pr.st.node).Kind == topology.Switch {
			ports = append(ports, pr.port)
		}
		cur = pr.st
	}
	r := make(Route, len(ports))
	for i := range ports {
		r[i] = ports[len(ports)-1-i]
	}
	return r, nil
}

// AllRoutes computes UP*/DOWN* routes between every ordered pair of hosts.
// This is what a conventional full-map scheme computes after (re)mapping
// the whole network.
func (ud *UpDown) AllRoutes() (map[[2]topology.NodeID]Route, error) {
	hosts := hostsOf(ud.nw)
	out := make(map[[2]topology.NodeID]Route, len(hosts)*(len(hosts)-1))
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			r, err := ud.Route(a, b)
			if err != nil {
				return nil, err
			}
			out[[2]topology.NodeID{a, b}] = r
		}
	}
	return out, nil
}

// SourcedRoute pairs a route with its source host, as needed for
// dependency analysis.
type SourcedRoute struct {
	Src   topology.NodeID
	Route Route
}

// channel is a directed use of a link.
type channel struct {
	link int
	from topology.NodeID
}

// DeadlockFree builds the channel dependency graph induced by the given
// route set and reports whether it is acyclic. Routes that fail to walk are
// an error: dependency analysis on broken routes is meaningless.
func DeadlockFree(nw *topology.Network, routes []SourcedRoute) (bool, error) {
	deps := make(map[channel]map[channel]bool)
	addDep := func(a, b channel) {
		if deps[a] == nil {
			deps[a] = make(map[channel]bool)
		}
		deps[a][b] = true
	}
	for _, sr := range routes {
		res, err := Walk(nw, sr.Src, sr.Route)
		if err != nil {
			return false, fmt.Errorf("routing: route %v from %s: %v", sr.Route, nw.Node(sr.Src).Name, err)
		}
		// Channels crossed: src->sw0, sw0->sw1, ..., swN->dst.
		path := append([]topology.NodeID{sr.Src}, res.Switches...)
		path = append(path, res.Dst)
		var chans []channel
		for i := 0; i+1 < len(path); i++ {
			l := linkBetweenVia(nw, path[i], res, i)
			chans = append(chans, channel{l, path[i]})
		}
		for i := 0; i+1 < len(chans); i++ {
			addDep(chans[i], chans[i+1])
		}
	}
	// Cycle detection via iterative DFS with colors.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[channel]int)
	var nodes []channel
	for c := range deps {
		nodes = append(nodes, c)
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].link != nodes[j].link {
			return nodes[i].link < nodes[j].link
		}
		return nodes[i].from < nodes[j].from
	})
	var visit func(c channel) bool
	visit = func(c channel) bool {
		color[c] = gray
		for d := range deps[c] {
			switch color[d] {
			case gray:
				return false
			case white:
				if !visit(d) {
					return false
				}
			}
		}
		color[c] = black
		return true
	}
	for _, c := range nodes {
		if color[c] == white {
			if !visit(c) {
				return false, nil
			}
		}
	}
	return true, nil
}

// linkBetweenVia returns the link ID crossed leaving the i-th node of a
// walked path.
func linkBetweenVia(nw *topology.Network, from topology.NodeID, res WalkResult, i int) int {
	// The entry port of node i+1 identifies the link.
	var enteredNode topology.NodeID
	if i < len(res.Switches) {
		enteredNode = res.Switches[i]
	} else {
		enteredNode = res.Dst
	}
	entryPort := res.EntryPorts[i]
	return nw.Node(enteredNode).Ports[entryPort].ID
}
