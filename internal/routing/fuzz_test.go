package routing

import (
	"testing"
)

func TestParseRoute(t *testing.T) {
	cases := []struct {
		in   string
		want Route
		ok   bool
	}{
		{"-", Route{}, true},
		{"0", Route{0}, true},
		{"3.0.7", Route{3, 0, 7}, true},
		{"255", Route{255}, true},
		{" 3.1 ", Route{3, 1}, true}, // outer whitespace trimmed
		{"", nil, false},
		{"256", nil, false},
		{"-1", nil, false},
		{"3..7", nil, false},
		{"03", nil, false},
		{"+3", nil, false},
		{"3,7", nil, false},
		{"a", nil, false},
		{"3.x", nil, false},
	}
	for _, c := range cases {
		got, err := ParseRoute(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseRoute(%q): err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && !got.Equal(c.want) {
			t.Errorf("ParseRoute(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestCompactRoundTrip(t *testing.T) {
	for _, r := range []Route{{}, {0}, {1, 2, 3}, {255, 0, 255}} {
		got, err := ParseRoute(r.Compact())
		if err != nil {
			t.Fatalf("route %v: %v", r, err)
		}
		if !got.Equal(r) {
			t.Fatalf("route %v round-tripped to %v", r, got)
		}
	}
}

// FuzzRouteParse: the parser must never panic, and any accepted input must
// re-render and re-parse to the same route (canonical form is a fixpoint).
func FuzzRouteParse(f *testing.F) {
	for _, s := range []string{"-", "0", "3.0.7", "255.255", "03", "+1", "1..2", "a.b", ""} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := ParseRoute(s)
		if err != nil {
			return
		}
		if len(r) > MaxHops {
			t.Fatalf("accepted %d hops from %q, max %d", len(r), s, MaxHops)
		}
		for i, p := range r {
			if p < 0 || p > MaxPort {
				t.Fatalf("accepted out-of-range port %d at %d from %q", p, i, s)
			}
		}
		c := r.Compact()
		r2, err := ParseRoute(c)
		if err != nil {
			t.Fatalf("compact form %q of accepted %q does not re-parse: %v", c, s, err)
		}
		if !r2.Equal(r) {
			t.Fatalf("%q -> %v -> %q -> %v: not a fixpoint", s, r, c, r2)
		}
	})
}
