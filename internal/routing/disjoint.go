package routing

import (
	"sanft/internal/topology"
)

// This file provides multi-path route computation for ECMP-style route
// sets: greedy link-disjoint route enumeration (what the mapper hands out
// as failover candidates) and an exact max-flow bound (what the structural
// tests assert against).

// DisjointRoutes returns up to k routes from host a to host b whose
// switch-to-switch links are pairwise disjoint (the two NIC links are
// necessarily shared), shortest first. Routes are found greedily: each
// successive BFS excludes every fabric link used by earlier routes, so the
// result is
// deterministic (same tie-breaks as Shortest) and each route is a shortest
// path in the residual topology. Greedy search can find fewer than the
// true maximum on adversarial graphs; callers that need the exact bound
// use MaxEdgeDisjoint.
func DisjointRoutes(nw *topology.Network, a, b topology.NodeID, k int) []Route {
	var routes []Route
	used := make(map[int]bool) // link IDs consumed by earlier routes
	for len(routes) < k {
		r, ok := shortestExcluding(nw, a, b, used)
		if !ok {
			break
		}
		res, err := Walk(nw, a, r)
		if err != nil || res.Dst != b {
			break
		}
		// Mark the switch-to-switch links the route crosses. The two NIC
		// links are shared by every a→b route by construction (hosts have
		// one port), so they never count against disjointness.
		for i, sw := range res.Switches {
			l := nw.Node(sw).Ports[r[i]]
			if l.Other(sw).Node != b {
				used[l.ID] = true
			}
		}
		routes = append(routes, r)
	}
	return routes
}

// shortestExcluding is Shortest with a link exclusion set (switch-to-switch
// links only; NIC links are never excluded).
func shortestExcluding(nw *topology.Network, a, b topology.NodeID, used map[int]bool) (Route, bool) {
	if a == b {
		return nil, false
	}
	preds := make(map[topology.NodeID]pred)
	visited := map[topology.NodeID]bool{a: true}
	queue := []topology.NodeID{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		n := nw.Node(cur)
		if n.Kind == topology.Host && cur != a {
			continue
		}
		for p := 0; p < n.Radix(); p++ {
			l := n.Ports[p]
			if l == nil || !nw.LinkUsable(l) {
				continue
			}
			if used[l.ID] {
				continue
			}
			e := l.Other(cur)
			next := e.Node
			if visited[next] || !nw.Node(next).Up {
				continue
			}
			visited[next] = true
			preds[next] = pred{cur, p}
			if next == b {
				return reconstruct(nw, a, b, preds), true
			}
			queue = append(queue, next)
		}
	}
	return nil, false
}

// MaxEdgeDisjoint returns the exact maximum number of link-disjoint paths
// between hosts a and b (Menger's theorem), computed as a unit-capacity
// max flow with BFS augmentation (Edmonds-Karp). Each undirected link is a
// capacity-1 edge; intermediate hosts cannot relay. Since both endpoints
// are single-port hosts the answer is capped at 1 by their NIC links
// unless counted on the switch fabric alone — so the flow is computed
// between the switches the two hosts attach to, which is the quantity the
// fat-tree/dragonfly/torus structural tests assert (fabric path
// diversity, not NIC fan-out).
func MaxEdgeDisjoint(nw *topology.Network, a, b topology.NodeID) int {
	sa, _ := nw.Neighbor(a, 0)
	sb, _ := nw.Neighbor(b, 0)
	if sa == topology.None || sb == topology.None {
		return 0
	}
	if sa == sb {
		// Same edge switch: fabric diversity is not in play; the only
		// path constraint is the crossbar itself.
		return 1
	}
	// Residual capacity per (link, direction): flow[l.ID] is +1 when a
	// unit flows A→B on the link, -1 for B→A, 0 when unused.
	flow := make(map[int]int)
	total := 0
	for {
		// BFS for an augmenting path sa → sb over switches only.
		type hop struct {
			node topology.NodeID
			port int
		}
		preds := make(map[topology.NodeID]hop)
		visited := map[topology.NodeID]bool{sa: true}
		queue := []topology.NodeID{sa}
		found := false
		for len(queue) > 0 && !found {
			cur := queue[0]
			queue = queue[1:]
			n := nw.Node(cur)
			for p := 0; p < n.Radix(); p++ {
				l := n.Ports[p]
				if l == nil || !nw.LinkUsable(l) {
					continue
				}
				// Direction of this traversal on the link.
				dir := 1
				if l.B.Node == cur {
					dir = -1
				}
				// Residual: capacity 1 each way, net flow cancels.
				if flow[l.ID]*dir >= 1 {
					continue
				}
				e := l.Other(cur)
				next := e.Node
				if visited[next] || nw.Node(next).Kind != topology.Switch || !nw.Node(next).Up {
					continue
				}
				visited[next] = true
				preds[next] = hop{cur, p}
				if next == sb {
					found = true
					break
				}
				queue = append(queue, next)
			}
		}
		if !found {
			return total
		}
		// Augment one unit along the path.
		cur := sb
		for cur != sa {
			h := preds[cur]
			l := nw.Node(h.node).Ports[h.port]
			if l.A.Node == h.node {
				flow[l.ID]++
			} else {
				flow[l.ID]--
			}
			cur = h.node
		}
		total++
	}
}
