package routing

import (
	"errors"
	"testing"
	"testing/quick"

	"sanft/internal/topology"
)

func TestWalkStar(t *testing.T) {
	nw, hosts := topology.Star(3)
	// host0 -> switch port 1 -> host1.
	res, err := Walk(nw, hosts[0], Route{1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dst != hosts[1] {
		t.Fatalf("walk ended at %d, want host1 %d", res.Dst, hosts[1])
	}
	if len(res.Switches) != 1 {
		t.Fatalf("crossed %d switches, want 1", len(res.Switches))
	}
}

func TestWalkErrors(t *testing.T) {
	nw, hosts := topology.Star(3)
	if _, err := Walk(nw, hosts[0], Route{}); err == nil {
		t.Fatal("route exhausted at switch should fail")
	}
	if _, err := Walk(nw, hosts[0], Route{1, 0}); err == nil {
		t.Fatal("leftover hops at a host should fail")
	}
	if _, err := Walk(nw, hosts[0], Route{7}); err == nil {
		t.Fatal("unwired port should fail")
	}
	// Down link en route.
	nw.KillLink(nw.Node(hosts[1]).Ports[0])
	if _, err := Walk(nw, hosts[0], Route{1}); !errors.Is(err, ErrNoPath) {
		t.Fatalf("walk over dead link: err = %v, want ErrNoPath", err)
	}
}

func TestReverseRoundTrip(t *testing.T) {
	nw, hosts := topology.Chain(3, 2, 1)
	a, b := hosts[0][0], hosts[2][1]
	fwd, err := Shortest(nw, a, b)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := Reverse(nw, a, fwd)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Walk(nw, b, rev)
	if err != nil {
		t.Fatalf("reverse route does not walk: %v", err)
	}
	if res.Dst != a {
		t.Fatalf("reverse route ends at %d, want %d", res.Dst, a)
	}
}

func TestShortestLengths(t *testing.T) {
	nw, hosts := topology.Chain(4, 1, 1)
	for i := 1; i < 4; i++ {
		r, err := Shortest(nw, hosts[0][0], hosts[i][0])
		if err != nil {
			t.Fatal(err)
		}
		if len(r) != i+1 {
			t.Fatalf("route to switch-%d host has %d hops, want %d", i, len(r), i+1)
		}
		res, err := Walk(nw, hosts[0][0], r)
		if err != nil || res.Dst != hosts[i][0] {
			t.Fatalf("shortest route does not reach target: %v (dst %d)", err, res.Dst)
		}
	}
}

func TestShortestAvoidsDeadLink(t *testing.T) {
	nw, hosts := topology.DoubleStar(4)
	a, b := hosts[0], hosts[3] // opposite switches
	r1, err := Shortest(nw, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the trunk link the route uses.
	res, _ := Walk(nw, a, r1)
	link := nw.Node(res.Switches[0]).Ports[r1[0]]
	nw.KillLink(link)
	r2, err := Shortest(nw, a, b)
	if err != nil {
		t.Fatalf("no alternate route found: %v", err)
	}
	if r2.Equal(r1) {
		t.Fatal("route unchanged after killing its trunk link")
	}
	if res2, err := Walk(nw, a, r2); err != nil || res2.Dst != b {
		t.Fatalf("alternate route invalid: %v", err)
	}
}

func TestShortestUnreachable(t *testing.T) {
	nw, hosts := topology.Star(2)
	nw.KillLink(nw.Node(hosts[1]).Ports[0])
	if _, err := Shortest(nw, hosts[0], hosts[1]); !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
}

func TestHopCount(t *testing.T) {
	f := topology.NewFig2()
	for i, want := range []int{1, 2, 3, 4} {
		if got := HopCount(f.Net, f.Mapper, f.Targets[i]); got != want {
			t.Fatalf("HopCount(mapper, target%d) = %d, want %d", i, got, want)
		}
	}
	nw, hosts := topology.Star(2)
	nw.KillSwitch(nw.Switches()[0])
	if got := HopCount(nw, hosts[0], hosts[1]); got != -1 {
		t.Fatalf("HopCount through dead switch = %d, want -1", got)
	}
}

func TestUpDownRoutesWalk(t *testing.T) {
	f := topology.NewFig2()
	ud, err := NewUpDown(f.Net, topology.None)
	if err != nil {
		t.Fatal(err)
	}
	all, err := ud.AllRoutes()
	if err != nil {
		t.Fatal(err)
	}
	hosts := f.Net.Hosts()
	wantPairs := len(hosts) * (len(hosts) - 1)
	if len(all) != wantPairs {
		t.Fatalf("got %d routes, want %d", len(all), wantPairs)
	}
	for pair, r := range all {
		res, err := Walk(f.Net, pair[0], r)
		if err != nil {
			t.Fatalf("route %v for %v does not walk: %v", r, pair, err)
		}
		if res.Dst != pair[1] {
			t.Fatalf("route for %v ends at %d", pair, res.Dst)
		}
	}
}

func TestUpDownDeadlockFree(t *testing.T) {
	// On a ring (cyclic topology) UP*/DOWN* routes must be deadlock-free
	// while naive shortest routes need not be.
	nw, hosts := topology.Ring(4, 1)
	ud, err := NewUpDown(nw, topology.None)
	if err != nil {
		t.Fatal(err)
	}
	all, err := ud.AllRoutes()
	if err != nil {
		t.Fatal(err)
	}
	var routes []SourcedRoute
	for pair, r := range all {
		routes = append(routes, SourcedRoute{pair[0], r})
	}
	ok, err := DeadlockFree(nw, routes)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("UP*/DOWN* route set has a cyclic channel dependency")
	}
	_ = hosts
}

func TestManualCycleIsDetected(t *testing.T) {
	// Construct routes that go all the way around the ring in one
	// direction from each switch's host: a textbook channel-dependency
	// cycle.
	nw, hosts := topology.Ring(4, 1)
	var routes []SourcedRoute
	for i := 0; i < 4; i++ {
		src := hosts[i][0]
		dst := hosts[(i+3)%4][0] // 3 hops clockwise
		r := clockwiseRoute(t, nw, src, dst, 3)
		routes = append(routes, SourcedRoute{src, r})
	}
	ok, err := DeadlockFree(nw, routes)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("cyclic route set reported deadlock-free")
	}
}

// clockwiseRoute builds a route from src that crosses `hops` switches
// always moving to the next ring switch in ascending order, then exits to
// the host.
func clockwiseRoute(t *testing.T, nw *topology.Network, src, dst topology.NodeID, hops int) Route {
	t.Helper()
	var r Route
	cur, _ := nw.Neighbor(src, 0) // the switch src hangs off
	for i := 0; i < hops; i++ {
		n := nw.Node(cur)
		// Find the port leading to the next switch (ascending ID, wrap).
		next := topology.None
		port := -1
		for p := 0; p < n.Radix(); p++ {
			nb, _ := nw.Neighbor(cur, p)
			if nb == topology.None || nw.Node(nb).Kind != topology.Switch {
				continue
			}
			// next ring switch: ID = cur+1 mod: switches have IDs 0..3.
			if (nb == cur+1) || (cur == 3 && nb == 0) {
				next, port = nb, p
				break
			}
		}
		if next == topology.None {
			t.Fatalf("no clockwise neighbor from switch %d", cur)
		}
		r = append(r, port)
		cur = next
	}
	// Exit to dst.
	n := nw.Node(cur)
	for p := 0; p < n.Radix(); p++ {
		if nb, _ := nw.Neighbor(cur, p); nb == dst {
			return append(r, p)
		}
	}
	t.Fatalf("dst %d not on switch %d", dst, cur)
	return nil
}

func TestUpDownAvoidsDownSwitch(t *testing.T) {
	f := topology.NewFig2()
	// Killing S1 disconnects S2/S3 from S0 (chain backbone), so routes
	// from mapper to targets 2 and 3 must fail, but target 0 (same
	// switch) must still work. Rebuild UP*/DOWN* after the failure, as a
	// full-remap scheme would.
	f.Net.KillSwitch(f.Switches[1])
	ud, err := NewUpDown(f.Net, topology.None)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ud.Route(f.Mapper, f.Targets[0]); err != nil {
		t.Fatalf("same-switch route should survive: %v", err)
	}
	if _, err := ud.Route(f.Mapper, f.Targets[2]); err == nil {
		t.Fatal("route across dead backbone switch should fail")
	}
}

func TestRouteCloneEqual(t *testing.T) {
	r := Route{1, 2, 3}
	c := r.Clone()
	if !r.Equal(c) {
		t.Fatal("clone not equal")
	}
	c[0] = 9
	if r[0] == 9 {
		t.Fatal("clone aliases original")
	}
	if r.Equal(Route{1, 2}) || r.Equal(Route{1, 2, 4}) {
		t.Fatal("Equal false positives")
	}
}

func TestPropertyShortestWalksEverywhere(t *testing.T) {
	// On random connected topologies, Shortest between any two hosts
	// must produce a route that walks to the destination.
	f := func(seed int64, ai, bi uint8) bool {
		nw, hosts := topology.Random(8, 4, 8, 3.0, seed)
		if len(hosts) < 2 {
			return true
		}
		a := hosts[int(ai)%len(hosts)]
		b := hosts[int(bi)%len(hosts)]
		if a == b {
			return true
		}
		r, err := Shortest(nw, a, b)
		if err != nil {
			return false
		}
		res, err := Walk(nw, a, r)
		return err == nil && res.Dst == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUpDownAlwaysDeadlockFree(t *testing.T) {
	f := func(seed int64) bool {
		nw, hosts := topology.Random(6, 4, 8, 3.2, seed)
		if len(hosts) < 2 {
			return true
		}
		ud, err := NewUpDown(nw, topology.None)
		if err != nil {
			return false
		}
		all, err := ud.AllRoutes()
		if err != nil {
			return false
		}
		var routes []SourcedRoute
		for pair, r := range all {
			routes = append(routes, SourcedRoute{pair[0], r})
		}
		ok, err := DeadlockFree(nw, routes)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
