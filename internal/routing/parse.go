package routing

import (
	"fmt"
	"strconv"
	"strings"
)

// MaxHops bounds a parsed route's length: a source route longer than any
// sane diameter is malformed input, not a network.
const MaxHops = 64

// MaxPort bounds a parsed port number (switch radix is a hardware byte).
const MaxPort = 255

// Compact renders the route in its canonical textual form: port numbers
// joined by dots ("3.0.7"); the empty route renders as "-". ParseRoute
// inverts it.
func (r Route) Compact() string {
	if len(r) == 0 {
		return "-"
	}
	parts := make([]string, len(r))
	for i, p := range r {
		parts[i] = strconv.Itoa(p)
	}
	return strings.Join(parts, ".")
}

// ParseRoute parses the compact textual route form produced by Compact:
// dot-separated decimal port numbers, or "-" for the empty route. Port
// numbers must fit a switch port byte (0..MaxPort) and routes are limited
// to MaxHops hops. Used by tools that accept routes on the command line
// and corpus files that pin them.
func ParseRoute(s string) (Route, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("routing: empty route string (use %q for the empty route)", "-")
	}
	if s == "-" {
		return Route{}, nil
	}
	parts := strings.Split(s, ".")
	if len(parts) > MaxHops {
		return nil, fmt.Errorf("routing: route has %d hops, max %d", len(parts), MaxHops)
	}
	r := make(Route, 0, len(parts))
	for i, part := range parts {
		if part == "" {
			return nil, fmt.Errorf("routing: empty hop at position %d in %q", i, s)
		}
		// Reject non-canonical spellings ("+3", "03", " 3") so that
		// parse∘compact is the identity on accepted inputs.
		if part[0] == '+' || (len(part) > 1 && part[0] == '0') {
			return nil, fmt.Errorf("routing: non-canonical port %q at position %d", part, i)
		}
		p, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("routing: bad port %q at position %d: %w", part, i, err)
		}
		if p < 0 || p > MaxPort {
			return nil, fmt.Errorf("routing: port %d at position %d out of range [0, %d]", p, i, MaxPort)
		}
		r = append(r, p)
	}
	return r, nil
}
