package trace

import (
	"strings"
	"testing"

	"sanft/internal/sim"
)

func TestFlightRecorderSnapshotsOnAnomaly(t *testing.T) {
	f := NewFlightRecorder(16)
	f.Trace(ev(0, EvSend))
	f.Trace(ev(1, EvInject))
	f.Trace(Event{At: sim.Time(5000), Node: 1, Kind: EvWatchdog, Peer: 2})
	f.Trace(ev(3, EvRetransmit))

	snaps := f.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %d, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Trigger != "watchdog" || s.At != sim.Time(5000) {
		t.Fatalf("snapshot = %+v", s)
	}
	// The snapshot includes the anomaly itself, but not later events.
	if len(s.Events) != 3 || s.Events[2].Kind != EvWatchdog {
		t.Fatalf("frozen window = %v", s.Events)
	}
	if f.Triggered() != 1 {
		t.Fatalf("triggered = %d", f.Triggered())
	}
	// Non-anomaly kinds never freeze.
	if f.Ring().Total() != 4 {
		t.Fatalf("ring total = %d", f.Ring().Total())
	}
}

func TestFlightRecorderMaxSnapshots(t *testing.T) {
	f := NewFlightRecorder(16)
	f.MaxSnapshots = 2
	for i := 0; i < 5; i++ {
		f.Trace(Event{At: sim.Time(i * 1000), Node: 1, Kind: EvQuarantine, Peer: 2})
	}
	if len(f.Snapshots()) != 2 {
		t.Fatalf("retained %d snapshots, want 2", len(f.Snapshots()))
	}
	if f.Triggered() != 5 {
		t.Fatalf("triggered = %d, want 5 (drops still counted)", f.Triggered())
	}
}

func TestFlightRecorderSnapshotWindow(t *testing.T) {
	f := NewFlightRecorder(64)
	f.SnapshotWindow = 4
	for i := 0; i < 20; i++ {
		f.Trace(ev(i, EvSend))
	}
	f.TriggerSnapshot("invariant:buffers", sim.Time(99000))
	snaps := f.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	s := snaps[0]
	if s.Trigger != "invariant:buffers" {
		t.Fatalf("trigger = %q", s.Trigger)
	}
	if len(s.Events) != 4 || s.Events[0].Seq != 16 || s.Events[3].Seq != 19 {
		t.Fatalf("window = %v, want newest 4 events (seqs 16..19)", s.Events)
	}
	if s.Total != 20 {
		t.Fatalf("snapshot total = %d, want 20", s.Total)
	}
}

func TestFlightRecorderCustomTriggers(t *testing.T) {
	f := NewFlightRecorder(16)
	if !f.Triggers[EvWatchdog] || !f.Triggers[EvUnreachable] || !f.Triggers[EvQuarantine] {
		t.Fatal("default trigger set should contain the anomaly kinds")
	}
	delete(f.Triggers, EvWatchdog)
	f.Triggers[EvFabDrop] = true
	f.Trace(Event{Kind: EvWatchdog, Node: 1, Peer: 2})
	f.Trace(Event{Kind: EvFabDrop, Node: 1, Peer: 2})
	if f.Triggered() != 1 || f.Snapshots()[0].Trigger != "fab-drop" {
		t.Fatalf("custom triggers not honoured: %d triggers", f.Triggered())
	}
}

func TestFlightRecorderDump(t *testing.T) {
	f := NewFlightRecorder(16)
	f.Trace(ev(0, EvSend))
	f.Trace(Event{At: sim.Time(7000), Node: 3, Kind: EvUnreachable, Peer: 4})
	d := f.Dump()
	for _, want := range []string{
		"1 triggers, 1 snapshots retained",
		"trigger=unreachable",
		"unreachable",
	} {
		if !strings.Contains(d, want) {
			t.Fatalf("dump missing %q:\n%s", want, d)
		}
	}
	// Dump must be deterministic.
	if f.Dump() != d {
		t.Fatal("dump not stable across calls")
	}
}
