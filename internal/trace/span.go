package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sanft/internal/sim"
	"sanft/internal/topology"
)

// SpanKey identifies one message span: the sending node, the receiving
// node, and the per-destination VMMC message ID stamped at send time.
type SpanKey struct {
	Src, Dst topology.NodeID
	Msg      uint64
}

// Span is the reconstructed end-to-end story of one message: every traced
// event that carried its identity, in emission order, plus derived
// accounting.
type Span struct {
	Key SpanKey
	// Start is the EvHostSend instant (or the first event seen); End the
	// EvMsgComplete instant (zero if the message never completed).
	Start, End sim.Time
	Events     []Event

	// Retransmits counts go-back-N re-queues of the span's frames.
	Retransmits int
	// Drops counts frames of this span lost anywhere: send-side error
	// injection, fabric drops, and receive-side discards.
	Drops int
	// Blocked sums the wormhole head-of-line blocking intervals of the
	// span's packets (EvLinkBlock to the matching EvLinkAcquire, or to
	// the watchdog/drop that killed the worm).
	Blocked time.Duration
	// RetransWait sums, per retransmission, the time since that frame's
	// previous transmission attempt — the latency component spent waiting
	// for the periodic timer to recover a loss.
	RetransWait time.Duration

	complete bool
}

// Complete reports whether the span saw its EvMsgComplete.
func (s *Span) Complete() bool { return s.complete }

// Latency returns End-Start for complete spans, 0 otherwise.
func (s *Span) Latency() time.Duration {
	if !s.complete {
		return 0
	}
	return s.End.Sub(s.Start)
}

// spanKeyOf normalizes an event to its message identity: events recorded
// at the receiver swap Node/Peer so both sides land in one span.
func spanKeyOf(e Event) SpanKey {
	if e.Kind.receiverSide() {
		return SpanKey{Src: e.Peer, Dst: e.Node, Msg: e.Msg}
	}
	return SpanKey{Src: e.Node, Dst: e.Peer, Msg: e.Msg}
}

// BuildSpans groups events by message identity and derives per-span
// accounting. Events without a message ID (control frames, remap
// lifecycle) are skipped. Spans are returned sorted by (Src, Dst, Msg).
func BuildSpans(events []Event) []*Span {
	spans := make(map[SpanKey]*Span)
	var order []SpanKey
	for _, e := range events {
		if e.Msg == 0 {
			continue
		}
		key := spanKeyOf(e)
		sp := spans[key]
		if sp == nil {
			sp = &Span{Key: key, Start: e.At}
			spans[key] = sp
			order = append(order, key)
		}
		sp.Events = append(sp.Events, e)
		switch e.Kind {
		case EvHostSend:
			sp.Start = e.At
		case EvMsgComplete:
			sp.End = e.At
			sp.complete = true
		case EvRetransmit:
			sp.Retransmits++
		case EvErrDrop, EvFabDrop, EvDupDrop, EvOooDrop, EvCrcDrop:
			sp.Drops++
		}
	}
	for _, sp := range spans {
		sp.Blocked = blockedTime(sp.Events)
		sp.RetransWait = retransWait(sp.Events)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Msg < b.Msg
	})
	out := make([]*Span, len(order))
	for i, k := range order {
		out[i] = spans[k]
	}
	return out
}

// blockKey distinguishes concurrent worms of one span (chunks, or an
// original racing its retransmitted clone) on one directed channel.
type blockKey struct {
	gen  uint32
	seq  uint64
	link int32
	dir  uint8
}

// blockedTime pairs each EvLinkBlock with the event that resolved it —
// the matching EvLinkAcquire, or the watchdog/fabric drop that killed the
// blocked worm — and sums the intervals.
func blockedTime(events []Event) time.Duration {
	open := make(map[blockKey]sim.Time)
	var total time.Duration
	for _, e := range events {
		switch e.Kind {
		case EvLinkBlock:
			open[blockKey{e.Gen, e.Seq, e.Link, e.Dir}] = e.At
		case EvLinkAcquire:
			k := blockKey{e.Gen, e.Seq, e.Link, e.Dir}
			if t0, ok := open[k]; ok {
				total += e.At.Sub(t0)
				delete(open, k)
			}
		case EvWatchdog, EvFabDrop:
			// The worm died; close whatever block it was parked in.
			for k, t0 := range open {
				if k.gen == e.Gen && k.seq == e.Seq {
					total += e.At.Sub(t0)
					delete(open, k)
				}
			}
		}
	}
	return total
}

// retransWait sums, for each retransmission, the gap back to the frame's
// previous transmission attempt (send, injection, drop, or earlier
// retransmission of the same (gen, seq)).
func retransWait(events []Event) time.Duration {
	type frameID struct {
		gen uint32
		seq uint64
	}
	last := make(map[frameID]sim.Time)
	var total time.Duration
	for _, e := range events {
		id := frameID{e.Gen, e.Seq}
		switch e.Kind {
		case EvSend, EvInject, EvErrDrop, EvFabDrop:
			last[id] = e.At
		case EvRetransmit:
			if t0, ok := last[id]; ok {
				total += e.At.Sub(t0)
			}
			last[id] = e.At
		}
	}
	return total
}

// RecoveryTimeline is the reconstructed story around one anomaly: the
// trigger event plus every event in a time window that shares the
// anomaly's path (same node pair) or, for fabric anomalies, its link.
type RecoveryTimeline struct {
	Trigger Event
	Window  []Event
}

// RecoveryTimelines extracts one timeline per anomaly event (Kind.Anomaly),
// with Window spanning [Trigger.At-before, Trigger.At+after]. At most max
// timelines are returned (0 means no bound).
func RecoveryTimelines(events []Event, before, after time.Duration, max int) []RecoveryTimeline {
	var out []RecoveryTimeline
	for _, a := range events {
		if !a.Kind.Anomaly() {
			continue
		}
		if max > 0 && len(out) >= max {
			break
		}
		lo, hi := a.At.Add(-before), a.At.Add(after)
		var win []Event
		for _, e := range events {
			if e.At.Before(lo) || e.At.After(hi) {
				continue
			}
			if related(a, e) {
				win = append(win, e)
			}
		}
		out = append(out, RecoveryTimeline{Trigger: a, Window: win})
	}
	return out
}

// RecoveryFromSnapshots reconstructs timelines from flight-recorder
// snapshots instead of the live ring — the fallback for long runs where
// the anomalies have already scrolled out of the ring. Each anomaly-kind
// snapshot ends at its trigger event (the recorder freezes after
// recording it), so the timeline covers [Trigger.At-before, Trigger.At];
// external triggers (invariant violations) carry no anchor event and are
// skipped. At most max timelines are returned (0 means no bound).
func RecoveryFromSnapshots(snaps []Snapshot, before time.Duration, max int) []RecoveryTimeline {
	var out []RecoveryTimeline
	for _, s := range snaps {
		if max > 0 && len(out) >= max {
			break
		}
		if len(s.Events) == 0 {
			continue
		}
		a := s.Events[len(s.Events)-1]
		if !a.Kind.Anomaly() {
			continue
		}
		lo := a.At.Add(-before)
		var win []Event
		for _, e := range s.Events {
			if e.At.Before(lo) {
				continue
			}
			if related(a, e) {
				win = append(win, e)
			}
		}
		out = append(out, RecoveryTimeline{Trigger: a, Window: win})
	}
	return out
}

// related reports whether e belongs in anomaly a's story: same unordered
// node pair, or same link for fabric events.
func related(a, e Event) bool {
	if a.Link != 0 && e.Link == a.Link {
		return true
	}
	return (e.Node == a.Node && e.Peer == a.Peer) ||
		(e.Node == a.Peer && e.Peer == a.Node)
}

func (t RecoveryTimeline) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "recovery around %s at %v (nic%d peer=%d): %d related events\n",
		t.Trigger.Kind, t.Trigger.At, t.Trigger.Node, t.Trigger.Peer, len(t.Window))
	for _, e := range t.Window {
		marker := "  "
		if e == t.Trigger {
			marker = "> "
		}
		b.WriteString(marker)
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
