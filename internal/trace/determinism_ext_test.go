package trace_test

// Wires the shared proptest determinism contract into the trace layer:
// the flight-recorder event stream and both exporters (timeline text and
// Chrome/Perfetto JSON) must be byte-identical across same-seed runs of a
// generated simulator scenario. This is what makes a committed .timeline
// or .perfetto.json artifact trustworthy as a regression baseline.

import (
	"bytes"
	"testing"

	"sanft/internal/proptest"
	"sanft/internal/trace"
)

func traceDump(seed int64) []byte {
	res := proptest.RunSim(proptest.GenSim(seed))
	var b bytes.Buffer
	if res.Recorder == nil {
		return b.Bytes()
	}
	events := res.Recorder.Ring().Events()
	if err := trace.WriteTimeline(&b, events); err != nil {
		b.WriteString("timeline error: " + err.Error() + "\n")
	}
	if err := trace.WriteChromeTrace(&b, events); err != nil {
		b.WriteString("chrome trace error: " + err.Error() + "\n")
	}
	return b.Bytes()
}

func TestTraceExportsDeterministic(t *testing.T) {
	seeds := []int64{3, 11, 27}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		proptest.RequireDeterministic(t, seed, traceDump)
	}
}
