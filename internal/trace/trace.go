// Package trace provides causal, cross-layer tracing for the simulated
// platform: one event per protocol or fabric action, correlated across
// layers by the (src, gen, seq) identity the retransmission protocol
// stamps at send time plus the VMMC message ID, so a single message can
// be followed end-to-end — VMMC send, NIC send queue, DMA, per-switch
// worm hops, receive verdict, ack or retransmit, delivery.
//
// The pieces:
//
//   - Event / Kind: one traced action. NIC-level events carry (peer, gen,
//     seq, msg); fabric hop events additionally carry the directed channel
//     (link, dir); drops carry a reason note.
//   - Ring: a fixed-capacity tracer keeping the newest events.
//   - FlightRecorder (flight.go): a Ring that freezes a snapshot of its
//     contents when an anomaly event fires (watchdog reset, unreachable,
//     quarantine) or an external trigger calls in (chaos invariant
//     violation).
//   - BuildSpans / RecoveryTimelines (span.go): per-message span
//     reconstruction and anomaly-centered recovery stories.
//   - WriteChromeTrace / WriteTimeline (export.go): Perfetto-loadable
//     Chrome trace-event JSON (one track per NIC and per directed link)
//     and a deterministic text timeline.
//
// Tracing is off unless wired, and costs nothing when disabled (a nil
// check per event site).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"sanft/internal/sim"
	"sanft/internal/topology"
)

// Kind classifies trace events.
type Kind uint8

const (
	// EvSend: a data frame entered the NIC send path.
	EvSend Kind = iota
	// EvInject: a frame's first byte went onto the wire.
	EvInject
	// EvErrDrop: send-side error injection swallowed the frame.
	EvErrDrop
	// EvRetransmit: the go-back-N engine re-queued the frame.
	EvRetransmit
	// EvAccept: the receiver accepted an in-order frame.
	EvAccept
	// EvDupDrop: the receiver dropped a duplicate.
	EvDupDrop
	// EvOooDrop: the receiver dropped an out-of-order frame (go-back-N).
	EvOooDrop
	// EvCrcDrop: the CRC check discarded a corrupted frame.
	EvCrcDrop
	// EvAckTx: an explicit acknowledgment was sent.
	EvAckTx
	// EvAckRx: an acknowledgment (explicit or piggybacked) was processed.
	EvAckRx
	// EvGenReset: a remap reset the sequence generation for a path.
	EvGenReset
	// EvUnreachable: a destination was declared unreachable.
	EvUnreachable
	// EvRemapStart: the remap manager launched a mapping run for a peer.
	EvRemapStart
	// EvRemapDefer: a remap request was deferred to a backoff or
	// quarantine release time instead of starting immediately.
	EvRemapDefer
	// EvQuarantine: repeated remap failures quarantined the peer.
	EvQuarantine
	// EvRemapDone: a mapping run completed successfully and installed a
	// fresh route.
	EvRemapDone
	// EvPathStale: the permanent-failure detector flagged a destination
	// (no ack progress past the threshold) and raised the remap upcall.
	EvPathStale
	// EvNoRoute: a frame needed transmission but no route was installed.
	EvNoRoute
	// EvHostSend: the application handed a message to VMMC (span start).
	EvHostSend
	// EvMsgComplete: the receiving VMMC endpoint completed a message —
	// every chunk deposited in host memory (span end).
	EvMsgComplete
	// EvLinkBlock: a worm parked waiting for a busy directed channel
	// (wormhole head-of-line blocking).
	EvLinkBlock
	// EvLinkAcquire: a worm was granted a directed channel.
	EvLinkAcquire
	// EvLinkRelease: a worm's tail cleared a directed channel.
	EvLinkRelease
	// EvWatchdog: the blocked-path watchdog reset a worm.
	EvWatchdog
	// EvFabDrop: the fabric discarded a packet; Note carries the reason.
	EvFabDrop
	// EvDeliver: a packet's tail fully arrived at the destination host.
	EvDeliver
	// EvLiveUp: a liveness session completed its three-way handshake
	// (the path to Peer is confirmed bidirectional).
	EvLiveUp
	// EvLiveDown: a liveness session dropped — detection timeout expired
	// or the peer advertised Down. Seq carries the detection latency in
	// nanoseconds when the local detector fired (0 for peer-advertised
	// drops).
	EvLiveDown

	// numKinds counts the Ev* constants; keep it last.
	numKinds
)

var kindNames = [...]string{
	"send", "inject", "err-drop", "retransmit", "accept", "dup-drop",
	"ooo-drop", "crc-drop", "ack-tx", "ack-rx", "gen-reset", "unreachable",
	"remap-start", "remap-defer", "quarantine", "remap-done", "path-stale",
	"no-route", "host-send", "msg-complete", "link-block", "link-acquire",
	"link-release", "watchdog", "fab-drop", "deliver", "live-up",
	"live-down",
}

// Compile-time guard: adding a Kind without extending kindNames (or the
// reverse) produces a constant index-out-of-range error here.
var _ = [1]struct{}{}[len(kindNames)-int(numKinds)]

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// receiverSide reports whether events of this kind are recorded at the
// message's destination (Node = dst, Peer = src). All other kinds are
// recorded at — or attributed to — the source.
func (k Kind) receiverSide() bool {
	switch k {
	case EvAccept, EvDupDrop, EvOooDrop, EvCrcDrop, EvAckTx, EvMsgComplete:
		return true
	}
	return false
}

// Anomaly reports whether an event of this kind freezes the flight
// recorder and anchors a recovery timeline: watchdog resets, unreachable
// verdicts, and quarantines.
func (k Kind) Anomaly() bool {
	switch k {
	case EvWatchdog, EvUnreachable, EvQuarantine:
		return true
	}
	return false
}

// Event is one traced action.
type Event struct {
	At   sim.Time
	Node topology.NodeID // the NIC (or packet source, for fabric events)
	Kind Kind
	Peer topology.NodeID // the other end (destination or source)
	Gen  uint32
	Seq  uint64
	// Msg is the VMMC message ID the frame belongs to (0 for control
	// frames and untraced payloads).
	Msg uint64
	// Link identifies the directed channel of fabric hop events as
	// linkID+1 (0 means "no link"); Dir is the channel direction.
	Link int32
	Dir  uint8
	// Note carries a static detail string: the drop reason for EvFabDrop,
	// the trigger name on flight-recorder snapshots.
	Note string
}

func (e Event) String() string {
	s := fmt.Sprintf("[%12v] nic%-3d %-12s peer=%-3d gen=%d seq=%d",
		e.At, e.Node, e.Kind, e.Peer, e.Gen, e.Seq)
	if e.Msg != 0 {
		s += fmt.Sprintf(" msg=%d", e.Msg)
	}
	if e.Link != 0 {
		s += fmt.Sprintf(" link=%d.%d", e.Link-1, e.Dir)
	}
	if e.Note != "" {
		s += " " + e.Note
	}
	return s
}

// Tracer receives events. Implementations must be cheap; they run inline
// with the simulation.
type Tracer interface {
	Trace(Event)
}

// Ring is a fixed-capacity ring-buffer Tracer keeping the newest events.
type Ring struct {
	buf   []Event
	next  int
	total uint64
	// Filter, if non-nil, keeps only events it returns true for.
	Filter func(Event) bool
}

// NewRing returns a ring buffer holding up to n events.
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, 0, n)}
}

// Trace records one event.
func (r *Ring) Trace(e Event) {
	if r.Filter != nil && !r.Filter(e) {
		return
	}
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
}

// Total returns how many events were recorded (including overwritten).
func (r *Ring) Total() uint64 { return r.total }

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	if len(r.buf) < cap(r.buf) {
		out := make([]Event, len(r.buf))
		copy(out, r.buf)
		return out
	}
	out := make([]Event, 0, cap(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dump renders the retained events as a timeline.
func (r *Ring) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events recorded, %d retained\n", r.total, len(r.buf))
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Counts aggregates retained events by kind.
func (r *Ring) Counts() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range r.Events() {
		out[e.Kind]++
	}
	return out
}

// KindCount is one row of CountsSorted.
type KindCount struct {
	Kind  Kind
	Count int
}

// CountsSorted aggregates retained events by kind, ordered by kind — the
// deterministic rendering of Counts for examples and reports.
func (r *Ring) CountsSorted() []KindCount {
	m := r.Counts()
	out := make([]KindCount, 0, len(m))
	for k, c := range m {
		out = append(out, KindCount{k, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}
