// Package trace provides an optional packet-level event tracer for
// debugging protocol behavior. A NIC given a Tracer emits one event per
// protocol action (send, inject, error-injection drop, retransmission,
// receive verdicts, acks, remaps); the ring buffer keeps the most recent
// events and renders them as a timeline.
//
// Tracing is off unless wired, and costs nothing when disabled (a nil
// check per event site).
package trace

import (
	"fmt"
	"strings"

	"sanft/internal/sim"
	"sanft/internal/topology"
)

// Kind classifies trace events.
type Kind uint8

const (
	// EvSend: a data frame entered the NIC send path.
	EvSend Kind = iota
	// EvInject: a frame's first byte went onto the wire.
	EvInject
	// EvErrDrop: send-side error injection swallowed the frame.
	EvErrDrop
	// EvRetransmit: the go-back-N engine re-queued the frame.
	EvRetransmit
	// EvAccept: the receiver accepted an in-order frame.
	EvAccept
	// EvDupDrop: the receiver dropped a duplicate.
	EvDupDrop
	// EvOooDrop: the receiver dropped an out-of-order frame (go-back-N).
	EvOooDrop
	// EvCrcDrop: the CRC check discarded a corrupted frame.
	EvCrcDrop
	// EvAckTx: an explicit acknowledgment was sent.
	EvAckTx
	// EvAckRx: an acknowledgment (explicit or piggybacked) was processed.
	EvAckRx
	// EvGenReset: a remap reset the sequence generation for a path.
	EvGenReset
	// EvUnreachable: a destination was declared unreachable.
	EvUnreachable
	// EvRemapStart: the remap manager launched a mapping run for a peer.
	EvRemapStart
	// EvRemapDefer: a remap request was deferred to a backoff or
	// quarantine release time instead of starting immediately.
	EvRemapDefer
	// EvQuarantine: repeated remap failures quarantined the peer.
	EvQuarantine
)

var kindNames = [...]string{
	"send", "inject", "err-drop", "retransmit", "accept", "dup-drop",
	"ooo-drop", "crc-drop", "ack-tx", "ack-rx", "gen-reset", "unreachable",
	"remap-start", "remap-defer", "quarantine",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one traced protocol action.
type Event struct {
	At   sim.Time
	Node topology.NodeID // the NIC that recorded the event
	Kind Kind
	Peer topology.NodeID // the other end (destination or source)
	Gen  uint32
	Seq  uint64
}

func (e Event) String() string {
	return fmt.Sprintf("[%12v] nic%-3d %-11s peer=%-3d gen=%d seq=%d",
		e.At, e.Node, e.Kind, e.Peer, e.Gen, e.Seq)
}

// Tracer receives events. Implementations must be cheap; they run inline
// with the simulation.
type Tracer interface {
	Trace(Event)
}

// Ring is a fixed-capacity ring-buffer Tracer keeping the newest events.
type Ring struct {
	buf   []Event
	next  int
	total uint64
	// Filter, if non-nil, keeps only events it returns true for.
	Filter func(Event) bool
}

// NewRing returns a ring buffer holding up to n events.
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, 0, n)}
}

// Trace records one event.
func (r *Ring) Trace(e Event) {
	if r.Filter != nil && !r.Filter(e) {
		return
	}
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
}

// Total returns how many events were recorded (including overwritten).
func (r *Ring) Total() uint64 { return r.total }

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	if len(r.buf) < cap(r.buf) {
		out := make([]Event, len(r.buf))
		copy(out, r.buf)
		return out
	}
	out := make([]Event, 0, cap(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dump renders the retained events as a timeline.
func (r *Ring) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events recorded, %d retained\n", r.total, len(r.buf))
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Counts aggregates retained events by kind.
func (r *Ring) Counts() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range r.Events() {
		out[e.Kind]++
	}
	return out
}
