package trace

import (
	"fmt"
	"io"
	"sort"

	"sanft/internal/sim"
)

// Chrome trace-event export: the events render as instant events on one
// track (tid) per NIC and one per directed link, inside two process
// groups ("nics" and "fabric links"); wormhole blocking intervals
// additionally render as duration ("X") events on their link track, so a
// blocked path is visible as a bar, not a dot. Timestamps are simulated
// time expressed in microseconds (the trace-event unit), emitted with
// nanosecond precision. The output is a single deterministic JSON object
// loadable by Perfetto (ui.perfetto.dev) and chrome://tracing.

const (
	chromePidNICs  = 1
	chromePidLinks = 2
)

// linkTid maps a directed channel to its stable track ID.
func linkTid(link int32, dir uint8) int { return int(link-1)*2 + int(dir) }

// chromeTS renders a simulated instant as microseconds with nanosecond
// precision, without floating point (byte-stable across platforms).
func chromeTS(t sim.Time) string {
	ns := int64(t)
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// WriteChromeTrace writes events as Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, events []Event) error {
	// Track discovery first, so metadata precedes data in the output.
	nics := map[int]bool{}
	links := map[int]int32{} // tid -> link for labels
	dirs := map[int]uint8{}
	for _, e := range events {
		nics[int(e.Node)] = true
		if e.Link != 0 {
			tid := linkTid(e.Link, e.Dir)
			links[tid] = e.Link
			dirs[tid] = e.Dir
		}
	}
	var nicIDs []int
	for id := range nics {
		nicIDs = append(nicIDs, id)
	}
	sort.Ints(nicIDs)
	var linkTids []int
	for tid := range links {
		linkTids = append(linkTids, tid)
	}
	sort.Ints(linkTids)

	bw := &errWriter{w: w}
	bw.printf("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	first := true
	meta := func(pid, tid int, key, name string) {
		if !first {
			bw.printf(",\n")
		}
		first = false
		bw.printf("{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":%q,\"args\":{\"name\":%q}}", pid, tid, key, name)
	}
	meta(chromePidNICs, 0, "process_name", "nics")
	meta(chromePidLinks, 0, "process_name", "fabric links")
	for _, id := range nicIDs {
		meta(chromePidNICs, id, "thread_name", fmt.Sprintf("nic%d", id))
	}
	for _, tid := range linkTids {
		meta(chromePidLinks, tid, "thread_name",
			fmt.Sprintf("link%d.%d", links[tid]-1, dirs[tid]))
	}

	// Open blocking intervals, to pair EvLinkBlock with its resolution.
	type blockOpen struct {
		at  sim.Time
		tid int
	}
	open := map[blockKey]blockOpen{}
	emit := func(e Event, pid, tid int) {
		if !first {
			bw.printf(",\n")
		}
		first = false
		bw.printf("{\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"name\":%q,\"args\":{\"peer\":%d,\"gen\":%d,\"seq\":%d,\"msg\":%d",
			pid, tid, chromeTS(e.At), e.Kind.String(), e.Peer, e.Gen, e.Seq, e.Msg)
		if e.Note != "" {
			bw.printf(",\"note\":%q", e.Note)
		}
		bw.printf("}}")
	}
	closeBlock := func(k blockKey, o blockOpen, end sim.Time) {
		if !first {
			bw.printf(",\n")
		}
		first = false
		dur := int64(end.Sub(o.at))
		bw.printf("{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"dur\":%d.%03d,\"name\":\"blocked\",\"args\":{\"gen\":%d,\"seq\":%d}}",
			chromePidLinks, o.tid, chromeTS(o.at), dur/1000, dur%1000, k.gen, k.seq)
	}
	for _, e := range events {
		pid, tid := chromePidNICs, int(e.Node)
		if e.Link != 0 {
			pid, tid = chromePidLinks, linkTid(e.Link, e.Dir)
		}
		emit(e, pid, tid)
		switch e.Kind {
		case EvLinkBlock:
			open[blockKey{e.Gen, e.Seq, e.Link, e.Dir}] = blockOpen{e.At, tid}
		case EvLinkAcquire:
			k := blockKey{e.Gen, e.Seq, e.Link, e.Dir}
			if o, ok := open[k]; ok {
				closeBlock(k, o, e.At)
				delete(open, k)
			}
		case EvWatchdog, EvFabDrop:
			// Close the dead worm's open blocks. An original and its
			// retransmitted clone share (gen, seq), so more than one key
			// can match; sort for byte-stable output.
			var ks []blockKey
			for k := range open {
				if k.gen == e.Gen && k.seq == e.Seq {
					ks = append(ks, k)
				}
			}
			sort.Slice(ks, func(i, j int) bool {
				if ks[i].link != ks[j].link {
					return ks[i].link < ks[j].link
				}
				return ks[i].dir < ks[j].dir
			})
			for _, k := range ks {
				closeBlock(k, open[k], e.At)
				delete(open, k)
			}
		}
	}
	bw.printf("\n]}\n")
	return bw.err
}

// WriteTimeline writes events as the deterministic text timeline, one
// line per event in emission order.
func WriteTimeline(w io.Writer, events []Event) error {
	bw := &errWriter{w: w}
	for _, e := range events {
		bw.printf("%s\n", e.String())
	}
	return bw.err
}

// errWriter folds write errors so export loops stay uncluttered.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
