package trace

import (
	"testing"

	"sanft/internal/sim"
	"sanft/internal/topology"
)

func TestMergeStreamsOrdering(t *testing.T) {
	ev := func(at int64, node int, note string) Event {
		return Event{At: sim.Time(at), Node: topology.NodeID(node), Kind: EvSend, Note: note}
	}
	s0 := []Event{ev(10, 0, "a"), ev(30, 0, "b"), ev(30, 0, "c")}
	s1 := []Event{ev(10, 1, "d"), ev(20, 1, "e")}
	s2 := []Event{ev(5, 2, "f")}
	got := MergeStreams(s0, s1, s2)
	want := []string{"f", "a", "d", "e", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("merged %d events, want %d", len(got), len(want))
	}
	for i, n := range want {
		if got[i].Note != n {
			t.Fatalf("position %d: got %q, want %q (ties must break by stream index, then stream order)",
				i, got[i].Note, n)
		}
	}
	// Inputs untouched.
	if s0[0].Note != "a" || len(s0) != 3 {
		t.Fatal("MergeStreams mutated an input stream")
	}
}

func TestMergeStreamsEmpty(t *testing.T) {
	if got := MergeStreams(); len(got) != 0 {
		t.Fatalf("no streams should merge to empty, got %d", len(got))
	}
	if got := MergeStreams(nil, []Event{}, nil); len(got) != 0 {
		t.Fatalf("empty streams should merge to empty, got %d", len(got))
	}
}
