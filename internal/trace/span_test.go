package trace

import (
	"strings"
	"testing"
	"time"

	"sanft/internal/sim"
	"sanft/internal/topology"
)

// mkev builds a fully-specified event for span tests.
func mkev(at int, node, peer int, k Kind, gen uint32, seq, msg uint64) Event {
	return Event{At: sim.Time(at), Node: topology.NodeID(node), Kind: k,
		Peer: topology.NodeID(peer), Gen: gen, Seq: seq, Msg: msg}
}

func TestBuildSpansBasic(t *testing.T) {
	events := []Event{
		mkev(100, 0, 1, EvHostSend, 1, 0, 7),
		mkev(110, 0, 1, EvSend, 1, 5, 7),
		mkev(120, 0, 1, EvInject, 1, 5, 7),
		// Receiver-side events carry (Node=dst, Peer=src); the span key
		// normalizes them back to src→dst.
		mkev(200, 1, 0, EvAccept, 1, 5, 7),
		mkev(210, 1, 0, EvMsgComplete, 1, 5, 7),
		// Control traffic (Msg == 0) never lands in a span.
		mkev(220, 1, 0, EvAckTx, 1, 5, 0),
	}
	spans := BuildSpans(events)
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Key != (SpanKey{Src: 0, Dst: 1, Msg: 7}) {
		t.Fatalf("key = %+v", sp.Key)
	}
	if !sp.Complete() || sp.Latency() != 110*time.Nanosecond {
		t.Fatalf("complete=%v latency=%v, want true/110ns", sp.Complete(), sp.Latency())
	}
	if len(sp.Events) != 5 {
		t.Fatalf("span holds %d events, want 5 (ack excluded)", len(sp.Events))
	}
}

func TestBuildSpansAccounting(t *testing.T) {
	events := []Event{
		mkev(0, 0, 1, EvHostSend, 1, 3, 9),
		mkev(10, 0, 1, EvSend, 1, 3, 9),
		mkev(20, 0, 1, EvErrDrop, 1, 3, 9),
		mkev(1020, 0, 1, EvRetransmit, 1, 3, 9),
		mkev(1030, 0, 1, EvInject, 1, 3, 9),
		mkev(1100, 1, 0, EvCrcDrop, 1, 3, 9),
		mkev(2030, 0, 1, EvRetransmit, 1, 3, 9),
		mkev(2100, 1, 0, EvAccept, 1, 3, 9),
		mkev(2110, 1, 0, EvMsgComplete, 1, 3, 9),
	}
	spans := BuildSpans(events)
	if len(spans) != 1 {
		t.Fatalf("spans = %d", len(spans))
	}
	sp := spans[0]
	if sp.Retransmits != 2 || sp.Drops != 2 {
		t.Fatalf("rtx=%d drops=%d, want 2/2", sp.Retransmits, sp.Drops)
	}
	// First retransmit: 1020-20 (since the err-drop) = 1000ns. Second:
	// 2030-1030 (since the re-injection) = 1000ns. Total 2000ns.
	if sp.RetransWait != 2000*time.Nanosecond {
		t.Fatalf("retransWait = %v, want 2µs", sp.RetransWait)
	}
}

func TestBuildSpansIncomplete(t *testing.T) {
	events := []Event{
		mkev(0, 2, 3, EvHostSend, 1, 0, 1),
		mkev(10, 2, 3, EvSend, 1, 0, 1),
		mkev(20, 2, 3, EvUnreachable, 1, 0, 1),
	}
	sp := BuildSpans(events)[0]
	if sp.Complete() || sp.Latency() != 0 {
		t.Fatalf("incomplete span reports complete=%v latency=%v", sp.Complete(), sp.Latency())
	}
}

func TestBuildSpansSorted(t *testing.T) {
	events := []Event{
		mkev(0, 2, 0, EvHostSend, 1, 0, 2),
		mkev(1, 0, 1, EvHostSend, 1, 0, 5),
		mkev(2, 0, 1, EvHostSend, 1, 1, 3),
		mkev(3, 2, 0, EvHostSend, 1, 1, 1),
	}
	spans := BuildSpans(events)
	var got []SpanKey
	for _, sp := range spans {
		got = append(got, sp.Key)
	}
	want := []SpanKey{
		{Src: 0, Dst: 1, Msg: 3},
		{Src: 0, Dst: 1, Msg: 5},
		{Src: 2, Dst: 0, Msg: 1},
		{Src: 2, Dst: 0, Msg: 2},
	}
	if len(got) != len(want) {
		t.Fatalf("spans = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestBlockedTime(t *testing.T) {
	link := func(at int, k Kind, linkID int32, dir uint8) Event {
		e := mkev(at, 0, 1, k, 1, 4, 6)
		e.Link = linkID
		e.Dir = dir
		return e
	}
	events := []Event{
		mkev(0, 0, 1, EvHostSend, 1, 4, 6),
		link(100, EvLinkBlock, 2, 0),
		link(400, EvLinkAcquire, 2, 0), // 300ns blocked
		link(500, EvLinkBlock, 3, 1),
		link(700, EvWatchdog, 3, 1), // watchdog closes the block: +200ns
	}
	sp := BuildSpans(events)[0]
	if sp.Blocked != 500*time.Nanosecond {
		t.Fatalf("blocked = %v, want 500ns", sp.Blocked)
	}
	// An acquire with no prior block contributes nothing.
	sp2 := BuildSpans([]Event{
		mkev(0, 0, 1, EvHostSend, 1, 4, 6),
		link(100, EvLinkAcquire, 2, 0),
	})[0]
	if sp2.Blocked != 0 {
		t.Fatalf("unpaired acquire counted: %v", sp2.Blocked)
	}
}

func TestRecoveryTimelines(t *testing.T) {
	events := []Event{
		mkev(0, 0, 1, EvSend, 1, 0, 0),
		mkev(500, 0, 1, EvSend, 1, 1, 0),
		mkev(1000, 0, 1, EvWatchdog, 1, 1, 0),
		mkev(1200, 0, 1, EvRetransmit, 1, 1, 0),
		mkev(1300, 4, 5, EvSend, 1, 0, 0), // unrelated pair, inside window
		mkev(9000, 0, 1, EvSend, 1, 2, 0), // related, outside window
	}
	tls := RecoveryTimelines(events, 600*time.Nanosecond, 600*time.Nanosecond, 0)
	if len(tls) != 1 {
		t.Fatalf("timelines = %d, want 1", len(tls))
	}
	tl := tls[0]
	if tl.Trigger.Kind != EvWatchdog {
		t.Fatalf("trigger = %v", tl.Trigger)
	}
	if len(tl.Window) != 3 {
		t.Fatalf("window = %v, want send@500, watchdog, retransmit", tl.Window)
	}
	for _, e := range tl.Window {
		if e.Node == 4 {
			t.Fatal("unrelated pair leaked into the window")
		}
	}
	s := tl.String()
	if !strings.Contains(s, "> ") || !strings.Contains(s, "watchdog") {
		t.Fatalf("timeline string = %q", s)
	}

	// max bounds the number of timelines.
	many := append(events,
		mkev(2000, 0, 1, EvWatchdog, 1, 2, 0),
		mkev(3000, 0, 1, EvWatchdog, 1, 3, 0))
	if got := len(RecoveryTimelines(many, 0, 0, 2)); got != 2 {
		t.Fatalf("max ignored: %d timelines", got)
	}
}

func TestRecoveryFromSnapshots(t *testing.T) {
	f := NewFlightRecorder(16)
	f.Trace(mkev(100, 0, 1, EvSend, 1, 0, 0))
	f.Trace(mkev(200, 4, 5, EvSend, 1, 0, 0)) // unrelated pair
	f.Trace(mkev(900, 0, 1, EvUnreachable, 1, 0, 0))
	f.Trace(mkev(950, 0, 1, EvRetransmit, 1, 0, 0))
	f.TriggerSnapshot("invariant:buffers", sim.Time(1000)) // no anchor event: skipped

	tls := RecoveryFromSnapshots(f.Snapshots(), time.Microsecond, 0)
	if len(tls) != 1 {
		t.Fatalf("timelines = %d, want 1 (invariant snapshot skipped)", len(tls))
	}
	tl := tls[0]
	if tl.Trigger.Kind != EvUnreachable {
		t.Fatalf("trigger = %v", tl.Trigger)
	}
	if len(tl.Window) != 2 {
		t.Fatalf("window = %v, want send@100 + unreachable", tl.Window)
	}
}
