package trace

import (
	"fmt"
	"strings"

	"sanft/internal/sim"
)

// Snapshot is one frozen copy of the flight recorder's ring, taken when
// an anomaly fired.
type Snapshot struct {
	// Trigger names what froze the ring: an anomaly kind ("watchdog",
	// "quarantine", ...) or an external trigger such as
	// "invariant:buffers".
	Trigger string
	// At is the simulated time of the trigger.
	At sim.Time
	// Total is the ring's total event count at freeze time.
	Total uint64
	// Events is the frozen window, oldest first.
	Events []Event
}

// FlightRecorder is a Tracer that keeps the newest events in a ring and
// freezes a snapshot of the ring whenever an anomaly event arrives —
// watchdog reset, unreachable verdict, quarantine — or an external caller
// reports one (chaos invariant violation). The first MaxSnapshots
// anomalies are retained in full; later ones only counted, so a fault
// storm cannot grow memory without bound.
type FlightRecorder struct {
	ring *Ring
	// Triggers is the set of event kinds that freeze the ring. Defaults
	// to the anomaly kinds (Kind.Anomaly); callers may add or remove.
	Triggers map[Kind]bool
	// MaxSnapshots bounds retained snapshots (default 8).
	MaxSnapshots int
	// SnapshotWindow bounds how many of the ring's newest events each
	// snapshot freezes (default 128), so snapshots of a large ring stay
	// readable and cheap.
	SnapshotWindow int

	snaps     []Snapshot
	triggered uint64 // total trigger count, including dropped snapshots
}

// NewFlightRecorder returns a recorder ringing the newest n events, with
// the default anomaly trigger set.
func NewFlightRecorder(n int) *FlightRecorder {
	f := &FlightRecorder{
		ring:           NewRing(n),
		Triggers:       make(map[Kind]bool),
		MaxSnapshots:   8,
		SnapshotWindow: 128,
	}
	for k := Kind(0); k < numKinds; k++ {
		if k.Anomaly() {
			f.Triggers[k] = true
		}
	}
	return f
}

// Trace records the event and, if its kind is a trigger, freezes the ring
// after recording — the snapshot includes the anomaly itself.
func (f *FlightRecorder) Trace(e Event) {
	f.ring.Trace(e)
	if f.Triggers[e.Kind] {
		f.freeze(e.Kind.String(), e.At)
	}
}

// TriggerSnapshot freezes the ring for a non-event anomaly (a chaos
// invariant violation, an assertion in a harness).
func (f *FlightRecorder) TriggerSnapshot(name string, at sim.Time) {
	f.freeze(name, at)
}

func (f *FlightRecorder) freeze(trigger string, at sim.Time) {
	f.triggered++
	if len(f.snaps) >= f.MaxSnapshots {
		return
	}
	events := f.ring.Events()
	if f.SnapshotWindow > 0 && len(events) > f.SnapshotWindow {
		events = events[len(events)-f.SnapshotWindow:]
	}
	f.snaps = append(f.snaps, Snapshot{
		Trigger: trigger,
		At:      at,
		Total:   f.ring.Total(),
		Events:  events,
	})
}

// Ring returns the live ring (for Events, Dump, Filter).
func (f *FlightRecorder) Ring() *Ring { return f.ring }

// Snapshots returns the retained frozen windows, in trigger order.
func (f *FlightRecorder) Snapshots() []Snapshot { return f.snaps }

// Triggered returns how many times the recorder froze (including
// anomalies beyond MaxSnapshots whose windows were dropped).
func (f *FlightRecorder) Triggered() uint64 { return f.triggered }

// Dump renders every retained snapshot — trigger, time, and the frozen
// event window — deterministically.
func (f *FlightRecorder) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder: %d triggers, %d snapshots retained, %d events recorded\n",
		f.triggered, len(f.snaps), f.ring.Total())
	for i, s := range f.snaps {
		fmt.Fprintf(&b, "snapshot %d: trigger=%s at=%v (%d events recorded, %d in window)\n",
			i, s.Trigger, s.At, s.Total, len(s.Events))
		for _, e := range s.Events {
			b.WriteString("  ")
			b.WriteString(e.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}
