package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

// exportEvents is a small fixture exercising every export code path:
// NIC-track instants, link-track instants, and a blocked interval closed
// first by an acquire and then by a watchdog.
func exportEvents() []Event {
	link := func(at int, k Kind, linkID int32, dir uint8, seq uint64) Event {
		e := mkev(at, 0, 1, k, 1, seq, 3)
		e.Link = linkID
		e.Dir = dir
		return e
	}
	return []Event{
		mkev(1000, 0, 1, EvHostSend, 1, 0, 3),
		mkev(1500, 0, 1, EvSend, 1, 0, 3),
		link(2000, EvLinkBlock, 1, 0, 0),
		link(2750, EvLinkAcquire, 1, 0, 0),
		link(3000, EvLinkBlock, 2, 1, 1),
		link(4500, EvWatchdog, 2, 1, 1),
		mkev(5000, 1, 0, EvMsgComplete, 1, 0, 3),
	}
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	var b strings.Builder
	if err := WriteChromeTrace(&b, exportEvents()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Name string  `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	var meta, inst, dur int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "i":
			inst++
		case "X":
			dur++
			if e.Pid != chromePidLinks || e.Name != "blocked" {
				t.Fatalf("duration event on wrong track: %+v", e)
			}
		}
	}
	// 2 process names + 2 nic tracks + 2 link tracks.
	if meta != 6 {
		t.Fatalf("metadata events = %d, want 6", meta)
	}
	if inst != len(exportEvents()) {
		t.Fatalf("instants = %d, want %d", inst, len(exportEvents()))
	}
	// One block closed by acquire, one by the watchdog.
	if dur != 2 {
		t.Fatalf("blocked durations = %d, want 2", dur)
	}
	// Metadata must precede all data events so Perfetto names tracks.
	firstData := -1
	lastMeta := -1
	for i, e := range doc.TraceEvents {
		if e.Ph == "M" {
			lastMeta = i
		} else if firstData < 0 {
			firstData = i
		}
	}
	if lastMeta > firstData {
		t.Fatal("metadata interleaved with data events")
	}
}

func TestWriteChromeTraceTimestamps(t *testing.T) {
	// 2000ns must render as "2.000" µs, with integer math only.
	if got := chromeTS(exportEvents()[2].At); got != "2.000" {
		t.Fatalf("chromeTS = %q", got)
	}
	var b strings.Builder
	if err := WriteChromeTrace(&b, exportEvents()); err != nil {
		t.Fatal(err)
	}
	// The acquire-closed block: 2000→2750ns = 0.750µs duration.
	if !strings.Contains(b.String(), "\"ts\":2.000,\"dur\":0.750") {
		t.Fatalf("blocked duration not rendered:\n%s", b.String())
	}
}

func TestWriteChromeTraceDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := WriteChromeTrace(&a, exportEvents()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, exportEvents()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("chrome trace output not byte-stable")
	}
}

func TestWriteTimeline(t *testing.T) {
	var b strings.Builder
	if err := WriteTimeline(&b, exportEvents()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != len(exportEvents()) {
		t.Fatalf("timeline has %d lines, want %d", len(lines), len(exportEvents()))
	}
	if !strings.Contains(lines[0], "host-send") || !strings.Contains(lines[5], "watchdog") {
		t.Fatalf("timeline content wrong:\n%s", b.String())
	}
}
