package trace

import "sort"

// MergeStreams interleaves per-shard event streams into one timeline
// ordered by (At, stream index, within-stream position) — the parallel
// engine's deterministic trace merge rule. Within one shard events are
// already in emission (= simulated time) order; across shards, ties at
// the same instant break by shard index, so the merged timeline is
// byte-identical for every worker count. The result is a fresh slice
// ready for WriteChromeTrace / WriteTimeline.
func MergeStreams(streams ...[]Event) []Event {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]Event, 0, total)
	for _, s := range streams {
		out = append(out, s...)
	}
	// Stable sort on At alone: equal-time events keep concatenation
	// order, which is exactly (stream index, within-stream position).
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
