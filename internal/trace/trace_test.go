package trace

import (
	"strings"
	"testing"

	"sanft/internal/sim"
	"sanft/internal/topology"
)

func ev(i int, k Kind) Event {
	return Event{At: sim.Time(i * 1000), Node: 1, Kind: k, Peer: 2, Seq: uint64(i)}
}

func TestRingRetainsNewest(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Trace(ev(i, EvSend))
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d", r.Total())
	}
	es := r.Events()
	if len(es) != 3 {
		t.Fatalf("retained %d", len(es))
	}
	for i, e := range es {
		if e.Seq != uint64(i+2) {
			t.Fatalf("events = %v, want seqs 2,3,4", es)
		}
	}
}

func TestRingUnderfill(t *testing.T) {
	r := NewRing(10)
	r.Trace(ev(0, EvSend))
	r.Trace(ev(1, EvAccept))
	es := r.Events()
	if len(es) != 2 || es[0].Seq != 0 || es[1].Seq != 1 {
		t.Fatalf("events = %v", es)
	}
}

func TestRingFilter(t *testing.T) {
	r := NewRing(10)
	r.Filter = func(e Event) bool { return e.Kind == EvRetransmit }
	r.Trace(ev(0, EvSend))
	r.Trace(ev(1, EvRetransmit))
	r.Trace(ev(2, EvAccept))
	if r.Total() != 1 || len(r.Events()) != 1 {
		t.Fatalf("filter failed: total=%d", r.Total())
	}
}

func TestDumpAndCounts(t *testing.T) {
	r := NewRing(10)
	r.Trace(ev(0, EvSend))
	r.Trace(ev(1, EvSend))
	r.Trace(ev(2, EvErrDrop))
	d := r.Dump()
	if !strings.Contains(d, "err-drop") || !strings.Contains(d, "3 events recorded") {
		t.Fatalf("dump = %q", d)
	}
	c := r.Counts()
	if c[EvSend] != 2 || c[EvErrDrop] != 1 {
		t.Fatalf("counts = %v", c)
	}
}

func TestKindStrings(t *testing.T) {
	if EvSend.String() != "send" || EvUnreachable.String() != "unreachable" {
		t.Fatal("kind names wrong")
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("unknown kind")
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: sim.Time(1500), Node: topology.NodeID(3), Kind: EvAccept, Peer: 7, Gen: 1, Seq: 42}
	s := e.String()
	for _, want := range []string{"nic3", "accept", "peer=7", "gen=1", "seq=42"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string %q missing %q", s, want)
		}
	}
}
