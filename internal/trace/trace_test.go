package trace

import (
	"strings"
	"testing"

	"sanft/internal/sim"
	"sanft/internal/topology"
)

func ev(i int, k Kind) Event {
	return Event{At: sim.Time(i * 1000), Node: 1, Kind: k, Peer: 2, Seq: uint64(i)}
}

func TestRingRetainsNewest(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Trace(ev(i, EvSend))
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d", r.Total())
	}
	es := r.Events()
	if len(es) != 3 {
		t.Fatalf("retained %d", len(es))
	}
	for i, e := range es {
		if e.Seq != uint64(i+2) {
			t.Fatalf("events = %v, want seqs 2,3,4", es)
		}
	}
}

func TestRingUnderfill(t *testing.T) {
	r := NewRing(10)
	r.Trace(ev(0, EvSend))
	r.Trace(ev(1, EvAccept))
	es := r.Events()
	if len(es) != 2 || es[0].Seq != 0 || es[1].Seq != 1 {
		t.Fatalf("events = %v", es)
	}
}

func TestRingFilter(t *testing.T) {
	r := NewRing(10)
	r.Filter = func(e Event) bool { return e.Kind == EvRetransmit }
	r.Trace(ev(0, EvSend))
	r.Trace(ev(1, EvRetransmit))
	r.Trace(ev(2, EvAccept))
	if r.Total() != 1 || len(r.Events()) != 1 {
		t.Fatalf("filter failed: total=%d", r.Total())
	}
}

func TestDumpAndCounts(t *testing.T) {
	r := NewRing(10)
	r.Trace(ev(0, EvSend))
	r.Trace(ev(1, EvSend))
	r.Trace(ev(2, EvErrDrop))
	d := r.Dump()
	if !strings.Contains(d, "err-drop") || !strings.Contains(d, "3 events recorded") {
		t.Fatalf("dump = %q", d)
	}
	c := r.Counts()
	if c[EvSend] != 2 || c[EvErrDrop] != 1 {
		t.Fatalf("counts = %v", c)
	}
}

func TestKindStrings(t *testing.T) {
	if EvSend.String() != "send" || EvUnreachable.String() != "unreachable" {
		t.Fatal("kind names wrong")
	}
	if EvLiveUp.String() != "live-up" || EvLiveDown.String() != "live-down" {
		t.Fatal("liveness kind names wrong")
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("unknown kind")
	}
}

// TestKindNamesComplete is the runtime side of the compile-time guard: the
// name table must cover every Kind exactly, and no two kinds may share a
// name (a copy-paste in kindNames would silently alias two kinds).
func TestKindNamesComplete(t *testing.T) {
	if len(kindNames) != int(numKinds) {
		t.Fatalf("kindNames has %d entries, %d kinds declared", len(kindNames), numKinds)
	}
	seen := make(map[string]Kind)
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "" || name == "unknown" {
			t.Fatalf("kind %d has no proper name", k)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("kinds %d and %d share the name %q", prev, k, name)
		}
		seen[name] = k
	}
}

func TestRingCapacityOne(t *testing.T) {
	r := NewRing(1)
	for i := 0; i < 4; i++ {
		r.Trace(ev(i, EvSend))
	}
	es := r.Events()
	if len(es) != 1 || es[0].Seq != 3 {
		t.Fatalf("capacity-1 ring retained %v, want only seq 3", es)
	}
	if r.Total() != 4 {
		t.Fatalf("total = %d, want 4", r.Total())
	}
	// NewRing clamps degenerate capacities up to one.
	r = NewRing(0)
	r.Trace(ev(0, EvSend))
	if len(r.Events()) != 1 {
		t.Fatal("NewRing(0) should hold one event")
	}
}

func TestRingWraparoundOrdering(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 11; i++ {
		r.Trace(ev(i, EvSend))
	}
	es := r.Events()
	if len(es) != 4 {
		t.Fatalf("retained %d", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i].Seq != es[i-1].Seq+1 {
			t.Fatalf("events out of order after wraparound: %v", es)
		}
	}
	if es[0].Seq != 7 || es[3].Seq != 10 {
		t.Fatalf("window = [%d..%d], want [7..10]", es[0].Seq, es[3].Seq)
	}
}

// TestRingFilterTotal pins the Filter contract: filtered-out events count
// neither toward Total nor toward the retained window.
func TestRingFilterTotal(t *testing.T) {
	r := NewRing(2)
	r.Filter = func(e Event) bool { return e.Kind != EvAckRx }
	kinds := []Kind{EvSend, EvAckRx, EvAccept, EvAckRx, EvRetransmit}
	for i, k := range kinds {
		r.Trace(ev(i, k))
	}
	if r.Total() != 3 {
		t.Fatalf("total = %d, want 3 (acks filtered)", r.Total())
	}
	es := r.Events()
	if len(es) != 2 || es[0].Kind != EvAccept || es[1].Kind != EvRetransmit {
		t.Fatalf("retained %v, want accept,retransmit", es)
	}
}

func TestCountsSorted(t *testing.T) {
	r := NewRing(10)
	r.Trace(ev(0, EvRetransmit))
	r.Trace(ev(1, EvSend))
	r.Trace(ev(2, EvSend))
	r.Trace(ev(3, EvAccept))
	kcs := r.CountsSorted()
	if len(kcs) != 3 {
		t.Fatalf("rows = %v", kcs)
	}
	// Ordered by Kind: send < retransmit < accept in declaration order.
	want := []KindCount{{EvSend, 2}, {EvRetransmit, 1}, {EvAccept, 1}}
	for i, w := range want {
		if kcs[i] != w {
			t.Fatalf("row %d = %v, want %v", i, kcs[i], w)
		}
	}
}

func TestEventStringDetails(t *testing.T) {
	e := Event{At: sim.Time(2000), Node: 1, Kind: EvFabDrop, Peer: 2,
		Gen: 3, Seq: 9, Msg: 7, Link: 5, Dir: 1, Note: "watchdog"}
	s := e.String()
	for _, want := range []string{"fab-drop", "msg=7", "link=4.1", "watchdog"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string %q missing %q", s, want)
		}
	}
	// No msg/link/note → no stray fields.
	s = Event{Kind: EvSend, Node: 1, Peer: 2}.String()
	if strings.Contains(s, "msg=") || strings.Contains(s, "link=") {
		t.Fatalf("bare event string %q has optional fields", s)
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: sim.Time(1500), Node: topology.NodeID(3), Kind: EvAccept, Peer: 7, Gen: 1, Seq: 42}
	s := e.String()
	for _, want := range []string{"nic3", "accept", "peer=7", "gen=1", "seq=42"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string %q missing %q", s, want)
		}
	}
}
