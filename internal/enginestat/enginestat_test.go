package enginestat

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// fixedProfile is a hand-built Profile with every field populated, so the
// rendering tests exercise all code paths without depending on wall
// clocks.
func fixedProfile() *Profile {
	p := &Profile{}
	p.Engine = EngineStat{
		Workers: 2, Shards: 4, LookaheadNS: 1500,
		RunWallNS: 9_000_000,
		Epochs:    100, BarrierEpochs: 60, SoloBatches: 10,
		Exchanged: 480, WindowNS: 90_000, ActiveShardSum: 180,
	}
	p.Workers = []WorkerStat{
		{Worker: 0, BusyNS: 4_000_000, StallNS: 2_000_000, StealNS: 500_000,
			ExchangeNS: 1_500_000, AwakeNS: 8_200_000, Claims: 150,
			StealAttempts: 200, StealHits: 150, Wakes: 0, Parks: 0, Events: 9000},
		{Worker: 1, BusyNS: 3_000_000, StallNS: 3_500_000, StealNS: 700_000,
			AwakeNS: 7_400_000, Claims: 90, StealAttempts: 180, StealHits: 90,
			Wakes: 3, Parks: 3, Events: 5000},
	}
	p.Kernels = []KernelStat{
		{Shard: 0, Scheduled: 5000, Cancelled: 120, Executed: 4800, Pending: 80, ArenaHighWater: 64},
		{Shard: 1, Scheduled: 4000, Cancelled: 90, Executed: 3900, Pending: 10, ArenaHighWater: 32},
	}
	p.Pools = PoolStat{FrameGets: 10000, FrameMisses: 120, PacketGets: 8000, PacketMisses: 50}
	p.Spans = []Span{
		{Worker: 0, Kind: SpanShard, Shard: 1, StartNS: 100, EndNS: 350},
		{Worker: 1, Kind: SpanShard, Shard: 2, StartNS: 120, EndNS: 300},
		{Worker: 0, Kind: SpanBarrier, Shard: -1, StartNS: 350, EndNS: 500},
		{Worker: 0, Kind: SpanExchange, Shard: -1, StartNS: 500, EndNS: 620},
		{Worker: 0, Kind: SpanSolo, Shard: 0, StartNS: 620, EndNS: 900},
	}
	return p
}

func renderJSON(t *testing.T, p *Profile) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := p.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return b.Bytes()
}

// TestAddFromCommutative pins the merge discipline: folding profiles in
// either order gives identical results, field for field.
func TestAddFromCommutative(t *testing.T) {
	a1, b1 := fixedProfile(), otherProfile()
	a1.AddFrom(b1)

	b2, a2 := otherProfile(), fixedProfile()
	b2.AddFrom(a2)

	// Span order differs by construction (concatenation order); the export
	// re-sorts, so compare everything else directly and spans as sets via
	// the sorted Chrome trace.
	ja, jb := renderJSON(t, a1), renderJSON(t, b2)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("AddFrom not commutative:\na+b:\n%s\nb+a:\n%s", ja, jb)
	}
	var ta, tb bytes.Buffer
	if err := a1.WriteChromeTrace(&ta); err != nil {
		t.Fatal(err)
	}
	if err := b2.WriteChromeTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ta.Bytes(), tb.Bytes()) {
		t.Fatal("WriteChromeTrace differs between a+b and b+a merges")
	}
}

func otherProfile() *Profile {
	p := &Profile{}
	p.Engine = EngineStat{
		Workers: 2, Shards: 4, LookaheadNS: 1500,
		RunWallNS: 1_000_000, Epochs: 7, BarrierEpochs: 3, SoloBatches: 2,
		Exchanged: 11, WindowNS: 4_500, ActiveShardSum: 8,
	}
	p.Workers = []WorkerStat{
		{Worker: 0, BusyNS: 600_000, StallNS: 100_000, ExchangeNS: 200_000,
			AwakeNS: 950_000, Claims: 9, Events: 400},
	}
	p.Kernels = []KernelStat{
		{Shard: 0, Scheduled: 500, Cancelled: 10, Executed: 480, Pending: 10, ArenaHighWater: 128},
	}
	p.Pools = PoolStat{FrameGets: 100, FrameMisses: 2, PacketGets: 90, PacketMisses: 1}
	p.Spans = []Span{{Worker: 1, Kind: SpanShard, Shard: 3, StartNS: 90, EndNS: 110}}
	return p
}

// TestAddFromArenaHighWaterMax: the arena mark is a high-water mark, not
// a flow; merging takes the max.
func TestAddFromArenaHighWaterMax(t *testing.T) {
	a, b := fixedProfile(), otherProfile()
	a.AddFrom(b)
	if got := a.Kernels[0].ArenaHighWater; got != 128 {
		t.Fatalf("merged ArenaHighWater = %d, want max(64,128)=128", got)
	}
}

// TestMergeWorkers pins the flattened totals the Summary fractions are
// derived from.
func TestMergeWorkers(t *testing.T) {
	p := fixedProfile()
	tot := MergeWorkers(p.Workers)
	if tot.BusyNS != 7_000_000 || tot.Events != 14000 || tot.Claims != 240 {
		t.Fatalf("MergeWorkers totals wrong: %+v", tot)
	}
}

// TestRenderByteStable: a given Profile value must render to identical
// bytes every time, for all three exporters — the property that makes
// profiles diffable and the BENCH rows reproducible.
func TestRenderByteStable(t *testing.T) {
	render := func(p *Profile) (string, string, string) {
		var j, x, c bytes.Buffer
		if err := p.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := p.WriteText(&x); err != nil {
			t.Fatal(err)
		}
		if err := p.WriteChromeTrace(&c); err != nil {
			t.Fatal(err)
		}
		return j.String(), x.String(), c.String()
	}
	j1, x1, c1 := render(fixedProfile())
	j2, x2, c2 := render(fixedProfile())
	if j1 != j2 || x1 != x2 || c1 != c2 {
		t.Fatal("render of the same Profile value is not byte-stable")
	}
	for _, s := range []string{j1, x1, c1} {
		if len(s) == 0 {
			t.Fatal("empty render")
		}
	}
	// The text report must surface the headline accounts.
	for _, want := range []string{"engine: workers=2 shards=4", "epochs        100", "worker"} {
		if !strings.Contains(x1, want) {
			t.Fatalf("text report missing %q:\n%s", want, x1)
		}
	}
	// The Chrome trace must be valid JSON with one event per span + metadata.
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(c1), &tr); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	p := fixedProfile()
	wantEvents := len(p.Spans) + 1 /* process meta */ + 2 /* thread metas */
	if len(tr.TraceEvents) != wantEvents {
		t.Fatalf("chrome trace has %d events, want %d", len(tr.TraceEvents), wantEvents)
	}
}

// TestSummarize pins the derived ratios on exact inputs.
func TestSummarize(t *testing.T) {
	s := fixedProfile().Summarize()
	if s.Events != 8700 {
		t.Fatalf("Events = %d, want 8700", s.Events)
	}
	if s.EventsPerEpoch != 87 {
		t.Fatalf("EventsPerEpoch = %v, want 87", s.EventsPerEpoch)
	}
	if s.AvgActiveShards != 3 {
		t.Fatalf("AvgActiveShards = %v, want 3", s.AvgActiveShards)
	}
	if s.StealHitRate != round4(240.0/380.0) {
		t.Fatalf("StealHitRate = %v", s.StealHitRate)
	}
	if s.FramePoolHit != round4(1-120.0/10000.0) {
		t.Fatalf("FramePoolHit = %v", s.FramePoolHit)
	}
	if s.ArenaHighWater != 64 {
		t.Fatalf("ArenaHighWater = %d, want 64", s.ArenaHighWater)
	}
	fr := s.BusyFrac + s.StallFrac + s.StealFrac + s.ExchangeFrac
	if fr < 0.999 || fr > 1.001 {
		t.Fatalf("fractions sum to %v, want ~1", fr)
	}
}

// TestSpanLogCap: the recorder keeps its memory bound hard and counts
// what it drops.
func TestSpanLogCap(t *testing.T) {
	lg := &SpanLog{cap: 2}
	for i := 0; i < 5; i++ {
		lg.Record(Span{StartNS: int64(i)})
	}
	if len(lg.spans) != 2 || lg.Dropped() != 3 {
		t.Fatalf("spans=%d dropped=%d, want 2/3", len(lg.spans), lg.Dropped())
	}
	var nilLog *SpanLog
	nilLog.Record(Span{}) // must not panic
	if nilLog.Dropped() != 0 {
		t.Fatal("nil log reported drops")
	}
}

// TestServerEndpoints round-trips every endpoint of a live server on an
// ephemeral port: published snapshots come back verbatim, pprof and
// expvar respond, and unpublished endpoints degrade gracefully.
func TestServerEndpoints(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	// Before anything is published.
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "no metrics published yet") {
		t.Fatalf("/metrics before publish: %d %q", code, body)
	}
	if code, _ := get("/profile"); code != 404 {
		t.Fatalf("/profile before publish: %d, want 404", code)
	}
	if code, _ := get("/progress"); code != 404 {
		t.Fatalf("/progress before SetProgress: %d, want 404", code)
	}

	srv.PublishMetrics([]byte("# TYPE up gauge\nup 1\n"))
	if code, body := get("/metrics"); code != 200 || body != "# TYPE up gauge\nup 1\n" {
		t.Fatalf("/metrics: %d %q", code, body)
	}

	srv.PublishProfile(fixedProfile())
	code, body := get("/profile")
	if code != 200 {
		t.Fatalf("/profile: %d", code)
	}
	var p Profile
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("/profile not JSON: %v", err)
	}
	if p.Engine.Epochs != 100 {
		t.Fatalf("/profile Epochs = %d, want 100", p.Engine.Epochs)
	}

	srv.SetProgress(func() ProgressSnapshot {
		return ProgressSnapshot{Done: 3, Total: 10, ElapsedMS: 1.5}
	})
	code, body = get("/progress")
	if code != 200 {
		t.Fatalf("/progress: %d", code)
	}
	var ps ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &ps); err != nil {
		t.Fatalf("/progress not JSON: %v", err)
	}
	if ps.Done != 3 || ps.Total != 10 {
		t.Fatalf("/progress = %+v", ps)
	}

	if code, body := get("/debug/pprof/cmdline"); code != 200 || len(body) == 0 {
		t.Fatalf("/debug/pprof/cmdline: %d (%d bytes)", code, len(body))
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars: %d", code)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d %q", code, body)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("unknown path: %d, want 404", code)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestEngineProfSnapshot: the collection scaffold hands out per-worker
// slots and snapshots them with spans concatenated.
func TestEngineProfSnapshot(t *testing.T) {
	ep := NewEngineProf(3)
	ep.EnableSpans(16)
	for w := 0; w < 3; w++ {
		ws := ep.Worker(w)
		ws.BusyNS = int64(100 * (w + 1))
		ws.Events = uint64(w + 1)
		ep.Spans(w).Record(Span{Worker: w, Kind: SpanShard, Shard: w, StartNS: int64(w), EndNS: int64(w) + 10})
	}
	ep.Engine.Epochs = 5
	p := ep.Snapshot()
	if len(p.Workers) != 3 || p.Workers[2].BusyNS != 300 {
		t.Fatalf("snapshot workers wrong: %+v", p.Workers)
	}
	if len(p.Spans) != 3 {
		t.Fatalf("snapshot has %d spans, want 3", len(p.Spans))
	}
	if p.Engine.Epochs != 5 {
		t.Fatalf("engine stat not carried: %+v", p.Engine)
	}
	// Snapshot is a copy: mutating it must not touch the live collector.
	p.Workers[0].BusyNS = 999
	if ep.Worker(0).BusyNS == 999 {
		t.Fatal("Snapshot aliases live worker stats")
	}
}

func ExampleProfile_WriteText() {
	p := &Profile{}
	p.Engine = EngineStat{Workers: 1, Shards: 2, LookaheadNS: 1000, Epochs: 4, SoloBatches: 4}
	p.Kernels = []KernelStat{{Shard: 0, Scheduled: 10, Executed: 10}}
	var b bytes.Buffer
	_ = p.WriteText(&b)
	fmt.Print(strings.Split(b.String(), "\n")[0])
	// Output: engine: workers=1 shards=2 lookahead=1µs
}
