package enginestat

import (
	"fmt"
	"io"
	"sort"
)

// SpanKind classifies a recorded wall-clock interval.
type SpanKind uint8

const (
	// SpanShard is a worker executing one shard's kernel window.
	SpanShard SpanKind = iota
	// SpanSolo is the coordinator executing a batched single-busy-shard
	// window outside the barrier protocol.
	SpanSolo
	// SpanBarrier is the coordinator waiting for helper acks at the end
	// of an epoch.
	SpanBarrier
	// SpanExchange is the coordinator moving cross-shard events between
	// epochs (deliver + collect + sort).
	SpanExchange
)

var spanKindNames = [...]string{"shard", "solo", "barrier", "exchange"}

func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Span is one wall-clock interval on a worker's timeline. Shard is the
// shard executed for SpanShard/SpanSolo spans, -1 otherwise.
type Span struct {
	Worker  int
	Kind    SpanKind
	Shard   int
	StartNS int64
	EndNS   int64
}

// SpanLog is a bounded, worker-local span recorder. Each worker owns one
// log exclusively during an epoch; logs are only read after the engine
// quiesces. When the cap is reached further spans are dropped (and
// counted), keeping the memory bound hard even on very long runs.
type SpanLog struct {
	spans   []Span
	cap     int
	dropped uint64
}

// Record appends a span if under cap. Never called concurrently for one log.
func (l *SpanLog) Record(s Span) {
	if l == nil {
		return
	}
	if len(l.spans) >= l.cap {
		l.dropped++
		return
	}
	l.spans = append(l.spans, s)
}

// Dropped reports how many spans exceeded the cap.
func (l *SpanLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// WriteChromeTrace writes the profile's wall-clock spans as Chrome
// trace-event JSON, the same idiom as internal/trace's exporter but on
// the *wall-clock* timeline: one process group ("engine wall-clock"),
// one track (tid) per worker, duration ("X") events for every recorded
// span. Timestamps are nanoseconds since the earliest span, rendered as
// microseconds with nanosecond precision, so the output is byte-stable
// for a given Profile and starts near zero regardless of process uptime.
//
// Load the file in ui.perfetto.dev next to the simulated-time trace:
// barrier stalls and steal imbalance appear as bars per worker.
func (p *Profile) WriteChromeTrace(w io.Writer) error {
	spans := make([]Span, len(p.Spans))
	copy(spans, p.Spans)
	sort.Slice(spans, func(i, j int) bool {
		a, b := &spans[i], &spans[j]
		if a.StartNS != b.StartNS {
			return a.StartNS < b.StartNS
		}
		if a.Worker != b.Worker {
			return a.Worker < b.Worker
		}
		return a.EndNS < b.EndNS
	})
	var base int64
	if len(spans) > 0 {
		base = spans[0].StartNS
	}
	workers := map[int]bool{}
	for i := range spans {
		workers[spans[i].Worker] = true
	}
	var tids []int
	for id := range workers {
		tids = append(tids, id)
	}
	sort.Ints(tids)

	ts := func(ns int64) string { return fmt.Sprintf("%d.%03d", ns/1000, ns%1000) }
	bw := &errWriter{w: w}
	bw.printf("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	first := true
	meta := func(tid int, key, name string) {
		if !first {
			bw.printf(",\n")
		}
		first = false
		bw.printf("{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":%q,\"args\":{\"name\":%q}}", tid, key, name)
	}
	meta(0, "process_name", "engine wall-clock")
	for _, tid := range tids {
		name := fmt.Sprintf("worker%d", tid)
		if tid == 0 {
			name = "worker0 (coordinator)"
		}
		meta(tid, "thread_name", name)
	}
	for i := range spans {
		s := &spans[i]
		if !first {
			bw.printf(",\n")
		}
		first = false
		name := s.Kind.String()
		if s.Shard >= 0 {
			name = fmt.Sprintf("%s %d", name, s.Shard)
		}
		dur := s.EndNS - s.StartNS
		bw.printf("{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"dur\":%d.%03d,\"name\":%q,\"args\":{\"kind\":%q,\"shard\":%d}}",
			s.Worker, ts(s.StartNS-base), dur/1000, dur%1000, name, s.Kind.String(), s.Shard)
	}
	bw.printf("\n]}\n")
	return bw.err
}

// errWriter folds write errors so export loops stay uncluttered (same
// idiom as internal/trace).
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
