// Package enginestat is the execution engine's self-observability layer:
// a low-overhead wall-clock profiler for the simulator itself, as opposed
// to internal/metrics and internal/trace, which observe the *simulated*
// network in simulated time.
//
// The profiler answers the questions the scaling work keeps asking: where
// does wall-clock time go inside an epoch (kernel execution vs barrier
// stall vs steal-loop overhead vs exchange/merge), how well is the
// lookahead window utilized (events per epoch, active shards per
// barrier), how hot are the frame/packet pools, and how large did the
// kernel arenas grow.
//
// Design constraints, in order:
//
//   - Zero cost when off. Profiling is opt-in; a disabled engine pays
//     only nil checks on per-epoch (never per-event) paths, and a
//     profiled run is byte-identical to an unprofiled one — the profiler
//     reads wall clocks but never feeds anything back into simulation
//     state.
//   - Worker-local collection. Each engine worker writes its own
//     WorkerStat; nothing is shared during an epoch, and the stats are
//     merged (plain commutative sums) only after the engine quiesces.
//   - Deterministic rendering. A given Profile value renders to
//     byte-identical text/JSON: fixed field order, no map iteration, no
//     timestamps taken at render time.
//
// The package deliberately depends only on the standard library and
// internal/report, so the engine layers (parsim, core, sim, proto,
// fabric) can feed it without cycles.
package enginestat

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"sanft/internal/report"
)

// epoch is the process-wide monotonic base for every wall-clock reading
// the profiler takes, so spans from different workers share one timeline.
var epoch = time.Now()

// NowNS returns nanoseconds since the process profiling epoch, from the
// monotonic clock.
func NowNS() int64 { return int64(time.Since(epoch)) }

// WorkerStat is one engine worker's wall-clock account of a profiled run.
// Worker 0 is the coordinating goroutine (a full epoch participant);
// workers 1..n-1 are the spinning helpers. All fields are plain sums, so
// merging stats is commutative and associative.
type WorkerStat struct {
	Worker int `json:"worker"`

	// BusyNS is time spent executing shard kernel windows (RunBefore /
	// solo batches) — the only bucket that does simulation work.
	BusyNS int64 `json:"busy_ns"`
	// StallNS is barrier time: the coordinator waiting for helper acks,
	// and helpers spinning on the epoch generation between windows.
	StallNS int64 `json:"stall_ns"`
	// StealNS is claim-loop overhead: advancing the shared cursor and
	// bookkeeping around each claimed shard, outside kernel code.
	StealNS int64 `json:"steal_ns"`
	// ExchangeNS is coordinator-only: cross-shard event delivery,
	// outbox collection, inbox sorting, and epoch-window scanning.
	ExchangeNS int64 `json:"exchange_ns"`
	// AwakeNS is the wall-clock window the worker was accountable for:
	// the coordinator's time inside Run, a helper's time between wake
	// and park. The profiler's invariant (verified by test) is that
	// Busy+Stall+Steal+Exchange covers AwakeNS within Tolerance.
	AwakeNS int64 `json:"awake_ns"`

	// Claims counts shard windows this worker executed; StealAttempts
	// and StealHits count cursor claims and successful ones.
	Claims        uint64 `json:"claims"`
	StealAttempts uint64 `json:"steal_attempts"`
	StealHits     uint64 `json:"steal_hits"`
	// Wakes and Parks count the helper's spin/park state transitions.
	Wakes uint64 `json:"wakes"`
	Parks uint64 `json:"parks"`
	// Events counts simulation events executed by this worker.
	Events uint64 `json:"events"`
}

// accounted returns the sum of the worker's explained buckets.
func (w *WorkerStat) accounted() int64 {
	return w.BusyNS + w.StallNS + w.StealNS + w.ExchangeNS
}

// idle reports whether the worker recorded nothing at all (a helper slot
// that never woke, e.g. when GOMAXPROCS capped the pool below the
// requested worker count).
func (w *WorkerStat) idle() bool {
	return w.AwakeNS == 0 && w.accounted() == 0 && w.Claims == 0 && w.Wakes == 0
}

// add folds src into w field-wise (Worker index is kept).
func (w *WorkerStat) add(src *WorkerStat) {
	w.BusyNS += src.BusyNS
	w.StallNS += src.StallNS
	w.StealNS += src.StealNS
	w.ExchangeNS += src.ExchangeNS
	w.AwakeNS += src.AwakeNS
	w.Claims += src.Claims
	w.StealAttempts += src.StealAttempts
	w.StealHits += src.StealHits
	w.Wakes += src.Wakes
	w.Parks += src.Parks
	w.Events += src.Events
}

// Tolerance is the documented accounting slack of the profiler: for every
// worker, the explained buckets (busy + stall + steal + exchange) must
// cover the worker's awake wall-clock within this fraction. The slack is
// the instants between consecutive clock readings — segment boundaries,
// wake/park edges — which are a few instructions each; 20% is generous
// headroom for noisy CI machines. The invariant test asserts it.
const Tolerance = 0.20

// EngineStat is the epoch-loop-level account of a profiled run.
type EngineStat struct {
	Workers     int   `json:"workers"`
	Shards      int   `json:"shards"`
	LookaheadNS int64 `json:"lookahead_ns"`

	// RunWallNS is total wall-clock spent inside Engine.Run.
	RunWallNS int64 `json:"run_wall_ns"`

	// Epochs counts epoch windows; BarrierEpochs those that actually
	// synchronized more than one busy shard; SoloBatches the inline
	// single-busy-shard batches that bypassed the barrier protocol.
	Epochs        uint64 `json:"epochs"`
	BarrierEpochs uint64 `json:"barrier_epochs"`
	SoloBatches   uint64 `json:"solo_batches"`

	// Exchanged counts cross-shard events that crossed epoch barriers.
	Exchanged uint64 `json:"exchanged"`

	// WindowNS sums the simulated width of barrier epoch windows, and
	// ActiveShardSum the busy-shard count per barrier epoch — together
	// they give lookahead-window utilization (events per window, average
	// available parallelism).
	WindowNS       int64  `json:"window_ns"`
	ActiveShardSum uint64 `json:"active_shard_sum"`
}

func (e *EngineStat) add(src *EngineStat) {
	if e.Workers == 0 {
		e.Workers, e.Shards, e.LookaheadNS = src.Workers, src.Shards, src.LookaheadNS
	}
	e.RunWallNS += src.RunWallNS
	e.Epochs += src.Epochs
	e.BarrierEpochs += src.BarrierEpochs
	e.SoloBatches += src.SoloBatches
	e.Exchanged += src.Exchanged
	e.WindowNS += src.WindowNS
	e.ActiveShardSum += src.ActiveShardSum
}

// KernelStat is one shard kernel's event-machinery account.
type KernelStat struct {
	Shard          int    `json:"shard"`
	Scheduled      uint64 `json:"scheduled"`
	Cancelled      uint64 `json:"cancelled"`
	Executed       uint64 `json:"executed"`
	Pending        int    `json:"pending"`
	ArenaHighWater int    `json:"arena_high_water"`
}

// PoolStat is the frame/packet pool traffic observed during a profiled
// run. Gets count pooled clones served; Misses count pool refills (fresh
// allocations), so HitRate = 1 - Misses/Gets. The counters are
// process-wide (the pools are shared), so overlapping profiled runs in
// one process see each other's traffic.
type PoolStat struct {
	FrameGets    uint64 `json:"frame_gets"`
	FrameMisses  uint64 `json:"frame_misses"`
	PacketGets   uint64 `json:"packet_gets"`
	PacketMisses uint64 `json:"packet_misses"`
}

func (p *PoolStat) add(src *PoolStat) {
	p.FrameGets += src.FrameGets
	p.FrameMisses += src.FrameMisses
	p.PacketGets += src.PacketGets
	p.PacketMisses += src.PacketMisses
}

func hitRate(gets, misses uint64) float64 {
	if gets == 0 {
		return 0
	}
	return round4(1 - float64(misses)/float64(gets))
}

// Profile is the collected, serializable result of a profiled run:
// engine totals, per-worker wall-clock accounts, per-shard kernel
// counters, pool traffic, and (when span recording was enabled) the
// wall-clock spans for the Perfetto export.
type Profile struct {
	Engine  EngineStat   `json:"engine"`
	Workers []WorkerStat `json:"workers,omitempty"`
	Kernels []KernelStat `json:"kernels,omitempty"`
	Pools   PoolStat     `json:"pools"`
	Spans   []Span       `json:"-"`
}

// AddFrom folds src into p. Every field is a commutative sum (workers and
// kernels are matched by index, extending as needed), so aggregating
// profiles from many runs — or worker-local stats from one run — gives
// the same result in any order. Spans are concatenated and re-sorted at
// export time.
func (p *Profile) AddFrom(src *Profile) {
	p.Engine.add(&src.Engine)
	for i := range src.Workers {
		for len(p.Workers) <= i {
			p.Workers = append(p.Workers, WorkerStat{Worker: len(p.Workers)})
		}
		p.Workers[i].add(&src.Workers[i])
	}
	for i := range src.Kernels {
		for len(p.Kernels) <= i {
			p.Kernels = append(p.Kernels, KernelStat{Shard: len(p.Kernels)})
		}
		k, s := &p.Kernels[i], &src.Kernels[i]
		k.Scheduled += s.Scheduled
		k.Cancelled += s.Cancelled
		k.Executed += s.Executed
		k.Pending += s.Pending
		if s.ArenaHighWater > k.ArenaHighWater {
			k.ArenaHighWater = s.ArenaHighWater
		}
	}
	p.Pools.add(&src.Pools)
	p.Spans = append(p.Spans, src.Spans...)
}

// MergeWorkers flattens per-worker stats into one total, the order-free
// aggregation the commutativity test pins.
func MergeWorkers(ws []WorkerStat) WorkerStat {
	var t WorkerStat
	t.Worker = -1
	for i := range ws {
		t.add(&ws[i])
	}
	return t
}

// TotalEvents sums events executed across all shard kernels.
func (p *Profile) TotalEvents() uint64 {
	var t uint64
	for i := range p.Kernels {
		t += p.Kernels[i].Executed
	}
	return t
}

// Summary is the compact derived view of a Profile — the row-sized
// explanation embedded next to each BENCH_parallel.json measurement.
type Summary struct {
	Epochs          uint64  `json:"epochs"`
	BarrierEpochs   uint64  `json:"barrier_epochs"`
	SoloBatches     uint64  `json:"solo_batches"`
	Exchanged       uint64  `json:"exchanged"`
	Events          uint64  `json:"events"`
	EventsPerEpoch  float64 `json:"events_per_epoch"`
	AvgActiveShards float64 `json:"avg_active_shards"`
	BusyFrac        float64 `json:"busy_frac"`
	StallFrac       float64 `json:"stall_frac"`
	StealFrac       float64 `json:"steal_frac"`
	ExchangeFrac    float64 `json:"exchange_frac"`
	StealHitRate    float64 `json:"steal_hit_rate"`
	FramePoolHit    float64 `json:"frame_pool_hit_rate"`
	PacketPoolHit   float64 `json:"packet_pool_hit_rate"`
	ArenaHighWater  int     `json:"arena_high_water"`
}

// round4 keeps derived ratios readable and their rendering byte-stable
// regardless of accumulated float noise in the last bits.
func round4(v float64) float64 {
	if v < 0 {
		return -round4(-v)
	}
	return float64(int64(v*1e4+0.5)) / 1e4
}

// Summarize derives the compact view.
func (p *Profile) Summarize() Summary {
	s := Summary{
		Epochs:        p.Engine.Epochs,
		BarrierEpochs: p.Engine.BarrierEpochs,
		SoloBatches:   p.Engine.SoloBatches,
		Exchanged:     p.Engine.Exchanged,
		Events:        p.TotalEvents(),
	}
	if p.Engine.Epochs > 0 {
		s.EventsPerEpoch = round4(float64(s.Events) / float64(p.Engine.Epochs))
	}
	if p.Engine.BarrierEpochs > 0 {
		s.AvgActiveShards = round4(float64(p.Engine.ActiveShardSum) / float64(p.Engine.BarrierEpochs))
	}
	t := MergeWorkers(p.Workers)
	if acc := t.accounted(); acc > 0 {
		s.BusyFrac = round4(float64(t.BusyNS) / float64(acc))
		s.StallFrac = round4(float64(t.StallNS) / float64(acc))
		s.StealFrac = round4(float64(t.StealNS) / float64(acc))
		s.ExchangeFrac = round4(float64(t.ExchangeNS) / float64(acc))
	}
	if t.StealAttempts > 0 {
		s.StealHitRate = round4(float64(t.StealHits) / float64(t.StealAttempts))
	}
	s.FramePoolHit = hitRate(p.Pools.FrameGets, p.Pools.FrameMisses)
	s.PacketPoolHit = hitRate(p.Pools.PacketGets, p.Pools.PacketMisses)
	for i := range p.Kernels {
		if hw := p.Kernels[i].ArenaHighWater; hw > s.ArenaHighWater {
			s.ArenaHighWater = hw
		}
	}
	return s
}

// WriteJSON renders the profile as one indented JSON object. Field order
// is fixed by the struct definitions, so a given Profile value always
// renders to the same bytes.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ms renders nanoseconds as milliseconds with fixed precision.
func ms(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1e6) }

// WriteText renders the profile as a human-readable report: engine
// totals, a per-worker wall-clock table, kernel counters, and pool hit
// rates. Byte-stable for a given Profile value.
func (p *Profile) WriteText(w io.Writer) error {
	var b strings.Builder
	e := &p.Engine
	fmt.Fprintf(&b, "engine: workers=%d shards=%d lookahead=%s\n",
		e.Workers, e.Shards, time.Duration(e.LookaheadNS))
	fmt.Fprintf(&b, "  run wall      %s ms\n", ms(e.RunWallNS))
	fmt.Fprintf(&b, "  epochs        %d (%d barrier, %d solo batches)\n",
		e.Epochs, e.BarrierEpochs, e.SoloBatches)
	fmt.Fprintf(&b, "  exchanged     %d cross-shard events\n", e.Exchanged)
	sum := p.Summarize()
	fmt.Fprintf(&b, "  utilization   %.4g events/epoch, %.4g active shards/barrier\n",
		sum.EventsPerEpoch, sum.AvgActiveShards)
	b.WriteString(p.WorkerTable().String())
	if len(p.Kernels) > 0 {
		b.WriteString("kernels:\n")
		for i := range p.Kernels {
			k := &p.Kernels[i]
			fmt.Fprintf(&b, "  shard %-4d scheduled=%d cancelled=%d executed=%d pending=%d arena_high_water=%d\n",
				k.Shard, k.Scheduled, k.Cancelled, k.Executed, k.Pending, k.ArenaHighWater)
		}
	}
	fmt.Fprintf(&b, "pools: frame gets=%d misses=%d hit=%.4g  packet gets=%d misses=%d hit=%.4g\n",
		p.Pools.FrameGets, p.Pools.FrameMisses, sum.FramePoolHit,
		p.Pools.PacketGets, p.Pools.PacketMisses, sum.PacketPoolHit)
	_, err := io.WriteString(w, b.String())
	return err
}

// WorkerTable renders the per-worker accounts through the shared report
// contract, so CLIs print the engine report the same way they print every
// other result table.
func (p *Profile) WorkerTable() *report.Table {
	t := &report.Table{
		Name: "engine wall-clock by worker",
		Header: []string{"worker", "busy_ms", "stall_ms", "steal_ms", "exchange_ms",
			"awake_ms", "claims", "steal_hit", "events"},
	}
	for i := range p.Workers {
		w := &p.Workers[i]
		hit := "-"
		if w.StealAttempts > 0 {
			hit = fmt.Sprintf("%.3f", float64(w.StealHits)/float64(w.StealAttempts))
		}
		t.Cells = append(t.Cells, []string{
			fmt.Sprint(w.Worker), ms(w.BusyNS), ms(w.StallNS), ms(w.StealNS),
			ms(w.ExchangeNS), ms(w.AwakeNS), fmt.Sprint(w.Claims), hit, fmt.Sprint(w.Events),
		})
	}
	return t
}
