package enginestat

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Server is the live telemetry endpoint: a plain net/http server exposing
// the latest *published* observability snapshots plus the Go runtime's
// own introspection handlers.
//
//	/metrics       Prometheus text format (latest published snapshot)
//	/profile       latest published engine Profile (JSON)
//	/progress      campaign progress (jobs done/total, wall-clock, ETA)
//	/debug/pprof/  Go CPU/heap/goroutine profiles
//	/debug/vars    expvar
//
// The simulator's registries and profiles are single-logical-thread
// values, so HTTP handlers never touch them: the owning thread renders a
// snapshot at safe points (sample ticks, job boundaries, Run end) and
// Publish* swaps it in atomically. Handlers only ever read the swapped
// pointers, so the server is race-free by construction and a scrape can
// never observe a half-updated registry.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	once sync.Once

	metrics  atomic.Pointer[[]byte]
	profile  atomic.Pointer[Profile]
	progress atomic.Pointer[func() ProgressSnapshot]
}

// ProgressSnapshot is the campaign-progress payload served at /progress.
type ProgressSnapshot struct {
	Done      int64   `json:"done"`
	Total     int64   `json:"total"`
	ElapsedMS float64 `json:"elapsed_ms"`
	AvgJobMS  float64 `json:"avg_job_ms"`
	ETAMS     float64 `json:"eta_ms"`
}

// NewServer starts a telemetry server on addr (host:port; use port 0 for
// an ephemeral port, Addr reports the bound address). The error is the
// listen failure, if any.
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/profile", s.handleProfile)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down. Safe to call more than once.
func (s *Server) Close() error {
	var err error
	s.once.Do(func() { err = s.srv.Close() })
	return err
}

// PublishMetrics swaps in a rendered Prometheus text snapshot. The caller
// must not mutate b afterwards.
func (s *Server) PublishMetrics(b []byte) { s.metrics.Store(&b) }

// PublishProfile swaps in an engine Profile snapshot. The caller must not
// mutate p afterwards.
func (s *Server) PublishProfile(p *Profile) { s.profile.Store(p) }

// SetProgress installs the campaign-progress source. fn must be safe to
// call from HTTP handler goroutines (Pool.Progress snapshots are — they
// read only atomics).
func (s *Server) SetProgress(fn func() ProgressSnapshot) { s.progress.Store(&fn) }

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "sanft telemetry\n\n/metrics\n/profile\n/progress\n/debug/pprof/\n/debug/vars\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if b := s.metrics.Load(); b != nil {
		_, _ = w.Write(*b)
		return
	}
	// Nothing published yet: still a valid (empty) exposition, so scrapes
	// before the first sample don't error.
	fmt.Fprint(w, "# no metrics published yet\n")
}

func (s *Server) handleProfile(w http.ResponseWriter, _ *http.Request) {
	p := s.profile.Load()
	if p == nil {
		http.Error(w, "no profile published yet", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = p.WriteJSON(w)
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	fn := s.progress.Load()
	if fn == nil {
		http.Error(w, "no campaign in progress", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode((*fn)())
}
