package enginestat

// EngineProf is the live recording area a profiled engine writes into:
// one WorkerStat (and optionally one SpanLog) per worker, plus the
// engine-level totals. Ownership discipline makes it race-free without
// locks: worker i writes only Worker(i)/Spans(i) while it is running an
// epoch, the engine-level fields are coordinator-only, and readers take a
// Snapshot only after the engine has quiesced (every helper write is
// sequenced before its barrier ack, which the coordinator observes
// before returning from Run).
type EngineProf struct {
	// Engine holds the epoch-loop totals; written by the coordinator only.
	Engine EngineStat

	workers []WorkerStat
	logs    []*SpanLog
}

// NewEngineProf sizes a recording area for the given worker count
// (worker 0 is the coordinator). Slots for helpers that never run — the
// engine caps its pool at GOMAXPROCS and shard count — simply stay zero.
func NewEngineProf(workers int) *EngineProf {
	if workers < 1 {
		workers = 1
	}
	p := &EngineProf{workers: make([]WorkerStat, workers)}
	for i := range p.workers {
		p.workers[i].Worker = i
	}
	return p
}

// Worker returns worker i's stat record. The record is owned by that
// worker while the engine runs.
func (p *EngineProf) Worker(i int) *WorkerStat { return &p.workers[i] }

// Spans returns worker i's span log, or nil when span recording is off
// (SpanLog.Record is nil-safe, so callers pass it through unconditionally).
func (p *EngineProf) Spans(i int) *SpanLog {
	if p.logs == nil {
		return nil
	}
	return p.logs[i]
}

// EnableSpans turns on per-worker span recording with a hard cap per
// worker (spans beyond it are dropped and counted). Call before the run
// being recorded.
func (p *EngineProf) EnableSpans(capPerWorker int) {
	p.logs = make([]*SpanLog, len(p.workers))
	for i := range p.logs {
		p.logs[i] = &SpanLog{cap: capPerWorker}
	}
}

// SpansDropped sums spans dropped over the per-worker caps.
func (p *EngineProf) SpansDropped() uint64 {
	var n uint64
	for _, lg := range p.logs {
		n += lg.Dropped()
	}
	return n
}

// Snapshot copies the recorded stats into a standalone Profile. Only
// valid while the engine is quiescent (between Run calls).
func (p *EngineProf) Snapshot() *Profile {
	out := &Profile{Engine: p.Engine}
	out.Workers = append([]WorkerStat(nil), p.workers...)
	for _, lg := range p.logs {
		if lg != nil {
			out.Spans = append(out.Spans, lg.spans...)
		}
	}
	return out
}
