package parsim

import (
	"fmt"
	"testing"
	"time"

	"sanft/internal/sim"
)

// toyShard is a minimal logical process: it records every message it
// receives, does some local RNG-driven work, and forwards tokens to a
// peer with at least the lookahead of delay.
type toyShard struct {
	id   int
	k    *sim.Kernel
	port *Port
	log  []string
}

func (s *toyShard) Kernel() *sim.Kernel { return s.k }

const toyLookahead = 100 * time.Nanosecond

// buildToyRing wires n toy shards in a ring: each token bounces around,
// gaining a hop count, with an RNG-chosen extra delay on top of the
// minimum. Returns the shards and the engine.
func buildToyRing(n, workers int, rootSeed int64, tokens int) ([]*toyShard, *Engine) {
	shards := make([]*toyShard, n)
	ishards := make([]Shard, n)
	for i := range shards {
		shards[i] = &toyShard{id: i, k: sim.New(ShardSeed(rootSeed, i))}
		ishards[i] = shards[i]
	}
	e := NewEngine(ishards, toyLookahead, workers)
	var hop func(s *toyShard, token, hops int)
	hop = func(s *toyShard, token, hops int) {
		s.log = append(s.log, fmt.Sprintf("t=%d token=%d hops=%d", s.k.Now(), token, hops))
		if hops >= 12 {
			return
		}
		// Local work: burn events and RNG between hops.
		jitter := time.Duration(s.k.Rand().Intn(300)) * time.Nanosecond
		s.k.After(jitter, func() {
			next := (s.id + 1) % n
			at := s.k.Now().Add(toyLookahead + time.Duration(s.k.Rand().Intn(50))*time.Nanosecond)
			s.port.Send(at, next, func() { hop(shards[next], token, hops+1) })
		})
	}
	for i := range shards {
		s := shards[i]
		s.port = e.Port(i)
		for tk := 0; tk < tokens; tk++ {
			token := i*100 + tk
			start := time.Duration(tk) * 77 * time.Nanosecond
			s.k.After(start, func() { hop(s, token, 0) })
		}
	}
	return shards, e
}

// toyDump renders the full observable state of a toy run.
func toyDump(n, workers int, rootSeed int64) string {
	shards, e := buildToyRing(n, workers, rootSeed, 3)
	e.Run(sim.Time(0).Add(time.Millisecond))
	out := ""
	for _, s := range shards {
		out += fmt.Sprintf("shard %d clock=%d rand=%d\n", s.id, s.k.Now(), s.k.Rand().Int63())
		for _, l := range s.log {
			out += "  " + l + "\n"
		}
	}
	out += fmt.Sprintf("epochs>0=%v exchanged=%d\n", e.Epochs() > 0, e.Exchanged())
	return out
}

// TestEngineWorkerCountInvariance is the package-level determinism core:
// the same partition must produce byte-identical state for any worker
// count, including the cross-shard event count and every shard's RNG
// stream position.
func TestEngineWorkerCountInvariance(t *testing.T) {
	base := toyDump(5, 1, 42)
	if len(base) == 0 {
		t.Fatal("empty dump")
	}
	for _, w := range []int{2, 4, 8} {
		if got := toyDump(5, w, 42); got != base {
			t.Fatalf("workers=%d diverged from workers=1:\nbase:\n%s\ngot:\n%s", w, base, got)
		}
	}
	// And re-running with the same worker count is stable too.
	if got := toyDump(5, 4, 42); got != base {
		t.Fatal("repeat run with workers=4 diverged")
	}
	if toyDump(5, 1, 43) == base {
		t.Fatal("different seed produced identical dump; toy model is not exercising the RNG")
	}
}

// TestEngineExchangesEvents sanity-checks that the toy actually crosses
// shard boundaries (otherwise the invariance test proves nothing).
func TestEngineExchangesEvents(t *testing.T) {
	shards, e := buildToyRing(4, 2, 7, 2)
	e.Run(sim.Time(0).Add(time.Millisecond))
	if e.Exchanged() == 0 {
		t.Fatal("no cross-shard events exchanged")
	}
	if e.Epochs() == 0 {
		t.Fatal("no epochs executed")
	}
	total := 0
	for _, s := range shards {
		total += len(s.log)
	}
	// 4 shards × 2 tokens, each making 13 log entries (hops 0..12).
	if want := 4 * 2 * 13; total != want {
		t.Fatalf("logged %d hops, want %d", total, want)
	}
	if e.Now() != sim.Time(0).Add(time.Millisecond) {
		t.Fatalf("engine frontier %v, want 1ms", e.Now())
	}
	for _, s := range shards {
		if s.k.Now() != e.Now() {
			t.Fatalf("shard %d clock %v not aligned with frontier %v", s.id, s.k.Now(), e.Now())
		}
	}
}

// TestLookaheadViolationPanics: posting a cross-shard event inside the
// current epoch must panic loudly rather than silently corrupt causality.
func TestLookaheadViolationPanics(t *testing.T) {
	a := &toyShard{id: 0, k: sim.New(1)}
	b := &toyShard{id: 1, k: sim.New(2)}
	e := NewEngine([]Shard{a, b}, toyLookahead, 1)
	port := e.Port(0)
	a.k.After(10*time.Nanosecond, func() {
		// Arrival inside the epoch [10ns-window): lookahead violation.
		port.Send(a.k.Now(), 1, func() {})
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected lookahead-violation panic")
		}
	}()
	e.Run(sim.Time(0).Add(time.Microsecond))
}

// TestEngineIdleSkip: an engine whose only events are sparse must not
// execute epochs proportional to simulated time.
func TestEngineIdleSkip(t *testing.T) {
	s := &toyShard{id: 0, k: sim.New(1)}
	e := NewEngine([]Shard{s}, toyLookahead, 1)
	fired := 0
	for i := 0; i < 10; i++ {
		s.k.After(time.Duration(i)*time.Millisecond, func() { fired++ })
	}
	e.Run(sim.Time(0).Add(20 * time.Millisecond))
	if fired != 10 {
		t.Fatalf("fired %d of 10 events", fired)
	}
	// 20ms / 100ns lookahead would be 200k windows if idle time were
	// walked; event-driven skipping needs ~one window per event.
	if e.Epochs() > 100 {
		t.Fatalf("executed %d epochs for 10 sparse events; idle skipping is broken", e.Epochs())
	}
}

func TestPoolDeterministicGather(t *testing.T) {
	job := func(i int) string {
		// Deterministic per-index work with its own seeded RNG.
		k := sim.New(ShardSeed(99, i))
		return fmt.Sprintf("replica %d -> %d", i, k.Rand().Int63())
	}
	base := Map(Pool{Workers: 1}, 50, job)
	for _, w := range []int{2, 4, 16} {
		got := Map(Pool{Workers: w}, 50, job)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d replica %d: %q != %q", w, i, got[i], base[i])
			}
		}
	}
	if empty := Map(Pool{Workers: 3}, 0, job); len(empty) != 0 {
		t.Fatal("n=0 must return empty")
	}
}

func TestPoolPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic to propagate from pool worker")
		}
	}()
	Pool{Workers: 4}.Do(8, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
}
