package parsim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is the Level-2 executor: independent seeded replicas (chaos
// campaigns, proptest cases, parameter-sweep points) distributed over OS
// workers. Replicas share nothing — each job builds its own cluster from
// its own seed — so the only synchronization is claiming the next index
// from a shared counter (work stealing from one central queue) and the
// final gather, which stores results by replica index. Aggregation order
// is therefore identical for any worker count or scheduling.
type Pool struct {
	// Workers is the OS-level worker count; ≤ 0 means GOMAXPROCS.
	Workers int
}

// Do runs job(0..n-1) across the pool's workers and returns when all
// have finished. A panic in any job is re-raised in the caller after the
// remaining workers drain.
func (p Pool) Do(n int, job func(i int)) {
	if n <= 0 {
		return
	}
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Map runs job(0..n-1) on pool p and gathers the results by index.
func Map[T any](p Pool, n int, job func(i int) T) []T {
	out := make([]T, n)
	p.Do(n, func(i int) { out[i] = job(i) })
	return out
}
