package parsim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"sanft/internal/enginestat"
)

// Pool is the Level-2 executor: independent seeded replicas (chaos
// campaigns, proptest cases, parameter-sweep points) distributed over OS
// workers. Replicas share nothing — each job builds its own cluster from
// its own seed — so the only synchronization is claiming the next index
// from a shared counter (work stealing from one central queue) and the
// final gather, which stores results by replica index. Aggregation order
// is therefore identical for any worker count or scheduling.
type Pool struct {
	// Workers is the OS-level worker count; ≤ 0 means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, is updated as jobs complete so a live
	// telemetry endpoint can report campaign progress. Purely an
	// observer: it never affects scheduling or results.
	Progress *Progress
}

// Progress tracks a campaign's job completion across Pool runs. All
// fields are atomics, so Snapshot is safe to call from any goroutine
// (e.g. an HTTP handler) while the pool is working.
type Progress struct {
	total   atomic.Int64
	done    atomic.Int64
	jobNS   atomic.Int64 // summed per-job wall-clock
	startNS atomic.Int64
}

// Begin (re)arms the tracker for a campaign of n jobs and starts the
// elapsed clock. Call once before the pool runs; Do adds to the counts,
// so several sequential Do calls can share one campaign.
func (p *Progress) Begin(n int) {
	p.total.Store(int64(n))
	p.done.Store(0)
	p.jobNS.Store(0)
	p.startNS.Store(enginestat.NowNS())
}

// add records one finished job that took d nanoseconds.
func (p *Progress) add(d int64) {
	p.jobNS.Add(d)
	p.done.Add(1)
}

// JobDone records one externally timed job — for callers that drive
// their work outside Pool.Do (bench sweeps) but still want live progress.
func (p *Progress) JobDone(wallNS int64) { p.add(wallNS) }

// Snapshot returns the current progress view. The ETA extrapolates from
// mean per-job wall-clock over the remaining jobs, scaled by observed
// parallel throughput (elapsed vs summed job time).
func (p *Progress) Snapshot() enginestat.ProgressSnapshot {
	done := p.done.Load()
	total := p.total.Load()
	elapsed := enginestat.NowNS() - p.startNS.Load()
	s := enginestat.ProgressSnapshot{
		Done:      done,
		Total:     total,
		ElapsedMS: float64(elapsed) / 1e6,
	}
	if done > 0 {
		s.AvgJobMS = float64(p.jobNS.Load()) / float64(done) / 1e6
		// Remaining wall-clock ≈ remaining jobs × observed elapsed-per-job
		// (which already folds in the parallelism actually achieved).
		s.ETAMS = float64(total-done) * float64(elapsed) / float64(done) / 1e6
	}
	return s
}

// Do runs job(0..n-1) across the pool's workers and returns when all
// have finished. A panic in any job is re-raised in the caller after the
// remaining workers drain.
func (p Pool) Do(n int, job func(i int)) {
	if n <= 0 {
		return
	}
	if pr := p.Progress; pr != nil {
		inner := job
		job = func(i int) {
			t0 := enginestat.NowNS()
			inner(i)
			pr.add(enginestat.NowNS() - t0)
		}
	}
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Map runs job(0..n-1) on pool p and gathers the results by index.
func Map[T any](p Pool, n int, job func(i int) T) []T {
	out := make([]T, n)
	p.Do(n, func(i int) { out[i] = job(i) })
	return out
}
