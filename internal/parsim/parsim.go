// Package parsim is a conservative (lookahead-based) parallel
// discrete-event engine with two levels of parallelism:
//
//   - Level 1, sharded execution (Engine): one simulation partitioned
//     into logical shards, each owning a sim.Kernel, executed in epoch
//     windows of one lookahead. Cross-shard events are exchanged at
//     epoch barriers and merged in deterministic (time, srcShard, seq)
//     order, so the result is byte-identical for every worker count —
//     the partition, not the scheduler, defines the semantics.
//   - Level 2, replica parallelism (Pool): independent seeded replicas
//     (chaos campaigns, proptest cases, sweep points) distributed over
//     OS workers by work stealing, with results gathered by replica
//     index so aggregation order is scheduling-independent.
//
// The conservative condition is the classic one: a shard executing the
// window [T, T+L) may only produce events for other shards at times
// ≥ T+L, where L is the lookahead — here the minimum cross-shard fabric
// traversal latency. The paper's own argument makes this safe to rely
// on: the retransmission protocol tolerates any packet delay or loss, so
// correctness never depends on sub-lookahead cross-host reaction times.
//
// The epoch loop is built for short lookaheads (a system-area fabric
// bounds L at a few hundred nanoseconds, so barriers dominate): the
// coordinating goroutine is itself a full epoch participant and keeps
// only workers-1 helper goroutines, helpers spin on an atomic epoch
// generation between back-to-back windows and park on a channel only
// across Run calls (so the per-epoch handoff is an atomic store, not a
// futex round-trip), the exchange buffers are reused across epochs
// without allocating, idle shards align their clocks inline without
// touching a helper, and stretches where only one shard has work at all
// batch many windows into one inline run that pauses only when a
// cross-shard event is actually posted.
package parsim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sanft/internal/enginestat"
	"sanft/internal/sim"
)

// Shard is one logical partition of a simulation: anything owning a
// kernel. The engine drives the kernel through epoch windows; all other
// shard state (NIC, fabric replica, buffers) stays private to the shard.
type Shard interface {
	Kernel() *sim.Kernel
}

// xev is one cross-shard event in flight between epochs.
type xev struct {
	at       sim.Time
	src, dst int
	seq      uint64
	fn       func()
}

// xevLess orders cross-shard events by (time, source shard, per-source
// sequence) — the deterministic merge rule. Two events can never compare
// equal: seq is unique per source.
func xevLess(a, b xev) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// xevSorter adapts an inbox to sort.Interface. The engine keeps one and
// rebinds its slice per sort, so restoring inbox order allocates nothing.
type xevSorter struct{ s []xev }

func (x *xevSorter) Len() int           { return len(x.s) }
func (x *xevSorter) Less(i, j int) bool { return xevLess(x.s[i], x.s[j]) }
func (x *xevSorter) Swap(i, j int)      { x.s[i], x.s[j] = x.s[j], x.s[i] }

// Port is a shard's handle for posting cross-shard events. Each shard
// holds its own port; posts go to a per-source outbox, so shards running
// on different workers never share a write destination.
type Port struct {
	e   *Engine
	src int
}

// Send schedules fn to run on shard dst's kernel at absolute time at.
// It must be called from shard src's execution (during an epoch) and at
// must be at least the current epoch's end — the conservative condition.
// Violations panic: they mean the claimed lookahead was wrong.
func (p *Port) Send(at sim.Time, dst int, fn func()) {
	e := p.e
	if dst < 0 || dst >= len(e.shards) {
		panic(fmt.Sprintf("parsim: send to unknown shard %d", dst))
	}
	if at < e.curEnd {
		panic(fmt.Sprintf("parsim: lookahead violation: shard %d sends event at %v inside epoch ending %v",
			p.src, at, e.curEnd))
	}
	e.seq[p.src]++
	e.outbox[p.src] = append(e.outbox[p.src], xev{at: at, src: p.src, dst: dst, seq: e.seq[p.src], fn: fn})
}

// Engine executes a set of shards under epoch barriers.
type Engine struct {
	shards    []Shard
	lookahead time.Duration
	workers   int

	outbox [][]xev  // per source shard, filled during an epoch
	inbox  [][]xev  // per destination shard, sorted by xevLess
	seq    []uint64 // per-source post counter

	now    sim.Time
	curEnd sim.Time

	epochs    uint64
	exchanged uint64

	// Persistent helper pool, started lazily on the first epoch that has
	// more than one busy shard. The coordinator participates in every
	// epoch itself, so the pool holds workers-1 goroutines. Awake helpers
	// spin on gen: each bump publishes one epoch (epochEnd, active, cursor
	// are written before the bump; the atomic establishes happens-before),
	// helpers claim shards through the atomic cursor and report through
	// doneN. Across Run calls helpers park on their start channel —
	// stopSpin flips them between the two states — so idle engines burn
	// nothing while in-Run epochs hand off with a single atomic store.
	start    []chan struct{}
	gen      atomic.Uint64
	doneN    atomic.Int64
	stopSpin atomic.Bool
	awake    bool    // coordinator-private: helpers are in spin state
	active   []int32 // shards with local events this epoch
	cursor   int64   // atomic work-stealing index into active
	epochEnd sim.Time

	panicMu  sync.Mutex
	panicVal any

	touched []bool // per-dst inbox dirty flags, reused across collects
	sorter  xevSorter

	// Wall-clock profiling (nil = off). The unprofiled engine pays only
	// nil checks on per-epoch paths, never per event; the profiler reads
	// clocks but feeds nothing back, so a profiled run is byte-identical
	// to an unprofiled one. profPrev is the coordinator's last clock
	// mark; helpers take their own local marks.
	prof     *enginestat.EngineProf
	profPrev int64
}

// NewEngine builds an engine over shards with the given lookahead and
// worker count (≤ 0 means GOMAXPROCS). The lookahead must be positive
// and must lower-bound every cross-shard event delay.
func NewEngine(shards []Shard, lookahead time.Duration, workers int) *Engine {
	if len(shards) == 0 {
		panic("parsim: no shards")
	}
	if lookahead <= 0 {
		panic("parsim: lookahead must be positive")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		shards:    shards,
		lookahead: lookahead,
		workers:   workers,
		outbox:    make([][]xev, len(shards)),
		inbox:     make([][]xev, len(shards)),
		seq:       make([]uint64, len(shards)),
		touched:   make([]bool, len(shards)),
	}
}

// Port returns shard i's cross-shard send handle.
func (e *Engine) Port(i int) *Port { return &Port{e: e, src: i} }

// EnableProfiling turns on wall-clock profiling and returns the live
// recording area (idempotent: repeated calls return the same one). Must
// be called while the engine is quiescent — before the first Run or
// between Runs; the helper wake channel publishes it to the pool.
func (e *Engine) EnableProfiling() *enginestat.EngineProf {
	if e.prof == nil {
		e.prof = enginestat.NewEngineProf(e.workers)
		e.prof.Engine.Workers = e.workers
		e.prof.Engine.Shards = len(e.shards)
		e.prof.Engine.LookaheadNS = int64(e.lookahead)
	}
	return e.prof
}

// profMark accrues the coordinator's wall-clock since its previous mark
// into *dst and re-marks. Coordinator-only; callers hold e.prof != nil.
func (e *Engine) profMark(dst *int64) {
	now := enginestat.NowNS()
	*dst += now - e.profPrev
	e.profPrev = now
}

// Workers returns the worker count the engine executes epochs with.
func (e *Engine) Workers() int { return e.workers }

// Lookahead returns the epoch window width.
func (e *Engine) Lookahead() time.Duration { return e.lookahead }

// Now returns the frontier the engine has advanced to. Individual shard
// clocks may lag it between calls; Run aligns them before returning.
func (e *Engine) Now() sim.Time { return e.now }

// Epochs returns how many epoch windows have executed.
func (e *Engine) Epochs() uint64 { return e.epochs }

// Exchanged returns how many cross-shard events have crossed barriers.
func (e *Engine) Exchanged() uint64 { return e.exchanged }

// Shutdown retires the persistent helper goroutines. The engine remains
// usable — the next multi-shard epoch restarts the pool — but callers
// that are done with the engine should Shutdown so idle helpers do not
// outlive it. Safe to call repeatedly, or without ever having run.
// Run always parks the pool before returning, so outside a Run call
// every helper is blocked on its start channel and close releases it.
func (e *Engine) Shutdown() {
	for _, c := range e.start {
		close(c)
	}
	e.start = nil
}

// nextWork returns the earliest pending activity across all shards:
// local kernel events and undelivered cross-shard arrivals.
func (e *Engine) nextWork() (sim.Time, bool) {
	var best sim.Time
	found := false
	note := func(t sim.Time) {
		if !found || t < best {
			best, found = t, true
		}
	}
	for i, s := range e.shards {
		if t, ok := s.Kernel().NextEvent(); ok {
			note(t)
		}
		if len(e.inbox[i]) > 0 {
			note(e.inbox[i][0].at)
		}
	}
	return best, found
}

// deliver schedules shard i's due inbox events (time < end) into its
// kernel, in (time, src, seq) order, and compacts the inbox in place.
func (e *Engine) deliver(i int, end sim.Time) {
	in := e.inbox[i]
	n := 0
	for n < len(in) && in[n].at < end {
		n++
	}
	if n == 0 {
		return
	}
	k := e.shards[i].Kernel()
	for j := 0; j < n; j++ {
		k.At(in[j].at, in[j].fn)
	}
	m := copy(in, in[n:])
	for j := m; j < len(in); j++ {
		in[j] = xev{} // drop closure refs in the vacated tail
	}
	e.inbox[i] = in[:m]
}

// ensureWorkers lazily starts the persistent pool. The coordinator is a
// full epoch participant, so only workers-1 helpers are needed, further
// capped at GOMAXPROCS-1 and shards-1: helpers beyond the cores that can
// run them (or the shards there are to claim) would only add per-epoch
// signalling cost, and the worker count never affects results — only
// wall-clock time.
func (e *Engine) ensureWorkers() {
	if e.start != nil {
		return
	}
	n := e.workers - 1
	if m := len(e.shards) - 1; n > m {
		n = m
	}
	if p := runtime.GOMAXPROCS(0) - 1; n > p {
		n = p
	}
	if n < 0 {
		n = 0
	}
	e.start = make([]chan struct{}, n)
	for g := 0; g < n; g++ {
		e.start[g] = make(chan struct{}, 1)
		go e.workerLoop(g)
	}
}

// spinYield bounds how hot a helper spins between epochs: every
// spinYield empty polls it yields the processor, so a helper waiting out
// a long inline (solo-shard) stretch never starves the coordinator.
const spinYield = 64

// workerLoop is one persistent helper. Parked state: blocked on the
// start channel (a token wakes it into spin state; close retires it).
// Spin state: poll gen, and on each bump claim busy shards off the
// shared cursor and report through doneN; when stopSpin is raised, ack
// through doneN and park again.
func (e *Engine) workerLoop(id int) {
	var lastGen uint64
	for range e.start[id] {
		// The wake token publishes e.prof (written while the helper was
		// parked): the channel send/receive is the happens-before edge. In
		// the other direction every stat write below is sequenced before a
		// doneN.Add, and the coordinator reads stats only after observing
		// the matching doneN — so the records are race-free by protocol.
		var ws *enginestat.WorkerStat
		var lg *enginestat.SpanLog
		var prev, awake0 int64
		if e.prof != nil {
			ws = e.prof.Worker(id + 1)
			lg = e.prof.Spans(id + 1)
			ws.Wakes++
			prev = enginestat.NowNS()
			awake0 = prev
		}
		for spins := 0; ; {
			if e.stopSpin.Load() {
				if ws != nil {
					now := enginestat.NowNS()
					ws.StallNS += now - prev
					ws.AwakeNS += now - awake0
					ws.Parks++
				}
				e.doneN.Add(1)
				break
			}
			if g := e.gen.Load(); g != lastGen {
				lastGen = g
				if ws != nil {
					ws.StallNS += enginestat.NowNS() - prev
				}
				e.claimShards(ws, lg)
				if ws != nil {
					prev = enginestat.NowNS()
				}
				e.doneN.Add(1)
				spins = 0
				continue
			}
			if spins++; spins%spinYield == 0 {
				runtime.Gosched()
			}
		}
	}
}

// wakeWorkers moves every helper from parked to spin state. Called on
// the first barrier epoch of a Run; no-op while already awake.
func (e *Engine) wakeWorkers() {
	if e.awake {
		return
	}
	e.ensureWorkers()
	e.stopSpin.Store(false)
	e.doneN.Store(0)
	for _, c := range e.start {
		c <- struct{}{}
	}
	e.awake = true
}

// parkWorkers returns every helper to its start channel and waits for
// the acks, so that after it returns no helper touches engine state —
// Shutdown may close the channels, and an idle engine burns no CPU.
// Only called between epochs, when every helper is spinning idle.
func (e *Engine) parkWorkers() {
	if !e.awake {
		return
	}
	e.doneN.Store(0)
	e.stopSpin.Store(true)
	for e.doneN.Load() != int64(len(e.start)) {
		runtime.Gosched()
	}
	e.awake = false
}

// claimShards runs claimed shards to the published epoch end. A panic in
// shard code is captured (first wins) and re-raised by the coordinator
// after the barrier; the panicking worker stops claiming, the rest of
// the epoch's shards drain onto its peers.
//
// ws is the claiming worker's profiling record (nil keeps the original
// tight loop). The profiled variant takes its own local clock marks —
// claimShards runs concurrently on every worker, so it cannot share the
// coordinator's mark — splitting each iteration into steal overhead
// (cursor claim + bookkeeping) and busy kernel time.
func (e *Engine) claimShards(ws *enginestat.WorkerStat, lg *enginestat.SpanLog) {
	defer func() {
		if r := recover(); r != nil {
			e.panicMu.Lock()
			if e.panicVal == nil {
				e.panicVal = r
			}
			e.panicMu.Unlock()
		}
	}()
	end := e.epochEnd
	if ws == nil {
		for {
			i := int(atomic.AddInt64(&e.cursor, 1))
			if i >= len(e.active) {
				return
			}
			e.shards[e.active[i]].Kernel().RunBefore(end)
		}
	}
	prev := enginestat.NowNS()
	for {
		i := int(atomic.AddInt64(&e.cursor, 1))
		ws.StealAttempts++
		if i >= len(e.active) {
			ws.StealNS += enginestat.NowNS() - prev
			return
		}
		ws.StealHits++
		ws.Claims++
		k := e.shards[e.active[i]].Kernel()
		ex0 := k.Executed()
		t0 := enginestat.NowNS()
		ws.StealNS += t0 - prev
		k.RunBefore(end)
		prev = enginestat.NowNS()
		ws.BusyNS += prev - t0
		ws.Events += k.Executed() - ex0
		lg.Record(enginestat.Span{Worker: ws.Worker, Kind: enginestat.SpanShard,
			Shard: int(e.active[i]), StartNS: t0, EndNS: prev})
	}
}

// runEpoch advances every shard kernel to end. Shards with no local
// events only need their clock aligned — done inline, off the helpers'
// plate. The busy shards are distributed over the coordinator plus the
// spinning helper pool by work stealing; with one busy shard (or one
// worker) the barrier is skipped entirely. The final state does not
// depend on the distribution: shards share no mutable state during an
// epoch, and everything they exchange goes through the sorted outbox
// merge afterwards.
func (e *Engine) runEpoch(end sim.Time) {
	e.active = e.active[:0]
	for i, s := range e.shards {
		if t, ok := s.Kernel().NextEvent(); ok && t < end {
			e.active = append(e.active, int32(i))
		} else {
			s.Kernel().RunBefore(end) // clock alignment only
		}
	}
	var w0 *enginestat.WorkerStat
	var lg0 *enginestat.SpanLog
	if e.prof != nil {
		w0 = e.prof.Worker(0)
		lg0 = e.prof.Spans(0)
		if len(e.active) > 1 {
			// Multi-shard epochs measure available parallelism regardless
			// of whether a helper pool actually ran them.
			e.prof.Engine.BarrierEpochs++
			e.prof.Engine.ActiveShardSum += uint64(len(e.active))
		}
		e.profMark(&w0.ExchangeNS) // busy scan + idle clock alignment
	}
	if len(e.active) <= 1 || e.workers <= 1 {
		for _, i := range e.active {
			k := e.shards[i].Kernel()
			if w0 == nil {
				k.RunBefore(end)
				continue
			}
			ex0 := k.Executed()
			t0 := e.profPrev
			k.RunBefore(end)
			e.profMark(&w0.BusyNS)
			w0.Events += k.Executed() - ex0
			w0.Claims++
			lg0.Record(enginestat.Span{Worker: 0, Kind: enginestat.SpanShard,
				Shard: int(i), StartNS: t0, EndNS: e.profPrev})
		}
		return
	}
	e.wakeWorkers()
	e.epochEnd = end
	atomic.StoreInt64(&e.cursor, -1)
	e.doneN.Store(0)
	e.gen.Add(1) // publish the epoch to the spinning helpers
	if w0 == nil {
		e.claimShards(nil, nil)
	} else {
		e.profMark(&w0.StealNS) // wake + epoch publish overhead
		e.claimShards(w0, lg0)
		e.profPrev = enginestat.NowNS() // claimShards marked its own interior
	}
	barStart := e.profPrev
	for e.doneN.Load() != int64(len(e.start)) {
		runtime.Gosched()
	}
	if w0 != nil {
		e.profMark(&w0.StallNS)
		lg0.Record(enginestat.Span{Worker: 0, Kind: enginestat.SpanBarrier,
			Shard: -1, StartNS: barStart, EndNS: e.profPrev})
	}
	if e.panicVal != nil {
		p := e.panicVal
		e.panicVal = nil
		panic(p) // Run's deferred parkWorkers quiesces the helpers
	}
}

// collect moves every outbox event posted during the epoch into its
// destination inbox and restores the inbox sort order. All buffers are
// reused; steady-state exchange allocates nothing.
func (e *Engine) collect() {
	dirty := false
	for src := range e.outbox {
		out := e.outbox[src]
		for j, ev := range out {
			e.inbox[ev.dst] = append(e.inbox[ev.dst], ev)
			e.touched[ev.dst] = true
			dirty = true
			e.exchanged++
			out[j].fn = nil // inbox owns the closure now
		}
		e.outbox[src] = out[:0]
	}
	if !dirty {
		return
	}
	for dst := range e.touched {
		if !e.touched[dst] {
			continue
		}
		e.touched[dst] = false
		e.sorter.s = e.inbox[dst]
		sort.Sort(&e.sorter)
		e.sorter.s = nil
	}
}

// soloShard reports whether exactly one shard has pending work before
// until and nothing is in flight between shards — the state where epoch
// barriers buy nothing.
func (e *Engine) soloShard(until sim.Time) (int, bool) {
	busy := -1
	for i, s := range e.shards {
		if len(e.inbox[i]) > 0 {
			return 0, false
		}
		// A stopped kernel still reports its pending events; it can make
		// no progress, so it must not be picked (the epoch loop skips it
		// window by window instead).
		if s.Kernel().Stopped() {
			continue
		}
		if t, ok := s.Kernel().NextEvent(); ok && t < until {
			if busy >= 0 {
				return 0, false
			}
			busy = i
		}
	}
	return busy, busy >= 0
}

// soloRun batches epoch windows for a lone busy shard: run it inline,
// event by event, until it either drains (or reaches until) or posts a
// cross-shard event. The first post re-establishes a real barrier —
// another shard has work from then on — so control returns to the epoch
// loop. The conservative bound is kept per event: an event executing at
// t may only post at ≥ t+lookahead, so curEnd advances with the clock.
// Each window of this batch would have run the same events in the same
// order under the barrier protocol; only the barrier count changes.
func (e *Engine) soloRun(i int, until sim.Time) {
	k := e.shards[i].Kernel()
	out := &e.outbox[i]
	for len(*out) == 0 && !k.Stopped() {
		t, ok := k.NextEvent()
		if !ok || t >= until {
			break
		}
		e.curEnd = t.Add(e.lookahead)
		if !k.Step() {
			break
		}
	}
	if now := k.Now(); now > e.now {
		e.now = now
	}
	e.epochs++
}

// Run executes all shards up to (but excluding) time until, then aligns
// every shard clock to until. Epoch windows start at the earliest pending
// work — idle stretches are skipped in one jump, so the epoch count
// scales with event density, not simulated duration — and stretches with
// a single busy shard bypass the barrier protocol entirely.
func (e *Engine) Run(until sim.Time) {
	// Profiling finalization is declared before the parkWorkers defer so
	// it runs after the helpers have parked (LIFO): by then every helper
	// has written its stats and acked through doneN, so the run's totals
	// are complete. The residual coordinator segment — final alignment
	// bookkeeping plus the park wait — lands in StallNS.
	if e.prof != nil {
		t0 := enginestat.NowNS()
		e.profPrev = t0
		epochs0, exch0 := e.epochs, e.exchanged
		defer func() {
			w0 := e.prof.Worker(0)
			e.profMark(&w0.StallNS)
			e.prof.Engine.RunWallNS += e.profPrev - t0
			w0.AwakeNS += e.profPrev - t0
			e.prof.Engine.Epochs += e.epochs - epochs0
			e.prof.Engine.Exchanged += e.exchanged - exch0
		}()
	}
	// Helpers must be parked whenever control is outside Run — on normal
	// return and when a panic (lookahead violation, shard code) unwinds —
	// so Shutdown can retire them and idle engines burn no CPU.
	defer e.parkWorkers()
	for e.now < until {
		if i, ok := e.soloShard(until); ok {
			if e.prof == nil {
				e.soloRun(i, until)
				e.collect()
				continue
			}
			w0 := e.prof.Worker(0)
			e.profMark(&w0.ExchangeNS) // solo/busy scan overhead
			k := e.shards[i].Kernel()
			ex0 := k.Executed()
			t0 := e.profPrev
			e.soloRun(i, until)
			e.profMark(&w0.BusyNS)
			w0.Events += k.Executed() - ex0
			w0.Claims++
			e.prof.Engine.SoloBatches++
			e.prof.Spans(0).Record(enginestat.Span{Worker: 0, Kind: enginestat.SpanSolo,
				Shard: i, StartNS: t0, EndNS: e.profPrev})
			e.collect()
			e.profMark(&w0.ExchangeNS)
			continue
		}
		start, ok := e.nextWork()
		if !ok || start >= until {
			break
		}
		if start < e.now {
			start = e.now
		}
		end := start.Add(e.lookahead)
		if end > until {
			end = until
		}
		e.curEnd = end
		for i := range e.shards {
			e.deliver(i, end)
		}
		if e.prof != nil {
			e.prof.Engine.WindowNS += int64(end.Sub(start))
		}
		e.runEpoch(end)
		if e.prof == nil {
			e.collect()
		} else {
			t0 := e.profPrev
			e.collect()
			w0 := e.prof.Worker(0)
			e.profMark(&w0.ExchangeNS)
			e.prof.Spans(0).Record(enginestat.Span{Worker: 0, Kind: enginestat.SpanExchange,
				Shard: -1, StartNS: t0, EndNS: e.profPrev})
		}
		e.now = end
		e.epochs++
	}
	// Align clocks on the frontier: no events remain before until.
	e.curEnd = until
	e.runEpoch(until)
	e.now = until
}

// RunFor advances the engine by duration d.
func (e *Engine) RunFor(d time.Duration) { e.Run(e.now.Add(d)) }
