// Package parsim is a conservative (lookahead-based) parallel
// discrete-event engine with two levels of parallelism:
//
//   - Level 1, sharded execution (Engine): one simulation partitioned
//     into logical shards, each owning a sim.Kernel, executed in epoch
//     windows of one lookahead. Cross-shard events are exchanged at
//     epoch barriers and merged in deterministic (time, srcShard, seq)
//     order, so the result is byte-identical for every worker count —
//     the partition, not the scheduler, defines the semantics.
//   - Level 2, replica parallelism (Pool): independent seeded replicas
//     (chaos campaigns, proptest cases, sweep points) distributed over
//     OS workers by work stealing, with results gathered by replica
//     index so aggregation order is scheduling-independent.
//
// The conservative condition is the classic one: a shard executing the
// window [T, T+L) may only produce events for other shards at times
// ≥ T+L, where L is the lookahead — here the minimum cross-shard fabric
// traversal latency. The paper's own argument makes this safe to rely
// on: the retransmission protocol tolerates any packet delay or loss, so
// correctness never depends on sub-lookahead cross-host reaction times.
package parsim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sanft/internal/sim"
)

// Shard is one logical partition of a simulation: anything owning a
// kernel. The engine drives the kernel through epoch windows; all other
// shard state (NIC, fabric replica, buffers) stays private to the shard.
type Shard interface {
	Kernel() *sim.Kernel
}

// xev is one cross-shard event in flight between epochs.
type xev struct {
	at       sim.Time
	src, dst int
	seq      uint64
	fn       func()
}

// xevLess orders cross-shard events by (time, source shard, per-source
// sequence) — the deterministic merge rule. Two events can never compare
// equal: seq is unique per source.
func xevLess(a, b xev) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// Port is a shard's handle for posting cross-shard events. Each shard
// holds its own port; posts go to a per-source outbox, so shards running
// on different workers never share a write destination.
type Port struct {
	e   *Engine
	src int
}

// Send schedules fn to run on shard dst's kernel at absolute time at.
// It must be called from shard src's execution (during an epoch) and at
// must be at least the current epoch's end — the conservative condition.
// Violations panic: they mean the claimed lookahead was wrong.
func (p *Port) Send(at sim.Time, dst int, fn func()) {
	e := p.e
	if dst < 0 || dst >= len(e.shards) {
		panic(fmt.Sprintf("parsim: send to unknown shard %d", dst))
	}
	if at < e.curEnd {
		panic(fmt.Sprintf("parsim: lookahead violation: shard %d sends event at %v inside epoch ending %v",
			p.src, at, e.curEnd))
	}
	e.seq[p.src]++
	e.outbox[p.src] = append(e.outbox[p.src], xev{at: at, src: p.src, dst: dst, seq: e.seq[p.src], fn: fn})
}

// Engine executes a set of shards under epoch barriers.
type Engine struct {
	shards    []Shard
	lookahead time.Duration
	workers   int

	outbox [][]xev  // per source shard, filled during an epoch
	inbox  [][]xev  // per destination shard, sorted by xevLess
	seq    []uint64 // per-source post counter

	now    sim.Time
	curEnd sim.Time

	epochs    uint64
	exchanged uint64
}

// NewEngine builds an engine over shards with the given lookahead and
// worker count (≤ 0 means GOMAXPROCS). The lookahead must be positive
// and must lower-bound every cross-shard event delay.
func NewEngine(shards []Shard, lookahead time.Duration, workers int) *Engine {
	if len(shards) == 0 {
		panic("parsim: no shards")
	}
	if lookahead <= 0 {
		panic("parsim: lookahead must be positive")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		shards:    shards,
		lookahead: lookahead,
		workers:   workers,
		outbox:    make([][]xev, len(shards)),
		inbox:     make([][]xev, len(shards)),
		seq:       make([]uint64, len(shards)),
	}
}

// Port returns shard i's cross-shard send handle.
func (e *Engine) Port(i int) *Port { return &Port{e: e, src: i} }

// Workers returns the worker count the engine executes epochs with.
func (e *Engine) Workers() int { return e.workers }

// Lookahead returns the epoch window width.
func (e *Engine) Lookahead() time.Duration { return e.lookahead }

// Now returns the frontier all shard clocks have reached.
func (e *Engine) Now() sim.Time { return e.now }

// Epochs returns how many epoch windows have executed.
func (e *Engine) Epochs() uint64 { return e.epochs }

// Exchanged returns how many cross-shard events have crossed barriers.
func (e *Engine) Exchanged() uint64 { return e.exchanged }

// nextWork returns the earliest pending activity across all shards:
// local kernel events and undelivered cross-shard arrivals.
func (e *Engine) nextWork() (sim.Time, bool) {
	var best sim.Time
	found := false
	note := func(t sim.Time) {
		if !found || t < best {
			best, found = t, true
		}
	}
	for i, s := range e.shards {
		if t, ok := s.Kernel().NextEvent(); ok {
			note(t)
		}
		if len(e.inbox[i]) > 0 {
			note(e.inbox[i][0].at)
		}
	}
	return best, found
}

// deliver schedules shard i's due inbox events (time < end) into its
// kernel, in (time, src, seq) order, and drops them from the inbox.
func (e *Engine) deliver(i int, end sim.Time) {
	in := e.inbox[i]
	n := 0
	for n < len(in) && in[n].at < end {
		n++
	}
	if n == 0 {
		return
	}
	k := e.shards[i].Kernel()
	for _, ev := range in[:n] {
		k.At(ev.at, ev.fn)
	}
	e.inbox[i] = append(in[:0:0], in[n:]...)
}

// runEpoch advances every shard kernel to end, distributing shards over
// the worker goroutines by work stealing. The final-state guarantee does
// not depend on the distribution: shards share no mutable state during
// an epoch, and everything they exchange goes through the sorted outbox
// merge afterwards.
func (e *Engine) runEpoch(end sim.Time) {
	w := e.workers
	if w > len(e.shards) {
		w = len(e.shards)
	}
	if w <= 1 {
		for _, s := range e.shards {
			s.Kernel().RunBefore(end)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(e.shards) {
					return
				}
				e.shards[i].Kernel().RunBefore(end)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// collect moves every outbox event posted during the epoch into its
// destination inbox and restores the inbox sort order.
func (e *Engine) collect() {
	touched := make(map[int]bool)
	for src := range e.outbox {
		for _, ev := range e.outbox[src] {
			e.inbox[ev.dst] = append(e.inbox[ev.dst], ev)
			touched[ev.dst] = true
			e.exchanged++
		}
		e.outbox[src] = e.outbox[src][:0]
	}
	for dst := range touched {
		in := e.inbox[dst]
		sort.Slice(in, func(i, j int) bool { return xevLess(in[i], in[j]) })
	}
}

// Run executes all shards up to (but excluding) time until, then aligns
// every shard clock to until. Epoch windows start at the earliest pending
// work — idle stretches are skipped in one jump, so the epoch count
// scales with event density, not simulated duration.
func (e *Engine) Run(until sim.Time) {
	for e.now < until {
		start, ok := e.nextWork()
		if !ok || start >= until {
			break
		}
		if start < e.now {
			start = e.now
		}
		end := start.Add(e.lookahead)
		if end > until {
			end = until
		}
		e.curEnd = end
		for i := range e.shards {
			e.deliver(i, end)
		}
		e.runEpoch(end)
		e.collect()
		e.now = end
		e.epochs++
	}
	// Align clocks on the frontier: no events remain before until.
	e.curEnd = until
	e.runEpoch(until)
	e.now = until
}

// RunFor advances the engine by duration d.
func (e *Engine) RunFor(d time.Duration) { e.Run(e.now.Add(d)) }
