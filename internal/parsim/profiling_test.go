package parsim

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"sanft/internal/enginestat"
	"sanft/internal/sim"
)

// profiledToyDump is toyDump with the profiler armed: the dump must be
// byte-identical to the unprofiled one (profiling only reads wall clocks)
// and the collected profile must be internally consistent.
func profiledToyDump(n, workers int, rootSeed int64) (string, *enginestat.Profile) {
	shards, e := buildToyRing(n, workers, rootSeed, 3)
	prof := e.EnableProfiling()
	prof.EnableSpans(1 << 12)
	e.Run(sim.Time(0).Add(time.Millisecond))
	out := ""
	for _, s := range shards {
		out += "shard " + s.log[0] + "\n" // prefix keeps dumps comparable below
	}
	return out, prof.Snapshot()
}

// TestProfilingPreservesDeterminism: enabling the profiler must not
// change any observable output, for any worker count, and the profiled
// dumps must agree across worker counts too.
func TestProfilingPreservesDeterminism(t *testing.T) {
	plain := func(n, workers int, rootSeed int64) string {
		shards, e := buildToyRing(n, workers, rootSeed, 3)
		e.Run(sim.Time(0).Add(time.Millisecond))
		out := ""
		for _, s := range shards {
			out += "shard " + s.log[0] + "\n"
		}
		return out
	}
	base := plain(5, 1, 42)
	for _, w := range []int{1, 2, 4} {
		got, _ := profiledToyDump(5, w, 42)
		if got != base {
			t.Fatalf("profiled dump (workers=%d) diverged from unprofiled baseline", w)
		}
	}
}

// TestProfileCollection checks the collected numbers against the engine's
// own counters: epochs and exchanged totals match, per-worker events sum
// to the kernels' executed totals, and the coordinator recorded wall
// clock and spans.
func TestProfileCollection(t *testing.T) {
	shards, e := buildToyRing(5, 2, 42, 3)
	prof := e.EnableProfiling()
	prof.EnableSpans(1 << 12)
	e.Run(sim.Time(0).Add(time.Millisecond))
	p := prof.Snapshot()

	if p.Engine.Epochs != e.Epochs() {
		t.Fatalf("profile epochs %d != engine epochs %d", p.Engine.Epochs, e.Epochs())
	}
	if p.Engine.Exchanged != e.Exchanged() {
		t.Fatalf("profile exchanged %d != engine %d", p.Engine.Exchanged, e.Exchanged())
	}
	if p.Engine.Shards != 5 || p.Engine.Workers != 2 {
		t.Fatalf("engine shape: %+v", p.Engine)
	}
	if p.Engine.RunWallNS <= 0 {
		t.Fatal("no run wall-clock recorded")
	}

	var kernelEvents uint64
	for _, s := range shards {
		kernelEvents += s.k.Executed()
	}
	workerEvents := enginestat.MergeWorkers(p.Workers).Events
	if workerEvents != kernelEvents {
		t.Fatalf("worker events %d != kernel executed %d", workerEvents, kernelEvents)
	}

	w0 := &p.Workers[0]
	if w0.BusyNS <= 0 || w0.AwakeNS <= 0 || w0.Claims == 0 {
		t.Fatalf("coordinator account empty: %+v", w0)
	}
	if len(p.Spans) == 0 {
		t.Fatal("no spans recorded with spans enabled")
	}
	var trace bytes.Buffer
	if err := p.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	if trace.Len() == 0 {
		t.Fatal("empty chrome trace")
	}

	// Second run through the same engine accumulates (profiles are
	// per-engine, not per-Run).
	e.Run(sim.Time(0).Add(2 * time.Millisecond))
	p2 := prof.Snapshot()
	if p2.Engine.RunWallNS <= p.Engine.RunWallNS {
		t.Fatal("second Run did not accumulate wall-clock")
	}
}

// TestProfilingIdempotent: EnableProfiling returns the same collector on
// repeat calls.
func TestProfilingIdempotent(t *testing.T) {
	_, e := buildToyRing(3, 2, 7, 1)
	a, b := e.EnableProfiling(), e.EnableProfiling()
	if a != b {
		t.Fatal("EnableProfiling returned a different collector on second call")
	}
}

// TestPoolProgress: the pool's progress tracker counts jobs and exposes a
// race-free snapshot usable from HTTP handlers.
func TestPoolProgress(t *testing.T) {
	prog := &Progress{}
	prog.Begin(10)
	p := Pool{Workers: 2, Progress: prog}
	p.Do(6, func(i int) { runtime.Gosched() })
	s := prog.Snapshot()
	if s.Done != 6 || s.Total != 10 {
		t.Fatalf("snapshot = %+v, want done=6 total=10", s)
	}
	if s.ElapsedMS < 0 || s.AvgJobMS < 0 || s.ETAMS < 0 {
		t.Fatalf("negative clocks: %+v", s)
	}
	// Externally timed jobs (bench sweeps) feed the same tracker.
	prog.JobDone(int64(2 * time.Millisecond))
	if got := prog.Snapshot().Done; got != 7 {
		t.Fatalf("JobDone not counted: done=%d", got)
	}
	// Begin re-arms.
	prog.Begin(3)
	if s := prog.Snapshot(); s.Done != 0 || s.Total != 3 {
		t.Fatalf("Begin did not reset: %+v", s)
	}
}
