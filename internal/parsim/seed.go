package parsim

// ShardSeed derives the RNG seed for shard (or replica) id from the root
// seed, with a SplitMix64 finalizer so adjacent ids land in uncorrelated
// streams. The derivation depends only on (root, id) — never on worker
// count or scheduling — which is the per-shard RNG discipline: shard i's
// Kernel.Rand() stream is the same whether the run uses 1 worker or 8.
func ShardSeed(root int64, id int) int64 {
	z := uint64(root) + 0x9e3779b97f4a7c15*uint64(int64(id)+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Seeds derives n replica seeds from root: Seeds(root, n)[i] ==
// ShardSeed(root, i).
func Seeds(root int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = ShardSeed(root, i)
	}
	return out
}
