package parsim

import "testing"

// TestShardSeedGoldens pins the seed derivation. These values are part of
// the determinism contract: changing them silently re-seeds every shard
// and replica, invalidating recorded baselines and golden dumps.
func TestShardSeedGoldens(t *testing.T) {
	goldens := []struct {
		root int64
		id   int
		want int64
	}{
		{1, 0, -7995527694508729151},
		{1, 1, -4689498862643123097},
		{1, 2, -534904783426661026},
		{1, 3, 8196980753821780235},
		{42, 0, -4767286540954276203},
		{42, 1, 2949826092126892291},
		{42, 2, 5139283748462763858},
		{42, 3, 6349198060258255764},
	}
	for _, g := range goldens {
		if got := ShardSeed(g.root, g.id); got != g.want {
			t.Errorf("ShardSeed(%d, %d) = %d, want %d", g.root, g.id, got, g.want)
		}
	}
}

// TestShardSeedDistinct: nearby (root, id) pairs must not collide or
// correlate trivially — each shard needs an independent stream.
func TestShardSeedDistinct(t *testing.T) {
	seen := make(map[int64]string)
	for root := int64(0); root < 8; root++ {
		for id := 0; id < 64; id++ {
			s := ShardSeed(root, id)
			key := string(rune(root)) + "/" + string(rune(id))
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (%s) and (%s) both map to %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}

func TestSeedsMatchesShardSeed(t *testing.T) {
	ss := Seeds(42, 4)
	for i, s := range ss {
		if s != ShardSeed(42, i) {
			t.Fatalf("Seeds(42,4)[%d] = %d != ShardSeed(42,%d) = %d", i, s, i, ShardSeed(42, i))
		}
	}
}
