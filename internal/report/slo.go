package report

import (
	"fmt"
	"time"

	"sanft/internal/metrics"
)

// SLO is a service-level objective over a workload run, judged per time
// window: within every window of length Window, at least GoodFrac of the
// completed operations must finish under Latency and the error (timeout)
// rate must stay at or below MaxErrRate. A window that breaks either
// clause — or that saw demand but completed nothing at all — is an SLO
// violation, and the violated windows sum to "SLO-minutes lost": the
// user-facing cost of a fault expressed in outage time rather than
// protocol counters.
type SLO struct {
	// Latency is the per-operation latency bound (default 1ms).
	Latency time.Duration
	// GoodFrac is the fraction of a window's completions that must meet
	// Latency (default 0.999).
	GoodFrac float64
	// MaxErrRate is the tolerated per-window error/timeout rate as a
	// fraction of issued operations (default 0.001).
	MaxErrRate float64
	// Window is the judgment granularity (default 50ms of simulated time).
	Window time.Duration
}

// DefaultSLO returns the contract used when fields are left zero.
func DefaultSLO() SLO {
	return SLO{
		Latency:    time.Millisecond,
		GoodFrac:   0.999,
		MaxErrRate: 0.001,
		Window:     50 * time.Millisecond,
	}
}

// WithDefaults fills zero fields from DefaultSLO.
func (s SLO) WithDefaults() SLO {
	d := DefaultSLO()
	if s.Latency == 0 {
		s.Latency = d.Latency
	}
	if s.GoodFrac == 0 {
		s.GoodFrac = d.GoodFrac
	}
	if s.MaxErrRate == 0 {
		s.MaxErrRate = d.MaxErrRate
	}
	if s.Window == 0 {
		s.Window = d.Window
	}
	return s
}

// SLOWindow is the per-window operation accounting an SLO is judged on.
type SLOWindow struct {
	Issued    uint64 `json:"issued"`
	Completed uint64 `json:"completed"`
	// Errors are operations that timed out (or were still incomplete when
	// the run stopped), attributed to the window of their deadline.
	Errors uint64 `json:"errors"`
	// Slow are completions over the SLO latency bound.
	Slow uint64 `json:"slow"`
}

// SLOResult is one scenario cell's raw material: identity labels, overall
// operation counts, the latency distribution (an HDR snapshot, so any
// quantile is derivable after the run), and the window series the
// SLO-minutes computation walks. Replica results merge with Merge; the
// rendered forms come from NewSLOTable / NewSLODeltaTable.
type SLOResult struct {
	// Scenario identifies the cell: workload proto/mode, e.g. "kv/open".
	Scenario string `json:"scenario"`
	// Topo and Fault complete the grid coordinates ("fattree:16",
	// "linkflap" or "none").
	Topo  string `json:"topo"`
	Fault string `json:"fault"`

	SLO SLO `json:"slo"`

	Issued    uint64 `json:"issued"`
	Completed uint64 `json:"completed"`
	Errors    uint64 `json:"errors"`
	// PayloadBytes counts application payload of completed operations —
	// the goodput numerator (headers, replication, and retransmission
	// traffic excluded).
	PayloadBytes uint64 `json:"payload_bytes"`
	// ElapsedNS is the simulated span the windows cover (replicas run the
	// same span, so merging keeps it).
	ElapsedNS int64 `json:"elapsed_ns"`

	Latency metrics.HistogramSnapshot `json:"latency"`
	Windows []SLOWindow               `json:"windows"`
}

// Merge folds another replica of the same cell into r: counts add,
// windows add element-wise (replicas share the window clock), and the
// latency snapshots merge. Folding replicas in a fixed order yields
// byte-identical tables for any pool worker count.
func (r *SLOResult) Merge(o SLOResult) {
	r.Issued += o.Issued
	r.Completed += o.Completed
	r.Errors += o.Errors
	r.PayloadBytes += o.PayloadBytes
	if o.ElapsedNS > r.ElapsedNS {
		r.ElapsedNS = o.ElapsedNS
	}
	r.Latency.Merge(o.Latency)
	if len(o.Windows) > len(r.Windows) {
		r.Windows = append(r.Windows, make([]SLOWindow, len(o.Windows)-len(r.Windows))...)
	}
	for i, w := range o.Windows {
		r.Windows[i].Issued += w.Issued
		r.Windows[i].Completed += w.Completed
		r.Windows[i].Errors += w.Errors
		r.Windows[i].Slow += w.Slow
	}
}

// ViolatedWindows counts the windows that broke the SLO: error rate over
// budget, slow fraction over budget, or demand with zero completions (a
// blackout window).
func (r *SLOResult) ViolatedWindows() int {
	slo := r.SLO.WithDefaults()
	n := 0
	for _, w := range r.Windows {
		if w.Issued == 0 && w.Completed == 0 && w.Errors == 0 {
			continue
		}
		bad := false
		if w.Issued > 0 && float64(w.Errors) > slo.MaxErrRate*float64(w.Issued) {
			bad = true
		}
		if w.Completed > 0 && float64(w.Slow) > (1-slo.GoodFrac)*float64(w.Completed) {
			bad = true
		}
		if w.Issued > 0 && w.Completed == 0 {
			bad = true
		}
		if bad {
			n++
		}
	}
	return n
}

// SLOMinutesLost converts the violated windows to outage minutes — the
// headline "what did users lose" number.
func (r *SLOResult) SLOMinutesLost() float64 {
	slo := r.SLO.WithDefaults()
	return float64(r.ViolatedWindows()) * slo.Window.Minutes()
}

// ErrRate returns errors over issued operations (0 when nothing issued).
func (r *SLOResult) ErrRate() float64 {
	if r.Issued == 0 {
		return 0
	}
	return float64(r.Errors) / float64(r.Issued)
}

// GoodputMBps returns completed payload over the elapsed simulated time,
// in MB/s (0 when no time elapsed).
func (r *SLOResult) GoodputMBps() float64 {
	if r.ElapsedNS <= 0 {
		return 0
	}
	return float64(r.PayloadBytes) / 1e6 / (float64(r.ElapsedNS) / 1e9)
}

// sloHeader is the column set shared by the SLO table and pinned by the
// acceptance criteria: scenario identity, the three latency quantiles,
// goodput, error rate, and SLO-minutes lost.
var sloHeader = []string{
	"scenario", "topo", "fault", "ops", "done", "p50", "p99", "p999",
	"goodput_mbps", "err_rate", "slo_min_lost", "bad_windows",
}

// row renders one result with fixed-precision formatting, so tables are
// byte-deterministic.
func (r *SLOResult) row() []string {
	return []string{
		r.Scenario,
		r.Topo,
		r.Fault,
		fmt.Sprintf("%d", r.Issued),
		fmt.Sprintf("%d", r.Completed),
		r.Latency.Quantile(0.50).String(),
		r.Latency.Quantile(0.99).String(),
		r.Latency.Quantile(0.999).String(),
		fmt.Sprintf("%.3f", r.GoodputMBps()),
		fmt.Sprintf("%.4f", r.ErrRate()),
		fmt.Sprintf("%.4f", r.SLOMinutesLost()),
		fmt.Sprintf("%d", r.ViolatedWindows()),
	}
}

// NewSLOTable renders results as the standard Table, one row per result
// in the given order.
func NewSLOTable(name string, rs []SLOResult) *Table {
	t := &Table{Name: name, Header: sloHeader}
	for i := range rs {
		t.Cells = append(t.Cells, rs[i].row())
	}
	return t
}

// NewSLODeltaTable restates fault-tolerance overhead in SLO terms (the
// Fig. 9 restatement): for every non-baseline result it finds the
// baseline with the same Scenario and Topo (Fault == baselineFault) and
// emits the latency/goodput/error deltas the fault cost. Results without
// a matching baseline are skipped.
func NewSLODeltaTable(name, baselineFault string, rs []SLOResult) *Table {
	base := make(map[string]*SLOResult)
	for i := range rs {
		if rs[i].Fault == baselineFault {
			base[rs[i].Scenario+"|"+rs[i].Topo] = &rs[i]
		}
	}
	t := &Table{Name: name, Header: []string{
		"scenario", "topo", "fault", "dp50", "dp99", "dp999",
		"goodput_ratio", "derr_rate", "slo_min_lost",
	}}
	for i := range rs {
		r := &rs[i]
		if r.Fault == baselineFault {
			continue
		}
		b, ok := base[r.Scenario+"|"+r.Topo]
		if !ok {
			continue
		}
		ratio := 0.0
		if bg := b.GoodputMBps(); bg > 0 {
			ratio = r.GoodputMBps() / bg
		}
		t.Cells = append(t.Cells, []string{
			r.Scenario,
			r.Topo,
			r.Fault,
			(r.Latency.Quantile(0.50) - b.Latency.Quantile(0.50)).String(),
			(r.Latency.Quantile(0.99) - b.Latency.Quantile(0.99)).String(),
			(r.Latency.Quantile(0.999) - b.Latency.Quantile(0.999)).String(),
			fmt.Sprintf("%.3f", ratio),
			fmt.Sprintf("%+.4f", r.ErrRate()-b.ErrRate()),
			fmt.Sprintf("%.4f", r.SLOMinutesLost()),
		})
	}
	return t
}
