package report

import (
	"strings"
	"testing"
	"time"

	"sanft/internal/metrics"
)

// snap builds a latency snapshot from explicit observations.
func snap(ds ...time.Duration) metrics.HistogramSnapshot {
	r := metrics.NewRegistry()
	h := r.Histogram("lat", nil)
	for _, d := range ds {
		h.Observe(d)
	}
	return h.Snapshot()
}

func TestSLOWindowJudgment(t *testing.T) {
	// Exact binary fractions (0.875, 0.125) keep the threshold comparisons
	// free of float rounding.
	r := SLOResult{
		SLO: SLO{Latency: time.Millisecond, GoodFrac: 0.875, MaxErrRate: 0.125,
			Window: 30 * time.Second},
		Windows: []SLOWindow{
			{},                                             // idle: never judged
			{Issued: 100, Completed: 100},                  // clean
			{Issued: 100, Completed: 80, Errors: 20},       // error rate 0.2 > 0.125
			{Issued: 100, Completed: 100, Slow: 20},        // slow frac 0.2 > 0.125
			{Issued: 50},                                   // blackout: demand, no completions
			{Issued: 100, Completed: 95, Errors: 5},        // error rate 0.05 ≤ 0.125
			{Issued: 100, Completed: 100, Slow: 12},        // slow frac 0.12 ≤ 0.125
			{Issued: 10, Completed: 8, Errors: 2, Slow: 8}, // both clauses broken: one window
		},
	}
	if got := r.ViolatedWindows(); got != 4 {
		t.Fatalf("ViolatedWindows = %d, want 4", got)
	}
	// 4 violated windows × 30s = 2 SLO-minutes lost.
	if got := r.SLOMinutesLost(); got != 2.0 {
		t.Fatalf("SLOMinutesLost = %g, want 2", got)
	}
}

func TestSLOResultMergeAndRates(t *testing.T) {
	a := SLOResult{
		Scenario: "kv/open", Topo: "fattree:16", Fault: "none",
		Issued: 100, Completed: 98, Errors: 2, PayloadBytes: 98_000,
		ElapsedNS: int64(time.Second),
		Latency:   snap(time.Millisecond, 2*time.Millisecond),
		Windows:   []SLOWindow{{Issued: 100, Completed: 98, Errors: 2}},
	}
	b := SLOResult{
		Issued: 100, Completed: 100, PayloadBytes: 102_000,
		ElapsedNS: int64(time.Second),
		Latency:   snap(3 * time.Millisecond),
		Windows:   []SLOWindow{{Issued: 60, Completed: 60}, {Issued: 40, Completed: 40}},
	}
	a.Merge(b)
	if a.Issued != 200 || a.Completed != 198 || a.Errors != 2 {
		t.Fatalf("merged counts %+v", a)
	}
	if a.Latency.Count != 3 {
		t.Fatalf("merged latency count = %d, want 3", a.Latency.Count)
	}
	if len(a.Windows) != 2 || a.Windows[0].Issued != 160 || a.Windows[1].Issued != 40 {
		t.Fatalf("merged windows %+v", a.Windows)
	}
	if got := a.ErrRate(); got != 0.01 {
		t.Fatalf("ErrRate = %g, want 0.01", got)
	}
	// 200 KB over 1 s = 0.2 MB/s.
	if got := a.GoodputMBps(); got != 0.2 {
		t.Fatalf("GoodputMBps = %g, want 0.2", got)
	}
}

func TestSLOTables(t *testing.T) {
	mk := func(fault string, lat time.Duration, errs uint64) SLOResult {
		return SLOResult{
			Scenario: "rpc/closed", Topo: "fattree:16", Fault: fault,
			Issued: 100, Completed: 100 - errs, Errors: errs,
			PayloadBytes: 100_000, ElapsedNS: int64(time.Second),
			Latency: snap(lat, lat, lat*3),
			Windows: []SLOWindow{{Issued: 100, Completed: 100 - errs, Errors: errs}},
		}
	}
	rs := []SLOResult{
		mk("none", 100*time.Microsecond, 0),
		mk("linkflap", 400*time.Microsecond, 3),
	}
	tab := NewSLOTable("slo", rs)
	if len(tab.Cells) != 2 {
		t.Fatalf("SLO table rows = %d, want 2", len(tab.Cells))
	}
	for _, col := range []string{"p999", "goodput_mbps", "err_rate", "slo_min_lost"} {
		found := false
		for _, h := range tab.Header {
			if h == col {
				found = true
			}
		}
		if !found {
			t.Fatalf("SLO header missing %q: %v", col, tab.Header)
		}
	}

	delta := NewSLODeltaTable("delta", "none", rs)
	if len(delta.Cells) != 1 {
		t.Fatalf("delta rows = %d, want 1", len(delta.Cells))
	}
	row := strings.Join(delta.Cells[0], " ")
	if !strings.Contains(row, "linkflap") {
		t.Fatalf("delta row %q should name the fault", row)
	}
	// The faulted run erred 3% more than baseline.
	if got := delta.Cells[0][7]; got != "+0.0300" {
		t.Fatalf("derr_rate = %q, want +0.0300", got)
	}

	// Text and JSON render through the shared Table path.
	var sb strings.Builder
	if err := Write(&sb, tab, false); err != nil {
		t.Fatal(err)
	}
	if err := Write(&sb, tab, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"slo_min_lost"`) || !strings.Contains(out, "rpc/closed") {
		t.Fatalf("rendered output missing expected fields:\n%s", out)
	}
}
