package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sample() *Table {
	return &Table{
		Name:   "demo",
		Header: []string{"size", "bw"},
		Cells:  [][]string{{"4096", "120.5"}, {"65536", "152.0"}},
	}
}

func TestTableString(t *testing.T) {
	s := sample().String()
	if !strings.HasPrefix(s, "demo\n") {
		t.Fatalf("missing title: %q", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want title+header+2 rows, got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "size") {
		t.Fatalf("header line %q", lines[1])
	}
}

func TestTableRows(t *testing.T) {
	rows := sample().Rows()
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	if rows[1].Columns[1] != "bw" || rows[1].Values[1] != "152.0" {
		t.Fatalf("row %+v", rows[1])
	}
}

func TestTableWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Column order must be preserved, not alphabetized.
	if !strings.Contains(out, `{"size":"4096","bw":"120.5"}`) {
		t.Fatalf("ordered row missing: %s", out)
	}
	// And it must still be valid JSON.
	var v struct {
		Title string              `json:"title"`
		Rows  []map[string]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &v); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if v.Title != "demo" || len(v.Rows) != 2 || v.Rows[0]["bw"] != "120.5" {
		t.Fatalf("decoded %+v", v)
	}
}

func TestWriteDispatch(t *testing.T) {
	var txt, js bytes.Buffer
	if err := Write(&txt, sample(), false); err != nil {
		t.Fatal(err)
	}
	if err := Write(&js, sample(), true); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(txt.String(), "demo\n") {
		t.Fatal("text path")
	}
	if !strings.HasPrefix(js.String(), `{"title":"demo"`) {
		t.Fatal("json path")
	}
}

func TestGridAlignment(t *testing.T) {
	g := Grid([]string{"a", "long-header"}, [][]string{{"wide-value", "x"}})
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	// The second column must start at the same offset in both lines.
	if strings.Index(lines[0], "long-header") != strings.Index(lines[1], "x") {
		t.Fatalf("misaligned:\n%s", g)
	}
}
