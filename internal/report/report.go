// Package report defines the one rendering contract every experiment and
// campaign result satisfies, so cmd/sanbench, cmd/sanchaos, and cmd/sanstat
// all print and serialize results through the same path instead of each
// carrying its own formatter.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Row is one result row: parallel column names and rendered values.
type Row struct {
	Columns []string
	Values  []string
}

// Report is a renderable result set.
type Report interface {
	// Title names the report (used as the table heading and JSON title).
	Title() string
	// Rows returns the result rows in presentation order.
	Rows() []Row
	// String renders the report as an aligned text table.
	String() string
	// WriteJSON serializes the report as a single JSON object with stable
	// field order: {"title": ..., "rows": [{col: val, ...}, ...]}.
	WriteJSON(w io.Writer) error
}

// Table is the standard Report: a title, a header, and cell rows.
type Table struct {
	Name   string
	Header []string
	Cells  [][]string
}

// Title implements Report.
func (t *Table) Title() string { return t.Name }

// Rows implements Report.
func (t *Table) Rows() []Row {
	rows := make([]Row, len(t.Cells))
	for i, c := range t.Cells {
		rows[i] = Row{Columns: t.Header, Values: c}
	}
	return rows
}

// String implements Report: title line plus an aligned grid.
func (t *Table) String() string {
	return t.Name + "\n" + Grid(t.Header, t.Cells)
}

// WriteJSON implements Report. Column order is preserved (hand-rolled
// object encoding; values are emitted as JSON strings since cells are
// already rendered).
func (t *Table) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString(`{"title":`)
	b.Write(mustJSON(t.Name))
	b.WriteString(`,"rows":[`)
	for i, row := range t.Cells {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('{')
		for j, col := range t.Header {
			if j > 0 {
				b.WriteByte(',')
			}
			b.Write(mustJSON(col))
			b.WriteByte(':')
			v := ""
			if j < len(row) {
				v = row[j]
			}
			b.Write(mustJSON(v))
		}
		b.WriteByte('}')
	}
	b.WriteString("]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// Grid renders a header and cell rows with aligned column widths — the
// shared text-table formatter.
func Grid(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// Write renders r to w: JSON when asJSON, else the text form. The single
// render path shared by the CLIs.
func Write(w io.Writer, r Report, asJSON bool) error {
	if asJSON {
		return r.WriteJSON(w)
	}
	_, err := io.WriteString(w, r.String())
	return err
}
