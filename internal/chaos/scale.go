package chaos

import (
	"fmt"
	"strings"
	"time"

	"sanft/internal/core"
	"sanft/internal/retrans"
	"sanft/internal/topology"
)

// The scale tier: chaos campaigns on thousand-host datacenter fabrics
// under the sharded parallel engine. The sequential Engine/Campaign stack
// needs a cluster-wide kernel and the on-demand mapper, neither of which
// the sharded engine provides — so scale runs are their own small runner:
// build the fabric from a topology spec, schedule a topology-knowledge
// fault pattern as precomputed global events, drive a deterministic flow
// matrix, and audit exactly-once delivery from the merged delivery log.
// Everything is byte-identical for any worker count (the shard partition
// defines the semantics), which is what makes the 1k-host differential
// gate possible.

// ScaleOpts configures one sharded scale campaign.
type ScaleOpts struct {
	// Topo is a topology spec for topology.ParseSpec ("fattree:8",
	// "dragonfly:4,2,2", "torus:2,4,4"). Default "fattree:8".
	Topo string
	// Scenario selects the fault pattern: "flapstorm" (a seeded
	// FlapStormSchedule over every trunk), "gray" (probabilistic loss on
	// every GrayEveryth trunk), or "" / "none" for a fault-free run.
	Scenario string
	Seed     int64
	// Workers is the OS-thread count (0 = GOMAXPROCS). Never changes
	// results, only wall-clock time.
	Workers int
	// HostsPerShard sets the shard granularity; 0 groups the hosts into
	// about 16 shards.
	HostsPerShard int

	// Flows caps the flow matrix (host i sends to the host half the
	// fabric away, so every flow crosses the core). 0 = one flow per
	// host.
	Flows int
	Msgs  int // per-flow messages; default 4
	Bytes int // payload size; default 256
	// Gap is the send pacing; default 8ms, so the default matrix keeps
	// frames in flight across the whole 30ms fault window instead of
	// finishing before the first fault lands.
	Gap time.Duration

	// RunFor is the simulated duration; default 80ms (the storm is over
	// and healed by 40ms, leaving the retransmission tail room to drain).
	RunFor time.Duration

	// Flap-storm shape (see FlapStormSchedule). Defaults: 96 events over
	// a 30ms window, down times 1–4ms.
	Events           int
	Window           time.Duration
	MinDown, MaxDown time.Duration

	// Gray-failure shape: every GrayEveryth trunk (default 8) drops each
	// crossing packet with probability GrayRate (default 0.25).
	GrayRate  float64
	GrayEvery int
}

func (o *ScaleOpts) defaults() {
	if o.Topo == "" {
		o.Topo = "fattree:8"
	}
	if o.Msgs == 0 {
		o.Msgs = 4
	}
	if o.Bytes == 0 {
		o.Bytes = 256
	}
	if o.Gap == 0 {
		o.Gap = 8 * time.Millisecond
	}
	if o.RunFor == 0 {
		o.RunFor = 80 * time.Millisecond
	}
	if o.Events == 0 {
		o.Events = 96
	}
	if o.Window == 0 {
		o.Window = 30 * time.Millisecond
	}
	if o.MinDown == 0 {
		o.MinDown = time.Millisecond
	}
	if o.MaxDown == 0 {
		o.MaxDown = 4 * time.Millisecond
	}
	if o.GrayRate == 0 {
		o.GrayRate = 0.25
	}
	if o.GrayEvery == 0 {
		o.GrayEvery = 8
	}
}

// ScaleReport is the outcome of one scale campaign.
type ScaleReport struct {
	Spec     string
	Scenario string
	Variant  string
	Seed     int64

	Hosts   int
	Shards  int
	Workers int
	Trunks  int
	Faults  int // scheduled fault events (flap windows or grayed links)

	Expected   int
	Delivered  int // distinct (flow, msg) deliveries
	Duplicates int

	Epochs    uint64
	Exchanged uint64
	Executed  uint64

	Violations []Violation

	c *core.Cluster
}

// Passed reports whether the exactly-once audit held.
func (r *ScaleReport) Passed() bool { return len(r.Violations) == 0 }

// Dump returns the run's full observable byte stream (deliveries, merged
// metrics, trace) — the payload differential gates compare across worker
// counts.
func (r *ScaleReport) Dump() []byte { return r.c.DumpObservables() }

func (r *ScaleReport) String() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.Passed() {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "scale %s · %s [%s seed=%d]: %s\n", r.Spec, r.Scenario, r.Variant, r.Seed, verdict)
	fmt.Fprintf(&b, "  fabric:    %d hosts, %d trunks, %d shards, %d workers\n",
		r.Hosts, r.Trunks, r.Shards, r.Workers)
	fmt.Fprintf(&b, "  faults:    %d scheduled events\n", r.Faults)
	fmt.Fprintf(&b, "  delivered: %d/%d distinct, %d duplicates\n",
		r.Delivered, r.Expected, r.Duplicates)
	fmt.Fprintf(&b, "  engine:    %d epochs, %d boundary crossings, %d events executed\n",
		r.Epochs, r.Exchanged, r.Executed)
	if r.Passed() {
		fmt.Fprintf(&b, "  invariants: exactly-once delivery holds\n")
	} else {
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  VIOLATION: %s\n", v)
		}
	}
	return b.String()
}

// ScaleFlows builds the deterministic flow matrix for a host list: host i
// sends to the host half the fabric away, so on any of the builders every
// flow crosses the trunk tier the scenarios attack. n caps the number of
// flows (0 = one per host).
func ScaleFlows(hosts []topology.NodeID, n int) []core.Flow {
	h := len(hosts)
	if n <= 0 || n > h {
		n = h
	}
	flows := make([]core.Flow, 0, n)
	for i := 0; i < n; i++ {
		j := (i + h/2) % h
		if j == i {
			continue
		}
		flows = append(flows, core.Flow{Src: hosts[i], Dst: hosts[j]})
	}
	return flows
}

// RunScale executes one sharded scale campaign: parse the topology spec,
// build the sharded cluster, install the scenario as precomputed global
// fault events, run the flow matrix to quiesce, and audit exactly-once
// delivery. Returns an error only for an unusable spec or scenario name;
// audit failures land in the report's Violations.
func RunScale(o ScaleOpts) (*ScaleReport, error) {
	o.defaults()
	built, err := topology.ParseSpec(o.Topo)
	if err != nil {
		return nil, err
	}
	hosts := built.Hosts
	hps := o.HostsPerShard
	if hps == 0 {
		hps = (len(hosts) + 15) / 16
	}
	cfg := core.Config{
		Net: built.Net, Hosts: hosts, FT: true,
		Retrans: retrans.Config{
			QueueSize: 16,
			Interval:  time.Millisecond,
			// No mapper on the sharded engine: a permanent-failure
			// verdict would have no recovery path, so the threshold sits
			// past the end of the run and retransmission alone rides out
			// every (healing) fault.
			PermFailThreshold: 4 * o.RunFor,
		},
		Engine:  core.EngineSharded,
		Plan:    core.ShardPlan{HostsPerShard: hps},
		Workers: o.Workers,
		Seed:    o.Seed,
	}
	c := core.New(cfg)
	trunks := built.Trunks
	rep := &ScaleReport{
		Spec:     o.Topo,
		Scenario: o.Scenario,
		Variant:  "sharded",
		Seed:     o.Seed,
		Hosts:    len(hosts),
		Shards:   c.Shards(),
		Workers:  c.Workers(),
		Trunks:   len(trunks),
		c:        c,
	}

	switch o.Scenario {
	case "flapstorm":
		ids := make([]int, len(trunks))
		for i, l := range trunks {
			ids[i] = l.ID
		}
		sched := FlapStormSchedule(ids, o.Seed, o.Events, o.Window, o.MinDown, o.MaxDown)
		// Shift the storm past startup so the first frames route cleanly.
		for i := range sched {
			sched[i].At += 2 * time.Millisecond
		}
		c.ScheduleLinkFlaps(sched)
		rep.Faults = len(sched)
	case "gray":
		for i := 0; i < len(trunks); i += o.GrayEvery {
			c.SetLinkLoss(trunks[i].ID, o.GrayRate)
			rep.Faults++
		}
	case "", "none":
	default:
		return nil, fmt.Errorf("chaos: unknown scale scenario %q (want flapstorm, gray, or none)", o.Scenario)
	}

	flows := ScaleFlows(hosts, o.Flows)
	c.StartFlows(flows, o.Msgs, o.Bytes, o.Gap)
	c.RunFor(o.RunFor)
	c.Stop()

	// Exactly-once audit: every (flow, msg) appears in the merged delivery
	// log exactly once — retransmission must absorb the faults, receiver
	// dedup must absorb the retransmissions.
	type key struct {
		src, dst topology.NodeID
		msg      uint64
	}
	seen := make(map[key]int)
	for _, d := range c.Deliveries() {
		seen[key{d.Src, d.Dst, d.Msg}]++
	}
	rep.Expected = len(flows) * o.Msgs
	missing, duped := 0, 0
	for _, fl := range flows {
		for m := 1; m <= o.Msgs; m++ {
			switch n := seen[key{fl.Src, fl.Dst, uint64(m)}]; {
			case n == 0:
				missing++
			case n > 1:
				rep.Delivered++
				rep.Duplicates += n - 1
				duped++
			default:
				rep.Delivered++
			}
		}
	}
	if missing > 0 {
		rep.Violations = append(rep.Violations, Violation{
			"delivery", fmt.Sprintf("%d of %d (flow, msg) pairs never delivered", missing, rep.Expected)})
	}
	if duped > 0 {
		rep.Violations = append(rep.Violations, Violation{
			"dedup", fmt.Sprintf("%d (flow, msg) pairs delivered more than once (%d extras)", duped, rep.Duplicates)})
	}
	rep.Epochs = c.Epochs()
	rep.Exchanged = c.Exchanged()
	rep.Executed = c.TotalExecuted()
	return rep, nil
}
