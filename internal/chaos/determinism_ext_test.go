package chaos_test

// Wires the shared proptest determinism contract into the chaos layer:
// every campaign, run twice with the same seed, must produce a
// byte-identical report — counts, MTTR summary, violations, and the full
// event log. A diff here means something in the fault/recovery path is
// iterating a map or reading wall-clock state.

import (
	"fmt"
	"testing"

	"sanft/internal/chaos"
	"sanft/internal/proptest"
)

// campaignDump renders one campaign run's complete observable output.
func campaignDump(name string) func(seed int64) []byte {
	return func(seed int64) []byte {
		camp, ok := chaos.Find(name)
		if !ok {
			return []byte("campaign not found: " + name)
		}
		r := camp.Run(seed)
		out := fmt.Sprintf(
			"faults %d events %d pairs %d expected %d delivered %d dups %d\n"+
				"remaps %d unreachables %d stats %+v\nmttr %s\n",
			r.Faults, r.Events, r.Pairs, r.Expected, r.Delivered, r.Duplicates,
			r.Remaps, r.Unreachables, r.RemapStats, r.MTTR)
		for _, v := range r.Violations {
			out += fmt.Sprintf("violation %+v\n", v)
		}
		return []byte(out + r.EventLog)
	}
}

func TestCampaignDumpsDeterministic(t *testing.T) {
	for i, camp := range chaos.Campaigns() {
		if testing.Short() && i >= 2 {
			break
		}
		t.Run(camp.Name, func(t *testing.T) {
			proptest.RequireDeterministic(t, 9, campaignDump(camp.Name))
		})
	}
}
