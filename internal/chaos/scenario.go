package chaos

import (
	"time"

	"sanft/internal/fault"
	"sanft/internal/routing"
	"sanft/internal/topology"
)

// Scenario is a schedulable fault pattern. Install registers the
// scenario's events on the engine's kernel; the faults then fire at their
// simulated times while the workload runs.
type Scenario interface {
	ScenarioName() string
	Install(e *Engine)
}

// LinkFlap repeatedly kills and restores a trunk link: Down time dead,
// then Up time alive, for Cycles cycles. If Link is nil, each cycle
// targets a trunk drawn from the engine's RNG — a storm wandering across
// the fabric rather than one bad cable.
type LinkFlap struct {
	Link   *topology.Link
	Start  time.Duration
	Down   time.Duration // default 3ms
	Up     time.Duration // default 3ms
	Cycles int           // default 8
}

func (s LinkFlap) ScenarioName() string { return "link-flap" }

func (s LinkFlap) Install(e *Engine) {
	if s.Down == 0 {
		s.Down = 3 * time.Millisecond
	}
	if s.Up == 0 {
		s.Up = 3 * time.Millisecond
	}
	if s.Cycles == 0 {
		s.Cycles = 8
	}
	trunks := TrunkLinks(e.C.Net)
	if s.Link == nil && len(trunks) == 0 {
		panic("chaos: LinkFlap with no trunk links and no explicit Link")
	}
	cycle := 0
	var flap func()
	flap = func() {
		l := s.Link
		if l == nil {
			l = trunks[e.rng.Intn(len(trunks))]
		}
		e.RecordFault("link-flap down %s (cycle %d/%d)", LinkName(e.C.Net, l), cycle+1, s.Cycles)
		e.C.Fab.KillLink(l)
		e.C.K.After(s.Down, func() {
			e.Record("link-flap up %s", LinkName(e.C.Net, l))
			e.C.Net.RestoreLink(l)
			cycle++
			if cycle < s.Cycles {
				e.C.K.After(s.Up, flap)
			}
		})
	}
	e.C.K.After(s.Start, flap)
}

// LinkKill permanently kills trunk links — no restore, ever. Detection
// and remap are the only way traffic resumes, so the post-kill delivery
// stall isolates detection latency: the fixed permanent-failure threshold
// for the baseline protocol, the negotiated detection time when liveness
// sessions are enabled. If Links is nil, Count distinct trunks are drawn
// from the engine's RNG.
type LinkKill struct {
	Links []*topology.Link
	Count int // used when Links is nil; default 1
	Start time.Duration
}

func (s LinkKill) ScenarioName() string { return "link-kill" }

func (s LinkKill) Install(e *Engine) {
	victims := s.Links
	if victims == nil {
		n := s.Count
		if n == 0 {
			n = 1
		}
		trunks := TrunkLinks(e.C.Net)
		if len(trunks) == 0 {
			panic("chaos: LinkKill with no trunk links and no explicit Links")
		}
		perm := e.rng.Perm(len(trunks))
		for i := 0; i < n && i < len(trunks); i++ {
			victims = append(victims, trunks[perm[i]])
		}
	}
	e.C.K.After(s.Start, func() {
		for _, l := range victims {
			e.RecordFault("link-kill %s (permanent)", LinkName(e.C.Net, l))
			e.C.Fab.KillLink(l)
		}
	})
}

// RouteTrunks returns the trunk links the shortest route from host a to
// host b crosses, in path order. Scenarios that must hit live traffic —
// rather than a redundant spare — kill one of these.
func RouteTrunks(nw *topology.Network, a, b topology.NodeID) []*topology.Link {
	r, err := routing.Shortest(nw, a, b)
	if err != nil {
		return nil
	}
	res, err := routing.Walk(nw, a, r)
	if err != nil {
		return nil
	}
	var out []*topology.Link
	for i, sw := range res.Switches {
		if i >= len(r) {
			break
		}
		l := nw.Node(sw).Ports[r[i]]
		if l == nil {
			continue
		}
		if nw.Node(l.A.Node).Kind == topology.Switch &&
			nw.Node(l.B.Node).Kind == topology.Switch {
			out = append(out, l)
		}
	}
	return out
}

// SwitchOutage kills a set of switches simultaneously — a correlated
// failure (shared power feed, shared rack) — restores them Down later, and
// repeats. If Switches is nil, Count switches are drawn from the engine's
// RNG at install time.
type SwitchOutage struct {
	Switches []topology.NodeID
	Count    int // used when Switches is nil; default 1
	Start    time.Duration
	Down     time.Duration // default 200ms
	Repeat   int           // number of outages; default 1
	Gap      time.Duration // between restore and next kill; default 300ms
}

func (s SwitchOutage) ScenarioName() string { return "switch-outage" }

func (s SwitchOutage) Install(e *Engine) {
	if s.Down == 0 {
		s.Down = 200 * time.Millisecond
	}
	if s.Repeat == 0 {
		s.Repeat = 1
	}
	if s.Gap == 0 {
		s.Gap = 300 * time.Millisecond
	}
	victims := s.Switches
	if victims == nil {
		n := s.Count
		if n == 0 {
			n = 1
		}
		all := e.C.Net.Switches()
		perm := e.rng.Perm(len(all))
		for i := 0; i < n && i < len(all); i++ {
			victims = append(victims, all[perm[i]])
		}
	}
	round := 0
	var outage func()
	outage = func() {
		for _, sw := range victims {
			e.RecordFault("switch-outage kill %s (round %d/%d)",
				e.C.Net.Node(sw).Name, round+1, s.Repeat)
			e.C.Fab.KillSwitch(sw)
		}
		e.C.K.After(s.Down, func() {
			for _, sw := range victims {
				e.Record("switch-outage restore %s", e.C.Net.Node(sw).Name)
				e.C.Net.RestoreSwitch(sw)
			}
			round++
			if round < s.Repeat {
				e.C.K.After(s.Gap, outage)
			}
		})
	}
	e.C.K.After(s.Start, outage)
}

// Partition severs every link between node groups A and B at Start and
// restores the cut set after Heal — the classic split-brain experiment.
type Partition struct {
	A, B  []topology.NodeID
	Start time.Duration
	Heal  time.Duration // time from cut to heal; default 300ms
}

func (s Partition) ScenarioName() string { return "partition" }

func (s Partition) Install(e *Engine) {
	if s.Heal == 0 {
		s.Heal = 300 * time.Millisecond
	}
	cut := CutLinks(e.C.Net, s.A, s.B)
	if len(cut) == 0 {
		panic("chaos: Partition cut set is empty")
	}
	e.C.K.After(s.Start, func() {
		for _, l := range cut {
			e.RecordFault("partition cut %s", LinkName(e.C.Net, l))
			e.C.Fab.KillLink(l)
		}
		e.C.K.After(s.Heal, func() {
			for _, l := range cut {
				e.Record("partition heal %s", LinkName(e.C.Net, l))
				e.C.Net.RestoreLink(l)
			}
		})
	})
}

// DropRamp walks the send-side injected error rate through Rates, one step
// every Step, on the given hosts (all hosts if nil). A rate of 0 removes
// the dropper. Each (host, step) pair gets its own deterministic dropper
// seeded from the engine seed.
type DropRamp struct {
	Rates []float64
	Start time.Duration
	Step  time.Duration // default 20ms
	Hosts []topology.NodeID
}

func (s DropRamp) ScenarioName() string { return "drop-ramp" }

func (s DropRamp) Install(e *Engine) {
	if s.Step == 0 {
		s.Step = 20 * time.Millisecond
	}
	hosts := s.Hosts
	if hosts == nil {
		hosts = e.C.Hosts
	}
	for i, rate := range s.Rates {
		i, rate := i, rate
		e.C.K.After(s.Start+time.Duration(i)*s.Step, func() {
			e.RecordFault("drop-ramp rate=%g on %d hosts (step %d/%d)",
				rate, len(hosts), i+1, len(s.Rates))
			for _, h := range hosts {
				if rate <= 0 {
					e.C.NIC(h).SetDropper(nil)
					continue
				}
				e.C.NIC(h).SetDropper(fault.NewRateSeeded(rate,
					e.Seed*65537+int64(h)*2654435761+int64(i)*40503))
			}
		})
	}
}

// Composite installs several scenarios as one — flapping links while the
// error rate ramps, a partition during a switch outage, and so on.
type Composite struct {
	Label string
	Parts []Scenario
}

func (s Composite) ScenarioName() string {
	if s.Label != "" {
		return s.Label
	}
	return "composite"
}

func (s Composite) Install(e *Engine) {
	for _, p := range s.Parts {
		e.Record("composite part %s", p.ScenarioName())
		p.Install(e)
	}
}
