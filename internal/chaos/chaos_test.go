package chaos

import (
	"testing"
	"time"

	"sanft/internal/topology"
)

// TestAllCampaignsPass runs the whole built-in suite once and requires
// every invariant to hold.
func TestAllCampaignsPass(t *testing.T) {
	for _, c := range Campaigns() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			rep := c.Run(1)
			if !rep.Passed() {
				t.Fatalf("campaign failed:\n%s\nevent log:\n%s", rep, rep.EventLog)
			}
			if rep.Faults == 0 {
				t.Fatal("campaign injected no faults")
			}
			if rep.Delivered == 0 {
				t.Fatal("campaign delivered nothing")
			}
		})
	}
}

// TestCampaignsDeterministic runs campaigns twice with one seed and
// requires byte-identical event logs and identical delivery outcomes —
// the reproducibility contract of the chaos engine.
func TestCampaignsDeterministic(t *testing.T) {
	for _, name := range []string{"link-flap", "partition-heal"} {
		c, ok := Find(name)
		if !ok {
			t.Fatalf("campaign %q missing", name)
		}
		a, b := c.Run(42), c.Run(42)
		if a.EventLog != b.EventLog {
			t.Fatalf("%s: event logs diverged between same-seed runs:\n--- run 1\n%s\n--- run 2\n%s",
				name, a.EventLog, b.EventLog)
		}
		if a.Delivered != b.Delivered || a.Duplicates != b.Duplicates ||
			a.Remaps != b.Remaps || a.RemapStats != b.RemapStats {
			t.Fatalf("%s: outcomes diverged: %+v vs %+v", name, a, b)
		}
	}
}

// TestSeedChangesSchedule guards against accidentally ignoring the seed:
// different seeds must give different fault schedules for a randomized
// scenario.
func TestSeedChangesSchedule(t *testing.T) {
	c, _ := Find("link-flap")
	a, b := c.Run(1), c.Run(2)
	if a.EventLog == b.EventLog {
		t.Fatal("different seeds produced identical event logs")
	}
}

// TestMTTRObserved checks that outages show up in the recovery histogram:
// a partitioned flow's delivery gap must be recorded as a stall.
func TestMTTRObserved(t *testing.T) {
	c, _ := Find("partition-heal")
	rep := c.Run(7)
	if rep.MTTR == "no recoveries observed" {
		t.Fatalf("a 300ms partition produced no recorded delivery stalls; report:\n%s", rep)
	}
}

// TestCutLinks checks the partition cut-set helper on the chain topology.
func TestCutLinks(t *testing.T) {
	nw, _ := topology.Chain(3, 2, 2)
	sws := nw.Switches()
	cut := CutLinks(nw, sws[:2], sws[2:])
	if len(cut) != 2 {
		t.Fatalf("cut set has %d links, want the 2 sw1-sw2 trunks", len(cut))
	}
	for _, l := range cut {
		if nw.Node(l.A.Node).Kind != topology.Switch || nw.Node(l.B.Node).Kind != topology.Switch {
			t.Fatalf("cut link %s is not a trunk", LinkName(nw, l))
		}
	}
	if n := len(TrunkLinks(nw)); n != 4 {
		t.Fatalf("trunk count = %d, want 4", n)
	}
}

// TestWorkloadDefaults checks the zero-value workload fills in sane
// parameters and counts outcomes correctly on a fault-free run.
func TestWorkloadDefaults(t *testing.T) {
	c, hosts := chainCluster(3, Baseline())
	e := NewEngine(c, 3)
	r := Workload{Pairs: []Pair{{hosts[0], hosts[5]}, {hosts[5], hosts[0]}}}.Start(e)
	c.RunFor(2 * time.Second)
	c.Stop()
	if r.Expected() != 12 {
		t.Fatalf("expected = %d, want 12 (6 defaulted msgs × 2 pairs)", r.Expected())
	}
	if r.Delivered() != 12 || r.Duplicates() != 0 {
		t.Fatalf("delivered %d (dups %d), want 12 clean", r.Delivered(), r.Duplicates())
	}
	if vs := CheckInvariants(e, r, CheckOpts{}); len(vs) != 0 {
		t.Fatalf("fault-free run violated invariants: %v", vs)
	}
}
