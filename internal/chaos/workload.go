package chaos

import (
	"fmt"
	"time"

	"sanft/internal/sim"
	"sanft/internal/topology"
)

// Pair is one directed traffic flow.
type Pair struct {
	Src, Dst topology.NodeID
}

// AllPairs returns every directed pair over hosts.
func AllPairs(hosts []topology.NodeID) []Pair {
	var out []Pair
	for _, s := range hosts {
		for _, d := range hosts {
			if s != d {
				out = append(out, Pair{s, d})
			}
		}
	}
	return out
}

// Workload drives traffic through a chaos run: Msgs messages of Bytes
// each, per pair, with Gap between sends (plus a per-source stagger so
// flows do not march in lockstep).
type Workload struct {
	Pairs []Pair
	Msgs  int           // default 6
	Bytes int           // default 512
	Gap   time.Duration // default 200µs

	// OnNotify, if set, observes every notification as it arrives (in
	// event context), in delivery order per pair. External checkers — the
	// proptest ordering oracle, for one — need the sequence, which Counts
	// alone cannot reconstruct.
	OnNotify func(Pair, uint64)
}

// TrafficSource abstracts what a campaign drives through the fault
// schedule: anything that can start traffic against an engine's cluster
// and return the observation state the invariant oracle audits. The
// built-in synthetic Workload is one source; internal/workload's
// production-shaped generators are another.
type TrafficSource interface {
	Start(e *Engine) *Run
}

// TrafficInjector builds a replacement traffic source for a campaign's
// default workload. The default is passed in so injectors can reuse its
// shape — most importantly Pairs, which encodes the hosts the campaign's
// fault schedule targets.
type TrafficInjector func(e *Engine, dflt Workload) *Run

// StartTraffic starts the campaign's traffic: the injected source when
// one is installed (Campaign.RunWithTraffic), else the built-in default.
// Campaigns route every workload start through here so an injected
// workload inherits the full campaign — topology, fault schedule,
// invariant oracle, and report — without forking it.
func (e *Engine) StartTraffic(dflt Workload) *Run {
	if e.inject != nil {
		return e.inject(e, dflt)
	}
	return dflt.Start(e)
}

// Run is a started workload's observation state. Receivers record every
// notification; CheckInvariants consumes the counts afterwards.
type Run struct {
	W Workload
	// Counts maps each pair to notification counts per message ID — the
	// raw material for the delivery and dedup invariants.
	Counts map[Pair]map[uint64]int

	// Sent, when non-nil, is the per-pair set of injected message IDs —
	// the expectation side of the delivery invariant for external traffic
	// sources, which (unlike the built-in workload) do not send a fixed
	// Msgs per pair. Populate through NoteSent.
	Sent map[Pair]map[uint64]bool

	lastDelivery map[Pair]sim.Time
}

// NewExternalRun returns an empty Run with send-side accounting enabled,
// for traffic sources implemented outside this package: record every
// Import.Send with NoteSent and every notification with NoteDelivered,
// and CheckInvariants audits the external traffic exactly as it does the
// built-in workload's.
func (e *Engine) NewExternalRun() *Run {
	return &Run{
		Counts:       make(map[Pair]map[uint64]int),
		Sent:         make(map[Pair]map[uint64]bool),
		lastDelivery: make(map[Pair]sim.Time),
	}
}

// NoteSent records one injected message (the ID returned by Import.Send)
// on the directed pair.
func (r *Run) NoteSent(pr Pair, id uint64) {
	m := r.Sent[pr]
	if m == nil {
		m = make(map[uint64]bool)
		r.Sent[pr] = m
	}
	m[id] = true
}

// NoteDelivered records one completion notification on the directed pair
// and feeds the engine's delivery-stall (MTTR) histogram, mirroring what
// the built-in workload's receivers do.
func (e *Engine) NoteDelivered(r *Run, pr Pair, id uint64) {
	m := r.Counts[pr]
	if m == nil {
		m = make(map[uint64]int)
		r.Counts[pr] = m
	}
	m[id]++
	now := e.C.Now()
	if last, ok := r.lastDelivery[pr]; ok {
		e.observeGap(now.Sub(last))
	}
	r.lastDelivery[pr] = now
}

// Start exports a buffer per pair, spawns the receive and send processes,
// and returns the observation state. Call before the cluster runs.
func (w Workload) Start(e *Engine) *Run {
	if w.Msgs == 0 {
		w.Msgs = 6
	}
	if w.Bytes == 0 {
		w.Bytes = 512
	}
	if w.Gap == 0 {
		w.Gap = 200 * time.Microsecond
	}
	// A delivery gap at the workload's own pace is not a stall: keep the
	// stall floor above twice the send gap so MTTR records only
	// fault-induced delays.
	if e.StallFloor < 2*w.Gap {
		e.StallFloor = 2 * w.Gap
	}
	r := &Run{
		W:            w,
		Counts:       make(map[Pair]map[uint64]int),
		lastDelivery: make(map[Pair]sim.Time),
	}
	for i, pr := range w.Pairs {
		pr := pr
		name := fmt.Sprintf("chaos-%d", pr.Src)
		exp := e.C.Endpoint(pr.Dst).Export(name, w.Bytes*4)
		r.Counts[pr] = make(map[uint64]int)
		e.C.K.Spawn(fmt.Sprintf("chaos-recv-%d-%d", pr.Src, pr.Dst), func(p *sim.Proc) {
			for {
				n := exp.WaitNotification(p)
				r.Counts[pr][n.MsgID]++
				if w.OnNotify != nil {
					w.OnNotify(pr, n.MsgID)
				}
				if last, ok := r.lastDelivery[pr]; ok {
					e.observeGap(p.Now().Sub(last))
				}
				r.lastDelivery[pr] = p.Now()
			}
		})
		stagger := time.Duration(i%7) * 37 * time.Microsecond
		e.C.K.Spawn(fmt.Sprintf("chaos-send-%d-%d", pr.Src, pr.Dst), func(p *sim.Proc) {
			p.Sleep(stagger)
			imp, err := e.C.Endpoint(pr.Src).Import(pr.Dst, name)
			if err != nil {
				panic(fmt.Sprintf("chaos: import %d->%d: %v", pr.Src, pr.Dst, err))
			}
			for m := 0; m < w.Msgs; m++ {
				imp.Send(p, 0, make([]byte, w.Bytes), true)
				p.Sleep(w.Gap)
			}
		})
	}
	return r
}

// Expected returns the number of messages the workload injects in total:
// the send-side accounting when enabled, else the fixed pair × msg grid.
func (r *Run) Expected() int {
	if r.Sent != nil {
		n := 0
		for _, ids := range r.Sent {
			n += len(ids)
		}
		return n
	}
	return len(r.W.Pairs) * r.W.Msgs
}

// NumPairs returns the number of directed pairs the run drove traffic on.
func (r *Run) NumPairs() int {
	if r.Sent != nil {
		return len(r.Sent)
	}
	return len(r.W.Pairs)
}

// Delivered returns the number of distinct messages that produced at
// least one notification.
func (r *Run) Delivered() int {
	n := 0
	for _, ids := range r.Counts {
		n += len(ids)
	}
	return n
}

// Duplicates returns the number of extra notifications beyond the first
// per message — nonzero means the exactly-once notification contract
// broke.
func (r *Run) Duplicates() int {
	n := 0
	for _, ids := range r.Counts {
		for _, c := range ids {
			if c > 1 {
				n += c - 1
			}
		}
	}
	return n
}
