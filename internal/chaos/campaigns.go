package chaos

import (
	"fmt"
	"strings"
	"time"

	"sanft/internal/core"
	"sanft/internal/retrans"
	"sanft/internal/topology"
)

// Report is the outcome of one campaign run — the degradation report the
// sanchaos command prints.
type Report struct {
	Campaign string
	Seed     int64

	Faults   int
	Events   int
	EventLog string

	Pairs      int
	Expected   int
	Delivered  int
	Duplicates int

	Remaps       int
	Unreachables int
	RemapStats   core.RemapStats

	// MTTR summarizes delivery stalls (see Engine.MTTR).
	MTTR string

	Violations []Violation

	// FlightDump is the flight recorder's post-mortem rendering, filled
	// only when invariants were violated and a recorder was attached
	// (RunInstrumented with core.Cluster.InstallTracer).
	FlightDump string `json:",omitempty"`
}

// Passed reports whether every invariant held.
func (r *Report) Passed() bool { return len(r.Violations) == 0 }

func (r *Report) String() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.Passed() {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "campaign %s (seed %d): %s\n", r.Campaign, r.Seed, verdict)
	fmt.Fprintf(&b, "  faults injected:  %d (%d log events)\n", r.Faults, r.Events)
	fmt.Fprintf(&b, "  flows:            %d pairs, %d messages expected\n", r.Pairs, r.Expected)
	fmt.Fprintf(&b, "  delivered:        %d distinct, %d duplicate notifications\n",
		r.Delivered, r.Duplicates)
	fmt.Fprintf(&b, "  remaps:           %d ok, %d unreachable verdicts\n",
		r.Remaps, r.Unreachables)
	fmt.Fprintf(&b, "  remap pacing:     attempts %d, coalesced %d, deferred %d, quarantines %d\n",
		r.RemapStats.Attempts, r.RemapStats.Coalesced,
		r.RemapStats.Deferred, r.RemapStats.Quarantines)
	fmt.Fprintf(&b, "  delivery stalls:  %s\n", r.MTTR)
	if r.Passed() {
		fmt.Fprintf(&b, "  invariants:       all hold\n")
	} else {
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  VIOLATION:        %s\n", v)
		}
	}
	return b.String()
}

// Campaign is a named, self-contained chaos experiment: it builds its own
// cluster, workload, and scenarios, runs them, and reports.
type Campaign struct {
	Name  string
	About string
	// run builds and executes the campaign. pre, if non-nil, runs right
	// after the cluster is built and before any traffic or faults — the
	// instrumentation hook (attach samplers, grab the Observer).
	run func(seed int64, pre func(*core.Cluster)) *Report
}

// Run executes the campaign with the given seed.
func (c Campaign) Run(seed int64) *Report { return c.run(seed, nil) }

// RunInstrumented executes the campaign, invoking pre on the freshly built
// cluster before traffic starts. cmd/sanstat uses it to start periodic
// metric sampling and capture the cluster's Observer.
func (c Campaign) RunInstrumented(seed int64, pre func(*core.Cluster)) *Report {
	return c.run(seed, pre)
}

// finish stops the cluster, audits invariants, and assembles the report.
// An invariant violation freezes a flight-recorder snapshot (when one is
// attached) and embeds the recorder's dump in the report, so a failing
// campaign ships its own post-mortem.
func finish(name string, seed int64, e *Engine, r *Run, opts CheckOpts, dur time.Duration) *Report {
	e.C.RunFor(dur)
	e.C.Stop()
	e.Record("campaign %s complete", name)
	violations := CheckInvariants(e, r, opts)
	var dump string
	if len(violations) > 0 && e.fr != nil {
		for _, v := range violations {
			e.fr.TriggerSnapshot("invariant:"+v.Invariant, e.C.Now())
		}
		dump = e.fr.Dump()
	}
	return &Report{
		Campaign:     name,
		Seed:         seed,
		Faults:       e.Faults(),
		Events:       e.Events(),
		EventLog:     e.LogText(),
		Pairs:        len(r.W.Pairs),
		Expected:     r.Expected(),
		Delivered:    r.Delivered(),
		Duplicates:   r.Duplicates(),
		Remaps:       e.C.Remaps,
		Unreachables: e.C.Unreachables,
		RemapStats:   e.C.RemapStats,
		MTTR:         e.MTTRSummary(),
		Violations:   violations,
		FlightDump:   dump,
	}
}

// chainCluster builds the redundant 3-switch chain (two trunks between
// adjacent switches, two hosts per switch) used by several campaigns.
func chainCluster(seed int64) (*core.Cluster, []topology.NodeID) {
	nw, rows := topology.Chain(3, 2, 2)
	var hosts []topology.NodeID
	for _, row := range rows {
		hosts = append(hosts, row...)
	}
	c := core.New(core.Config{
		Net: nw, Hosts: hosts, FT: true,
		Retrans: retrans.Config{
			QueueSize:         16,
			Interval:          time.Millisecond,
			PermFailThreshold: 8 * time.Millisecond,
		},
		Mapper: true,
		Seed:   seed,
	})
	return c, hosts
}

// Campaigns returns the built-in campaign suite.
func Campaigns() []Campaign {
	return []Campaign{
		{
			Name:  "link-flap",
			About: "random trunk flaps on a redundant chain; strict delivery",
			run: func(seed int64, pre func(*core.Cluster)) *Report {
				c, hosts := chainCluster(seed)
				if pre != nil {
					pre(c)
				}
				e := NewEngine(c, seed)
				// Pace the traffic across the whole flap window (~60ms); the
				// 3ms gap keeps the stall floor below remap-length stalls.
				r := Workload{Pairs: AllPairs(hosts), Msgs: 20, Gap: 3 * time.Millisecond}.Start(e)
				e.Install(LinkFlap{Start: time.Millisecond, Cycles: 10})
				return finish("link-flap", seed, e, r,
					CheckOpts{MaxRemapAttempts: 60}, 20*time.Second)
			},
		},
		{
			Name:  "switch-storm",
			About: "correlated double switch outage on the Figure-2 tree; loss allowed",
			run: func(seed int64, pre func(*core.Cluster)) *Report {
				f := topology.NewFig2()
				hosts := append([]topology.NodeID{f.Mapper}, f.Targets[:3]...)
				c := core.New(core.Config{
					Net: f.Net, Hosts: hosts, FT: true,
					Retrans: retrans.Config{
						QueueSize:         16,
						Interval:          time.Millisecond,
						PermFailThreshold: 8 * time.Millisecond,
					},
					Mapper: true,
					Seed:   seed,
				})
				if pre != nil {
					pre(c)
				}
				e := NewEngine(c, seed)
				// Traffic outlasts both outages (~700ms of storm), so
				// surviving flows show their recovery stalls.
				r := Workload{Pairs: AllPairs(hosts), Msgs: 20, Gap: 40 * time.Millisecond}.Start(e)
				e.Install(SwitchOutage{
					Switches: []topology.NodeID{f.Switches[1], f.Switches[2]},
					Start:    2 * time.Millisecond,
					Down:     200 * time.Millisecond,
					Repeat:   2,
				})
				return finish("switch-storm", seed, e, r,
					CheckOpts{AllowLoss: true}, 20*time.Second)
			},
		},
		{
			Name:  "partition-heal",
			About: "sever and heal the full cut between two halves of the chain",
			run: func(seed int64, pre func(*core.Cluster)) *Report {
				c, hosts := chainCluster(seed)
				if pre != nil {
					pre(c)
				}
				sws := c.Net.Switches()
				e := NewEngine(c, seed)
				// Demand persists through the 300ms cut, so cross-partition
				// sources keep triggering remaps until quarantine.
				r := Workload{Pairs: AllPairs(hosts), Msgs: 30, Gap: 20 * time.Millisecond}.Start(e)
				e.Install(Partition{
					A:     sws[:2],
					B:     sws[2:],
					Start: 2 * time.Millisecond,
					Heal:  300 * time.Millisecond,
				})
				rep := finish("partition-heal", seed, e, r,
					CheckOpts{AllowLoss: true}, 20*time.Second)
				// A 300ms full cut with ongoing demand must drive at least
				// one destination into quarantine — that is the graceful
				// degradation this campaign exists to demonstrate.
				if rep.RemapStats.Quarantines == 0 {
					rep.Violations = append(rep.Violations, Violation{
						"quarantine", "partition never quarantined any destination"})
				}
				return rep
			},
		},
		{
			Name:  "drop-ramp",
			About: "send-side error rate ramped to 30% and back; strict delivery",
			run: func(seed int64, pre func(*core.Cluster)) *Report {
				nw, hosts := topology.Star(6)
				c := core.New(core.Config{
					Net: nw, Hosts: hosts, FT: true,
					Retrans: retrans.Config{
						QueueSize:         16,
						Interval:          time.Millisecond,
						PermFailThreshold: time.Second,
					},
					Seed: seed,
				})
				if pre != nil {
					pre(c)
				}
				e := NewEngine(c, seed)
				// Traffic spans the whole ramp (~100ms).
				r := Workload{Pairs: AllPairs(hosts), Msgs: 12, Gap: 10 * time.Millisecond}.Start(e)
				e.Install(DropRamp{
					Rates: []float64{0.02, 0.1, 0.3, 0},
					Start: time.Millisecond,
					Step:  25 * time.Millisecond,
				})
				return finish("drop-ramp", seed, e, r, CheckOpts{}, 10*time.Second)
			},
		},
		{
			Name:  "composite",
			About: "trunk flapping while the error rate ramps; strict delivery",
			run: func(seed int64, pre func(*core.Cluster)) *Report {
				c, hosts := chainCluster(seed)
				if pre != nil {
					pre(c)
				}
				e := NewEngine(c, seed)
				r := Workload{Pairs: AllPairs(hosts), Msgs: 20, Gap: 3 * time.Millisecond}.Start(e)
				e.Install(Composite{Parts: []Scenario{
					LinkFlap{Start: time.Millisecond, Cycles: 8},
					DropRamp{Rates: []float64{0.05, 0}, Start: time.Millisecond, Step: 30 * time.Millisecond},
				}})
				return finish("composite", seed, e, r,
					CheckOpts{MaxRemapAttempts: 60}, 20*time.Second)
			},
		},
	}
}

// Find returns the campaign with the given name.
func Find(name string) (Campaign, bool) {
	for _, c := range Campaigns() {
		if c.Name == name {
			return c, true
		}
	}
	return Campaign{}, false
}
