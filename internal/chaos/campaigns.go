package chaos

import (
	"fmt"
	"strings"
	"time"

	"sanft/internal/core"
	"sanft/internal/liveness"
	"sanft/internal/mapping"
	"sanft/internal/metrics"
	"sanft/internal/retrans"
	"sanft/internal/topology"
)

// Variant selects the protocol configuration a campaign runs under, so
// the same fault schedule can be measured against the paper's fixed-timer
// baseline and against the adaptive-liveness stack.
type Variant struct {
	// Name labels report rows ("baseline", "liveness").
	Name string
	// Liveness, when non-nil, runs BFD-style per-path sessions feeding
	// the remap/quarantine recovery path.
	Liveness *liveness.Config
	// Adaptive switches the retransmission timeout from the fixed
	// interval to the RTT-driven Jacobson/Karn estimator.
	Adaptive bool
}

// Baseline is the paper's configuration: fixed retransmission interval,
// fixed permanent-failure threshold, no liveness sessions.
func Baseline() Variant { return Variant{Name: "baseline"} }

// AdaptiveLiveness enables per-path liveness sessions (RFC 5880-style
// defaults: 1ms interval, detect multiplier 3) plus the RTT-adaptive
// retransmission timeout.
func AdaptiveLiveness() Variant {
	return Variant{Name: "liveness", Liveness: &liveness.Config{}, Adaptive: true}
}

// apply overlays the variant onto a cluster configuration.
func (v Variant) apply(cfg *core.Config) {
	cfg.Liveness = v.Liveness
	cfg.Retrans.Adaptive = v.Adaptive
}

// maxAttempts scales a campaign's remap-attempt bound: liveness detects
// failures roughly 3× earlier than the fixed threshold, so the same fault
// schedule legitimately drives more remap attempts.
func (v Variant) maxAttempts(base int) int {
	if base > 0 && v.Liveness != nil {
		return base * 2
	}
	return base
}

// Report is the outcome of one campaign run — the degradation report the
// sanchaos command prints.
type Report struct {
	Campaign string
	Variant  string
	Seed     int64

	Faults   int
	Events   int
	EventLog string

	Pairs      int
	Expected   int
	Delivered  int
	Duplicates int

	Remaps       int
	Unreachables int
	RemapStats   core.RemapStats

	// MTTR summarizes delivery stalls (see Engine.MTTR); MTTRp50, MTTRp99,
	// and MTTRp999 are the stall quantiles (zero when no stalls were
	// observed) — the numbers the baseline-vs-liveness comparison ranks by.
	MTTR     string
	MTTRp50  time.Duration
	MTTRp99  time.Duration
	MTTRp999 time.Duration

	Violations []Violation

	// FlightDump is the flight recorder's post-mortem rendering, filled
	// only when invariants were violated and a recorder was attached
	// (RunInstrumented with core.Cluster.InstallTracer).
	FlightDump string `json:",omitempty"`
}

// Passed reports whether every invariant held.
func (r *Report) Passed() bool { return len(r.Violations) == 0 }

func (r *Report) String() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.Passed() {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "%s: %s\n", r.Title(), verdict)
	fmt.Fprintf(&b, "  faults injected:  %d (%d log events)\n", r.Faults, r.Events)
	fmt.Fprintf(&b, "  flows:            %d pairs, %d messages expected\n", r.Pairs, r.Expected)
	fmt.Fprintf(&b, "  delivered:        %d distinct, %d duplicate notifications\n",
		r.Delivered, r.Duplicates)
	fmt.Fprintf(&b, "  remaps:           %d ok, %d unreachable verdicts\n",
		r.Remaps, r.Unreachables)
	fmt.Fprintf(&b, "  remap pacing:     attempts %d, coalesced %d, deferred %d, quarantines %d\n",
		r.RemapStats.Attempts, r.RemapStats.Coalesced,
		r.RemapStats.Deferred, r.RemapStats.Quarantines)
	fmt.Fprintf(&b, "  delivery stalls:  %s\n", r.MTTR)
	if r.Passed() {
		fmt.Fprintf(&b, "  invariants:       all hold\n")
	} else {
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  VIOLATION:        %s\n", v)
		}
	}
	return b.String()
}

// Campaign is a named, self-contained chaos experiment: it builds its own
// cluster, workload, and scenarios, runs them, and reports.
type Campaign struct {
	Name  string
	About string
	// run builds and executes the campaign under the caller's hooks.
	run func(seed int64, h runHooks) *Report
}

// runHooks carries the caller-supplied extension points into a campaign
// run: pre fires on the freshly built cluster before any traffic or
// faults (the instrumentation hook), and traffic replaces the built-in
// synthetic workload (the injection hook).
type runHooks struct {
	pre     func(*core.Cluster)
	traffic TrafficInjector
}

// cluster invokes the instrumentation hook, if any.
func (h runHooks) cluster(c *core.Cluster) {
	if h.pre != nil {
		h.pre(c)
	}
}

// engine builds the campaign's engine with the traffic injector wired in,
// so every StartTraffic call inside the campaign sees it.
func (h runHooks) engine(c *core.Cluster, seed int64) *Engine {
	e := NewEngine(c, seed)
	e.inject = h.traffic
	return e
}

// Run executes the campaign with the given seed.
func (c Campaign) Run(seed int64) *Report { return c.run(seed, runHooks{}) }

// RunInstrumented executes the campaign, invoking pre on the freshly built
// cluster before traffic starts. cmd/sanstat uses it to start periodic
// metric sampling and capture the cluster's Observer.
func (c Campaign) RunInstrumented(seed int64, pre func(*core.Cluster)) *Report {
	return c.run(seed, runHooks{pre: pre})
}

// RunWithTraffic executes the campaign with an injected traffic source in
// place of the built-in synthetic workload: same topology, fault
// schedule, invariant oracle, and report — only the traffic differs. pre
// may be nil; inj receives the campaign's default workload so it can
// reuse the pair set the fault schedule targets.
func (c Campaign) RunWithTraffic(seed int64, pre func(*core.Cluster), inj TrafficInjector) *Report {
	return c.run(seed, runHooks{pre: pre, traffic: inj})
}

// finish stops the cluster, audits invariants, and assembles the report.
// An invariant violation freezes a flight-recorder snapshot (when one is
// attached) and embeds the recorder's dump in the report, so a failing
// campaign ships its own post-mortem.
func finish(name string, v Variant, seed int64, e *Engine, r *Run, opts CheckOpts, dur time.Duration) *Report {
	e.C.RunFor(dur)
	e.C.Stop()
	e.Record("campaign %s complete", name)
	violations := CheckInvariants(e, r, opts)
	var dump string
	if len(violations) > 0 && e.fr != nil {
		for _, vio := range violations {
			e.fr.TriggerSnapshot("invariant:"+vio.Invariant, e.C.Now())
		}
		dump = e.fr.Dump()
	}
	var p50, p99, p999 time.Duration
	if e.mttr.Count() > 0 {
		p50, p99, p999 = e.mttr.Quantile(0.5), e.mttr.Quantile(0.99), e.mttr.Quantile(0.999)
	}
	return &Report{
		Campaign:     name,
		Variant:      v.Name,
		Seed:         seed,
		MTTRp50:      p50,
		MTTRp99:      p99,
		MTTRp999:     p999,
		Faults:       e.Faults(),
		Events:       e.Events(),
		EventLog:     e.LogText(),
		Pairs:        r.NumPairs(),
		Expected:     r.Expected(),
		Delivered:    r.Delivered(),
		Duplicates:   r.Duplicates(),
		Remaps:       e.C.Remaps,
		Unreachables: e.C.Unreachables,
		RemapStats:   e.C.RemapStats,
		MTTR:         e.MTTRSummary(),
		Violations:   violations,
		FlightDump:   dump,
	}
}

// chainCluster builds the redundant 3-switch chain (two trunks between
// adjacent switches, two hosts per switch) used by several campaigns.
func chainCluster(seed int64, v Variant) (*core.Cluster, []topology.NodeID) {
	nw, rows := topology.Chain(3, 2, 2)
	var hosts []topology.NodeID
	for _, row := range rows {
		hosts = append(hosts, row...)
	}
	cfg := core.Config{
		Net: nw, Hosts: hosts, FT: true,
		Retrans: retrans.Config{
			QueueSize:         16,
			Interval:          time.Millisecond,
			PermFailThreshold: 8 * time.Millisecond,
		},
		Mapper: true,
		Seed:   seed,
	}
	v.apply(&cfg)
	c := core.New(cfg)
	return c, hosts
}

// Campaigns returns the built-in campaign suite under the paper's
// baseline configuration.
func Campaigns() []Campaign { return CampaignsWith(Baseline()) }

// CampaignsWith returns the built-in campaign suite with every cluster
// configured for the given variant — the same topologies, workloads, and
// fault schedules, so baseline-vs-liveness reports differ only in the
// protocol stack under test.
func CampaignsWith(v Variant) []Campaign {
	return []Campaign{
		{
			Name:  "link-flap",
			About: "random trunk flaps on a redundant chain; strict delivery",
			run: func(seed int64, h runHooks) *Report {
				c, hosts := chainCluster(seed, v)
				h.cluster(c)
				e := h.engine(c, seed)
				// Pace the traffic across the whole flap window (~60ms); the
				// 3ms gap keeps the stall floor below remap-length stalls.
				r := e.StartTraffic(Workload{Pairs: AllPairs(hosts), Msgs: 20, Gap: 3 * time.Millisecond})
				e.Install(LinkFlap{Start: time.Millisecond, Cycles: 10})
				return finish("link-flap", v, seed, e, r,
					CheckOpts{MaxRemapAttempts: v.maxAttempts(60)}, 20*time.Second)
			},
		},
		{
			Name:  "switch-storm",
			About: "correlated double switch outage on the Figure-2 tree; loss allowed",
			run: func(seed int64, h runHooks) *Report {
				f := topology.NewFig2()
				hosts := append([]topology.NodeID{f.Mapper}, f.Targets[:3]...)
				cfg := core.Config{
					Net: f.Net, Hosts: hosts, FT: true,
					Retrans: retrans.Config{
						QueueSize:         16,
						Interval:          time.Millisecond,
						PermFailThreshold: 8 * time.Millisecond,
					},
					Mapper: true,
					Seed:   seed,
				}
				v.apply(&cfg)
				c := core.New(cfg)
				h.cluster(c)
				e := h.engine(c, seed)
				// Traffic outlasts both outages (~700ms of storm), so
				// surviving flows show their recovery stalls.
				r := e.StartTraffic(Workload{Pairs: AllPairs(hosts), Msgs: 20, Gap: 40 * time.Millisecond})
				e.Install(SwitchOutage{
					Switches: []topology.NodeID{f.Switches[1], f.Switches[2]},
					Start:    2 * time.Millisecond,
					Down:     200 * time.Millisecond,
					Repeat:   2,
				})
				return finish("switch-storm", v, seed, e, r,
					CheckOpts{AllowLoss: true}, 20*time.Second)
			},
		},
		{
			Name:  "partition-heal",
			About: "sever and heal the full cut between two halves of the chain",
			run: func(seed int64, h runHooks) *Report {
				c, hosts := chainCluster(seed, v)
				h.cluster(c)
				sws := c.Net.Switches()
				e := h.engine(c, seed)
				// Demand persists through the 300ms cut, so cross-partition
				// sources keep triggering remaps until quarantine.
				r := e.StartTraffic(Workload{Pairs: AllPairs(hosts), Msgs: 30, Gap: 20 * time.Millisecond})
				e.Install(Partition{
					A:     sws[:2],
					B:     sws[2:],
					Start: 2 * time.Millisecond,
					Heal:  300 * time.Millisecond,
				})
				rep := finish("partition-heal", v, seed, e, r,
					CheckOpts{AllowLoss: true}, 20*time.Second)
				// A 300ms full cut with ongoing demand must drive at least
				// one destination into quarantine — that is the graceful
				// degradation this campaign exists to demonstrate.
				if rep.RemapStats.Quarantines == 0 {
					rep.Violations = append(rep.Violations, Violation{
						"quarantine", "partition never quarantined any destination"})
				}
				return rep
			},
		},
		{
			Name:  "drop-ramp",
			About: "send-side error rate ramped to 30% and back; strict delivery",
			run: func(seed int64, h runHooks) *Report {
				nw, hosts := topology.Star(6)
				cfg := core.Config{
					Net: nw, Hosts: hosts, FT: true,
					Retrans: retrans.Config{
						QueueSize:         16,
						Interval:          time.Millisecond,
						PermFailThreshold: time.Second,
					},
					Seed: seed,
				}
				v.apply(&cfg)
				c := core.New(cfg)
				h.cluster(c)
				e := h.engine(c, seed)
				// Traffic spans the whole ramp (~100ms).
				r := e.StartTraffic(Workload{Pairs: AllPairs(hosts), Msgs: 12, Gap: 10 * time.Millisecond})
				e.Install(DropRamp{
					Rates: []float64{0.02, 0.1, 0.3, 0},
					Start: time.Millisecond,
					Step:  25 * time.Millisecond,
				})
				return finish("drop-ramp", v, seed, e, r, CheckOpts{}, 10*time.Second)
			},
		},
		{
			Name:  "composite",
			About: "trunk flapping while the error rate ramps; strict delivery",
			run: func(seed int64, h runHooks) *Report {
				c, hosts := chainCluster(seed, v)
				h.cluster(c)
				e := h.engine(c, seed)
				r := e.StartTraffic(Workload{Pairs: AllPairs(hosts), Msgs: 20, Gap: 3 * time.Millisecond})
				e.Install(Composite{Parts: []Scenario{
					LinkFlap{Start: time.Millisecond, Cycles: 8},
					DropRamp{Rates: []float64{0.05, 0}, Start: time.Millisecond, Step: 30 * time.Millisecond},
				}})
				return finish("composite", v, seed, e, r,
					CheckOpts{MaxRemapAttempts: v.maxAttempts(60)}, 20*time.Second)
			},
		},
		{
			Name:  "flap-storm",
			About: "correlated seeded flap burst across a fat-tree's trunk classes; strict delivery",
			run: func(seed int64, h runHooks) *Report {
				// A real Clos fabric, mapped on demand: the hostless
				// aggregation/core tiers exercise the echo-identity dedup
				// path no paper-scale topology reaches.
				ft := topology.FatTree(4)
				// One host per pod keeps the all-pairs workload light while
				// every flow still crosses the storm-swept core.
				hosts := []topology.NodeID{
					ft.PodHosts[0][0], ft.PodHosts[1][0],
					ft.PodHosts[2][0], ft.PodHosts[3][0],
				}
				cfg := core.Config{
					Net: ft.Net, Hosts: hosts, FT: true,
					Retrans: retrans.Config{
						QueueSize:         16,
						Interval:          time.Millisecond,
						PermFailThreshold: 8 * time.Millisecond,
					},
					Mapper: true,
					// Fat-tree switches are radix k; scanning to the default
					// MaxRadix would burn 12 probe timeouts per switch on
					// ports that cannot exist.
					MapperCfg: mapping.Config{MaxRadix: 4},
					Seed:      seed,
				}
				v.apply(&cfg)
				c := core.New(cfg)
				h.cluster(c)
				e := h.engine(c, seed)
				r := e.StartTraffic(Workload{Pairs: AllPairs(hosts), Msgs: 15, Gap: 4 * time.Millisecond})
				e.Install(FlapStorm{Start: time.Millisecond, Events: 24, Window: 30 * time.Millisecond})
				return finish("flap-storm", v, seed, e, r,
					CheckOpts{MaxRemapAttempts: v.maxAttempts(200)}, 30*time.Second)
			},
		},
		{
			Name:  "stale-map",
			About: "blind host routes on a pre-failure map through a kill, then converges on resume",
			run: func(seed int64, h runHooks) *Report {
				c, hosts := chainCluster(seed, v)
				h.cluster(c)
				e := h.engine(c, seed)
				blind := hosts[0]
				far := hosts[4]
				const blindFor = 150 * time.Millisecond
				r := e.StartTraffic(Workload{Pairs: []Pair{{blind, far}, {far, blind}}, Msgs: 30,
					Gap: 5 * time.Millisecond})
				// Kill a trunk the blind host's installed route crosses (the
				// redundant spare survives, so remap has somewhere to go);
				// the blind window opens just before the kill.
				used := RouteTrunks(c.Net, blind, far)
				e.Install(Composite{Label: "stale-map", Parts: []Scenario{
					StaleMap{Hosts: []topology.NodeID{blind}, Start: time.Millisecond, Blind: blindFor},
					LinkKill{Links: used[:1], Start: 2 * time.Millisecond},
				}})
				rep := finish("stale-map", v, seed, e, r,
					CheckOpts{MaxRemapAttempts: v.maxAttempts(40)}, 20*time.Second)
				// Divergence must actually have happened: the blind host's
				// failure triggers were held during the window, its traffic
				// stalled for roughly the window, and convergence took a
				// completed remap. The strict delivery invariant (checked
				// above) is the convergence oracle itself.
				if held := c.Metrics().CounterTotal("remap.held"); held == 0 {
					rep.Violations = append(rep.Violations, Violation{
						"stale-divergence", "no remap trigger was held during the blind window"})
				}
				if rep.Remaps == 0 {
					rep.Violations = append(rep.Violations, Violation{
						"stale-convergence", "no remap completed after the blind window"})
				}
				if max := e.MTTR().Max(); max < blindFor/2 {
					rep.Violations = append(rep.Violations, Violation{
						"stale-divergence",
						fmt.Sprintf("longest delivery stall %v < half the %v blind window", max, blindFor)})
				}
				return rep
			},
		},
		{
			Name:  "gray-links",
			About: "a lossy-but-up trunk at 30% drop on the live route; strict delivery",
			run: func(seed int64, h runHooks) *Report {
				c, hosts := chainCluster(seed, v)
				h.cluster(c)
				e := h.engine(c, seed)
				r := e.StartTraffic(Workload{Pairs: AllPairs(hosts), Msgs: 20, Gap: 3 * time.Millisecond})
				// Gray out a trunk the installed routes actually cross, for
				// most of the traffic window; retransmission must absorb the
				// loss and strict delivery must still hold.
				used := RouteTrunks(c.Net, hosts[0], hosts[4])
				e.Install(GrayLinks{
					Links: used[:1], Rate: 0.3,
					Start: time.Millisecond, Dur: 120 * time.Millisecond,
				})
				rep := finish("gray-links", v, seed, e, r,
					CheckOpts{MaxRemapAttempts: v.maxAttempts(60)}, 20*time.Second)
				if gray := c.Metrics().Counter("fabric.pkts_dropped",
					metrics.L("reason", "gray")).Value(); gray == 0 {
					rep.Violations = append(rep.Violations, Violation{
						"gray-loss", "gray link never dropped a packet"})
				}
				return rep
			},
		},
		{
			Name:  "link-kill",
			About: "one trunk dies permanently; the stall isolates detection+remap (MTTR)",
			run: func(seed int64, h runHooks) *Report {
				c, hosts := chainCluster(seed, v)
				h.cluster(c)
				e := h.engine(c, seed)
				// One host per switch keeps the post-kill retransmission
				// storm light enough that mapping probes survive — the
				// stall then isolates detection+remap, not congestion.
				// 1ms pacing keeps the stall floor (2×gap) below both
				// detection latencies under comparison: the liveness
				// detection time (~3ms) and the fixed permanent-failure
				// threshold (8ms). Traffic outlasts detection plus remap.
				sparse := []topology.NodeID{hosts[0], hosts[2], hosts[4]}
				r := e.StartTraffic(Workload{Pairs: AllPairs(sparse), Msgs: 25, Gap: time.Millisecond})
				// Kill a trunk the installed end-to-end route actually uses
				// (not the redundant spare), so every seed's kill stalls
				// traffic and forces a detection+remap cycle.
				used := RouteTrunks(c.Net, sparse[0], sparse[2])
				e.Install(LinkKill{
					Links: []*topology.Link{used[e.Rand().Intn(len(used))]},
					Start: 2 * time.Millisecond,
				})
				return finish("link-kill", v, seed, e, r,
					CheckOpts{MaxRemapAttempts: v.maxAttempts(40)}, 5*time.Second)
			},
		},
	}
}

// Find returns the baseline campaign with the given name.
func Find(name string) (Campaign, bool) { return FindWith(name, Baseline()) }

// FindWith returns the campaign with the given name under a variant.
func FindWith(name string, v Variant) (Campaign, bool) {
	for _, c := range CampaignsWith(v) {
		if c.Name == name {
			return c, true
		}
	}
	return Campaign{}, false
}
