package chaos

import (
	"testing"
	"time"
)

// TestLinkKillLivenessBeatsBaseline is the headline claim of the adaptive
// liveness work: on a permanent link failure, per-path liveness sessions
// detect the dead trunk after ~3 negotiated intervals of control silence,
// while the baseline waits out the full 8ms permanent-failure threshold —
// so the liveness variant's MTTR p99 must be strictly lower, with both
// variants still honouring every delivery invariant.
func TestLinkKillLivenessBeatsBaseline(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		base, ok := FindWith("link-kill", Baseline())
		if !ok {
			t.Fatal("link-kill campaign missing")
		}
		live, _ := FindWith("link-kill", AdaptiveLiveness())

		br := base.Run(seed)
		lr := live.Run(seed)
		if !br.Passed() {
			t.Fatalf("seed %d: baseline violated invariants:\n%s", seed, br)
		}
		if !lr.Passed() {
			t.Fatalf("seed %d: liveness violated invariants:\n%s", seed, lr)
		}
		if br.MTTRp99 == 0 {
			t.Fatalf("seed %d: baseline observed no stalls — the kill missed the traffic", seed)
		}
		if lr.MTTRp99 >= br.MTTRp99 {
			t.Fatalf("seed %d: liveness MTTR p99 %v not below baseline %v",
				seed, lr.MTTRp99, br.MTTRp99)
		}
		t.Logf("seed %d: MTTR p99 baseline=%v liveness=%v (p50 %v vs %v)",
			seed, br.MTTRp99, lr.MTTRp99, br.MTTRp50, lr.MTTRp50)
	}
}

// TestVariantReportShape pins the report plumbing satellite: variant and
// MTTR quantile columns must come through the tabular (JSON-able) form.
func TestVariantReportShape(t *testing.T) {
	r := &Report{Campaign: "x", Variant: "liveness", Seed: 7,
		MTTR: "n=1", MTTRp50: time.Millisecond, MTTRp99: 2 * time.Millisecond}
	rows := r.Rows()
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	got := map[string]string{}
	for i, col := range rows[0].Columns {
		got[col] = rows[0].Values[i]
	}
	if got["variant"] != "liveness" || got["mttr_p50"] != "1ms" || got["mttr_p99"] != "2ms" {
		t.Fatalf("cells = %v", got)
	}
	if r.Title() != "campaign x/liveness (seed 7)" {
		t.Fatalf("title = %q", r.Title())
	}
	// Baseline titles keep the historical form.
	r.Variant = "baseline"
	if r.Title() != "campaign x (seed 7)" {
		t.Fatalf("baseline title = %q", r.Title())
	}
}
