package chaos

import (
	"math/rand"
	"sort"
	"time"

	"sanft/internal/core"
	"sanft/internal/topology"
)

// Topology-knowledge scenarios: fault patterns that know the fabric's
// structure (trunk classes, link sets) instead of picking one victim at a
// time. The schedule generator is pure — a seeded function from a link set
// to timed events — so the sequential engine (via the FlapStorm scenario)
// and the sharded engine (via core.Cluster.ScheduleLinkFlaps) consume the
// exact same storm for the same seed.

// FlapStormSchedule draws a correlated link-flap burst over the given
// topology link IDs: `events` down/up windows placed uniformly in
// [0, window) with down times uniform in [minDown, maxDown]. Windows on
// the same link never overlap (overlapping draws are discarded), so a
// restore can never resurrect a link inside a later failure window. The
// result is sorted by start time and fully determined by the arguments.
func FlapStormSchedule(linkIDs []int, seed int64, events int, window, minDown, maxDown time.Duration) []core.LinkFlapEvent {
	if len(linkIDs) == 0 || events <= 0 || window <= 0 {
		return nil
	}
	if minDown <= 0 {
		minDown = time.Millisecond
	}
	if maxDown < minDown {
		maxDown = minDown
	}
	rng := rand.New(rand.NewSource(seed ^ 0x57a6b))
	cands := make([]core.LinkFlapEvent, events)
	for i := range cands {
		cands[i] = core.LinkFlapEvent{
			Link: linkIDs[rng.Intn(len(linkIDs))],
			At:   time.Duration(rng.Int63n(int64(window))),
			Dur:  minDown + time.Duration(rng.Int63n(int64(maxDown-minDown)+1)),
		}
	}
	// Per link, keep the earliest-starting non-overlapping subset.
	byLink := make(map[int][]core.LinkFlapEvent)
	for _, ev := range cands {
		byLink[ev.Link] = append(byLink[ev.Link], ev)
	}
	var out []core.LinkFlapEvent
	for _, evs := range byLink {
		sort.Slice(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
		end := time.Duration(-1)
		for _, ev := range evs {
			if ev.At <= end {
				continue
			}
			out = append(out, ev)
			end = ev.At + ev.Dur
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Link < out[j].Link
	})
	return out
}

// FlapStorm replays a FlapStormSchedule burst on the sequential engine:
// correlated down/up windows across a whole link class, rather than
// LinkFlap's one-at-a-time wandering. If Links is nil the storm targets
// every trunk link.
type FlapStorm struct {
	Links   []*topology.Link
	Start   time.Duration
	Events  int           // default 24
	Window  time.Duration // storm span; default 30ms
	MinDown time.Duration // default 1ms
	MaxDown time.Duration // default 4ms
}

func (s FlapStorm) ScenarioName() string { return "flap-storm" }

func (s FlapStorm) Install(e *Engine) {
	if s.Events == 0 {
		s.Events = 24
	}
	if s.Window == 0 {
		s.Window = 30 * time.Millisecond
	}
	if s.MinDown == 0 {
		s.MinDown = time.Millisecond
	}
	if s.MaxDown == 0 {
		s.MaxDown = 4 * time.Millisecond
	}
	links := s.Links
	if links == nil {
		links = TrunkLinks(e.C.Net)
	}
	if len(links) == 0 {
		panic("chaos: FlapStorm with no trunk links and no explicit Links")
	}
	ids := make([]int, len(links))
	for i, l := range links {
		ids[i] = l.ID
	}
	sched := FlapStormSchedule(ids, e.Seed, s.Events, s.Window, s.MinDown, s.MaxDown)
	for _, ev := range sched {
		l := e.C.Net.Links[ev.Link]
		at, dur := ev.At, ev.Dur
		e.C.K.After(s.Start+at, func() {
			e.RecordFault("flap-storm down %s for %v", LinkName(e.C.Net, l), dur)
			e.C.Fab.KillLink(l)
		})
		e.C.K.After(s.Start+at+dur, func() {
			e.Record("flap-storm up %s", LinkName(e.C.Net, l))
			e.C.Net.RestoreLink(l)
		})
	}
	e.Record("flap-storm scheduled %d events over %d links", len(sched), len(links))
}

// StaleMap opens a blind window: the Hosts' failure recovery is suspended
// at Start (triggers are held, so they keep routing on their pre-failure
// map) and resumed Blind later. Paired with a kill inside the window, the
// run first demonstrates divergence — traffic from the blind hosts keeps
// chasing dead routes — then, on resume, the held triggers replay, remap
// repairs the map, and the delivery invariant proves convergence.
type StaleMap struct {
	Hosts []topology.NodeID // nil = every host
	Start time.Duration
	Blind time.Duration // default 100ms
}

func (s StaleMap) ScenarioName() string { return "stale-map" }

func (s StaleMap) Install(e *Engine) {
	if s.Blind == 0 {
		s.Blind = 100 * time.Millisecond
	}
	hosts := s.Hosts
	if hosts == nil {
		hosts = e.C.Hosts
	}
	e.C.K.After(s.Start, func() {
		e.RecordFault("stale-map suspend remap on %d hosts for %v", len(hosts), s.Blind)
		for _, h := range hosts {
			e.C.SuspendRemap(h)
		}
	})
	e.C.K.After(s.Start+s.Blind, func() {
		e.Record("stale-map resume remap on %d hosts", len(hosts))
		for _, h := range hosts {
			e.C.ResumeRemap(h)
		}
	})
}

// GrayLinks turns links lossy-but-up: each crossing packet drops with
// probability Rate from the fabric's deterministic per-link stream. Unlike
// a kill, a gray link passes liveness traffic often enough to evade clean
// down-detection — the failure mode retransmission alone must absorb. If
// Links is nil, Count trunks are drawn from the engine's RNG. Dur == 0
// leaves the links gray for the rest of the run.
type GrayLinks struct {
	Links []*topology.Link
	Count int // used when Links is nil; default 1
	Rate  float64
	Start time.Duration
	Dur   time.Duration
}

func (s GrayLinks) ScenarioName() string { return "gray-links" }

func (s GrayLinks) Install(e *Engine) {
	if s.Rate == 0 {
		s.Rate = 0.2
	}
	links := s.Links
	if links == nil {
		n := s.Count
		if n == 0 {
			n = 1
		}
		trunks := TrunkLinks(e.C.Net)
		if len(trunks) == 0 {
			panic("chaos: GrayLinks with no trunk links and no explicit Links")
		}
		perm := e.rng.Perm(len(trunks))
		for i := 0; i < n && i < len(trunks); i++ {
			links = append(links, trunks[perm[i]])
		}
	}
	e.C.K.After(s.Start, func() {
		for _, l := range links {
			e.RecordFault("gray-links %s at rate %g", LinkName(e.C.Net, l), s.Rate)
			e.C.SetLinkLoss(l.ID, s.Rate)
		}
	})
	if s.Dur > 0 {
		e.C.K.After(s.Start+s.Dur, func() {
			for _, l := range links {
				e.Record("gray-links clear %s", LinkName(e.C.Net, l))
				e.C.SetLinkLoss(l.ID, 0)
			}
		})
	}
}
