// Package chaos turns the simulator's failure primitives — permanent link
// and switch kills, topology restoration, send-side error injection — into
// declarative, seed-driven fault campaigns with invariant checking.
//
// The paper argues that a system area network must keep delivering while
// links flap, switches die, and packets drop. A chaos campaign makes that
// claim testable: a Scenario schedules faults against a Cluster, a
// Workload drives traffic through the storm, and CheckInvariants asserts
// afterwards that the protocol stack honoured its contract — at-least-once
// delivery with exactly-once notifications, no stuck worms, no leaked NIC
// buffers, and remap activity bounded by the pacing policy.
//
// Everything is deterministic: the engine derives all randomness from one
// seed, so a campaign's event log is byte-identical across runs with the
// same seed — a failing campaign is a reproducible artifact, not an
// anecdote.
package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"sanft/internal/core"
	"sanft/internal/metrics"
	"sanft/internal/topology"
	"sanft/internal/trace"
)

// Engine binds scenarios, a workload, and measurement to one cluster run.
// Its measurements — fault counts and the MTTR (delivery stall) histogram —
// live in the cluster's metrics registry (chaos.faults and
// chaos.delivery_stall_ns), so campaign telemetry exports alongside the
// protocol stack's own.
type Engine struct {
	C *core.Cluster
	// Seed drives every random choice the engine or its scenarios make.
	Seed int64

	// StallFloor is the smallest inter-delivery gap recorded as a recovery
	// (delivery stall) observation; gaps below it are normal pacing, not
	// outages. Default 1ms.
	StallFloor time.Duration

	rng    *rand.Rand
	events []string

	// inject, when non-nil, replaces the built-in synthetic workload for
	// StartTraffic calls — the hook sanload uses to drive campaigns with
	// production-shaped traffic (see Campaign.RunWithTraffic).
	inject TrafficInjector

	mttr    *metrics.Histogram
	faultsC *metrics.Counter
	fr      *trace.FlightRecorder
}

// NewEngine wraps a cluster for chaos experiments. The seed should usually
// match the cluster's, but any value gives a deterministic run. If the
// cluster's tracer is a flight recorder (see core.Cluster.InstallTracer),
// the engine adopts it: invariant violations freeze a snapshot, and the
// recorder is available through FlightRecorder for post-mortem dumps.
func NewEngine(c *core.Cluster, seed int64) *Engine {
	reg := c.Metrics()
	return &Engine{
		C:          c,
		Seed:       seed,
		StallFloor: time.Millisecond,
		rng:        rand.New(rand.NewSource(seed ^ 0x5eed)),
		mttr:       reg.Histogram("chaos.delivery_stall_ns", nil),
		faultsC:    reg.Counter("chaos.faults", nil),
		fr:         c.FlightRecorder(),
	}
}

// FlightRecorder returns the flight recorder adopted from the cluster
// (nil when tracing is off or the tracer is a plain ring).
func (e *Engine) FlightRecorder() *trace.FlightRecorder { return e.fr }

// MTTR returns the delivery-stall histogram — the engine's measure of how
// long faults held traffic up.
func (e *Engine) MTTR() *metrics.Histogram { return e.mttr }

// MTTRSummary renders the delivery-stall digest for reports.
func (e *Engine) MTTRSummary() string {
	if e.mttr.Count() == 0 {
		return "no recoveries observed"
	}
	return fmt.Sprintf("n=%d mean=%v p99≤%v p999≤%v max=%v",
		e.mttr.Count(), e.mttr.Mean(), e.mttr.Quantile(0.99), e.mttr.Quantile(0.999), e.mttr.Max())
}

// Rand returns the engine's seeded RNG. Scenarios draw their random
// choices (which trunk to flap, which switches to kill) from it so that
// one seed fixes the whole campaign.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Record appends one timestamped line to the event log.
func (e *Engine) Record(format string, args ...any) {
	e.events = append(e.events,
		fmt.Sprintf("[%12v] %s", e.C.Now(), fmt.Sprintf(format, args...)))
}

// RecordFault is Record for fault injections; it also counts the fault.
func (e *Engine) RecordFault(format string, args ...any) {
	e.faultsC.Inc()
	e.Record(format, args...)
}

// Faults returns the number of fault injections recorded so far.
func (e *Engine) Faults() int { return int(e.faultsC.Value()) }

// Events returns the number of event-log lines recorded so far.
func (e *Engine) Events() int { return len(e.events) }

// LogText returns the full event log, one line per event. Two runs of the
// same campaign with the same seed produce byte-identical logs.
func (e *Engine) LogText() string { return strings.Join(e.events, "\n") }

// Install schedules every scenario onto the cluster's kernel. Call before
// RunFor; the faults then fire at their simulated times.
func (e *Engine) Install(ss ...Scenario) {
	for _, s := range ss {
		e.Record("install scenario %s", s.ScenarioName())
		s.Install(e)
	}
}

// observeGap feeds one inter-delivery gap into the MTTR histogram if it
// qualifies as a stall.
func (e *Engine) observeGap(d time.Duration) {
	if d >= e.StallFloor {
		e.mttr.Observe(d)
	}
}

// TrunkLinks returns the switch-to-switch links of nw — the candidates
// scenarios fail by default (host links sever a node outright, which the
// paper treats as out of scope).
func TrunkLinks(nw *topology.Network) []*topology.Link {
	var out []*topology.Link
	for _, l := range nw.Links {
		if nw.Node(l.A.Node).Kind == topology.Switch &&
			nw.Node(l.B.Node).Kind == topology.Switch {
			out = append(out, l)
		}
	}
	return out
}

// LinkName renders a link as "name<->name" for event logs.
func LinkName(nw *topology.Network, l *topology.Link) string {
	return fmt.Sprintf("%s<->%s", nw.Node(l.A.Node).Name, nw.Node(l.B.Node).Name)
}

// CutLinks returns every usable link with one endpoint in group a and the
// other in group b — the cut set a Partition scenario severs.
func CutLinks(nw *topology.Network, a, b []topology.NodeID) []*topology.Link {
	inA := map[topology.NodeID]bool{}
	for _, n := range a {
		inA[n] = true
	}
	inB := map[topology.NodeID]bool{}
	for _, n := range b {
		inB[n] = true
	}
	var out []*topology.Link
	for _, l := range nw.Links {
		x, y := l.A.Node, l.B.Node
		if (inA[x] && inB[y]) || (inA[y] && inB[x]) {
			out = append(out, l)
		}
	}
	return out
}
