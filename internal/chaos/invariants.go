package chaos

import (
	"fmt"
	"sort"
)

// sortedPairs returns the keys of a pair-keyed map ordered by (Src, Dst).
func sortedPairs[V any](m map[Pair]V) []Pair {
	out := make([]Pair, 0, len(m))
	for pr := range m {
		out = append(out, pr)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// Violation is one failed invariant, with enough detail to act on.
type Violation struct {
	Invariant string
	Detail    string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// CheckOpts tunes the invariant checker to the campaign's contract.
type CheckOpts struct {
	// AllowLoss admits campaigns in which some destinations were declared
	// unreachable: delivery may be partial and buffers pending to
	// quarantined destinations are tolerated. The dedup, worm, and
	// conservation invariants still apply in full.
	AllowLoss bool
	// MaxRemapAttempts, if positive, bounds cluster-wide mapping runs —
	// the remap-storm invariant: flapping must not translate into
	// unbounded remapping.
	MaxRemapAttempts int
}

// CheckInvariants audits a finished chaos run. Call it after the cluster
// has stopped, with enough drain time for in-flight traffic to settle.
// It returns every violated invariant (empty means the run passed):
//
//   - delivery: every injected message was notified at least once
//     (skipped under AllowLoss);
//   - dedup: no message was notified more than once, even across
//     retransmissions and generation resets;
//   - worms: no worm is still held inside the fabric at quiesce;
//   - remap-idle: no mapping run is still active at quiesce;
//   - buffers: per NIC, free buffers + unacknowledged packets equals the
//     queue size (nothing leaked), and without AllowLoss every buffer has
//     drained back to free;
//   - acks: no delayed-ack timer is still armed at quiesce;
//   - remap-bound: mapping runs stayed within MaxRemapAttempts.
func CheckInvariants(e *Engine, r *Run, o CheckOpts) []Violation {
	var out []Violation
	bad := func(inv, format string, args ...any) {
		out = append(out, Violation{inv, fmt.Sprintf(format, args...)})
	}

	if r != nil && r.Sent != nil {
		// External traffic source: the expectation is the send-side
		// accounting, not a fixed pair × msg grid. Pairs iterate in sorted
		// order so a violating run reports deterministically.
		for _, pr := range sortedPairs(r.Sent) {
			if !o.AllowLoss {
				missing := 0
				for id := range r.Sent[pr] {
					if r.Counts[pr][id] == 0 {
						missing++
					}
				}
				if missing > 0 {
					bad("delivery", "pair %d->%d delivered %d of %d messages",
						pr.Src, pr.Dst, len(r.Sent[pr])-missing, len(r.Sent[pr]))
				}
			}
		}
		for _, pr := range sortedPairs(r.Counts) {
			dups := 0
			for _, c := range r.Counts[pr] {
				if c > 1 {
					dups += c - 1
				}
			}
			if dups > 0 {
				bad("dedup", "pair %d->%d saw %d duplicate notifications",
					pr.Src, pr.Dst, dups)
			}
		}
	} else if r != nil {
		if !o.AllowLoss {
			for _, pr := range r.W.Pairs {
				if got := len(r.Counts[pr]); got != r.W.Msgs {
					bad("delivery", "pair %d->%d delivered %d of %d messages",
						pr.Src, pr.Dst, got, r.W.Msgs)
				}
			}
		}
		for _, pr := range r.W.Pairs {
			for id, c := range r.Counts[pr] {
				if c > 1 {
					bad("dedup", "pair %d->%d message %d notified %d times",
						pr.Src, pr.Dst, id, c)
				}
			}
		}
	}

	if n := e.C.Fab.InFlight(); n != 0 {
		detail := e.C.Fab.InFlightDetail()
		if len(detail) > 4 {
			detail = detail[:4]
		}
		bad("worms", "%d worms still in flight at quiesce: %v", n, detail)
	}

	if running, armed := e.C.RemapInFlight(); running != 0 {
		bad("remap-idle", "%d mapping runs still active at quiesce (%d retry timers armed)",
			running, armed)
	}

	for _, h := range e.C.Hosts {
		n := e.C.NIC(h)
		snd := n.ProtoSender()
		if snd == nil {
			continue
		}
		q := snd.Config().QueueSize
		free, unacked := n.FreeBuffers(), snd.TotalUnacked()
		if free+unacked != q {
			bad("buffers", "host %d: free %d + unacked %d != queue %d (leak)",
				h, free, unacked, q)
		}
		if !o.AllowLoss && unacked != 0 {
			bad("buffers", "host %d: %d packets still unacknowledged at quiesce",
				h, unacked)
		}
		if k := n.PendingDelayedAcks(); k != 0 {
			bad("acks", "host %d: %d delayed-ack timers still armed", h, k)
		}
	}

	// The remap bound audits the metrics registry, not the cluster's
	// legacy counters: the bound holds over everything the remap managers
	// recorded, and the checker exercises the same telemetry users see.
	attempts := e.C.Metrics().CounterTotal("remap.attempts")
	if o.MaxRemapAttempts > 0 && attempts > uint64(o.MaxRemapAttempts) {
		bad("remap-bound", "%d mapping runs, bound %d (stats %+v)",
			attempts, o.MaxRemapAttempts, e.C.RemapStats)
	}
	return out
}
