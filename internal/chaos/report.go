package chaos

import (
	"fmt"
	"io"
	"strconv"

	"sanft/internal/report"
)

// table renders the report as the shared report.Table form, which backs
// the Rows and WriteJSON halves of the report.Report interface. The
// human-readable String form stays the multi-line degradation summary.
func (r *Report) table() *report.Table {
	verdict := "PASS"
	if !r.Passed() {
		verdict = "FAIL"
	}
	violations := ""
	for i, v := range r.Violations {
		if i > 0 {
			violations += "; "
		}
		violations += v.String()
	}
	variant := r.Variant
	if variant == "" {
		variant = "baseline"
	}
	return &report.Table{
		Name: r.Title(),
		Header: []string{
			"variant", "verdict", "faults", "events", "pairs", "expected",
			"delivered", "duplicates", "remaps", "unreachables",
			"remap_attempts", "remap_coalesced", "remap_deferred",
			"quarantines", "mttr", "mttr_p50", "mttr_p99", "mttr_p999", "violations",
		},
		Cells: [][]string{{
			variant,
			verdict,
			strconv.Itoa(r.Faults),
			strconv.Itoa(r.Events),
			strconv.Itoa(r.Pairs),
			strconv.Itoa(r.Expected),
			strconv.Itoa(r.Delivered),
			strconv.Itoa(r.Duplicates),
			strconv.Itoa(r.Remaps),
			strconv.Itoa(r.Unreachables),
			strconv.Itoa(r.RemapStats.Attempts),
			strconv.Itoa(r.RemapStats.Coalesced),
			strconv.Itoa(r.RemapStats.Deferred),
			strconv.Itoa(r.RemapStats.Quarantines),
			r.MTTR,
			r.MTTRp50.String(),
			r.MTTRp99.String(),
			r.MTTRp999.String(),
			violations,
		}},
	}
}

// Title implements report.Report. The variant appears only when it is not
// the baseline, so existing baseline output is unchanged.
func (r *Report) Title() string {
	if r.Variant != "" && r.Variant != "baseline" {
		return fmt.Sprintf("campaign %s/%s (seed %d)", r.Campaign, r.Variant, r.Seed)
	}
	return fmt.Sprintf("campaign %s (seed %d)", r.Campaign, r.Seed)
}

// Rows implements report.Report.
func (r *Report) Rows() []report.Row { return r.table().Rows() }

// WriteJSON implements report.Report: the campaign outcome as one JSON
// object (the event log is excluded; use EventLog directly when needed).
func (r *Report) WriteJSON(w io.Writer) error { return r.table().WriteJSON(w) }
