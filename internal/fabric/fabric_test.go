package fabric

import (
	"testing"
	"testing/quick"
	"time"

	"sanft/internal/routing"
	"sanft/internal/sim"
	"sanft/internal/topology"
)

// testNet builds a star network with an attached fabric and per-host
// delivery recording.
func testNet(t *testing.T, nHosts int) (*sim.Kernel, *Fabric, []topology.NodeID, map[topology.NodeID][]*Packet) {
	t.Helper()
	k := sim.New(1)
	nw, hosts := topology.Star(nHosts)
	f := New(k, nw, DefaultConfig())
	got := make(map[topology.NodeID][]*Packet)
	for _, h := range hosts {
		h := h
		f.AttachHost(h, func(p *Packet) { got[h] = append(got[h], p) })
	}
	return k, f, hosts, got
}

func mkPacket(nw *topology.Network, src, dst topology.NodeID, size int) *Packet {
	r, err := routing.Shortest(nw, src, dst)
	if err != nil {
		panic(err)
	}
	return &Packet{Route: r, Dst: dst, Size: size}
}

func TestDeliveryAndLatency(t *testing.T) {
	k, f, hosts, got := testNet(t, 2)
	pkt := mkPacket(f.Network(), hosts[0], hosts[1], 64)
	f.Inject(hosts[0], pkt)
	k.Run()
	if len(got[hosts[1]]) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(got[hosts[1]]))
	}
	// Expected: 2 props + 1 route delay + 1 serialization.
	cfg := f.Config()
	want := 2*cfg.PropDelay + cfg.RouteDelay + f.SerializationTime(64)
	lat := pkt.Delivered.Sub(pkt.Injected)
	if lat != want {
		t.Fatalf("latency = %v, want %v", lat, want)
	}
}

func TestCutThroughPipelining(t *testing.T) {
	// Across more switches, latency grows by (prop+route) per extra hop,
	// but still pays only one serialization.
	k := sim.New(1)
	nw, hosts := topology.Chain(3, 1, 1)
	f := New(k, nw, DefaultConfig())
	var delivered *Packet
	f.AttachHost(hosts[2][0], func(p *Packet) { delivered = p })
	pkt := mkPacket(nw, hosts[0][0], hosts[2][0], 4096)
	f.Inject(hosts[0][0], pkt)
	k.Run()
	if delivered == nil {
		t.Fatal("not delivered")
	}
	cfg := f.Config()
	// 3 switches: 4 links → 4 props, 3 route delays, 1 serialization.
	want := 4*cfg.PropDelay + 3*cfg.RouteDelay + f.SerializationTime(4096)
	if lat := pkt.Delivered.Sub(pkt.Injected); lat != want {
		t.Fatalf("latency = %v, want %v (cut-through should pay one serialization)", lat, want)
	}
}

func TestLinkSerializationBandwidth(t *testing.T) {
	// Back-to-back packets through one shared link are spaced by one
	// serialization each: bandwidth = link rate.
	k, f, hosts, got := testNet(t, 2)
	const n = 50
	const size = 4096
	var injected int
	var inject func()
	inject = func() {
		if injected == n {
			return
		}
		injected++
		pkt := mkPacket(f.Network(), hosts[0], hosts[1], size)
		pkt.OnInjectDone = inject
		f.Inject(hosts[0], pkt)
	}
	inject()
	k.Run()
	pkts := got[hosts[1]]
	if len(pkts) != n {
		t.Fatalf("delivered %d, want %d", len(pkts), n)
	}
	span := pkts[n-1].Delivered.Sub(pkts[0].Delivered)
	perPkt := span / (n - 1)
	ser := f.SerializationTime(size)
	if perPkt < ser || perPkt > ser+2*time.Microsecond {
		t.Fatalf("inter-delivery gap %v, want ≈ serialization %v", perPkt, ser)
	}
}

func TestContentionSharesLink(t *testing.T) {
	// Two senders to one receiver: the receiver's link serializes, so
	// deliveries alternate and total time doubles vs one sender.
	k, f, hosts, got := testNet(t, 3)
	const n = 20
	for _, src := range []topology.NodeID{hosts[0], hosts[1]} {
		src := src
		var injected int
		var inject func()
		inject = func() {
			if injected == n {
				return
			}
			injected++
			pkt := mkPacket(f.Network(), src, hosts[2], 4096)
			pkt.OnInjectDone = inject
			f.Inject(src, pkt)
		}
		inject()
	}
	k.Run()
	if len(got[hosts[2]]) != 2*n {
		t.Fatalf("delivered %d, want %d", len(got[hosts[2]]), 2*n)
	}
	if f.Stats().TotalDropped() != 0 {
		t.Fatalf("drops under simple contention: %v", f.Stats().Dropped)
	}
}

func TestBadRouteDropsSilently(t *testing.T) {
	k, f, hosts, got := testNet(t, 2)
	var reason DropReason
	for _, route := range []routing.Route{{}, {7}, {1, 0}} {
		pkt := &Packet{Route: route, Size: 64, OnDropped: func(r DropReason) { reason = r }}
		f.Inject(hosts[0], pkt)
		k.Run()
		if reason != DropBadRoute {
			t.Fatalf("route %v: reason = %v, want bad-route", route, reason)
		}
	}
	if len(got[hosts[1]]) != 0 {
		t.Fatal("bad-route packet was delivered")
	}
}

func TestDeadLinkDrop(t *testing.T) {
	k, f, hosts, _ := testNet(t, 2)
	pkt := mkPacket(f.Network(), hosts[0], hosts[1], 64)
	// Kill the receiver's link; the already-computed route crosses it.
	f.Network().KillLink(f.Network().Node(hosts[1]).Ports[0])
	var reason DropReason
	pkt.OnDropped = func(r DropReason) { reason = r }
	f.Inject(hosts[0], pkt)
	k.Run()
	if reason != DropDeadLink {
		t.Fatalf("reason = %v, want dead-link", reason)
	}
}

func TestDeadSourceLinkDrop(t *testing.T) {
	k, f, hosts, _ := testNet(t, 2)
	f.Network().KillLink(f.Network().Node(hosts[0]).Ports[0])
	var reason DropReason
	pkt := &Packet{Route: routing.Route{1}, Size: 64, OnDropped: func(r DropReason) { reason = r }}
	f.Inject(hosts[0], pkt)
	k.Run()
	if reason != DropNoRoute {
		t.Fatalf("reason = %v, want no-route", reason)
	}
}

func TestDeadSourceLinkFiresInjectDone(t *testing.T) {
	// Regression: the no-route drop path creates no worm, so nothing else
	// can ever signal injection completion. Without the explicit callback
	// the source NIC's transmit DMA waits forever and the host falls
	// permanently silent — unable to send data, acks, or probe replies.
	k, f, hosts, _ := testNet(t, 2)
	f.Network().KillLink(f.Network().Node(hosts[0]).Ports[0])
	done := false
	pkt := &Packet{Route: routing.Route{1}, Size: 64, OnInjectDone: func() { done = true }}
	f.Inject(hosts[0], pkt)
	k.Run()
	if !done {
		t.Fatal("OnInjectDone did not fire for a no-route drop")
	}
}

func TestDeadSwitchDrop(t *testing.T) {
	k := sim.New(1)
	nw, hosts := topology.Chain(2, 1, 1)
	f := New(k, nw, DefaultConfig())
	pkt := mkPacket(nw, hosts[0][0], hosts[1][0], 64)
	nw.KillSwitch(nw.Switches()[1])
	var reason DropReason
	pkt.OnDropped = func(r DropReason) { reason = r }
	f.Inject(hosts[0][0], pkt)
	k.Run()
	// The first link still works; the packet dies at the dead link/switch.
	if reason != DropDeadLink && reason != DropDeadSwitch {
		t.Fatalf("reason = %v, want dead-link or dead-switch", reason)
	}
}

func TestTransitHookCorruptionAndDrop(t *testing.T) {
	k, f, hosts, got := testNet(t, 2)
	i := 0
	f.SetTransitHook(func(p *Packet) bool {
		i++
		switch i {
		case 1:
			p.Corrupted = true
			return true
		case 2:
			return false // drop
		}
		return true
	})
	for j := 0; j < 3; j++ {
		f.Inject(hosts[0], mkPacket(f.Network(), hosts[0], hosts[1], 64))
	}
	k.Run()
	pkts := got[hosts[1]]
	if len(pkts) != 2 {
		t.Fatalf("delivered %d, want 2 (one dropped)", len(pkts))
	}
	if !pkts[0].Corrupted || pkts[1].Corrupted {
		t.Fatal("corruption flags wrong")
	}
	if f.Stats().Dropped[DropInjected] != 1 {
		t.Fatalf("injected drops = %d, want 1", f.Stats().Dropped[DropInjected])
	}
}

func TestOnInjectDoneFires(t *testing.T) {
	k, f, hosts, _ := testNet(t, 2)
	var doneAt sim.Time
	pkt := mkPacket(f.Network(), hosts[0], hosts[1], 4096)
	pkt.OnInjectDone = func() { doneAt = k.Now() }
	f.Inject(hosts[0], pkt)
	k.Run()
	if doneAt == 0 {
		t.Fatal("OnInjectDone never fired")
	}
	// The tail leaves the NIC one serialization after injection (roughly).
	ser := f.SerializationTime(4096)
	if doneAt.Duration() < ser {
		t.Fatalf("inject done at %v, before serialization %v completed", doneAt, ser)
	}
}

func TestDeadlockAndWatchdogRecovery(t *testing.T) {
	// Construct a genuine wormhole deadlock on a 4-switch ring: four
	// simultaneous 3-hop clockwise packets create a cyclic channel wait.
	// The watchdog must reset at least one worm so the others drain.
	k := sim.New(1)
	nw, hosts := topology.Ring(4, 1)
	cfg := DefaultConfig()
	cfg.Watchdog = 1 * time.Millisecond // short for the test
	f := New(k, nw, cfg)
	delivered := 0
	for i := 0; i < 4; i++ {
		f.AttachHost(hosts[i][0], func(*Packet) { delivered++ })
	}
	// Big packets so each worm spans multiple links while streaming.
	// Route: 3 clockwise switch-to-switch hops, then exit to the host.
	for i := 0; i < 4; i++ {
		src := hosts[i][0]
		dst := hosts[(i+3)%4][0]
		route := clockwise(t, nw, src, dst, 3)
		f.Inject(src, &Packet{Route: route, Dst: dst, Size: 1 << 20})
	}
	k.Run()
	st := f.Stats()
	if st.WatchdogResets == 0 {
		t.Fatalf("expected watchdog resets in a deadlocked ring; stats: %+v", st)
	}
	if delivered+int(st.TotalDropped()) != 4 {
		t.Fatalf("accounting: delivered %d + dropped %d != 4", delivered, st.TotalDropped())
	}
	if delivered == 0 {
		t.Fatal("watchdog reset should let at least one packet drain")
	}
	if f.InFlight() != 0 {
		t.Fatalf("%d worms still in flight after run", f.InFlight())
	}
}

// clockwise builds a route crossing `hops` ring switches in ascending-ID
// order, then exiting to dst.
func clockwise(t *testing.T, nw *topology.Network, src, dst topology.NodeID, hops int) routing.Route {
	t.Helper()
	r, ok := buildClockwise(nw, src, dst, hops)
	if !ok {
		t.Fatalf("cannot build clockwise route %d -> %d", src, dst)
	}
	return r
}

// buildClockwise is clockwise without the testing dependency.
func buildClockwise(nw *topology.Network, src, dst topology.NodeID, hops int) (routing.Route, bool) {
	var r routing.Route
	cur, _ := nw.Neighbor(src, 0)
	for i := 0; i < hops; i++ {
		n := nw.Node(cur)
		advanced := false
		for p := 0; p < n.Radix(); p++ {
			nb, _ := nw.Neighbor(cur, p)
			if nb == topology.None || nw.Node(nb).Kind != topology.Switch {
				continue
			}
			if nb == cur+1 || (int(cur) == 3 && nb == 0) {
				r = append(r, p)
				cur = nb
				advanced = true
				break
			}
		}
		if !advanced {
			return nil, false
		}
	}
	n := nw.Node(cur)
	for p := 0; p < n.Radix(); p++ {
		if nb, _ := nw.Neighbor(cur, p); nb == dst {
			return append(r, p), true
		}
	}
	return nil, false
}

func TestKillLinkFlushesInFlight(t *testing.T) {
	k, f, hosts, got := testNet(t, 2)
	pkt := mkPacket(f.Network(), hosts[0], hosts[1], 1<<20) // long-lived worm
	f.Inject(hosts[0], pkt)
	var reason DropReason
	pkt.OnDropped = func(r DropReason) { reason = r }
	// Kill the receiver's link mid-flight.
	k.After(time.Microsecond, func() {
		f.KillLink(f.Network().Node(hosts[1]).Ports[0])
	})
	k.Run()
	if len(got[hosts[1]]) != 0 {
		t.Fatal("packet delivered across a killed link")
	}
	if reason != DropFlushed {
		t.Fatalf("reason = %v, want flushed", reason)
	}
	if f.InFlight() != 0 {
		t.Fatal("worm leaked after flush")
	}
}

func TestKillSwitchFlushesInFlight(t *testing.T) {
	k, f, hosts, got := testNet(t, 2)
	pkt := mkPacket(f.Network(), hosts[0], hosts[1], 1<<20)
	f.Inject(hosts[0], pkt)
	k.After(time.Microsecond, func() { f.KillSwitch(f.Network().Switches()[0]) })
	k.Run()
	if len(got[hosts[1]]) != 0 {
		t.Fatal("packet delivered through a killed switch")
	}
	if f.InFlight() != 0 {
		t.Fatal("worm leaked after switch kill")
	}
}

func TestStatsAccounting(t *testing.T) {
	k, f, hosts, _ := testNet(t, 2)
	for i := 0; i < 5; i++ {
		f.Inject(hosts[0], mkPacket(f.Network(), hosts[0], hosts[1], 128))
	}
	f.Inject(hosts[0], &Packet{Route: routing.Route{}, Size: 64}) // bad
	k.Run()
	st := f.Stats()
	if st.Injected != 6 || st.Delivered != 5 || st.TotalDropped() != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.BytesDelivered != 5*128 {
		t.Fatalf("bytes = %d, want 640", st.BytesDelivered)
	}
}

func TestChannelBusyTime(t *testing.T) {
	k, f, hosts, _ := testNet(t, 2)
	f.Inject(hosts[0], mkPacket(f.Network(), hosts[0], hosts[1], 4096))
	k.Run()
	l := f.Network().Node(hosts[0]).Ports[0]
	busy := f.ChannelBusyTime(l, hosts[0])
	ser := f.SerializationTime(4096)
	if busy < ser {
		t.Fatalf("injection channel busy %v, want ≥ %v", busy, ser)
	}
}

func TestPropertyConservation(t *testing.T) {
	// On random topologies with random (valid) traffic, every injected
	// packet is either delivered or counted dropped, and no worm leaks.
	f := func(seed int64, nPkts uint8) bool {
		k := sim.New(seed)
		nw, hosts := topology.Random(6, 3, 8, 3.0, seed)
		if len(hosts) < 2 {
			return true
		}
		fb := New(k, nw, DefaultConfig())
		for _, h := range hosts {
			fb.AttachHost(h, func(*Packet) {})
		}
		rng := k.Rand()
		n := int(nPkts%40) + 1
		for i := 0; i < n; i++ {
			a := hosts[rng.Intn(len(hosts))]
			b := hosts[rng.Intn(len(hosts))]
			if a == b {
				continue
			}
			r, err := routing.Shortest(nw, a, b)
			if err != nil {
				continue
			}
			size := 64 + rng.Intn(4096)
			fb.Inject(a, &Packet{Route: r, Dst: b, Size: size})
		}
		k.Run()
		st := fb.Stats()
		return st.Injected == st.Delivered+st.TotalDropped() && fb.InFlight() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDeadlockAlwaysDrains(t *testing.T) {
	// Even with adversarial cyclic routes, the watchdog guarantees the
	// network eventually drains (no worm in flight forever).
	f := func(seed int64) bool {
		k := sim.New(seed)
		nw, hostRows := topology.Ring(4, 1)
		cfg := DefaultConfig()
		cfg.Watchdog = time.Millisecond
		fb := New(k, nw, cfg)
		for i := 0; i < 4; i++ {
			fb.AttachHost(hostRows[i][0], func(*Packet) {})
		}
		rng := k.Rand()
		for i := 0; i < 4; i++ {
			src := hostRows[i][0]
			dst := hostRows[(i+3)%4][0]
			route, ok := buildClockwise(nw, src, dst, 3)
			if !ok {
				return false
			}
			// Random stagger within one serialization time.
			delay := time.Duration(rng.Intn(30)) * time.Microsecond
			k.After(delay, func() {
				fb.Inject(src, &Packet{Route: route, Dst: dst, Size: 1 << 18})
			})
		}
		k.Run()
		st := fb.Stats()
		return fb.InFlight() == 0 && st.Injected == st.Delivered+st.TotalDropped()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
