package fabric

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"sanft/internal/metrics"
	"sanft/internal/sim"
	"sanft/internal/topology"
	"sanft/internal/trace"
)

// Config holds the physical constants of the fabric. Defaults (via
// DefaultConfig) are calibrated to the paper's Myrinet testbed.
type Config struct {
	// LinkRate is the per-direction link bandwidth in bytes/second.
	// Myrinet: 1.28 Gb/s = 160e6 B/s.
	LinkRate float64
	// PropDelay is the per-link propagation delay (SAN cables are a few
	// feet).
	PropDelay time.Duration
	// RouteDelay is the per-switch routing decision time (crossbar setup).
	RouteDelay time.Duration
	// Watchdog is the Myrinet blocked-path timer: a worm blocked longer
	// than this is reset and its packet dropped. Hardware-configurable
	// 62.5 ms – 4 s; default 62.5 ms.
	Watchdog time.Duration
}

// DefaultConfig returns constants calibrated to the paper's testbed.
func DefaultConfig() Config {
	return Config{
		LinkRate:   160e6,
		PropDelay:  50 * time.Nanosecond,
		RouteDelay: 300 * time.Nanosecond,
		Watchdog:   62500 * time.Microsecond,
	}
}

// chanKey identifies a directed channel: one direction of a full-duplex
// link. dir 0 flows A→B, dir 1 flows B→A.
type chanKey struct {
	link int
	dir  int
}

// channelState is the arbiter for one directed channel: at most one worm
// streams on it; others wait FIFO.
type channelState struct {
	holder  *worm
	waiters []*worm
	busy    time.Duration
	grabbed sim.Time
}

// Fabric is the network wire simulator.
type Fabric struct {
	k   *sim.Kernel
	nw  *topology.Network
	cfg Config

	chans   map[chanKey]*channelState
	deliver map[topology.NodeID]func(*Packet)
	worms   map[*worm]struct{} // in-flight, for flush operations
	wormSeq uint64             // injection-order serial for deterministic worm ordering
	gray    map[int]*grayLink  // per-link probabilistic loss (SetLinkLoss)

	// transitHook, if set, runs once per packet at delivery time and may
	// mutate it (set Corrupted) or return false to drop it in transit.
	transitHook func(*Packet) bool

	// tracer, if set, receives hop-level events: channel acquire / block /
	// release, watchdog resets, drops with reason, and deliveries.
	tracer trace.Tracer

	stats Stats
	reg   *metrics.Registry
	mx    *metrics.Scope
}

// New returns a fabric over network nw driven by kernel k.
func New(k *sim.Kernel, nw *topology.Network, cfg Config) *Fabric {
	if cfg.LinkRate <= 0 {
		panic("fabric: LinkRate must be positive")
	}
	if cfg.Watchdog <= 0 {
		panic("fabric: Watchdog must be positive")
	}
	f := &Fabric{
		k:       k,
		nw:      nw,
		cfg:     cfg,
		chans:   make(map[chanKey]*channelState),
		deliver: make(map[topology.NodeID]func(*Packet)),
		worms:   make(map[*worm]struct{}),
	}
	f.BindMetrics(metrics.NewRegistry())
	return f
}

// BindMetrics points the fabric's instrumentation at reg (core.New calls
// this with the cluster-wide registry before any traffic flows; standalone
// fabrics keep the private registry New installed). Per-link busy time and
// utilization are published as derived gauges, one per directed channel.
func (f *Fabric) BindMetrics(reg *metrics.Registry) {
	f.reg = reg
	f.mx = reg.Scope(nil)
	for _, l := range f.nw.Links {
		for dir := 0; dir < 2; dir++ {
			key := chanKey{l.ID, dir}
			ls := metrics.L("link", strconv.Itoa(l.ID), "dir", strconv.Itoa(dir))
			reg.GaugeFunc("fabric.link.busy_ns", ls, func() float64 {
				if cs := f.chans[key]; cs != nil {
					return float64(cs.busy)
				}
				return 0
			})
			reg.GaugeFunc("fabric.link.utilization", ls, func() float64 {
				now := f.k.Now()
				if now <= 0 {
					return 0
				}
				if cs := f.chans[key]; cs != nil {
					return float64(cs.busy) / float64(now)
				}
				return 0
			})
		}
	}
}

// Metrics returns the registry the fabric currently records into.
func (f *Fabric) Metrics() *metrics.Registry { return f.reg }

// Kernel returns the driving kernel.
func (f *Fabric) Kernel() *sim.Kernel { return f.k }

// Network returns the underlying topology.
func (f *Fabric) Network() *topology.Network { return f.nw }

// Config returns the fabric constants.
func (f *Fabric) Config() Config { return f.cfg }

// Stats returns a snapshot of fabric counters.
func (f *Fabric) Stats() Stats {
	s := f.stats
	s.Dropped = make(map[DropReason]uint64, len(f.stats.Dropped))
	for k, v := range f.stats.Dropped {
		s.Dropped[k] = v
	}
	return s
}

// InFlight returns the number of worms currently in the network.
func (f *Fabric) InFlight() int { return len(f.worms) }

// AttachHost registers the receive callback for a host: it runs (in event
// context) when a packet's tail fully arrives at that host.
func (f *Fabric) AttachHost(h topology.NodeID, fn func(*Packet)) {
	if f.nw.Node(h).Kind != topology.Host {
		panic(fmt.Sprintf("fabric: %d is not a host", h))
	}
	f.deliver[h] = fn
}

// SetTransitHook installs a fault-injection hook invoked once per packet at
// delivery. Returning false drops the packet (counted as DropInjected); the
// hook may also set pkt.Corrupted to model CRC errors.
func (f *Fabric) SetTransitHook(fn func(*Packet) bool) { f.transitHook = fn }

// SetTracer wires (or removes, with nil) a hop-level event tracer. Fabric
// events are attributed to the packet's source (Event.Node = Src) so they
// join the source's message span.
func (f *Fabric) SetTracer(tr trace.Tracer) { f.tracer = tr }

// emitPkt records one hop-level trace event for pkt. link < 0 means "no
// channel involved" (drops at injection, deliveries).
func (f *Fabric) emitPkt(kind trace.Kind, pkt *Packet, link, dir int, note string) {
	if f.tracer == nil {
		return
	}
	e := trace.Event{
		At: f.k.Now(), Node: pkt.Src, Kind: kind, Peer: pkt.Dst,
		Gen: pkt.Gen, Seq: pkt.Seq, Msg: pkt.Msg, Note: note,
	}
	if link >= 0 {
		e.Link = int32(link + 1)
		e.Dir = uint8(dir)
	}
	f.tracer.Trace(e)
}

// SerializationTime returns how long a packet of n bytes occupies a link.
func (f *Fabric) SerializationTime(n int) time.Duration {
	return time.Duration(float64(n) / f.cfg.LinkRate * 1e9)
}

func (f *Fabric) chanState(key chanKey) *channelState {
	cs := f.chans[key]
	if cs == nil {
		cs = &channelState{}
		f.chans[key] = cs
	}
	return cs
}

// keyFor returns the directed channel leaving `from` across link l.
func keyFor(l *topology.Link, from topology.NodeID) chanKey {
	if l.A.Node == from {
		return chanKey{l.ID, 0}
	}
	return chanKey{l.ID, 1}
}

// Inject launches a packet from host src. The packet's fate is reported via
// its callbacks and fabric stats; there is no error return — the wire gives
// no feedback, which is precisely why the retransmission protocol exists.
func (f *Fabric) Inject(src topology.NodeID, pkt *Packet) {
	pkt.Src = src
	pkt.Injected = f.k.Now()
	f.stats.Injected++
	f.mx.Add("fabric.pkts_injected", 1)
	n := f.nw.Node(src)
	if n.Kind != topology.Host {
		panic(fmt.Sprintf("fabric: inject from non-host %s", n.Name))
	}
	l := n.Ports[0]
	if !f.nw.LinkUsable(l) {
		f.drop(pkt, DropNoRoute)
		// No worm was created, so nothing will ever release the injection
		// channel: complete the send DMA here or the source NIC's transmit
		// path wedges forever.
		if pkt.OnInjectDone != nil {
			pkt.OnInjectDone()
		}
		return
	}
	if f.graySample(l.ID) {
		f.drop(pkt, DropGray)
		if pkt.OnInjectDone != nil {
			pkt.OnInjectDone()
		}
		return
	}
	f.wormSeq++
	w := &worm{f: f, pkt: pkt, curNode: src, seq: f.wormSeq}
	f.worms[w] = struct{}{}
	e := l.Other(src)
	w.request(keyFor(l, src), e.Node)
}

func (f *Fabric) drop(pkt *Packet, reason DropReason) {
	if f.stats.Dropped == nil {
		f.stats.Dropped = make(map[DropReason]uint64)
	}
	f.stats.Dropped[reason]++
	f.reg.Counter("fabric.pkts_dropped", metrics.L("reason", reason.String())).Inc()
	f.emitPkt(trace.EvFabDrop, pkt, -1, 0, reason.String())
	if pkt.OnDropped != nil {
		pkt.OnDropped(reason)
	}
}

// KillLink marks a link permanently failed and flushes any worms holding or
// waiting on either of its channels.
func (f *Fabric) KillLink(l *topology.Link) {
	f.nw.KillLink(l)
	f.flushWhere(func(w *worm) bool { return w.usesLink(l.ID) })
}

// KillSwitch marks a switch permanently failed and flushes worms crossing
// any of its links.
func (f *Fabric) KillSwitch(id topology.NodeID) {
	f.nw.KillSwitch(id)
	n := f.nw.Node(id)
	links := make(map[int]bool)
	for _, l := range n.Ports {
		if l != nil {
			links[l.ID] = true
		}
	}
	f.flushWhere(func(w *worm) bool {
		for _, k := range w.held {
			if links[k.link] {
				return true
			}
		}
		return w.waiting != nil && links[w.waitKey.link]
	})
}

func (f *Fabric) flushWhere(pred func(*worm) bool) {
	// The worm set is a map: kill victims in injection order, or the drop
	// events (and the waiter promotions they cause) would reorder from run
	// to run.
	victims := f.wormsInOrder(pred)
	for _, w := range victims {
		w.die(DropFlushed)
	}
}

// wormsInOrder returns the in-flight worms matching pred, in injection
// order.
func (f *Fabric) wormsInOrder(pred func(*worm) bool) []*worm {
	var out []*worm
	for w := range f.worms {
		if pred == nil || pred(w) {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// InFlightDetail describes each in-flight worm — held channels, what it is
// waiting on, and whether a watchdog is armed. Diagnostic aid for chaos
// audits: at quiesce this should be empty.
func (f *Fabric) InFlightDetail() []string {
	var out []string
	for _, w := range f.wormsInOrder(nil) {
		held := 0
		for _, k := range w.held {
			if cs := f.chans[k]; cs != nil && cs.holder == w {
				held++
			}
		}
		wait := "-"
		if w.waiting != nil {
			h := "free"
			if w.waiting.holder != nil {
				h = fmt.Sprintf("held(src=%d dst=%d)", w.waiting.holder.pkt.Src, w.waiting.holder.pkt.Dst)
			}
			wait = fmt.Sprintf("link%d.%d[%s q=%d]", w.waitKey.link, w.waitKey.dir, h, len(w.waiting.waiters))
		}
		out = append(out, fmt.Sprintf(
			"worm#%d src=%d dst=%d size=%d routeIdx=%d/%d held=%d/%d wait=%s watchdog=%v dead=%v",
			w.seq, w.pkt.Src, w.pkt.Dst, w.pkt.Size, w.routeIdx, len(w.pkt.Route),
			held, len(w.held), wait, w.watchdog.Pending(), w.dead))
	}
	return out
}

// ChannelBusyTime returns the accumulated busy time of the directed channel
// leaving `from` over link l, for utilization reporting.
func (f *Fabric) ChannelBusyTime(l *topology.Link, from topology.NodeID) time.Duration {
	cs := f.chans[keyFor(l, from)]
	if cs == nil {
		return 0
	}
	return cs.busy
}
