package fabric

// Gray failures: a link that is up but lossy. Clean failures (KillLink,
// KillSwitch) drop every packet and are eventually noticed by liveness or
// the permanent-failure threshold; a gray link drops a fraction and lets
// the rest through, which is the datacenter failure class protocols
// misdiagnose most often. SetLinkLoss models it at the fabric layer on
// both engines: each packet crossing the link consults a per-link
// deterministic counter stream (SplitMix64 over an advancing counter), so
// a given (seed, link) pair produces the same drop schedule on every run —
// and, in sharded mode, on every shard replica independent of worker
// count (each shard samples only the packets it carries, in its own
// kernel's deterministic order).
//
// The stream is stateful rather than a per-packet hash on purpose: a
// stateless hash of the packet identity would doom specific retransmitted
// frames to be dropped forever (every retry hashes the same), turning a
// probabilistic fault into a deterministic black hole for some sequence
// numbers. With a counter stream each crossing is a fresh draw, which is
// what "X% loss" means physically.

// grayLink is the loss state of one lossy link.
type grayLink struct {
	threshold uint64 // drop when a draw's top 32 bits fall below this
	state     uint64 // SplitMix64 counter
}

// newGrayLink derives the link's private stream from (seed, link).
func newGrayLink(rate float64, seed int64, link int) *grayLink {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &grayLink{
		threshold: uint64(rate * float64(1<<32)),
		state:     mix64(uint64(seed) ^ (uint64(link)+1)*0x9e3779b97f4a7c15),
	}
}

// drop advances the stream one draw and reports whether this crossing is
// dropped.
func (g *grayLink) drop() bool {
	g.state += 0x9e3779b97f4a7c15
	return mix64(g.state)>>32 < g.threshold
}

// mix64 is the SplitMix64 finalizer.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// SetLinkLoss makes link id gray on the wormhole fabric: every worm
// crossing it is dropped with probability rate, drawn from the link's
// deterministic (seed, link) stream. rate 0 removes the loss.
func (f *Fabric) SetLinkLoss(link int, rate float64, seed int64) {
	if rate <= 0 {
		delete(f.gray, link)
		return
	}
	if f.gray == nil {
		f.gray = make(map[int]*grayLink)
	}
	f.gray[link] = newGrayLink(rate, seed, link)
}

// graySample draws the gray stream of link id (if any) for one crossing.
func (f *Fabric) graySample(link int) bool {
	g := f.gray[link]
	return g != nil && g.drop()
}

// SetLinkLoss makes link id gray on the pipe fabric: packets whose
// injection-time route walk crosses the link are dropped with probability
// rate, drawn from this shard's deterministic (seed, link) stream.
func (p *Pipe) SetLinkLoss(link int, rate float64, seed int64) {
	if rate <= 0 {
		delete(p.gray, link)
		return
	}
	if p.gray == nil {
		p.gray = make(map[int]*grayLink)
	}
	p.gray[link] = newGrayLink(rate, seed, link)
}

func (p *Pipe) graySample(link int) bool {
	g := p.gray[link]
	return g != nil && g.drop()
}
