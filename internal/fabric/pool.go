package fabric

import (
	"sync"
	"sync/atomic"
)

// poolProf gathers packet-pool traffic for the engine profiler, mirroring
// internal/proto's frame-pool counters: off by default, one atomic load
// per pooled clone when on, process-wide totals (consumers report deltas
// from a construction-time baseline).
var poolProf struct {
	enabled atomic.Bool
	gets    atomic.Uint64 // pooled clones served
	news    atomic.Uint64 // pool refills (fresh allocations)
}

// SetPoolProfiling toggles packet-pool traffic counting.
func SetPoolProfiling(on bool) { poolProf.enabled.Store(on) }

// PoolStats returns the cumulative pooled-clone count and the number of
// those served by a fresh allocation (pool miss).
func PoolStats() (gets, misses uint64) {
	return poolProf.gets.Load(), poolProf.news.Load()
}

// packetBlock is one unit of pooled packet storage: the packet plus a
// reusable route buffer, so cloning a packet across a shard boundary
// allocates nothing in steady state. The payload is not part of the
// block — protocol layers pool their frames separately (the fabric
// never looks inside Payload) and the two lifetimes differ: the packet
// dies when receive firmware finishes, the frame when the host has
// consumed it.
type packetBlock struct {
	pkt      Packet
	routeBuf []int
}

var packetPool = sync.Pool{New: func() any {
	if poolProf.enabled.Load() {
		poolProf.news.Add(1)
	}
	return new(packetBlock)
}}

// ClonePooled returns a copy of the packet shell from pooled storage:
// route bytes are copied into the block's reusable buffer and callbacks
// are stripped (OnInjectDone already fired on the source shard, and the
// wire gives no cross-host drop feedback — which is why the
// retransmission protocol exists). Payload is carried over as-is; the
// caller deep-copies it when the boundary demands. The caller owns the
// copy until it calls Release.
func (p *Packet) ClonePooled() *Packet {
	if poolProf.enabled.Load() {
		poolProf.gets.Add(1)
	}
	b := packetPool.Get().(*packetBlock)
	cp := &b.pkt
	*cp = *p
	cp.blk = b
	b.routeBuf = append(b.routeBuf[:0], p.Route...)
	cp.Route = b.routeBuf
	cp.OnInjectDone = nil
	cp.OnDropped = nil
	return cp
}

// Release returns a ClonePooled packet's storage to the pool. Ordinary
// packets (blk nil) and value copies of a pooled packet are no-ops, so
// the receive path can release unconditionally: in sequential mode every
// packet it sees is an original and nothing happens. The packet must not
// be used after Release; its Payload is not released (see packetBlock).
func (p *Packet) Release() {
	b := p.blk
	if b == nil || &b.pkt != p {
		return
	}
	rb := b.routeBuf
	*b = packetBlock{routeBuf: rb[:0]}
	packetPool.Put(b)
}
