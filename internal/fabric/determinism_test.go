package fabric

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"sanft/internal/topology"
)

// jamStar injects one long-lived worm from each of srcs toward dst so that
// one holds dst's ingress channel and the rest queue behind it.
func jamStar(f *Fabric, srcs []topology.NodeID, dst topology.NodeID, onDrop func(*Packet, DropReason)) {
	for _, s := range srcs {
		pkt := mkPacket(f.Network(), s, dst, 1<<20)
		if onDrop != nil {
			pkt := pkt
			pkt.OnDropped = func(r DropReason) { onDrop(pkt, r) }
		}
		f.Inject(s, pkt)
	}
}

func TestFlushOrderIsInjectionOrder(t *testing.T) {
	// Regression: flushWhere used to walk the worm map directly, so the
	// victim drop order — and everything downstream of the drop callbacks —
	// varied between runs of the same seed.
	k, f, hosts, _ := testNet(t, 6)
	srcs := hosts[1:]
	var order []topology.NodeID
	jamStar(f, srcs, hosts[0], func(p *Packet, r DropReason) {
		if r != DropFlushed {
			t.Errorf("drop reason = %v, want flushed", r)
		}
		order = append(order, p.Src)
	})
	k.After(time.Microsecond, func() {
		f.KillLink(f.Network().Node(hosts[0]).Ports[0])
	})
	k.Run()
	if len(order) != len(srcs) {
		t.Fatalf("flushed %d worms, want %d", len(order), len(srcs))
	}
	for i, s := range srcs {
		if order[i] != s {
			t.Fatalf("flush order %v, want injection order %v", order, srcs)
		}
	}
}

func TestInFlightDetailSorted(t *testing.T) {
	k, f, hosts, _ := testNet(t, 6)
	var detail []string
	jamStar(f, hosts[1:], hosts[0], nil)
	k.After(time.Microsecond, func() { detail = f.InFlightDetail() })
	k.Run()
	if len(detail) != 5 {
		t.Fatalf("detail lines = %d, want 5:\n%s", len(detail), strings.Join(detail, "\n"))
	}
	for i, line := range detail {
		want := fmt.Sprintf("worm#%d ", i+1)
		if !strings.HasPrefix(line, want) {
			t.Fatalf("line %d = %q, want prefix %q (injection order)", i, line, want)
		}
	}
}
