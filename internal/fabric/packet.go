// Package fabric simulates the wire of a system area network: source-routed
// wormhole transport across full-crossbar switches and point-to-point links.
//
// Fidelity goals (what the fault-tolerance protocol layered above must be
// able to observe, because the paper's schemes exist to tolerate exactly
// these behaviors):
//
//   - Cut-through pipelining: a packet's latency across H switches is
//     H·(routing + propagation) + one serialization, and per-link occupancy
//     is one serialization per packet, so bandwidth saturates correctly.
//   - Blocking flow control: a worm that cannot acquire its next channel
//     stalls holding every channel behind it. Route sets with cyclic
//     channel dependencies can therefore genuinely deadlock.
//   - Watchdog path reset (Myrinet's deadlock detection/recovery): a worm
//     blocked longer than the configured timeout is reset — all its
//     channels are freed and the packet is dropped silently. The paper's
//     retransmission protocol is responsible for recovering the data.
//   - Silent loss: packets routed into unwired ports, dead links, dead
//     switches, or exhausted routes vanish without notification.
//   - Corruption: an injectable transit hook can corrupt packets; the CRC
//     check at the receiving NIC is the only detection mechanism.
package fabric

import (
	"sanft/internal/routing"
	"sanft/internal/sim"
	"sanft/internal/topology"
)

// DropReason explains why the fabric discarded a packet.
type DropReason int

const (
	// DropNone: not dropped.
	DropNone DropReason = iota
	// DropNoRoute: the source NIC's own link is unusable.
	DropNoRoute
	// DropBadRoute: the route dead-ended (exhausted at a switch, leftover
	// hops at a host, or named an unwired port).
	DropBadRoute
	// DropDeadLink: the route crossed a permanently failed link.
	DropDeadLink
	// DropDeadSwitch: the route entered a failed switch.
	DropDeadSwitch
	// DropWatchdog: the blocked-path watchdog reset the worm (deadlock or
	// severe congestion).
	DropWatchdog
	// DropInjected: a fault-injection hook discarded the packet.
	DropInjected
	// DropFlushed: the packet was in flight across a link or switch that
	// was killed.
	DropFlushed
	// DropGray: lost on a gray (lossy-but-up) link; see SetLinkLoss.
	DropGray
)

var dropNames = [...]string{"none", "no-route", "bad-route", "dead-link", "dead-switch", "watchdog", "injected", "flushed", "gray"}

func (r DropReason) String() string {
	if int(r) < len(dropNames) {
		return dropNames[r]
	}
	return "unknown"
}

// Packet is one unit of wire traffic. The fabric treats Payload as opaque;
// protocol layers (retransmission, mapping probes) define its structure.
type Packet struct {
	// Route is the source route: output port per switch crossed.
	Route routing.Route
	// Src is the injecting host. Dst is bookkeeping only (real source
	// routing carries no destination); the fabric delivers wherever the
	// route leads.
	Src, Dst topology.NodeID
	// Size is the packet's size on the wire in bytes, including protocol
	// headers and CRC.
	Size int
	// Payload carries the protocol-level frame.
	Payload any
	// Corrupted marks a CRC-failing packet; set by fault injection,
	// checked by the receiving NIC.
	Corrupted bool

	// Gen, Seq and Msg are trace bookkeeping stamped by the sending NIC
	// (the protocol identity of the payload frame), so hop-level trace
	// events can carry the packet's trace ID without the fabric looking
	// inside Payload. Zero for control frames and untraced payloads.
	Gen uint32
	Seq uint64
	Msg uint64

	// Injected and Delivered are stamped by the fabric.
	Injected  sim.Time
	Delivered sim.Time

	// OnInjectDone fires when the packet's tail has left the source NIC
	// (its injection channel is released, or the worm died): the NIC's
	// network-send path is free for the next packet. May be nil.
	OnInjectDone func()
	// OnDropped fires if the fabric discards the packet. May be nil.
	OnDropped func(reason DropReason)

	// blk points back to this packet's pooled storage when it came from
	// ClonePooled; nil for ordinary packets. See Release.
	blk *packetBlock
}

// Stats counts fabric-level events.
type Stats struct {
	Injected  uint64
	Delivered uint64
	Dropped   map[DropReason]uint64
	// WatchdogResets counts blocked-path resets (deadlock recoveries).
	WatchdogResets uint64
	// BytesDelivered counts payload+header bytes of delivered packets.
	BytesDelivered uint64
}

// TotalDropped sums drops across all reasons.
func (s Stats) TotalDropped() uint64 {
	var t uint64
	for _, v := range s.Dropped {
		t += v
	}
	return t
}
